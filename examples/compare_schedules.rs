//! Compare pipeline schedules side by side: bubbles, peak memory, and the
//! schedule timelines themselves, on one simulated operating point.
//!
//! ```bash
//! cargo run --release --example compare_schedules
//! ```

use slimpipe::core::theory::Scheme;
use slimpipe::model::{Checkpoint, ModelConfig, GIB};
use slimpipe::sim::cost::{CostModel, PipelineEnv};
use slimpipe::sim::engine::simulate;

fn main() {
    let model = ModelConfig::llama_13b();
    let (p, m, seq, tp) = (4usize, 4usize, 131_072u64, 8usize);
    println!(
        "Scheme comparison — {}, p={p}, m={m}, context {}K, t={tp}, full ckpt\n",
        model.name,
        seq / 1024
    );

    let mut rows: Vec<(String, f64, f64, f64)> = Vec::new();
    #[allow(clippy::type_complexity)]
    let candidates: Vec<(Scheme, Box<dyn Fn() -> Result<slimpipe::sched::Schedule, _>>)> = vec![
        (Scheme::GPipe, Box::new(move || slimpipe::sched::gpipe::generate(p, m))),
        (Scheme::OneFOneB, Box::new(move || slimpipe::sched::onefoneb::generate(p, m))),
        (
            Scheme::Interleaved,
            Box::new(move || slimpipe::sched::interleaved::generate(p, 2, m)),
        ),
        (
            Scheme::TeraPipe,
            Box::new(move || slimpipe::sched::terapipe::generate(p, m, 8)),
        ),
        (
            Scheme::SlimPipe,
            Box::new(move || slimpipe::core::interleaved::generate(p, 2, m, 8)),
        ),
    ];

    for (scheme, build) in candidates {
        let sched = build().expect("schedulable");
        let slim = scheme == Scheme::SlimPipe;
        let env = PipelineEnv {
            model: model.clone(),
            cluster: slimpipe::cluster::Cluster::hopper_nvlink(),
            eff: slimpipe::cluster::Efficiency::hopper(),
            tp,
            cp: 1,
            ep: 1,
            seq,
            mb_seqs: None,
            slicing: slimpipe::core::SlicePolicy::Uniform,
            ckpt: Checkpoint::Full,
            exchange: slim,
            early_kv: true,
            vocab_parallel: slim,
            comm_overlap: 0.5,
            pipeline_overlap: 0.0,
        };
        let report = simulate(&CostModel::new(&sched, &env));
        let peak = (0..p)
            .map(|d| slimpipe::sim::memory::device_peak_bytes(&sched, &env, d))
            .fold(0.0, f64::max);
        rows.push((
            sched.name.clone(),
            report.bubble_fraction,
            report.makespan * 1e3,
            peak / GIB,
        ));
    }

    println!(
        "{:<22} {:>8} {:>14} {:>10}",
        "scheme", "bubble", "makespan (ms)", "peak GiB"
    );
    for (name, bubble, ms, peak) in &rows {
        println!("{name:<22} {bubble:>8.3} {ms:>14.1} {peak:>10.1}");
    }

    let slim = rows.last().unwrap();
    let ofob = &rows[1];
    println!(
        "\nSlimPipe vs default 1F1B: {:.1}x lower bubble, {:.1}x less activation+logits memory",
        ofob.1 / slim.1.max(1e-9),
        ofob.3 / slim.3
    );
}
