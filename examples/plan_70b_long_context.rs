//! Plan a long-context Llama 70B training run: use the grid search to pick
//! the best hybrid-parallel configuration on a 256-GPU Hopper cluster and
//! explain the memory budget.
//!
//! ```bash
//! cargo run --release --example plan_70b_long_context
//! ```

use slimpipe::cluster::Cluster;
use slimpipe::model::{Checkpoint, ModelConfig};
use slimpipe::parallel::search::{best_config, SearchOptions, SearchOutcome};
use slimpipe::parallel::SystemKind;

fn main() {
    let model = ModelConfig::llama_70b();
    let cluster = Cluster::hopper_nvlink();
    let gpus = 256;
    let tokens_per_iter = 4u64 << 20;

    println!("Planning {} on {gpus} Hopper GPUs, 4M tokens/iter\n", model.name);
    println!("{:>8}  {:>7}  {:>9}  configuration", "context", "MFU %", "peak GiB");

    for ctx_k in [64u64, 128, 256, 512, 1024] {
        let seq = ctx_k * 1024;
        let opts = SearchOptions {
            // Allow offload for the extreme lengths, like the paper's §6.5.
            offload_levels: if ctx_k >= 512 {
                vec![0.0, 0.5, 0.75, 0.9]
            } else {
                vec![0.0]
            },
            ckpt_modes: vec![Checkpoint::None, Checkpoint::Selective, Checkpoint::Full],
        };
        match best_config(&model, SystemKind::SlimPipe, gpus, seq, tokens_per_iter, &cluster, &opts)
        {
            SearchOutcome::Found(e) => {
                println!(
                    "{:>7}K  {:>7.1}  {:>9.1}  {}",
                    ctx_k,
                    e.mfu * 100.0,
                    e.peak_gib,
                    e.cfg.describe()
                );
            }
            SearchOutcome::Oom => println!("{ctx_k:>7}K  {:>7}  {:>9}  every partition OOMs", "-", "-"),
            SearchOutcome::NoConfig => {
                println!("{ctx_k:>7}K  {:>7}  {:>9}  no valid partition", "-", "-")
            }
        }
    }

    println!(
        "\nSlimPipe keeps long contexts feasible without full recompute because \
         activation memory scales as 1/p (Eq. 1) and the fp32 logits are \
         spread by vocabulary parallelism (§4.3)."
    );
}
