//! Plan a slicing for the reference executor workload and a ragged one,
//! and print the human-readable plan tables: per-microbatch bounds,
//! predicted per-slice costs, and the simulated bubble fraction against
//! the `Uniform` and `PairBalanced` baselines.
//!
//! ```text
//! cargo run --release --example plan
//! ```
//!
//! Uses the committed reference profile; pass `--calibrate` to re-fit a
//! profile on this host first (noisy machines will see different absolute
//! numbers, same structure).

use slimpipe::core::SlicePolicy;
use slimpipe::exec::ExecConfig;
use slimpipe::planner::{
    calibrate, plan, reference_profile, simulate_config, CalibrationOpts, PlanOpts,
};

fn main() {
    let profile = if std::env::args().any(|a| a == "--calibrate") {
        eprintln!("calibrating on this host...");
        calibrate(&ExecConfig::small(), &CalibrationOpts::default())
    } else {
        reference_profile()
    };

    let workloads = [
        (
            "reference (uniform 2x64 tokens)",
            ExecConfig { stages: 2, microbatches: 2, ..ExecConfig::small() },
        ),
        (
            "ragged (32 + 192 tokens)",
            ExecConfig {
                stages: 2,
                microbatches: 2,
                seq: 192,
                mb_seqs: Some(vec![32, 192]),
                ..ExecConfig::small()
            },
        ),
    ];

    for (name, base) in workloads {
        println!("=== {name} ===");
        let p = plan(&base, &profile, &PlanOpts::default()).expect("plannable workload");
        print!("{}", p.render_table());
        let planned_cfg = p.to_exec_config(&base);
        println!(
            "slice counts: {:?}{}",
            p.mb_slices,
            if p.has_per_mb_counts() { "  (per-microbatch)" } else { "  (global)" }
        );
        // Baselines at the same slice counts, under the same profile.
        for policy in [SlicePolicy::Uniform, SlicePolicy::PairBalanced] {
            let tag = policy.tag();
            let baseline = ExecConfig {
                slicing: policy,
                slices: planned_cfg.slices,
                mb_slices: planned_cfg.mb_slices.clone(),
                ..base.clone()
            };
            let r = simulate_config(&baseline, &profile);
            println!(
                "baseline {tag:<14} makespan {:.3} ms   bubble {:.4}",
                r.makespan * 1e3,
                r.bubble_fraction
            );
        }
        println!(
            "planned {:<15} makespan {:.3} ms   bubble {:.4}",
            "", p.simulated_makespan * 1e3, p.simulated_bubble
        );
        println!();
    }
}
