//! Elastic recovery demo: a supervised training job loses a pipeline
//! stage mid-run, re-plans onto the survivor with the calibrated planner,
//! restores the latest checkpoint, and finishes — then proves the healed
//! run is bit-identical to a clean resume at the surviving geometry.
//!
//! ```bash
//! cargo run --release --example elastic_recovery
//! # or bring your own fault schedule:
//! SLIMPIPE_FAULT_PLAN='{"faults": [{"iteration": 3, "stage": 1, "mb": 0, "slice": 1, "kind": "stage_panic"}]}' \
//!   cargo run --release --example elastic_recovery
//! ```

use slimpipe::exec::checkpoint::snapshot_path;
use slimpipe::exec::fault::InjectedPanic;
use slimpipe::exec::model::{CheckpointCfg, ExecConfig};
use slimpipe::exec::schedule::PipelineKind;
use slimpipe::exec::train::try_resume_pipeline_from;
use slimpipe::exec::verify::assert_bit_identical;
use slimpipe::exec::{run_elastic, CheckpointState, DriverCfg, FaultKind, FaultPlan, FaultSite};
use slimpipe::planner::{recovery_replanner, reference_profile};

fn main() {
    // Injected panics are part of the demo; keep them off stderr.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if info.payload().downcast_ref::<InjectedPanic>().is_none() {
            prev(info);
        }
    }));

    let path = std::env::temp_dir()
        .join(format!("slimpipe_elastic_demo_{}.ckpt", std::process::id()));
    let clean_files = || {
        let _ = std::fs::remove_file(&path);
        for it in 0..16 {
            let _ = std::fs::remove_file(snapshot_path(&path, it));
        }
    };
    clean_files();

    // 2-stage job, checkpoint every 2 iterations, keep the newest 2
    // snapshots. The default fault: stage 1 panics at iteration 3 (the
    // env hook `SLIMPIPE_FAULT_PLAN` overrides it when set).
    let mut cfg = ExecConfig {
        checkpoint: Some(CheckpointCfg { every: 2, path: path.clone(), keep_last: 2 }),
        ..ExecConfig::small()
    };
    if std::env::var("SLIMPIPE_FAULT_PLAN").is_err() {
        cfg.fault_plan = Some(FaultPlan::single(
            FaultSite { iteration: 3, stage: 1, mb: 0, slice: 1 },
            FaultKind::StagePanic,
        ));
    }
    let steps = 6;
    let lr = 0.2;
    println!(
        "elastic job: {} layers over {} stages, {steps} iterations, checkpoint every {}",
        cfg.layers,
        cfg.stages,
        cfg.checkpoint.as_ref().unwrap().every
    );
    println!("armed faults: {:?}\n", cfg.fault_plan);

    // The planner-backed replanner re-runs the calibrated search at the
    // surviving geometry, pricing the degraded boundary link.
    let mut replanner = recovery_replanner(reference_profile(), None);
    let outcome = run_elastic(&cfg, &DriverCfg::default(), steps, lr, &mut replanner)
        .expect("the demo fault is recoverable");

    print!("{}", outcome.log);
    println!(
        "final geometry: {} stage(s), slicing `{}`, last loss {:.6}",
        outcome.final_config.stages,
        outcome.final_config.slicing.tag(),
        outcome.result.losses.last().copied().unwrap_or(f64::NAN),
    );

    // Determinism contract: the healed run's bits match a clean resume of
    // the re-planned config from the snapshot the driver restored.
    if let Some(ev) = outcome.log.events.first().filter(|e| e.resumed_from > 0) {
        // An *empty* plan, not `None`: a bare `None` would let the resume
        // entry point re-adopt `SLIMPIPE_FAULT_PLAN` from the environment.
        let clean_cfg = ExecConfig {
            fault_plan: Some(FaultPlan::default()),
            ..outcome.final_config.clone()
        };
        let snap = CheckpointState::load(&snapshot_path(&path, ev.resumed_from as u64), &clean_cfg)
            .expect("restore-point snapshot");
        let want = try_resume_pipeline_from(&clean_cfg, PipelineKind::SlimPipe, steps, lr, snap)
            .expect("clean resume");
        assert_bit_identical(&outcome.result, &want);
        println!("bit-identity vs clean resume at the surviving geometry: OK");
    }
    clean_files();
}
