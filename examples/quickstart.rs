//! Quickstart: train a small transformer across a real two-thread SlimPipe
//! pipeline and verify it against a single-device reference.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use slimpipe::exec::model::ExecConfig;
use slimpipe::exec::schedule::PipelineKind;
use slimpipe::exec::train::{run_pipeline, run_reference};
use slimpipe::exec::verify::compare;

fn main() {
    // A tiny Llama-style model: 4 layers, GQA (4 query heads, 2 KV heads),
    // 64-token context split into 4 uniform slices, 2 pipeline stages.
    let cfg = ExecConfig {
        exchange: true,       // §4.2 attention context exchange
        vocab_parallel: true, // §4.3 vocabulary parallelism
        ..ExecConfig::small()
    };

    println!("SlimPipe quickstart — {} layers over {} stages,", cfg.layers, cfg.stages);
    println!(
        "{} tokens/microbatch in {} uniform slices, {} microbatches\n",
        cfg.seq, cfg.slices, cfg.microbatches
    );

    let steps = 5;
    let lr = 0.3;
    println!("training {steps} steps on the pipeline (threads = devices)...");
    let pipe = run_pipeline(&cfg, PipelineKind::SlimPipe, steps, lr);
    println!("training {steps} steps on a single device for reference...");
    let reference = run_reference(&cfg, steps, lr);

    println!("\nstep  pipeline loss  reference loss");
    for (i, (a, b)) in pipe.losses.iter().zip(&reference.losses).enumerate() {
        println!("{:>4}  {:>13.6}  {:>14.6}", i, a, b);
    }

    let c = compare(&pipe, &reference);
    println!("\nmax loss deviation: {:.2e}", c.max_loss_diff);
    println!(
        "worst gradient deviation: {:.2e} (at {})",
        c.worst_grad_rel, c.worst_grad_name
    );
    println!("\nper-device peak activation bytes: {:?}", pipe.peak_act_bytes);
    println!(
        "\nThe sliced, exchanged, vocabulary-parallel pipeline computes exactly \
         what the reference computes — SlimPipe only reschedules the work."
    );
}
