//! Trace a real 4-stage pipeline run and render what the observability
//! layer captured: a per-stage ASCII timeline of the recorded spans, the
//! derived run metrics (busy/wait, bubble, MFU, overlap), the unified
//! counter registry, and a Chrome-trace JSON file you can drop into
//! `chrome://tracing` or Perfetto.
//!
//! ```bash
//! cargo run --release --example trace_view
//! ```

use slimpipe::exec::schedule::PipelineKind;
use slimpipe::exec::train::try_run_pipeline_traced;
use slimpipe::exec::{ExecConfig, TraceSession};
use slimpipe::obs::{chrome, OpTag, SpanKind, TraceReport};

/// One timeline row: the track's spans bucketed onto `width` columns of
/// the session's `[t0, t1]` window, densest-kind-wins per column.
fn ascii_row(report: &TraceReport, name: &str, t0: f64, t1: f64, width: usize) -> String {
    let mut cols = vec![' '; width];
    let span_of = |us: f64| -> usize {
        (((us - t0) / (t1 - t0).max(1e-9)) * width as f64).clamp(0.0, (width - 1) as f64) as usize
    };
    if let Some(track) = report.track(name) {
        for s in &track.spans {
            let glyph = match s.kind {
                SpanKind::Compute { op: OpTag::Fwd, .. } => 'F',
                SpanKind::Compute { op: OpTag::Bwd, .. } => 'B',
                SpanKind::Compute { op: OpTag::Server, .. } => 's',
                SpanKind::ExchangeWait { .. } => 'x',
                SpanKind::PostFlush { .. } => '.',
                SpanKind::CkptSave { .. } => 'C',
                SpanKind::Recovery { .. } => 'R',
            };
            for c in cols.iter_mut().take(span_of(s.start_us + s.dur_us) + 1).skip(span_of(s.start_us))
            {
                // Compute wins over waits/flushes sharing a column.
                if *c == ' ' || matches!(glyph, 'F' | 'B') {
                    *c = glyph;
                }
            }
        }
    }
    cols.into_iter().collect()
}

fn main() {
    let cfg = ExecConfig {
        stages: 4,
        layers: 4,
        slices: 4,
        microbatches: 4,
        seq: 128,
        exchange: true,
        async_exchange: true,
        ..ExecConfig::small()
    };
    let steps = 3;
    let trace = TraceSession::new();
    let result = try_run_pipeline_traced(&cfg, PipelineKind::SlimPipe, steps, 0.1, &trace)
        .expect("clean traced run");
    let report = trace.report();

    // Window: extremes over every recorded span.
    let (mut t0, mut t1) = (f64::INFINITY, f64::NEG_INFINITY);
    for track in &report.tracks {
        for s in &track.spans {
            t0 = t0.min(s.start_us);
            t1 = t1.max(s.start_us + s.dur_us);
        }
    }
    println!(
        "traced {} stages x {} steps: {} spans over {:.2} ms\n",
        cfg.stages,
        steps,
        report.span_count(),
        (t1 - t0) / 1e3
    );

    let width = 72;
    println!("timeline  (F=fwd  B=bwd  x=exchange-wait  .=post-flush  s=server)");
    let mut names: Vec<&str> = report.tracks.iter().map(|t| t.name.as_str()).collect();
    names.sort_unstable();
    for name in names {
        println!("  {name:>8} |{}|", ascii_row(&report, name, t0, t1, width));
    }

    let m = &result.metrics;
    println!("\nderived metrics");
    for d in 0..cfg.stages {
        println!(
            "  stage {d}: busy {:8.3} ms   exchange-wait {:8.3} ms",
            m.stage_busy_s[d] * 1e3,
            m.exchange_wait_s[d] * 1e3
        );
    }
    println!("  makespan          {:8.3} ms", m.measured_makespan_s.unwrap_or(0.0) * 1e3);
    println!("  bubble fraction   {:8.3}", m.measured_bubble.unwrap_or(0.0));
    println!("  relative MFU      {:8.3}", m.mfu.unwrap_or(0.0));
    println!("  overlap efficiency{:8.3}", m.overlap_efficiency.unwrap_or(0.0));

    println!("\ncounters (this run)");
    for (name, value) in m.counters.rows() {
        if value > 0 {
            println!("  {name:<24} {value:>10}");
        }
    }

    let path = std::env::temp_dir().join("slimpipe_trace_view.json");
    chrome::write_chrome_trace(&report, &path).expect("write chrome trace");
    println!("\nchrome trace written to {} — open in chrome://tracing or Perfetto", path.display());
}
