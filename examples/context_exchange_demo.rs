//! Demonstrate attention context exchange end to end: plan a round,
//! execute the exchanged attention across real compute-server threads, and
//! confirm the merged result equals local computation.
//!
//! ```bash
//! cargo run --release --example context_exchange_demo
//! ```

use slimpipe::core::exchange::{plan_round, steady_round_slices, theta_bound, theta_formula};
use slimpipe::exec::comm::{spawn_server, ExchangeMap, ExchangeRt};
use slimpipe::exec::layer::AttnExecutor;
use slimpipe::tensor::attention::{forward_chunked, HeadCfg};
use slimpipe::tensor::init::seeded_uniform;
use slimpipe::tensor::Tensor;

fn main() {
    let (p, n, l) = (4usize, 8usize, 64usize);
    println!("Context exchange demo: p={p} devices, n={n} slices, slice length {l}\n");

    // 1. The planner's view of one steady-state round.
    let slices = steady_round_slices(p, n, 6);
    let plan = plan_round(&slices, l as u64);
    println!(
        "round slices: {:?}",
        slices.iter().map(|s| s.unwrap()).collect::<Vec<_>>()
    );
    println!("balanced loads (pairs): {:?}", plan.load);
    println!("balance ratio: {:.3}", plan.balance_ratio());
    println!(
        "Eq. 2: formula {:.3}, bound {:.3} (units of L*Mh)\n",
        theta_formula(p, n),
        theta_bound(p, n)
    );

    // 2. Execute exchanged attention for the heaviest device across real
    //    server threads and check exactness.
    let cfg = HeadCfg::new(4, 2, 8);
    let map = ExchangeMap::build(p, n, l as u64);
    let mut servers = Vec::new();
    let mut joins = Vec::new();
    for d in 0..p {
        let (h, j) = spawn_server(d, None);
        servers.push(h);
        joins.push(j);
    }

    // The device with the deepest slice this round is the heaviest.
    let heavy = slices
        .iter()
        .enumerate()
        .max_by_key(|(_, s)| s.unwrap())
        .unwrap()
        .0;
    let j = slices[heavy].unwrap() as usize;
    let q = seeded_uniform(l, 32, 1);
    let ks: Vec<Tensor> = (0..=j).map(|c| seeded_uniform(l, 16, 10 + c as u64)).collect();
    let vs: Vec<Tensor> = (0..=j).map(|c| seeded_uniform(l, 16, 50 + c as u64)).collect();
    let chunks: Vec<(&Tensor, &Tensor)> = ks.iter().zip(vs.iter()).collect();
    let offsets: Vec<usize> = (0..=j).map(|c| c * l).collect();

    let remote = map.remote_chunks(heavy, j);
    println!(
        "device {heavy} (slice {j}) ships {} of its {} KV chunks: {:?}",
        remote.len(),
        j + 1,
        remote
    );

    let mut rt = ExchangeRt::new(heavy, &servers, &map);
    let exchanged = rt.attn_forward(&q, &chunks, &offsets, cfg, j * l).expect("servers alive");
    let local = forward_chunked(&q, &chunks, &offsets, cfg, j * l);
    println!(
        "max |exchanged - local| = {:.2e} (online-softmax merge is exact)",
        exchanged.o.max_abs_diff(&local.o)
    );

    for s in &servers {
        s.stop();
    }
    for j in joins {
        j.join().unwrap();
    }
    println!("\nRemote partial attention merged exactly — no approximation anywhere.");
}
