//! Umbrella crate re-exporting the full SlimPipe reproduction workspace.
//!
//! See `README.md` for the architecture overview and `DESIGN.md` for the
//! system inventory and per-experiment index.

pub use slimpipe_cluster as cluster;
pub use slimpipe_core as core;
pub use slimpipe_exec as exec;
pub use slimpipe_model as model;
pub use slimpipe_obs as obs;
pub use slimpipe_parallel as parallel;
pub use slimpipe_planner as planner;
pub use slimpipe_sched as sched;
pub use slimpipe_sim as sim;
pub use slimpipe_tensor as tensor;
