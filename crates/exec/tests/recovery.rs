//! Elastic recovery matrix: the supervise → fail → re-plan → restore →
//! continue loop must heal every recoverable fault class at every
//! surviving geometry, across worker-pool widths and async exchange
//! on/off — and the healed run's final numbers must be **bit-identical**
//! to a clean run launched at the surviving geometry from the same
//! snapshot. Plus: seeded chaos liveness (random fault schedules end in a
//! result or a structured error within a wall-clock bound — never a hang,
//! never a bare panic).
//!
//! Runs under the CI determinism matrix (`RAYON_NUM_THREADS ∈ {1, 4}`)
//! and the chaos matrix (`SLIMPIPE_CHAOS_SEED ∈ {1, 2, 3}`).

use slimpipe_exec::checkpoint::snapshot_path;
use slimpipe_exec::fault::InjectedPanic;
use slimpipe_exec::model::{CheckpointCfg, ExecConfig};
use slimpipe_exec::schedule::PipelineKind;
use slimpipe_exec::train::{try_resume_pipeline_from, try_run_pipeline};
use slimpipe_exec::verify::assert_bit_identical;
use slimpipe_exec::{
    run_elastic, CheckpointState, DriverCfg, DriverOutcome, ExecError, FaultKind, FaultPlan,
    FaultSite, ShrinkReplanner,
};
use std::sync::{Mutex, Once};
use std::time::{Duration, Instant};

/// `rayon::set_num_threads` is process-global: tests that change the pool
/// width serialize on this lock and restore the default on exit.
static WIDTH_LOCK: Mutex<()> = Mutex::new(());

fn width_lock() -> std::sync::MutexGuard<'static, ()> {
    WIDTH_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Injected panics are expected; keep them out of the test output.
fn quiet_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedPanic>().is_none() {
                prev(info);
            }
        }));
    });
}

/// Snappy failure detection for tests (the defaults are sized for real
/// runs).
fn fast_cfg() -> ExecConfig {
    ExecConfig {
        watchdog_ms: 2_000,
        exchange_timeout_ms: 100,
        exchange_retries: 2,
        ..ExecConfig::small()
    }
}

fn site(iteration: usize, stage: usize, mb: u32, slice: u32) -> FaultSite {
    FaultSite { iteration, stage, mb, slice }
}

fn unique_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("slimpipe_recovery_{}_{tag}.ckpt", std::process::id()))
}

/// Remove the retention manifest and every snapshot a test may have left.
fn clean_ckpt_files(path: &std::path::Path) {
    let _ = std::fs::remove_file(path);
    for it in 0..16 {
        let _ = std::fs::remove_file(snapshot_path(path, it));
    }
}

/// Run the elastic driver and prove the determinism contract: the healed
/// run's result is bit-identical to a clean resume of the driver's final
/// config (faults stripped) from the snapshot at `expect_resume_from`.
/// `expect_resume_from == 0` means no snapshot existed: the clean twin is
/// a from-scratch run at the surviving geometry.
fn assert_recovers_bit_identically(
    cfg: &ExecConfig,
    steps: usize,
    expect_to_stages: usize,
    expect_resume_from: usize,
    what: &str,
) -> DriverOutcome {
    let outcome = run_elastic(cfg, &DriverCfg::default(), steps, 0.2, &mut ShrinkReplanner)
        .unwrap_or_else(|e| panic!("{what}: recoverable fault must heal, got {e}"));
    assert_eq!(outcome.log.events.len(), 1, "{what}: one recovery:\n{}", outcome.log);
    let ev = &outcome.log.events[0];
    assert_eq!(ev.to_stages, expect_to_stages, "{what}: surviving geometry");
    assert_eq!(ev.resumed_from, expect_resume_from, "{what}: restore point");
    let clean_cfg = ExecConfig { fault_plan: None, ..outcome.final_config.clone() };
    let want = if expect_resume_from == 0 {
        try_run_pipeline(&clean_cfg, PipelineKind::SlimPipe, steps, 0.2)
            .unwrap_or_else(|e| panic!("{what}: clean from-scratch run: {e}"))
    } else {
        let ck = cfg.checkpoint.as_ref().expect("checkpointed job");
        let snap =
            CheckpointState::load(&snapshot_path(&ck.path, expect_resume_from as u64), &clean_cfg)
                .unwrap_or_else(|e| panic!("{what}: restore-point snapshot must load: {e}"));
        try_resume_pipeline_from(&clean_cfg, PipelineKind::SlimPipe, steps, 0.2, snap)
            .unwrap_or_else(|e| panic!("{what}: clean resume: {e}"))
    };
    assert_bit_identical(&outcome.result, &want);
    outcome
}

// ---- the kill matrix ----

/// Stage panic at iteration 3 of a 2-stage job, across worker widths and
/// async exchange on/off: the driver shrinks to 1 stage, restores the
/// iteration-2 snapshot, and finishes bit-identical to the clean twin.
#[test]
fn stage_panic_recovery_matrix() {
    quiet_injected_panics();
    let _g = width_lock();
    for threads in [1usize, 4] {
        for async_exchange in [false, true] {
            rayon::set_num_threads(threads);
            let tag = format!("panic_t{threads}_a{async_exchange}");
            let path = unique_path(&tag);
            clean_ckpt_files(&path);
            let cfg = ExecConfig {
                exchange: true,
                async_exchange,
                checkpoint: Some(CheckpointCfg { every: 2, path: path.clone(), keep_last: 0 }),
                fault_plan: Some(FaultPlan::single(site(3, 1, 0, 1), FaultKind::StagePanic)),
                ..fast_cfg()
            };
            assert_recovers_bit_identically(&cfg, 6, 1, 2, &tag);
            clean_ckpt_files(&path);
        }
    }
    rayon::set_num_threads(0);
}

/// Device loss: killing a vocabulary-shard server mid-run is a recoverable
/// `ServerDied` (or the watchdog's `RendezvousStuck`); the survivors
/// re-shard the vocabulary on restore and the healed run is bit-identical.
#[test]
fn server_death_recovery_matrix() {
    quiet_injected_panics();
    let _g = width_lock();
    for threads in [1usize, 4] {
        rayon::set_num_threads(threads);
        let tag = format!("srvdeath_t{threads}");
        let path = unique_path(&tag);
        clean_ckpt_files(&path);
        let cfg = ExecConfig {
            vocab_parallel: true,
            checkpoint: Some(CheckpointCfg { every: 2, path: path.clone(), keep_last: 0 }),
            fault_plan: Some(FaultPlan::single(
                site(3, 1, 0, 0),
                FaultKind::ServerDeath { device: 0 },
            )),
            ..fast_cfg()
        };
        assert_recovers_bit_identically(&cfg, 6, 1, 2, &tag);
        clean_ckpt_files(&path);
    }
    rayon::set_num_threads(0);
}

/// A 3-stage vocabulary-parallel job loses a stage and re-plans onto 2:
/// the snapshot's 3 vocab shards are gathered and re-sliced into 2 by
/// `regroup`, and the healed run is still bit-identical to the clean twin.
#[test]
fn three_stage_vocab_parallel_shrinks_to_two() {
    quiet_injected_panics();
    let path = unique_path("vp3to2");
    clean_ckpt_files(&path);
    let cfg = ExecConfig {
        layers: 6,
        stages: 3,
        slices: 6,
        vocab_parallel: true,
        checkpoint: Some(CheckpointCfg { every: 2, path: path.clone(), keep_last: 0 }),
        fault_plan: Some(FaultPlan::single(site(3, 2, 0, 1), FaultKind::StagePanic)),
        ..fast_cfg()
    };
    assert_recovers_bit_identically(&cfg, 6, 2, 2, "vp3to2");
    clean_ckpt_files(&path);
}

/// A fault before the first snapshot: nothing to restore, so the job
/// restarts from scratch at the surviving geometry (`resumed_from == 0`)
/// and must match a clean from-scratch run there.
#[test]
fn fault_before_first_snapshot_restarts_from_scratch() {
    quiet_injected_panics();
    let path = unique_path("scratch");
    clean_ckpt_files(&path);
    let cfg = ExecConfig {
        checkpoint: Some(CheckpointCfg { every: 4, path: path.clone(), keep_last: 0 }),
        fault_plan: Some(FaultPlan::single(site(1, 1, 0, 1), FaultKind::StagePanic)),
        ..fast_cfg()
    };
    assert_recovers_bit_identically(&cfg, 6, 1, 0, "scratch");
    clean_ckpt_files(&path);
}

/// A stage-0 fault site survives the geometry filter (stage 0 exists at
/// every geometry) — the exact-site disarm is what stops it re-firing on
/// the healed run.
#[test]
fn stage_zero_fault_is_disarmed_by_site_match() {
    quiet_injected_panics();
    let path = unique_path("stage0");
    clean_ckpt_files(&path);
    let cfg = ExecConfig {
        checkpoint: Some(CheckpointCfg { every: 2, path: path.clone(), keep_last: 0 }),
        fault_plan: Some(FaultPlan::single(site(3, 0, 0, 1), FaultKind::StagePanic)),
        ..fast_cfg()
    };
    assert_recovers_bit_identically(&cfg, 6, 1, 2, "stage0");
    clean_ckpt_files(&path);
}

/// An exhausted recovery budget surfaces the original structured error
/// instead of looping.
#[test]
fn exhausted_budget_surfaces_the_fault() {
    quiet_injected_panics();
    let cfg = ExecConfig {
        fault_plan: Some(FaultPlan::single(site(0, 1, 0, 1), FaultKind::StagePanic)),
        ..fast_cfg()
    };
    let driver = DriverCfg { max_recoveries: 0, ..DriverCfg::default() };
    let err = run_elastic(&cfg, &driver, 2, 0.2, &mut ShrinkReplanner)
        .expect_err("zero budget must not heal");
    assert!(matches!(err, ExecError::StagePanic { stage: 1, .. }), "got {err}");
}

/// A single-stage job has nowhere to shrink: the fault surfaces as the
/// structured error even with budget left.
#[test]
fn single_stage_fault_cannot_shrink() {
    quiet_injected_panics();
    let cfg = ExecConfig {
        stages: 1,
        fault_plan: Some(FaultPlan::single(site(0, 0, 0, 1), FaultKind::StagePanic)),
        ..fast_cfg()
    };
    let err = run_elastic(&cfg, &DriverCfg::default(), 2, 0.2, &mut ShrinkReplanner)
        .expect_err("no survivors to shrink onto");
    assert!(matches!(err, ExecError::StagePanic { stage: 0, .. }), "got {err}");
}

// ---- chaos liveness ----

/// Deterministic split-free PRNG for the chaos schedules.
fn lcg(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *seed >> 33
}

/// A random (but seed-deterministic) fault schedule over the job's
/// geometry. `CorruptActivation` keeps off stage 0 (tokens, not floats —
/// `validate` rejects it there).
fn chaos_plan(seed: &mut u64, stages: usize) -> FaultPlan {
    let n = 1 + (lcg(seed) % 3) as usize;
    let faults = (0..n)
        .map(|_| {
            let stage = (lcg(seed) % stages as u64) as usize;
            let s = site(
                (lcg(seed) % 5) as usize,
                stage,
                (lcg(seed) % 2) as u32,
                (lcg(seed) % 4) as u32,
            );
            let kind = match lcg(seed) % 6 {
                0 => FaultKind::StagePanic,
                1 => FaultKind::ServerDeath { device: (lcg(seed) % stages as u64) as usize },
                2 => FaultKind::DropReply,
                3 => FaultKind::DelayReply { ms: 1 + lcg(seed) % 50 },
                4 => FaultKind::CorruptActivation,
                _ => FaultKind::Stall,
            };
            if matches!(kind, FaultKind::CorruptActivation) && s.stage == 0 {
                (FaultSite { stage: 1, ..s }, kind)
            } else {
                (s, kind)
            }
        })
        .collect();
    FaultPlan { faults }
}

/// Chaos liveness: under seeded-random fault schedules the elastic driver
/// always ends — a completed (possibly degraded) run or a structured
/// `ExecError` — within a generous wall-clock bound. No hangs, no bare
/// panics, no process aborts.
#[test]
fn chaos_schedules_always_terminate() {
    quiet_injected_panics();
    let seeds: Vec<u64> = match std::env::var("SLIMPIPE_CHAOS_SEED") {
        Ok(s) => vec![s.parse().expect("SLIMPIPE_CHAOS_SEED must be an integer")],
        Err(_) => vec![11, 12, 13],
    };
    for seed0 in seeds {
        let mut seed = seed0;
        let tag = format!("chaos{seed0}");
        let path = unique_path(&tag);
        clean_ckpt_files(&path);
        let cfg = ExecConfig {
            exchange: true,
            watchdog_ms: 1_000,
            checkpoint: Some(CheckpointCfg { every: 2, path: path.clone(), keep_last: 1 }),
            fault_plan: Some(chaos_plan(&mut seed, 2)),
            ..fast_cfg()
        };
        let start = Instant::now();
        let res = run_elastic(&cfg, &DriverCfg::default(), 4, 0.2, &mut ShrinkReplanner);
        let elapsed = start.elapsed();
        assert!(
            elapsed < Duration::from_secs(120),
            "seed {seed0}: driver took {elapsed:?} — liveness bound blown"
        );
        match res {
            Ok(outcome) => {
                assert!(!outcome.result.losses.is_empty(), "seed {seed0}: empty healed run");
                assert!(outcome.final_config.stages >= 1 && outcome.final_config.stages <= 2);
            }
            Err(e) => {
                // Structured, printable, and not a config bug: the chaos
                // generator only emits geometry-valid schedules.
                let msg = e.to_string();
                assert!(!msg.is_empty());
                assert!(
                    !matches!(e, ExecError::InvalidConfig(_)),
                    "seed {seed0}: chaos plan should validate, got {e}"
                );
            }
        }
        clean_ckpt_files(&path);
    }
}

/// The observability layer × the elastic driver: one trace session spans
/// the failed attempt, the recovery transitions, and the healed resume.
/// The driver's `Fail → Replan → Restore` phases land as spans on the
/// `driver` track, and — the iteration-boundary invariant — a trace
/// drained *mid-recovery* (from inside the replanner, between attempts)
/// sees exactly the checkpoint saves that happened, no duplicates, no
/// drops, with the final report a superset in the same order.
#[test]
fn recovery_transitions_appear_in_the_trace() {
    use slimpipe_exec::obs::{RecoveryPhase, SpanKind, TraceReport, TraceSession};
    use slimpipe_exec::{run_elastic_traced, Replanner};

    quiet_injected_panics();
    let path = unique_path("traced");
    clean_ckpt_files(&path);
    // every=2, panic at iteration 3, 6 steps: attempt 1 saves at 2 and
    // dies at 3; the healed resume restores 2, saves at 4, finishes at 6.
    let cfg = ExecConfig {
        exchange: true,
        checkpoint: Some(CheckpointCfg { every: 2, path: path.clone(), keep_last: 0 }),
        fault_plan: Some(FaultPlan::single(site(3, 1, 0, 1), FaultKind::StagePanic)),
        ..fast_cfg()
    };
    let ckpt_iterations = |report: &TraceReport| -> Vec<usize> {
        report.track("driver").map_or(Vec::new(), |t| {
            t.spans
                .iter()
                .filter_map(|s| match s.kind {
                    SpanKind::CkptSave { iteration } => Some(iteration),
                    _ => None,
                })
                .collect()
        })
    };
    let trace = TraceSession::new();
    let mut mid_saves: Option<Vec<usize>> = None;
    {
        let mid_session = trace.clone();
        let mut replanner = |base: &ExecConfig, survivors: usize| {
            mid_saves = Some(ckpt_iterations(&mid_session.report()));
            ShrinkReplanner.replan(base, survivors)
        };
        let outcome =
            run_elastic_traced(&cfg, &DriverCfg::default(), 6, 0.2, &mut replanner, &trace)
                .expect("recoverable fault must heal");
        assert_eq!(outcome.log.events.len(), 1, "one recovery:\n{}", outcome.log);
        assert_eq!(outcome.log.events[0].resumed_from, 2);
    }
    assert_eq!(
        mid_saves.as_deref(),
        Some(&[2usize][..]),
        "mid-recovery drain must see the attempt-1 save exactly once"
    );
    let report = trace.report();
    assert_eq!(
        ckpt_iterations(&report),
        vec![2, 4],
        "final trace: attempt-1 and healed-run saves, neither duplicated nor dropped"
    );
    let driver = report.track("driver").expect("driver track recorded");
    for want in [RecoveryPhase::Fail, RecoveryPhase::Replan, RecoveryPhase::Restore] {
        assert!(
            driver.spans.iter().any(|s| matches!(
                s.kind,
                SpanKind::Recovery { attempt: 1, phase } if phase == want
            )),
            "driver track is missing the {want:?} span"
        );
    }
    // Both attempts' stage threads recorded onto the shared stage tracks.
    let stage0 = report.track("stage0").expect("stage0 track");
    assert!(
        stage0.spans.iter().any(|s| matches!(s.kind, SpanKind::Compute { .. })),
        "healed run recorded compute spans"
    );
    clean_ckpt_files(&path);
}
