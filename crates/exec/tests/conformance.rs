//! Differential conformance of the executor: every pipeline schedule the
//! executor can run must reproduce the single-device, unsliced reference —
//! within f32-reassociation tolerance for the schedule/feature matrix, and
//! **bit-for-bit** where the docs claim determinism:
//!
//! * the same configuration re-run is bit-identical (seeded params, seeded
//!   data, static schedules, per-chunk reply channels);
//! * the worker-pool width (`RAYON_NUM_THREADS` / `rayon::set_num_threads`)
//!   never changes a single output bit — kernels partition work into
//!   disjoint-output tasks and reduce partials in fixed task order;
//! * context exchange is a pure *relocation* of work: partials and dQ
//!   contributions fold in ascending chunk order on both paths, so an
//!   exchange run is bit-identical to a local run;
//! * after warm-up, training spawns zero new pool threads — parallel
//!   regions reuse the persistent workers.

use slimpipe_exec::model::ExecConfig;
use slimpipe_exec::schedule::PipelineKind;
use slimpipe_exec::train::{run_pipeline, run_reference, RunResult};
use slimpipe_exec::verify::assert_equivalent;
use std::sync::Mutex;

/// Serialises the tests that install a process-wide width override.
static WIDTH_LOCK: Mutex<()> = Mutex::new(());

/// Bit-level equality of everything a run produces.
fn assert_bits_equal(got: &RunResult, want: &RunResult, what: &str) {
    assert_eq!(got.losses, want.losses, "{what}: losses differ");
    assert_eq!(got.layer_grads.len(), want.layer_grads.len(), "{what}");
    for (li, (a, b)) in got.layer_grads.iter().zip(&want.layer_grads).enumerate() {
        for ((name, ga), (_, gb)) in a.tensors().iter().zip(b.tensors().iter()) {
            assert_eq!(
                ga.max_abs_diff(gb),
                0.0,
                "{what}: layer{li}.{name} gradient bits differ"
            );
        }
        assert_eq!(a.norm1, b.norm1, "{what}: layer{li}.norm1");
        assert_eq!(a.norm2, b.norm2, "{what}: layer{li}.norm2");
    }
    assert_eq!(got.embed_grad.max_abs_diff(&want.embed_grad), 0.0, "{what}: embedding");
    assert_eq!(got.out_grad.max_abs_diff(&want.out_grad), 0.0, "{what}: output");
    assert_eq!(got.final_norm_grad, want.final_norm_grad, "{what}: final norm");
}

/// Every `PipelineKind` the executor can run, against the reference.
#[test]
fn every_pipeline_kind_matches_the_reference() {
    let base = ExecConfig::small();
    let matrix = [
        (PipelineKind::GPipe, ExecConfig { slices: 1, microbatches: 3, ..base.clone() }),
        (PipelineKind::OneFOneB, ExecConfig { slices: 1, microbatches: 4, ..base.clone() }),
        (PipelineKind::TeraPipe, ExecConfig { slices: 4, microbatches: 2, ..base.clone() }),
        (PipelineKind::SlimPipe, ExecConfig { slices: 4, microbatches: 2, ..base.clone() }),
    ];
    for (kind, cfg) in matrix {
        let want = run_reference(&cfg, 2, 0.2);
        let got = run_pipeline(&cfg, kind, 2, 0.2);
        assert_equivalent(&got, &want, 2e-3);
    }
}

/// The feature configs the paper leans on: vocabulary parallelism, context
/// exchange, activation offloading — alone and combined.
#[test]
fn feature_configs_match_the_reference() {
    let base = ExecConfig { stages: 2, slices: 8, microbatches: 2, ..ExecConfig::small() };
    let configs = [
        ("vocab_parallel", ExecConfig { vocab_parallel: true, ..base.clone() }),
        ("exchange", ExecConfig { exchange: true, ..base.clone() }),
        ("offload", ExecConfig { offload_budget: Some(80_000), ..base.clone() }),
        (
            "everything_on",
            ExecConfig {
                vocab_parallel: true,
                exchange: true,
                offload_budget: Some(80_000),
                ..base
            },
        ),
    ];
    for (name, cfg) in configs {
        let want = run_reference(&cfg, 2, 0.2);
        let got = run_pipeline(&cfg, PipelineKind::SlimPipe, 2, 0.2);
        let c = slimpipe_exec::verify::compare(&got, &want);
        assert!(
            c.max_loss_diff < 3e-3 && c.worst_grad_rel < 3e-3,
            "{name}: loss diff {} / worst grad {} at {}",
            c.max_loss_diff,
            c.worst_grad_rel,
            c.worst_grad_name
        );
    }
}

/// Re-running a configuration is bit-identical, and the worker-pool width
/// never changes a bit — at a size whose attention genuinely fans out
/// (4 heads × 64 × 64 × 8 = PAR_ATTN_WORK).
#[test]
fn runs_are_bit_reproducible_and_width_independent() {
    let _g = WIDTH_LOCK.lock().unwrap();
    let cfg = ExecConfig {
        stages: 2,
        slices: 2,
        seq: 128,
        microbatches: 2,
        ..ExecConfig::small()
    };
    rayon::set_num_threads(1);
    let narrow = run_pipeline(&cfg, PipelineKind::SlimPipe, 2, 0.2);
    let narrow2 = run_pipeline(&cfg, PipelineKind::SlimPipe, 2, 0.2);
    rayon::set_num_threads(8);
    let wide = run_pipeline(&cfg, PipelineKind::SlimPipe, 2, 0.2);
    rayon::set_num_threads(0);
    assert_bits_equal(&narrow2, &narrow, "re-run at width 1");
    assert_bits_equal(&wide, &narrow, "width 8 vs width 1");
}

/// Context exchange relocates chunk work to peer devices; since both paths
/// fold partials and dQ in ascending chunk order, the gradients and losses
/// must be bit-identical, not merely close.
#[test]
fn context_exchange_is_bit_identical_to_local_execution() {
    let _g = WIDTH_LOCK.lock().unwrap();
    let cfg = ExecConfig { stages: 2, slices: 8, microbatches: 2, ..ExecConfig::small() };
    let local = run_pipeline(&cfg, PipelineKind::SlimPipe, 2, 0.2);
    let exchanged =
        run_pipeline(&ExecConfig { exchange: true, ..cfg.clone() }, PipelineKind::SlimPipe, 2, 0.2);
    assert_bits_equal(&exchanged, &local, "exchange vs local");

    // And under a forced pool width, still the same bits.
    rayon::set_num_threads(4);
    let exchanged_wide =
        run_pipeline(&ExecConfig { exchange: true, ..cfg.clone() }, PipelineKind::SlimPipe, 2, 0.2);
    rayon::set_num_threads(0);
    assert_bits_equal(&exchanged_wide, &local, "exchange at width 4 vs local");
}

/// The acceptance criterion on the pool lifecycle: once the pool is warm,
/// further training — more steps, more runs, different schedules — spawns
/// zero new pool threads. (Stage and server threads are per-run executor
/// architecture, not pool traffic; the pool counter isolates the kernels'
/// fan-out.)
#[test]
fn steady_state_training_spawns_zero_pool_threads() {
    let _g = WIDTH_LOCK.lock().unwrap();
    let cfg = ExecConfig {
        stages: 2,
        slices: 2,
        seq: 128,
        microbatches: 2,
        ..ExecConfig::small()
    };
    rayon::set_num_threads(4);
    // Warm-up: first parallel regions may grow the pool to width - 1.
    let _ = run_pipeline(&cfg, PipelineKind::SlimPipe, 1, 0.2);
    let warm = rayon::pool_thread_spawns();
    assert!(rayon::pool_size() >= 3, "pool must hold the warm-up workers");
    // Steady state: multi-step training and fresh runs spawn nothing.
    let _ = run_pipeline(&cfg, PipelineKind::SlimPipe, 3, 0.2);
    let _ = run_reference(&cfg, 2, 0.2);
    let _ = run_pipeline(&cfg, PipelineKind::TeraPipe, 1, 0.2);
    // Read the counter before releasing the width override: concurrent
    // tests in this binary could otherwise grow the pool to the host's
    // full parallelism in the gap and fail this assertion spuriously.
    let spawns_after = rayon::pool_thread_spawns();
    rayon::set_num_threads(0);
    assert_eq!(spawns_after, warm, "steady-state training must not spawn pool threads");
}
