//! Differential conformance of the executor: every pipeline schedule the
//! executor can run must reproduce the single-device, unsliced reference —
//! within f32-reassociation tolerance for the schedule/feature matrix, and
//! **bit-for-bit** where the docs claim determinism:
//!
//! * the same configuration re-run is bit-identical (seeded params, seeded
//!   data, static schedules, per-chunk reply channels);
//! * the worker-pool width (`RAYON_NUM_THREADS` / `rayon::set_num_threads`)
//!   never changes a single output bit — kernels partition work into
//!   disjoint-output tasks and reduce partials in fixed task order;
//! * context exchange is a pure *relocation* of work: partials and dQ
//!   contributions fold in ascending chunk order on both paths, so an
//!   exchange run is bit-identical to a local run;
//! * after warm-up, training spawns zero new pool threads — parallel
//!   regions reuse the persistent workers.

use slimpipe_exec::layer::{
    layer_backward, layer_forward, DkvAccum, KvCache, LayerGrads, LayerParams, LocalAttn,
    SliceCache,
};
use slimpipe_exec::model::ExecConfig;
use slimpipe_exec::schedule::PipelineKind;
use slimpipe_exec::train::{run_pipeline, run_reference, RunResult};
use slimpipe_exec::verify::assert_equivalent;
use slimpipe_tensor::attention::HeadCfg;
use slimpipe_tensor::init::seeded_uniform;
use slimpipe_tensor::matmul::{matmul, matmul_nt, matmul_tn, with_kernel_nr};
use slimpipe_tensor::{pool, rmsnorm, swiglu, Tensor};
use std::sync::Mutex;

/// Serialises the tests that install a process-wide width override.
static WIDTH_LOCK: Mutex<()> = Mutex::new(());

/// Bit-level equality of everything a run produces.
fn assert_bits_equal(got: &RunResult, want: &RunResult, what: &str) {
    assert_eq!(got.losses, want.losses, "{what}: losses differ");
    assert_eq!(got.layer_grads.len(), want.layer_grads.len(), "{what}");
    for (li, (a, b)) in got.layer_grads.iter().zip(&want.layer_grads).enumerate() {
        for ((name, ga), (_, gb)) in a.tensors().iter().zip(b.tensors().iter()) {
            assert_eq!(
                ga.max_abs_diff(gb),
                0.0,
                "{what}: layer{li}.{name} gradient bits differ"
            );
        }
        assert_eq!(a.norm1, b.norm1, "{what}: layer{li}.norm1");
        assert_eq!(a.norm2, b.norm2, "{what}: layer{li}.norm2");
    }
    assert_eq!(got.embed_grad.max_abs_diff(&want.embed_grad), 0.0, "{what}: embedding");
    assert_eq!(got.out_grad.max_abs_diff(&want.out_grad), 0.0, "{what}: output");
    assert_eq!(got.final_norm_grad, want.final_norm_grad, "{what}: final norm");
}

/// Every `PipelineKind` the executor can run, against the reference.
#[test]
fn every_pipeline_kind_matches_the_reference() {
    let base = ExecConfig::small();
    let matrix = [
        (PipelineKind::GPipe, ExecConfig { slices: 1, microbatches: 3, ..base.clone() }),
        (PipelineKind::OneFOneB, ExecConfig { slices: 1, microbatches: 4, ..base.clone() }),
        (PipelineKind::TeraPipe, ExecConfig { slices: 4, microbatches: 2, ..base.clone() }),
        (PipelineKind::SlimPipe, ExecConfig { slices: 4, microbatches: 2, ..base.clone() }),
    ];
    for (kind, cfg) in matrix {
        let want = run_reference(&cfg, 2, 0.2);
        let got = run_pipeline(&cfg, kind, 2, 0.2);
        assert_equivalent(&got, &want, 2e-3);
    }
}

/// The feature configs the paper leans on: vocabulary parallelism, context
/// exchange, activation offloading — alone and combined.
#[test]
fn feature_configs_match_the_reference() {
    let base = ExecConfig { stages: 2, slices: 8, microbatches: 2, ..ExecConfig::small() };
    let configs = [
        ("vocab_parallel", ExecConfig { vocab_parallel: true, ..base.clone() }),
        ("exchange", ExecConfig { exchange: true, ..base.clone() }),
        ("offload", ExecConfig { offload_budget: Some(80_000), ..base.clone() }),
        (
            "everything_on",
            ExecConfig {
                vocab_parallel: true,
                exchange: true,
                offload_budget: Some(80_000),
                ..base
            },
        ),
    ];
    for (name, cfg) in configs {
        let want = run_reference(&cfg, 2, 0.2);
        let got = run_pipeline(&cfg, PipelineKind::SlimPipe, 2, 0.2);
        let c = slimpipe_exec::verify::compare(&got, &want);
        assert!(
            c.max_loss_diff < 3e-3 && c.worst_grad_rel < 3e-3,
            "{name}: loss diff {} / worst grad {} at {}",
            c.max_loss_diff,
            c.worst_grad_rel,
            c.worst_grad_name
        );
    }
}

/// Re-running a configuration is bit-identical, and the worker-pool width
/// never changes a bit — at a size whose attention genuinely fans out
/// (4 heads × 64 × 64 × 8 = PAR_ATTN_WORK).
#[test]
fn runs_are_bit_reproducible_and_width_independent() {
    let _g = WIDTH_LOCK.lock().unwrap();
    let cfg = ExecConfig {
        stages: 2,
        slices: 2,
        seq: 128,
        microbatches: 2,
        ..ExecConfig::small()
    };
    rayon::set_num_threads(1);
    let narrow = run_pipeline(&cfg, PipelineKind::SlimPipe, 2, 0.2);
    let narrow2 = run_pipeline(&cfg, PipelineKind::SlimPipe, 2, 0.2);
    rayon::set_num_threads(8);
    let wide = run_pipeline(&cfg, PipelineKind::SlimPipe, 2, 0.2);
    rayon::set_num_threads(0);
    assert_bits_equal(&narrow2, &narrow, "re-run at width 1");
    assert_bits_equal(&wide, &narrow, "width 8 vs width 1");
}

/// Context exchange relocates chunk work to peer devices; since both paths
/// fold partials and dQ in ascending chunk order, the gradients and losses
/// must be bit-identical, not merely close.
#[test]
fn context_exchange_is_bit_identical_to_local_execution() {
    let _g = WIDTH_LOCK.lock().unwrap();
    let cfg = ExecConfig { stages: 2, slices: 8, microbatches: 2, ..ExecConfig::small() };
    let local = run_pipeline(&cfg, PipelineKind::SlimPipe, 2, 0.2);
    let exchanged =
        run_pipeline(&ExecConfig { exchange: true, ..cfg.clone() }, PipelineKind::SlimPipe, 2, 0.2);
    assert_bits_equal(&exchanged, &local, "exchange vs local");

    // And under a forced pool width, still the same bits.
    rayon::set_num_threads(4);
    let exchanged_wide =
        run_pipeline(&ExecConfig { exchange: true, ..cfg.clone() }, PipelineKind::SlimPipe, 2, 0.2);
    rayon::set_num_threads(0);
    assert_bits_equal(&exchanged_wide, &local, "exchange at width 4 vs local");
}

// ---- fused ≡ unfused: the separate-pass layer (the PR 3 hot loop,
// reconstructed from the standalone kernels) against today's GEMM-fused
// layer, bit-for-bit ----

/// PR 3's layer forward: materialised RMSNorm / SwiGLU passes and
/// separate residual adds around plain GEMMs.
fn unfused_layer_forward(
    p: &LayerParams,
    hc: HeadCfg,
    x: Tensor,
    kv: &mut KvCache,
    slice: usize,
    q_offset: usize,
) -> (Tensor, SliceCache) {
    let normed1 = rmsnorm::forward(&x, &p.norm1);
    let q = matmul(&normed1, p.wq.tensor());
    let k = matmul(&normed1, p.wk.tensor());
    let v = matmul(&normed1, p.wv.tensor());
    normed1.recycle();
    kv.push(k, v, q_offset);
    let part = {
        let (chunks, offsets) = kv.visible(slice);
        slimpipe_tensor::attention::forward_chunked(&q, &chunks, &offsets, hc, q_offset)
    };
    let mut resid_mid = matmul(&part.o, p.wo.tensor());
    resid_mid.add_assign(&x);
    let normed2 = rmsnorm::forward(&resid_mid, &p.norm2);
    let gate = matmul(&normed2, p.w_gate.tensor());
    let up = matmul(&normed2, p.w_up.tensor());
    normed2.recycle();
    let act = swiglu::forward(&gate, &up);
    let mut y = matmul(&act, p.w_down.tensor());
    act.recycle();
    y.add_assign(&resid_mid);
    let cache = SliceCache { x_in: x, q, attn_out: part.o, lse: part.lse, resid_mid, gate, up };
    (y, cache)
}

/// PR 3's layer backward, same deal.
#[allow(clippy::too_many_arguments)]
fn unfused_layer_backward(
    p: &LayerParams,
    g: &mut LayerGrads,
    hc: HeadCfg,
    cache: SliceCache,
    d_y: Tensor,
    kv: &mut KvCache,
    dkv: &mut DkvAccum,
    slice: usize,
    q_offset: usize,
) -> Tensor {
    dkv.ensure(slice + 1);
    let normed2 = rmsnorm::forward(&cache.resid_mid, &p.norm2);
    let act = swiglu::forward(&cache.gate, &cache.up);
    g.w_down.add_assign_recycle(matmul_tn(&act, &d_y));
    act.recycle();
    let d_act = matmul_nt(&d_y, p.w_down.tensor());
    let (d_gate, d_up) = swiglu::backward(&cache.gate, &cache.up, &d_act);
    d_act.recycle();
    g.w_gate.add_assign_recycle(matmul_tn(&normed2, &d_gate));
    g.w_up.add_assign_recycle(matmul_tn(&normed2, &d_up));
    normed2.recycle();
    let mut d_normed2 = matmul_nt(&d_gate, p.w_gate.tensor());
    d_normed2.add_assign_recycle(matmul_nt(&d_up, p.w_up.tensor()));
    d_gate.recycle();
    d_up.recycle();
    let (d_resid_from_norm, d_norm2) = rmsnorm::backward(&cache.resid_mid, &p.norm2, &d_normed2);
    d_normed2.recycle();
    for (a, b) in g.norm2.iter_mut().zip(&d_norm2) {
        *a += b;
    }
    pool::recycle(d_norm2);
    let mut d_resid_mid = d_y;
    d_resid_mid.add_assign_recycle(d_resid_from_norm);

    g.wo.add_assign_recycle(matmul_tn(&cache.attn_out, &d_resid_mid));
    let d_o = matmul_nt(&d_resid_mid, p.wo.tensor());

    let (d_q, per_chunk) = {
        let (chunks, offsets) = kv.visible(slice);
        slimpipe_tensor::attention::backward_chunked(
            &cache.q, &chunks, &offsets, &d_o, &cache.attn_out, &cache.lse, hc, q_offset,
        )
    };
    d_o.recycle();
    let mut d_k_own = None;
    let mut d_v_own = None;
    for (c, (dk, dv)) in per_chunk.into_iter().enumerate() {
        if c == slice {
            d_k_own = Some(dk);
            d_v_own = Some(dv);
        } else {
            dkv.add(c, dk, dv);
        }
    }
    let (mut d_k, mut d_v) = (d_k_own.expect("diagonal chunk"), d_v_own.expect("diagonal"));
    if let Some((ak, av)) = dkv.take(slice) {
        d_k.add_assign_recycle(ak);
        d_v.add_assign_recycle(av);
    }
    kv.release(slice);

    let normed1 = rmsnorm::forward(&cache.x_in, &p.norm1);
    g.wq.add_assign_recycle(matmul_tn(&normed1, &d_q));
    g.wk.add_assign_recycle(matmul_tn(&normed1, &d_k));
    g.wv.add_assign_recycle(matmul_tn(&normed1, &d_v));
    normed1.recycle();
    let mut d_normed1 = matmul_nt(&d_q, p.wq.tensor());
    d_normed1.add_assign_recycle(matmul_nt(&d_k, p.wk.tensor()));
    d_normed1.add_assign_recycle(matmul_nt(&d_v, p.wv.tensor()));
    d_q.recycle();
    d_k.recycle();
    d_v.recycle();
    let (d_x_from_norm, d_norm1) = rmsnorm::backward(&cache.x_in, &p.norm1, &d_normed1);
    d_normed1.recycle();
    for (a, b) in g.norm1.iter_mut().zip(&d_norm1) {
        *a += b;
    }
    pool::recycle(d_norm1);
    let mut d_x = d_resid_mid;
    d_x.add_assign_recycle(d_x_from_norm);
    cache.recycle();
    d_x
}

/// The GEMM-fused layer (packed weights, prologue/epilogue fusion) must be
/// **bit-identical** to the separate-pass composition — across worker-pool
/// widths and both micro-kernel widths. This is the executor-level anchor
/// of the fusion rework: pipeline losses cannot drift from the PR 3
/// reference because not a single layer bit does.
#[test]
fn fused_layer_is_bit_identical_to_unfused_composition() {
    let _g = WIDTH_LOCK.lock().unwrap();
    let cfg = ExecConfig { seq: 128, slices: 2, ..ExecConfig::small() };
    let hc = cfg.head_cfg();
    let p = LayerParams::build(&cfg, 0);
    let x = seeded_uniform(cfg.seq, cfg.hidden(), 300);
    let d_y = seeded_uniform(cfg.seq, cfg.hidden(), 301);
    let l = cfg.slice_len();

    let run = |fused: bool| {
        let mut kv = KvCache::default();
        let mut caches = Vec::new();
        let mut y_cat = Tensor::zeros(cfg.seq, cfg.hidden());
        for j in 0..cfg.slices {
            let xs = x.rows_slice(j * l, l);
            let (y, c) = if fused {
                layer_forward(&p, hc, xs, &mut kv, j, j * l, &mut LocalAttn).expect("local attn")
            } else {
                unfused_layer_forward(&p, hc, xs, &mut kv, j, j * l)
            };
            y_cat.set_rows(j * l, &y);
            y.recycle();
            caches.push(c);
        }
        let mut g = LayerGrads::zeros(&cfg);
        let mut dkv = DkvAccum::default();
        dkv.ensure(cfg.slices);
        let mut dx_cat = Tensor::zeros(cfg.seq, cfg.hidden());
        for j in (0..cfg.slices).rev() {
            let dys = d_y.rows_slice(j * l, l);
            let cache = caches.pop().expect("LIFO stash");
            let dx = if fused {
                layer_backward(&p, &mut g, hc, cache, dys, &mut kv, &mut dkv, j, j * l, &mut LocalAttn)
                    .expect("local attn")
            } else {
                unfused_layer_backward(&p, &mut g, hc, cache, dys, &mut kv, &mut dkv, j, j * l)
            };
            dx_cat.set_rows(j * l, &dx);
            dx.recycle();
        }
        (y_cat, dx_cat, g)
    };

    for nr in [8usize, 16] {
        for threads in [1usize, 4] {
            with_kernel_nr(nr, || {
                rayon::set_num_threads(threads);
                let (y_f, dx_f, g_f) = run(true);
                let (y_u, dx_u, g_u) = run(false);
                rayon::set_num_threads(0);
                assert_eq!(y_f, y_u, "forward bits differ (nr={nr}, threads={threads})");
                assert_eq!(dx_f, dx_u, "dX bits differ (nr={nr}, threads={threads})");
                for ((name, a), (_, b)) in g_f.tensors().iter().zip(g_u.tensors().iter()) {
                    assert_eq!(
                        a.max_abs_diff(b),
                        0.0,
                        "grad {name} bits differ (nr={nr}, threads={threads})"
                    );
                }
                assert_eq!(g_f.norm1, g_u.norm1, "norm1 (nr={nr}, threads={threads})");
                assert_eq!(g_f.norm2, g_u.norm2, "norm2 (nr={nr}, threads={threads})");
            });
        }
    }
}

/// Whole-pipeline runs must not change a bit when the micro-kernel width
/// flips: the k-accumulation order per C element is width-independent.
#[test]
fn kernel_width_never_changes_pipeline_bits() {
    let _g = WIDTH_LOCK.lock().unwrap();
    let cfg = ExecConfig { stages: 2, slices: 4, microbatches: 2, ..ExecConfig::small() };
    let narrow = with_kernel_nr(8, || run_pipeline(&cfg, PipelineKind::SlimPipe, 2, 0.2));
    let wide = with_kernel_nr(16, || run_pipeline(&cfg, PipelineKind::SlimPipe, 2, 0.2));
    assert_bits_equal(&wide, &narrow, "kernel width 16 vs 8");
}

/// The acceptance criterion on the pool lifecycle: once the pool is warm,
/// further training — more steps, more runs, different schedules — spawns
/// zero new pool threads. (Stage and server threads are per-run executor
/// architecture, not pool traffic; the pool counter isolates the kernels'
/// fan-out.)
#[test]
fn steady_state_training_spawns_zero_pool_threads() {
    let _g = WIDTH_LOCK.lock().unwrap();
    let cfg = ExecConfig {
        stages: 2,
        slices: 2,
        seq: 128,
        microbatches: 2,
        ..ExecConfig::small()
    };
    rayon::set_num_threads(4);
    // Warm-up: first parallel regions may grow the pool to width - 1.
    let _ = run_pipeline(&cfg, PipelineKind::SlimPipe, 1, 0.2);
    let warm = rayon::pool_thread_spawns();
    assert!(rayon::pool_size() >= 3, "pool must hold the warm-up workers");
    // Steady state: multi-step training and fresh runs spawn nothing.
    let _ = run_pipeline(&cfg, PipelineKind::SlimPipe, 3, 0.2);
    let _ = run_reference(&cfg, 2, 0.2);
    let _ = run_pipeline(&cfg, PipelineKind::TeraPipe, 1, 0.2);
    // Read the counter before releasing the width override: concurrent
    // tests in this binary could otherwise grow the pool to the host's
    // full parallelism in the gap and fail this assertion spuriously.
    let spawns_after = rayon::pool_thread_spawns();
    rayon::set_num_threads(0);
    assert_eq!(spawns_after, warm, "steady-state training must not spawn pool threads");
}
