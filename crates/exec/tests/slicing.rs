//! Conformance of the explicit slicing axis: pair-balanced (TeraPipe-style)
//! partitions and ragged (variable-length) microbatches must run the real
//! pipeline — exchange on/off, vocabulary parallelism on/off — and
//! reproduce the single-device reference, with the usual bit-determinism
//! guarantees:
//!
//! * context exchange stays a pure relocation of work under unequal slice
//!   volumes (bit-identical to local execution);
//! * the worker-pool width never changes a bit;
//! * a `SlicePolicy::Explicit` spelling of the uniform bounds is
//!   bit-identical to `SlicePolicy::Uniform` — including the byte-exact
//!   per-device peak-activation accounting, which pins the refactor to the
//!   pre-refactor uniform behaviour.

use slimpipe_exec::model::ExecConfig;
use slimpipe_exec::schedule::PipelineKind;
use slimpipe_exec::train::{run_pipeline, run_reference, RunResult};
use slimpipe_exec::verify::assert_equivalent;
use slimpipe_exec::SlicePolicy;
use std::sync::Mutex;

/// Serialises the tests that install a process-wide width override.
static WIDTH_LOCK: Mutex<()> = Mutex::new(());

fn assert_bits_equal(got: &RunResult, want: &RunResult, what: &str) {
    assert_eq!(got.losses, want.losses, "{what}: losses differ");
    for (li, (a, b)) in got.layer_grads.iter().zip(&want.layer_grads).enumerate() {
        for ((name, ga), (_, gb)) in a.tensors().iter().zip(b.tensors().iter()) {
            assert_eq!(ga.max_abs_diff(gb), 0.0, "{what}: layer{li}.{name} bits differ");
        }
    }
    assert_eq!(got.embed_grad.max_abs_diff(&want.embed_grad), 0.0, "{what}: embedding");
    assert_eq!(got.out_grad.max_abs_diff(&want.out_grad), 0.0, "{what}: output");
    assert_eq!(got.final_norm_grad, want.final_norm_grad, "{what}: final norm");
}

fn pair_balanced_base() -> ExecConfig {
    ExecConfig {
        stages: 2,
        slices: 8,
        microbatches: 2,
        slicing: SlicePolicy::PairBalanced,
        ..ExecConfig::small()
    }
}

fn ragged_base() -> ExecConfig {
    // Variable-length microbatches; the second is deliberately not a
    // multiple of the slice count, so uniform policy takes the `even`
    // (remainder-spreading) bounds.
    ExecConfig {
        stages: 2,
        slices: 4,
        microbatches: 3,
        mb_seqs: Some(vec![64, 46, 80]),
        ..ExecConfig::small()
    }
}

/// Pair-balanced slicing across the feature matrix must match the
/// single-device reference.
#[test]
fn pair_balanced_matches_reference_across_features() {
    let base = pair_balanced_base();
    let configs = [
        ("plain", base.clone()),
        ("exchange", ExecConfig { exchange: true, ..base.clone() }),
        ("vocab_parallel", ExecConfig { vocab_parallel: true, ..base.clone() }),
        (
            "exchange+vocab_parallel",
            ExecConfig { exchange: true, vocab_parallel: true, ..base.clone() },
        ),
    ];
    for (name, cfg) in configs {
        let want = run_reference(&cfg, 2, 0.2);
        let got = run_pipeline(&cfg, PipelineKind::SlimPipe, 2, 0.2);
        let c = slimpipe_exec::verify::compare(&got, &want);
        assert!(
            c.max_loss_diff < 3e-3 && c.worst_grad_rel < 3e-3,
            "{name}: loss diff {} / worst grad {} at {}",
            c.max_loss_diff,
            c.worst_grad_rel,
            c.worst_grad_name
        );
    }
}

/// Ragged microbatches across the feature matrix must match the reference
/// (which runs the same ragged data unsliced on one device).
#[test]
fn ragged_microbatches_match_reference_across_features() {
    let base = ragged_base();
    let configs = [
        ("plain", base.clone()),
        ("exchange", ExecConfig { exchange: true, ..base.clone() }),
        ("vocab_parallel", ExecConfig { vocab_parallel: true, ..base.clone() }),
        (
            "everything",
            ExecConfig {
                exchange: true,
                vocab_parallel: true,
                slicing: SlicePolicy::PairBalanced,
                ..base.clone()
            },
        ),
    ];
    for (name, cfg) in configs {
        let want = run_reference(&cfg, 2, 0.2);
        let got = run_pipeline(&cfg, PipelineKind::SlimPipe, 2, 0.2);
        let c = slimpipe_exec::verify::compare(&got, &want);
        assert!(
            c.max_loss_diff < 3e-3 && c.worst_grad_rel < 3e-3,
            "{name}: loss diff {} / worst grad {} at {}",
            c.max_loss_diff,
            c.worst_grad_rel,
            c.worst_grad_name
        );
    }
}

/// TeraPipe's schedule with its natural (pair-balanced) partition — the
/// ablation the paper argues against, now executable for real.
#[test]
fn terapipe_schedule_with_pair_balanced_slices_matches_reference() {
    let cfg = ExecConfig {
        slicing: SlicePolicy::PairBalanced,
        slices: 4,
        microbatches: 2,
        ..ExecConfig::small()
    };
    let want = run_reference(&cfg, 1, 0.2);
    let got = run_pipeline(&cfg, PipelineKind::TeraPipe, 1, 0.2);
    assert_equivalent(&got, &want, 2e-3);
}

/// Context exchange under unequal slice volumes is still a pure relocation
/// of work: bit-identical to local execution, at any pool width.
#[test]
fn pair_balanced_exchange_is_bit_identical_to_local() {
    let _g = WIDTH_LOCK.lock().unwrap();
    let cfg = pair_balanced_base();
    let local = run_pipeline(&cfg, PipelineKind::SlimPipe, 2, 0.2);
    let exchanged =
        run_pipeline(&ExecConfig { exchange: true, ..cfg.clone() }, PipelineKind::SlimPipe, 2, 0.2);
    assert_bits_equal(&exchanged, &local, "pair-balanced exchange vs local");

    rayon::set_num_threads(4);
    let exchanged_wide =
        run_pipeline(&ExecConfig { exchange: true, ..cfg }, PipelineKind::SlimPipe, 2, 0.2);
    rayon::set_num_threads(0);
    assert_bits_equal(&exchanged_wide, &local, "pair-balanced exchange at width 4");
}

/// Ragged runs are bit-reproducible and pool-width independent.
#[test]
fn ragged_runs_are_bit_reproducible_and_width_independent() {
    let _g = WIDTH_LOCK.lock().unwrap();
    let cfg = ExecConfig { exchange: true, ..ragged_base() };
    rayon::set_num_threads(1);
    let narrow = run_pipeline(&cfg, PipelineKind::SlimPipe, 2, 0.2);
    let narrow2 = run_pipeline(&cfg, PipelineKind::SlimPipe, 2, 0.2);
    rayon::set_num_threads(4);
    let wide = run_pipeline(&cfg, PipelineKind::SlimPipe, 2, 0.2);
    rayon::set_num_threads(0);
    assert_bits_equal(&narrow2, &narrow, "ragged re-run at width 1");
    assert_bits_equal(&wide, &narrow, "ragged width 4 vs width 1");
}

/// `Explicit` bounds spelling the uniform partition must be bit-identical
/// to `Uniform` — losses, gradients, *and* the byte-exact per-device peak
/// activation accounting (the pre-refactor uniform behaviour).
#[test]
fn explicit_uniform_bounds_reproduce_uniform_accounting() {
    let uniform = ExecConfig {
        stages: 2,
        slices: 8,
        microbatches: 2,
        ..ExecConfig::small()
    };
    let l = (uniform.seq / uniform.slices) as u64;
    let bounds: Vec<u64> = (0..=uniform.slices as u64).map(|i| i * l).collect();
    let explicit = ExecConfig {
        slicing: SlicePolicy::Explicit(bounds),
        ..uniform.clone()
    };
    let a = run_pipeline(&uniform, PipelineKind::SlimPipe, 2, 0.2);
    let b = run_pipeline(&explicit, PipelineKind::SlimPipe, 2, 0.2);
    assert_bits_equal(&b, &a, "explicit-uniform vs uniform");
    assert_eq!(
        a.peak_act_bytes, b.peak_act_bytes,
        "peak activation accounting must not depend on the policy spelling"
    );
    assert_eq!(a.offload_transferred, b.offload_transferred);
}

/// Offloading composes with the new axis: a tight budget forces spills and
/// the numerics still match the reference.
#[test]
fn offload_composes_with_pair_balanced_and_ragged() {
    let cfg = ExecConfig {
        slicing: SlicePolicy::PairBalanced,
        mb_seqs: Some(vec![72, 56]),
        offload_budget: Some(80_000),
        ..pair_balanced_base()
    };
    let want = run_reference(&ExecConfig { offload_budget: None, ..cfg.clone() }, 2, 0.2);
    let got = run_pipeline(&cfg, PipelineKind::SlimPipe, 2, 0.2);
    assert_equivalent(&got, &want, 3e-3);
}

/// Per-microbatch slice counts (the planner's output axis): microbatches
/// cut at different granularities run the real pipeline and match the
/// reference, with and without ragged lengths / exchange / vocabulary
/// parallelism.
#[test]
fn per_microbatch_slice_counts_match_reference() {
    let base = ExecConfig {
        stages: 2,
        slices: 8,
        microbatches: 3,
        mb_slices: Some(vec![2, 4, 8]),
        ..ExecConfig::small()
    };
    let ragged = ExecConfig {
        mb_seqs: Some(vec![48, 64, 96]),
        mb_slices: Some(vec![2, 4, 6]),
        ..base.clone()
    };
    let configs = [
        ("plain", base.clone()),
        ("exchange", ExecConfig { exchange: true, ..base.clone() }),
        ("vocab_parallel", ExecConfig { vocab_parallel: true, ..base.clone() }),
        ("ragged", ragged.clone()),
        (
            "ragged+everything",
            ExecConfig { exchange: true, vocab_parallel: true, ..ragged },
        ),
    ];
    for (name, cfg) in configs {
        let want = run_reference(&cfg, 2, 0.2);
        let got = run_pipeline(&cfg, PipelineKind::SlimPipe, 2, 0.2);
        let c = slimpipe_exec::verify::compare(&got, &want);
        assert!(
            c.max_loss_diff < 3e-3 && c.worst_grad_rel < 3e-3,
            "{name}: loss diff {} / worst grad {} at {}",
            c.max_loss_diff,
            c.worst_grad_rel,
            c.worst_grad_name
        );
    }
}

/// Exchange under per-microbatch slice counts stays a pure relocation of
/// work: bit-identical to local execution at every pool width.
#[test]
fn per_microbatch_counts_exchange_is_bit_identical_to_local() {
    let _g = WIDTH_LOCK.lock().unwrap();
    let cfg = ExecConfig {
        stages: 2,
        slices: 8,
        microbatches: 2,
        mb_slices: Some(vec![8, 4]),
        mb_seqs: Some(vec![64, 48]),
        ..ExecConfig::small()
    };
    let local = run_pipeline(&cfg, PipelineKind::SlimPipe, 2, 0.2);
    let exchanged =
        run_pipeline(&ExecConfig { exchange: true, ..cfg.clone() }, PipelineKind::SlimPipe, 2, 0.2);
    assert_bits_equal(&exchanged, &local, "per-mb-count exchange vs local");

    rayon::set_num_threads(4);
    let exchanged_wide =
        run_pipeline(&ExecConfig { exchange: true, ..cfg }, PipelineKind::SlimPipe, 2, 0.2);
    rayon::set_num_threads(0);
    assert_bits_equal(&exchanged_wide, &local, "per-mb-count exchange at width 4");
}

/// A global slice count spelled as per-microbatch counts is bit-identical
/// to the global spelling — schedules, stashes, exchange maps, and the
/// byte-exact memory accounting all collapse to the same run.
#[test]
fn per_microbatch_spelling_of_global_count_is_bit_identical() {
    let global = ExecConfig {
        stages: 2,
        slices: 4,
        microbatches: 2,
        ..ExecConfig::small()
    };
    let per_mb = ExecConfig { mb_slices: Some(vec![4, 4]), ..global.clone() };
    let a = run_pipeline(&global, PipelineKind::SlimPipe, 2, 0.2);
    let b = run_pipeline(&per_mb, PipelineKind::SlimPipe, 2, 0.2);
    assert_bits_equal(&b, &a, "per-mb spelling vs global");
    assert_eq!(a.peak_act_bytes, b.peak_act_bytes);
}

/// Peak-memory story survives the policy axis: pair-balanced slicing's
/// early slices are *long* (the §4.1.1 memory problem), so its device-0
/// peak is at least the uniform run's.
#[test]
fn pair_balanced_peaks_at_least_uniform() {
    let uniform = ExecConfig {
        stages: 2,
        slices: 8,
        microbatches: 2,
        ..ExecConfig::small()
    };
    let balanced = ExecConfig { slicing: SlicePolicy::PairBalanced, ..uniform.clone() };
    let u = run_pipeline(&uniform, PipelineKind::SlimPipe, 1, 0.1);
    let b = run_pipeline(&balanced, PipelineKind::SlimPipe, 1, 0.1);
    assert!(
        b.peak_act_bytes[0] >= u.peak_act_bytes[0],
        "pair-balanced {} vs uniform {}",
        b.peak_act_bytes[0],
        u.peak_act_bytes[0]
    );
}
