//! Fault-injection matrix: every fault class from [`FaultKind`], crossed
//! with the degradation policies and worker-pool widths, must end in one
//! of exactly two ways — a structured [`ExecError`] naming the failed
//! unit, or a completed run whose numbers are *bit-identical* to the
//! clean run. Never a hang, never a process abort, never a silently
//! different result.
//!
//! The checkpoint/restore tests assert the strongest form of the recovery
//! guarantee: a run killed mid-training and resumed from its snapshot
//! produces the same bits as the run that never died.

use slimpipe_exec::comm::ExchangeMap;
use slimpipe_exec::fault::InjectedPanic;
use slimpipe_exec::model::{CheckpointCfg, ExecConfig};
use slimpipe_exec::schedule::PipelineKind;
use slimpipe_exec::train::{run_pipeline, try_resume_pipeline, try_run_pipeline, RunResult};
use slimpipe_exec::verify::assert_bit_identical;
use slimpipe_exec::{DegradePolicy, ExecError, FaultKind, FaultPlan, FaultSite};
use std::sync::{Mutex, Once};
use std::time::{Duration, Instant};

/// `rayon::set_num_threads` is process-global: tests that change the pool
/// width serialize on this lock and restore the default on exit.
static WIDTH_LOCK: Mutex<()> = Mutex::new(());

/// Take the width lock even if a failing sibling poisoned it — the guard
/// protects a process global, not data that an unwind can corrupt.
fn width_lock() -> std::sync::MutexGuard<'static, ()> {
    WIDTH_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Injected panics are expected; keep them out of the test output. Real
/// panics still print through the default hook.
fn quiet_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedPanic>().is_none() {
                prev(info);
            }
        }));
    });
}

/// Snappy failure detection for tests: the defaults are sized for real
/// runs (seconds); these keep a deliberately-broken run short.
fn fast_cfg() -> ExecConfig {
    ExecConfig {
        watchdog_ms: 2_000,
        exchange_timeout_ms: 100,
        exchange_retries: 2,
        ..ExecConfig::small()
    }
}

fn site(iteration: usize, stage: usize, mb: u32, slice: u32) -> FaultSite {
    FaultSite { iteration, stage, mb, slice }
}

fn unique_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("slimpipe_faults_{}_{tag}.ckpt", std::process::id()))
}

// ---- panic containment ----

#[test]
fn stage_panic_is_contained_and_names_the_unit() {
    quiet_injected_panics();
    let _g = width_lock();
    for threads in [1usize, 4] {
        for policy in [DegradePolicy::Abort, DegradePolicy::SkipMicrobatch] {
            rayon::set_num_threads(threads);
            let cfg = ExecConfig {
                policy,
                fault_plan: Some(FaultPlan::single(site(0, 1, 1, 2), FaultKind::StagePanic)),
                ..fast_cfg()
            };
            let err = try_run_pipeline(&cfg, PipelineKind::SlimPipe, 1, 0.2)
                .expect_err("injected panic must fail the run");
            rayon::set_num_threads(0);
            match err {
                ExecError::StagePanic { stage: 1, iteration: 0, mb: 1, slice: 2, ref msg } => {
                    assert!(msg.contains("injected"), "unexpected message: {msg}")
                }
                other => panic!("threads={threads}: expected StagePanic(1,0,1,2), got {other}"),
            }
        }
    }
}

#[test]
fn injected_failures_are_deterministic_across_runs() {
    quiet_injected_panics();
    let _g = width_lock();
    let cfg = ExecConfig {
        fault_plan: Some(FaultPlan::single(site(0, 0, 0, 1), FaultKind::StagePanic)),
        ..fast_cfg()
    };
    let a = try_run_pipeline(&cfg, PipelineKind::SlimPipe, 1, 0.2).unwrap_err();
    let b = try_run_pipeline(&cfg, PipelineKind::SlimPipe, 1, 0.2).unwrap_err();
    assert_eq!(a, b, "same fault plan must produce the same structured error");
}

// ---- exchange-server faults ----

/// A `(stage, slice, peer)` where `stage` actually ships chunks to
/// `peer`'s server — a fault armed on a purely-local op would never be
/// consumed. (With p=2, n=8 only the deepest slice exchanges.)
fn remote_site(cfg: &ExecConfig) -> (usize, u32, usize) {
    let map = ExchangeMap::build(cfg.stages, cfg.slices, (cfg.seq / cfg.slices) as u64);
    for d in 0..cfg.stages {
        for j in 0..cfg.slices {
            if let Some(&(_, peer)) = map.remote_chunks(d, j).first() {
                return (d, j as u32, peer);
            }
        }
    }
    panic!("no slice of this configuration exchanges");
}

#[test]
fn server_death_aborts_or_falls_back_by_policy() {
    let _g = width_lock();
    let base = ExecConfig { stages: 2, slices: 8, exchange: true, ..fast_cfg() };
    let (st, sl, peer) = remote_site(&base);
    let plan = FaultPlan::single(site(0, st, 0, sl), FaultKind::ServerDeath { device: peer });
    let clean = run_pipeline(&base, PipelineKind::SlimPipe, 1, 0.2);
    for threads in [1usize, 4] {
        rayon::set_num_threads(threads);
        // Abort: the dead server is a structured failure.
        let cfg = ExecConfig { fault_plan: Some(plan.clone()), ..base.clone() };
        let err = try_run_pipeline(&cfg, PipelineKind::SlimPipe, 1, 0.2)
            .expect_err("abort policy must surface the dead server");
        assert!(
            matches!(err, ExecError::ServerDied { .. } | ExecError::ExchangeTimeout { .. }),
            "threads={threads}: got {err}"
        );
        // Degrading policies: the chunk is recomputed locally, and since
        // exchange is an exact optimization the run's numbers match the
        // clean run bit for bit.
        for policy in [DegradePolicy::SkipMicrobatch, DegradePolicy::LocalFallback] {
            let cfg = ExecConfig { policy, fault_plan: Some(plan.clone()), ..base.clone() };
            let r = try_run_pipeline(&cfg, PipelineKind::SlimPipe, 1, 0.2)
                .expect("degrading policy must survive a dead server");
            assert!(
                r.fault_stats.local_fallbacks >= 1,
                "threads={threads}, {policy:?}: no fallback recorded"
            );
            assert_bit_identical(&r, &clean);
        }
        rayon::set_num_threads(0);
    }
}

#[test]
fn dropped_reply_recovers_via_retry() {
    let _g = width_lock();
    let base = ExecConfig { stages: 2, slices: 8, exchange: true, ..fast_cfg() };
    let (st, sl, _) = remote_site(&base);
    let clean = run_pipeline(&base, PipelineKind::SlimPipe, 1, 0.2);
    for threads in [1usize, 4] {
        rayon::set_num_threads(threads);
        let cfg = ExecConfig {
            fault_plan: Some(FaultPlan::single(site(0, st, 0, sl), FaultKind::DropReply)),
            ..base.clone()
        };
        // Retry is recovery, not degradation: even the abort policy rides
        // through a lost reply.
        let r = try_run_pipeline(&cfg, PipelineKind::SlimPipe, 1, 0.2)
            .expect("a dropped reply must be retried, not fatal");
        rayon::set_num_threads(0);
        assert!(r.fault_stats.exchange_retries >= 1, "threads={threads}: no retry recorded");
        assert_bit_identical(&r, &clean);
    }
}

#[test]
fn delayed_reply_recovers_within_backoff() {
    let _g = width_lock();
    let base = ExecConfig { stages: 2, slices: 8, exchange: true, ..fast_cfg() };
    let (st, sl, _) = remote_site(&base);
    let clean = run_pipeline(&base, PipelineKind::SlimPipe, 1, 0.2);
    let cfg = ExecConfig {
        fault_plan: Some(FaultPlan::single(
            site(0, st, 0, sl),
            FaultKind::DelayReply { ms: 250 },
        )),
        ..base
    };
    let r = try_run_pipeline(&cfg, PipelineKind::SlimPipe, 1, 0.2)
        .expect("a delayed reply must be absorbed by timeout + backoff");
    assert!(r.fault_stats.exchange_retries >= 1, "delay never tripped the timeout");
    assert_bit_identical(&r, &clean);
}

// ---- non-finite degradation ----

#[test]
fn corrupt_activation_policy_matrix() {
    let _g = width_lock();
    let plan = FaultPlan::single(site(0, 1, 0, 1), FaultKind::CorruptActivation);
    for threads in [1usize, 4] {
        rayon::set_num_threads(threads);
        // Abort: poison is detected at the loss and named.
        let cfg = ExecConfig { fault_plan: Some(plan.clone()), ..fast_cfg() };
        let err = try_run_pipeline(&cfg, PipelineKind::SlimPipe, 1, 0.2)
            .expect_err("NaN loss under abort policy must fail");
        match err {
            ExecError::NonFinite { stage: 1, iteration: 0, mb: 0, ref what, .. } => {
                assert_eq!(what, "loss")
            }
            other => panic!("threads={threads}: expected NonFinite, got {other}"),
        }
        // Skip-and-renormalize (LocalFallback degrades NaNs the same way):
        // the poisoned microbatch is dropped, the run completes finite.
        for policy in [DegradePolicy::SkipMicrobatch, DegradePolicy::LocalFallback] {
            let cfg = ExecConfig { policy, fault_plan: Some(plan.clone()), ..fast_cfg() };
            let r = try_run_pipeline(&cfg, PipelineKind::SlimPipe, 2, 0.2)
                .expect("skip policy must survive a poisoned microbatch");
            assert_eq!(r.fault_stats.skipped_microbatches, 1, "threads={threads}");
            assert_eq!(r.losses.len(), 2);
            assert!(r.losses.iter().all(|l| l.is_finite()), "losses: {:?}", r.losses);
            assert!(
                r.layer_grads
                    .iter()
                    .flat_map(|g| g.tensors())
                    .all(|(_, t)| t.as_slice().iter().all(|v| v.is_finite())),
                "threads={threads}: non-finite gradient leaked through the skip"
            );
        }
        rayon::set_num_threads(0);
    }
}

#[test]
fn skip_and_renormalize_is_deterministic() {
    let _g = width_lock();
    let cfg = ExecConfig {
        policy: DegradePolicy::SkipMicrobatch,
        fault_plan: Some(FaultPlan::single(site(0, 1, 1, 0), FaultKind::CorruptActivation)),
        ..fast_cfg()
    };
    let a = try_run_pipeline(&cfg, PipelineKind::SlimPipe, 2, 0.2).unwrap();
    let b = try_run_pipeline(&cfg, PipelineKind::SlimPipe, 2, 0.2).unwrap();
    assert_eq!(a.fault_stats, b.fault_stats);
    assert_bit_identical(&a, &b);
}

// ---- watchdog ----

#[test]
fn stalled_stage_trips_the_peer_watchdog() {
    let _g = width_lock();
    let cfg = ExecConfig {
        watchdog_ms: 300,
        fault_plan: Some(FaultPlan::single(site(0, 1, 0, 0), FaultKind::Stall)),
        ..fast_cfg()
    };
    let t0 = Instant::now();
    let err = try_run_pipeline(&cfg, PipelineKind::SlimPipe, 1, 0.2)
        .expect_err("a wedged stage must be detected");
    // The watchdog reports the *blocked* (stage, unit) pair; the stalled
    // stage itself drains as a secondary Aborted.
    match err {
        ExecError::RendezvousStuck { stage, waited_ms, .. } => {
            assert_ne!(stage, 1, "the report names the waiter, not the wedge");
            assert!(waited_ms >= 300);
        }
        other => panic!("expected RendezvousStuck, got {other}"),
    }
    assert!(
        t0.elapsed() < Duration::from_secs(30),
        "watchdog took {:?} — effectively a hang",
        t0.elapsed()
    );
}

// ---- vocabulary-parallel faults ----

#[test]
fn vocab_server_death_is_a_structured_error() {
    let _g = width_lock();
    // Vocabulary shards have no local fallback (the weights live in the
    // server): death is fatal under every policy.
    for policy in [DegradePolicy::Abort, DegradePolicy::LocalFallback] {
        let cfg = ExecConfig {
            vocab_parallel: true,
            policy,
            fault_plan: Some(FaultPlan::single(
                site(0, 1, 0, 0),
                FaultKind::ServerDeath { device: 0 },
            )),
            ..fast_cfg()
        };
        let err = try_run_pipeline(&cfg, PipelineKind::SlimPipe, 1, 0.2)
            .expect_err("vocab shard death must fail the run");
        assert!(
            matches!(
                err,
                ExecError::ServerDied { device: 0, .. } | ExecError::RendezvousStuck { .. }
            ),
            "{policy:?}: got {err}"
        );
    }
}

// ---- checkpoint / restore ----

#[test]
fn resume_after_crash_is_bit_identical_to_uninterrupted_run() {
    quiet_injected_panics();
    let _g = width_lock();
    let path = unique_path("resume");
    let base = ExecConfig {
        vocab_parallel: true,
        checkpoint: Some(CheckpointCfg { every: 2, path: path.clone(), keep_last: 1 }),
        ..fast_cfg()
    };
    // The uninterrupted run: same model, no checkpointing at all — the
    // comparison also proves segmentation itself perturbs nothing.
    let full_cfg = ExecConfig { checkpoint: None, ..base.clone() };
    let full = run_pipeline(&full_cfg, PipelineKind::SlimPipe, 6, 0.2);

    // Crash at iteration 4 (segment boundaries at 2 and 4, so the
    // snapshot at 4 exists and the one at 2 has been superseded).
    let crash_cfg = ExecConfig {
        fault_plan: Some(FaultPlan::single(site(4, 1, 0, 0), FaultKind::StagePanic)),
        ..base.clone()
    };
    let err = try_run_pipeline(&crash_cfg, PipelineKind::SlimPipe, 6, 0.2)
        .expect_err("the injected crash must interrupt training");
    assert!(matches!(err, ExecError::StagePanic { iteration: 4, .. }), "got {err}");

    // Resume from the snapshot with the fault cleared.
    let resumed = try_resume_pipeline(&base, PipelineKind::SlimPipe, 6, 0.2)
        .expect("resume from the iteration-4 snapshot");
    assert_eq!(resumed.losses.len(), 2, "resume covers iterations 4 and 5");
    let tail = RunResult { losses: full.losses[4..].to_vec(), ..full };
    assert_bit_identical(&resumed, &tail);
    clean_ckpt_files(&path);
}

/// Remove the retention manifest and every `{path}.it{N}` snapshot a test
/// run left in the temp dir.
fn clean_ckpt_files(path: &std::path::Path) {
    let _ = std::fs::remove_file(path);
    for it in 0..16u64 {
        let _ = std::fs::remove_file(slimpipe_exec::checkpoint::snapshot_path(path, it));
    }
}

#[test]
fn corrupted_checkpoint_is_detected_not_trusted() {
    let _g = width_lock();
    let path = unique_path("corrupt");
    let cfg = ExecConfig {
        checkpoint: Some(CheckpointCfg { every: 1, path: path.clone(), keep_last: 0 }),
        ..fast_cfg()
    };
    run_pipeline(&cfg, PipelineKind::SlimPipe, 2, 0.2);
    // Corrupt the only snapshot (the `latest` manifest at `path` names it).
    let snap = slimpipe_exec::checkpoint::snapshot_path(&path, 1);
    let mut bytes = std::fs::read(&snap).expect("snapshot written at iteration 1");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&snap, &bytes).unwrap();
    match try_resume_pipeline(&cfg, PipelineKind::SlimPipe, 4, 0.2) {
        Err(ExecError::Checkpoint(msg)) => {
            assert!(msg.contains("checksum") || msg.contains("corrupt"), "message: {msg}")
        }
        other => panic!("expected checksum failure, got {:?}", other.map(|_| "ok")),
    }
    clean_ckpt_files(&path);
}

#[test]
fn resume_past_the_end_is_rejected() {
    let _g = width_lock();
    let path = unique_path("past_end");
    let cfg = ExecConfig {
        checkpoint: Some(CheckpointCfg { every: 1, path: path.clone(), keep_last: 0 }),
        ..fast_cfg()
    };
    run_pipeline(&cfg, PipelineKind::SlimPipe, 2, 0.2);
    // The snapshot is at iteration 1; a 1-step run is already covered.
    match try_resume_pipeline(&cfg, PipelineKind::SlimPipe, 1, 0.2) {
        Err(ExecError::Checkpoint(_)) => {}
        other => panic!("expected Checkpoint error, got {:?}", other.map(|_| "ok")),
    }
    clean_ckpt_files(&path);
}
