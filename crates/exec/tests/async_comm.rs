//! Async exchange runtime matrix: the double-buffered posted-send regime
//! (`async_exchange: true`, the default) must be bit-identical to the
//! fully serialized regime, to exchange-off local compute, and track the
//! single-device reference — across worker-pool widths and under the
//! fault matrix. The serialized fallback is a first-class code path (it
//! is what the default config no longer exercises), so its fault
//! recovery is pinned here too.

use slimpipe_exec::comm::ExchangeMap;
use slimpipe_exec::model::ExecConfig;
use slimpipe_exec::schedule::PipelineKind;
use slimpipe_exec::train::{run_pipeline, run_reference, try_run_pipeline};
use slimpipe_exec::verify::assert_bit_identical;
use slimpipe_exec::{DegradePolicy, ExecError, FaultKind, FaultPlan, FaultSite};
use std::sync::Mutex;

/// `rayon::set_num_threads` is process-global: tests that change the pool
/// width serialize on this lock and restore the default on exit.
static WIDTH_LOCK: Mutex<()> = Mutex::new(());

fn width_lock() -> std::sync::MutexGuard<'static, ()> {
    WIDTH_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Snappy failure detection for tests (mirrors `tests/faults.rs`).
fn fast_cfg() -> ExecConfig {
    ExecConfig {
        watchdog_ms: 2_000,
        exchange_timeout_ms: 100,
        exchange_retries: 2,
        ..ExecConfig::small()
    }
}

/// An exchange-enabled workload deep enough that remote chunks exist.
fn exchange_cfg(asynchronous: bool) -> ExecConfig {
    ExecConfig {
        stages: 2,
        slices: 8,
        exchange: true,
        async_exchange: asynchronous,
        ..fast_cfg()
    }
}

fn site(iteration: usize, stage: usize, mb: u32, slice: u32) -> FaultSite {
    FaultSite { iteration, stage, mb, slice }
}

/// First `(stage, slice, peer)` whose forward pass actually ships chunks
/// to a remote exchange server (mirrors `tests/faults.rs`).
fn remote_site(cfg: &ExecConfig) -> (usize, u32, usize) {
    let map = ExchangeMap::build(cfg.stages, cfg.slices, (cfg.seq / cfg.slices) as u64);
    for d in 0..cfg.stages {
        for j in 0..cfg.slices {
            if let Some(&(_, peer)) = map.remote_chunks(d, j).first() {
                return (d, j as u32, peer);
            }
        }
    }
    panic!("no slice of this configuration exchanges");
}

// ---- determinism matrix ----

/// The tentpole guarantee: async-on ≡ async-off ≡ exchange-off, bit for
/// bit, at every worker-pool width — and all of them track the
/// single-device reference within the usual accumulation tolerance.
#[test]
fn async_regime_is_bit_identical_across_widths_and_transports() {
    let _g = width_lock();
    let overlapped = exchange_cfg(true);
    let want = run_reference(&overlapped, 2, 0.2);
    rayon::set_num_threads(1);
    let narrow = run_pipeline(&overlapped, PipelineKind::SlimPipe, 2, 0.2);
    rayon::set_num_threads(0);
    for threads in [1usize, 4] {
        rayon::set_num_threads(threads);
        let asynchronous = run_pipeline(&overlapped, PipelineKind::SlimPipe, 2, 0.2);
        let serialized = run_pipeline(&exchange_cfg(false), PipelineKind::SlimPipe, 2, 0.2);
        let local = run_pipeline(
            &ExecConfig { exchange: false, ..overlapped.clone() },
            PipelineKind::SlimPipe,
            2,
            0.2,
        );
        rayon::set_num_threads(0);
        assert_bit_identical(&asynchronous, &narrow);
        assert_bit_identical(&serialized, &narrow);
        assert_bit_identical(&local, &narrow);
        let c = slimpipe_exec::verify::compare(&asynchronous, &want);
        assert!(
            c.max_loss_diff < 3e-3 && c.worst_grad_rel < 3e-3,
            "threads={threads}: loss diff {} / worst grad {} at {}",
            c.max_loss_diff,
            c.worst_grad_rel,
            c.worst_grad_name
        );
    }
}

/// Posted-send observability: the async runtime actually posts (the
/// counter moves), the serialized runtime never does, and a clean run's
/// fault statistics stay clean in both regimes.
#[test]
fn posted_sends_counter_tracks_the_regime() {
    let _g = width_lock();
    let asynchronous = run_pipeline(&exchange_cfg(true), PipelineKind::SlimPipe, 1, 0.2);
    assert!(
        asynchronous.posted_sends > 0,
        "async run posted no boundary sends (counter stuck at 0)"
    );
    assert_eq!(asynchronous.fault_stats, Default::default(), "clean async run degraded");
    let serialized = run_pipeline(&exchange_cfg(false), PipelineKind::SlimPipe, 1, 0.2);
    assert_eq!(serialized.posted_sends, 0, "serialized run must never post");
    assert_eq!(serialized.fault_stats, Default::default(), "clean serialized run degraded");
}

// ---- fault matrix under both regimes ----

/// The PR 6 fault guarantees hold with sends in flight *and* on the
/// serialized fallback: reply faults at a remote site recover bit-
/// identically to the clean run under both regimes, and a dead server
/// degrades by policy.
#[test]
fn reply_faults_recover_under_both_regimes() {
    let _g = width_lock();
    for asynchronous in [true, false] {
        let base = exchange_cfg(asynchronous);
        let (st, sl, peer) = remote_site(&base);
        let clean = run_pipeline(&base, PipelineKind::SlimPipe, 1, 0.2);
        for kind in [FaultKind::DropReply, FaultKind::DelayReply { ms: 250 }] {
            let cfg = ExecConfig {
                fault_plan: Some(FaultPlan::single(site(0, st, 0, sl), kind.clone())),
                ..base.clone()
            };
            let r = try_run_pipeline(&cfg, PipelineKind::SlimPipe, 1, 0.2)
                .unwrap_or_else(|e| panic!("async={asynchronous} {kind:?}: {e}"));
            assert!(
                r.fault_stats.exchange_retries >= 1,
                "async={asynchronous} {kind:?}: no retry recorded"
            );
            assert_bit_identical(&r, &clean);
        }
        // Dead server: structured failure under Abort, bit-identical local
        // recompute under the degrading policies.
        let plan = FaultPlan::single(site(0, st, 0, sl), FaultKind::ServerDeath { device: peer });
        let cfg = ExecConfig { fault_plan: Some(plan.clone()), ..base.clone() };
        let err = try_run_pipeline(&cfg, PipelineKind::SlimPipe, 1, 0.2)
            .expect_err("abort policy must surface the dead server");
        assert!(
            matches!(err, ExecError::ServerDied { .. } | ExecError::ExchangeTimeout { .. }),
            "async={asynchronous}: got {err}"
        );
        for policy in [DegradePolicy::SkipMicrobatch, DegradePolicy::LocalFallback] {
            let cfg = ExecConfig { policy, fault_plan: Some(plan.clone()), ..base.clone() };
            let r = try_run_pipeline(&cfg, PipelineKind::SlimPipe, 1, 0.2)
                .expect("degrading policy must survive a dead server");
            assert!(r.fault_stats.local_fallbacks >= 1, "async={asynchronous} {policy:?}");
            assert_bit_identical(&r, &clean);
        }
    }
}

// ---- retry/backoff accounting ----

/// The count-once contract: a reply that needed resubmission is one
/// retry, however many resubmissions it took — and a *recovered* retry
/// leaves no other trace. Exactly one retry, zero fallbacks, zero skips,
/// bit-identical numbers, and the per-stage completion cursors land on
/// the same unit as the clean run.
#[test]
fn recovered_retry_counts_once_and_leaves_the_cursor_clean() {
    let _g = width_lock();
    let base = exchange_cfg(true);
    let (st, sl, _) = remote_site(&base);
    let clean = run_pipeline(&base, PipelineKind::SlimPipe, 1, 0.2);
    for kind in [FaultKind::DropReply, FaultKind::DelayReply { ms: 250 }] {
        let cfg = ExecConfig {
            fault_plan: Some(FaultPlan::single(site(0, st, 0, sl), kind.clone())),
            ..base.clone()
        };
        let r = try_run_pipeline(&cfg, PipelineKind::SlimPipe, 1, 0.2)
            .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
        assert_eq!(
            r.fault_stats.exchange_retries, 1,
            "{kind:?}: one faulted reply must count exactly one retry"
        );
        assert_eq!(r.fault_stats.local_fallbacks, 0, "{kind:?}: recovery is not degradation");
        assert_eq!(r.fault_stats.skipped_microbatches, 0, "{kind:?}");
        assert_bit_identical(&r, &clean);
        assert_eq!(
            r.final_cursors, clean.final_cursors,
            "{kind:?}: a recovered retry must not move the completion cursor"
        );
    }
}

// ---- degenerate timeout configs ----

/// Zero timeouts would turn every blocking wait into an instant (or
/// never-firing) watchdog; they are rejected up front as structured
/// configuration errors, not discovered as spurious runtime faults.
#[test]
fn zero_timeouts_are_rejected_as_invalid_config() {
    for cfg in [
        ExecConfig { watchdog_ms: 0, ..fast_cfg() },
        ExecConfig { exchange_timeout_ms: 0, ..exchange_cfg(true) },
    ] {
        match try_run_pipeline(&cfg, PipelineKind::SlimPipe, 1, 0.2) {
            Err(ExecError::InvalidConfig(msg)) => {
                assert!(
                    msg.contains("watchdog") || msg.contains("timeout"),
                    "message should name the degenerate knob: {msg}"
                );
            }
            other => panic!("expected InvalidConfig, got {:?}", other.map(|_| "ok")),
        }
    }
}
