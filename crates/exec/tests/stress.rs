//! Executor stress tests: deeper pipelines, wider models, GQA variants,
//! and feature-combination sweeps — every configuration must match the
//! single-device reference.

use slimpipe_exec::model::ExecConfig;
use slimpipe_exec::schedule::PipelineKind;
use slimpipe_exec::train::{run_pipeline, run_reference};
use slimpipe_exec::verify::assert_equivalent;

#[test]
fn four_stage_pipeline_matches_reference() {
    let cfg = ExecConfig {
        layers: 8,
        stages: 4,
        slices: 8,
        microbatches: 2,
        exchange: true,
        vocab_parallel: true,
        ..ExecConfig::small()
    };
    let want = run_reference(&cfg, 1, 0.2);
    let got = run_pipeline(&cfg, PipelineKind::SlimPipe, 1, 0.2);
    assert_equivalent(&got, &want, 3e-3);
}

#[test]
fn multi_query_attention_matches_reference() {
    // kv_heads = 1: the extreme GQA case.
    let cfg = ExecConfig {
        heads: 4,
        kv_heads: 1,
        stages: 2,
        slices: 4,
        exchange: true,
        ..ExecConfig::small()
    };
    let want = run_reference(&cfg, 1, 0.2);
    let got = run_pipeline(&cfg, PipelineKind::SlimPipe, 1, 0.2);
    assert_equivalent(&got, &want, 2e-3);
}

#[test]
fn full_multi_head_attention_matches_reference() {
    let cfg = ExecConfig {
        heads: 4,
        kv_heads: 4,
        stages: 2,
        slices: 4,
        ..ExecConfig::small()
    };
    let want = run_reference(&cfg, 1, 0.2);
    let got = run_pipeline(&cfg, PipelineKind::SlimPipe, 1, 0.2);
    assert_equivalent(&got, &want, 2e-3);
}

#[test]
fn many_microbatches_match_reference() {
    let cfg = ExecConfig {
        microbatches: 6,
        stages: 2,
        slices: 4,
        ..ExecConfig::small()
    };
    let want = run_reference(&cfg, 1, 0.2);
    let got = run_pipeline(&cfg, PipelineKind::SlimPipe, 1, 0.2);
    assert_equivalent(&got, &want, 2e-3);
}

#[test]
fn slices_equal_to_stages_is_the_minimum_and_works() {
    // n = p is SlimPipe's lower bound on slicing.
    let cfg = ExecConfig {
        stages: 4,
        slices: 4,
        layers: 8,
        microbatches: 2,
        ..ExecConfig::small()
    };
    let want = run_reference(&cfg, 1, 0.2);
    let got = run_pipeline(&cfg, PipelineKind::SlimPipe, 1, 0.2);
    assert_equivalent(&got, &want, 2e-3);
}

#[test]
fn three_steps_of_sgd_stay_in_lockstep() {
    let cfg = ExecConfig {
        stages: 2,
        slices: 4,
        microbatches: 2,
        exchange: true,
        vocab_parallel: true,
        ..ExecConfig::small()
    };
    let want = run_reference(&cfg, 3, 0.3);
    let got = run_pipeline(&cfg, PipelineKind::SlimPipe, 3, 0.3);
    assert_equivalent(&got, &want, 5e-3);
    // Training must actually make progress.
    assert!(got.losses[2] < got.losses[0]);
}

#[test]
fn single_slice_slimpipe_degenerates_to_1f1b() {
    // n = p = 1 slicing on 1 stage is the trivial case; with p=2 and n=2
    // (minimum multiple) the schedule is still valid and exact.
    let cfg = ExecConfig {
        stages: 2,
        slices: 2,
        microbatches: 3,
        ..ExecConfig::small()
    };
    let want = run_reference(&cfg, 1, 0.2);
    let got = run_pipeline(&cfg, PipelineKind::SlimPipe, 1, 0.2);
    assert_equivalent(&got, &want, 2e-3);
}

#[test]
fn peak_memory_ranking_is_stable_across_depths() {
    for stages in [2usize, 4] {
        let slim_cfg = ExecConfig {
            stages,
            layers: 8,
            slices: 8,
            microbatches: 4,
            ..ExecConfig::small()
        };
        let classic_cfg = ExecConfig { slices: 1, ..slim_cfg.clone() };
        let slim = run_pipeline(&slim_cfg, PipelineKind::SlimPipe, 1, 0.1);
        let classic = run_pipeline(&classic_cfg, PipelineKind::OneFOneB, 1, 0.1);
        assert!(
            slim.peak_act_bytes[0] < classic.peak_act_bytes[0],
            "stages={stages}: slim {} vs classic {}",
            slim.peak_act_bytes[0],
            classic.peak_act_bytes[0]
        );
    }
}
