//! The observability layer's contract with the executor:
//!
//! * **determinism-neutral** — a traced run is bit-identical to an
//!   untraced run of the same config (recording reads the clock and a
//!   thread-local buffer, never the math);
//! * **zero when off** — a disabled session records nothing and the
//!   span-derived metrics stay `None`;
//! * **useful when on** — per-stage spans land on named tracks, derived
//!   metrics populate, the Chrome-trace export is well-formed JSON, and a
//!   failed run leaves a flight recording behind.

use slimpipe_exec::fault::InjectedPanic;
use slimpipe_exec::obs;
use slimpipe_exec::schedule::PipelineKind;
use slimpipe_exec::train::{run_pipeline, try_run_pipeline_traced, RunResult};
use slimpipe_exec::{ExecConfig, FaultKind, FaultPlan, FaultSite, TraceSession};

fn cfg() -> ExecConfig {
    ExecConfig {
        stages: 2,
        slices: 4,
        microbatches: 2,
        exchange: true,
        async_exchange: true,
        ..ExecConfig::small()
    }
}

fn assert_bits_equal(got: &RunResult, want: &RunResult, what: &str) {
    assert_eq!(got.losses, want.losses, "{what}: losses differ");
    for (li, (a, b)) in got.layer_grads.iter().zip(&want.layer_grads).enumerate() {
        for ((name, ga), (_, gb)) in a.tensors().iter().zip(b.tensors().iter()) {
            assert_eq!(ga.max_abs_diff(gb), 0.0, "{what}: layer{li}.{name} bits differ");
        }
    }
    assert_eq!(got.embed_grad.max_abs_diff(&want.embed_grad), 0.0, "{what}: embedding");
    assert_eq!(got.out_grad.max_abs_diff(&want.out_grad), 0.0, "{what}: output");
}

/// The tentpole contract: recording spans must not perturb the numerics.
#[test]
fn traced_run_is_bit_identical_to_untraced() {
    let cfg = cfg();
    let untraced = run_pipeline(&cfg, PipelineKind::SlimPipe, 3, 0.1);
    let trace = TraceSession::new();
    let traced = try_run_pipeline_traced(&cfg, PipelineKind::SlimPipe, 3, 0.1, &trace)
        .expect("clean traced run");
    assert_bits_equal(&traced, &untraced, "traced vs untraced");
    assert!(trace.report().span_count() > 0, "the traced run actually recorded");
}

/// Zero-cost-when-off: a disabled session sees no spans and the run's
/// span-derived metrics stay `None` (counters still tally — they are the
/// always-on registry).
#[test]
fn disabled_session_records_nothing() {
    let trace = TraceSession::disabled();
    let r = try_run_pipeline_traced(&cfg(), PipelineKind::SlimPipe, 2, 0.1, &trace)
        .expect("clean run");
    assert_eq!(trace.report().span_count(), 0);
    assert!(r.metrics.measured_makespan_s.is_none());
    assert!(r.metrics.measured_bubble.is_none());
    assert!(r.metrics.mfu.is_none());
    assert!(r.metrics.stage_busy_s.is_empty());
    // The always-on counter registry still saw the run.
    assert!(r.metrics.counters.weight_packs > 0, "stage builds pack weights");
}

/// A live session: every stage and server gets a named track, spans carry
/// sane timestamps, and the derived metrics populate.
#[test]
fn traced_run_populates_tracks_and_metrics() {
    let cfg = cfg();
    let trace = TraceSession::new();
    let r = try_run_pipeline_traced(&cfg, PipelineKind::SlimPipe, 3, 0.1, &trace)
        .expect("clean traced run");
    let report = trace.report();
    for d in 0..cfg.stages {
        let track = report.track(&format!("stage{d}")).expect("stage track exists");
        assert!(!track.spans.is_empty());
        assert!(track.spans.iter().all(|s| s.start_us >= 0.0 && s.dur_us >= 0.0));
        let computes = track
            .spans
            .iter()
            .filter(|s| matches!(s.kind, obs::SpanKind::Compute { .. }))
            .count();
        assert!(computes > 0, "stage {d} recorded compute spans");
    }
    // Exchange is on and sliced: the waits must have been recorded too.
    assert!(
        report.tracks.iter().flat_map(|t| &t.spans).any(|s| matches!(
            s.kind,
            obs::SpanKind::ExchangeWait { .. }
        )),
        "exchange-on run records waits"
    );
    let m = &r.metrics;
    assert_eq!(m.stage_busy_s.len(), cfg.stages);
    assert!(m.stage_busy_s.iter().all(|&b| b > 0.0));
    assert!(m.measured_makespan_s.unwrap() > 0.0);
    let bubble = m.measured_bubble.unwrap();
    assert!((0.0..1.0).contains(&bubble), "bubble {bubble}");
    assert!(m.mfu.unwrap() > 0.0);
    let ov = m.overlap_efficiency.unwrap();
    assert!((0.0..=1.0).contains(&ov), "overlap {ov}");
}

/// The Chrome-trace exporter produces structurally valid JSON (balanced
/// brackets outside string literals, the envelope keys Perfetto expects,
/// one metadata record per track).
#[test]
fn chrome_trace_export_is_well_formed() {
    let trace = TraceSession::new();
    try_run_pipeline_traced(&cfg(), PipelineKind::SlimPipe, 2, 0.1, &trace).expect("clean run");
    let report = trace.report();
    let json = obs::chrome::chrome_trace_json(&report);
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.contains("\"displayTimeUnit\":\"ms\""));
    assert!(json.contains("\"thread_name\""));
    assert!(json.matches("\"ph\":\"X\"").count() == report.span_count());
    // String-aware bracket balance: a span name with a quote or brace must
    // not break the envelope.
    let (mut depth, mut in_str, mut esc) = (0i64, false, false);
    for ch in json.chars() {
        if esc {
            esc = false;
            continue;
        }
        match ch {
            '\\' if in_str => esc = true,
            '"' => in_str = !in_str,
            '{' | '[' if !in_str => depth += 1,
            '}' | ']' if !in_str => depth -= 1,
            _ => {}
        }
        assert!(depth >= 0, "close before open");
    }
    assert_eq!(depth, 0, "unbalanced JSON");
    assert!(!in_str, "unterminated string");
}

/// The `SLIMPIPE_TRACE` env hook: a non-empty value enables the session
/// and names the output file; empty means disabled.
#[test]
fn env_hook_controls_the_session() {
    // Narrow scope: from_env reads the var immediately; other tests in
    // this binary never read it (they build sessions programmatically).
    std::env::set_var("SLIMPIPE_TRACE", "/tmp/slimpipe_test_trace.json");
    let (session, path) = TraceSession::from_env();
    std::env::remove_var("SLIMPIPE_TRACE");
    assert!(session.enabled());
    assert_eq!(path.unwrap().to_str().unwrap(), "/tmp/slimpipe_test_trace.json");
    let (session, path) = TraceSession::from_env();
    assert!(!session.enabled());
    assert!(path.is_none());
}

/// On an unrecoverable traced failure the last spans per track survive in
/// the global flight-recorder slot for post-mortem.
#[test]
fn flight_recorder_captures_failed_runs() {
    // Injected panics are expected; keep them out of the test log.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if info.payload().downcast_ref::<InjectedPanic>().is_none() {
            prev(info);
        }
    }));
    let faulty = ExecConfig {
        fault_plan: Some(FaultPlan::single(
            FaultSite { iteration: 1, stage: 1, mb: 0, slice: 1 },
            FaultKind::StagePanic,
        )),
        ..cfg()
    };
    let trace = TraceSession::new();
    let err = try_run_pipeline_traced(&faulty, PipelineKind::SlimPipe, 3, 0.1, &trace)
        .expect_err("the injected panic must surface");
    assert!(err.is_recoverable(), "a contained stage panic");
    let rec = obs::flight::take().expect("flight recording stored on error");
    assert!(!rec.is_empty());
    // Iteration 0 completed before the iteration-1 fault, so the failed
    // stage's track holds flushed compute spans up to the failure.
    assert!(rec.tracks.iter().any(|(name, spans)| name == "stage1" && !spans.is_empty()));
    let shown = format!("{rec}");
    assert!(shown.contains("flight recorder") && shown.contains("stage1"));
    // The slot is take-once.
    assert!(obs::flight::take().is_none());
}
