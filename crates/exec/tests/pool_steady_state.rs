//! The tentpole guarantee of the buffer pool: after one warm-up iteration,
//! a training step performs **zero kernel-path heap allocations** — every
//! tensor a kernel takes comes from the pool, and the executor recycles
//! every tensor it consumes, so takes and returns balance exactly across an
//! iteration.
//!
//! Two steady-state invariants are asserted here:
//!
//! * **zero kernel-path heap allocations** — pool misses do not grow once
//!   the pool is warm;
//! * **zero weight re-packs** — `gemm_packs_per_step()` reads zero after
//!   every run: weights pack once at stage build, optimizer updates land
//!   in the packed panels in place, and none of the `S × M` slice GEMMs
//!   per step re-packs anything (this is the CI gate the persistent
//!   packed-weight cache is held to).
//!
//! Single test function on purpose: the pool is process-global, so the
//! counter assertions need this binary's tests to run without interleaving
//! pool users (integration-test binaries are separate processes, so other
//! test files don't interfere).

use slimpipe_exec::model::ExecConfig;
use slimpipe_exec::train::run_reference;
use slimpipe_tensor::{matmul, pool};

#[test]
fn steady_state_step_is_allocation_free_and_pooling_preserves_numerics() {
    let cfg = ExecConfig {
        stages: 1,
        slices: 4,
        microbatches: 2,
        ..ExecConfig::small()
    };

    // ---- cold run: populates the pool and fixes the reference numerics ----
    pool::clear();
    pool::reset_stats();
    let cold = run_reference(&cfg, 2, 0.3);
    let warm_stats = pool::stats();
    assert!(warm_stats.misses > 0, "cold run must have allocated something");
    assert!(
        warm_stats.recycles > 0,
        "executor must return consumed buffers to the pool"
    );

    // ---- warm run: same op sequence, zero fresh allocations ----
    let warm = run_reference(&cfg, 2, 0.3);
    let after = pool::stats();
    assert_eq!(
        after.misses, warm_stats.misses,
        "steady-state training steps must not allocate in kernels \
         (hits {} -> {}, recycles {} -> {})",
        warm_stats.hits, after.hits, warm_stats.recycles, after.recycles
    );
    assert!(after.hits > warm_stats.hits, "warm run must be served by the pool");

    // ---- zero weight re-packs per steady-state step: the final training
    // step of the warm run marked the pack epoch after all stages were
    // built, and nothing inside a step may pack ----
    assert_eq!(
        matmul::gemm_packs_per_step(),
        0,
        "steady-state training steps must not re-pack weights"
    );

    // ---- pooling must not change the numbers: recycled buffers are either
    // zeroed on take or fully overwritten, so a warm run is bit-identical ----
    assert_eq!(cold.losses, warm.losses, "losses must be bit-identical");
    for (a, b) in cold.layer_grads.iter().zip(&warm.layer_grads) {
        for ((name, ga), (_, gb)) in a.tensors().iter().zip(b.tensors().iter()) {
            assert_eq!(
                ga.max_abs_diff(gb),
                0.0,
                "grad {name} differs between cold and warm pool"
            );
        }
    }
    assert_eq!(cold.embed_grad.max_abs_diff(&warm.embed_grad), 0.0);
    assert_eq!(cold.out_grad.max_abs_diff(&warm.out_grad), 0.0);

    // ---- the invariant must survive the persistent worker pool: kernels
    // hand workers disjoint views and keep all pool traffic on the calling
    // thread, so a parallel warm run allocates nothing and changes no bits.
    // `small()` stays below the kernels' parallel-work thresholds, so this
    // phase uses a longer sequence whose attention really fans out
    // (4 heads × 64 × 64 × 8 = 2^17 = PAR_ATTN_WORK). ----
    let wide_cfg = ExecConfig {
        stages: 1,
        slices: 2,
        microbatches: 1,
        seq: 128,
        ..ExecConfig::small()
    };
    // Pin the baseline to width 1 explicitly — the process-wide override
    // outranks RAYON_NUM_THREADS and is seen by the executor's stage
    // threads, so this stays sequential even on the CI leg that forces the
    // env var to 4. (Single-test binary: no concurrent test races it.)
    rayon::set_num_threads(1);
    let narrow = run_reference(&wide_cfg, 2, 0.3);
    rayon::set_num_threads(4);
    let wide_cold = run_reference(&wide_cfg, 2, 0.3); // warms parallel-only sizes
    let wide_stats = pool::stats();
    let wide_warm = run_reference(&wide_cfg, 2, 0.3);
    rayon::set_num_threads(0);
    let after_wide = pool::stats();
    assert_eq!(
        after_wide.misses, wide_stats.misses,
        "worker-pool execution must stay allocation-free in steady state"
    );
    assert_eq!(
        matmul::gemm_packs_per_step(),
        0,
        "parallel steady-state steps must not re-pack weights either"
    );
    assert_eq!(narrow.losses, wide_cold.losses, "pool width must not change loss bits");
    assert_eq!(narrow.losses, wide_warm.losses, "warm wide run must match too");
    for (a, b) in narrow.layer_grads.iter().zip(&wide_warm.layer_grads) {
        for ((name, ga), (_, gb)) in a.tensors().iter().zip(b.tensors().iter()) {
            assert_eq!(ga.max_abs_diff(gb), 0.0, "grad {name} differs at width 4");
        }
    }
}
