//! Fault model of the executor: structured errors, deterministic fault
//! injection, degradation policies, and the shared run-control block that
//! drains a failing pipeline instead of hanging or aborting the process.
//!
//! Design rules:
//!
//! * **Structured failure** — every way a run can die maps to one
//!   [`ExecError`] variant naming the failed unit `(iteration, stage, mb,
//!   slice)`. Stage and server threads are wrapped in `catch_unwind`, so
//!   even a panic becomes an `ExecError` instead of a process abort.
//! * **No hangs** — every cross-thread wait is a `recv_timeout` loop that
//!   watches the shared abort flag and a watchdog deadline; a wedged
//!   rendezvous reports the blocked `(stage, unit)` pair.
//! * **Deterministic injection** — a [`FaultPlan`] names exact `(iteration,
//!   stage, mb, slice)` sites. Fault handling decisions are made on the
//!   owning stage thread in schedule order, so every recovery path is as
//!   reproducible as a fault-free run and can be conformance-tested across
//!   `RAYON_NUM_THREADS` like any other regime.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Which rendezvous a stage was blocked on when the watchdog fired.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Port {
    /// Waiting for the upstream stage's forward activation.
    Forward,
    /// Waiting for the downstream stage's backward gradient.
    Backward,
    /// Waiting for a compute server's reply.
    Server,
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Port::Forward => "forward",
            Port::Backward => "backward",
            Port::Server => "server",
        })
    }
}

/// Structured executor failure. Every variant names the unit that failed,
/// so a dead run is a diagnosis, not a stack trace.
#[derive(Clone, Debug, PartialEq)]
pub enum ExecError {
    /// A stage thread panicked (caught; the process survives).
    StagePanic { stage: usize, iteration: usize, mb: u32, slice: u32, msg: String },
    /// A compute server's channel disconnected: the server thread is gone.
    ServerDied { device: usize, stage: usize, mb: u32, slice: u32 },
    /// An exchange rendezvous exhausted its retry budget.
    ExchangeTimeout { stage: usize, device: usize, mb: u32, slice: u32, chunk: usize, attempts: u32 },
    /// The watchdog caught a stage blocked on a rendezvous past the
    /// deadline and reports the blocked (stage, unit) pair.
    RendezvousStuck { stage: usize, mb: u32, slice: u32, port: Port, waited_ms: u64 },
    /// A NaN/Inf loss or gradient under [`DegradePolicy::Abort`] (or one
    /// that no policy could contain).
    NonFinite { stage: usize, iteration: usize, mb: u32, slice: u32, what: String },
    /// This thread stopped because another unit failed first; the primary
    /// error is recorded in the run control block.
    Aborted { stage: usize },
    /// A peer's channel disconnected without a recorded primary error.
    Disconnected { stage: usize, port: Port },
    InvalidConfig(String),
    /// Checkpoint serialization / restore failure (path, corruption, or a
    /// config fingerprint mismatch).
    Checkpoint(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::StagePanic { stage, iteration, mb, slice, msg } => write!(
                f,
                "stage {stage} panicked at iteration {iteration}, unit (mb {mb}, slice {slice}): {msg}"
            ),
            ExecError::ServerDied { device, stage, mb, slice } => write!(
                f,
                "compute server {device} died (stage {stage} waiting at unit (mb {mb}, slice {slice}))"
            ),
            ExecError::ExchangeTimeout { stage, device, mb, slice, chunk, attempts } => write!(
                f,
                "exchange rendezvous timed out after {attempts} attempts: stage {stage} \
                 awaiting chunk {chunk} of unit (mb {mb}, slice {slice}) from device {device}"
            ),
            ExecError::RendezvousStuck { stage, mb, slice, port, waited_ms } => write!(
                f,
                "watchdog: stage {stage} stuck {waited_ms} ms on {port} rendezvous of unit \
                 (mb {mb}, slice {slice})"
            ),
            ExecError::NonFinite { stage, iteration, mb, slice, what } => write!(
                f,
                "non-finite {what} at stage {stage}, iteration {iteration}, unit (mb {mb}, slice {slice})"
            ),
            ExecError::Aborted { stage } => {
                write!(f, "stage {stage} drained after another unit failed")
            }
            ExecError::Disconnected { stage, port } => {
                write!(f, "stage {stage}: {port} peer disconnected without reporting an error")
            }
            ExecError::InvalidConfig(msg) => write!(f, "invalid config: {msg}"),
            ExecError::Checkpoint(msg) => write!(f, "checkpoint: {msg}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl ExecError {
    /// Primary errors are root causes; secondary errors are the echoes
    /// other threads report while the pipeline drains. The control block
    /// lets a primary error displace a secondary one so the run always
    /// surfaces the root cause regardless of thread timing.
    fn is_primary(&self) -> bool {
        !matches!(self, ExecError::Aborted { .. } | ExecError::Disconnected { .. })
    }

    /// Failures the elastic recovery driver can heal by re-planning onto
    /// fewer stages and restoring from the latest checkpoint: the *compute*
    /// is lost (a dead stage thread, a dead server, a wedged or exhausted
    /// exchange), not the job. Numerics (`NonFinite`), configuration, and
    /// checkpoint corruption are not healed by shrinking the geometry.
    pub fn is_recoverable(&self) -> bool {
        matches!(
            self,
            ExecError::StagePanic { .. }
                | ExecError::ServerDied { .. }
                | ExecError::ExchangeTimeout { .. }
                | ExecError::RendezvousStuck { .. }
                | ExecError::Disconnected { .. }
        )
    }
}

/// A fault-injection site: the exact schedule coordinate where the fault
/// fires. Stages match sites against their own `(iteration, stage)` and the
/// op's `(mb, slice)`, so injection is deterministic by construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultSite {
    pub iteration: usize,
    pub stage: usize,
    pub mb: u32,
    pub slice: u32,
}

/// What happens at a matched site.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultKind {
    /// The stage thread panics before executing the op.
    StagePanic,
    /// The given device's compute server is told to die before the op.
    ServerDeath { device: usize },
    /// The first remote-chunk reply of this op's exchange is lost; the
    /// retry path must recover it.
    DropReply,
    /// Every remote-chunk reply of this op is delayed by `ms` on the
    /// serving side.
    DelayReply { ms: u64 },
    /// The op's input activation is poisoned with NaNs (simulated transfer
    /// corruption; stages > 0 only — stage 0 receives tokens, not floats).
    CorruptActivation,
    /// The stage stops making progress at the site until the run aborts
    /// (bounded at 10× the watchdog so a single-stage run still ends). A
    /// peer's watchdog must catch it and report the stuck pair.
    Stall,
}

/// Deterministic fault schedule: fires `kind` whenever execution passes
/// `site`. Part of `ExecConfig`, so a faulty run is exactly as declarative
/// and reproducible as a clean one.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    pub faults: Vec<(FaultSite, FaultKind)>,
}

impl FaultPlan {
    /// One fault at one site.
    pub fn single(site: FaultSite, kind: FaultKind) -> Self {
        Self { faults: vec![(site, kind)] }
    }

    /// Faults matching the given schedule coordinate.
    pub fn at(
        &self,
        iteration: usize,
        stage: usize,
        mb: u32,
        slice: u32,
    ) -> impl Iterator<Item = &FaultKind> {
        self.faults.iter().filter_map(move |(s, k)| {
            (s.iteration == iteration && s.stage == stage && s.mb == mb && s.slice == slice)
                .then_some(k)
        })
    }

    /// JSON form, so chaos schedules live in files and CI matrices instead
    /// of Rust literals:
    ///
    /// ```json
    /// { "faults": [
    ///   {"iteration": 3, "stage": 1, "mb": 0, "slice": 1, "kind": "stage_panic"},
    ///   {"iteration": 2, "stage": 0, "mb": 1, "slice": 0, "kind": "server_death", "device": 1},
    ///   {"iteration": 1, "stage": 0, "mb": 0, "slice": 2, "kind": "delay_reply", "ms": 5}
    /// ] }
    /// ```
    ///
    /// Kinds: `stage_panic`, `server_death` (`device`), `drop_reply`,
    /// `delay_reply` (`ms`), `corrupt_activation`, `stall`.
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("{\n  \"faults\": [\n");
        for (i, (s, k)) in self.faults.iter().enumerate() {
            let (tag, extra) = match k {
                FaultKind::StagePanic => ("stage_panic", String::new()),
                FaultKind::ServerDeath { device } => {
                    ("server_death", format!(", \"device\": {device}"))
                }
                FaultKind::DropReply => ("drop_reply", String::new()),
                FaultKind::DelayReply { ms } => ("delay_reply", format!(", \"ms\": {ms}")),
                FaultKind::CorruptActivation => ("corrupt_activation", String::new()),
                FaultKind::Stall => ("stall", String::new()),
            };
            let comma = if i + 1 < self.faults.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"iteration\": {}, \"stage\": {}, \"mb\": {}, \"slice\": {}, \
                 \"kind\": \"{tag}\"{extra}}}{comma}",
                s.iteration, s.stage, s.mb, s.slice
            );
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parse the [`FaultPlan::to_json`] format (same hand-rolled field
    /// scanner as the planner's `CostProfile` — no serde in the tree).
    /// Geometry validation (site within stages/microbatches, device within
    /// range) stays where it always was: `ExecConfig::validate`, which
    /// reports structured `InvalidConfig` errors.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let start = text.find("\"faults\"").ok_or("fault plan JSON: missing \"faults\"")?;
        let rest = &text[start..];
        let open = rest.find('[').ok_or("fault plan JSON: missing fault array")?;
        let close = rest.rfind(']').ok_or("fault plan JSON: unterminated fault array")?;
        if close < open {
            return Err("fault plan JSON: malformed fault array".into());
        }
        let mut body = &rest[open + 1..close];
        let mut faults = Vec::new();
        while let Some(ob) = body.find('{') {
            let cb = body[ob..]
                .find('}')
                .ok_or("fault plan JSON: unterminated fault object")?
                + ob;
            faults.push(parse_fault(&body[ob + 1..cb])?);
            body = &body[cb + 1..];
        }
        Ok(Self { faults })
    }

    /// The `SLIMPIPE_FAULT_PLAN` hook (mirrors the `SLIMPIPE_ATTN_KERNEL`
    /// regime pattern): a value starting with `{` is inline JSON, anything
    /// else is a path to a JSON file. Returns `Ok(None)` when unset or
    /// empty. Consulted by `try_run_pipeline` / `try_resume_pipeline` and
    /// the recovery driver only when the config carries no explicit plan.
    pub fn from_env() -> Result<Option<Self>, String> {
        let v = match std::env::var("SLIMPIPE_FAULT_PLAN") {
            Ok(v) if !v.trim().is_empty() => v,
            _ => return Ok(None),
        };
        let text = if v.trim_start().starts_with('{') {
            v
        } else {
            std::fs::read_to_string(&v)
                .map_err(|e| format!("SLIMPIPE_FAULT_PLAN file {v}: {e}"))?
        };
        Self::from_json(&text).map(Some)
    }
}

/// One `{...}` fault object (braces stripped) from the JSON form.
fn parse_fault(obj: &str) -> Result<(FaultSite, FaultKind), String> {
    let num = |key: &str| -> Result<u64, String> {
        let pat = format!("\"{key}\":");
        let idx = obj.find(&pat).ok_or_else(|| format!("fault object missing \"{key}\""))?;
        let raw: String = obj[idx + pat.len()..]
            .chars()
            .skip_while(|c| c.is_whitespace())
            .take_while(|c| c.is_ascii_digit())
            .collect();
        raw.parse().map_err(|_| format!("fault object: bad number for \"{key}\""))
    };
    let kind_pat = "\"kind\":";
    let kidx = obj.find(kind_pat).ok_or("fault object missing \"kind\"")?;
    let tag: String = obj[kidx + kind_pat.len()..]
        .trim_start()
        .strip_prefix('"')
        .ok_or("fault object: \"kind\" must be a string")?
        .chars()
        .take_while(|&c| c != '"')
        .collect();
    let kind = match tag.as_str() {
        "stage_panic" => FaultKind::StagePanic,
        "server_death" => FaultKind::ServerDeath { device: num("device")? as usize },
        "drop_reply" => FaultKind::DropReply,
        "delay_reply" => FaultKind::DelayReply { ms: num("ms")? },
        "corrupt_activation" => FaultKind::CorruptActivation,
        "stall" => FaultKind::Stall,
        other => return Err(format!("fault object: unknown kind \"{other}\"")),
    };
    let site = FaultSite {
        iteration: num("iteration")? as usize,
        stage: num("stage")? as usize,
        mb: num("mb")? as u32,
        slice: num("slice")? as u32,
    };
    Ok((site, kind))
}

/// What the runtime does when a unit's loss goes non-finite or an exchange
/// rendezvous cannot be completed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DegradePolicy {
    /// Fail the run with a structured [`ExecError`] (the default: training
    /// scripts should notice).
    #[default]
    Abort,
    /// Drop the poisoned microbatch and renormalize the iteration's loss
    /// and gradients over the surviving tokens.
    SkipMicrobatch,
    /// Exchange trouble only: recompute the chunk locally and stop
    /// exchanging for the rest of the iteration. (KV chunks are always
    /// locally resident — exchange is an optimization, so the fallback is
    /// bit-identical.) Non-finite losses degrade like `SkipMicrobatch`.
    LocalFallback,
}

/// Counters a run reports about its recovery activity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Exchange replies that needed at least one resubmission.
    pub exchange_retries: u64,
    /// Chunk jobs recomputed locally after exchange gave up.
    pub local_fallbacks: u64,
    /// Microbatches dropped and renormalized away.
    pub skipped_microbatches: u64,
}

/// Shared run-control block: the first failure aborts the run; every other
/// thread sees the flag at its next rendezvous and drains.
#[derive(Default)]
pub struct RunCtl {
    abort: AtomicBool,
    err: Mutex<Option<ExecError>>,
    pub exchange_retries: AtomicU64,
    pub local_fallbacks: AtomicU64,
    pub skipped_microbatches: AtomicU64,
    /// Boundary activations handed off through the non-blocking post queue
    /// (async exchange runtime). Observability only — not a fault counter,
    /// so it reports outside [`FaultStats`].
    pub posted_sends: AtomicU64,
}

impl RunCtl {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a failure and raise the abort flag. The first *primary*
    /// error wins; a primary error displaces a previously recorded
    /// secondary one (a draining thread may observe the disconnect before
    /// the failing thread records its root cause).
    pub fn fail(&self, e: ExecError) {
        self.abort.store(true, Ordering::Release);
        // A panicking reporter must not wedge error collection: recover the
        // slot from a poisoned lock instead of propagating the poison.
        let mut slot = self.err.lock().unwrap_or_else(|p| p.into_inner());
        match &*slot {
            None => *slot = Some(e),
            Some(cur) if !cur.is_primary() && e.is_primary() => *slot = Some(e),
            Some(_) => {}
        }
    }

    pub fn aborted(&self) -> bool {
        self.abort.load(Ordering::Acquire)
    }

    pub fn take_error(&self) -> Option<ExecError> {
        self.err.lock().unwrap_or_else(|p| p.into_inner()).take()
    }

    pub fn stats(&self) -> FaultStats {
        FaultStats {
            exchange_retries: self.exchange_retries.load(Ordering::Relaxed),
            local_fallbacks: self.local_fallbacks.load(Ordering::Relaxed),
            skipped_microbatches: self.skipped_microbatches.load(Ordering::Relaxed),
        }
    }
}

/// Poll interval of guarded waits: long enough to stay off the hot path,
/// short enough that an abort drains the pipeline promptly.
pub const ABORT_POLL: Duration = Duration::from_millis(25);

/// Poll interval while the pump hook reports spilled posted sends still
/// waiting for channel space. The only thing that moves a spilled message
/// is the sender's own pump, so sleeping a full [`ABORT_POLL`] between
/// pumps would degrade the async pipeline into 25 ms-lockstep stalls —
/// the peer frees a slot, then waits on the spilled message until our
/// quantum expires. A sub-millisecond retry keeps the handoff prompt —
/// the spill is only non-empty while the peer is more than one full
/// unit behind, so the tight poll is rare and short-lived.
pub const SPILL_POLL: Duration = Duration::from_micros(100);

/// Grace period after an unexplained disconnect before concluding the peer
/// died silently (its `catch_unwind` may still be recording the root
/// cause).
pub const DISCONNECT_GRACE: Duration = Duration::from_millis(250);

/// A guarded blocking receive: waits for a message, watching the abort
/// flag every [`ABORT_POLL`] and giving up after `watchdog` with a
/// stuck-rendezvous report naming the blocked `(stage, unit)` pair. On a
/// disconnect it waits [`DISCONNECT_GRACE`] for the peer's root cause to
/// land in `ctl` before reporting the disconnect itself.
pub fn recv_guarded<T>(
    rx: &crossbeam::channel::Receiver<T>,
    ctl: &RunCtl,
    watchdog: Duration,
    stage: usize,
    mb: u32,
    slice: u32,
    port: Port,
) -> Result<T, ExecError> {
    recv_guarded_pumped(rx, ctl, watchdog, stage, mb, slice, port, || Ok(0))
}

/// [`recv_guarded`] with a pump hook run before every poll, so a stage
/// blocked on a receive keeps flushing its own posted-send overflow into
/// freed channel slots (the async exchange runtime's spill) — without the
/// hook, two stages could each hold the message the other waits for. The
/// hook reports how many posted sends are *still* spilled; while that is
/// non-zero the loop polls at [`SPILL_POLL`] so a slot freed by the peer
/// is refilled promptly instead of after a full quantum.
///
/// The poll quantum is `min(quantum, remaining)`, never the fixed
/// [`ABORT_POLL`]: a watchdog configured below the quantum fires at its
/// own deadline instead of silently rounding up to the poll period.
#[allow(clippy::too_many_arguments)]
pub fn recv_guarded_pumped<T>(
    rx: &crossbeam::channel::Receiver<T>,
    ctl: &RunCtl,
    watchdog: Duration,
    stage: usize,
    mb: u32,
    slice: u32,
    port: Port,
    mut pump: impl FnMut() -> Result<usize, ExecError>,
) -> Result<T, ExecError> {
    use crossbeam::channel::RecvTimeoutError;
    let start = Instant::now();
    loop {
        let spilled = pump()?;
        let waited = start.elapsed();
        let Some(remaining) = watchdog.checked_sub(waited).filter(|d| !d.is_zero()) else {
            if ctl.aborted() {
                return Err(ExecError::Aborted { stage });
            }
            let e = ExecError::RendezvousStuck {
                stage,
                mb,
                slice,
                port,
                waited_ms: waited.as_millis() as u64,
            };
            ctl.fail(e.clone());
            return Err(e);
        };
        let quantum = if spilled > 0 { SPILL_POLL } else { ABORT_POLL };
        match rx.recv_timeout(quantum.min(remaining)) {
            Ok(v) => return Ok(v),
            Err(RecvTimeoutError::Timeout) => {
                slimpipe_obs::counters::WATCHDOG_WAKEUPS.incr();
                if ctl.aborted() {
                    return Err(ExecError::Aborted { stage });
                }
            }
            Err(RecvTimeoutError::Disconnected) => {
                let grace_start = Instant::now();
                while grace_start.elapsed() < DISCONNECT_GRACE {
                    if ctl.aborted() {
                        return Err(ExecError::Aborted { stage });
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                if ctl.aborted() {
                    return Err(ExecError::Aborted { stage });
                }
                let e = ExecError::Disconnected { stage, port };
                ctl.fail(e.clone());
                return Err(e);
            }
        }
    }
}

/// Payload type for injected panics, so the quiet panic hook (tests) and
/// the containment layer can tell injected faults from real bugs.
pub struct InjectedPanic(pub String);

/// Extract a panic payload into a human-readable message.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(ip) = payload.downcast_ref::<InjectedPanic>() {
        ip.0.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;

    #[test]
    fn primary_error_displaces_secondary() {
        let ctl = RunCtl::new();
        ctl.fail(ExecError::Aborted { stage: 1 });
        assert!(ctl.aborted());
        ctl.fail(ExecError::NonFinite {
            stage: 0,
            iteration: 2,
            mb: 1,
            slice: 0,
            what: "loss".into(),
        });
        // A second primary must NOT displace the first.
        ctl.fail(ExecError::StagePanic {
            stage: 1,
            iteration: 0,
            mb: 0,
            slice: 0,
            msg: "later".into(),
        });
        match ctl.take_error() {
            Some(ExecError::NonFinite { stage: 0, iteration: 2, .. }) => {}
            other => panic!("expected the first primary error, got {other:?}"),
        }
    }

    #[test]
    fn recv_guarded_reports_stuck_pair() {
        let (_tx, rx) = unbounded::<u8>();
        let ctl = RunCtl::new();
        let err = recv_guarded(&rx, &ctl, Duration::from_millis(60), 3, 1, 2, Port::Backward)
            .unwrap_err();
        match err {
            ExecError::RendezvousStuck { stage: 3, mb: 1, slice: 2, port: Port::Backward, waited_ms } => {
                assert!(waited_ms >= 60);
            }
            other => panic!("expected RendezvousStuck, got {other}"),
        }
        assert!(ctl.aborted(), "watchdog failure must abort the run");
    }

    #[test]
    fn recv_guarded_drains_on_abort() {
        let (_tx, rx) = unbounded::<u8>();
        let ctl = RunCtl::new();
        ctl.fail(ExecError::Aborted { stage: 0 });
        let err =
            recv_guarded(&rx, &ctl, Duration::from_secs(60), 1, 0, 0, Port::Forward).unwrap_err();
        assert_eq!(err, ExecError::Aborted { stage: 1 });
    }

    #[test]
    fn sub_quantum_watchdog_fires_within_twice_the_deadline() {
        let (_tx, rx) = unbounded::<u8>();
        // 12 ms is below the 25 ms poll quantum: the historical
        // fixed-quantum loop could not report before ~25 ms (>2× the
        // deadline). Accept the fastest of a few tries so scheduler noise
        // on a loaded host cannot fail the build.
        let deadline = Duration::from_millis(12);
        let mut best = Duration::MAX;
        for _ in 0..5 {
            let ctl = RunCtl::new();
            let t0 = Instant::now();
            let err = recv_guarded(&rx, &ctl, deadline, 0, 0, 0, Port::Server).unwrap_err();
            best = best.min(t0.elapsed());
            match err {
                ExecError::RendezvousStuck { waited_ms, .. } => assert!(waited_ms >= 12),
                other => panic!("expected RendezvousStuck, got {other}"),
            }
        }
        assert!(
            best < deadline * 2,
            "sub-quantum deadline took {best:?} at best (limit {:?})",
            deadline * 2
        );
    }

    #[test]
    fn pump_hook_runs_and_its_error_wins() {
        let (_tx, rx) = unbounded::<u8>();
        let ctl = RunCtl::new();
        let mut calls = 0u32;
        let err = recv_guarded_pumped(
            &rx,
            &ctl,
            Duration::from_secs(60),
            2,
            0,
            0,
            Port::Forward,
            || {
                calls += 1;
                if calls >= 3 {
                    Err(ExecError::Disconnected { stage: 2, port: Port::Forward })
                } else {
                    Ok(0)
                }
            },
        )
        .unwrap_err();
        assert_eq!(err, ExecError::Disconnected { stage: 2, port: Port::Forward });
        assert_eq!(calls, 3, "pump must run once per poll");
    }

    #[test]
    fn fault_plan_json_roundtrips() {
        let plan = FaultPlan {
            faults: vec![
                (FaultSite { iteration: 3, stage: 1, mb: 0, slice: 1 }, FaultKind::StagePanic),
                (
                    FaultSite { iteration: 2, stage: 0, mb: 1, slice: 0 },
                    FaultKind::ServerDeath { device: 1 },
                ),
                (FaultSite { iteration: 1, stage: 0, mb: 0, slice: 2 }, FaultKind::DropReply),
                (
                    FaultSite { iteration: 4, stage: 1, mb: 1, slice: 3 },
                    FaultKind::DelayReply { ms: 5 },
                ),
                (
                    FaultSite { iteration: 0, stage: 1, mb: 0, slice: 0 },
                    FaultKind::CorruptActivation,
                ),
                (FaultSite { iteration: 5, stage: 0, mb: 1, slice: 1 }, FaultKind::Stall),
            ],
        };
        let back = FaultPlan::from_json(&plan.to_json()).unwrap();
        assert_eq!(back, plan);
        assert_eq!(FaultPlan::from_json("{\"faults\": []}").unwrap(), FaultPlan::default());
    }

    #[test]
    fn fault_plan_json_rejects_garbage() {
        assert!(FaultPlan::from_json("not json").is_err());
        assert!(FaultPlan::from_json("{\"faults\": [{\"iteration\": 1}]}").is_err());
        assert!(FaultPlan::from_json(
            "{\"faults\": [{\"iteration\": 1, \"stage\": 0, \"mb\": 0, \"slice\": 0, \
             \"kind\": \"meteor_strike\"}]}"
        )
        .is_err());
    }

    #[test]
    fn fault_plan_matches_exact_sites_only() {
        let site = FaultSite { iteration: 1, stage: 0, mb: 1, slice: 2 };
        let plan = FaultPlan::single(site, FaultKind::StagePanic);
        assert_eq!(plan.at(1, 0, 1, 2).count(), 1);
        assert_eq!(plan.at(0, 0, 1, 2).count(), 0);
        assert_eq!(plan.at(1, 1, 1, 2).count(), 0);
        assert_eq!(plan.at(1, 0, 0, 2).count(), 0);
        assert_eq!(plan.at(1, 0, 1, 1).count(), 0);
    }
}
