//! Per-device pipeline stage: local layers, activation stash, chunked KV
//! caches, deferred dK/dV accumulators, and (on the edges) the embedding
//! and the loss head.
//!
//! Every stash insertion/removal is mirrored into a byte-exact
//! [`MemCounter`], so a pipeline run reports true per-device peak
//! activation bytes — the executor-side analogue of the paper's Figure 10
//! measurement.

use crate::comm::VocabParallel;
use crate::fault::ExecError;
use crate::offload::OffloadEngine;
use crate::layer::{
    layer_backward, layer_forward, AttnExecutor, DkvAccum, KvCache, LayerGrads, LayerParams,
    SliceCache,
};
use crate::model::ExecConfig;
use slimpipe_core::Slicing;
use slimpipe_tensor::crossentropy;
use slimpipe_tensor::matmul::{matmul_fused, matmul_tn_acc};
use slimpipe_tensor::{
    embedding, pool, rmsnorm, Epilogue, MemCounter, PackedWeight, Prologue, Tensor,
};
use std::collections::HashMap;

/// Loss-head stash for one in-flight unit on the last stage.
enum HeadCache {
    /// Classic placement: the fp32 `d_logits` (same size as the logits the
    /// paper says dominate the last device, §3/§4.3) is stored until the
    /// unit's backward.
    Classic { hidden_in: Tensor, d_logits: Tensor },
    /// Vocabulary-parallel: only the pre-norm hidden and scalar statistics
    /// stay resident; logits are recomputed shard-locally in backward.
    VocabParallel { hidden_in: Tensor, lse: Vec<f32> },
}

impl HeadCache {
    fn bytes(&self) -> u64 {
        match self {
            HeadCache::Classic { hidden_in, d_logits } => {
                hidden_in.bytes() + d_logits.bytes()
            }
            HeadCache::VocabParallel { hidden_in, lse } => {
                hidden_in.bytes() + (lse.len() * 4) as u64
            }
        }
    }
}

/// What a forward op produces.
pub enum StageOutput {
    /// Boundary activation to ship downstream.
    Activation(Tensor),
    /// This unit's summed loss (last stage).
    Loss(f64),
}

/// One pipeline device's full state.
pub struct Stage {
    pub cfg: ExecConfig,
    /// Per-microbatch slice partitions — the `(mb, slice) → token range`
    /// source of truth this stage indexes KV caches, stashes, and dK/dV
    /// accumulators by (precomputed once; ragged microbatches differ).
    slicings: Vec<Slicing>,
    pub device: usize,
    pub layers: Vec<LayerParams>,
    pub grads: Vec<LayerGrads>,
    /// Embedding table + gradient (stage 0 only).
    pub embed: Option<(Tensor, Tensor)>,
    /// Final-norm gain + gradient (last stage only).
    pub final_norm: Option<(Vec<f32>, Vec<f32>)>,
    /// Full output projection (packed once) + gradient (last stage,
    /// classic mode only).
    pub out_proj: Option<(PackedWeight, Tensor)>,
    /// Per-(mb, slice): token ids (stage 0, for embedding backward).
    tokens: HashMap<(u32, u32), Vec<u32>>,
    /// Per-(mb, slice): per-layer stashes.
    stash: HashMap<(u32, u32), Vec<SliceCache>>,
    /// Per-mb: per-layer chunked KV caches.
    kv: HashMap<u32, Vec<KvCache>>,
    /// Per-mb: per-layer dK/dV accumulators.
    dkv: HashMap<u32, Vec<DkvAccum>>,
    head_stash: HashMap<(u32, u32), HeadCache>,
    /// Host offload engine (§6.5), if a budget is configured.
    pub offload: Option<OffloadEngine>,
    /// Byte-exact activation accounting.
    pub mem: MemCounter,
}

impl Stage {
    /// Build stage `device` of `p` with deterministic parameters.
    pub fn build(cfg: &ExecConfig, device: usize) -> Self {
        let lps = cfg.layers_per_stage();
        let first = device * lps;
        let layers: Vec<LayerParams> =
            (first..first + lps).map(|l| LayerParams::build(cfg, l)).collect();
        let grads = (0..lps).map(|_| LayerGrads::zeros(cfg)).collect();
        let is_first = device == 0;
        let is_last = device == cfg.stages - 1;
        Self {
            cfg: cfg.clone(),
            slicings: cfg.slicings(),
            device,
            layers,
            grads,
            embed: is_first.then(|| {
                let t = cfg.build_embedding();
                let g = Tensor::zeros(cfg.vocab, cfg.hidden());
                (t, g)
            }),
            final_norm: is_last.then(|| (cfg.build_final_norm(), vec![0.0; cfg.hidden()])),
            out_proj: (is_last && !cfg.vocab_parallel).then(|| {
                let w = PackedWeight::new(cfg.build_output());
                let g = Tensor::zeros(cfg.hidden(), cfg.vocab);
                (w, g)
            }),
            tokens: HashMap::new(),
            offload: cfg.offload_budget.map(OffloadEngine::new),
            stash: HashMap::new(),
            kv: HashMap::new(),
            dkv: HashMap::new(),
            head_stash: HashMap::new(),
            mem: MemCounter::new(),
        }
    }

    fn is_first(&self) -> bool {
        self.device == 0
    }

    fn is_last(&self) -> bool {
        self.device == self.cfg.stages - 1
    }

    /// Loss normaliser: mean over every token of the iteration (ragged
    /// microbatches contribute their actual lengths).
    fn loss_scale(&self) -> f32 {
        1.0 / self.cfg.total_tokens() as f32
    }

    /// Global token offset of `(mb, slice)` within its microbatch.
    fn q_offset(&self, mb: u32, slice: u32) -> usize {
        self.slicings[mb as usize].bounds[slice as usize] as usize
    }

    /// Forward one unit. Stage 0 takes `input` as token ids (embedded
    /// here); later stages take the upstream activation. The last stage
    /// needs `targets` for this slice and, in vocabulary-parallel mode, the
    /// cooperative loss helper.
    pub fn forward(
        &mut self,
        mb: u32,
        slice: u32,
        input: Result<Tensor, Vec<u32>>,
        targets: Option<&[u32]>,
        attn: &mut dyn AttnExecutor,
        vp: Option<&VocabParallel<'_>>,
    ) -> Result<StageOutput, ExecError> {
        let x = match input {
            Ok(act) => act,
            Err(toks) => {
                let (table, _) = self.embed.as_ref().expect("tokens only enter stage 0");
                let x = embedding::forward(table, &toks);
                self.tokens.insert((mb, slice), toks);
                x
            }
        };
        let q_offset = self.q_offset(mb, slice);
        let kv = self
            .kv
            .entry(mb)
            .or_insert_with(|| (0..self.layers.len()).map(|_| KvCache::default()).collect());
        let hc = self.cfg.head_cfg();
        let kv_before: u64 = kv.iter().map(|c| c.bytes()).sum();
        let mut cur = x;
        let mut caches = Vec::with_capacity(self.layers.len());
        for (li, layer) in self.layers.iter().enumerate() {
            let (y, cache) =
                layer_forward(layer, hc, cur, &mut kv[li], slice as usize, q_offset, attn)?;
            cur = y;
            caches.push(cache);
        }
        let kv_after: u64 = kv.iter().map(|c| c.bytes()).sum();
        let stash_bytes: u64 = caches.iter().map(|c| c.bytes()).sum();
        self.mem.alloc(stash_bytes + (kv_after - kv_before));
        self.stash.insert((mb, slice), caches);
        if let Some(eng) = &mut self.offload {
            eng.push_key((mb, slice));
            while self.mem.current() > eng.device_budget {
                let Some(victim) = eng.pop_oldest_excluding((mb, slice)) else { break };
                if let Some(spilled) = self.stash.remove(&victim) {
                    eng.spill(victim, spilled, &self.mem);
                }
            }
        }

        if !self.is_last() {
            return Ok(StageOutput::Activation(cur));
        }
        // ---- loss head ----
        let targets = targets.expect("last stage needs targets");
        let (norm_gain, _) = self.final_norm.as_ref().expect("last stage has final norm");
        let (loss, head_cache) = if let Some(vp) = vp {
            // Vocabulary-parallel: the normed hidden ships to the shard
            // servers, so it must be materialised here.
            let normed = rmsnorm::forward(&cur, norm_gain);
            let r = vp.loss_forward(&normed, targets);
            normed.recycle();
            let (loss, lse) = r?;
            (loss, HeadCache::VocabParallel { hidden_in: cur, lse })
        } else {
            // Classic: the final norm rides the logits GEMM's pack.
            let (w, _) = self.out_proj.as_ref().expect("classic head has out_proj");
            let inv = rmsnorm::inv_rms(&cur);
            let logits = matmul_fused(
                &cur,
                w.nn(),
                Prologue::NormRows { inv: &inv, gain: norm_gain },
                Epilogue::None,
            );
            pool::recycle(inv);
            let (loss, mut d_logits) = crossentropy::forward_backward(&logits, targets);
            logits.recycle();
            d_logits.scale(self.loss_scale());
            (loss, HeadCache::Classic { hidden_in: cur, d_logits })
        };
        self.mem.alloc(head_cache.bytes());
        self.head_stash.insert((mb, slice), head_cache);
        Ok(StageOutput::Loss(loss * self.loss_scale() as f64))
    }

    /// Backward one unit. The last stage generates its own `d_y` from the
    /// head; others receive it from downstream. Returns the gradient to
    /// ship upstream (`None` from stage 0, which scatters into the
    /// embedding gradient instead).
    pub fn backward(
        &mut self,
        mb: u32,
        slice: u32,
        d_from_downstream: Option<Tensor>,
        targets: Option<&[u32]>,
        attn: &mut dyn AttnExecutor,
        vp: Option<&VocabParallel<'_>>,
    ) -> Result<Option<Tensor>, ExecError> {
        let mut d_y = if self.is_last() {
            let head = self.head_stash.remove(&(mb, slice)).expect("head stash missing");
            self.mem.free(head.bytes());
            let (norm_gain, norm_grad) =
                self.final_norm.as_mut().expect("last stage has final norm");
            let (hidden_in, d_normed) = match head {
                HeadCache::Classic { hidden_in, d_logits } => {
                    let (w, wg) = self.out_proj.as_mut().expect("classic head");
                    // normed recomputes inside the dW pack prologue.
                    let inv = rmsnorm::inv_rms(&hidden_in);
                    matmul_tn_acc(
                        wg,
                        &hidden_in,
                        &d_logits,
                        Prologue::NormCols { inv: &inv, gain: norm_gain },
                        Prologue::None,
                    );
                    pool::recycle(inv);
                    let d_normed = matmul_fused(&d_logits, w.nt(), Prologue::None, Epilogue::None);
                    d_logits.recycle();
                    (hidden_in, d_normed)
                }
                HeadCache::VocabParallel { hidden_in, lse } => {
                    let vp = vp.expect("vp helper required in vocab-parallel mode");
                    let normed = rmsnorm::forward(&hidden_in, norm_gain);
                    let targets = targets.expect("last stage needs targets");
                    let scale = 1.0 / self.cfg.total_tokens() as f32;
                    let r = vp.loss_backward(&normed, targets, &lse, scale);
                    normed.recycle();
                    (hidden_in, r?)
                }
            };
            let (d_hidden, d_gain) = rmsnorm::backward(&hidden_in, norm_gain, &d_normed);
            d_normed.recycle();
            hidden_in.recycle();
            for (a, b) in norm_grad.iter_mut().zip(&d_gain) {
                *a += b;
            }
            pool::recycle(d_gain);
            d_hidden
        } else {
            d_from_downstream.expect("non-last stage needs downstream gradient")
        };

        if let Some(eng) = &mut self.offload {
            if let Some(fetched) = eng.fetch((mb, slice), &self.mem) {
                self.stash.insert((mb, slice), fetched);
            }
            eng.note_consumed((mb, slice));
        }
        let mut caches = self.stash.remove(&(mb, slice)).expect("forward stash missing");
        self.mem.free(caches.iter().map(|c| c.bytes()).sum());
        let hc = self.cfg.head_cfg();
        let q_offset = self.q_offset(mb, slice);
        let kv = self.kv.get_mut(&mb).expect("kv cache missing");
        let dkv = self
            .dkv
            .entry(mb)
            .or_insert_with(|| (0..self.layers.len()).map(|_| DkvAccum::default()).collect());
        for li in (0..self.layers.len()).rev() {
            let cache = caches.pop().expect("one stash per layer");
            let kv_before = kv[li].bytes() + dkv[li].bytes();
            d_y = layer_backward(
                &self.layers[li],
                &mut self.grads[li],
                hc,
                cache,
                d_y,
                &mut kv[li],
                &mut dkv[li],
                slice as usize,
                q_offset,
                attn,
            )?;
            let kv_after = kv[li].bytes() + dkv[li].bytes();
            // KV chunks freed minus dK/dV deposited for earlier chunks.
            if kv_after > kv_before {
                self.mem.alloc(kv_after - kv_before);
            } else {
                self.mem.free(kv_before - kv_after);
            }
        }
        if self.is_first() {
            let toks = self.tokens.remove(&(mb, slice)).expect("tokens missing");
            let (_, table_grad) = self.embed.as_mut().expect("stage 0 owns the embedding");
            embedding::backward(&toks, &d_y, table_grad);
            d_y.recycle();
            Ok(None)
        } else {
            Ok(Some(d_y))
        }
    }

    /// Drop every resource of unit `(mb, slice)` without running any math —
    /// the skip-and-renormalize path. A poisoned microbatch must not be
    /// zero-backwarded (0 × NaN is still NaN through the contaminated KV
    /// cache); it is *drained*: stashes, KV chunks, head caches, offloaded
    /// buffers, and token ids are released with exact byte accounting, as
    /// if the unit's backward had retired it.
    pub fn drain_unit(&mut self, mb: u32, slice: u32) {
        if let Some(head) = self.head_stash.remove(&(mb, slice)) {
            self.mem.free(head.bytes());
        }
        if let Some(eng) = &mut self.offload {
            if let Some(fetched) = eng.fetch((mb, slice), &self.mem) {
                self.stash.insert((mb, slice), fetched);
            }
            eng.note_consumed((mb, slice));
        }
        if let Some(caches) = self.stash.remove(&(mb, slice)) {
            self.mem.free(caches.iter().map(|c| c.bytes()).sum());
            for c in caches {
                c.recycle();
            }
        }
        if let Some(kv) = self.kv.get_mut(&mb) {
            let mut freed = 0;
            for c in kv.iter_mut() {
                if (slice as usize) < c.chunks.len() {
                    freed += c.release(slice as usize);
                }
            }
            self.mem.free(freed);
        }
        if let Some(dkv) = self.dkv.get_mut(&mb) {
            for a in dkv.iter_mut() {
                if (slice as usize) < a.slots.len() {
                    if let Some((dk, dv)) = a.take(slice as usize) {
                        self.mem.free(dk.bytes() + dv.bytes());
                        dk.recycle();
                        dv.recycle();
                    }
                }
            }
        }
        self.tokens.remove(&(mb, slice));
    }

    /// Rescale every local gradient accumulator. Skip-and-renormalize: after
    /// dropping `k` of `M` microbatches, surviving gradients (pre-scaled by
    /// `1/total_tokens`) are multiplied by `total/(total - skipped)` so the
    /// update is the exact mean over surviving tokens.
    pub fn scale_grads(&mut self, factor: f32) {
        for g in &mut self.grads {
            g.scale(factor);
        }
        if let Some((_, g)) = &mut self.embed {
            g.scale(factor);
        }
        if let Some((_, g)) = &mut self.out_proj {
            g.scale(factor);
        }
        if let Some((_, g)) = &mut self.final_norm {
            for v in g.iter_mut() {
                *v *= factor;
            }
        }
    }

    /// Apply one SGD step on everything this stage owns and clear grads
    /// (in place — the optimizer allocates nothing in steady state).
    pub fn sgd_step(&mut self, lr: f32) {
        for (layer, g) in self.layers.iter_mut().zip(&self.grads) {
            layer.sgd_step(g, lr);
        }
        for g in &mut self.grads {
            g.reset();
        }
        if let Some((t, g)) = &mut self.embed {
            t.axpy(-lr, g);
            g.fill(0.0);
        }
        if let Some((w, g)) = &mut self.out_proj {
            // In-place update of the tensor and both packed forms.
            w.axpy(-lr, g);
            g.fill(0.0);
        }
        if let Some((gain, g)) = &mut self.final_norm {
            for (p, d) in gain.iter_mut().zip(g.iter()) {
                *p -= lr * d;
            }
            for d in g.iter_mut() {
                *d = 0.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LocalAttn;
    use slimpipe_tensor::init::seeded_tokens;

    fn single_stage_cfg() -> ExecConfig {
        ExecConfig {
            stages: 1,
            slices: 1,
            microbatches: 1,
            ..ExecConfig::small()
        }
    }

    #[test]
    fn single_stage_forward_backward_runs_and_frees_memory() {
        let cfg = single_stage_cfg();
        let mut st = Stage::build(&cfg, 0);
        let toks = seeded_tokens(cfg.seq, cfg.vocab, 1);
        let targets = seeded_tokens(cfg.seq, cfg.vocab, 2);
        let out = st.forward(0, 0, Err(toks), Some(&targets), &mut LocalAttn, None).unwrap();
        let StageOutput::Loss(loss) = out else { panic!("expected loss") };
        assert!(loss.is_finite() && loss > 0.0);
        assert!(st.mem.current() > 0, "stash should be resident");
        let up = st.backward(0, 0, None, Some(&targets), &mut LocalAttn, None).unwrap();
        assert!(up.is_none(), "stage 0 ends the backward");
        assert_eq!(st.mem.current(), 0, "all stashes freed after backward");
        // Gradients are non-zero.
        assert!(st.grads[0].wq.sq_norm() > 0.0);
        assert!(st.embed.as_ref().unwrap().1.sq_norm() > 0.0);
    }

    #[test]
    fn losses_decrease_under_sgd() {
        let cfg = single_stage_cfg();
        let mut st = Stage::build(&cfg, 0);
        let toks = seeded_tokens(cfg.seq, cfg.vocab, 1);
        let targets = seeded_tokens(cfg.seq, cfg.vocab, 2);
        let mut losses = Vec::new();
        for _ in 0..5 {
            let StageOutput::Loss(l) = st
                .forward(0, 0, Err(toks.clone()), Some(&targets), &mut LocalAttn, None)
                .unwrap()
            else {
                panic!()
            };
            st.backward(0, 0, None, Some(&targets), &mut LocalAttn, None).unwrap();
            st.sgd_step(0.5);
            losses.push(l);
        }
        assert!(
            losses.last().unwrap() < losses.first().unwrap(),
            "training should reduce loss: {losses:?}"
        );
    }

    #[test]
    fn classic_head_stash_is_vocab_sized() {
        // The §4.3 memory story, measured: classic keeps an l×V fp32
        // tensor per in-flight unit; the hidden is only l×h.
        let cfg = single_stage_cfg();
        let mut st = Stage::build(&cfg, 0);
        let toks = seeded_tokens(cfg.seq, cfg.vocab, 1);
        let targets = seeded_tokens(cfg.seq, cfg.vocab, 2);
        st.forward(0, 0, Err(toks), Some(&targets), &mut LocalAttn, None).unwrap();
        let head_bytes = st.head_stash.values().map(|h| h.bytes()).sum::<u64>();
        let logits_bytes = (cfg.seq * cfg.vocab * 4) as u64;
        assert!(head_bytes >= logits_bytes, "classic head must hold the logits");
    }
}
