//! Executor-level schedule selection.
//!
//! The executor runs the *same* schedule IR as the simulator, restricted to
//! one model chunk per device (`v = 1`) — interleaving changes which layers
//! live where, not the algorithms under test, and is exercised at scale by
//! the simulator instead.

use crate::model::ExecConfig;
use slimpipe_sched::{validate, Schedule};

/// The pipeline schemes the executor can run for real.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PipelineKind {
    GPipe,
    OneFOneB,
    TeraPipe,
    SlimPipe,
}

/// Build and validate the schedule for `cfg`. Slicing-policy and ragged
/// geometry are validated here too — an op list that indexes `n` slices
/// per microbatch is only executable when every microbatch can actually
/// fill `n` non-empty token ranges.
pub fn build_schedule(kind: PipelineKind, cfg: &ExecConfig) -> Schedule {
    cfg.validate().expect("invalid executor configuration");
    let (p, m, n) = (cfg.stages, cfg.microbatches, cfg.slices);
    let sched = match kind {
        PipelineKind::GPipe => {
            assert_eq!(n, 1, "GPipe is microbatch-granular");
            assert!(cfg.mb_slices.is_none(), "GPipe is microbatch-granular");
            slimpipe_sched::gpipe::generate(p, m)
        }
        PipelineKind::OneFOneB => {
            assert_eq!(n, 1, "1F1B is microbatch-granular");
            assert!(cfg.mb_slices.is_none(), "1F1B is microbatch-granular");
            slimpipe_sched::onefoneb::generate(p, m)
        }
        PipelineKind::TeraPipe => {
            assert!(
                cfg.mb_slices.is_none(),
                "TeraPipe's generator has one global slice count"
            );
            slimpipe_sched::terapipe::generate(p, m, n)
        }
        // SlimPipe is the scheme that supports per-microbatch counts.
        PipelineKind::SlimPipe => {
            let counts: Vec<usize> = (0..m).map(|mb| cfg.slices_of(mb)).collect();
            slimpipe_core::schedule::generate_var(p, &counts)
        }
    }
    .expect("schedule parameters rejected");
    validate(&sched).expect("generated schedule failed validation");
    assert_eq!(sched.chunks, 1, "executor supports one chunk per device");
    sched
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_build_for_the_small_config() {
        let cfg = ExecConfig::small(); // slices = 4
        build_schedule(PipelineKind::SlimPipe, &cfg);
        build_schedule(PipelineKind::TeraPipe, &cfg);
        let mono = ExecConfig { slices: 1, ..cfg };
        build_schedule(PipelineKind::OneFOneB, &mono);
        build_schedule(PipelineKind::GPipe, &mono);
    }

    #[test]
    #[should_panic(expected = "microbatch-granular")]
    fn onefoneb_rejects_slicing() {
        let cfg = ExecConfig::small();
        build_schedule(PipelineKind::OneFOneB, &cfg);
    }
}
