//! Real multithreaded pipeline-parallel training executor.
//!
//! This crate *runs* SlimPipe rather than modelling it: OS threads are the
//! pipeline devices, crossbeam channels are the interconnect, and a real
//! (small) Llama-style transformer trains across them in f32. Everything
//! §4 and §5 of the paper describe is executed for real:
//!
//! * uniform sequence slicing with the slice-wise 1F1B schedule (the op
//!   lists come from the same generators the simulator uses),
//! * a chunked KV cache appended slice by slice and released chunk by
//!   chunk as the LIFO backward retires slices,
//! * attention context exchange: heavy devices ship `(Q, KV-chunk)` jobs to
//!   light devices' compute servers and merge the partial outputs by online
//!   softmax — in the backward direction too,
//! * vocabulary parallelism: every device owns a vocabulary shard; the
//!   cross-entropy is computed from sharded logits with scalar statistics
//!   only,
//! * byte-exact activation accounting per device.
//!
//! [`ringcp`] additionally implements §5's *commutated context
//! parallelism*: ring attention that rotates (Q, O, normaliser) instead of
//! cached key/value, with byte-exact communication meters demonstrating the
//! cache-independence claim.
//!
//! The harness in [`verify`] proves numerical equivalence: a pipeline run
//! (any scheme, any slicing, exchange on or off) produces the same losses
//! and the same parameter gradients as a single-device reference, to f32
//! reassociation tolerance.

pub mod checkpoint;
pub mod comm;
pub mod driver;
pub mod fault;
pub mod layer;
pub mod model;
pub mod offload;
pub mod ringcp;
pub mod schedule;
pub mod stage;
pub mod train;
pub mod verify;

pub use checkpoint::CheckpointState;
pub use driver::{
    run_elastic, run_elastic_traced, DriverCfg, DriverOutcome, RecoveryEvent, RecoveryLog,
    Replanner, ShrinkReplanner,
};
pub use fault::{DegradePolicy, ExecError, FaultKind, FaultPlan, FaultSite};
pub use model::{CheckpointCfg, ExecConfig};
pub use slimpipe_core::{SlicePolicy, Slicing};
pub use slimpipe_obs as obs;
pub use slimpipe_obs::TraceSession;
pub use train::{
    approx_flops_per_iteration, run_pipeline, run_reference, try_resume_pipeline,
    try_resume_pipeline_from, try_resume_pipeline_from_traced, try_run_pipeline,
    try_run_pipeline_traced, RunMetrics, RunResult,
};
