//! The threaded pipeline training driver.
//!
//! One OS thread per pipeline stage executes its static op list; boundary
//! activations and gradients move through crossbeam channels; compute
//! servers (one per device) serve context-exchange and vocabulary-shard
//! jobs. Determinism: parameters, data, and schedules are all seeded, so a
//! run is reproducible and comparable against the single-device reference.
//!
//! Fault tolerance (the [`crate::fault`] model, wired end to end):
//!
//! * every stage thread runs under `catch_unwind` with a live `(iteration,
//!   mb, slice)` cursor, so a panic surfaces as a structured
//!   [`ExecError::StagePanic`] naming the failed unit instead of aborting
//!   the process;
//! * every cross-stage rendezvous is a [`recv_guarded`] wait: it watches
//!   the shared abort flag and a watchdog deadline, so the first failure
//!   anywhere drains the whole pipeline — injected faults never hang a run;
//! * a non-finite loss degrades per [`DegradePolicy`]: abort with a
//!   [`ExecError::NonFinite`], or *skip-and-renormalize* — the poisoned
//!   microbatch is drained (no math runs over contaminated state; `Skip`
//!   messages propagate the drain upstream) and the surviving gradients and
//!   loss are rescaled to the exact mean over surviving tokens;
//! * at iteration boundaries the run snapshots to [`CheckpointCfg::path`];
//!   [`try_resume_pipeline`] continues from the snapshot **bit-identically**
//!   to the uninterrupted run (asserted in `tests/faults.rs`).
//!
//! Checkpointing splits the run into segments: stage threads return their
//! [`Stage`] values at each boundary (a full synchronization point — no
//! math is in flight), the driver captures and saves, and the next segment
//! respawns threads around the same stage values, so segmentation itself
//! cannot perturb the numerics.

use crate::checkpoint::CheckpointState;
use crate::comm::{
    build_vocab_shards, spawn_server_traced, DeadServer, ExchangeMap, ExchangeRt, FtCtx,
    ServerHandle, ServerJob, VocabParallel, VocabShard,
};
use crate::fault::{
    panic_message, recv_guarded, recv_guarded_pumped, DegradePolicy, ExecError, FaultKind,
    FaultPlan, FaultStats, InjectedPanic, Port, RunCtl, ABORT_POLL,
};
use crate::layer::{AttnExecutor, LayerGrads, LocalAttn};
use crate::model::ExecConfig;
use crate::schedule::{build_schedule, PipelineKind};
use crate::stage::{Stage, StageOutput};
use crossbeam::channel::{bounded, unbounded, PostQueue, Receiver, Sender};
use slimpipe_obs::counters as obs_counters;
use slimpipe_obs::{CounterSnapshot, OpTag, SpanKind, TraceSession};
use slimpipe_sched::{PassKind, WorkItem};
use slimpipe_tensor::init::seeded_tokens;
use slimpipe_tensor::Tensor;
use std::cell::RefCell;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Derived observability metrics for one run, computed at the end of
/// [`run_from`] from the unified counter registry and (when tracing is on)
/// the recorded spans. Counters are always populated; the span-derived
/// fields are `None` for untraced runs — measuring them would require
/// clock reads on the hot path, and the tracing contract is *zero* cost
/// when disabled.
#[derive(Clone, Debug, Default)]
pub struct RunMetrics {
    /// Delta of the global counter registry over this run.
    pub counters: CounterSnapshot,
    /// Per-stage compute time (forward + backward spans), seconds.
    pub stage_busy_s: Vec<f64>,
    /// Per-stage time blocked on exchange replies / vocab gathers, seconds.
    pub exchange_wait_s: Vec<f64>,
    /// Wall-clock from first to last stage-compute span, seconds.
    pub measured_makespan_s: Option<f64>,
    /// Measured bubble fraction over `stages × makespan` (§"sim::metrics").
    pub measured_bubble: Option<f64>,
    /// Model FLOPs utilisation against the busiest stage's throughput as
    /// the peak — a *relative* MFU (the "hardware" here is CPU threads).
    pub mfu: Option<f64>,
    /// `1 − wait/busy`, clamped to `[0, 1]`: how much of the exchange
    /// latency the async runtime hid under compute.
    pub overlap_efficiency: Option<f64>,
}

/// Everything a run produces, for comparison and reporting.
pub struct RunResult {
    /// Mean loss per iteration (over surviving tokens, when microbatches
    /// were skipped). A resumed run reports only the iterations it ran.
    pub losses: Vec<f64>,
    /// Final-iteration gradients, global layer order.
    pub layer_grads: Vec<LayerGrads>,
    pub embed_grad: Tensor,
    /// Full `(hidden, vocab)` output-projection gradient (vocabulary
    /// shards gathered when vocabulary parallelism was on).
    pub out_grad: Tensor,
    pub final_norm_grad: Vec<f32>,
    /// Peak activation bytes per device (stash + KV + head stash).
    pub peak_act_bytes: Vec<u64>,
    /// Offload traffic per device (0 when no budget configured, §6.5).
    pub offload_transferred: Vec<u64>,
    /// Recovery activity: retries, local fallbacks, skipped microbatches.
    pub fault_stats: FaultStats,
    /// Per-stage final `(iteration, mb, slice)` cursor — the last unit each
    /// stage marked in-progress. A unit recovered on retry must advance its
    /// cursor exactly once (pinned by the retry-accounting regression).
    pub final_cursors: Vec<(usize, u32, u32)>,
    /// Boundary activations handed off through the non-blocking post queue
    /// (0 when `async_exchange` is off or the pipeline has one stage).
    pub posted_sends: u64,
    /// Counter deltas and (for traced runs) span-derived run metrics.
    pub metrics: RunMetrics,
}

impl std::fmt::Debug for RunResult {
    /// Summary only — the gradient tensors are megabytes of f32.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunResult")
            .field("losses", &self.losses)
            .field("layers", &self.layer_grads.len())
            .field("peak_act_bytes", &self.peak_act_bytes)
            .field("fault_stats", &self.fault_stats)
            .field("posted_sends", &self.posted_sends)
            .field("metrics", &self.metrics)
            .finish_non_exhaustive()
    }
}

/// Deterministic training data: one token stream per microbatch (ragged
/// lengths respected), next-token targets.
pub fn make_data(cfg: &ExecConfig) -> Vec<(Vec<u32>, Vec<u32>)> {
    (0..cfg.microbatches)
        .map(|mb| {
            let toks = seeded_tokens(cfg.mb_seq(mb), cfg.vocab, cfg.seed * 1000 + mb as u64);
            let mut targets = toks[1..].to_vec();
            targets.push(toks[0]);
            (toks, targets)
        })
        .collect()
}

/// What travels over a stage boundary for one unit.
enum ActPayload {
    /// The boundary activation (forward) or gradient (backward).
    Act(Tensor),
    /// Skip-and-renormalize: this unit's microbatch was dropped; drain the
    /// unit's resources and pass the drain along.
    Skip,
}

type ActMsg = (u32, u32, ActPayload);

/// A guarded boundary send. Unbounded channels never block, so the only
/// failure is a gone peer: if the run is already aborting this thread just
/// drains; otherwise the disconnect is reported (the dead peer's own root
/// cause, recorded by its `catch_unwind`, takes precedence in [`RunCtl`]).
fn send_act(
    tx: &Sender<ActMsg>,
    msg: ActMsg,
    ctl: &RunCtl,
    stage: usize,
    port: Port,
) -> Result<(), ExecError> {
    tx.send(msg).map_err(|_| {
        if ctl.aborted() {
            ExecError::Aborted { stage }
        } else {
            let e = ExecError::Disconnected { stage, port };
            ctl.fail(e.clone());
            e
        }
    })
}

/// Outbound half of a stage boundary, in one of two regimes. `Sync` is the
/// serialized handoff: a plain send on an unbounded channel. `Posted` is
/// the async exchange runtime: the channel is bounded (double-buffered),
/// `send` never blocks — overflow spills into a FIFO post queue — and the
/// spill drains on every `pump`, which runs at op starts and inside every
/// guarded receive. Delivery order is the post order either way, so the
/// receiver observes an identical message stream in both regimes.
enum Outbound {
    Sync(Sender<ActMsg>),
    Posted(PostQueue<ActMsg>),
}

impl Outbound {
    fn new(tx: Sender<ActMsg>, asynchronous: bool) -> Self {
        if asynchronous {
            Outbound::Posted(PostQueue::new(tx))
        } else {
            Outbound::Sync(tx)
        }
    }

    /// A gone peer, mapped exactly like [`send_act`]: drain quietly when
    /// the run is already aborting, report the disconnect otherwise.
    fn disconnect(ctl: &RunCtl, stage: usize, port: Port) -> ExecError {
        if ctl.aborted() {
            ExecError::Aborted { stage }
        } else {
            let e = ExecError::Disconnected { stage, port };
            ctl.fail(e.clone());
            e
        }
    }

    fn send(
        &mut self,
        msg: ActMsg,
        ctl: &RunCtl,
        stage: usize,
        port: Port,
    ) -> Result<(), ExecError> {
        match self {
            Outbound::Sync(tx) => send_act(tx, msg, ctl, stage, port),
            Outbound::Posted(q) => match q.post(msg) {
                Ok(_token) => {
                    ctl.posted_sends.fetch_add(1, Ordering::Relaxed);
                    Ok(())
                }
                Err(_) => Err(Self::disconnect(ctl, stage, port)),
            },
        }
    }

    /// Move spilled posts into freed channel slots; never blocks. Returns
    /// how many posts are *still* spilled (waiting for the peer to free a
    /// slot).
    fn pump(&mut self, ctl: &RunCtl, stage: usize, port: Port) -> Result<usize, ExecError> {
        match self {
            Outbound::Sync(_) => Ok(0),
            Outbound::Posted(q) => q
                .pump()
                .map(|_| q.pending())
                .map_err(|_| Self::disconnect(ctl, stage, port)),
        }
    }

    fn pending(&self) -> usize {
        match self {
            Outbound::Sync(_) => 0,
            Outbound::Posted(q) => q.pending(),
        }
    }
}

/// Pump both boundary post queues — the hook every guarded receive runs
/// before each poll, so a stage blocked on a receive keeps its own posted
/// sends flowing (two stages could otherwise each hold the message the
/// other waits for).
fn pump_outbound(
    fwd: &mut Option<Outbound>,
    bwd: &mut Option<Outbound>,
    ctl: &RunCtl,
    stage: usize,
) -> Result<usize, ExecError> {
    let mut spilled = 0;
    if let Some(o) = fwd {
        spilled += o.pump(ctl, stage, Port::Forward)?;
    }
    if let Some(o) = bwd {
        spilled += o.pump(ctl, stage, Port::Backward)?;
    }
    Ok(spilled)
}

/// Drain every spilled post before an iteration boundary. Checkpoint
/// segmentation joins threads at boundaries; a message still in the spill
/// when the queue drops would strand its receiver at the watchdog.
fn flush_outbound(
    out: &mut Option<Outbound>,
    ctl: &RunCtl,
    stage: usize,
    watchdog: Duration,
    port: Port,
) -> Result<(), ExecError> {
    let Some(o) = out else { return Ok(()) };
    let start = Instant::now();
    loop {
        o.pump(ctl, stage, port)?;
        if o.pending() == 0 {
            return Ok(());
        }
        if ctl.aborted() {
            return Err(ExecError::Aborted { stage });
        }
        let waited = start.elapsed();
        if waited >= watchdog {
            let e = ExecError::RendezvousStuck {
                stage,
                mb: 0,
                slice: 0,
                port,
                waited_ms: waited.as_millis() as u64,
            };
            ctl.fail(e.clone());
            return Err(e);
        }
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Submit one acked job to every server and await the acks in device order.
fn server_barrier(
    servers: &[ServerHandle],
    mut job: impl FnMut(Sender<()>) -> ServerJob,
    ctl: &RunCtl,
    watchdog: Duration,
    stage: usize,
) -> Result<(), ExecError> {
    let mut acks = Vec::with_capacity(servers.len());
    for s in servers {
        let (tx, rx) = unbounded();
        s.submit(job(tx)).map_err(|DeadServer(dev)| ExecError::ServerDied {
            device: dev,
            stage,
            mb: 0,
            slice: 0,
        })?;
        acks.push(rx);
    }
    for (dev, rx) in acks.iter().enumerate() {
        recv_guarded(rx, ctl, watchdog, stage, 0, 0, Port::Server).map_err(|e| match e {
            ExecError::Disconnected { .. } => ExecError::ServerDied {
                device: dev,
                stage,
                mb: 0,
                slice: 0,
            },
            other => other,
        })?;
    }
    Ok(())
}

/// Pack the live `(iteration, mb, slice)` cursor into one atomic word so
/// the panic handler can name the failed unit.
fn pack_cursor(step: usize, mb: u32, slice: u32) -> u64 {
    ((step as u64) << 32) | ((mb as u64 & 0xFFFF) << 16) | (slice as u64 & 0xFFFF)
}

/// Everything one stage thread needs for one checkpoint segment.
struct StageRun {
    cfg: ExecConfig,
    device: usize,
    /// Total iterations of the whole run (gates the final SGD step).
    steps: usize,
    lr: f32,
    /// Global iteration numbers this segment executes.
    seg: Range<usize>,
    ops: Vec<WorkItem>,
    data: Arc<Vec<(Vec<u32>, Vec<u32>)>>,
    /// `(mb, slice) → token range`, precomputed once.
    ranges: Arc<Vec<Vec<Range<usize>>>>,
    fwd_rx: Option<Receiver<ActMsg>>,
    fwd_tx: Option<Sender<ActMsg>>,
    bwd_rx: Option<Receiver<ActMsg>>,
    bwd_tx: Option<Sender<ActMsg>>,
    servers: Vec<ServerHandle>,
    exmaps: Option<Arc<Vec<ExchangeMap>>>,
    loss_tx: Sender<f64>,
    ctl: Arc<RunCtl>,
    cursor: Arc<AtomicU64>,
    trace: Arc<TraceSession>,
}

impl StageRun {
    /// Execute this stage's op list for every iteration of the segment.
    /// Every early return is a structured error; the caller records it in
    /// the run control block so peers drain.
    fn run(&self, stage: &mut Stage) -> Result<(), ExecError> {
        let p = self.cfg.stages;
        let d = self.device;
        let is_last = d == p - 1;
        let m = self.cfg.microbatches;
        let watchdog = Duration::from_millis(self.cfg.watchdog_ms);
        let timeout = Duration::from_millis(self.cfg.exchange_timeout_ms);
        // Outbound boundary handles: non-blocking post queues under the
        // async exchange runtime, plain blocking senders otherwise.
        let asynchronous = self.cfg.async_exchange;
        let mut fwd_out = self.fwd_tx.clone().map(|tx| Outbound::new(tx, asynchronous));
        let mut bwd_out = self.bwd_tx.clone().map(|tx| Outbound::new(tx, asynchronous));
        // Per-thread span recorder: a private buffer on this stage's own
        // track, drained into the session at iteration boundaries. On a
        // disabled session `clock()` is `None` without ever reading the
        // clock, so the hot path pays one branch and nothing else.
        let rec = RefCell::new(self.trace.recorder(&format!("stage{}", self.device)));
        for step in self.seg.clone() {
            // Mark the pack epoch: everything after stage build must run
            // off the persistent packed-weight cache, so
            // `gemm_packs_per_step()` reads zero once every thread is past
            // its build (asserted in tests/pool_steady_state.rs).
            slimpipe_tensor::matmul::begin_pack_epoch();
            // Per-microbatch loss and skip flags, indexed by mb so the
            // iteration loss sums in a fixed order (f64 reassociation would
            // otherwise leak schedule interleaving into the result).
            let mut mb_loss = vec![0.0f64; m];
            let mut mb_skipped = vec![false; m];
            // LocalFallback is sticky for the rest of the iteration.
            let mut local_only = false;
            for op in &self.ops {
                let (mb, sl) = (op.mb, op.slice);
                self.cursor.store(pack_cursor(step, mb, sl), Ordering::Relaxed);
                // Keep posted sends moving even through long compute-only
                // stretches between receives.
                pump_outbound(&mut fwd_out, &mut bwd_out, &self.ctl, d)?;
                // Deterministic fault injection, matched on the forward
                // visit of the site. (Reply-level faults are consumed
                // inside the exchange runtime, armed on the forward visit
                // only so a planned fault fires once per unit, not once
                // per pass.)
                let mut corrupt = false;
                if matches!(op.kind, PassKind::Forward) {
                    if let Some(plan) = &self.cfg.fault_plan {
                        for k in plan.at(step, d, mb, sl) {
                            match k {
                                FaultKind::StagePanic => {
                                    std::panic::panic_any(InjectedPanic(format!(
                                        "injected panic at stage {d}, iteration {step}, \
                                         unit (mb {mb}, slice {sl})"
                                    )))
                                }
                                FaultKind::ServerDeath { device } => {
                                    // The server dies inside its own
                                    // catch_unwind; clients observe a
                                    // disconnected channel, never an abort.
                                    let _ = self.servers[*device].submit(ServerJob::Crash);
                                }
                                FaultKind::CorruptActivation => corrupt = true,
                                FaultKind::Stall => {
                                    // Stop making progress until a peer's
                                    // watchdog kills the run — bounded at
                                    // 10× the watchdog so a single-stage
                                    // run still terminates.
                                    let cap = watchdog.saturating_mul(10);
                                    let start = Instant::now();
                                    while !self.ctl.aborted() && start.elapsed() < cap {
                                        std::thread::sleep(ABORT_POLL);
                                    }
                                    if self.ctl.aborted() {
                                        return Err(ExecError::Aborted { stage: d });
                                    }
                                }
                                // Handled inside ExchangeRt per op.
                                FaultKind::DropReply | FaultKind::DelayReply { .. } => {}
                            }
                        }
                    }
                }
                let range = self.ranges[mb as usize][sl as usize].clone();
                let mut local = LocalAttn;
                let mut rt_opt = self.exmaps.as_ref().map(|maps| ExchangeRt {
                    device: d,
                    servers: &self.servers,
                    map: &maps[mb as usize],
                    ft: FtCtx {
                        plan: self.cfg.fault_plan.as_ref(),
                        policy: self.cfg.policy,
                        timeout,
                        retries: self.cfg.exchange_retries,
                        ctl: Some(self.ctl.as_ref()),
                        iteration: step,
                        mb,
                        slice: sl,
                        local_only,
                        overlap: asynchronous,
                        reply_faults: matches!(op.kind, PassKind::Forward),
                        rec: Some(&rec),
                    },
                });
                let vp_holder;
                let vp = if self.cfg.vocab_parallel && is_last {
                    vp_holder = VocabParallel {
                        servers: &self.servers,
                        watchdog,
                        ctl: Some(self.ctl.as_ref()),
                        stage: d,
                        mb,
                        slice: sl,
                        rec: Some(&rec),
                    };
                    Some(&vp_holder)
                } else {
                    None
                };
                let attn: &mut dyn AttnExecutor = match rt_opt.as_mut() {
                    Some(rt) => rt,
                    None => &mut local,
                };
                match op.kind {
                    PassKind::Forward => {
                        let input = if d == 0 {
                            if is_last && mb_skipped[mb as usize] {
                                // p == 1: the microbatch is already
                                // poisoned; its backward op drains.
                                continue;
                            }
                            Err(self.data[mb as usize].0[range.clone()].to_vec())
                        } else {
                            let rx =
                                self.fwd_rx.as_ref().expect("interior stage has fwd input");
                            let (rmb, rsl, payload) = recv_guarded_pumped(
                                rx,
                                &self.ctl,
                                watchdog,
                                d,
                                mb,
                                sl,
                                Port::Forward,
                                || pump_outbound(&mut fwd_out, &mut bwd_out, &self.ctl, d),
                            )?;
                            assert_eq!((rmb, rsl), (mb, sl), "fwd order mismatch");
                            match payload {
                                ActPayload::Skip => {
                                    // Upstream already dropped this unit
                                    // (defensive; skips normally originate
                                    // at the loss and travel backward).
                                    mb_skipped[mb as usize] = true;
                                    mb_loss[mb as usize] = 0.0;
                                    if let Some(out) = fwd_out.as_mut() {
                                        out.send(
                                            (mb, sl, ActPayload::Skip),
                                            &self.ctl,
                                            d,
                                            Port::Forward,
                                        )?;
                                    }
                                    continue;
                                }
                                ActPayload::Act(mut t) => {
                                    if corrupt {
                                        // Simulated transfer corruption: the
                                        // unit's activations are poisoned and
                                        // the NaNs surface at the loss.
                                        t.fill(f32::NAN);
                                    }
                                    if is_last && mb_skipped[mb as usize] {
                                        // Later slice of an already-poisoned
                                        // microbatch: drop it unexecuted.
                                        t.recycle();
                                        continue;
                                    }
                                    Ok(t)
                                }
                            }
                        };
                        let targets =
                            is_last.then(|| self.data[mb as usize].1[range.clone()].to_vec());
                        // Span covers only the stage math (exchange waits
                        // nest inside it as their own spans); the guarded
                        // receive above is pipeline bubble, not compute.
                        let t0 = rec.borrow().clock();
                        let fwd_out_val =
                            stage.forward(mb, sl, input, targets.as_deref(), attn, vp)?;
                        if let Some(t0) = t0 {
                            rec.borrow_mut().push(
                                SpanKind::Compute {
                                    stage: d,
                                    mb: mb as usize,
                                    slice: sl as usize,
                                    op: OpTag::Fwd,
                                },
                                t0,
                            );
                        }
                        match fwd_out_val {
                            StageOutput::Activation(act) => {
                                let out =
                                    fwd_out.as_mut().expect("interior stage has fwd output");
                                out.send(
                                    (mb, sl, ActPayload::Act(act)),
                                    &self.ctl,
                                    d,
                                    Port::Forward,
                                )?;
                            }
                            StageOutput::Loss(lv) => {
                                if lv.is_finite() {
                                    mb_loss[mb as usize] += lv;
                                } else if self.cfg.policy == DegradePolicy::Abort {
                                    return Err(ExecError::NonFinite {
                                        stage: d,
                                        iteration: step,
                                        mb,
                                        slice: sl,
                                        what: "loss".into(),
                                    });
                                } else if !mb_skipped[mb as usize] {
                                    // Skip-and-renormalize: poison detected.
                                    // The unit's state stays resident until
                                    // its backward op drains it.
                                    mb_skipped[mb as usize] = true;
                                    mb_loss[mb as usize] = 0.0;
                                    self.ctl.skipped_microbatches.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                    }
                    PassKind::Backward => {
                        let d_in = if is_last {
                            if mb_skipped[mb as usize] {
                                // Drain instead of computing: no math may
                                // run over the contaminated stashes/KV.
                                stage.drain_unit(mb, sl);
                                if let Some(out) = bwd_out.as_mut() {
                                    out.send(
                                        (mb, sl, ActPayload::Skip),
                                        &self.ctl,
                                        d,
                                        Port::Backward,
                                    )?;
                                }
                                continue;
                            }
                            None
                        } else {
                            let rx =
                                self.bwd_rx.as_ref().expect("interior stage has bwd input");
                            let (rmb, rsl, payload) = recv_guarded_pumped(
                                rx,
                                &self.ctl,
                                watchdog,
                                d,
                                mb,
                                sl,
                                Port::Backward,
                                || pump_outbound(&mut fwd_out, &mut bwd_out, &self.ctl, d),
                            )?;
                            assert_eq!((rmb, rsl), (mb, sl), "bwd order mismatch");
                            match payload {
                                ActPayload::Skip => {
                                    mb_skipped[mb as usize] = true;
                                    stage.drain_unit(mb, sl);
                                    if let Some(out) = bwd_out.as_mut() {
                                        out.send(
                                            (mb, sl, ActPayload::Skip),
                                            &self.ctl,
                                            d,
                                            Port::Backward,
                                        )?;
                                    }
                                    continue;
                                }
                                ActPayload::Act(g) => Some(g),
                            }
                        };
                        let targets =
                            is_last.then(|| self.data[mb as usize].1[range.clone()].to_vec());
                        let t0 = rec.borrow().clock();
                        let dx_opt =
                            stage.backward(mb, sl, d_in, targets.as_deref(), attn, vp)?;
                        if let Some(t0) = t0 {
                            rec.borrow_mut().push(
                                SpanKind::Compute {
                                    stage: d,
                                    mb: mb as usize,
                                    slice: sl as usize,
                                    op: OpTag::Bwd,
                                },
                                t0,
                            );
                        }
                        if let Some(dx) = dx_opt {
                            let out =
                                bwd_out.as_mut().expect("non-first stage has bwd output");
                            out.send(
                                (mb, sl, ActPayload::Act(dx)),
                                &self.ctl,
                                d,
                                Port::Backward,
                            )?;
                        }
                    }
                    PassKind::BackwardWeight => {
                        unreachable!("executor schemes do not split backward")
                    }
                }
                if let Some(rt) = &rt_opt {
                    local_only = rt.ft.local_only;
                }
            }
            // Drain any still-spilled posts: the iteration boundary is a
            // synchronization point (and possibly a checkpoint segment
            // end — threads join there, and dropping a non-empty spill
            // would strand the receiver at its watchdog).
            let t0 = rec.borrow().clock();
            flush_outbound(&mut fwd_out, &self.ctl, d, watchdog, Port::Forward)?;
            flush_outbound(&mut bwd_out, &self.ctl, d, watchdog, Port::Backward)?;
            if let Some(t0) = t0 {
                rec.borrow_mut().push(SpanKind::PostFlush { stage: d }, t0);
            }
            // ---- iteration boundary ----
            // Skip-and-renormalize: rescale surviving gradients (pre-scaled
            // by 1/total_tokens) to the exact mean over surviving tokens.
            // Every stage saw every skipped microbatch's Skip drain, so the
            // factor is identical pipeline-wide.
            let mut factor = 1.0f64;
            let skipped_count = mb_skipped.iter().filter(|&&s| s).count();
            if skipped_count > 0 {
                let total = self.cfg.total_tokens();
                let lost: usize = (0..m).filter(|&mb| mb_skipped[mb]).map(|mb| self.cfg.mb_seq(mb)).sum();
                if lost >= total {
                    if is_last {
                        return Err(ExecError::NonFinite {
                            stage: d,
                            iteration: step,
                            mb: 0,
                            slice: 0,
                            what: "all microbatches skipped".into(),
                        });
                    }
                    // Interior stages: everything drained, gradients are
                    // zero; nothing to rescale. The last stage's error
                    // aborts the run at the next rendezvous.
                } else {
                    factor = total as f64 / (total - lost) as f64;
                    stage.scale_grads(factor as f32);
                    if is_last && self.cfg.vocab_parallel {
                        server_barrier(
                            &self.servers,
                            |reply| ServerJob::ScaleGrad { factor: factor as f32, reply },
                            &self.ctl,
                            watchdog,
                            d,
                        )?;
                    }
                }
            }
            if is_last {
                let clean: f64 = mb_loss.iter().sum();
                let _ = self.loss_tx.send(clean * factor);
            }
            if step + 1 < self.steps {
                if self.cfg.vocab_parallel && is_last {
                    // Step the vocabulary shards (their gradients live in
                    // the servers). All of this iteration's vocab jobs have
                    // completed — loss_backward is synchronous — so FIFO
                    // ordering makes this safe.
                    server_barrier(
                        &self.servers,
                        |reply| ServerJob::SgdStep { lr: self.lr, reply },
                        &self.ctl,
                        watchdog,
                        d,
                    )?;
                }
                stage.sgd_step(self.lr);
            }
            // Drain this iteration's spans into the session. The boundary
            // is a synchronization point, so this is the one place a lock
            // is taken — never inside an op.
            rec.borrow_mut().flush();
        }
        Ok(())
    }
}

/// Spawn one compute server per device for a segment. Vocabulary shards
/// (when given) move into the servers and come back out at segment end.
type ServerJoin = std::thread::JoinHandle<Option<VocabShard>>;
fn spawn_segment_servers(
    p: usize,
    shards: Option<Vec<VocabShard>>,
    trace: &Arc<TraceSession>,
) -> (Vec<ServerHandle>, Vec<ServerJoin>) {
    let mut servers = Vec::with_capacity(p);
    let mut joins = Vec::with_capacity(p);
    match shards {
        Some(ss) => {
            for (dev, s) in ss.into_iter().enumerate() {
                let (h, j) = spawn_server_traced(dev, Some(s), trace);
                servers.push(h);
                joins.push(j);
            }
        }
        None => {
            for dev in 0..p {
                let (h, j) = spawn_server_traced(dev, None, trace);
                servers.push(h);
                joins.push(j);
            }
        }
    }
    (servers, joins)
}

/// A coarse analytic FLOP count for one training iteration of `cfg`:
/// `6 · tokens · params` for the dense math (fwd + bwd ≈ 3× a
/// 2-FLOP-per-MAC forward) plus the causal-attention score/value GEMMs,
/// which scale with token *pairs* rather than tokens. Used only to turn
/// measured busy time into a relative MFU — precision beyond the leading
/// terms buys nothing there.
pub fn approx_flops_per_iteration(cfg: &ExecConfig) -> f64 {
    let h = cfg.hidden() as f64;
    let kv = cfg.kv_hidden() as f64;
    let ffn = cfg.ffn as f64;
    let tokens: f64 = (0..cfg.microbatches).map(|mb| cfg.mb_seq(mb) as f64).sum();
    // Causal attention visits ~seq²/2 (query, key) pairs per microbatch.
    let pairs: f64 = (0..cfg.microbatches)
        .map(|mb| {
            let s = cfg.mb_seq(mb) as f64;
            s * s / 2.0
        })
        .sum();
    // Per-layer dense params: QKVO projections + SwiGLU (gate, up, down).
    let layer_params = h * h * 2.0 + h * kv * 2.0 + 3.0 * h * ffn;
    let dense = 6.0 * tokens * (layer_params * cfg.layers as f64 + h * cfg.vocab as f64);
    let attn = 12.0 * cfg.layers as f64 * pairs * h;
    dense + attn
}

/// Derive [`RunMetrics`] at the end of a run: counter deltas always, and —
/// when the session is live — per-stage busy/wait, makespan, bubble, MFU,
/// and overlap efficiency from the spans recorded *during this run* (an
/// elastic driver reuses one session across attempts, so spans already
/// present at entry are skipped via `span_base`).
fn run_metrics(
    cfg: &ExecConfig,
    iterations: usize,
    trace: &Arc<TraceSession>,
    c0: &CounterSnapshot,
    span_base: &[(String, usize)],
) -> RunMetrics {
    let mut m = RunMetrics {
        counters: obs_counters::snapshot().delta(c0),
        ..RunMetrics::default()
    };
    if !trace.enabled() {
        return m;
    }
    let p = cfg.stages;
    let mut busy = vec![0.0f64; p];
    let mut wait = vec![0.0f64; p];
    let (mut t_min, mut t_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for track in &trace.report().tracks {
        let Some(d) = track.name.strip_prefix("stage").and_then(|s| s.parse::<usize>().ok())
        else {
            continue;
        };
        if d >= p {
            continue;
        }
        let skip = span_base
            .iter()
            .find(|(n, _)| n == &track.name)
            .map_or(0, |&(_, n)| n);
        for span in track.spans.iter().skip(skip) {
            match span.kind {
                SpanKind::Compute { op: OpTag::Fwd | OpTag::Bwd, .. } => {
                    busy[d] += span.dur_us * 1e-6;
                    t_min = t_min.min(span.start_us);
                    t_max = t_max.max(span.start_us + span.dur_us);
                }
                SpanKind::ExchangeWait { .. } => wait[d] += span.dur_us * 1e-6,
                _ => {}
            }
        }
    }
    if !t_max.is_finite() || !t_min.is_finite() {
        return m; // traced session, but no compute spans landed
    }
    let makespan = ((t_max - t_min) * 1e-6).max(0.0);
    let total_flops = approx_flops_per_iteration(cfg) * iterations as f64;
    // Relative MFU: peak = the busiest stage's achieved throughput, so the
    // number reads as "how close the whole pipeline runs to its own best
    // stage" rather than against an unknowable CPU peak.
    let stage_flops = total_flops / p as f64;
    let peak = busy
        .iter()
        .filter(|&&b| b > 0.0)
        .map(|&b| stage_flops / b)
        .fold(0.0f64, f64::max);
    let total_busy: f64 = busy.iter().sum();
    let total_wait: f64 = wait.iter().sum();
    m.measured_makespan_s = Some(makespan);
    m.measured_bubble = Some(slimpipe_sim::metrics::bubble_fraction(&busy, makespan));
    m.mfu = Some(slimpipe_sim::metrics::mfu(total_flops, makespan, p, peak));
    if total_busy > 0.0 {
        m.overlap_efficiency = Some((1.0 - total_wait / total_busy).clamp(0.0, 1.0));
    }
    m.stage_busy_s = busy;
    m.exchange_wait_s = wait;
    m
}

/// Run iterations `[start, steps)` of `cfg` under `kind`, starting from
/// fresh (optionally checkpoint-restored) stages, checkpointing at the
/// configured boundaries. The run is split into segments at those
/// boundaries; each segment spawns its own stage threads and servers
/// around the persistent [`Stage`]/[`VocabShard`] values.
#[allow(clippy::too_many_arguments)]
fn run_from(
    cfg: &ExecConfig,
    kind: PipelineKind,
    start: usize,
    steps: usize,
    lr: f32,
    restore: Option<Arc<CheckpointState>>,
    shards: Option<Vec<VocabShard>>,
    trace: &Arc<TraceSession>,
) -> Result<RunResult, ExecError> {
    let out = run_from_inner(cfg, kind, start, steps, lr, restore, shards, trace);
    if out.is_err() && trace.enabled() {
        // Flight recorder: the stage threads have joined (their recorders
        // Drop-flushed), so the report holds each track's final spans —
        // capture the tail for post-mortem before the session is dropped.
        slimpipe_obs::flight::store(slimpipe_obs::FlightRecording::capture(&trace.report()));
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn run_from_inner(
    cfg: &ExecConfig,
    kind: PipelineKind,
    start: usize,
    steps: usize,
    lr: f32,
    restore: Option<Arc<CheckpointState>>,
    mut shards: Option<Vec<VocabShard>>,
    trace: &Arc<TraceSession>,
) -> Result<RunResult, ExecError> {
    let sched = build_schedule(kind, cfg); // cfg was validated by the caller
    let p = cfg.stages;
    let data = Arc::new(make_data(cfg));
    let ranges = Arc::new(cfg.slice_map());
    let ctl = Arc::new(RunCtl::new());
    // Metrics baselines: the counter registry is process-global and the
    // trace session may be shared across elastic attempts, so this run's
    // contribution is a delta against both.
    let c0 = obs_counters::snapshot();
    let span_base: Vec<(String, usize)> = trace
        .report()
        .tracks
        .iter()
        .map(|t| (t.name.clone(), t.spans.len()))
        .collect();
    let mut drv_rec = trace.recorder("driver");
    // One exchange map per microbatch: ragged microbatches and non-uniform
    // policies induce different slice volumes, so each microbatch gets a
    // plan derived from its actual bounds. Equal slicings (the whole run,
    // when not ragged) share one map, and the maps are Arc'd so stage
    // threads clone pointers, not plans.
    let any_sliced = (0..cfg.microbatches).any(|mb| cfg.slices_of(mb) > 1);
    let exmaps: Option<Arc<Vec<ExchangeMap>>> = (cfg.exchange && any_sliced).then(|| {
        let slicings = cfg.slicings();
        let mut maps: Vec<ExchangeMap> = Vec::with_capacity(slicings.len());
        for (i, s) in slicings.iter().enumerate() {
            match slicings[..i].iter().position(|t| t == s) {
                Some(j) => maps.push(maps[j].clone()),
                None => maps.push(ExchangeMap::build_from(p, s)),
            }
        }
        Arc::new(maps)
    });

    let mut stages: Option<Vec<Stage>> = None;
    let mut losses: Vec<f64> = Vec::with_capacity(steps - start);
    let mut cursors: Vec<Arc<AtomicU64>> = Vec::new();
    let mut it = start;
    while it < steps {
        let seg_end = match &cfg.checkpoint {
            Some(ck) => ((it / ck.every + 1) * ck.every).min(steps),
            None => steps,
        };
        let (servers, server_joins) =
            spawn_segment_servers(p, if cfg.vocab_parallel { shards.take() } else { None }, trace);

        // Stage-boundary channels (rebuilt per segment; they are empty at
        // every boundary).
        let mut fwd_tx: Vec<Option<Sender<ActMsg>>> = Vec::new();
        let mut fwd_rx: Vec<Option<Receiver<ActMsg>>> = vec![None];
        let mut bwd_tx: Vec<Option<Sender<ActMsg>>> = vec![None];
        let mut bwd_rx: Vec<Option<Receiver<ActMsg>>> = Vec::new();
        // The async exchange runtime double-buffers each boundary at
        // iteration granularity: a bounded channel sized for two
        // iterations' worth of units behind the stages' non-blocking post
        // queues, so a stage's legitimate schedule run-ahead (warmup
        // forwards) never waits on the consumer, while the post queue's
        // spill stays the deadlock-safety net for anything beyond (skip
        // echoes, a wedged peer). A tighter bound buys no memory — the
        // spill behind it is unbounded — but costs a wakeup round-trip
        // per rate-limited message, which serializes the pipeline on few
        // cores. The serialized regime keeps the historical unbounded
        // blocking handoff.
        let units: usize = (0..cfg.microbatches).map(|mb| cfg.slices_of(mb)).sum();
        let cap = 2 * units.max(1);
        let boundary = || if cfg.async_exchange { bounded(cap) } else { unbounded() };
        for _ in 0..p.saturating_sub(1) {
            let (ft, fr) = boundary();
            fwd_tx.push(Some(ft));
            fwd_rx.push(Some(fr));
            let (bt, br) = boundary();
            bwd_tx.push(Some(bt));
            bwd_rx.push(Some(br));
        }
        fwd_tx.push(None);
        bwd_rx.push(None);
        let (loss_tx, loss_rx) = unbounded::<f64>();

        let seg_stages_in: Vec<Option<Stage>> = match stages.take() {
            Some(v) => v.into_iter().map(Some).collect(),
            None => (0..p).map(|_| None).collect(),
        };
        let mut joins = Vec::with_capacity(p);
        cursors = (0..p).map(|_| Arc::new(AtomicU64::new(pack_cursor(it, 0, 0)))).collect();
        for (d, prebuilt) in seg_stages_in.into_iter().enumerate() {
            let run = StageRun {
                cfg: cfg.clone(),
                device: d,
                steps,
                lr,
                seg: it..seg_end,
                ops: sched.ops[d].clone(),
                data: data.clone(),
                ranges: ranges.clone(),
                fwd_rx: fwd_rx[d].take(),
                fwd_tx: fwd_tx[d].take(),
                bwd_rx: bwd_rx[d].take(),
                bwd_tx: bwd_tx[d].take(),
                servers: servers.clone(),
                exmaps: exmaps.clone(),
                loss_tx: loss_tx.clone(),
                ctl: ctl.clone(),
                cursor: cursors[d].clone(),
                trace: trace.clone(),
            };
            let ctl = ctl.clone();
            let restore = restore.clone();
            joins.push(std::thread::spawn(move || -> Result<Stage, ExecError> {
                let mut stage = match prebuilt {
                    Some(s) => s,
                    None => {
                        let mut s = Stage::build(&run.cfg, d);
                        if let Some(ck) = &restore {
                            if let Err(e) = ck.apply_to(&mut s) {
                                ctl.fail(e.clone());
                                return Err(e);
                            }
                        }
                        s
                    }
                };
                let cursor = run.cursor.clone();
                // Panic containment: a panicking op (injected or a real
                // bug) becomes a StagePanic naming the failed unit, and the
                // abort flag drains every peer.
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    run.run(&mut stage)
                })) {
                    Ok(Ok(())) => Ok(stage),
                    Ok(Err(e)) => {
                        ctl.fail(e.clone());
                        Err(e)
                    }
                    Err(payload) => {
                        let c = cursor.load(Ordering::Relaxed);
                        let e = ExecError::StagePanic {
                            stage: d,
                            iteration: (c >> 32) as usize,
                            mb: ((c >> 16) & 0xFFFF) as u32,
                            slice: (c & 0xFFFF) as u32,
                            msg: panic_message(payload.as_ref()),
                        };
                        ctl.fail(e.clone());
                        Err(e)
                    }
                }
            }));
        }
        drop(loss_tx);

        let mut seg_stages: Vec<Stage> = Vec::with_capacity(p);
        let mut thread_err: Option<ExecError> = None;
        for (d, j) in joins.into_iter().enumerate() {
            match j.join() {
                Ok(Ok(st)) => seg_stages.push(st),
                Ok(Err(e)) => {
                    thread_err.get_or_insert(e);
                }
                Err(payload) => {
                    // Outside catch_unwind — should be unreachable, but a
                    // thread death must never hang or abort the driver.
                    let e = ExecError::StagePanic {
                        stage: d,
                        iteration: it,
                        mb: 0,
                        slice: 0,
                        msg: panic_message(payload.as_ref()),
                    };
                    ctl.fail(e.clone());
                    thread_err.get_or_insert(e);
                }
            }
        }
        // Stop the segment's servers and recover the shards.
        for s in &servers {
            s.stop();
        }
        let mut seg_shards: Vec<Option<VocabShard>> = Vec::with_capacity(p);
        for j in server_joins {
            seg_shards.push(j.join().unwrap_or(None));
        }
        // The control block ranks root causes above drain echoes.
        if let Some(e) = ctl.take_error().or(thread_err) {
            return Err(e);
        }
        losses.extend(loss_rx.try_iter());
        debug_assert_eq!(losses.len(), seg_end - start, "one loss per iteration");
        if cfg.vocab_parallel {
            let mut out = Vec::with_capacity(p);
            for (dev, s) in seg_shards.into_iter().enumerate() {
                match s {
                    Some(s) => out.push(s),
                    None => {
                        return Err(ExecError::ServerDied {
                            device: dev,
                            stage: p - 1,
                            mb: 0,
                            slice: 0,
                        })
                    }
                }
            }
            shards = Some(out);
        }
        // Snapshot at interior boundaries (the final boundary has the last
        // iteration's gradients un-stepped by design — nothing to resume).
        if seg_end < steps {
            if let Some(ck) = &cfg.checkpoint {
                let t0 = drv_rec.clock();
                CheckpointState::capture(seg_end, &seg_stages, shards.as_deref())
                    .save_retained(ck, cfg)?;
                obs_counters::CKPT_SAVES.incr();
                if let Some(t0) = t0 {
                    drv_rec.push(SpanKind::CkptSave { iteration: seg_end }, t0);
                    // Make the save visible immediately: a recovery driver
                    // may read the trace mid-replan, between segments.
                    drv_rec.flush();
                }
            }
        }
        stages = Some(seg_stages);
        it = seg_end;
    }

    // The tail must stay typed-error plumbing: the recovery driver runs
    // arbitrary restored/regrouped state through here, and a panic would
    // escape its supervise loop where an ExecError heals.
    let mut stages = stages
        .ok_or_else(|| ExecError::InvalidConfig("no iterations to run (start >= steps)".into()))?;
    let mut out_grad = Tensor::zeros(cfg.hidden(), cfg.vocab);
    if let Some(shards) = &shards {
        for s in shards {
            out_grad.set_cols(s.offset, &s.grad);
        }
    } else {
        let (_, g) = stages[p - 1].out_proj.as_ref().ok_or_else(|| {
            ExecError::Checkpoint("last stage has no output projection (classic head)".into())
        })?;
        out_grad = g.clone();
    }

    let peak_act_bytes: Vec<u64> = stages.iter().map(|s| s.mem.peak()).collect();
    let offload_transferred: Vec<u64> = stages
        .iter()
        .map(|s| {
            if let Some(eng) = &s.offload {
                eng.assert_drained();
                eng.transferred
            } else {
                0
            }
        })
        .collect();
    let mut layer_grads = Vec::with_capacity(cfg.layers);
    for st in &mut stages {
        layer_grads.append(&mut st.grads.drain(..).collect());
    }
    let embed_grad = stages[0]
        .embed
        .as_ref()
        .ok_or_else(|| ExecError::Checkpoint("stage 0 has no embedding table".into()))?
        .1
        .clone();
    let final_norm_grad = stages[p - 1]
        .final_norm
        .as_ref()
        .ok_or_else(|| ExecError::Checkpoint("last stage has no final norm".into()))?
        .1
        .clone();

    let final_cursors = cursors
        .iter()
        .map(|c| {
            let v = c.load(Ordering::Relaxed);
            ((v >> 32) as usize, ((v >> 16) & 0xFFFF) as u32, (v & 0xFFFF) as u32)
        })
        .collect();
    // Mirror this run's per-run control-block tallies into the global
    // registry *before* taking the counter delta, so the snapshot in
    // `metrics` includes them.
    let fault_stats = ctl.stats();
    let posted_sends = ctl.posted_sends.load(Ordering::Relaxed);
    obs_counters::EXCHANGE_RETRIES.add(fault_stats.exchange_retries);
    obs_counters::LOCAL_FALLBACKS.add(fault_stats.local_fallbacks);
    obs_counters::SKIPPED_MICROBATCHES.add(fault_stats.skipped_microbatches);
    obs_counters::POSTED_SENDS.add(posted_sends);
    let metrics = run_metrics(cfg, steps - start, trace, &c0, &span_base);
    Ok(RunResult {
        losses,
        layer_grads,
        embed_grad,
        out_grad,
        final_norm_grad,
        peak_act_bytes,
        offload_transferred,
        fault_stats,
        final_cursors,
        posted_sends,
        metrics,
    })
}

/// A config with the `SLIMPIPE_FAULT_PLAN` env hook applied: when the
/// config carries no explicit plan and the env names one, the env plan is
/// adopted (and then validated like any other, so a plan written against
/// the wrong geometry reports `InvalidConfig`, not silence).
fn with_env_fault_plan(cfg: &ExecConfig) -> Result<ExecConfig, ExecError> {
    let mut cfg = cfg.clone();
    if cfg.fault_plan.is_none() {
        cfg.fault_plan = FaultPlan::from_env().map_err(ExecError::InvalidConfig)?;
    }
    Ok(cfg)
}

/// Run `steps` training iterations of `cfg` under `kind`. The gradients of
/// the final iteration are returned un-stepped so they can be compared
/// across configurations. Every failure mode — injected or real — returns
/// a structured [`ExecError`]; the process neither hangs nor aborts.
pub fn try_run_pipeline(
    cfg: &ExecConfig,
    kind: PipelineKind,
    steps: usize,
    lr: f32,
) -> Result<RunResult, ExecError> {
    let (trace, path) = TraceSession::from_env();
    let out = try_run_pipeline_traced(cfg, kind, steps, lr, &trace);
    if let Some(p) = path {
        // Written on error too — a trace of a failed run is the one you
        // most want to look at.
        let _ = slimpipe_obs::chrome::write_chrome_trace(&trace.report(), &p);
    }
    out
}

/// [`try_run_pipeline`] recording into an explicit trace session (the
/// programmatic tracing entry; the env-hooked wrapper builds the session
/// from `SLIMPIPE_TRACE`). Tracing is determinism-neutral: a traced run is
/// bit-identical to an untraced one (asserted in `tests/trace.rs`).
pub fn try_run_pipeline_traced(
    cfg: &ExecConfig,
    kind: PipelineKind,
    steps: usize,
    lr: f32,
    trace: &Arc<TraceSession>,
) -> Result<RunResult, ExecError> {
    let cfg = with_env_fault_plan(cfg)?;
    cfg.validate().map_err(ExecError::InvalidConfig)?;
    if steps == 0 {
        return Err(ExecError::InvalidConfig("steps must be >= 1".into()));
    }
    let shards = cfg.vocab_parallel.then(|| build_vocab_shards(&cfg));
    run_from(&cfg, kind, 0, steps, lr, None, shards, trace)
}

/// Resume a run from the newest usable snapshot under
/// `cfg.checkpoint.path` (the retention manifest, with fallback to the
/// newest verifying sibling — see `crate::checkpoint`) and train to
/// `steps` total iterations. The returned losses cover only the resumed
/// iterations, and the result is **bit-identical** to the corresponding
/// tail of an uninterrupted [`try_run_pipeline`] run: exact f32 bit
/// patterns are restored, repacking is deterministic, the optimizer is
/// stateless, and data is a pure function of `(seed, mb)`.
pub fn try_resume_pipeline(
    cfg: &ExecConfig,
    kind: PipelineKind,
    steps: usize,
    lr: f32,
) -> Result<RunResult, ExecError> {
    let ck = cfg
        .checkpoint
        .as_ref()
        .ok_or_else(|| ExecError::Checkpoint("resume requires cfg.checkpoint".into()))?;
    let state = CheckpointState::load_latest(ck, cfg)?;
    try_resume_pipeline_from(cfg, kind, steps, lr, state)
}

/// Resume from an explicit in-memory snapshot (the recovery driver's path,
/// and the comparison arm of the determinism tests, which pin a specific
/// `{path}.it{N}` snapshot instead of whatever `latest` points at). A
/// snapshot captured at a different pipeline geometry is re-sharded onto
/// `cfg`'s via [`CheckpointState::regroup`] — elastic restore is this one
/// line, not a parallel code path.
pub fn try_resume_pipeline_from(
    cfg: &ExecConfig,
    kind: PipelineKind,
    steps: usize,
    lr: f32,
    state: CheckpointState,
) -> Result<RunResult, ExecError> {
    let (trace, path) = TraceSession::from_env();
    let out = try_resume_pipeline_from_traced(cfg, kind, steps, lr, state, &trace);
    if let Some(p) = path {
        let _ = slimpipe_obs::chrome::write_chrome_trace(&trace.report(), &p);
    }
    out
}

/// [`try_resume_pipeline_from`] recording into an explicit trace session.
pub fn try_resume_pipeline_from_traced(
    cfg: &ExecConfig,
    kind: PipelineKind,
    steps: usize,
    lr: f32,
    state: CheckpointState,
    trace: &Arc<TraceSession>,
) -> Result<RunResult, ExecError> {
    let cfg = with_env_fault_plan(cfg)?;
    cfg.validate().map_err(ExecError::InvalidConfig)?;
    let state = if state.stages.len() != cfg.stages
        || state.shards.is_some() != cfg.vocab_parallel
    {
        state.regroup(&cfg)?
    } else {
        state
    };
    let start = state.iteration as usize;
    if start >= steps {
        return Err(ExecError::Checkpoint(format!(
            "checkpoint at iteration {start} cannot resume a {steps}-step run"
        )));
    }
    let shards = if cfg.vocab_parallel {
        Some(state.to_shards(&cfg).ok_or_else(|| {
            ExecError::Checkpoint("vocab-parallel resume needs shard states".into())
        })?)
    } else {
        None
    };
    run_from(&cfg, kind, start, steps, lr, Some(Arc::new(state)), shards, trace)
}

/// [`try_run_pipeline`] for callers that treat any failure as fatal (the
/// historical API; tests and benches use it for known-clean configs).
pub fn run_pipeline(cfg: &ExecConfig, kind: PipelineKind, steps: usize, lr: f32) -> RunResult {
    try_run_pipeline(cfg, kind, steps, lr)
        .unwrap_or_else(|e| panic!("pipeline run failed: {e}"))
}

/// Single-device, unsliced reference run — the ground truth every pipeline
/// configuration is verified against. Fault injection, degradation, and
/// checkpointing are stripped: the reference must stay the clean baseline
/// even when `cfg` carries a fault plan.
pub fn run_reference(cfg: &ExecConfig, steps: usize, lr: f32) -> RunResult {
    let ref_cfg = ExecConfig {
        stages: 1,
        slices: 1,
        mb_slices: None,
        slicing: slimpipe_core::SlicePolicy::Uniform,
        vocab_parallel: false,
        exchange: false,
        policy: DegradePolicy::Abort,
        fault_plan: None,
        checkpoint: None,
        ..cfg.clone()
    };
    run_pipeline(&ref_cfg, PipelineKind::OneFOneB, steps, lr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_runs_and_learns() {
        let cfg = ExecConfig::small();
        let r = run_reference(&cfg, 4, 0.5);
        assert_eq!(r.losses.len(), 4);
        assert!(r.losses[3] < r.losses[0], "losses: {:?}", r.losses);
        assert_eq!(r.layer_grads.len(), cfg.layers);
        assert_eq!(r.fault_stats, FaultStats::default());
    }

    #[test]
    fn slimpipe_pipeline_runs() {
        let cfg = ExecConfig {
            exchange: false,
            ..ExecConfig::small()
        };
        let r = run_pipeline(&cfg, PipelineKind::SlimPipe, 1, 0.1);
        assert_eq!(r.losses.len(), 1);
        assert!(r.losses[0].is_finite());
        assert_eq!(r.peak_act_bytes.len(), cfg.stages);
        assert!(r.peak_act_bytes.iter().all(|&b| b > 0));
    }

    #[test]
    fn zero_steps_is_a_structured_error() {
        let cfg = ExecConfig::small();
        match try_run_pipeline(&cfg, PipelineKind::SlimPipe, 0, 0.1) {
            Err(ExecError::InvalidConfig(_)) => {}
            other => panic!("expected InvalidConfig, got {:?}", other.map(|_| "ok")),
        }
    }
}
