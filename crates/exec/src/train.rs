//! The threaded pipeline training driver.
//!
//! One OS thread per pipeline stage executes its static op list; boundary
//! activations and gradients move through crossbeam channels; compute
//! servers (one per device) serve context-exchange and vocabulary-shard
//! jobs. Determinism: parameters, data, and schedules are all seeded, so a
//! run is reproducible and comparable against the single-device reference.

use crate::comm::{build_vocab_shards, spawn_server, ServerHandle, ServerJob, ExchangeMap, ExchangeRt, VocabParallel};
use crate::layer::{AttnExecutor, LayerGrads, LocalAttn};
use crate::model::ExecConfig;
use crate::schedule::{build_schedule, PipelineKind};
use crate::stage::{Stage, StageOutput};
use crossbeam::channel::{unbounded, Receiver, Sender};
use slimpipe_sched::PassKind;
use slimpipe_tensor::init::seeded_tokens;
use slimpipe_tensor::Tensor;
use std::sync::Arc;

/// Everything a run produces, for comparison and reporting.
pub struct RunResult {
    /// Mean loss per iteration.
    pub losses: Vec<f64>,
    /// Final-iteration gradients, global layer order.
    pub layer_grads: Vec<LayerGrads>,
    pub embed_grad: Tensor,
    /// Full `(hidden, vocab)` output-projection gradient (vocabulary
    /// shards gathered when vocabulary parallelism was on).
    pub out_grad: Tensor,
    pub final_norm_grad: Vec<f32>,
    /// Peak activation bytes per device (stash + KV + head stash).
    pub peak_act_bytes: Vec<u64>,
    /// Offload traffic per device (0 when no budget configured, §6.5).
    pub offload_transferred: Vec<u64>,
}

/// Deterministic training data: one token stream per microbatch (ragged
/// lengths respected), next-token targets.
pub fn make_data(cfg: &ExecConfig) -> Vec<(Vec<u32>, Vec<u32>)> {
    (0..cfg.microbatches)
        .map(|mb| {
            let toks = seeded_tokens(cfg.mb_seq(mb), cfg.vocab, cfg.seed * 1000 + mb as u64);
            let mut targets = toks[1..].to_vec();
            targets.push(toks[0]);
            (toks, targets)
        })
        .collect()
}

type ActMsg = (u32, u32, Tensor);

/// Run `steps` training iterations of `cfg` under `kind`. The gradients of
/// the final iteration are returned un-stepped so they can be compared
/// across configurations.
pub fn run_pipeline(cfg: &ExecConfig, kind: PipelineKind, steps: usize, lr: f32) -> RunResult {
    assert!(steps >= 1);
    let sched = build_schedule(kind, cfg); // validates cfg too
    let p = cfg.stages;
    let data = make_data(cfg);

    // Compute servers (vocabulary shards live inside them when enabled).
    let mut servers: Vec<ServerHandle> = Vec::with_capacity(p);
    let mut server_joins = Vec::with_capacity(p);
    if cfg.vocab_parallel {
        for shard in build_vocab_shards(cfg) {
            let (h, j) = spawn_server(Some(shard));
            servers.push(h);
            server_joins.push(j);
        }
    } else {
        for _ in 0..p {
            let (h, j) = spawn_server(None);
            servers.push(h);
            server_joins.push(j);
        }
    }
    // One exchange map per microbatch: ragged microbatches and non-uniform
    // policies induce different slice volumes, so each microbatch gets a
    // plan derived from its actual bounds. Equal slicings (the whole run,
    // when not ragged) share one map, and the maps are Arc'd so stage
    // threads clone pointers, not plans.
    let any_sliced = (0..cfg.microbatches).any(|mb| cfg.slices_of(mb) > 1);
    let exmaps: Option<Arc<Vec<ExchangeMap>>> = (cfg.exchange && any_sliced).then(|| {
        let slicings = cfg.slicings();
        let mut maps: Vec<ExchangeMap> = Vec::with_capacity(slicings.len());
        for (i, s) in slicings.iter().enumerate() {
            match slicings[..i].iter().position(|t| t == s) {
                Some(j) => maps.push(maps[j].clone()),
                None => maps.push(ExchangeMap::build_from(p, s)),
            }
        }
        Arc::new(maps)
    });

    // Stage-boundary channels.
    let mut fwd_tx: Vec<Option<Sender<ActMsg>>> = Vec::new();
    let mut fwd_rx: Vec<Option<Receiver<ActMsg>>> = vec![None];
    let mut bwd_tx: Vec<Option<Sender<ActMsg>>> = vec![None];
    let mut bwd_rx: Vec<Option<Receiver<ActMsg>>> = Vec::new();
    for _ in 0..p.saturating_sub(1) {
        let (ft, fr) = unbounded();
        fwd_tx.push(Some(ft));
        fwd_rx.push(Some(fr));
        let (bt, br) = unbounded();
        bwd_tx.push(Some(bt));
        bwd_rx.push(Some(br));
    }
    fwd_tx.push(None);
    bwd_rx.push(None);

    let (loss_tx, loss_rx) = unbounded::<f64>();

    let mut joins = Vec::with_capacity(p);
    for d in 0..p {
        let cfg = cfg.clone();
        let ops = sched.ops[d].clone();
        let data = data.clone();
        let my_fwd_rx = fwd_rx[d].take();
        let my_fwd_tx = fwd_tx[d].take();
        let my_bwd_rx = bwd_rx[d].take();
        let my_bwd_tx = bwd_tx[d].take();
        let servers = servers.clone();
        let exmaps = exmaps.clone();
        let loss_tx = loss_tx.clone();
        // `(mb, slice) → token range`, precomputed once — ops look their
        // ranges up instead of recomputing `slice * slice_len` offsets.
        let ranges = cfg.slice_map();
        joins.push(std::thread::spawn(move || {
            let mut stage = Stage::build(&cfg, d);
            let is_last = d == p - 1;
            for step in 0..steps {
                // Mark the pack epoch: everything after stage build must
                // run off the persistent packed-weight cache, so
                // `gemm_packs_per_step()` reads zero once every thread is
                // past its build (asserted in tests/pool_steady_state.rs).
                slimpipe_tensor::matmul::begin_pack_epoch();
                let mut iter_loss = 0.0f64;
                for op in &ops {
                    let mut local = LocalAttn;
                    let mut rt;
                    let (mb, sl) = (op.mb, op.slice);
                    let attn: &mut dyn AttnExecutor = match &exmaps {
                        Some(maps) => {
                            rt = ExchangeRt {
                                device: d,
                                servers: &servers,
                                map: &maps[mb as usize],
                            };
                            &mut rt
                        }
                        None => &mut local,
                    };
                    let vp_holder;
                    let vp = if cfg.vocab_parallel && is_last {
                        vp_holder = VocabParallel { servers: &servers };
                        Some(&vp_holder)
                    } else {
                        None
                    };
                    let range = ranges[mb as usize][sl as usize].clone();
                    match op.kind {
                        PassKind::Forward => {
                            let input = if d == 0 {
                                Err(data[mb as usize].0[range.clone()].to_vec())
                            } else {
                                let (rmb, rsl, act) = my_fwd_rx
                                    .as_ref()
                                    .expect("interior stage has fwd input")
                                    .recv()
                                    .expect("upstream died");
                                assert_eq!((rmb, rsl), (mb, sl), "fwd order mismatch");
                                Ok(act)
                            };
                            let targets = is_last
                                .then(|| data[mb as usize].1[range.clone()].to_vec());
                            match stage.forward(mb, sl, input, targets.as_deref(), attn, vp)
                            {
                                StageOutput::Activation(act) => {
                                    my_fwd_tx
                                        .as_ref()
                                        .expect("interior stage has fwd output")
                                        .send((mb, sl, act))
                                        .expect("downstream died");
                                }
                                StageOutput::Loss(lv) => iter_loss += lv,
                            }
                        }
                        PassKind::Backward => {
                            let d_in = if is_last {
                                None
                            } else {
                                let (rmb, rsl, g) = my_bwd_rx
                                    .as_ref()
                                    .expect("interior stage has bwd input")
                                    .recv()
                                    .expect("downstream died");
                                assert_eq!((rmb, rsl), (mb, sl), "bwd order mismatch");
                                Some(g)
                            };
                            let targets = is_last
                                .then(|| data[mb as usize].1[range.clone()].to_vec());
                            if let Some(dx) =
                                stage.backward(mb, sl, d_in, targets.as_deref(), attn, vp)
                            {
                                my_bwd_tx
                                    .as_ref()
                                    .expect("non-first stage has bwd output")
                                    .send((mb, sl, dx))
                                    .expect("upstream died");
                            }
                        }
                        PassKind::BackwardWeight => {
                            unreachable!("executor schemes do not split backward")
                        }
                    }
                }
                if is_last {
                    loss_tx.send(iter_loss).expect("driver died");
                }
                if step + 1 < steps {
                    if cfg.vocab_parallel && is_last {
                        // Step the vocabulary shards (their gradients live
                        // in the servers). All of this iteration's vocab
                        // jobs have completed — loss_backward is
                        // synchronous — so FIFO ordering makes this safe.
                        let (ack_tx, ack_rx) = unbounded();
                        for s in &servers {
                            s.submit(ServerJob::SgdStep { lr, reply: ack_tx.clone() });
                        }
                        for _ in 0..servers.len() {
                            ack_rx.recv().expect("server died");
                        }
                    }
                    stage.sgd_step(lr);
                }
            }
            stage
        }));
    }
    drop(loss_tx);

    let mut stages: Vec<Stage> = joins
        .into_iter()
        .map(|j| j.join().expect("stage thread panicked"))
        .collect();
    let losses: Vec<f64> = loss_rx.iter().collect();
    assert_eq!(losses.len(), steps, "one loss per iteration");

    // Collect vocabulary shards (and stop the servers).
    let mut out_grad = Tensor::zeros(cfg.hidden(), cfg.vocab);
    for s in &servers {
        s.submit(ServerJob::Stop);
    }
    let shard_w = cfg.vocab / p;
    for (i, j) in server_joins.into_iter().enumerate() {
        if let Some(shard) = j.join().expect("server panicked") {
            out_grad.set_cols(i * shard_w, &shard.grad);
        }
    }
    if !cfg.vocab_parallel {
        let (_, g) = stages[p - 1].out_proj.as_ref().expect("classic head");
        out_grad = g.clone();
    }

    let peak_act_bytes: Vec<u64> = stages.iter().map(|s| s.mem.peak()).collect();
    let offload_transferred: Vec<u64> = stages
        .iter()
        .map(|s| {
            if let Some(eng) = &s.offload {
                eng.assert_drained();
                eng.transferred
            } else {
                0
            }
        })
        .collect();
    let mut layer_grads = Vec::with_capacity(cfg.layers);
    for st in &mut stages {
        layer_grads.append(&mut st.grads.drain(..).collect());
    }
    let embed_grad = stages[0].embed.as_ref().expect("stage 0 owns embedding").1.clone();
    let final_norm_grad = stages[p - 1]
        .final_norm
        .as_ref()
        .expect("last stage owns final norm")
        .1
        .clone();

    RunResult {
        losses,
        layer_grads,
        embed_grad,
        out_grad,
        final_norm_grad,
        peak_act_bytes,
        offload_transferred,
    }
}

/// Single-device, unsliced reference run — the ground truth every pipeline
/// configuration is verified against.
pub fn run_reference(cfg: &ExecConfig, steps: usize, lr: f32) -> RunResult {
    let ref_cfg = ExecConfig {
        stages: 1,
        slices: 1,
        mb_slices: None,
        slicing: slimpipe_core::SlicePolicy::Uniform,
        vocab_parallel: false,
        exchange: false,
        ..cfg.clone()
    };
    run_pipeline(&ref_cfg, PipelineKind::OneFOneB, steps, lr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_runs_and_learns() {
        let cfg = ExecConfig::small();
        let r = run_reference(&cfg, 4, 0.5);
        assert_eq!(r.losses.len(), 4);
        assert!(r.losses[3] < r.losses[0], "losses: {:?}", r.losses);
        assert_eq!(r.layer_grads.len(), cfg.layers);
    }

    #[test]
    fn slimpipe_pipeline_runs() {
        let cfg = ExecConfig {
            exchange: false,
            ..ExecConfig::small()
        };
        let r = run_pipeline(&cfg, PipelineKind::SlimPipe, 1, 0.1);
        assert_eq!(r.losses.len(), 1);
        assert!(r.losses[0].is_finite());
        assert_eq!(r.peak_act_bytes.len(), cfg.stages);
        assert!(r.peak_act_bytes.iter().all(|&b| b > 0));
    }
}
