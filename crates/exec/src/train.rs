//! The threaded pipeline training driver.
//!
//! One OS thread per pipeline stage executes its static op list; boundary
//! activations and gradients move through crossbeam channels; compute
//! servers (one per device) serve context-exchange and vocabulary-shard
//! jobs. Determinism: parameters, data, and schedules are all seeded, so a
//! run is reproducible and comparable against the single-device reference.
//!
//! Fault tolerance (the [`crate::fault`] model, wired end to end):
//!
//! * every stage thread runs under `catch_unwind` with a live `(iteration,
//!   mb, slice)` cursor, so a panic surfaces as a structured
//!   [`ExecError::StagePanic`] naming the failed unit instead of aborting
//!   the process;
//! * every cross-stage rendezvous is a [`recv_guarded`] wait: it watches
//!   the shared abort flag and a watchdog deadline, so the first failure
//!   anywhere drains the whole pipeline — injected faults never hang a run;
//! * a non-finite loss degrades per [`DegradePolicy`]: abort with a
//!   [`ExecError::NonFinite`], or *skip-and-renormalize* — the poisoned
//!   microbatch is drained (no math runs over contaminated state; `Skip`
//!   messages propagate the drain upstream) and the surviving gradients and
//!   loss are rescaled to the exact mean over surviving tokens;
//! * at iteration boundaries the run snapshots to [`CheckpointCfg::path`];
//!   [`try_resume_pipeline`] continues from the snapshot **bit-identically**
//!   to the uninterrupted run (asserted in `tests/faults.rs`).
//!
//! Checkpointing splits the run into segments: stage threads return their
//! [`Stage`] values at each boundary (a full synchronization point — no
//! math is in flight), the driver captures and saves, and the next segment
//! respawns threads around the same stage values, so segmentation itself
//! cannot perturb the numerics.

use crate::checkpoint::CheckpointState;
use crate::comm::{
    build_vocab_shards, spawn_server, DeadServer, ExchangeMap, ExchangeRt, FtCtx, ServerHandle,
    ServerJob, VocabParallel, VocabShard,
};
use crate::fault::{
    panic_message, recv_guarded, recv_guarded_pumped, DegradePolicy, ExecError, FaultKind,
    FaultPlan, FaultStats, InjectedPanic, Port, RunCtl, ABORT_POLL,
};
use crate::layer::{AttnExecutor, LayerGrads, LocalAttn};
use crate::model::ExecConfig;
use crate::schedule::{build_schedule, PipelineKind};
use crate::stage::{Stage, StageOutput};
use crossbeam::channel::{bounded, unbounded, PostQueue, Receiver, Sender};
use slimpipe_sched::{PassKind, WorkItem};
use slimpipe_tensor::init::seeded_tokens;
use slimpipe_tensor::Tensor;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Everything a run produces, for comparison and reporting.
pub struct RunResult {
    /// Mean loss per iteration (over surviving tokens, when microbatches
    /// were skipped). A resumed run reports only the iterations it ran.
    pub losses: Vec<f64>,
    /// Final-iteration gradients, global layer order.
    pub layer_grads: Vec<LayerGrads>,
    pub embed_grad: Tensor,
    /// Full `(hidden, vocab)` output-projection gradient (vocabulary
    /// shards gathered when vocabulary parallelism was on).
    pub out_grad: Tensor,
    pub final_norm_grad: Vec<f32>,
    /// Peak activation bytes per device (stash + KV + head stash).
    pub peak_act_bytes: Vec<u64>,
    /// Offload traffic per device (0 when no budget configured, §6.5).
    pub offload_transferred: Vec<u64>,
    /// Recovery activity: retries, local fallbacks, skipped microbatches.
    pub fault_stats: FaultStats,
    /// Per-stage final `(iteration, mb, slice)` cursor — the last unit each
    /// stage marked in-progress. A unit recovered on retry must advance its
    /// cursor exactly once (pinned by the retry-accounting regression).
    pub final_cursors: Vec<(usize, u32, u32)>,
    /// Boundary activations handed off through the non-blocking post queue
    /// (0 when `async_exchange` is off or the pipeline has one stage).
    pub posted_sends: u64,
}

impl std::fmt::Debug for RunResult {
    /// Summary only — the gradient tensors are megabytes of f32.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunResult")
            .field("losses", &self.losses)
            .field("layers", &self.layer_grads.len())
            .field("peak_act_bytes", &self.peak_act_bytes)
            .field("fault_stats", &self.fault_stats)
            .field("posted_sends", &self.posted_sends)
            .finish_non_exhaustive()
    }
}

/// Deterministic training data: one token stream per microbatch (ragged
/// lengths respected), next-token targets.
pub fn make_data(cfg: &ExecConfig) -> Vec<(Vec<u32>, Vec<u32>)> {
    (0..cfg.microbatches)
        .map(|mb| {
            let toks = seeded_tokens(cfg.mb_seq(mb), cfg.vocab, cfg.seed * 1000 + mb as u64);
            let mut targets = toks[1..].to_vec();
            targets.push(toks[0]);
            (toks, targets)
        })
        .collect()
}

/// What travels over a stage boundary for one unit.
enum ActPayload {
    /// The boundary activation (forward) or gradient (backward).
    Act(Tensor),
    /// Skip-and-renormalize: this unit's microbatch was dropped; drain the
    /// unit's resources and pass the drain along.
    Skip,
}

type ActMsg = (u32, u32, ActPayload);

/// A guarded boundary send. Unbounded channels never block, so the only
/// failure is a gone peer: if the run is already aborting this thread just
/// drains; otherwise the disconnect is reported (the dead peer's own root
/// cause, recorded by its `catch_unwind`, takes precedence in [`RunCtl`]).
fn send_act(
    tx: &Sender<ActMsg>,
    msg: ActMsg,
    ctl: &RunCtl,
    stage: usize,
    port: Port,
) -> Result<(), ExecError> {
    tx.send(msg).map_err(|_| {
        if ctl.aborted() {
            ExecError::Aborted { stage }
        } else {
            let e = ExecError::Disconnected { stage, port };
            ctl.fail(e.clone());
            e
        }
    })
}

/// Outbound half of a stage boundary, in one of two regimes. `Sync` is the
/// serialized handoff: a plain send on an unbounded channel. `Posted` is
/// the async exchange runtime: the channel is bounded (double-buffered),
/// `send` never blocks — overflow spills into a FIFO post queue — and the
/// spill drains on every `pump`, which runs at op starts and inside every
/// guarded receive. Delivery order is the post order either way, so the
/// receiver observes an identical message stream in both regimes.
enum Outbound {
    Sync(Sender<ActMsg>),
    Posted(PostQueue<ActMsg>),
}

impl Outbound {
    fn new(tx: Sender<ActMsg>, asynchronous: bool) -> Self {
        if asynchronous {
            Outbound::Posted(PostQueue::new(tx))
        } else {
            Outbound::Sync(tx)
        }
    }

    /// A gone peer, mapped exactly like [`send_act`]: drain quietly when
    /// the run is already aborting, report the disconnect otherwise.
    fn disconnect(ctl: &RunCtl, stage: usize, port: Port) -> ExecError {
        if ctl.aborted() {
            ExecError::Aborted { stage }
        } else {
            let e = ExecError::Disconnected { stage, port };
            ctl.fail(e.clone());
            e
        }
    }

    fn send(
        &mut self,
        msg: ActMsg,
        ctl: &RunCtl,
        stage: usize,
        port: Port,
    ) -> Result<(), ExecError> {
        match self {
            Outbound::Sync(tx) => send_act(tx, msg, ctl, stage, port),
            Outbound::Posted(q) => match q.post(msg) {
                Ok(_token) => {
                    ctl.posted_sends.fetch_add(1, Ordering::Relaxed);
                    Ok(())
                }
                Err(_) => Err(Self::disconnect(ctl, stage, port)),
            },
        }
    }

    /// Move spilled posts into freed channel slots; never blocks. Returns
    /// how many posts are *still* spilled (waiting for the peer to free a
    /// slot).
    fn pump(&mut self, ctl: &RunCtl, stage: usize, port: Port) -> Result<usize, ExecError> {
        match self {
            Outbound::Sync(_) => Ok(0),
            Outbound::Posted(q) => q
                .pump()
                .map(|_| q.pending())
                .map_err(|_| Self::disconnect(ctl, stage, port)),
        }
    }

    fn pending(&self) -> usize {
        match self {
            Outbound::Sync(_) => 0,
            Outbound::Posted(q) => q.pending(),
        }
    }
}

/// Pump both boundary post queues — the hook every guarded receive runs
/// before each poll, so a stage blocked on a receive keeps its own posted
/// sends flowing (two stages could otherwise each hold the message the
/// other waits for).
fn pump_outbound(
    fwd: &mut Option<Outbound>,
    bwd: &mut Option<Outbound>,
    ctl: &RunCtl,
    stage: usize,
) -> Result<usize, ExecError> {
    let mut spilled = 0;
    if let Some(o) = fwd {
        spilled += o.pump(ctl, stage, Port::Forward)?;
    }
    if let Some(o) = bwd {
        spilled += o.pump(ctl, stage, Port::Backward)?;
    }
    Ok(spilled)
}

/// Drain every spilled post before an iteration boundary. Checkpoint
/// segmentation joins threads at boundaries; a message still in the spill
/// when the queue drops would strand its receiver at the watchdog.
fn flush_outbound(
    out: &mut Option<Outbound>,
    ctl: &RunCtl,
    stage: usize,
    watchdog: Duration,
    port: Port,
) -> Result<(), ExecError> {
    let Some(o) = out else { return Ok(()) };
    let start = Instant::now();
    loop {
        o.pump(ctl, stage, port)?;
        if o.pending() == 0 {
            return Ok(());
        }
        if ctl.aborted() {
            return Err(ExecError::Aborted { stage });
        }
        let waited = start.elapsed();
        if waited >= watchdog {
            let e = ExecError::RendezvousStuck {
                stage,
                mb: 0,
                slice: 0,
                port,
                waited_ms: waited.as_millis() as u64,
            };
            ctl.fail(e.clone());
            return Err(e);
        }
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Submit one acked job to every server and await the acks in device order.
fn server_barrier(
    servers: &[ServerHandle],
    mut job: impl FnMut(Sender<()>) -> ServerJob,
    ctl: &RunCtl,
    watchdog: Duration,
    stage: usize,
) -> Result<(), ExecError> {
    let mut acks = Vec::with_capacity(servers.len());
    for s in servers {
        let (tx, rx) = unbounded();
        s.submit(job(tx)).map_err(|DeadServer(dev)| ExecError::ServerDied {
            device: dev,
            stage,
            mb: 0,
            slice: 0,
        })?;
        acks.push(rx);
    }
    for (dev, rx) in acks.iter().enumerate() {
        recv_guarded(rx, ctl, watchdog, stage, 0, 0, Port::Server).map_err(|e| match e {
            ExecError::Disconnected { .. } => ExecError::ServerDied {
                device: dev,
                stage,
                mb: 0,
                slice: 0,
            },
            other => other,
        })?;
    }
    Ok(())
}

/// Pack the live `(iteration, mb, slice)` cursor into one atomic word so
/// the panic handler can name the failed unit.
fn pack_cursor(step: usize, mb: u32, slice: u32) -> u64 {
    ((step as u64) << 32) | ((mb as u64 & 0xFFFF) << 16) | (slice as u64 & 0xFFFF)
}

/// Everything one stage thread needs for one checkpoint segment.
struct StageRun {
    cfg: ExecConfig,
    device: usize,
    /// Total iterations of the whole run (gates the final SGD step).
    steps: usize,
    lr: f32,
    /// Global iteration numbers this segment executes.
    seg: Range<usize>,
    ops: Vec<WorkItem>,
    data: Arc<Vec<(Vec<u32>, Vec<u32>)>>,
    /// `(mb, slice) → token range`, precomputed once.
    ranges: Arc<Vec<Vec<Range<usize>>>>,
    fwd_rx: Option<Receiver<ActMsg>>,
    fwd_tx: Option<Sender<ActMsg>>,
    bwd_rx: Option<Receiver<ActMsg>>,
    bwd_tx: Option<Sender<ActMsg>>,
    servers: Vec<ServerHandle>,
    exmaps: Option<Arc<Vec<ExchangeMap>>>,
    loss_tx: Sender<f64>,
    ctl: Arc<RunCtl>,
    cursor: Arc<AtomicU64>,
}

impl StageRun {
    /// Execute this stage's op list for every iteration of the segment.
    /// Every early return is a structured error; the caller records it in
    /// the run control block so peers drain.
    fn run(&self, stage: &mut Stage) -> Result<(), ExecError> {
        let p = self.cfg.stages;
        let d = self.device;
        let is_last = d == p - 1;
        let m = self.cfg.microbatches;
        let watchdog = Duration::from_millis(self.cfg.watchdog_ms);
        let timeout = Duration::from_millis(self.cfg.exchange_timeout_ms);
        // Outbound boundary handles: non-blocking post queues under the
        // async exchange runtime, plain blocking senders otherwise.
        let asynchronous = self.cfg.async_exchange;
        let mut fwd_out = self.fwd_tx.clone().map(|tx| Outbound::new(tx, asynchronous));
        let mut bwd_out = self.bwd_tx.clone().map(|tx| Outbound::new(tx, asynchronous));
        for step in self.seg.clone() {
            // Mark the pack epoch: everything after stage build must run
            // off the persistent packed-weight cache, so
            // `gemm_packs_per_step()` reads zero once every thread is past
            // its build (asserted in tests/pool_steady_state.rs).
            slimpipe_tensor::matmul::begin_pack_epoch();
            // Per-microbatch loss and skip flags, indexed by mb so the
            // iteration loss sums in a fixed order (f64 reassociation would
            // otherwise leak schedule interleaving into the result).
            let mut mb_loss = vec![0.0f64; m];
            let mut mb_skipped = vec![false; m];
            // LocalFallback is sticky for the rest of the iteration.
            let mut local_only = false;
            for op in &self.ops {
                let (mb, sl) = (op.mb, op.slice);
                self.cursor.store(pack_cursor(step, mb, sl), Ordering::Relaxed);
                // Keep posted sends moving even through long compute-only
                // stretches between receives.
                pump_outbound(&mut fwd_out, &mut bwd_out, &self.ctl, d)?;
                // Deterministic fault injection, matched on the forward
                // visit of the site. (Reply-level faults are consumed
                // inside the exchange runtime, armed on the forward visit
                // only so a planned fault fires once per unit, not once
                // per pass.)
                let mut corrupt = false;
                if matches!(op.kind, PassKind::Forward) {
                    if let Some(plan) = &self.cfg.fault_plan {
                        for k in plan.at(step, d, mb, sl) {
                            match k {
                                FaultKind::StagePanic => {
                                    std::panic::panic_any(InjectedPanic(format!(
                                        "injected panic at stage {d}, iteration {step}, \
                                         unit (mb {mb}, slice {sl})"
                                    )))
                                }
                                FaultKind::ServerDeath { device } => {
                                    // The server dies inside its own
                                    // catch_unwind; clients observe a
                                    // disconnected channel, never an abort.
                                    let _ = self.servers[*device].submit(ServerJob::Crash);
                                }
                                FaultKind::CorruptActivation => corrupt = true,
                                FaultKind::Stall => {
                                    // Stop making progress until a peer's
                                    // watchdog kills the run — bounded at
                                    // 10× the watchdog so a single-stage
                                    // run still terminates.
                                    let cap = watchdog.saturating_mul(10);
                                    let start = Instant::now();
                                    while !self.ctl.aborted() && start.elapsed() < cap {
                                        std::thread::sleep(ABORT_POLL);
                                    }
                                    if self.ctl.aborted() {
                                        return Err(ExecError::Aborted { stage: d });
                                    }
                                }
                                // Handled inside ExchangeRt per op.
                                FaultKind::DropReply | FaultKind::DelayReply { .. } => {}
                            }
                        }
                    }
                }
                let range = self.ranges[mb as usize][sl as usize].clone();
                let mut local = LocalAttn;
                let mut rt_opt = self.exmaps.as_ref().map(|maps| ExchangeRt {
                    device: d,
                    servers: &self.servers,
                    map: &maps[mb as usize],
                    ft: FtCtx {
                        plan: self.cfg.fault_plan.as_ref(),
                        policy: self.cfg.policy,
                        timeout,
                        retries: self.cfg.exchange_retries,
                        ctl: Some(self.ctl.as_ref()),
                        iteration: step,
                        mb,
                        slice: sl,
                        local_only,
                        overlap: asynchronous,
                        reply_faults: matches!(op.kind, PassKind::Forward),
                    },
                });
                let vp_holder;
                let vp = if self.cfg.vocab_parallel && is_last {
                    vp_holder = VocabParallel {
                        servers: &self.servers,
                        watchdog,
                        ctl: Some(self.ctl.as_ref()),
                        stage: d,
                        mb,
                        slice: sl,
                    };
                    Some(&vp_holder)
                } else {
                    None
                };
                let attn: &mut dyn AttnExecutor = match rt_opt.as_mut() {
                    Some(rt) => rt,
                    None => &mut local,
                };
                match op.kind {
                    PassKind::Forward => {
                        let input = if d == 0 {
                            if is_last && mb_skipped[mb as usize] {
                                // p == 1: the microbatch is already
                                // poisoned; its backward op drains.
                                continue;
                            }
                            Err(self.data[mb as usize].0[range.clone()].to_vec())
                        } else {
                            let rx =
                                self.fwd_rx.as_ref().expect("interior stage has fwd input");
                            let (rmb, rsl, payload) = recv_guarded_pumped(
                                rx,
                                &self.ctl,
                                watchdog,
                                d,
                                mb,
                                sl,
                                Port::Forward,
                                || pump_outbound(&mut fwd_out, &mut bwd_out, &self.ctl, d),
                            )?;
                            assert_eq!((rmb, rsl), (mb, sl), "fwd order mismatch");
                            match payload {
                                ActPayload::Skip => {
                                    // Upstream already dropped this unit
                                    // (defensive; skips normally originate
                                    // at the loss and travel backward).
                                    mb_skipped[mb as usize] = true;
                                    mb_loss[mb as usize] = 0.0;
                                    if let Some(out) = fwd_out.as_mut() {
                                        out.send(
                                            (mb, sl, ActPayload::Skip),
                                            &self.ctl,
                                            d,
                                            Port::Forward,
                                        )?;
                                    }
                                    continue;
                                }
                                ActPayload::Act(mut t) => {
                                    if corrupt {
                                        // Simulated transfer corruption: the
                                        // unit's activations are poisoned and
                                        // the NaNs surface at the loss.
                                        t.fill(f32::NAN);
                                    }
                                    if is_last && mb_skipped[mb as usize] {
                                        // Later slice of an already-poisoned
                                        // microbatch: drop it unexecuted.
                                        t.recycle();
                                        continue;
                                    }
                                    Ok(t)
                                }
                            }
                        };
                        let targets =
                            is_last.then(|| self.data[mb as usize].1[range.clone()].to_vec());
                        match stage.forward(mb, sl, input, targets.as_deref(), attn, vp)? {
                            StageOutput::Activation(act) => {
                                let out =
                                    fwd_out.as_mut().expect("interior stage has fwd output");
                                out.send(
                                    (mb, sl, ActPayload::Act(act)),
                                    &self.ctl,
                                    d,
                                    Port::Forward,
                                )?;
                            }
                            StageOutput::Loss(lv) => {
                                if lv.is_finite() {
                                    mb_loss[mb as usize] += lv;
                                } else if self.cfg.policy == DegradePolicy::Abort {
                                    return Err(ExecError::NonFinite {
                                        stage: d,
                                        iteration: step,
                                        mb,
                                        slice: sl,
                                        what: "loss".into(),
                                    });
                                } else if !mb_skipped[mb as usize] {
                                    // Skip-and-renormalize: poison detected.
                                    // The unit's state stays resident until
                                    // its backward op drains it.
                                    mb_skipped[mb as usize] = true;
                                    mb_loss[mb as usize] = 0.0;
                                    self.ctl.skipped_microbatches.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                    }
                    PassKind::Backward => {
                        let d_in = if is_last {
                            if mb_skipped[mb as usize] {
                                // Drain instead of computing: no math may
                                // run over the contaminated stashes/KV.
                                stage.drain_unit(mb, sl);
                                if let Some(out) = bwd_out.as_mut() {
                                    out.send(
                                        (mb, sl, ActPayload::Skip),
                                        &self.ctl,
                                        d,
                                        Port::Backward,
                                    )?;
                                }
                                continue;
                            }
                            None
                        } else {
                            let rx =
                                self.bwd_rx.as_ref().expect("interior stage has bwd input");
                            let (rmb, rsl, payload) = recv_guarded_pumped(
                                rx,
                                &self.ctl,
                                watchdog,
                                d,
                                mb,
                                sl,
                                Port::Backward,
                                || pump_outbound(&mut fwd_out, &mut bwd_out, &self.ctl, d),
                            )?;
                            assert_eq!((rmb, rsl), (mb, sl), "bwd order mismatch");
                            match payload {
                                ActPayload::Skip => {
                                    mb_skipped[mb as usize] = true;
                                    stage.drain_unit(mb, sl);
                                    if let Some(out) = bwd_out.as_mut() {
                                        out.send(
                                            (mb, sl, ActPayload::Skip),
                                            &self.ctl,
                                            d,
                                            Port::Backward,
                                        )?;
                                    }
                                    continue;
                                }
                                ActPayload::Act(g) => Some(g),
                            }
                        };
                        let targets =
                            is_last.then(|| self.data[mb as usize].1[range.clone()].to_vec());
                        if let Some(dx) = stage.backward(mb, sl, d_in, targets.as_deref(), attn, vp)?
                        {
                            let out =
                                bwd_out.as_mut().expect("non-first stage has bwd output");
                            out.send(
                                (mb, sl, ActPayload::Act(dx)),
                                &self.ctl,
                                d,
                                Port::Backward,
                            )?;
                        }
                    }
                    PassKind::BackwardWeight => {
                        unreachable!("executor schemes do not split backward")
                    }
                }
                if let Some(rt) = &rt_opt {
                    local_only = rt.ft.local_only;
                }
            }
            // Drain any still-spilled posts: the iteration boundary is a
            // synchronization point (and possibly a checkpoint segment
            // end — threads join there, and dropping a non-empty spill
            // would strand the receiver at its watchdog).
            flush_outbound(&mut fwd_out, &self.ctl, d, watchdog, Port::Forward)?;
            flush_outbound(&mut bwd_out, &self.ctl, d, watchdog, Port::Backward)?;
            // ---- iteration boundary ----
            // Skip-and-renormalize: rescale surviving gradients (pre-scaled
            // by 1/total_tokens) to the exact mean over surviving tokens.
            // Every stage saw every skipped microbatch's Skip drain, so the
            // factor is identical pipeline-wide.
            let mut factor = 1.0f64;
            let skipped_count = mb_skipped.iter().filter(|&&s| s).count();
            if skipped_count > 0 {
                let total = self.cfg.total_tokens();
                let lost: usize = (0..m).filter(|&mb| mb_skipped[mb]).map(|mb| self.cfg.mb_seq(mb)).sum();
                if lost >= total {
                    if is_last {
                        return Err(ExecError::NonFinite {
                            stage: d,
                            iteration: step,
                            mb: 0,
                            slice: 0,
                            what: "all microbatches skipped".into(),
                        });
                    }
                    // Interior stages: everything drained, gradients are
                    // zero; nothing to rescale. The last stage's error
                    // aborts the run at the next rendezvous.
                } else {
                    factor = total as f64 / (total - lost) as f64;
                    stage.scale_grads(factor as f32);
                    if is_last && self.cfg.vocab_parallel {
                        server_barrier(
                            &self.servers,
                            |reply| ServerJob::ScaleGrad { factor: factor as f32, reply },
                            &self.ctl,
                            watchdog,
                            d,
                        )?;
                    }
                }
            }
            if is_last {
                let clean: f64 = mb_loss.iter().sum();
                let _ = self.loss_tx.send(clean * factor);
            }
            if step + 1 < self.steps {
                if self.cfg.vocab_parallel && is_last {
                    // Step the vocabulary shards (their gradients live in
                    // the servers). All of this iteration's vocab jobs have
                    // completed — loss_backward is synchronous — so FIFO
                    // ordering makes this safe.
                    server_barrier(
                        &self.servers,
                        |reply| ServerJob::SgdStep { lr: self.lr, reply },
                        &self.ctl,
                        watchdog,
                        d,
                    )?;
                }
                stage.sgd_step(self.lr);
            }
        }
        Ok(())
    }
}

/// Spawn one compute server per device for a segment. Vocabulary shards
/// (when given) move into the servers and come back out at segment end.
type ServerJoin = std::thread::JoinHandle<Option<VocabShard>>;
fn spawn_segment_servers(
    p: usize,
    shards: Option<Vec<VocabShard>>,
) -> (Vec<ServerHandle>, Vec<ServerJoin>) {
    let mut servers = Vec::with_capacity(p);
    let mut joins = Vec::with_capacity(p);
    match shards {
        Some(ss) => {
            for (dev, s) in ss.into_iter().enumerate() {
                let (h, j) = spawn_server(dev, Some(s));
                servers.push(h);
                joins.push(j);
            }
        }
        None => {
            for dev in 0..p {
                let (h, j) = spawn_server(dev, None);
                servers.push(h);
                joins.push(j);
            }
        }
    }
    (servers, joins)
}

/// Run iterations `[start, steps)` of `cfg` under `kind`, starting from
/// fresh (optionally checkpoint-restored) stages, checkpointing at the
/// configured boundaries. The run is split into segments at those
/// boundaries; each segment spawns its own stage threads and servers
/// around the persistent [`Stage`]/[`VocabShard`] values.
fn run_from(
    cfg: &ExecConfig,
    kind: PipelineKind,
    start: usize,
    steps: usize,
    lr: f32,
    restore: Option<Arc<CheckpointState>>,
    mut shards: Option<Vec<VocabShard>>,
) -> Result<RunResult, ExecError> {
    let sched = build_schedule(kind, cfg); // cfg was validated by the caller
    let p = cfg.stages;
    let data = Arc::new(make_data(cfg));
    let ranges = Arc::new(cfg.slice_map());
    let ctl = Arc::new(RunCtl::new());
    // One exchange map per microbatch: ragged microbatches and non-uniform
    // policies induce different slice volumes, so each microbatch gets a
    // plan derived from its actual bounds. Equal slicings (the whole run,
    // when not ragged) share one map, and the maps are Arc'd so stage
    // threads clone pointers, not plans.
    let any_sliced = (0..cfg.microbatches).any(|mb| cfg.slices_of(mb) > 1);
    let exmaps: Option<Arc<Vec<ExchangeMap>>> = (cfg.exchange && any_sliced).then(|| {
        let slicings = cfg.slicings();
        let mut maps: Vec<ExchangeMap> = Vec::with_capacity(slicings.len());
        for (i, s) in slicings.iter().enumerate() {
            match slicings[..i].iter().position(|t| t == s) {
                Some(j) => maps.push(maps[j].clone()),
                None => maps.push(ExchangeMap::build_from(p, s)),
            }
        }
        Arc::new(maps)
    });

    let mut stages: Option<Vec<Stage>> = None;
    let mut losses: Vec<f64> = Vec::with_capacity(steps - start);
    let mut cursors: Vec<Arc<AtomicU64>> = Vec::new();
    let mut it = start;
    while it < steps {
        let seg_end = match &cfg.checkpoint {
            Some(ck) => ((it / ck.every + 1) * ck.every).min(steps),
            None => steps,
        };
        let (servers, server_joins) =
            spawn_segment_servers(p, if cfg.vocab_parallel { shards.take() } else { None });

        // Stage-boundary channels (rebuilt per segment; they are empty at
        // every boundary).
        let mut fwd_tx: Vec<Option<Sender<ActMsg>>> = Vec::new();
        let mut fwd_rx: Vec<Option<Receiver<ActMsg>>> = vec![None];
        let mut bwd_tx: Vec<Option<Sender<ActMsg>>> = vec![None];
        let mut bwd_rx: Vec<Option<Receiver<ActMsg>>> = Vec::new();
        // The async exchange runtime double-buffers each boundary at
        // iteration granularity: a bounded channel sized for two
        // iterations' worth of units behind the stages' non-blocking post
        // queues, so a stage's legitimate schedule run-ahead (warmup
        // forwards) never waits on the consumer, while the post queue's
        // spill stays the deadlock-safety net for anything beyond (skip
        // echoes, a wedged peer). A tighter bound buys no memory — the
        // spill behind it is unbounded — but costs a wakeup round-trip
        // per rate-limited message, which serializes the pipeline on few
        // cores. The serialized regime keeps the historical unbounded
        // blocking handoff.
        let units: usize = (0..cfg.microbatches).map(|mb| cfg.slices_of(mb)).sum();
        let cap = 2 * units.max(1);
        let boundary = || if cfg.async_exchange { bounded(cap) } else { unbounded() };
        for _ in 0..p.saturating_sub(1) {
            let (ft, fr) = boundary();
            fwd_tx.push(Some(ft));
            fwd_rx.push(Some(fr));
            let (bt, br) = boundary();
            bwd_tx.push(Some(bt));
            bwd_rx.push(Some(br));
        }
        fwd_tx.push(None);
        bwd_rx.push(None);
        let (loss_tx, loss_rx) = unbounded::<f64>();

        let seg_stages_in: Vec<Option<Stage>> = match stages.take() {
            Some(v) => v.into_iter().map(Some).collect(),
            None => (0..p).map(|_| None).collect(),
        };
        let mut joins = Vec::with_capacity(p);
        cursors = (0..p).map(|_| Arc::new(AtomicU64::new(pack_cursor(it, 0, 0)))).collect();
        for (d, prebuilt) in seg_stages_in.into_iter().enumerate() {
            let run = StageRun {
                cfg: cfg.clone(),
                device: d,
                steps,
                lr,
                seg: it..seg_end,
                ops: sched.ops[d].clone(),
                data: data.clone(),
                ranges: ranges.clone(),
                fwd_rx: fwd_rx[d].take(),
                fwd_tx: fwd_tx[d].take(),
                bwd_rx: bwd_rx[d].take(),
                bwd_tx: bwd_tx[d].take(),
                servers: servers.clone(),
                exmaps: exmaps.clone(),
                loss_tx: loss_tx.clone(),
                ctl: ctl.clone(),
                cursor: cursors[d].clone(),
            };
            let ctl = ctl.clone();
            let restore = restore.clone();
            joins.push(std::thread::spawn(move || -> Result<Stage, ExecError> {
                let mut stage = match prebuilt {
                    Some(s) => s,
                    None => {
                        let mut s = Stage::build(&run.cfg, d);
                        if let Some(ck) = &restore {
                            if let Err(e) = ck.apply_to(&mut s) {
                                ctl.fail(e.clone());
                                return Err(e);
                            }
                        }
                        s
                    }
                };
                let cursor = run.cursor.clone();
                // Panic containment: a panicking op (injected or a real
                // bug) becomes a StagePanic naming the failed unit, and the
                // abort flag drains every peer.
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    run.run(&mut stage)
                })) {
                    Ok(Ok(())) => Ok(stage),
                    Ok(Err(e)) => {
                        ctl.fail(e.clone());
                        Err(e)
                    }
                    Err(payload) => {
                        let c = cursor.load(Ordering::Relaxed);
                        let e = ExecError::StagePanic {
                            stage: d,
                            iteration: (c >> 32) as usize,
                            mb: ((c >> 16) & 0xFFFF) as u32,
                            slice: (c & 0xFFFF) as u32,
                            msg: panic_message(payload.as_ref()),
                        };
                        ctl.fail(e.clone());
                        Err(e)
                    }
                }
            }));
        }
        drop(loss_tx);

        let mut seg_stages: Vec<Stage> = Vec::with_capacity(p);
        let mut thread_err: Option<ExecError> = None;
        for (d, j) in joins.into_iter().enumerate() {
            match j.join() {
                Ok(Ok(st)) => seg_stages.push(st),
                Ok(Err(e)) => {
                    thread_err.get_or_insert(e);
                }
                Err(payload) => {
                    // Outside catch_unwind — should be unreachable, but a
                    // thread death must never hang or abort the driver.
                    let e = ExecError::StagePanic {
                        stage: d,
                        iteration: it,
                        mb: 0,
                        slice: 0,
                        msg: panic_message(payload.as_ref()),
                    };
                    ctl.fail(e.clone());
                    thread_err.get_or_insert(e);
                }
            }
        }
        // Stop the segment's servers and recover the shards.
        for s in &servers {
            s.stop();
        }
        let mut seg_shards: Vec<Option<VocabShard>> = Vec::with_capacity(p);
        for j in server_joins {
            seg_shards.push(j.join().unwrap_or(None));
        }
        // The control block ranks root causes above drain echoes.
        if let Some(e) = ctl.take_error().or(thread_err) {
            return Err(e);
        }
        losses.extend(loss_rx.try_iter());
        debug_assert_eq!(losses.len(), seg_end - start, "one loss per iteration");
        if cfg.vocab_parallel {
            let mut out = Vec::with_capacity(p);
            for (dev, s) in seg_shards.into_iter().enumerate() {
                match s {
                    Some(s) => out.push(s),
                    None => {
                        return Err(ExecError::ServerDied {
                            device: dev,
                            stage: p - 1,
                            mb: 0,
                            slice: 0,
                        })
                    }
                }
            }
            shards = Some(out);
        }
        // Snapshot at interior boundaries (the final boundary has the last
        // iteration's gradients un-stepped by design — nothing to resume).
        if seg_end < steps {
            if let Some(ck) = &cfg.checkpoint {
                CheckpointState::capture(seg_end, &seg_stages, shards.as_deref())
                    .save_retained(ck, cfg)?;
            }
        }
        stages = Some(seg_stages);
        it = seg_end;
    }

    // The tail must stay typed-error plumbing: the recovery driver runs
    // arbitrary restored/regrouped state through here, and a panic would
    // escape its supervise loop where an ExecError heals.
    let mut stages = stages
        .ok_or_else(|| ExecError::InvalidConfig("no iterations to run (start >= steps)".into()))?;
    let mut out_grad = Tensor::zeros(cfg.hidden(), cfg.vocab);
    if let Some(shards) = &shards {
        for s in shards {
            out_grad.set_cols(s.offset, &s.grad);
        }
    } else {
        let (_, g) = stages[p - 1].out_proj.as_ref().ok_or_else(|| {
            ExecError::Checkpoint("last stage has no output projection (classic head)".into())
        })?;
        out_grad = g.clone();
    }

    let peak_act_bytes: Vec<u64> = stages.iter().map(|s| s.mem.peak()).collect();
    let offload_transferred: Vec<u64> = stages
        .iter()
        .map(|s| {
            if let Some(eng) = &s.offload {
                eng.assert_drained();
                eng.transferred
            } else {
                0
            }
        })
        .collect();
    let mut layer_grads = Vec::with_capacity(cfg.layers);
    for st in &mut stages {
        layer_grads.append(&mut st.grads.drain(..).collect());
    }
    let embed_grad = stages[0]
        .embed
        .as_ref()
        .ok_or_else(|| ExecError::Checkpoint("stage 0 has no embedding table".into()))?
        .1
        .clone();
    let final_norm_grad = stages[p - 1]
        .final_norm
        .as_ref()
        .ok_or_else(|| ExecError::Checkpoint("last stage has no final norm".into()))?
        .1
        .clone();

    let final_cursors = cursors
        .iter()
        .map(|c| {
            let v = c.load(Ordering::Relaxed);
            ((v >> 32) as usize, ((v >> 16) & 0xFFFF) as u32, (v & 0xFFFF) as u32)
        })
        .collect();
    Ok(RunResult {
        losses,
        layer_grads,
        embed_grad,
        out_grad,
        final_norm_grad,
        peak_act_bytes,
        offload_transferred,
        fault_stats: ctl.stats(),
        final_cursors,
        posted_sends: ctl.posted_sends.load(Ordering::Relaxed),
    })
}

/// A config with the `SLIMPIPE_FAULT_PLAN` env hook applied: when the
/// config carries no explicit plan and the env names one, the env plan is
/// adopted (and then validated like any other, so a plan written against
/// the wrong geometry reports `InvalidConfig`, not silence).
fn with_env_fault_plan(cfg: &ExecConfig) -> Result<ExecConfig, ExecError> {
    let mut cfg = cfg.clone();
    if cfg.fault_plan.is_none() {
        cfg.fault_plan = FaultPlan::from_env().map_err(ExecError::InvalidConfig)?;
    }
    Ok(cfg)
}

/// Run `steps` training iterations of `cfg` under `kind`. The gradients of
/// the final iteration are returned un-stepped so they can be compared
/// across configurations. Every failure mode — injected or real — returns
/// a structured [`ExecError`]; the process neither hangs nor aborts.
pub fn try_run_pipeline(
    cfg: &ExecConfig,
    kind: PipelineKind,
    steps: usize,
    lr: f32,
) -> Result<RunResult, ExecError> {
    let cfg = with_env_fault_plan(cfg)?;
    cfg.validate().map_err(ExecError::InvalidConfig)?;
    if steps == 0 {
        return Err(ExecError::InvalidConfig("steps must be >= 1".into()));
    }
    let shards = cfg.vocab_parallel.then(|| build_vocab_shards(&cfg));
    run_from(&cfg, kind, 0, steps, lr, None, shards)
}

/// Resume a run from the newest usable snapshot under
/// `cfg.checkpoint.path` (the retention manifest, with fallback to the
/// newest verifying sibling — see `crate::checkpoint`) and train to
/// `steps` total iterations. The returned losses cover only the resumed
/// iterations, and the result is **bit-identical** to the corresponding
/// tail of an uninterrupted [`try_run_pipeline`] run: exact f32 bit
/// patterns are restored, repacking is deterministic, the optimizer is
/// stateless, and data is a pure function of `(seed, mb)`.
pub fn try_resume_pipeline(
    cfg: &ExecConfig,
    kind: PipelineKind,
    steps: usize,
    lr: f32,
) -> Result<RunResult, ExecError> {
    let ck = cfg
        .checkpoint
        .as_ref()
        .ok_or_else(|| ExecError::Checkpoint("resume requires cfg.checkpoint".into()))?;
    let state = CheckpointState::load_latest(ck, cfg)?;
    try_resume_pipeline_from(cfg, kind, steps, lr, state)
}

/// Resume from an explicit in-memory snapshot (the recovery driver's path,
/// and the comparison arm of the determinism tests, which pin a specific
/// `{path}.it{N}` snapshot instead of whatever `latest` points at). A
/// snapshot captured at a different pipeline geometry is re-sharded onto
/// `cfg`'s via [`CheckpointState::regroup`] — elastic restore is this one
/// line, not a parallel code path.
pub fn try_resume_pipeline_from(
    cfg: &ExecConfig,
    kind: PipelineKind,
    steps: usize,
    lr: f32,
    state: CheckpointState,
) -> Result<RunResult, ExecError> {
    let cfg = with_env_fault_plan(cfg)?;
    cfg.validate().map_err(ExecError::InvalidConfig)?;
    let state = if state.stages.len() != cfg.stages
        || state.shards.is_some() != cfg.vocab_parallel
    {
        state.regroup(&cfg)?
    } else {
        state
    };
    let start = state.iteration as usize;
    if start >= steps {
        return Err(ExecError::Checkpoint(format!(
            "checkpoint at iteration {start} cannot resume a {steps}-step run"
        )));
    }
    let shards = if cfg.vocab_parallel {
        Some(state.to_shards(&cfg).ok_or_else(|| {
            ExecError::Checkpoint("vocab-parallel resume needs shard states".into())
        })?)
    } else {
        None
    };
    run_from(&cfg, kind, start, steps, lr, Some(Arc::new(state)), shards)
}

/// [`try_run_pipeline`] for callers that treat any failure as fatal (the
/// historical API; tests and benches use it for known-clean configs).
pub fn run_pipeline(cfg: &ExecConfig, kind: PipelineKind, steps: usize, lr: f32) -> RunResult {
    try_run_pipeline(cfg, kind, steps, lr)
        .unwrap_or_else(|e| panic!("pipeline run failed: {e}"))
}

/// Single-device, unsliced reference run — the ground truth every pipeline
/// configuration is verified against. Fault injection, degradation, and
/// checkpointing are stripped: the reference must stay the clean baseline
/// even when `cfg` carries a fault plan.
pub fn run_reference(cfg: &ExecConfig, steps: usize, lr: f32) -> RunResult {
    let ref_cfg = ExecConfig {
        stages: 1,
        slices: 1,
        mb_slices: None,
        slicing: slimpipe_core::SlicePolicy::Uniform,
        vocab_parallel: false,
        exchange: false,
        policy: DegradePolicy::Abort,
        fault_plan: None,
        checkpoint: None,
        ..cfg.clone()
    };
    run_pipeline(&ref_cfg, PipelineKind::OneFOneB, steps, lr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_runs_and_learns() {
        let cfg = ExecConfig::small();
        let r = run_reference(&cfg, 4, 0.5);
        assert_eq!(r.losses.len(), 4);
        assert!(r.losses[3] < r.losses[0], "losses: {:?}", r.losses);
        assert_eq!(r.layer_grads.len(), cfg.layers);
        assert_eq!(r.fault_stats, FaultStats::default());
    }

    #[test]
    fn slimpipe_pipeline_runs() {
        let cfg = ExecConfig {
            exchange: false,
            ..ExecConfig::small()
        };
        let r = run_pipeline(&cfg, PipelineKind::SlimPipe, 1, 0.1);
        assert_eq!(r.losses.len(), 1);
        assert!(r.losses[0].is_finite());
        assert_eq!(r.peak_act_bytes.len(), cfg.stages);
        assert!(r.peak_act_bytes.iter().all(|&b| b > 0));
    }

    #[test]
    fn zero_steps_is_a_structured_error() {
        let cfg = ExecConfig::small();
        match try_run_pipeline(&cfg, PipelineKind::SlimPipe, 0, 0.1) {
            Err(ExecError::InvalidConfig(_)) => {}
            other => panic!("expected InvalidConfig, got {:?}", other.map(|_| "ok")),
        }
    }
}
