//! Executor-level model configuration and deterministic parameter builds.
//!
//! The slicing axis is explicit: every microbatch's sequence is partitioned
//! by a [`SlicePolicy`] into a [`Slicing`] (token-range bounds), and every
//! consumer — stages, the exchange planner, the training driver — indexes
//! KV chunks, stashes, and channel messages by those *ranges*, never by
//! `slice * slice_len`. Microbatches may be ragged (per-microbatch sequence
//! lengths via [`ExecConfig::mb_seqs`]).

use crate::fault::{DegradePolicy, FaultKind, FaultPlan};
use slimpipe_core::{SlicePolicy, Slicing};
use slimpipe_tensor::attention::HeadCfg;
use slimpipe_tensor::init::seeded_xavier;
use slimpipe_tensor::Tensor;
use std::ops::Range;
use std::path::PathBuf;

/// Iteration-boundary checkpointing: write a snapshot to an immutable
/// `{path}.it{N}` sibling after every `every` completed iterations, with
/// `path` itself the crash-safe *latest* manifest naming the newest
/// snapshot (see `crate::checkpoint`).
#[derive(Clone, Debug)]
pub struct CheckpointCfg {
    pub every: usize,
    pub path: PathBuf,
    /// Retention: prune all but the newest `keep_last` snapshots after each
    /// save; `0` keeps every snapshot (unbounded).
    pub keep_last: usize,
}

/// Shape and run parameters of an executor model. Kept small — these train
/// for real on CPU threads.
#[derive(Clone, Debug)]
pub struct ExecConfig {
    pub layers: usize,
    pub heads: usize,
    pub kv_heads: usize,
    pub head_dim: usize,
    pub ffn: usize,
    pub vocab: usize,
    /// Default sequence length of a microbatch (tokens). Individual
    /// microbatches may override it through [`ExecConfig::mb_seqs`].
    pub seq: usize,
    /// Slices per microbatch (1 = microbatch granularity). Individual
    /// microbatches may override it through [`ExecConfig::mb_slices`].
    pub slices: usize,
    /// Per-microbatch slice counts (must have `microbatches` entries when
    /// set). `None` = every microbatch is cut into `slices` slices. What
    /// the slicing planner emits for workloads whose microbatches deserve
    /// different granularities.
    pub mb_slices: Option<Vec<usize>>,
    /// How each microbatch's sequence is cut into those slices.
    pub slicing: SlicePolicy,
    pub microbatches: usize,
    /// Ragged microbatches: per-microbatch sequence lengths (must have
    /// `microbatches` entries). `None` = every microbatch is `seq` tokens.
    pub mb_seqs: Option<Vec<usize>>,
    /// Pipeline stages (threads).
    pub stages: usize,
    pub vocab_parallel: bool,
    pub exchange: bool,
    /// Async exchange runtime: boundary activations travel through bounded
    /// double-buffered channels with a non-blocking posted-send overflow,
    /// and exchange dispatches every remote chunk before computing local
    /// ones (comm overlaps compute). `false` serializes every rendezvous —
    /// each remote chunk is submitted and awaited before the next chunk
    /// runs. Both regimes fold partials in ascending chunk order, so they
    /// are bit-identical to each other and to exchange-off.
    pub async_exchange: bool,
    /// Device activation-stash budget in bytes; stashes beyond it spill to
    /// host memory (§6.5). `None` disables offloading.
    pub offload_budget: Option<u64>,
    pub seed: u64,
    /// What the runtime does about a non-finite loss or an unrecoverable
    /// exchange rendezvous.
    pub policy: DegradePolicy,
    /// Deterministic fault-injection schedule (`None` = clean run).
    pub fault_plan: Option<FaultPlan>,
    /// Stuck-rendezvous watchdog per blocking wait, in milliseconds.
    pub watchdog_ms: u64,
    /// Per-attempt timeout for an exchange reply, in milliseconds.
    pub exchange_timeout_ms: u64,
    /// Resubmission budget for a timed-out exchange reply.
    pub exchange_retries: u32,
    /// Iteration-boundary checkpointing (`None` = never snapshot).
    pub checkpoint: Option<CheckpointCfg>,
}

impl ExecConfig {
    /// A small but non-trivial default: GQA, 2 slices per stage worth of
    /// layers, divisible everywhere.
    pub fn small() -> Self {
        Self {
            layers: 4,
            heads: 4,
            kv_heads: 2,
            head_dim: 8,
            ffn: 64,
            vocab: 96,
            seq: 64,
            slices: 4,
            mb_slices: None,
            slicing: SlicePolicy::Uniform,
            microbatches: 2,
            mb_seqs: None,
            stages: 2,
            vocab_parallel: false,
            exchange: false,
            async_exchange: true,
            offload_budget: None,
            seed: 7,
            policy: DegradePolicy::Abort,
            fault_plan: None,
            // Generous defaults: on an unloaded host a healthy rendezvous
            // completes in microseconds; these only fire when a peer is
            // genuinely gone or wedged.
            watchdog_ms: 10_000,
            exchange_timeout_ms: 2_000,
            exchange_retries: 3,
            checkpoint: None,
        }
    }

    pub fn hidden(&self) -> usize {
        self.heads * self.head_dim
    }

    pub fn kv_hidden(&self) -> usize {
        self.kv_heads * self.head_dim
    }

    pub fn head_cfg(&self) -> HeadCfg {
        HeadCfg::new(self.heads, self.kv_heads, self.head_dim)
    }

    /// Sequence length of microbatch `mb` (ragged-aware).
    pub fn mb_seq(&self, mb: usize) -> usize {
        match &self.mb_seqs {
            Some(seqs) => seqs[mb],
            None => self.seq,
        }
    }

    /// Slice count of microbatch `mb` (per-microbatch counts respected).
    pub fn slices_of(&self, mb: usize) -> usize {
        match &self.mb_slices {
            Some(ns) => ns[mb],
            None => self.slices,
        }
    }

    /// Tokens across the whole iteration — the loss normaliser.
    pub fn total_tokens(&self) -> usize {
        (0..self.microbatches).map(|mb| self.mb_seq(mb)).sum()
    }

    /// The slice partition of microbatch `mb` under this config's policy.
    pub fn slicing_of(&self, mb: usize) -> Slicing {
        Slicing::for_microbatch(&self.slicing, mb, self.mb_seq(mb) as u64, self.slices_of(mb))
    }

    /// All microbatch slicings, in order — what stages and the driver
    /// precompute once per run instead of rederiving offsets per op.
    pub fn slicings(&self) -> Vec<Slicing> {
        (0..self.microbatches).map(|mb| self.slicing_of(mb)).collect()
    }

    /// `(mb, slice) → token range` table: `map[mb][slice]` is the global
    /// token range of that unit within its microbatch's sequence.
    pub fn slice_map(&self) -> Vec<Vec<Range<usize>>> {
        self.slicings()
            .iter()
            .map(|s| {
                (0..s.n())
                    .map(|i| {
                        let (start, len) = s.slice(i);
                        start as usize..(start + len) as usize
                    })
                    .collect()
            })
            .collect()
    }

    /// Uniform slice length — only meaningful for non-ragged
    /// [`SlicePolicy::Uniform`] configs with divisible geometry (the
    /// pre-refactor invariant; ranged consumers use [`Self::slice_map`]).
    pub fn slice_len(&self) -> usize {
        assert_eq!(self.slicing, SlicePolicy::Uniform, "slice_len is uniform-only");
        assert!(self.mb_seqs.is_none(), "slice_len is non-ragged-only");
        assert!(self.mb_slices.is_none(), "slice_len needs a global slice count");
        assert!(self.seq.is_multiple_of(self.slices), "slices must divide seq");
        self.seq / self.slices
    }

    /// Config sanity: every microbatch must slice into `slices` non-empty
    /// token ranges, explicit bounds must match every microbatch's length,
    /// and the pipeline geometry must divide. Called by the executor before
    /// building schedules or stages.
    pub fn validate(&self) -> Result<(), String> {
        if self.layers == 0 || self.stages == 0 || self.microbatches == 0 || self.slices == 0 {
            return Err("layers, stages, microbatches, slices must be positive".into());
        }
        if !self.layers.is_multiple_of(self.stages) {
            return Err(format!(
                "stages ({}) must divide layers ({})",
                self.stages, self.layers
            ));
        }
        if self.vocab_parallel && !self.vocab.is_multiple_of(self.stages) {
            return Err(format!(
                "vocabulary parallelism needs stages ({}) to divide vocab ({})",
                self.stages, self.vocab
            ));
        }
        if let Some(seqs) = &self.mb_seqs {
            if seqs.len() != self.microbatches {
                return Err(format!(
                    "mb_seqs has {} entries for {} microbatches",
                    seqs.len(),
                    self.microbatches
                ));
            }
        }
        if let Some(ns) = &self.mb_slices {
            if ns.len() != self.microbatches {
                return Err(format!(
                    "mb_slices has {} entries for {} microbatches",
                    ns.len(),
                    self.microbatches
                ));
            }
            if ns.contains(&0) {
                return Err("per-microbatch slice counts must be positive".into());
            }
        }
        if let SlicePolicy::ExplicitPerMb(per_mb) = &self.slicing {
            if per_mb.len() != self.microbatches {
                return Err(format!(
                    "per-microbatch bounds cover {} of {} microbatches",
                    per_mb.len(),
                    self.microbatches
                ));
            }
        }
        for mb in 0..self.microbatches {
            let seq = self.mb_seq(mb);
            let n = self.slices_of(mb);
            if seq < n {
                return Err(format!(
                    "microbatch {mb}: {seq} tokens cannot fill {n} slices"
                ));
            }
            let bounds = match &self.slicing {
                SlicePolicy::Explicit(bounds) => Some(bounds),
                SlicePolicy::ExplicitPerMb(per_mb) => Some(&per_mb[mb]),
                _ => None,
            };
            if let Some(bounds) = bounds {
                if bounds.len() != n + 1 {
                    return Err(format!(
                        "microbatch {mb}: explicit bounds have {} entries for {n} slices",
                        bounds.len()
                    ));
                }
                // Shared invariants (start at 0, strictly increasing, end
                // at this microbatch's seq) live in Slicing::try_explicit.
                Slicing::try_explicit(seq as u64, bounds.clone())
                    .map_err(|e| format!("microbatch {mb}: {e}"))?;
            }
        }
        if let Some(plan) = &self.fault_plan {
            for (site, kind) in &plan.faults {
                if site.stage >= self.stages {
                    return Err(format!(
                        "fault site names stage {} of {}",
                        site.stage, self.stages
                    ));
                }
                if site.mb as usize >= self.microbatches {
                    return Err(format!(
                        "fault site names microbatch {} of {}",
                        site.mb, self.microbatches
                    ));
                }
                if matches!(kind, FaultKind::CorruptActivation) && site.stage == 0 {
                    return Err(
                        "CorruptActivation models transfer corruption: stage 0 receives \
                         tokens, not activations"
                            .into(),
                    );
                }
                if let FaultKind::ServerDeath { device } = kind {
                    if *device >= self.stages {
                        return Err(format!(
                            "fault kills server {} of {}",
                            device, self.stages
                        ));
                    }
                }
            }
        }
        if let Some(ck) = &self.checkpoint {
            if ck.every == 0 {
                return Err("checkpoint interval must be positive".into());
            }
        }
        if self.watchdog_ms == 0 || self.exchange_timeout_ms == 0 {
            return Err("watchdog and exchange timeouts must be positive".into());
        }
        Ok(())
    }

    pub fn layers_per_stage(&self) -> usize {
        assert!(self.layers.is_multiple_of(self.stages), "stages must divide layers");
        self.layers / self.stages
    }

    /// Deterministic seed for parameter matrix `which` of global layer
    /// `layer` — identical regardless of which stage materialises it.
    pub fn param_seed(&self, layer: usize, which: u64) -> u64 {
        self.seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((layer as u64).wrapping_mul(131))
            .wrapping_add(which)
    }

    /// Embedding table (tied with the output projection).
    pub fn build_embedding(&self) -> Tensor {
        seeded_xavier(self.vocab, self.hidden(), self.param_seed(usize::MAX - 1, 0))
    }

    /// Final-norm gain.
    pub fn build_final_norm(&self) -> Vec<f32> {
        vec![1.0; self.hidden()]
    }

    /// Output projection `(hidden, vocab)`. Independent weights (untied)
    /// keep the gradient bookkeeping in tests simple.
    pub fn build_output(&self) -> Tensor {
        seeded_xavier(self.hidden(), self.vocab, self.param_seed(usize::MAX - 2, 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_stable_and_distinct() {
        let c = ExecConfig::small();
        assert_eq!(c.param_seed(2, 3), c.param_seed(2, 3));
        assert_ne!(c.param_seed(2, 3), c.param_seed(3, 3));
        assert_ne!(c.param_seed(2, 3), c.param_seed(2, 4));
    }

    #[test]
    fn geometry_is_divisible() {
        let c = ExecConfig::small();
        assert_eq!(c.hidden(), 32);
        assert_eq!(c.kv_hidden(), 16);
        assert_eq!(c.slice_len(), 16);
        assert_eq!(c.layers_per_stage(), 2);
    }

    #[test]
    fn embedding_is_deterministic() {
        let c = ExecConfig::small();
        assert_eq!(c.build_embedding(), c.build_embedding());
    }

    #[test]
    fn slice_map_covers_each_microbatch_contiguously() {
        let c = ExecConfig {
            slicing: SlicePolicy::PairBalanced,
            mb_seqs: Some(vec![48, 80]),
            ..ExecConfig::small()
        };
        c.validate().unwrap();
        let map = c.slice_map();
        assert_eq!(map.len(), 2);
        for (mb, ranges) in map.iter().enumerate() {
            assert_eq!(ranges.len(), c.slices);
            assert_eq!(ranges[0].start, 0);
            assert_eq!(ranges.last().unwrap().end, c.mb_seq(mb));
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start, "ranges must tile the sequence");
                assert!(!w[0].is_empty() && !w[1].is_empty());
            }
        }
        assert_eq!(c.total_tokens(), 128);
    }

    #[test]
    fn validate_rejects_bad_geometry() {
        let base = ExecConfig::small();
        assert!(ExecConfig { mb_seqs: Some(vec![64]), ..base.clone() }
            .validate()
            .is_err());
        assert!(ExecConfig { mb_seqs: Some(vec![64, 2]), slices: 4, ..base.clone() }
            .validate()
            .is_err());
        assert!(ExecConfig {
            slicing: SlicePolicy::Explicit(vec![0, 10, 63]),
            slices: 2,
            ..base.clone()
        }
        .validate()
        .is_err());
        // Non-monotone and non-zero-start bounds are rejected gracefully,
        // not left to panic downstream in Slicing::explicit.
        assert!(ExecConfig {
            slicing: SlicePolicy::Explicit(vec![0, 40, 30, 64]),
            slices: 3,
            ..base.clone()
        }
        .validate()
        .is_err());
        assert!(ExecConfig {
            slicing: SlicePolicy::Explicit(vec![4, 30, 64]),
            slices: 2,
            ..base.clone()
        }
        .validate()
        .is_err());
        assert!(base.validate().is_ok());
    }

    #[test]
    fn slice_len_matches_uniform_slicing() {
        let c = ExecConfig::small();
        let s = c.slicing_of(0);
        for i in 0..c.slices {
            assert_eq!(s.len(i) as usize, c.slice_len());
        }
    }
}
