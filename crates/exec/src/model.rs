//! Executor-level model configuration and deterministic parameter builds.

use slimpipe_tensor::attention::HeadCfg;
use slimpipe_tensor::init::seeded_xavier;
use slimpipe_tensor::Tensor;

/// Shape and run parameters of an executor model. Kept small — these train
/// for real on CPU threads.
#[derive(Clone, Copy, Debug)]
pub struct ExecConfig {
    pub layers: usize,
    pub heads: usize,
    pub kv_heads: usize,
    pub head_dim: usize,
    pub ffn: usize,
    pub vocab: usize,
    pub seq: usize,
    /// Slices per microbatch (1 = microbatch granularity).
    pub slices: usize,
    pub microbatches: usize,
    /// Pipeline stages (threads).
    pub stages: usize,
    pub vocab_parallel: bool,
    pub exchange: bool,
    /// Device activation-stash budget in bytes; stashes beyond it spill to
    /// host memory (§6.5). `None` disables offloading.
    pub offload_budget: Option<u64>,
    pub seed: u64,
}

impl ExecConfig {
    /// A small but non-trivial default: GQA, 2 slices per stage worth of
    /// layers, divisible everywhere.
    pub fn small() -> Self {
        Self {
            layers: 4,
            heads: 4,
            kv_heads: 2,
            head_dim: 8,
            ffn: 64,
            vocab: 96,
            seq: 64,
            slices: 4,
            microbatches: 2,
            stages: 2,
            vocab_parallel: false,
            exchange: false,
            offload_budget: None,
            seed: 7,
        }
    }

    pub fn hidden(&self) -> usize {
        self.heads * self.head_dim
    }

    pub fn kv_hidden(&self) -> usize {
        self.kv_heads * self.head_dim
    }

    pub fn head_cfg(&self) -> HeadCfg {
        HeadCfg::new(self.heads, self.kv_heads, self.head_dim)
    }

    pub fn slice_len(&self) -> usize {
        assert!(self.seq.is_multiple_of(self.slices), "slices must divide seq");
        self.seq / self.slices
    }

    pub fn layers_per_stage(&self) -> usize {
        assert!(self.layers.is_multiple_of(self.stages), "stages must divide layers");
        self.layers / self.stages
    }

    /// Deterministic seed for parameter matrix `which` of global layer
    /// `layer` — identical regardless of which stage materialises it.
    pub fn param_seed(&self, layer: usize, which: u64) -> u64 {
        self.seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((layer as u64).wrapping_mul(131))
            .wrapping_add(which)
    }

    /// Embedding table (tied with the output projection).
    pub fn build_embedding(&self) -> Tensor {
        seeded_xavier(self.vocab, self.hidden(), self.param_seed(usize::MAX - 1, 0))
    }

    /// Final-norm gain.
    pub fn build_final_norm(&self) -> Vec<f32> {
        vec![1.0; self.hidden()]
    }

    /// Output projection `(hidden, vocab)`. Independent weights (untied)
    /// keep the gradient bookkeeping in tests simple.
    pub fn build_output(&self) -> Tensor {
        seeded_xavier(self.hidden(), self.vocab, self.param_seed(usize::MAX - 2, 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_stable_and_distinct() {
        let c = ExecConfig::small();
        assert_eq!(c.param_seed(2, 3), c.param_seed(2, 3));
        assert_ne!(c.param_seed(2, 3), c.param_seed(3, 3));
        assert_ne!(c.param_seed(2, 3), c.param_seed(2, 4));
    }

    #[test]
    fn geometry_is_divisible() {
        let c = ExecConfig::small();
        assert_eq!(c.hidden(), 32);
        assert_eq!(c.kv_hidden(), 16);
        assert_eq!(c.slice_len(), 16);
        assert_eq!(c.layers_per_stage(), 2);
    }

    #[test]
    fn embedding_is_deterministic() {
        let c = ExecConfig::small();
        assert_eq!(c.build_embedding(), c.build_embedding());
    }
}
