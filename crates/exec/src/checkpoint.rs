//! Iteration-boundary checkpoint/restore.
//!
//! At an iteration boundary every parameter the run owns — per-stage layer
//! weights and norms, the embedding table, the final norm, the output
//! projection or its vocabulary shards — plus the iteration counter is
//! serialized to a single binary blob with a CRC-32 trailer. f32 payloads
//! are stored as exact little-endian bit patterns and repacking a restored
//! weight is a deterministic function of its tensor, so a resumed run is
//! **bit-identical** to the uninterrupted one (asserted in
//! `tests/faults.rs`).
//!
//! There is no optimizer state beyond the weights (plain SGD) and no data
//! RNG state beyond the config seed and the iteration counter (training
//! data is a pure function of `(seed, mb)`), so the file records exactly
//! what resumption needs and nothing else. A config fingerprint guards
//! against resuming under a different model shape or seed. The *pipeline*
//! geometry (stage count, vocab parallelism) is deliberately **not**
//! fingerprinted: the elastic recovery driver resumes a p-stage snapshot
//! under a p′-stage config by re-sharding it with [`CheckpointState::regroup`].
//!
//! Retention: [`CheckpointState::save_retained`] writes each snapshot to an
//! immutable `{path}.it{N}` sibling, then atomically (tmp+rename) updates
//! `{path}` itself — a one-line *latest* manifest naming the newest
//! snapshot — and prunes snapshots beyond `CheckpointCfg::keep_last`.
//! [`CheckpointState::load_latest`] follows the manifest and, when the
//! manifest is torn or the snapshot it names is missing/corrupt, falls
//! back to the newest sibling snapshot that still verifies.

use crate::comm::VocabShard;
use crate::fault::ExecError;
use crate::layer::LayerParams;
use crate::model::{CheckpointCfg, ExecConfig};
use crate::stage::Stage;
use slimpipe_tensor::{PackedWeight, Tensor};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"SLPCKPT1";
const VERSION: u32 = 1;

/// Table-driven CRC-32 (IEEE 802.3 polynomial, reflected). Implemented
/// in-tree — the registry is unreachable, and 20 lines beat a dependency.
pub fn crc32(bytes: &[u8]) -> u32 {
    const fn table() -> [u32; 256] {
        let mut t = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
                k += 1;
            }
            t[i] = c;
            i += 1;
        }
        t
    }
    const TABLE: [u32; 256] = table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// One layer's weights, as plain tensors (bit-exact copies of the packed
/// weights' backing tensors).
#[derive(Clone, Debug, PartialEq)]
pub struct LayerState {
    pub wq: Tensor,
    pub wk: Tensor,
    pub wv: Tensor,
    pub wo: Tensor,
    pub w_gate: Tensor,
    pub w_up: Tensor,
    pub w_down: Tensor,
    pub norm1: Vec<f32>,
    pub norm2: Vec<f32>,
}

/// One pipeline stage's parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct StageState {
    pub layers: Vec<LayerState>,
    pub embed: Option<Tensor>,
    pub final_norm: Option<Vec<f32>>,
    pub out_proj: Option<Tensor>,
}

/// One vocabulary shard's weight (shard gradients are zero at an iteration
/// boundary — `SgdStep` clears them).
#[derive(Clone, Debug, PartialEq)]
pub struct ShardState {
    pub offset: u64,
    pub w: Tensor,
}

/// A full run snapshot at an iteration boundary: everything needed to
/// resume bit-identically.
#[derive(Clone, Debug, PartialEq)]
pub struct CheckpointState {
    /// Iterations already completed (including their SGD step).
    pub iteration: u64,
    pub stages: Vec<StageState>,
    pub shards: Option<Vec<ShardState>>,
}

/// Model fingerprint: resuming under a different shape or seed would
/// silently produce garbage, so the file refuses to load. Stage count and
/// vocab parallelism are *not* mixed in — those describe how the same
/// parameters are laid out across devices, and `regroup` converts between
/// layouts losslessly, which is what lets the recovery driver restore a
/// p-stage snapshot at a degraded p′-stage geometry.
fn fingerprint(cfg: &ExecConfig) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    };
    for v in [
        cfg.layers as u64,
        cfg.heads as u64,
        cfg.kv_heads as u64,
        cfg.head_dim as u64,
        cfg.ffn as u64,
        cfg.vocab as u64,
        cfg.seed,
    ] {
        mix(v);
    }
    h
}

/// `{path}.it{N}`: the immutable per-boundary snapshot file next to the
/// manifest at `path`.
pub fn snapshot_path(base: &Path, iteration: u64) -> PathBuf {
    let name = base
        .file_name()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_default();
    base.with_file_name(format!("{name}.it{iteration}"))
}

/// All `{base}.it{N}` siblings, newest (highest `N`) first.
fn list_snapshots(base: &Path) -> Vec<(u64, PathBuf)> {
    let Some(name) = base.file_name().map(|s| s.to_string_lossy().into_owned()) else {
        return Vec::new();
    };
    let dir = match base.parent() {
        Some(d) if !d.as_os_str().is_empty() => d.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let prefix = format!("{name}.it");
    let mut out: Vec<(u64, PathBuf)> = std::fs::read_dir(&dir)
        .into_iter()
        .flatten()
        .flatten()
        .filter_map(|entry| {
            let fname = entry.file_name().to_string_lossy().into_owned();
            let n: u64 = fname.strip_prefix(&prefix)?.parse().ok()?;
            Some((n, entry.path()))
        })
        .collect();
    out.sort_by_key(|e| std::cmp::Reverse(e.0));
    out
}

// ---- binary writer/reader helpers (little-endian throughout) ----

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f32s(out: &mut Vec<u8>, v: &[f32]) {
    put_u64(out, v.len() as u64);
    for x in v {
        out.extend_from_slice(&x.to_bits().to_le_bytes());
    }
}

fn put_tensor(out: &mut Vec<u8>, t: &Tensor) {
    put_u64(out, t.rows() as u64);
    put_u64(out, t.cols() as u64);
    for x in t.as_slice() {
        out.extend_from_slice(&x.to_bits().to_le_bytes());
    }
}

/// Length-checked array view. The callers already slice to the exact
/// width, but a checkpoint-deserialize path must never be able to panic —
/// a mismatch reports a typed error instead of unwrapping.
fn arr<const N: usize>(s: &[u8]) -> Result<[u8; N], ExecError> {
    s.try_into()
        .map_err(|_| ExecError::Checkpoint("malformed field width".into()))
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ExecError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| ExecError::Checkpoint("truncated checkpoint".into()))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u64(&mut self) -> Result<u64, ExecError> {
        Ok(u64::from_le_bytes(arr(self.take(8)?)?))
    }

    fn f32s(&mut self) -> Result<Vec<f32>, ExecError> {
        let n = self.u64()? as usize;
        let raw = self.take(n.checked_mul(4).ok_or_else(|| {
            ExecError::Checkpoint("overflowing vector length".into())
        })?)?;
        raw.chunks_exact(4)
            .map(|c| Ok(f32::from_bits(u32::from_le_bytes(arr(c)?))))
            .collect()
    }

    fn tensor(&mut self) -> Result<Tensor, ExecError> {
        let rows = self.u64()? as usize;
        let cols = self.u64()? as usize;
        let n = rows.checked_mul(cols).and_then(|n| n.checked_mul(4)).ok_or_else(|| {
            ExecError::Checkpoint("overflowing tensor shape".into())
        })?;
        let raw = self.take(n)?;
        let data: Vec<f32> = raw
            .chunks_exact(4)
            .map(|c| Ok(f32::from_bits(u32::from_le_bytes(arr(c)?))))
            .collect::<Result<_, ExecError>>()?;
        Ok(Tensor::from_vec(rows, cols, data))
    }

    fn opt<T>(
        &mut self,
        read: impl FnOnce(&mut Self) -> Result<T, ExecError>,
    ) -> Result<Option<T>, ExecError> {
        match self.take(1)?[0] {
            0 => Ok(None),
            1 => Ok(Some(read(self)?)),
            b => Err(ExecError::Checkpoint(format!("bad option tag {b}"))),
        }
    }
}

fn put_opt<T>(out: &mut Vec<u8>, v: Option<&T>, write: impl FnOnce(&mut Vec<u8>, &T)) {
    match v {
        None => out.push(0),
        Some(t) => {
            out.push(1);
            write(out, t);
        }
    }
}

impl CheckpointState {
    /// Snapshot the run at an iteration boundary. `iteration` counts
    /// completed iterations (their SGD steps applied).
    pub fn capture(iteration: usize, stages: &[Stage], shards: Option<&[VocabShard]>) -> Self {
        let stages = stages
            .iter()
            .map(|st| StageState {
                layers: st
                    .layers
                    .iter()
                    .map(|l| LayerState {
                        wq: l.wq.tensor().clone(),
                        wk: l.wk.tensor().clone(),
                        wv: l.wv.tensor().clone(),
                        wo: l.wo.tensor().clone(),
                        w_gate: l.w_gate.tensor().clone(),
                        w_up: l.w_up.tensor().clone(),
                        w_down: l.w_down.tensor().clone(),
                        norm1: l.norm1.clone(),
                        norm2: l.norm2.clone(),
                    })
                    .collect(),
                embed: st.embed.as_ref().map(|(t, _)| t.clone()),
                final_norm: st.final_norm.as_ref().map(|(g, _)| g.clone()),
                out_proj: st.out_proj.as_ref().map(|(w, _)| w.tensor().clone()),
            })
            .collect();
        let shards = shards.map(|ss| {
            ss.iter()
                .map(|s| ShardState { offset: s.offset as u64, w: s.w.tensor().clone() })
                .collect()
        });
        Self { iteration: iteration as u64, stages, shards }
    }

    /// Overwrite `stage`'s parameters with this snapshot's. Repacking is a
    /// deterministic function of the tensor, so the restored stage computes
    /// bit-identically to the captured one. Gradients stay zero (they are
    /// zero at every iteration boundary).
    pub fn apply_to(&self, stage: &mut Stage) -> Result<(), ExecError> {
        let ss = self.stages.get(stage.device).ok_or_else(|| {
            ExecError::Checkpoint(format!("no stage {} in checkpoint", stage.device))
        })?;
        if ss.layers.len() != stage.layers.len() {
            return Err(ExecError::Checkpoint(format!(
                "stage {}: checkpoint has {} layers, stage has {}",
                stage.device,
                ss.layers.len(),
                stage.layers.len()
            )));
        }
        for (l, s) in stage.layers.iter_mut().zip(&ss.layers) {
            *l = LayerParams {
                wq: PackedWeight::new(s.wq.clone()),
                wk: PackedWeight::new(s.wk.clone()),
                wv: PackedWeight::new(s.wv.clone()),
                wo: PackedWeight::new(s.wo.clone()),
                w_gate: PackedWeight::new(s.w_gate.clone()),
                w_up: PackedWeight::new(s.w_up.clone()),
                w_down: PackedWeight::new(s.w_down.clone()),
                norm1: s.norm1.clone(),
                norm2: s.norm2.clone(),
            };
        }
        if let (Some((t, _)), Some(saved)) = (&mut stage.embed, &ss.embed) {
            *t = saved.clone();
        }
        if let (Some((g, _)), Some(saved)) = (&mut stage.final_norm, &ss.final_norm) {
            *g = saved.clone();
        }
        if let (Some((w, _)), Some(saved)) = (&mut stage.out_proj, &ss.out_proj) {
            *w = PackedWeight::new(saved.clone());
        }
        Ok(())
    }

    /// Rebuild vocabulary shards from the snapshot (gradients zeroed, as
    /// they are at every boundary).
    pub fn to_shards(&self, cfg: &ExecConfig) -> Option<Vec<VocabShard>> {
        self.shards.as_ref().map(|ss| {
            ss.iter()
                .map(|s| VocabShard {
                    w: PackedWeight::new(s.w.clone()),
                    grad: Tensor::zeros(cfg.hidden(), s.w.cols()),
                    offset: s.offset as usize,
                })
                .collect()
        })
    }

    /// Re-shard this snapshot onto `cfg`'s pipeline geometry: flatten the
    /// per-stage layer lists into global order and re-split them into
    /// `cfg.stages` equal groups, move the embedding to stage 0 and the
    /// final norm (plus classic head or vocabulary shards, per
    /// `cfg.vocab_parallel`) to the last stage. Every weight is a bit-exact
    /// copy, so a run resumed from the regrouped snapshot at geometry p′ is
    /// bit-identical to one resumed at p′ from the same parameters any
    /// other way — the invariant the recovery driver's determinism
    /// contract rests on.
    pub fn regroup(&self, cfg: &ExecConfig) -> Result<Self, ExecError> {
        let total: usize = self.stages.iter().map(|s| s.layers.len()).sum();
        if total != cfg.layers {
            return Err(ExecError::Checkpoint(format!(
                "checkpoint holds {total} layers, config expects {}",
                cfg.layers
            )));
        }
        if cfg.stages == 0 || !cfg.layers.is_multiple_of(cfg.stages) {
            return Err(ExecError::Checkpoint(format!(
                "{} layers cannot regroup onto {} stages",
                cfg.layers, cfg.stages
            )));
        }
        if cfg.vocab_parallel && !cfg.vocab.is_multiple_of(cfg.stages) {
            return Err(ExecError::Checkpoint(format!(
                "vocab {} cannot shard onto {} stages",
                cfg.vocab, cfg.stages
            )));
        }
        let embed = self
            .stages
            .iter()
            .find_map(|s| s.embed.clone())
            .ok_or_else(|| ExecError::Checkpoint("checkpoint has no embedding table".into()))?;
        let final_norm = self
            .stages
            .iter()
            .find_map(|s| s.final_norm.clone())
            .ok_or_else(|| ExecError::Checkpoint("checkpoint has no final norm".into()))?;
        // The full output projection, whether it was stored as a classic
        // head on the last stage or scattered across vocabulary shards.
        let full_out: Tensor = if let Some(w) = self.stages.iter().find_map(|s| s.out_proj.clone())
        {
            w
        } else if let Some(shards) = self.shards.as_ref().filter(|ss| !ss.is_empty()) {
            let hidden = shards[0].w.rows();
            let vocab: usize = shards.iter().map(|s| s.w.cols()).sum();
            let mut full = Tensor::zeros(hidden, vocab);
            for s in shards {
                full.set_cols(s.offset as usize, &s.w);
            }
            full
        } else {
            return Err(ExecError::Checkpoint(
                "checkpoint has neither an output projection nor vocabulary shards".into(),
            ));
        };
        if full_out.cols() != cfg.vocab {
            return Err(ExecError::Checkpoint(format!(
                "checkpoint head covers {} vocabulary columns, config expects {}",
                full_out.cols(),
                cfg.vocab
            )));
        }
        let lps = cfg.layers / cfg.stages;
        let mut all = self.stages.iter().flat_map(|s| s.layers.iter().cloned());
        let stages = (0..cfg.stages)
            .map(|d| {
                let last = d == cfg.stages - 1;
                StageState {
                    layers: all.by_ref().take(lps).collect(),
                    embed: (d == 0).then(|| embed.clone()),
                    final_norm: last.then(|| final_norm.clone()),
                    out_proj: (last && !cfg.vocab_parallel).then(|| full_out.clone()),
                }
            })
            .collect();
        let shards = cfg.vocab_parallel.then(|| {
            let w = cfg.vocab / cfg.stages;
            (0..cfg.stages)
                .map(|s| ShardState {
                    offset: (s * w) as u64,
                    w: full_out.cols_slice(s * w, w),
                })
                .collect()
        });
        Ok(Self { iteration: self.iteration, stages, shards })
    }

    /// Serialize: magic, version, config fingerprint, iteration, payload,
    /// CRC-32 trailer over everything after the magic.
    pub fn to_bytes(&self, cfg: &ExecConfig) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        put_u64(&mut out, fingerprint(cfg));
        put_u64(&mut out, self.iteration);
        put_u64(&mut out, self.stages.len() as u64);
        for st in &self.stages {
            put_u64(&mut out, st.layers.len() as u64);
            for l in &st.layers {
                for t in [&l.wq, &l.wk, &l.wv, &l.wo, &l.w_gate, &l.w_up, &l.w_down] {
                    put_tensor(&mut out, t);
                }
                put_f32s(&mut out, &l.norm1);
                put_f32s(&mut out, &l.norm2);
            }
            put_opt(&mut out, st.embed.as_ref(), put_tensor);
            put_opt(&mut out, st.final_norm.as_ref(), |o, v| put_f32s(o, v));
            put_opt(&mut out, st.out_proj.as_ref(), put_tensor);
        }
        put_opt(&mut out, self.shards.as_ref(), |o, ss| {
            put_u64(o, ss.len() as u64);
            for s in ss {
                put_u64(o, s.offset);
                put_tensor(o, &s.w);
            }
        });
        let crc = crc32(&out[MAGIC.len()..]);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Deserialize and verify magic, CRC, version, and config fingerprint.
    pub fn from_bytes(bytes: &[u8], cfg: &ExecConfig) -> Result<Self, ExecError> {
        if bytes.len() < MAGIC.len() + 4 + 8 + 8 + 4 {
            return Err(ExecError::Checkpoint("file too short".into()));
        }
        if &bytes[..MAGIC.len()] != MAGIC {
            return Err(ExecError::Checkpoint("bad magic (not a checkpoint file)".into()));
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 4);
        let want_crc = u32::from_le_bytes(arr(trailer)?);
        let got_crc = crc32(&body[MAGIC.len()..]);
        if want_crc != got_crc {
            return Err(ExecError::Checkpoint(format!(
                "checksum mismatch: stored {want_crc:#010x}, computed {got_crc:#010x}"
            )));
        }
        let mut r = Reader { buf: body, pos: MAGIC.len() };
        let version = u32::from_le_bytes(arr(r.take(4)?)?);
        if version != VERSION {
            return Err(ExecError::Checkpoint(format!("unsupported version {version}")));
        }
        let fp = r.u64()?;
        if fp != fingerprint(cfg) {
            return Err(ExecError::Checkpoint(
                "config fingerprint mismatch: checkpoint was written under a different \
                 model shape or seed"
                    .into(),
            ));
        }
        let iteration = r.u64()?;
        let n_stages = r.u64()? as usize;
        let mut stages = Vec::with_capacity(n_stages);
        for _ in 0..n_stages {
            let n_layers = r.u64()? as usize;
            let mut layers = Vec::with_capacity(n_layers);
            for _ in 0..n_layers {
                layers.push(LayerState {
                    wq: r.tensor()?,
                    wk: r.tensor()?,
                    wv: r.tensor()?,
                    wo: r.tensor()?,
                    w_gate: r.tensor()?,
                    w_up: r.tensor()?,
                    w_down: r.tensor()?,
                    norm1: r.f32s()?,
                    norm2: r.f32s()?,
                });
            }
            let embed = r.opt(|r| r.tensor())?;
            let final_norm = r.opt(|r| r.f32s())?;
            let out_proj = r.opt(|r| r.tensor())?;
            stages.push(StageState { layers, embed, final_norm, out_proj });
        }
        let shards = r.opt(|r| {
            let n = r.u64()? as usize;
            let mut ss = Vec::with_capacity(n);
            for _ in 0..n {
                ss.push(ShardState { offset: r.u64()?, w: r.tensor()? });
            }
            Ok(ss)
        })?;
        Ok(Self { iteration, stages, shards })
    }

    /// Write atomically (temp file + rename): a run killed mid-write never
    /// leaves a torn checkpoint behind.
    pub fn save(&self, path: &Path, cfg: &ExecConfig) -> Result<(), ExecError> {
        let bytes = self.to_bytes(cfg);
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, &bytes)
            .map_err(|e| ExecError::Checkpoint(format!("write {}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, path)
            .map_err(|e| ExecError::Checkpoint(format!("rename to {}: {e}", path.display())))?;
        Ok(())
    }

    pub fn load(path: &Path, cfg: &ExecConfig) -> Result<Self, ExecError> {
        let bytes = std::fs::read(path)
            .map_err(|e| ExecError::Checkpoint(format!("read {}: {e}", path.display())))?;
        Self::from_bytes(&bytes, cfg)
    }

    /// Retained save: write the immutable `{path}.it{N}` snapshot (atomic
    /// tmp+rename), then atomically point the `{path}` manifest at it, then
    /// prune snapshots beyond `keep_last`. A crash between any two steps
    /// leaves either the previous manifest intact or the new one — never a
    /// torn state — and pruning is best-effort (a full disk or racing
    /// janitor must not kill a training run that already durably saved).
    pub fn save_retained(&self, ck: &CheckpointCfg, cfg: &ExecConfig) -> Result<(), ExecError> {
        let snap = snapshot_path(&ck.path, self.iteration);
        self.save(&snap, cfg)?;
        let name = snap
            .file_name()
            .map(|s| s.to_string_lossy().into_owned())
            .ok_or_else(|| ExecError::Checkpoint("checkpoint path has no file name".into()))?;
        let tmp = ck.path.with_file_name(format!("{name}.mtmp"));
        std::fs::write(&tmp, format!("{name}\n"))
            .map_err(|e| ExecError::Checkpoint(format!("write {}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, &ck.path)
            .map_err(|e| ExecError::Checkpoint(format!("rename to {}: {e}", ck.path.display())))?;
        if ck.keep_last > 0 {
            for (_, old) in list_snapshots(&ck.path).into_iter().skip(ck.keep_last) {
                let _ = std::fs::remove_file(&old);
            }
        }
        Ok(())
    }

    /// Load the newest usable snapshot: follow the `latest` manifest, and
    /// when it is missing, torn, or names a missing/corrupt snapshot, fall
    /// back to the newest `{path}.it{N}` sibling that still verifies. Only
    /// when nothing verifies does this error — carrying the newest
    /// snapshot's failure so corruption is named, not hidden.
    pub fn load_latest(ck: &CheckpointCfg, cfg: &ExecConfig) -> Result<Self, ExecError> {
        let mut last_err: Option<ExecError> = None;
        if let Ok(text) = std::fs::read_to_string(&ck.path) {
            let name = text.trim();
            if !name.is_empty() && !name.contains(std::path::is_separator) {
                match Self::load(&ck.path.with_file_name(name), cfg) {
                    Ok(state) => return Ok(state),
                    Err(e) => last_err = Some(e),
                }
            }
        }
        for (_, snap) in list_snapshots(&ck.path) {
            match Self::load(&snap, cfg) {
                Ok(state) => return Ok(state),
                Err(e) => last_err.get_or_insert(e),
            };
        }
        Err(ExecError::Checkpoint(match last_err {
            Some(e) => format!("no usable snapshot under {}: {e}", ck.path.display()),
            None => format!("no snapshot found under {}", ck.path.display()),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn checkpoint_roundtrips_bit_exactly() {
        let cfg = ExecConfig::small();
        let stages: Vec<Stage> =
            (0..cfg.stages).map(|d| Stage::build(&cfg, d)).collect();
        let state = CheckpointState::capture(3, &stages, None);
        let bytes = state.to_bytes(&cfg);
        let back = CheckpointState::from_bytes(&bytes, &cfg).unwrap();
        assert_eq!(back, state, "round-trip must be bit-exact");
        assert_eq!(back.iteration, 3);
    }

    #[test]
    fn corruption_is_detected_by_checksum() {
        let cfg = ExecConfig::small();
        let stages: Vec<Stage> = (0..cfg.stages).map(|d| Stage::build(&cfg, d)).collect();
        let mut bytes = CheckpointState::capture(0, &stages, None).to_bytes(&cfg);
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01; // single bit flip
        match CheckpointState::from_bytes(&bytes, &cfg) {
            Err(ExecError::Checkpoint(msg)) => {
                assert!(msg.contains("checksum"), "unexpected message: {msg}")
            }
            other => panic!("corruption must be detected, got {other:?}"),
        }
    }

    #[test]
    fn fingerprint_mismatch_is_refused() {
        let cfg = ExecConfig::small();
        let stages: Vec<Stage> = (0..cfg.stages).map(|d| Stage::build(&cfg, d)).collect();
        let bytes = CheckpointState::capture(0, &stages, None).to_bytes(&cfg);
        let other = ExecConfig { seed: cfg.seed + 1, ..cfg.clone() };
        match CheckpointState::from_bytes(&bytes, &other) {
            Err(ExecError::Checkpoint(msg)) => {
                assert!(msg.contains("fingerprint"), "unexpected message: {msg}")
            }
            other => panic!("fingerprint mismatch must be refused, got {other:?}"),
        }
    }

    #[test]
    fn regroup_preserves_every_parameter_bit() {
        let cfg = ExecConfig::small(); // 4 layers over 2 stages
        let stages: Vec<Stage> = (0..cfg.stages).map(|d| Stage::build(&cfg, d)).collect();
        let state = CheckpointState::capture(2, &stages, None);
        let narrow = ExecConfig { stages: 1, ..cfg.clone() };
        let re = state.regroup(&narrow).unwrap();
        assert_eq!(re.stages.len(), 1);
        assert_eq!(re.iteration, 2);
        let flat: Vec<&LayerState> = state.stages.iter().flat_map(|s| &s.layers).collect();
        assert_eq!(re.stages[0].layers.len(), flat.len());
        for (a, b) in re.stages[0].layers.iter().zip(flat) {
            assert_eq!(a, b, "regroup must copy layers bit-exactly in global order");
        }
        assert_eq!(re.stages[0].embed, state.stages[0].embed);
        assert_eq!(re.stages[0].final_norm, state.stages[1].final_norm);
        assert_eq!(re.stages[0].out_proj, state.stages[1].out_proj);
        // Round-trip through a vocab-parallel layout and back: the head
        // survives shard scatter/gather bit-exactly.
        let vp = ExecConfig { stages: 2, vocab_parallel: true, ..cfg.clone() };
        let sharded = state.regroup(&vp).unwrap();
        assert!(sharded.stages.iter().all(|s| s.out_proj.is_none()));
        assert_eq!(sharded.shards.as_ref().map(Vec::len), Some(2));
        let back = sharded.regroup(&narrow).unwrap();
        assert_eq!(back.stages[0].out_proj, state.stages[1].out_proj);
    }

    #[test]
    fn regroup_refuses_mismatched_layer_count() {
        let cfg = ExecConfig::small();
        let stages: Vec<Stage> = (0..cfg.stages).map(|d| Stage::build(&cfg, d)).collect();
        let state = CheckpointState::capture(0, &stages, None);
        let wrong = ExecConfig { layers: 8, ..cfg };
        assert!(matches!(state.regroup(&wrong), Err(ExecError::Checkpoint(_))));
    }

    #[test]
    fn retention_prunes_and_manifest_tracks_latest() {
        let cfg = ExecConfig::small();
        let stages: Vec<Stage> = (0..cfg.stages).map(|d| Stage::build(&cfg, d)).collect();
        let dir = std::env::temp_dir();
        let base = dir.join(format!("slimpipe_retain_{}.ckpt", std::process::id()));
        let ck = CheckpointCfg { every: 1, path: base.clone(), keep_last: 2 };
        for it in 1..=4u64 {
            let mut s = CheckpointState::capture(0, &stages, None);
            s.iteration = it;
            s.save_retained(&ck, &cfg).unwrap();
        }
        assert!(!snapshot_path(&base, 1).exists(), "it1 pruned");
        assert!(!snapshot_path(&base, 2).exists(), "it2 pruned");
        assert!(snapshot_path(&base, 3).exists());
        assert!(snapshot_path(&base, 4).exists());
        assert_eq!(CheckpointState::load_latest(&ck, &cfg).unwrap().iteration, 4);
        // Torn manifest: fall back to the newest verifying snapshot.
        std::fs::write(&base, b"garbage\0not a snapshot name").unwrap();
        assert_eq!(CheckpointState::load_latest(&ck, &cfg).unwrap().iteration, 4);
        // Newest snapshot corrupt: fall back one further.
        let mut bytes = std::fs::read(snapshot_path(&base, 4)).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(snapshot_path(&base, 4), &bytes).unwrap();
        assert_eq!(CheckpointState::load_latest(&ck, &cfg).unwrap().iteration, 3);
        for p in [base.clone(), snapshot_path(&base, 3), snapshot_path(&base, 4)] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn restore_reproduces_captured_weights() {
        let cfg = ExecConfig::small();
        let mut stages: Vec<Stage> =
            (0..cfg.stages).map(|d| Stage::build(&cfg, d)).collect();
        // Perturb so restore actually has to do something.
        stages[0].layers[0].norm1[0] = 2.5;
        let state = CheckpointState::capture(1, &stages, None);
        let mut fresh: Vec<Stage> = (0..cfg.stages).map(|d| Stage::build(&cfg, d)).collect();
        assert_ne!(fresh[0].layers[0].norm1[0], 2.5);
        for st in &mut fresh {
            state.apply_to(st).unwrap();
        }
        assert_eq!(fresh[0].layers[0].norm1[0], 2.5);
        for (a, b) in fresh.iter().zip(&stages) {
            for (la, lb) in a.layers.iter().zip(&b.layers) {
                assert_eq!(la.wq.tensor(), lb.wq.tensor());
                assert_eq!(la.w_down.tensor(), lb.w_down.tensor());
            }
        }
    }
}
