//! Activation offloading (§6.5) — executed for real.
//!
//! The paper integrates "pipeline-parallelism-aware offloading" to push
//! context length to 4096K: a fraction of the activation stash moves to
//! host memory and returns before its backward. This module implements the
//! mechanism in the executor: a per-device [`OffloadEngine`] with a device
//! byte budget spills the *oldest* stashed slices (they are the last to be
//! consumed — backward is LIFO within a microbatch, so the oldest forward
//! stash has the longest residency) and fetches them back on demand.
//! KV chunks stay resident: later slices' attention reads them on the
//! forward path, so they are the wrong thing to spill mid-microbatch.
//!
//! All traffic is metered, so tests can assert both the memory ceiling and
//! the paper's trade-off (offload trades transfer volume for peak bytes,
//! never correctness).

use crate::layer::SliceCache;
use slimpipe_tensor::MemCounter;
use std::collections::{HashMap, VecDeque};

/// Host-side spill store for one device.
pub struct OffloadEngine {
    /// Device-resident stash budget in bytes; beyond it, spill.
    pub device_budget: u64,
    /// Spilled stashes by unit key.
    host: HashMap<(u32, u32), Vec<SliceCache>>,
    /// Device-resident unit keys, oldest first.
    resident_order: VecDeque<(u32, u32)>,
    /// Host-resident bytes (peak tracked).
    pub host_mem: MemCounter,
    /// Cumulative bytes moved device→host and host→device.
    pub transferred: u64,
}

impl OffloadEngine {
    pub fn new(device_budget: u64) -> Self {
        Self {
            device_budget,
            host: HashMap::new(),
            resident_order: VecDeque::new(),
            host_mem: MemCounter::new(),
            transferred: 0,
        }
    }

    /// Register a freshly stashed unit in the residency order.
    pub fn push_key(&mut self, key: (u32, u32)) {
        self.resident_order.push_back(key);
    }

    /// Oldest resident unit other than `exclude` (the one just produced,
    /// which the last stage consumes immediately), removed from the order.
    pub fn pop_oldest_excluding(&mut self, exclude: (u32, u32)) -> Option<(u32, u32)> {
        let pos = self.resident_order.iter().position(|&k| k != exclude)?;
        self.resident_order.remove(pos)
    }

    /// Move a unit's stash to the host store.
    pub fn spill(&mut self, key: (u32, u32), caches: Vec<SliceCache>, device_mem: &MemCounter) {
        let bytes: u64 = caches.iter().map(|c| c.bytes()).sum();
        device_mem.free(bytes);
        self.host_mem.alloc(bytes);
        self.transferred += bytes;
        self.host.insert(key, caches);
    }

    /// Fetch a unit back for its backward (no-op if it never spilled).
    pub fn fetch(
        &mut self,
        key: (u32, u32),
        device_mem: &MemCounter,
    ) -> Option<Vec<SliceCache>> {
        let caches = self.host.remove(&key)?;
        let bytes: u64 = caches.iter().map(|c| c.bytes()).sum();
        self.host_mem.free(bytes);
        device_mem.alloc(bytes);
        self.transferred += bytes;
        Some(caches)
    }

    /// Drop a unit from the residency order (its backward consumed it).
    pub fn note_consumed(&mut self, key: (u32, u32)) {
        if let Some(pos) = self.resident_order.iter().position(|&k| k == key) {
            self.resident_order.remove(pos);
        }
    }

    /// Nothing may remain spilled at iteration end.
    pub fn assert_drained(&self) {
        assert!(self.host.is_empty(), "spilled stashes left behind");
        assert_eq!(self.host_mem.current(), 0);
    }
}

#[cfg(test)]
mod tests {
    use crate::model::ExecConfig;
    use crate::schedule::PipelineKind;
    use crate::train::{run_pipeline, run_reference};
    use crate::verify::assert_equivalent;

    fn cfg(budget: Option<u64>) -> ExecConfig {
        ExecConfig {
            stages: 2,
            slices: 8,
            microbatches: 2,
            offload_budget: budget,
            ..ExecConfig::small()
        }
    }

    #[test]
    fn offload_preserves_numerics_exactly() {
        let want = run_reference(&cfg(None), 2, 0.2);
        // A budget tight enough to force spilling on device 0.
        let got = run_pipeline(&cfg(Some(80_000)), PipelineKind::SlimPipe, 2, 0.2);
        assert_equivalent(&got, &want, 3e-3);
    }

    #[test]
    fn offload_cuts_peak_and_costs_transfers() {
        let base = run_pipeline(&cfg(None), PipelineKind::SlimPipe, 1, 0.1);
        let off = run_pipeline(&cfg(Some(80_000)), PipelineKind::SlimPipe, 1, 0.1);
        assert!(
            off.peak_act_bytes[0] < base.peak_act_bytes[0],
            "offload should lower the device peak: {} vs {}",
            off.peak_act_bytes[0],
            base.peak_act_bytes[0]
        );
        assert!(off.offload_transferred[0] > 0, "spilling must have happened");
        assert_eq!(base.offload_transferred[0], 0, "no budget, no traffic");
    }

    #[test]
    fn generous_budget_never_spills() {
        let r = run_pipeline(&cfg(Some(u64::MAX)), PipelineKind::SlimPipe, 1, 0.1);
        assert!(r.offload_transferred.iter().all(|&t| t == 0));
    }
}
