//! Elastic recovery driver: supervise → fail → re-plan → restore →
//! continue.
//!
//! [`run_elastic`] runs a multi-iteration job and, when the run dies with a
//! *recoverable* [`ExecError`] (a contained [`ExecError::StagePanic`], a
//! dead compute server, a wedged or retry-exhausted exchange — see
//! [`ExecError::is_recoverable`]), it shrinks the pipeline onto the
//! surviving stage count, asks a [`Replanner`] for a fresh [`ExecConfig`]
//! at that geometry, restores the newest checkpoint snapshot (re-sharded
//! across the survivors by `CheckpointState::regroup`), and continues —
//! recording every transition in a [`RecoveryLog`].
//!
//! **Determinism contract.** A job that hits a fault at iteration k and
//! re-plans to p′ stages produces final weights bit-identical to a clean
//! run launched at the p′ geometry from the same snapshot: restore copies
//! exact f32 bit patterns, regrouping is a pure relabeling of the same
//! parameters, the optimizer is stateless, and training data is a pure
//! function of `(seed, mb)`. `crates/exec/tests/recovery.rs` proves this
//! across fault class × surviving geometry × worker widths × async
//! exchange on/off.
//!
//! **Re-planning.** The driver talks to the planner through the
//! [`Replanner`] hook rather than linking it (the dependency points the
//! other way: `slimpipe-planner` builds on `slimpipe-exec`). The
//! production replanner is `slimpipe_planner::recovery_replanner`,
//! which re-partitions layers and per-microbatch slicings under the
//! byte-model memory cap with the calibrated `CostProfile`; the built-in
//! [`ShrinkReplanner`] is the dependency-free fallback that keeps the
//! current slicing (token bounds are geometry-independent) and only
//! shrinks the stage count.

use crate::checkpoint::CheckpointState;
use crate::fault::{ExecError, FaultKind, FaultPlan, FaultSite};
use crate::model::ExecConfig;
use crate::schedule::PipelineKind;
use crate::train::{try_resume_pipeline_from_traced, try_run_pipeline_traced, RunResult};
use slimpipe_obs::{counters as obs_counters, RecoveryPhase, SpanKind, TraceSession};
use std::fmt;
use std::sync::Arc;

/// Supervision parameters of one elastic job.
#[derive(Clone, Copy, Debug)]
pub struct DriverCfg {
    pub kind: PipelineKind,
    /// Recovery budget: how many fail→re-plan→restore transitions the
    /// driver will attempt before surfacing the error. Bounds liveness —
    /// a fault schedule can never loop the driver forever.
    pub max_recoveries: usize,
    /// Never shrink below this stage count (a job may need a floor for
    /// memory reasons: fewer stages means more layers per device).
    pub min_stages: usize,
}

impl Default for DriverCfg {
    fn default() -> Self {
        Self { kind: PipelineKind::SlimPipe, max_recoveries: 3, min_stages: 1 }
    }
}

/// Produces the degraded-geometry config after a fault: given the last
/// config (fault plan already disarmed/filtered for the survivors) and the
/// surviving stage count, return a validated config at that geometry with
/// the same model shape, seed, and workload.
pub trait Replanner {
    fn replan(&mut self, base: &ExecConfig, survivors: usize) -> Result<ExecConfig, ExecError>;
}

impl<F: FnMut(&ExecConfig, usize) -> Result<ExecConfig, ExecError>> Replanner for F {
    fn replan(&mut self, base: &ExecConfig, survivors: usize) -> Result<ExecConfig, ExecError> {
        self(base, survivors)
    }
}

/// The dependency-free fallback replanner: keep the slicing (explicit
/// per-microbatch token bounds do not mention stages) and shrink the stage
/// count. The planner-backed `recovery_replanner` re-derives bounds under
/// the degraded geometry's memory cap instead.
pub struct ShrinkReplanner;

impl Replanner for ShrinkReplanner {
    fn replan(&mut self, base: &ExecConfig, survivors: usize) -> Result<ExecConfig, ExecError> {
        let cfg = ExecConfig { stages: survivors, ..base.clone() };
        cfg.validate().map_err(ExecError::InvalidConfig)?;
        Ok(cfg)
    }
}

/// One supervise-loop transition: what failed, what geometry the job moved
/// to, and where the healed run restarted from.
#[derive(Clone, Debug)]
pub struct RecoveryEvent {
    /// 1-based recovery attempt number.
    pub attempt: usize,
    /// Iteration the healed run resumed from (`0` = no snapshot existed
    /// yet; the job restarted from scratch at the new geometry).
    pub resumed_from: usize,
    /// The recoverable error that triggered this transition.
    pub fault: ExecError,
    pub from_stages: usize,
    pub to_stages: usize,
    /// Recoveries still in budget after this one.
    pub retries_left: usize,
}

impl fmt::Display for RecoveryEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "recovery {}: {} -> {} stages, resumed from iteration {}, {} retries left ({})",
            self.attempt,
            self.from_stages,
            self.to_stages,
            self.resumed_from,
            self.retries_left,
            self.fault
        )
    }
}

/// Every transition the driver made, in order. Empty for a clean run.
#[derive(Clone, Debug, Default)]
pub struct RecoveryLog {
    pub events: Vec<RecoveryEvent>,
}

impl fmt::Display for RecoveryLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.events.is_empty() {
            return writeln!(f, "clean run: no recoveries");
        }
        for e in &self.events {
            writeln!(f, "{e}")?;
        }
        Ok(())
    }
}

/// A finished elastic job: the final run's result (losses cover the last
/// segment the job actually executed), the transition log, and the config
/// the job ended on (the degraded geometry after recoveries).
#[derive(Debug)]
pub struct DriverOutcome {
    pub result: RunResult,
    pub log: RecoveryLog,
    pub final_config: ExecConfig,
}

/// Largest viable surviving stage count below the current one: layers must
/// split evenly, and vocab parallelism (when on) must shard evenly.
fn shrink_geometry(cfg: &ExecConfig, min_stages: usize) -> Option<usize> {
    (min_stages.max(1)..cfg.stages)
        .rev()
        .find(|&s| {
            cfg.layers.is_multiple_of(s) && (!cfg.vocab_parallel || cfg.vocab.is_multiple_of(s))
        })
}

/// Disarm the fault plan after `err` fired: remove the fault(s) the
/// observed error traces back to (by site/kind match), then drop sites the
/// degraded geometry cannot express. Removing the matched fault is what
/// makes recovery *converge* — a deterministic schedule would otherwise
/// re-fire the same fault on every healed run — and it is exactly the
/// physical story being simulated: the stage that panicked / the device
/// that died is no longer part of the job.
fn disarm(plan: &FaultPlan, err: &ExecError, survivors: usize) -> Option<FaultPlan> {
    let matched = |site: &FaultSite, kind: &FaultKind| -> bool {
        match err {
            ExecError::StagePanic { stage, iteration, mb, slice, .. } => {
                matches!(kind, FaultKind::StagePanic)
                    && site.stage == *stage
                    && site.iteration == *iteration
                    && site.mb == *mb
                    && site.slice == *slice
            }
            ExecError::ServerDied { device, .. } => {
                matches!(kind, FaultKind::ServerDeath { device: d } if d == device)
            }
            ExecError::ExchangeTimeout { mb, slice, .. } => {
                matches!(kind, FaultKind::DropReply | FaultKind::DelayReply { .. })
                    && site.mb == *mb
                    && site.slice == *slice
            }
            // A wedged rendezvous or silent disconnect cannot always be
            // traced to one site; disarm every fault kind that wedges.
            ExecError::RendezvousStuck { .. } | ExecError::Disconnected { .. } => matches!(
                kind,
                FaultKind::Stall | FaultKind::ServerDeath { .. } | FaultKind::DelayReply { .. }
            ),
            _ => false,
        }
    };
    let faults: Vec<(FaultSite, FaultKind)> = plan
        .faults
        .iter()
        .filter(|(s, k)| !matched(s, k))
        .filter(|(s, k)| {
            s.stage < survivors
                && !matches!(k, FaultKind::ServerDeath { device } if *device >= survivors)
        })
        .cloned()
        .collect();
    (!faults.is_empty()).then_some(FaultPlan { faults })
}

/// The replanner controls geometry and slicing — nothing else. Anything
/// that would change the *job* (model shape, seed, workload) or sabotage
/// recovery (rearmed faults, dropped checkpointing) is refused here.
fn check_replanned(
    base: &ExecConfig,
    new: &ExecConfig,
    survivors: usize,
) -> Result<(), ExecError> {
    if new.stages != survivors {
        return Err(ExecError::InvalidConfig(format!(
            "replanner produced {} stages, expected {survivors}",
            new.stages
        )));
    }
    let same_job = new.layers == base.layers
        && new.heads == base.heads
        && new.kv_heads == base.kv_heads
        && new.head_dim == base.head_dim
        && new.ffn == base.ffn
        && new.vocab == base.vocab
        && new.seq == base.seq
        && new.microbatches == base.microbatches
        && new.mb_seqs == base.mb_seqs
        && new.seed == base.seed;
    if !same_job {
        return Err(ExecError::InvalidConfig(
            "replanner changed the model or workload, not just the geometry".into(),
        ));
    }
    new.validate().map_err(ExecError::InvalidConfig)
}

/// Run an elastic job: `steps` iterations of `cfg` under supervision,
/// healing recoverable failures by re-planning onto survivors and resuming
/// from the newest checkpoint. Returns the last run's [`RunResult`] plus
/// the [`RecoveryLog`]; unrecoverable errors (and recoverable ones past
/// the retry budget or below `min_stages`) surface as `Err` — structured,
/// never a hang or a panic.
pub fn run_elastic(
    cfg: &ExecConfig,
    driver: &DriverCfg,
    steps: usize,
    lr: f32,
    replanner: &mut dyn Replanner,
) -> Result<DriverOutcome, ExecError> {
    let (trace, path) = TraceSession::from_env();
    let out = run_elastic_traced(cfg, driver, steps, lr, replanner, &trace);
    if let Some(p) = path {
        // Written on error too — the trace of a failed job carries the
        // recovery transitions that led up to the terminal error.
        let _ = slimpipe_obs::chrome::write_chrome_trace(&trace.report(), &p);
    }
    out
}

/// [`run_elastic`] recording into an explicit trace session. One session
/// spans every attempt, so a healed run's trace shows the failed attempt's
/// spans, the `Recovery` transition spans on the `driver` track, and the
/// resumed run, in one timeline.
pub fn run_elastic_traced(
    cfg: &ExecConfig,
    driver: &DriverCfg,
    steps: usize,
    lr: f32,
    replanner: &mut dyn Replanner,
    trace: &Arc<TraceSession>,
) -> Result<DriverOutcome, ExecError> {
    // Adopt the env fault plan here so the supervise loop sees (and can
    // disarm) the same schedule the runs execute.
    let mut cfg = cfg.clone();
    if cfg.fault_plan.is_none() {
        cfg.fault_plan = FaultPlan::from_env().map_err(ExecError::InvalidConfig)?;
    }
    let mut rec = trace.recorder("driver");
    let mut log = RecoveryLog::default();
    let mut attempt = 0usize;
    let mut pending: Option<CheckpointState> = None;
    loop {
        let res = match pending.take() {
            Some(state) => {
                try_resume_pipeline_from_traced(&cfg, driver.kind, steps, lr, state, trace)
            }
            None => try_run_pipeline_traced(&cfg, driver.kind, steps, lr, trace),
        };
        let err = match res {
            Ok(result) => return Ok(DriverOutcome { result, log, final_config: cfg }),
            Err(e) => e,
        };
        // An instant span marking failure detection (attempt numbering is
        // 1-based to match RecoveryEvent).
        if let Some(t0) = rec.clock() {
            rec.push(
                SpanKind::Recovery { attempt: attempt + 1, phase: RecoveryPhase::Fail },
                t0,
            );
        }
        if !err.is_recoverable() || attempt >= driver.max_recoveries {
            rec.flush();
            return Err(err);
        }
        let Some(survivors) = shrink_geometry(&cfg, driver.min_stages) else {
            rec.flush();
            return Err(err);
        };
        attempt += 1;
        obs_counters::RECOVERIES.incr();
        // Disarm before re-planning: the replanner validates its output,
        // and sites naming dead stages would (rightly) fail validation. A
        // fully-disarmed plan stays `Some(empty)` rather than `None`, so
        // the healed run cannot re-adopt the env plan and re-fire.
        let t_replan = rec.clock();
        let mut base = cfg.clone();
        base.fault_plan = base
            .fault_plan
            .as_ref()
            .map(|p| disarm(p, &err, survivors).unwrap_or_default());
        let mut new_cfg = replanner.replan(&base, survivors)?;
        // Durability policy and the (disarmed) fault schedule are the
        // driver's to carry across the transition, not the replanner's.
        new_cfg.checkpoint = base.checkpoint.clone();
        new_cfg.fault_plan = base.fault_plan.clone();
        check_replanned(&base, &new_cfg, survivors)?;
        if let Some(t0) = t_replan {
            rec.push(SpanKind::Recovery { attempt, phase: RecoveryPhase::Replan }, t0);
        }
        // Restore point: the newest usable snapshot, re-sharded onto the
        // survivors. No snapshot yet means the job restarts from scratch
        // at the degraded geometry.
        let t_restore = rec.clock();
        pending = new_cfg
            .checkpoint
            .as_ref()
            .and_then(|ck| CheckpointState::load_latest(ck, &new_cfg).ok());
        if let Some(t0) = t_restore {
            rec.push(SpanKind::Recovery { attempt, phase: RecoveryPhase::Restore }, t0);
            // Transitions land in the session immediately: a replanner (or
            // a test) reading the trace mid-recovery must see them.
            rec.flush();
        }
        log.events.push(RecoveryEvent {
            attempt,
            resumed_from: pending.as_ref().map(|s| s.iteration as usize).unwrap_or(0),
            fault: err,
            from_stages: cfg.stages,
            to_stages: survivors,
            retries_left: driver.max_recoveries - attempt,
        });
        cfg = new_cfg;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(iteration: usize, stage: usize, mb: u32, slice: u32) -> FaultSite {
        FaultSite { iteration, stage, mb, slice }
    }

    #[test]
    fn shrink_geometry_respects_divisibility_and_floor() {
        let cfg = ExecConfig { layers: 6, stages: 3, ..ExecConfig::small() };
        assert_eq!(shrink_geometry(&cfg, 1), Some(2));
        assert_eq!(shrink_geometry(&cfg, 2), Some(2));
        assert_eq!(shrink_geometry(&cfg, 3), None);
        let one = ExecConfig { stages: 1, ..ExecConfig::small() };
        assert_eq!(shrink_geometry(&one, 1), None, "nothing below one stage");
        // 7 layers on 2 stages never validates, but the shrink logic must
        // still refuse an uneven split on its own.
        let odd = ExecConfig { layers: 7, stages: 7, ..ExecConfig::small() };
        assert_eq!(shrink_geometry(&odd, 1), Some(1));
    }

    #[test]
    fn disarm_removes_the_matched_fault_and_dead_geometry_sites() {
        let plan = FaultPlan {
            faults: vec![
                (site(3, 1, 0, 1), FaultKind::StagePanic),
                (site(5, 0, 1, 0), FaultKind::StagePanic),
                (site(2, 0, 0, 0), FaultKind::ServerDeath { device: 1 }),
            ],
        };
        let err = ExecError::StagePanic {
            stage: 1,
            iteration: 3,
            mb: 0,
            slice: 1,
            msg: "injected".into(),
        };
        // Shrinking to 1 stage: the matched panic goes, the stage-1 sites
        // and dead-device faults go, the stage-0 panic survives.
        let left = disarm(&plan, &err, 1).unwrap();
        assert_eq!(left.faults, vec![(site(5, 0, 1, 0), FaultKind::StagePanic)]);
        // Same error, shrinking 3 -> 2: the unmatched server-death on a
        // still-alive device survives.
        let err2 = ExecError::ServerDied { device: 0, stage: 1, mb: 0, slice: 0 };
        let plan2 = FaultPlan {
            faults: vec![
                (site(2, 0, 0, 0), FaultKind::ServerDeath { device: 0 }),
                (site(4, 0, 0, 0), FaultKind::ServerDeath { device: 1 }),
            ],
        };
        let left2 = disarm(&plan2, &err2, 2).unwrap();
        assert_eq!(left2.faults, vec![(site(4, 0, 0, 0), FaultKind::ServerDeath { device: 1 })]);
        // Everything disarmed -> None (the healed run is clean).
        assert!(disarm(&plan2, &err2, 1).is_none());
    }

    #[test]
    fn replan_checks_refuse_job_changes() {
        let base = ExecConfig::small();
        let mut sneaky = ExecConfig { stages: 1, seed: base.seed + 1, ..base.clone() };
        assert!(matches!(
            check_replanned(&base, &sneaky, 1),
            Err(ExecError::InvalidConfig(_))
        ));
        sneaky.seed = base.seed;
        assert!(check_replanned(&base, &sneaky, 1).is_ok());
        assert!(matches!(
            check_replanned(&base, &sneaky, 2),
            Err(ExecError::InvalidConfig(_))
        ));
    }
}
