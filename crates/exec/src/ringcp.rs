//! Commutated context parallelism (§5).
//!
//! Ring context parallelism shards the sequence over `c` ranks and
//! classically rotates **key/value blocks** around the ring so every query
//! shard attends every visible position. With SlimPipe's KV cache this is
//! disastrous: "the cached key-value will be communicated every time a
//! later slice comes" — the rotated volume grows with the cache.
//!
//! The paper's fix: a *commutated* variant that rotates the **query, the
//! partial output, and the softmax normaliser** instead. Each hop applies
//! the visiting query to the rank's resident KV shard and folds the result
//! into the carried accumulator by online softmax. The communicated volume
//! is one Q + one O (+ scalar lse) per hop — independent of how much KV is
//! cached, "recovered to that without KV cache".
//!
//! Both variants are implemented as deterministic sequential simulations
//! with byte-exact communication meters, and both are verified to equal
//! monolithic attention.

use crate::fault::ExecError;
use slimpipe_core::Slicing;
use slimpipe_tensor::attention::{fold_partial, forward_chunked, AttnPartial, HeadCfg};
use slimpipe_tensor::Tensor;

/// One CP rank's resident state: its query shard for the current slice and
/// its shards of every KV chunk produced so far.
pub struct CpRank {
    /// Query rows this rank owns (current slice's shard).
    pub q: Tensor,
    /// Global position of the first query row.
    pub q_offset: usize,
    /// This rank's shard of each KV chunk: `(k, v, global_offset)`.
    pub kv: Vec<(Tensor, Tensor, usize)>,
}

/// Result of a CP attention step.
pub struct CpResult {
    /// Per-rank merged attention output for the rank's query shard.
    pub outputs: Vec<AttnPartial>,
    /// Bytes moved between ranks.
    pub comm_bytes: u64,
}

fn kv_bytes(k: &Tensor, v: &Tensor) -> u64 {
    k.bytes() + v.bytes()
}

/// Classic ring attention: KV shards rotate; every rank's query stays put.
/// Communication: every non-local `(K, V)` shard visits every rank once.
/// Fails with a structured error (instead of panicking) when a rank ends
/// the ring with nothing to attend — a malformed scenario.
pub fn ring_classic(ranks: &[CpRank], cfg: HeadCfg) -> Result<CpResult, ExecError> {
    let c = ranks.len();
    let mut outputs = Vec::with_capacity(c);
    let mut comm = 0u64;
    for me in 0..c {
        let q = &ranks[me].q;
        let mut acc: Option<AttnPartial> = None;
        for (hop, other) in (0..c).map(|h| (h, (me + h) % c)) {
            for (k, v, off) in &ranks[other].kv {
                if hop != 0 {
                    // KV block shipped one hop around the ring for us.
                    comm += kv_bytes(k, v);
                }
                let p = forward_chunked(q, &[(k, v)], &[*off], cfg, ranks[me].q_offset);
                fold_partial(&mut acc, p, cfg);
            }
        }
        let merged = acc.ok_or_else(|| {
            ExecError::InvalidConfig(format!("CP rank {me} saw no KV shard in the ring"))
        })?;
        outputs.push(merged);
    }
    Ok(CpResult { outputs, comm_bytes: comm })
}

/// Commutated ring attention (§5): `(Q, O, lse)` rotates; KV never moves.
/// Communication: one query + one output + one lse vector per hop. Fails
/// with a structured error (instead of panicking) when a rank ends the
/// ring with nothing to attend — a malformed scenario.
pub fn ring_commutated(ranks: &[CpRank], cfg: HeadCfg) -> Result<CpResult, ExecError> {
    let c = ranks.len();
    let mut outputs = Vec::with_capacity(c);
    let mut comm = 0u64;
    for me in 0..c {
        let q = &ranks[me].q;
        let mut acc: Option<AttnPartial> = None;
        for hop in 0..c {
            let host = (me + hop) % c;
            if hop != 0 {
                // Q travels to the host; the accumulated (O, lse) travels
                // with it (the normaliser is tiny but counted).
                comm += q.bytes();
                if let Some(a) = &acc {
                    comm += a.o.bytes() + (a.lse.len() * 4) as u64;
                }
            }
            // The host applies its *resident* KV shards — no KV movement.
            for (k, v, off) in &ranks[host].kv {
                let p = forward_chunked(q, &[(k, v)], &[*off], cfg, ranks[me].q_offset);
                fold_partial(&mut acc, p, cfg);
            }
        }
        // Final (O, lse) returns home.
        comm += acc.as_ref().map(|a| a.o.bytes()).unwrap_or(0);
        let merged = acc.ok_or_else(|| {
            ExecError::InvalidConfig(format!("CP rank {me} saw no KV shard in the ring"))
        })?;
        outputs.push(merged);
    }
    Ok(CpResult { outputs, comm_bytes: comm })
}

/// Build a CP scenario: a sequence processed in uniform slices of length
/// `slice_len`, currently at slice `j` (so chunks `0..=j` exist), sharded
/// over `c` ranks. Rank `i` holds the `i`-th sub-block of every chunk and
/// of the current slice's queries. Returns the ranks plus the monolithic
/// `(q, k, v)` for verification.
pub fn build_scenario(
    c: usize,
    slice_len: usize,
    j: usize,
    cfg: HeadCfg,
    seed: u64,
) -> (Vec<CpRank>, Tensor, Tensor, Tensor) {
    use slimpipe_tensor::init::seeded_uniform;
    assert!(slice_len.is_multiple_of(c), "CP must divide the slice length");
    let total = (j + 1) * slice_len;
    let q_full = seeded_uniform(slice_len, cfg.q_width(), seed);
    let k_full = seeded_uniform(total, cfg.kv_width(), seed + 1);
    let v_full = seeded_uniform(total, cfg.kv_width(), seed + 2);
    let sub = slice_len / c;
    let ranks = (0..c)
        .map(|i| {
            let kv = (0..=j)
                .map(|chunk| {
                    let start = chunk * slice_len + i * sub;
                    (
                        k_full.rows_slice(start, sub),
                        v_full.rows_slice(start, sub),
                        start,
                    )
                })
                .collect();
            CpRank {
                q: q_full.rows_slice(i * sub, sub),
                q_offset: j * slice_len + i * sub,
                kv,
            }
        })
        .collect();
    (ranks, q_full, k_full, v_full)
}

/// Build a CP scenario from an explicit [`Slicing`]: the sequence is
/// partitioned by `slicing` (uniform, pair-balanced, or explicit bounds),
/// processing is at slice `j` (chunks `0..=j` exist), and every chunk — of
/// whatever length — is sharded over `c` ranks as near-even contiguous
/// sub-blocks ([`Slicing::even`] of the chunk), carrying exact global
/// offsets. Ranges come from the slicing's bounds, never from a uniform
/// `slice_len` recomputation.
pub fn build_scenario_slicing(
    c: usize,
    slicing: &Slicing,
    j: usize,
    cfg: HeadCfg,
    seed: u64,
) -> (Vec<CpRank>, Tensor, Tensor, Tensor) {
    use slimpipe_tensor::init::seeded_uniform;
    assert!(j < slicing.n(), "slice index out of range");
    let (q_start, q_len) = slicing.slice(j);
    assert!(
        (0..=j).all(|s| slicing.len(s) >= c as u64),
        "every chunk needs at least one token per CP rank"
    );
    let total = (q_start + q_len) as usize;
    let q_full = seeded_uniform(q_len as usize, cfg.q_width(), seed);
    let k_full = seeded_uniform(total, cfg.kv_width(), seed + 1);
    let v_full = seeded_uniform(total, cfg.kv_width(), seed + 2);
    // Shard each chunk (and the query slice) into `c` near-even sub-blocks;
    // the per-chunk partitions are rank-independent, so build them once.
    let q_shards = Slicing::even(q_len, c);
    let chunk_shards: Vec<Slicing> =
        (0..=j).map(|chunk| Slicing::even(slicing.len(chunk), c)).collect();
    let ranks = (0..c)
        .map(|i| {
            let kv = (0..=j)
                .map(|chunk| {
                    let chunk_start = slicing.bounds[chunk];
                    let (off, sub) = chunk_shards[chunk].slice(i);
                    let start = (chunk_start + off) as usize;
                    (
                        k_full.rows_slice(start, sub as usize),
                        v_full.rows_slice(start, sub as usize),
                        start,
                    )
                })
                .collect();
            let (q_off, q_sub) = q_shards.slice(i);
            CpRank {
                q: q_full.rows_slice(q_off as usize, q_sub as usize),
                q_offset: (q_start + q_off) as usize,
                kv,
            }
        })
        .collect();
    (ranks, q_full, k_full, v_full)
}

/// Total bytes each variant moves across a whole microbatch of `n` slices
/// — the §5 comparison ("recovered to that without KV cache").
pub fn microbatch_comm(c: usize, slice_len: usize, n: usize, cfg: HeadCfg) -> (u64, u64) {
    let (mut classic, mut commutated) = (0u64, 0u64);
    for j in 0..n {
        let (ranks, _, _, _) = build_scenario(c, slice_len, j, cfg, 42 + j as u64);
        classic += ring_classic(&ranks, cfg).expect("scenario has KV shards").comm_bytes;
        commutated += ring_commutated(&ranks, cfg).expect("scenario has KV shards").comm_bytes;
    }
    (classic, commutated)
}

#[cfg(test)]
mod tests {
    use super::*;

    const CFG: HeadCfg = HeadCfg { n_heads: 4, n_kv_heads: 2, head_dim: 8 };

    fn verify_against_monolithic(result: &CpResult, c: usize, slice_len: usize, j: usize) {
        let (_, q_full, k_full, v_full) = build_scenario(c, slice_len, j, CFG, 42 + j as u64);
        let reference = forward_chunked(
            &q_full,
            &[(&k_full, &v_full)],
            &[0],
            CFG,
            j * slice_len,
        );
        let sub = slice_len / c;
        for (i, out) in result.outputs.iter().enumerate() {
            let want = reference.o.rows_slice(i * sub, sub);
            assert!(
                out.o.max_abs_diff(&want) < 1e-4,
                "rank {i} diverges from monolithic attention"
            );
        }
    }

    #[test]
    fn classic_ring_is_exact() {
        for j in [0usize, 2, 5] {
            let (ranks, _, _, _) = build_scenario(4, 32, j, CFG, 42 + j as u64);
            let r = ring_classic(&ranks, CFG).unwrap();
            verify_against_monolithic(&r, 4, 32, j);
        }
    }

    #[test]
    fn commutated_ring_is_exact() {
        for c in [2usize, 4] {
            for j in [0usize, 3, 6] {
                let (ranks, _, _, _) = build_scenario(c, 32, j, CFG, 42 + j as u64);
                let r = ring_commutated(&ranks, CFG).unwrap();
                verify_against_monolithic(&r, c, 32, j);
            }
        }
    }

    /// Both ring variants stay exact when the chunk bounds come from a
    /// pair-balanced (wildly unequal) slicing and the shards are ragged.
    #[test]
    fn rings_are_exact_under_pair_balanced_slicing() {
        let slicing = Slicing::pair_balanced(96, 6);
        for c in [2usize, 3] {
            for j in [1usize, 3, 5] {
                let (ranks, q_full, k_full, v_full) =
                    build_scenario_slicing(c, &slicing, j, CFG, 77 + j as u64);
                let (q_start, _) = slicing.slice(j);
                let reference = forward_chunked(
                    &q_full,
                    &[(&k_full, &v_full)],
                    &[0],
                    CFG,
                    q_start as usize,
                );
                for variant in
                    [ring_classic(&ranks, CFG).unwrap(), ring_commutated(&ranks, CFG).unwrap()]
                {
                    let mut row = 0usize;
                    for out in &variant.outputs {
                        let want = reference.o.rows_slice(row, out.o.rows());
                        assert!(
                            out.o.max_abs_diff(&want) < 1e-4,
                            "c={c} j={j}: ragged CP shard diverges"
                        );
                        row += out.o.rows();
                    }
                    assert_eq!(row, q_full.rows(), "shards must tile the slice");
                }
            }
        }
    }

    #[test]
    fn classic_comm_grows_with_cache_but_commutated_does_not() {
        let c = 4;
        let l = 32;
        let early = {
            let (ranks, _, _, _) = build_scenario(c, l, 0, CFG, 1);
            (
                ring_classic(&ranks, CFG).unwrap().comm_bytes,
                ring_commutated(&ranks, CFG).unwrap().comm_bytes,
            )
        };
        let late = {
            let (ranks, _, _, _) = build_scenario(c, l, 7, CFG, 1);
            (
                ring_classic(&ranks, CFG).unwrap().comm_bytes,
                ring_commutated(&ranks, CFG).unwrap().comm_bytes,
            )
        };
        // Classic: the whole 8-chunk cache rotates → ~8× the volume.
        assert!(late.0 > 6 * early.0, "classic {} -> {}", early.0, late.0);
        // Commutated: Q/O rotation is cache-size independent.
        assert!(
            late.1 <= early.1 + early.1 / 2,
            "commutated {} -> {}",
            early.1,
            late.1
        );
    }

    #[test]
    fn microbatch_volume_ratio_matches_paper_claim() {
        // Over a whole microbatch of n slices, classic ring re-ships the
        // cache every slice (Σ j ≈ n²/2 chunk-shards) while commutated
        // ships Q+O per slice (linear in n). With GQA the Q/O tensors are
        // wider than K/V, so the commutated variant pays off only once the
        // cache is a few chunks deep — exactly the long-context regime the
        // paper targets. The gap then widens without bound.
        let (classic_4, comm_4) = microbatch_comm(2, 16, 4, CFG);
        let (classic_8, comm_8) = microbatch_comm(2, 16, 8, CFG);
        let (classic_16, comm_16) = microbatch_comm(2, 16, 16, CFG);
        let ratio_4 = classic_4 as f64 / comm_4 as f64;
        let ratio_8 = classic_8 as f64 / comm_8 as f64;
        let ratio_16 = classic_16 as f64 / comm_16 as f64;
        assert!(ratio_8 > ratio_4, "gap should widen: {ratio_4:.2} -> {ratio_8:.2}");
        assert!(ratio_16 > ratio_8, "gap should widen: {ratio_8:.2} -> {ratio_16:.2}");
        assert!(classic_8 > comm_8, "crossover by n=8: {classic_8} vs {comm_8}");
        assert!(ratio_16 > 2.0, "deep cache should dominate: {ratio_16:.2}");
    }

    #[test]
    fn single_rank_needs_no_communication_in_classic_ring() {
        let (ranks, _, _, _) = build_scenario(1, 32, 3, CFG, 9);
        let r = ring_classic(&ranks, CFG).unwrap();
        assert_eq!(r.comm_bytes, 0);
    }
}
