//! Inter-device communication: per-device compute servers, the context
//! exchange runtime, and cooperative vocabulary-parallel loss.
//!
//! Every pipeline device spawns one *compute server* thread. Servers are
//! stateless with respect to the pipeline (they never wait on another
//! device), which makes the request/reply pattern deadlock-free by
//! construction: main device threads may block on a server's reply, but a
//! server only ever computes. Two kinds of work arrive:
//!
//! * **attention jobs** — the §4.2 context exchange: a heavy device ships
//!   `(Q, K-chunk, V-chunk)`; the light device's server computes the
//!   partial attention (forward) or the chunk-local flash backward and
//!   ships the result back;
//! * **vocabulary jobs** — §4.3: each server owns one vocabulary shard of
//!   the (tied) output projection; the last stage scatters the normed
//!   hidden states and gathers per-shard scalar statistics (forward) or
//!   partial `d_hidden` (backward), while `dW` accumulates shard-locally.
//!
//! Fault tolerance: no rendezvous here can hang or abort the process.
//! Replies are awaited with `recv_timeout` under a bounded retry/backoff
//! loop; a dead or wedged server surfaces as a structured
//! [`ExecError`] naming the blocked unit — or, under a degradation
//! policy, the chunk is recomputed locally (KV is always locally
//! resident; exchange is an optimization, so the fallback is
//! bit-identical). Server threads run under `catch_unwind`, so even a
//! server panic becomes a disconnect, never a process abort.

use crate::fault::{DegradePolicy, ExecError, FaultKind, FaultPlan, InjectedPanic, Port, RunCtl};
use crate::model::ExecConfig;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use slimpipe_core::exchange::{plan_round_slicing, steady_round_slices};
use slimpipe_core::Slicing;
use slimpipe_tensor::attention::{
    self, backward_chunk, d_rows, fold_partial, AttnPartial, HeadCfg,
};
use slimpipe_tensor::pool;
use slimpipe_tensor::crossentropy::{combine_stats, shard_backward, shard_stats, ShardStats};
use slimpipe_tensor::matmul::{matmul_fused, matmul_tn_acc};
use slimpipe_obs::{OpTag, SpanKind, SpanRecorder, TraceSession};
use slimpipe_tensor::{Epilogue, PackedWeight, Prologue, Tensor};
use std::cell::RefCell;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// One device's vocabulary shard (weights — packed once, like every other
/// weight on the steady-state path — + local gradient accumulator).
pub struct VocabShard {
    pub w: PackedWeight,
    pub grad: Tensor,
    /// First vocabulary column this shard owns.
    pub offset: usize,
}

/// Work a compute server performs.
pub enum ServerJob {
    AttnFwd {
        q: Tensor,
        k: Tensor,
        v: Tensor,
        cfg: HeadCfg,
        q_offset: usize,
        kv_offset: usize,
        reply: Sender<AttnPartial>,
    },
    AttnBwd {
        q: Tensor,
        k: Tensor,
        v: Tensor,
        d_o: Tensor,
        lse: Vec<f32>,
        d: Vec<f32>,
        cfg: HeadCfg,
        q_offset: usize,
        kv_offset: usize,
        reply: Sender<(Tensor, Tensor, Tensor)>,
    },
    VocabFwd {
        normed: Tensor,
        targets: Vec<u32>,
        reply: Sender<ShardStats>,
    },
    VocabBwd {
        normed: Tensor,
        targets: Vec<u32>,
        lse: Vec<f32>,
        scale: f32,
        reply: Sender<Tensor>,
    },
    /// Apply one SGD step to the vocabulary shard and clear its gradient
    /// (issued once per iteration by the last stage).
    SgdStep { lr: f32, reply: Sender<()> },
    /// Scale the shard's gradient accumulator (skip-and-renormalize: the
    /// last stage rescales surviving gradients over the surviving tokens).
    ScaleGrad { factor: f32, reply: Sender<()> },
    /// Fault injection: stall the server for `ms` before the next job,
    /// delaying its replies.
    Delay { ms: u64 },
    /// Fault injection: kill the server thread (panics inside the
    /// `catch_unwind` wrapper — the thread dies, its channel disconnects,
    /// and clients observe exactly what a crashed peer looks like).
    Crash,
    Stop,
}

/// `submit` failure: the server's channel is disconnected (thread gone).
/// Carries the device index so callers can build a contextful
/// [`ExecError::ServerDied`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadServer(pub usize);

/// Handle for submitting jobs to a device's server.
#[derive(Clone)]
pub struct ServerHandle {
    tx: Sender<ServerJob>,
    device: usize,
}

impl ServerHandle {
    /// Submit a job. Fails (instead of aborting the process) when the
    /// server thread is gone.
    pub fn submit(&self, job: ServerJob) -> Result<(), DeadServer> {
        self.tx.send(job).map_err(|_| DeadServer(self.device))
    }

    /// Ask the server to exit; a dead server is already stopped.
    pub fn stop(&self) {
        let _ = self.tx.send(ServerJob::Stop);
    }

    pub fn device(&self) -> usize {
        self.device
    }
}

fn serve(
    rx: Receiver<ServerJob>,
    shard: &mut Option<VocabShard>,
    device: usize,
    rec: &mut Option<SpanRecorder>,
) {
    while let Ok(job) = rx.recv() {
        // Span the compute jobs only; control traffic (sgd/scale/stop) and
        // injected faults are not work the schedule accounts for.
        let t0 = match (&job, rec.as_ref()) {
            (
                ServerJob::AttnFwd { .. }
                | ServerJob::AttnBwd { .. }
                | ServerJob::VocabFwd { .. }
                | ServerJob::VocabBwd { .. },
                Some(r),
            ) => r.clock(),
            _ => None,
        };
        match job {
            ServerJob::AttnFwd { q, k, v, cfg, q_offset, kv_offset, reply } => {
                let part = attention::partial(&q, &k, &v, cfg, q_offset, kv_offset);
                let _ = reply.send(part);
            }
            ServerJob::AttnBwd {
                q,
                k,
                v,
                d_o,
                lse,
                d,
                cfg,
                q_offset,
                kv_offset,
                reply,
            } => {
                let out =
                    backward_chunk(&q, &k, &v, &d_o, &lse, &d, cfg, q_offset, kv_offset);
                let _ = reply.send(out);
            }
            ServerJob::VocabFwd { normed, targets, reply } => {
                // A vocab job on a shardless server is a broken geometry,
                // not a reason to panic: exit the serve loop so the dropped
                // reply surfaces at the client as a typed `ServerDied` —
                // exactly what the recovery driver knows how to heal.
                let Some(s) = shard.as_ref() else { break };
                let logits =
                    matmul_fused(&normed, s.w.nn(), Prologue::None, Epilogue::None);
                let stats = shard_stats(&logits, &targets, s.offset);
                logits.recycle();
                let _ = reply.send(stats);
            }
            ServerJob::VocabBwd { normed, targets, lse, scale, reply } => {
                let Some(s) = shard.as_mut() else { break };
                let logits =
                    matmul_fused(&normed, s.w.nn(), Prologue::None, Epilogue::None);
                let mut d_logits = shard_backward(&logits, &targets, s.offset, &lse);
                logits.recycle();
                d_logits.scale(scale);
                matmul_tn_acc(&mut s.grad, &normed, &d_logits, Prologue::None, Prologue::None);
                let d_hidden =
                    matmul_fused(&d_logits, s.w.nt(), Prologue::None, Epilogue::None);
                d_logits.recycle();
                let _ = reply.send(d_hidden);
            }
            ServerJob::SgdStep { lr, reply } => {
                if let Some(s) = shard.as_mut() {
                    s.w.axpy(-lr, &s.grad);
                    s.grad.fill(0.0);
                }
                let _ = reply.send(());
            }
            ServerJob::ScaleGrad { factor, reply } => {
                if let Some(s) = shard.as_mut() {
                    s.grad.scale(factor);
                }
                let _ = reply.send(());
            }
            ServerJob::Delay { ms } => {
                std::thread::sleep(Duration::from_millis(ms));
            }
            ServerJob::Crash => {
                std::panic::panic_any(InjectedPanic("injected server crash".into()))
            }
            ServerJob::Stop => break,
        }
        if let (Some(t0), Some(r)) = (t0, rec.as_mut()) {
            r.push(SpanKind::Compute { stage: device, mb: 0, slice: 0, op: OpTag::Server }, t0);
        }
    }
}

/// Spawn one device's compute server. Returns the shard (with accumulated
/// gradients) when stopped cleanly, `None` when the server died — a panic
/// is contained by `catch_unwind`, so from the outside a crashed server is
/// just a disconnected channel, never a process abort.
pub fn spawn_server(
    device: usize,
    shard: Option<VocabShard>,
) -> (ServerHandle, JoinHandle<Option<VocabShard>>) {
    spawn_server_with(device, shard, None)
}

/// [`spawn_server`] with the server's jobs recorded as `Compute` spans on
/// a `server{device}` track of `trace`. The recorder lives inside the
/// server thread and flushes on exit — including panic exits, so a trace
/// of a crashed server still shows what it was doing.
pub fn spawn_server_traced(
    device: usize,
    shard: Option<VocabShard>,
    trace: &Arc<TraceSession>,
) -> (ServerHandle, JoinHandle<Option<VocabShard>>) {
    spawn_server_with(device, shard, Some(Arc::clone(trace)))
}

fn spawn_server_with(
    device: usize,
    shard: Option<VocabShard>,
    trace: Option<Arc<TraceSession>>,
) -> (ServerHandle, JoinHandle<Option<VocabShard>>) {
    let (tx, rx): (Sender<ServerJob>, Receiver<ServerJob>) = unbounded();
    let handle = std::thread::spawn(move || {
        let mut shard = shard;
        let mut rec = trace.map(|t| t.recorder(&format!("server{device}")));
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            serve(rx, &mut shard, device, &mut rec)
        })) {
            Ok(()) => shard,
            Err(_) => None, // shard state is suspect after a panic
        }
    });
    (ServerHandle { tx, device }, handle)
}

/// Static context-exchange assignment: for each `(owner, slice)`, which
/// device executes each KV chunk. Derived once from the steady-state round
/// structure (§4.2.1's staircase). With a non-uniform [`Slicing`] the
/// per-round plans weight every movable chunk by its actual token volume,
/// so pair-balanced and ragged partitions redistribute correctly.
#[derive(Clone, Debug)]
pub struct ExchangeMap {
    /// `executor[owner][slice][chunk]` = executing device.
    executor: Vec<Vec<Vec<usize>>>,
}

impl ExchangeMap {
    /// Uniform-slicing map (kept for the uniform call sites and tests).
    pub fn build(p: usize, n: usize, slice_len: u64) -> Self {
        Self::build_from(p, &Slicing::uniform(n as u64 * slice_len, n))
    }

    /// Map derived from explicit slice bounds.
    pub fn build_from(p: usize, slicing: &Slicing) -> Self {
        let n = slicing.n();
        let mut executor = vec![vec![Vec::new(); n]; p];
        for t in 0..n {
            let slices = steady_round_slices(p, n, t);
            let plan = plan_round_slicing(&slices, slicing);
            for task in &plan.tasks {
                let owner = task.q_owner;
                let j = slices[owner]
                    .expect("round plan only names owners with an active slice") as usize;
                let row = &mut executor[owner][j];
                if row.len() <= task.kv_chunk as usize {
                    row.resize(j + 1, owner);
                }
                row[task.kv_chunk as usize] = task.executor;
            }
        }
        // Slices with zero moved chunks still need identity rows.
        for (owner, rows) in executor.iter_mut().enumerate() {
            for (j, row) in rows.iter_mut().enumerate() {
                if row.len() < j + 1 {
                    row.resize(j + 1, owner);
                }
            }
        }
        Self { executor }
    }

    /// Executing device for `(owner, slice, chunk)`.
    pub fn executor_of(&self, owner: usize, slice: usize, chunk: usize) -> usize {
        self.executor[owner][slice][chunk]
    }

    /// Chunks of `(owner, slice)` executed remotely.
    pub fn remote_chunks(&self, owner: usize, slice: usize) -> Vec<(usize, usize)> {
        self.executor[owner][slice]
            .iter()
            .enumerate()
            .filter(|&(_, &e)| e != owner)
            .map(|(c, &e)| (c, e))
            .collect()
    }
}

/// Fault-tolerance context of one op on one stage thread: the injection
/// plan, the degradation policy, the retry budget, and the shared run
/// control. `detached()` gives the no-injection defaults used by tests and
/// the demo.
pub struct FtCtx<'a> {
    pub plan: Option<&'a FaultPlan>,
    pub policy: DegradePolicy,
    /// First-attempt reply timeout; doubles per retry (bounded backoff).
    pub timeout: Duration,
    pub retries: u32,
    pub ctl: Option<&'a RunCtl>,
    pub iteration: usize,
    pub mb: u32,
    pub slice: u32,
    /// Sticky for the rest of the iteration once [`DegradePolicy::LocalFallback`]
    /// triggers: all chunks compute locally, no further exchange.
    pub local_only: bool,
    /// Overlapped regime (`ExecConfig::async_exchange = true`): post every
    /// remote chunk up front and compute local chunks while replies are in
    /// flight. When false the exchange serializes — each remote chunk is
    /// submitted and awaited before the next chunk is touched. Both regimes
    /// fold partials in ascending chunk order, so they are bit-identical.
    pub overlap: bool,
    /// Arm injected reply faults (DropReply/DelayReply) for this op. The
    /// stage loop arms them on the forward visit only, so a single planned
    /// fault fires once per unit instead of once per pass.
    pub reply_faults: bool,
    /// The owning stage thread's span recorder: exchange waits record as
    /// `ExchangeWait` spans on its track. `None` (tests, detached use)
    /// records nothing.
    pub rec: Option<&'a RefCell<SpanRecorder>>,
}

impl FtCtx<'_> {
    pub fn detached() -> Self {
        FtCtx {
            plan: None,
            policy: DegradePolicy::Abort,
            timeout: Duration::from_secs(2),
            retries: 3,
            ctl: None,
            iteration: 0,
            mb: 0,
            slice: 0,
            local_only: false,
            overlap: true,
            reply_faults: true,
            rec: None,
        }
    }

    fn faults(&self, stage: usize) -> Vec<&FaultKind> {
        match self.plan {
            Some(p) => p.at(self.iteration, stage, self.mb, self.slice).collect(),
            None => Vec::new(),
        }
    }

    fn aborted(&self) -> bool {
        self.ctl.is_some_and(|c| c.aborted())
    }

    fn fail(&self, e: &ExecError) {
        if let Some(c) = self.ctl {
            c.fail(e.clone());
        }
    }

    fn count(&self, f: impl Fn(&RunCtl) -> &std::sync::atomic::AtomicU64) {
        if let Some(c) = self.ctl {
            f(c).fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// What `await_reply` tells the fold loop to do for a remote chunk.
enum Recovered<T> {
    /// The remote partial arrived (possibly after retries).
    Remote(T),
    /// Exchange gave up under a degradation policy: compute locally.
    ComputeLocal,
}

/// Runtime attention executor with context exchange: local chunks run
/// in-thread, remote chunks ship to peer servers, partials merge by online
/// softmax. Replies are awaited under timeout + bounded retry; exhaustion
/// either fails the run ([`DegradePolicy::Abort`]) or falls back to local
/// compute — which is bit-identical, because every KV chunk this device
/// attends is resident in its own cache.
pub struct ExchangeRt<'a> {
    pub device: usize,
    pub servers: &'a [ServerHandle],
    pub map: &'a ExchangeMap,
    pub ft: FtCtx<'a>,
}

impl<'a> ExchangeRt<'a> {
    /// Exchange runtime with no fault plan and abort-on-trouble defaults.
    pub fn new(device: usize, servers: &'a [ServerHandle], map: &'a ExchangeMap) -> Self {
        ExchangeRt { device, servers, map, ft: FtCtx::detached() }
    }

    /// A dispatch-time dead server: abort policy fails the run; otherwise
    /// the chunk falls back to local compute.
    fn on_dead_server(&mut self, device: usize) -> Result<(), ExecError> {
        if self.ft.policy == DegradePolicy::Abort {
            let e = ExecError::ServerDied {
                device,
                stage: self.device,
                mb: self.ft.mb,
                slice: self.ft.slice,
            };
            self.ft.fail(&e);
            return Err(e);
        }
        self.ft.count(|c| &c.local_fallbacks);
        if self.ft.policy == DegradePolicy::LocalFallback {
            self.ft.local_only = true;
        }
        Ok(())
    }

    /// Await a remote chunk's reply with bounded retry/backoff,
    /// resubmitting via `resubmit` on each timeout. We always hold a clone
    /// of the reply sender, so the channel can only yield `Ok` or
    /// `Timeout` — a dead server manifests as silence, which the retry
    /// budget converts into a structured give-up.
    #[allow(clippy::too_many_arguments)]
    fn await_reply<T>(
        &mut self,
        rrx: &Receiver<T>,
        chunk: usize,
        exec: usize,
        resubmit: impl FnMut(&[ServerHandle]) -> Result<(), DeadServer>,
    ) -> Result<Recovered<T>, ExecError> {
        // The whole wait — first receive through every retry — is one
        // `ExchangeWait` span on the stage's track (nested inside the
        // enclosing `Compute` span; the clock is untouched when disabled).
        let t0 = self.ft.rec.and_then(|r| r.borrow().clock());
        let out = self.await_reply_inner(rrx, chunk, exec, resubmit);
        if let (Some(t0), Some(r)) = (t0, self.ft.rec) {
            r.borrow_mut().push(
                SpanKind::ExchangeWait {
                    stage: self.device,
                    mb: self.ft.mb as usize,
                    slice: self.ft.slice as usize,
                },
                t0,
            );
        }
        out
    }

    fn await_reply_inner<T>(
        &mut self,
        rrx: &Receiver<T>,
        chunk: usize,
        exec: usize,
        mut resubmit: impl FnMut(&[ServerHandle]) -> Result<(), DeadServer>,
    ) -> Result<Recovered<T>, ExecError> {
        let mut attempts = 0u32;
        loop {
            let wait = self.timeout_for_attempt(attempts);
            match rrx.recv_timeout(wait) {
                Ok(v) => return Ok(Recovered::Remote(v)),
                Err(RecvTimeoutError::Disconnected) => {
                    // Unreachable by construction (we hold a sender clone);
                    // treat defensively as a dead server.
                    return self.give_up(chunk, exec, attempts + 1).map(|_| Recovered::ComputeLocal);
                }
                Err(RecvTimeoutError::Timeout) => {
                    if self.ft.aborted() {
                        return Err(ExecError::Aborted { stage: self.device });
                    }
                    if attempts < self.ft.retries {
                        // Count each reply that needed resubmission once —
                        // not once per resubmission — so a reply recovered
                        // on the Nth retry is one recovered unit in the
                        // degradation statistics, not N.
                        if attempts == 0 {
                            self.ft.count(|c| &c.exchange_retries);
                        }
                        attempts += 1;
                        if resubmit(self.servers).is_err() {
                            // Server is gone; no retry can succeed.
                            return self
                                .give_up(chunk, exec, attempts)
                                .map(|_| Recovered::ComputeLocal);
                        }
                        continue;
                    }
                    return self.give_up(chunk, exec, attempts + 1).map(|_| Recovered::ComputeLocal);
                }
            }
        }
    }

    fn timeout_for_attempt(&self, attempt: u32) -> Duration {
        // Exponential backoff, saturating: t, 2t, 4t, ...
        self.ft.timeout.saturating_mul(1u32 << attempt.min(16))
    }

    /// Retry budget exhausted. Abort policy: structured failure. Skip /
    /// local-fallback: the caller computes the chunk locally (and
    /// fallback makes that sticky for the iteration).
    fn give_up(&mut self, chunk: usize, exec: usize, attempts: u32) -> Result<(), ExecError> {
        if self.ft.policy == DegradePolicy::Abort {
            let e = ExecError::ExchangeTimeout {
                stage: self.device,
                device: exec,
                mb: self.ft.mb,
                slice: self.ft.slice,
                chunk,
                attempts,
            };
            self.ft.fail(&e);
            return Err(e);
        }
        self.ft.count(|c| &c.local_fallbacks);
        if self.ft.policy == DegradePolicy::LocalFallback {
            self.ft.local_only = true;
        }
        Ok(())
    }

    /// Injected per-op faults: (lose the first remote reply?, delay the
    /// first remote server by ms?). A returned fault disarms the context
    /// so a planned reply fault fires in the first layer's attention of
    /// the unit, not once per layer of the stage.
    fn injected_op_faults(&mut self) -> (bool, Option<u64>) {
        if !self.ft.reply_faults {
            return (false, None);
        }
        let mut drop_one = false;
        let mut delay = None;
        for k in self.ft.faults(self.device) {
            match k {
                FaultKind::DropReply => drop_one = true,
                FaultKind::DelayReply { ms } => delay = Some(*ms),
                _ => {}
            }
        }
        if drop_one || delay.is_some() {
            self.ft.reply_faults = false;
        }
        (drop_one, delay)
    }
}

impl crate::layer::AttnExecutor for ExchangeRt<'_> {
    fn attn_forward(
        &mut self,
        q: &Tensor,
        chunks: &[(&Tensor, &Tensor)],
        offsets: &[usize],
        cfg: HeadCfg,
        q_offset: usize,
    ) -> Result<AttnPartial, ExecError> {
        let slice = chunks.len() - 1;
        let make_job = |c: usize, reply: Sender<AttnPartial>| ServerJob::AttnFwd {
            q: q.clone(),
            k: chunks[c].0.clone(),
            v: chunks[c].1.clone(),
            cfg,
            q_offset,
            kv_offset: offsets[c],
            reply,
        };
        if !self.ft.overlap {
            // Serialized regime: submit each remote chunk and block on its
            // reply before touching the next chunk — no comm/compute
            // overlap. Fold order is the same ascending chunk order as the
            // overlapped path, so the result is bit-identical.
            let (mut drop_one, mut delay) = self.injected_op_faults();
            let mut acc: Option<AttnPartial> = None;
            for c in 0..chunks.len() {
                let exec = self.map.executor_of(self.device, slice, c);
                let p = if exec != self.device && !self.ft.local_only {
                    if let Some(ms) = delay.take() {
                        let _ = self.servers[exec].submit(ServerJob::Delay { ms });
                    }
                    let (rtx, rrx) = unbounded();
                    let reply = if std::mem::take(&mut drop_one) {
                        let (lost_tx, _lost) = unbounded();
                        lost_tx
                    } else {
                        rtx.clone()
                    };
                    let submitted = self.servers[exec].submit(make_job(c, reply));
                    match submitted {
                        Ok(()) => match self.await_reply(&rrx, c, exec, |servers| {
                            servers[exec].submit(make_job(c, rtx.clone()))
                        })? {
                            Recovered::Remote(p) => p,
                            Recovered::ComputeLocal => attention::partial(
                                q, chunks[c].0, chunks[c].1, cfg, q_offset, offsets[c],
                            ),
                        },
                        Err(DeadServer(dev)) => {
                            self.on_dead_server(dev)?;
                            attention::partial(
                                q, chunks[c].0, chunks[c].1, cfg, q_offset, offsets[c],
                            )
                        }
                    }
                } else {
                    attention::partial(q, chunks[c].0, chunks[c].1, cfg, q_offset, offsets[c])
                };
                fold_partial(&mut acc, p, cfg);
            }
            return Ok(acc.expect("at least the diagonal chunk is visible"));
        }
        // Dispatch remote chunks first (early exchange) — one reply channel
        // per chunk so results can be folded in *chunk* order, not arrival
        // order — then compute local chunks while peers work. We keep a
        // sender clone per pending chunk so the reply channel can never
        // disconnect under us.
        let (mut drop_one, mut delay) = self.injected_op_faults();
        type Pending<T> = Option<(Receiver<T>, Sender<T>, usize)>;
        let mut pending: Vec<Pending<AttnPartial>> = Vec::with_capacity(chunks.len());
        for c in 0..chunks.len() {
            let exec = self.map.executor_of(self.device, slice, c);
            if exec != self.device && !self.ft.local_only {
                if let Some(ms) = delay.take() {
                    let _ = self.servers[exec].submit(ServerJob::Delay { ms });
                }
                let (rtx, rrx) = unbounded();
                // DropReply: the first submission replies into a channel
                // whose receiver is already gone — the reply is lost and
                // the retry path must recover it.
                let reply = if std::mem::take(&mut drop_one) {
                    let (lost_tx, _lost) = unbounded();
                    lost_tx
                } else {
                    rtx.clone()
                };
                match self.servers[exec].submit(make_job(c, reply)) {
                    Ok(()) => pending.push(Some((rrx, rtx, exec))),
                    Err(DeadServer(dev)) => {
                        self.on_dead_server(dev)?;
                        pending.push(None);
                    }
                }
            } else {
                pending.push(None);
            }
        }
        // Local partials overlap with the remote round-trips.
        let mut parts: Vec<Option<AttnPartial>> = (0..chunks.len())
            .map(|c| {
                pending[c].is_none().then(|| {
                    attention::partial(q, chunks[c].0, chunks[c].1, cfg, q_offset, offsets[c])
                })
            })
            .collect();
        // Deterministic fold, ascending chunk index — the identical
        // arithmetic order `attention::forward_chunked` uses, so a run with
        // context exchange is bit-identical to one without (and so is the
        // local-fallback path).
        let mut acc: Option<AttnPartial> = None;
        for (c, slot) in pending.into_iter().enumerate() {
            let p = match slot {
                Some((rrx, rtx, exec)) => {
                    match self.await_reply(&rrx, c, exec, |servers| {
                        servers[exec].submit(make_job(c, rtx.clone()))
                    })? {
                        Recovered::Remote(p) => p,
                        Recovered::ComputeLocal => attention::partial(
                            q, chunks[c].0, chunks[c].1, cfg, q_offset, offsets[c],
                        ),
                    }
                }
                None => parts[c].take().expect("local partial computed above"),
            };
            fold_partial(&mut acc, p, cfg);
        }
        Ok(acc.expect("at least the diagonal chunk is visible"))
    }

    fn attn_backward(
        &mut self,
        q: &Tensor,
        chunks: &[(&Tensor, &Tensor)],
        offsets: &[usize],
        d_o: &Tensor,
        o: &Tensor,
        lse: &[f32],
        cfg: HeadCfg,
        q_offset: usize,
    ) -> Result<(Tensor, Vec<(Tensor, Tensor)>), ExecError> {
        let slice = chunks.len() - 1;
        let d = d_rows(d_o, o, cfg);
        let make_job = |c: usize, d: &[f32], reply: Sender<(Tensor, Tensor, Tensor)>| {
            ServerJob::AttnBwd {
                q: q.clone(),
                k: chunks[c].0.clone(),
                v: chunks[c].1.clone(),
                d_o: d_o.clone(),
                lse: lse.to_vec(),
                d: d.to_vec(),
                cfg,
                q_offset,
                kv_offset: offsets[c],
                reply,
            }
        };
        if !self.ft.overlap {
            // Serialized regime: one remote round-trip at a time, dQ
            // accumulated in the same ascending chunk order as the
            // overlapped path — bit-identical gradients.
            let (mut drop_one, mut delay) = self.injected_op_faults();
            let mut results: Vec<Option<(Tensor, Tensor)>> = vec![None; chunks.len()];
            let mut dq = Tensor::zeros_pooled(q.rows(), cfg.q_width());
            for c in 0..chunks.len() {
                let exec = self.map.executor_of(self.device, slice, c);
                let dq_c = if exec != self.device && !self.ft.local_only {
                    if let Some(ms) = delay.take() {
                        let _ = self.servers[exec].submit(ServerJob::Delay { ms });
                    }
                    let (tx1, rx1) = unbounded();
                    let reply = if std::mem::take(&mut drop_one) {
                        let (lost_tx, _lost) = unbounded();
                        lost_tx
                    } else {
                        tx1.clone()
                    };
                    let submitted = self.servers[exec].submit(make_job(c, &d, reply));
                    match submitted {
                        Ok(()) => match self.await_reply(&rx1, c, exec, |servers| {
                            servers[exec].submit(make_job(c, &d, tx1.clone()))
                        })? {
                            Recovered::Remote((dq_c, dk, dv)) => {
                                results[c] = Some((dk, dv));
                                dq_c
                            }
                            Recovered::ComputeLocal => {
                                let (dq_c, dk, dv) = backward_chunk(
                                    q, chunks[c].0, chunks[c].1, d_o, lse, &d, cfg,
                                    q_offset, offsets[c],
                                );
                                results[c] = Some((dk, dv));
                                dq_c
                            }
                        },
                        Err(DeadServer(dev)) => {
                            self.on_dead_server(dev)?;
                            let (dq_c, dk, dv) = backward_chunk(
                                q, chunks[c].0, chunks[c].1, d_o, lse, &d, cfg, q_offset,
                                offsets[c],
                            );
                            results[c] = Some((dk, dv));
                            dq_c
                        }
                    }
                } else {
                    let (dq_c, dk, dv) = backward_chunk(
                        q, chunks[c].0, chunks[c].1, d_o, lse, &d, cfg, q_offset, offsets[c],
                    );
                    results[c] = Some((dk, dv));
                    dq_c
                };
                dq.add_assign_recycle(dq_c);
            }
            pool::recycle(d);
            return Ok((
                dq,
                results.into_iter().map(|r| r.expect("chunk computed")).collect(),
            ));
        }
        // Dispatch all remote chunk jobs first, each with its own reply
        // channel, then compute the local chunks while peers work.
        let (mut drop_one, mut delay) = self.injected_op_faults();
        type Pending<T> = Option<(Receiver<T>, Sender<T>, usize)>;
        let mut pending: Vec<Pending<(Tensor, Tensor, Tensor)>> =
            Vec::with_capacity(chunks.len());
        let mut results: Vec<Option<(Tensor, Tensor)>> = vec![None; chunks.len()];
        let mut dq_parts: Vec<Option<Tensor>> = (0..chunks.len()).map(|_| None).collect();
        let mut dq = Tensor::zeros_pooled(q.rows(), cfg.q_width());
        for c in 0..chunks.len() {
            let exec = self.map.executor_of(self.device, slice, c);
            if exec != self.device && !self.ft.local_only {
                if let Some(ms) = delay.take() {
                    let _ = self.servers[exec].submit(ServerJob::Delay { ms });
                }
                let (tx1, rx1) = unbounded();
                let reply = if std::mem::take(&mut drop_one) {
                    let (lost_tx, _lost) = unbounded();
                    lost_tx
                } else {
                    tx1.clone()
                };
                match self.servers[exec].submit(make_job(c, &d, reply)) {
                    Ok(()) => pending.push(Some((rx1, tx1, exec))),
                    Err(DeadServer(dev)) => {
                        self.on_dead_server(dev)?;
                        pending.push(None);
                    }
                }
            } else {
                pending.push(None);
            }
        }
        for c in 0..chunks.len() {
            if pending[c].is_none() {
                let (dq_c, dk, dv) = backward_chunk(
                    q, chunks[c].0, chunks[c].1, d_o, lse, &d, cfg, q_offset, offsets[c],
                );
                dq_parts[c] = Some(dq_c);
                results[c] = Some((dk, dv));
            }
        }
        // Accumulate dQ in ascending chunk order — the identical arithmetic
        // order `attention::backward_chunked` uses, so gradients with
        // context exchange are bit-identical to gradients without.
        for (c, slot) in pending.into_iter().enumerate() {
            let dq_c = match slot {
                Some((rx1, tx1, exec)) => {
                    match self.await_reply(&rx1, c, exec, |servers| {
                        servers[exec].submit(make_job(c, &d, tx1.clone()))
                    })? {
                        Recovered::Remote((dq_c, dk, dv)) => {
                            results[c] = Some((dk, dv));
                            dq_c
                        }
                        Recovered::ComputeLocal => {
                            let (dq_c, dk, dv) = backward_chunk(
                                q, chunks[c].0, chunks[c].1, d_o, lse, &d, cfg, q_offset,
                                offsets[c],
                            );
                            results[c] = Some((dk, dv));
                            dq_c
                        }
                    }
                }
                None => dq_parts[c].take().expect("local backward computed above"),
            };
            dq.add_assign_recycle(dq_c);
        }
        pool::recycle(d);
        Ok((
            dq,
            results.into_iter().map(|r| r.expect("chunk computed")).collect(),
        ))
    }
}

/// Cooperative vocabulary-parallel loss across all device servers.
///
/// Replies travel one channel per server and fold in *device* order: the
/// scalar-statistics combine and the `d_hidden` sum are f32 reductions, so
/// a fixed fold order keeps vocabulary-parallel runs bit-reproducible
/// regardless of which shard replies first.
pub struct VocabParallel<'a> {
    pub servers: &'a [ServerHandle],
    pub watchdog: Duration,
    pub ctl: Option<&'a RunCtl>,
    pub stage: usize,
    pub mb: u32,
    pub slice: u32,
    /// The owning stage thread's span recorder: shard-reply gathers record
    /// as `ExchangeWait` spans. `None` records nothing.
    pub rec: Option<&'a RefCell<SpanRecorder>>,
}

impl<'a> VocabParallel<'a> {
    pub fn new(servers: &'a [ServerHandle]) -> Self {
        VocabParallel {
            servers,
            watchdog: Duration::from_secs(10),
            ctl: None,
            stage: 0,
            mb: 0,
            slice: 0,
            rec: None,
        }
    }

    /// Gather one reply per server, in device order. The whole gather is
    /// one `ExchangeWait` span on the last stage's track.
    fn gather<T>(&self, replies: Vec<Receiver<T>>) -> Result<Vec<T>, ExecError> {
        let t0 = self.rec.and_then(|r| r.borrow().clock());
        let out = self.gather_inner(replies);
        if let (Some(t0), Some(r)) = (t0, self.rec) {
            r.borrow_mut().push(
                SpanKind::ExchangeWait {
                    stage: self.stage,
                    mb: self.mb as usize,
                    slice: self.slice as usize,
                },
                t0,
            );
        }
        out
    }

    fn gather_inner<T>(&self, replies: Vec<Receiver<T>>) -> Result<Vec<T>, ExecError> {
        let mut out = Vec::with_capacity(replies.len());
        for (dev, rx) in replies.iter().enumerate() {
            let v = match self.ctl {
                Some(ctl) => crate::fault::recv_guarded(
                    rx,
                    ctl,
                    self.watchdog,
                    self.stage,
                    self.mb,
                    self.slice,
                    Port::Server,
                )
                .map_err(|e| match e {
                    // A vocab reply channel's only sender lives in the
                    // server; disconnect means that server died.
                    ExecError::Disconnected { .. } => ExecError::ServerDied {
                        device: dev,
                        stage: self.stage,
                        mb: self.mb,
                        slice: self.slice,
                    },
                    other => other,
                }),
                None => rx.recv_timeout(self.watchdog).map_err(|_| ExecError::ServerDied {
                    device: dev,
                    stage: self.stage,
                    mb: self.mb,
                    slice: self.slice,
                }),
            }?;
            out.push(v);
        }
        Ok(out)
    }

    /// Forward: scatter normed hidden states, gather per-shard statistics,
    /// combine. Returns `(summed loss, per-row global lse)`.
    pub fn loss_forward(
        &self,
        normed: &Tensor,
        targets: &[u32],
    ) -> Result<(f64, Vec<f32>), ExecError> {
        let mut replies = Vec::with_capacity(self.servers.len());
        for s in self.servers {
            let (tx, rx) = unbounded();
            s.submit(ServerJob::VocabFwd {
                normed: normed.clone(),
                targets: targets.to_vec(),
                reply: tx,
            })
            .map_err(|DeadServer(dev)| ExecError::ServerDied {
                device: dev,
                stage: self.stage,
                mb: self.mb,
                slice: self.slice,
            })?;
            replies.push(rx);
        }
        let stats: Vec<ShardStats> = self.gather(replies)?;
        let g = combine_stats(&stats);
        Ok((slimpipe_tensor::crossentropy::loss_from_stats(&g), g.lse))
    }

    /// Backward: scatter `(normed, lse)`, gather partial `d_normed`
    /// contributions (shard `dW` accumulates server-side).
    pub fn loss_backward(
        &self,
        normed: &Tensor,
        targets: &[u32],
        lse: &[f32],
        scale: f32,
    ) -> Result<Tensor, ExecError> {
        let mut replies = Vec::with_capacity(self.servers.len());
        for s in self.servers {
            let (tx, rx) = unbounded();
            s.submit(ServerJob::VocabBwd {
                normed: normed.clone(),
                targets: targets.to_vec(),
                lse: lse.to_vec(),
                scale,
                reply: tx,
            })
            .map_err(|DeadServer(dev)| ExecError::ServerDied {
                device: dev,
                stage: self.stage,
                mb: self.mb,
                slice: self.slice,
            })?;
            replies.push(rx);
        }
        let mut d = Tensor::zeros_pooled(normed.rows(), normed.cols());
        for part in self.gather(replies)? {
            d.add_assign_recycle(part);
        }
        Ok(d)
    }
}

/// Build per-device vocabulary shards from the full (deterministic) output
/// weight of `cfg`.
pub fn build_vocab_shards(cfg: &ExecConfig) -> Vec<VocabShard> {
    let full = cfg.build_output(); // (hidden, vocab)
    let p = cfg.stages;
    assert!(cfg.vocab.is_multiple_of(p), "vocab must divide by stages for sharding");
    let w = cfg.vocab / p;
    (0..p)
        .map(|s| VocabShard {
            w: PackedWeight::new(full.cols_slice(s * w, w)),
            grad: Tensor::zeros(cfg.hidden(), w),
            offset: s * w,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::AttnExecutor;
    use slimpipe_tensor::init::{seeded_tokens, seeded_uniform};
    use slimpipe_tensor::matmul::{matmul, matmul_nt, matmul_tn};

    #[test]
    fn exchange_map_is_total_and_diagonal_local() {
        let (p, n) = (4usize, 8usize);
        let map = ExchangeMap::build(p, n, 64);
        for owner in 0..p {
            for j in 0..n {
                assert_eq!(map.executor[owner][j].len(), j + 1, "owner={owner} j={j}");
                // Diagonal stays home (§4.2 + early-KV rule).
                assert_eq!(map.executor_of(owner, j, j), owner);
            }
        }
        // The heaviest slice of some device must actually move work.
        let total_remote: usize =
            (0..p).map(|o| map.remote_chunks(o, n - 1).len()).sum();
        assert!(total_remote > 0, "exchange should move something");
    }

    #[test]
    fn exchanged_forward_matches_local() {
        let cfg = HeadCfg::new(2, 2, 8);
        let (p, n, l) = (4usize, 8usize, 8usize);
        let map = ExchangeMap::build(p, n, l as u64);
        let mut handles = Vec::new();
        let mut joins = Vec::new();
        for d in 0..p {
            let (h, j) = spawn_server(d, None);
            handles.push(h);
            joins.push(j);
        }
        // Queries at the last slice (heaviest) of device 1.
        let j = n - 1;
        let q = seeded_uniform(l, 16, 900);
        let ks: Vec<Tensor> = (0..=j).map(|c| seeded_uniform(l, 16, 901 + c as u64)).collect();
        let vs: Vec<Tensor> = (0..=j).map(|c| seeded_uniform(l, 16, 950 + c as u64)).collect();
        let chunks: Vec<(&Tensor, &Tensor)> = ks.iter().zip(vs.iter()).collect();
        let offsets: Vec<usize> = (0..=j).map(|c| c * l).collect();
        let q_offset = j * l;

        let mut rt = ExchangeRt::new(1, &handles, &map);
        let got = rt.attn_forward(&q, &chunks, &offsets, cfg, q_offset).unwrap();
        let want = attention::forward_chunked(&q, &chunks, &offsets, cfg, q_offset);
        assert!(got.o.max_abs_diff(&want.o) < 1e-4);

        // Backward too.
        let d_o = seeded_uniform(l, 16, 999);
        let (dq_got, dkv_got) = rt
            .attn_backward(&q, &chunks, &offsets, &d_o, &got.o, &got.lse, cfg, q_offset)
            .unwrap();
        let (dq_want, dkv_want) = attention::backward_chunked(
            &q, &chunks, &offsets, &d_o, &want.o, &want.lse, cfg, q_offset,
        );
        assert!(dq_got.max_abs_diff(&dq_want) < 1e-4);
        for (g, w) in dkv_got.iter().zip(&dkv_want) {
            assert!(g.0.max_abs_diff(&w.0) < 1e-4);
            assert!(g.1.max_abs_diff(&w.1) < 1e-4);
        }
        for h in &handles {
            h.stop();
        }
        for j in joins {
            j.join().unwrap();
        }
    }

    #[test]
    fn exchanged_attention_is_exact_for_unequal_chunks() {
        // Pair-balanced bounds: chunk lengths differ wildly; the exchange
        // runtime must still fold partials into the local result exactly.
        let hc = HeadCfg::new(2, 2, 8);
        let (p, n) = (2usize, 4usize);
        let slicing = Slicing::pair_balanced(64, n);
        let map = ExchangeMap::build_from(p, &slicing);
        let mut handles = Vec::new();
        let mut joins = Vec::new();
        for d in 0..p {
            let (h, j) = spawn_server(d, None);
            handles.push(h);
            joins.push(j);
        }
        let j = n - 1;
        let (q_start, q_len) = slicing.slice(j);
        let q = seeded_uniform(q_len as usize, 16, 700);
        let ks: Vec<Tensor> = (0..=j)
            .map(|c| seeded_uniform(slicing.len(c) as usize, 16, 701 + c as u64))
            .collect();
        let vs: Vec<Tensor> = (0..=j)
            .map(|c| seeded_uniform(slicing.len(c) as usize, 16, 750 + c as u64))
            .collect();
        let chunks: Vec<(&Tensor, &Tensor)> = ks.iter().zip(vs.iter()).collect();
        let offsets: Vec<usize> = (0..=j).map(|c| slicing.bounds[c] as usize).collect();

        let mut rt = ExchangeRt::new(0, &handles, &map);
        let got = rt.attn_forward(&q, &chunks, &offsets, hc, q_start as usize).unwrap();
        let want = attention::forward_chunked(&q, &chunks, &offsets, hc, q_start as usize);
        assert_eq!(got.o, want.o, "ragged exchange forward must be bit-exact");
        assert_eq!(got.lse, want.lse);

        let d_o = seeded_uniform(q_len as usize, 16, 799);
        let (dq_got, dkv_got) = rt
            .attn_backward(&q, &chunks, &offsets, &d_o, &got.o, &got.lse, hc, q_start as usize)
            .unwrap();
        let (dq_want, dkv_want) = attention::backward_chunked(
            &q, &chunks, &offsets, &d_o, &want.o, &want.lse, hc, q_start as usize,
        );
        assert_eq!(dq_got, dq_want, "ragged exchange backward must be bit-exact");
        for (g, w) in dkv_got.iter().zip(&dkv_want) {
            assert_eq!(g.0, w.0);
            assert_eq!(g.1, w.1);
        }
        for h in &handles {
            h.stop();
        }
        for j in joins {
            j.join().unwrap();
        }
    }

    #[test]
    fn vocab_parallel_loss_matches_monolithic() {
        let cfg = ExecConfig {
            stages: 4,
            vocab: 96,
            ..ExecConfig::small()
        };
        let shards = build_vocab_shards(&cfg);
        let mut handles = Vec::new();
        let mut joins = Vec::new();
        for (d, s) in shards.into_iter().enumerate() {
            let (h, j) = spawn_server(d, Some(s));
            handles.push(h);
            joins.push(j);
        }
        let rows = 12;
        let normed = seeded_uniform(rows, cfg.hidden(), 77);
        let targets = seeded_tokens(rows, cfg.vocab, 78);
        let vp = VocabParallel::new(&handles);
        let (loss, lse) = vp.loss_forward(&normed, &targets).unwrap();
        let d_hidden = vp.loss_backward(&normed, &targets, &lse, 1.0).unwrap();

        // Monolithic reference.
        let w = cfg.build_output();
        let logits = matmul(&normed, &w);
        let (ref_loss, d_logits) =
            slimpipe_tensor::crossentropy::forward_backward(&logits, &targets);
        let ref_d_hidden = matmul_nt(&d_logits, &w);
        assert!((loss - ref_loss).abs() < 1e-3, "{loss} vs {ref_loss}");
        assert!(d_hidden.max_abs_diff(&ref_d_hidden) < 1e-4);

        // Shard dW gathers into the monolithic dW.
        let ref_dw = matmul_tn(&normed, &d_logits);
        let mut dw = Tensor::zeros(cfg.hidden(), cfg.vocab);
        for h in &handles {
            h.stop();
        }
        for (i, j) in joins.into_iter().enumerate() {
            let shard = j.join().unwrap().unwrap();
            dw.set_cols(i * cfg.vocab / 4, &shard.grad);
        }
        assert!(dw.max_abs_diff(&ref_dw) < 1e-4);
    }

    #[test]
    fn dead_server_surfaces_as_structured_error_not_abort() {
        let (h, j) = spawn_server(2, None);
        h.submit(ServerJob::Crash).unwrap();
        assert!(j.join().unwrap().is_none(), "crashed server loses its shard");
        // Every subsequent submit fails with the device named.
        let err = h.submit(ServerJob::Stop).unwrap_err();
        assert_eq!(err, DeadServer(2));
    }
}
