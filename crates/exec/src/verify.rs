//! Equivalence harness: pipeline runs must reproduce the single-device
//! reference bit-for-bit up to f32 reassociation.
//!
//! This is the executor's load-bearing guarantee: uniform slicing, the
//! LIFO backward, the chunked KV cache, attention context exchange, and
//! vocabulary parallelism are all *exact* transformations of the
//! computation — the paper's schedule changes *when and where* math
//! happens, never *what* is computed.

use crate::train::RunResult;
use slimpipe_tensor::Tensor;

/// Worst relative deviation between two runs.
#[derive(Clone, Debug)]
pub struct Comparison {
    pub max_loss_diff: f64,
    pub worst_grad_rel: f32,
    pub worst_grad_name: String,
}

fn rel_diff(a: &Tensor, b: &Tensor) -> f32 {
    let scale = b
        .as_slice()
        .iter()
        .fold(0.0f32, |m, v| m.max(v.abs()))
        .max(1e-6);
    a.max_abs_diff(b) / scale
}

/// Compare `got` against the reference `want`.
pub fn compare(got: &RunResult, want: &RunResult) -> Comparison {
    assert_eq!(got.losses.len(), want.losses.len(), "iteration count differs");
    let max_loss_diff = got
        .losses
        .iter()
        .zip(&want.losses)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);

    let mut worst = 0.0f32;
    let mut worst_name = String::from("-");
    let mut check = |name: String, a: &Tensor, b: &Tensor| {
        let r = rel_diff(a, b);
        if r > worst {
            worst = r;
            worst_name = name;
        }
    };
    assert_eq!(got.layer_grads.len(), want.layer_grads.len(), "layer count differs");
    for (li, (g, w)) in got.layer_grads.iter().zip(&want.layer_grads).enumerate() {
        for ((name, a), (_, b)) in g.tensors().iter().zip(w.tensors().iter()) {
            check(format!("layer{li}.{name}"), a, b);
        }
    }
    check("embedding".into(), &got.embed_grad, &want.embed_grad);
    check("output".into(), &got.out_grad, &want.out_grad);

    Comparison { max_loss_diff, worst_grad_rel: worst, worst_grad_name: worst_name }
}

/// Panic unless `got` matches `want` within `tol` (relative for grads,
/// absolute for per-token mean losses).
pub fn assert_equivalent(got: &RunResult, want: &RunResult, tol: f32) {
    let c = compare(got, want);
    assert!(
        c.max_loss_diff < tol as f64,
        "loss diverged: {} (tol {tol})",
        c.max_loss_diff
    );
    assert!(
        c.worst_grad_rel < tol,
        "gradient diverged at {}: rel {} (tol {tol})",
        c.worst_grad_name,
        c.worst_grad_rel
    );
}

fn assert_bits(name: &str, a: &[f32], b: &[f32]) {
    assert_eq!(a.len(), b.len(), "{name}: length differs");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{name}[{i}]: bits differ ({x:?} vs {y:?})"
        );
    }
}

/// Panic unless `got` and `want` are **bit-identical**: every per-iteration
/// loss (f64) and every returned gradient element (f32) must match in its
/// exact bit pattern — no tolerance. This is the checkpoint/restore
/// guarantee: a resumed run is indistinguishable from the uninterrupted
/// one, which is only checkable at bit granularity (a tolerance would hide
/// a drifting restore path).
pub fn assert_bit_identical(got: &RunResult, want: &RunResult) {
    assert_eq!(got.losses.len(), want.losses.len(), "iteration count differs");
    for (i, (a, b)) in got.losses.iter().zip(&want.losses).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "loss[{i}] bits differ ({a:?} vs {b:?})");
    }
    assert_eq!(got.layer_grads.len(), want.layer_grads.len(), "layer count differs");
    for (li, (g, w)) in got.layer_grads.iter().zip(&want.layer_grads).enumerate() {
        for ((name, a), (_, b)) in g.tensors().iter().zip(w.tensors().iter()) {
            assert_bits(&format!("layer{li}.{name}"), a.as_slice(), b.as_slice());
        }
    }
    assert_bits("embedding", got.embed_grad.as_slice(), want.embed_grad.as_slice());
    assert_bits("output", got.out_grad.as_slice(), want.out_grad.as_slice());
    assert_bits("final_norm", &got.final_norm_grad, &want.final_norm_grad);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ExecConfig;
    use crate::schedule::PipelineKind;
    use crate::train::{run_pipeline, run_reference};

    /// The cornerstone test: SlimPipe (slicing + LIFO + chunked KV across
    /// two threads) reproduces the reference exactly.
    #[test]
    fn slimpipe_matches_reference() {
        let cfg = ExecConfig::small();
        let want = run_reference(&cfg, 2, 0.2);
        let got = run_pipeline(&cfg, PipelineKind::SlimPipe, 2, 0.2);
        assert_equivalent(&got, &want, 2e-3);
    }

    #[test]
    fn slimpipe_with_context_exchange_matches_reference() {
        let cfg = ExecConfig {
            stages: 2,
            slices: 8,
            exchange: true,
            ..ExecConfig::small()
        };
        let want = run_reference(&cfg, 1, 0.2);
        let got = run_pipeline(&cfg, PipelineKind::SlimPipe, 1, 0.2);
        assert_equivalent(&got, &want, 2e-3);
    }

    #[test]
    fn slimpipe_with_vocab_parallelism_matches_reference() {
        let cfg = ExecConfig {
            stages: 2,
            slices: 4,
            vocab_parallel: true,
            ..ExecConfig::small()
        };
        let want = run_reference(&cfg, 1, 0.2);
        let got = run_pipeline(&cfg, PipelineKind::SlimPipe, 1, 0.2);
        assert_equivalent(&got, &want, 2e-3);
    }

    #[test]
    fn everything_on_matches_reference() {
        // Exchange + vocabulary parallelism + multi-step SGD, four slices
        // per device's worth of pipeline.
        let cfg = ExecConfig {
            stages: 2,
            slices: 8,
            microbatches: 2,
            exchange: true,
            vocab_parallel: true,
            ..ExecConfig::small()
        };
        let want = run_reference(&cfg, 2, 0.2);
        let got = run_pipeline(&cfg, PipelineKind::SlimPipe, 2, 0.2);
        assert_equivalent(&got, &want, 3e-3);
    }

    #[test]
    fn classic_1f1b_matches_reference() {
        let cfg = ExecConfig {
            slices: 1,
            microbatches: 4,
            ..ExecConfig::small()
        };
        let want = run_reference(&cfg, 1, 0.2);
        let got = run_pipeline(&cfg, PipelineKind::OneFOneB, 1, 0.2);
        assert_equivalent(&got, &want, 2e-3);
    }

    #[test]
    fn gpipe_and_terapipe_match_reference() {
        let base = ExecConfig::small();
        let g = ExecConfig { slices: 1, microbatches: 3, ..base.clone() };
        assert_equivalent(
            &run_pipeline(&g, PipelineKind::GPipe, 1, 0.2),
            &run_reference(&g, 1, 0.2),
            2e-3,
        );
        let t = ExecConfig { slices: 4, microbatches: 2, ..base.clone() };
        assert_equivalent(
            &run_pipeline(&t, PipelineKind::TeraPipe, 1, 0.2),
            &run_reference(&t, 1, 0.2),
            2e-3,
        );
    }

    /// Figure 1 in the executor: SlimPipe's per-device activation peak is
    /// far below classic 1F1B's on the same workload.
    #[test]
    fn slimpipe_peak_memory_beats_1f1b() {
        let slim_cfg = ExecConfig {
            stages: 2,
            slices: 8,
            microbatches: 4,
            ..ExecConfig::small()
        };
        let classic_cfg = ExecConfig { slices: 1, ..slim_cfg.clone() };
        let slim = run_pipeline(&slim_cfg, PipelineKind::SlimPipe, 1, 0.1);
        let classic = run_pipeline(&classic_cfg, PipelineKind::OneFOneB, 1, 0.1);
        // Eq. 1: (n + 2(p-1))/n / p = (8+2)/8/2 = 0.625 of classic's
        // p-microbatch accumulation (plus the head stash on the last
        // device, which slicing also shrinks).
        let ratio = slim.peak_act_bytes[0] as f64 / classic.peak_act_bytes[0] as f64;
        assert!(ratio < 0.75, "device-0 peak ratio {ratio}");
    }

    /// TeraPipe accumulates every slice of every microbatch; SlimPipe holds
    /// roughly one microbatch's worth.
    #[test]
    fn slimpipe_peak_memory_beats_terapipe() {
        let cfg = ExecConfig {
            stages: 2,
            slices: 8,
            microbatches: 4,
            ..ExecConfig::small()
        };
        let slim = run_pipeline(&cfg, PipelineKind::SlimPipe, 1, 0.1);
        let tera = run_pipeline(&cfg, PipelineKind::TeraPipe, 1, 0.1);
        let ratio = slim.peak_act_bytes[0] as f64 / tera.peak_act_bytes[0] as f64;
        assert!(ratio < 0.5, "device-0 peak ratio vs TeraPipe {ratio}");
    }
}
