//! One transformer layer with a chunked KV cache and slice-wise
//! forward/backward.
//!
//! The forward of slice `j` appends its keys/values as chunk `j` of the
//! layer's KV cache (§5 *Chunked KV Cache*: "we store them in slice-sized
//! chunks") and attends chunks `0..=j` by online softmax. Chunks are
//! token *ranges*, not fixed-length blocks: every entry point takes the
//! slice's global `q_offset` and the cache records each chunk's own
//! offset (both derived from the stage's per-microbatch `Slicing`
//! bounds), so non-uniform and ragged partitions run through the same
//! code path as uniform slicing. The backward of
//! slice `j` produces `dK/dV` contributions for every chunk `c ≤ j`; the
//! contributions for `c < j` are parked in a [`DkvAccum`] until the LIFO
//! order reaches slice `c`, whose own backward drains the accumulator into
//! its QKV-projection backward and releases both the KV chunk and the
//! accumulator slot.
//!
//! RMSNorm outputs and the SwiGLU product are recomputed in the backward
//! pass (the paper's §5 activation savings) — the stash holds exactly the
//! components `slimpipe_model`'s `ActBreakdown` documents.
//!
//! Steady-state compute path: every weight is a [`PackedWeight`] — packed
//! once at build into the GEMM's panel layout for both orientations and
//! kept in sync by in-place optimizer updates, so none of the `S × M`
//! slice GEMMs of a training step re-packs anything
//! (`slimpipe_tensor::matmul::gemm_packs_per_step` reads zero). The
//! RMSNorm scaling, the SwiGLU product, and the residual adds are fused
//! into the GEMMs as pack prologues / writeback epilogues with *exactly*
//! the standalone kernels' elementwise arithmetic, so the fused layer is
//! bit-identical to the separate-pass composition (property-tested in
//! `tests/conformance.rs` and the tensor crate).
//!
//! Buffer discipline: the forward takes its input *by value* and stashes it
//! (no clones anywhere on the residual stream), the backward consumes its
//! upstream gradient and the slice stash, and every transient — recomputed
//! norms, SwiGLU products, per-chunk `dK`/`dV`, drained accumulator slots,
//! released KV chunks — is returned to the `slimpipe_tensor::pool`. After
//! one warm-up iteration a training step performs zero kernel-path heap
//! allocations (asserted in `tests/pool_steady_state.rs`).
//!
//! Determinism of the dKV accumulation path: the kernels below
//! `attn_backward` produce per-chunk `dK`/`dV` whose bits do not depend on
//! the worker-pool thread count (fixed-order partial reduction inside
//! `backward_chunk`), and everything *above* the kernels — the [`DkvAccum`]
//! slot folds, the diagonal-chunk combination, the `add_assign` of `dQ`
//! across chunks — runs on the stage thread in schedule order (LIFO over
//! slices, ascending over chunks). A layer backward is therefore
//! bit-identical for every `RAYON_NUM_THREADS`, which is what the
//! executor-level determinism claims in `tests/conformance.rs` rest on.

use crate::fault::ExecError;
use crate::model::ExecConfig;
use slimpipe_tensor::attention::{AttnPartial, HeadCfg};
use slimpipe_tensor::init::seeded_xavier;
use slimpipe_tensor::matmul::{matmul_fused, matmul_fused_acc, matmul_tn_acc};
use slimpipe_tensor::{attention, pool, rmsnorm, Epilogue, PackedWeight, Prologue, Tensor};

/// Weights of one layer, each packed once for both GEMM orientations.
#[derive(Clone, Debug)]
pub struct LayerParams {
    pub wq: PackedWeight,
    pub wk: PackedWeight,
    pub wv: PackedWeight,
    pub wo: PackedWeight,
    pub w_gate: PackedWeight,
    pub w_up: PackedWeight,
    pub w_down: PackedWeight,
    pub norm1: Vec<f32>,
    pub norm2: Vec<f32>,
}

impl LayerParams {
    /// Deterministic build of global layer `layer` (packs every weight —
    /// the only pack site in a training run).
    pub fn build(cfg: &ExecConfig, layer: usize) -> Self {
        let (h, hkv, f) = (cfg.hidden(), cfg.kv_hidden(), cfg.ffn);
        let s = |w: u64| cfg.param_seed(layer, w);
        Self {
            wq: PackedWeight::new(seeded_xavier(h, h, s(1))),
            wk: PackedWeight::new(seeded_xavier(h, hkv, s(2))),
            wv: PackedWeight::new(seeded_xavier(h, hkv, s(3))),
            wo: PackedWeight::new(seeded_xavier(h, h, s(4))),
            w_gate: PackedWeight::new(seeded_xavier(h, f, s(5))),
            w_up: PackedWeight::new(seeded_xavier(h, f, s(6))),
            w_down: PackedWeight::new(seeded_xavier(f, h, s(7))),
            norm1: vec![1.0; h],
            norm2: vec![1.0; h],
        }
    }

    /// Apply one SGD step and clear nothing (caller owns grads). Updates
    /// land in the packed forms in place — no re-packing.
    pub fn sgd_step(&mut self, g: &LayerGrads, lr: f32) {
        self.wq.axpy(-lr, &g.wq);
        self.wk.axpy(-lr, &g.wk);
        self.wv.axpy(-lr, &g.wv);
        self.wo.axpy(-lr, &g.wo);
        self.w_gate.axpy(-lr, &g.w_gate);
        self.w_up.axpy(-lr, &g.w_up);
        self.w_down.axpy(-lr, &g.w_down);
        for (p, d) in self.norm1.iter_mut().zip(&g.norm1) {
            *p -= lr * d;
        }
        for (p, d) in self.norm2.iter_mut().zip(&g.norm2) {
            *p -= lr * d;
        }
    }
}

/// Gradient accumulators matching [`LayerParams`].
#[derive(Clone, Debug)]
pub struct LayerGrads {
    pub wq: Tensor,
    pub wk: Tensor,
    pub wv: Tensor,
    pub wo: Tensor,
    pub w_gate: Tensor,
    pub w_up: Tensor,
    pub w_down: Tensor,
    pub norm1: Vec<f32>,
    pub norm2: Vec<f32>,
}

impl LayerGrads {
    pub fn zeros(cfg: &ExecConfig) -> Self {
        let (h, hkv, f) = (cfg.hidden(), cfg.kv_hidden(), cfg.ffn);
        Self {
            wq: Tensor::zeros(h, h),
            wk: Tensor::zeros(h, hkv),
            wv: Tensor::zeros(h, hkv),
            wo: Tensor::zeros(h, h),
            w_gate: Tensor::zeros(h, f),
            w_up: Tensor::zeros(h, f),
            w_down: Tensor::zeros(f, h),
            norm1: vec![0.0; h],
            norm2: vec![0.0; h],
        }
    }

    /// Zero every accumulator in place — no reallocation, so the optimizer
    /// step stays off the allocator in steady state. `fill`, not
    /// `scale(0.0)`: a NaN/Inf that entered an accumulator must not
    /// survive the reset.
    pub fn reset(&mut self) {
        self.wq.fill(0.0);
        self.wk.fill(0.0);
        self.wv.fill(0.0);
        self.wo.fill(0.0);
        self.w_gate.fill(0.0);
        self.w_up.fill(0.0);
        self.w_down.fill(0.0);
        self.norm1.fill(0.0);
        self.norm2.fill(0.0);
    }

    /// Rescale every accumulator in place (skip-and-renormalize).
    pub fn scale(&mut self, factor: f32) {
        self.wq.scale(factor);
        self.wk.scale(factor);
        self.wv.scale(factor);
        self.wo.scale(factor);
        self.w_gate.scale(factor);
        self.w_up.scale(factor);
        self.w_down.scale(factor);
        for v in self.norm1.iter_mut().chain(self.norm2.iter_mut()) {
            *v *= factor;
        }
    }

    /// Flat view for fingerprinting / comparisons.
    pub fn tensors(&self) -> Vec<(&'static str, &Tensor)> {
        vec![
            ("wq", &self.wq),
            ("wk", &self.wk),
            ("wv", &self.wv),
            ("wo", &self.wo),
            ("w_gate", &self.w_gate),
            ("w_up", &self.w_up),
            ("w_down", &self.w_down),
        ]
    }
}

/// Chunked KV cache of one layer for one microbatch.
#[derive(Default)]
pub struct KvCache {
    /// `chunks[c] = Some((k, v))` while slice `c` is in flight.
    pub chunks: Vec<Option<(Tensor, Tensor)>>,
    /// Global token offset of each chunk.
    pub offsets: Vec<usize>,
}

impl KvCache {
    /// Append slice `j`'s chunk (must arrive in order).
    pub fn push(&mut self, k: Tensor, v: Tensor, offset: usize) {
        self.offsets.push(offset);
        self.chunks.push(Some((k, v)));
    }

    /// Bytes resident.
    pub fn bytes(&self) -> u64 {
        self.chunks
            .iter()
            .flatten()
            .map(|(k, v)| k.bytes() + v.bytes())
            .sum()
    }

    /// Release chunk `c` (after slice `c`'s backward), returning its
    /// buffers to the pool. Returns freed bytes. Once every chunk is gone
    /// the cache resets so the next microbatch reuses the slots — §5:
    /// "These chunks will be precisely reused between two adjacent
    /// microbatches in the pipeline."
    pub fn release(&mut self, c: usize) -> u64 {
        let freed = match self.chunks[c].take() {
            Some((k, v)) => {
                let b = k.bytes() + v.bytes();
                k.recycle();
                v.recycle();
                b
            }
            None => 0,
        };
        if self.chunks.iter().all(Option::is_none) {
            self.chunks.clear();
            self.offsets.clear();
        }
        freed
    }

    /// Visible chunks for a query at slice `j` (chunks `0..=j`).
    pub fn visible(&self, j: usize) -> (Vec<(&Tensor, &Tensor)>, Vec<usize>) {
        let mut ch = Vec::with_capacity(j + 1);
        let mut off = Vec::with_capacity(j + 1);
        for c in 0..=j {
            let (k, v) = self.chunks[c]
                .as_ref()
                .expect("KV chunk released before its last reader");
            ch.push((k, v));
            off.push(self.offsets[c]);
        }
        (ch, off)
    }
}

/// Deferred dK/dV contributions per chunk (from later slices' backwards).
#[derive(Default)]
pub struct DkvAccum {
    pub slots: Vec<Option<(Tensor, Tensor)>>,
}

impl DkvAccum {
    pub fn ensure(&mut self, n: usize) {
        if self.slots.len() < n {
            self.slots.resize_with(n, || None);
        }
    }

    /// Fold a later slice's contribution into chunk `c`'s slot, consuming
    /// the incoming tensors (recycled when the slot already exists).
    pub fn add(&mut self, c: usize, dk: Tensor, dv: Tensor) {
        match &mut self.slots[c] {
            Some((ak, av)) => {
                ak.add_assign_recycle(dk);
                av.add_assign_recycle(dv);
            }
            slot @ None => *slot = Some((dk, dv)),
        }
    }

    /// Drain chunk `c`'s accumulated gradients (may be absent when no later
    /// slice existed).
    pub fn take(&mut self, c: usize) -> Option<(Tensor, Tensor)> {
        self.slots[c].take()
    }

    pub fn bytes(&self) -> u64 {
        self.slots
            .iter()
            .flatten()
            .map(|(k, v)| k.bytes() + v.bytes())
            .sum()
    }
}

/// Stash of one slice's forward pass through one layer.
pub struct SliceCache {
    pub x_in: Tensor,
    pub q: Tensor,
    pub attn_out: Tensor,
    pub lse: Vec<f32>,
    pub resid_mid: Tensor,
    pub gate: Tensor,
    pub up: Tensor,
}

impl SliceCache {
    pub fn bytes(&self) -> u64 {
        self.x_in.bytes()
            + self.q.bytes()
            + self.attn_out.bytes()
            + (self.lse.len() * 4) as u64
            + self.resid_mid.bytes()
            + self.gate.bytes()
            + self.up.bytes()
    }

    /// Return every stashed buffer to the pool (after the backward consumed
    /// the stash).
    pub fn recycle(self) {
        self.x_in.recycle();
        self.q.recycle();
        self.attn_out.recycle();
        pool::recycle(self.lse);
        self.resid_mid.recycle();
        self.gate.recycle();
        self.up.recycle();
    }
}

/// How attention chunk work is executed (locally, or partly shipped to
/// other devices by context exchange). The closure receives the chunk task
/// list and must return the merged partial — see `crate::comm`. Fallible:
/// the exchange runtime can fail a rendezvous (dead server, exhausted
/// retries) and reports it as a structured [`ExecError`] instead of
/// panicking, so a lost device drains the pipeline rather than aborting
/// the process.
pub trait AttnExecutor {
    /// Forward: attention of `q` against visible chunks; returns merged
    /// output + lse.
    fn attn_forward(
        &mut self,
        q: &Tensor,
        chunks: &[(&Tensor, &Tensor)],
        offsets: &[usize],
        cfg: HeadCfg,
        q_offset: usize,
    ) -> Result<AttnPartial, ExecError>;

    /// Backward: per-chunk dK/dV plus the summed dQ.
    #[allow(clippy::too_many_arguments)]
    fn attn_backward(
        &mut self,
        q: &Tensor,
        chunks: &[(&Tensor, &Tensor)],
        offsets: &[usize],
        d_o: &Tensor,
        o: &Tensor,
        lse: &[f32],
        cfg: HeadCfg,
        q_offset: usize,
    ) -> Result<(Tensor, Vec<(Tensor, Tensor)>), ExecError>;
}

/// Purely local execution (infallible — errors only arise from exchange).
pub struct LocalAttn;

impl AttnExecutor for LocalAttn {
    fn attn_forward(
        &mut self,
        q: &Tensor,
        chunks: &[(&Tensor, &Tensor)],
        offsets: &[usize],
        cfg: HeadCfg,
        q_offset: usize,
    ) -> Result<AttnPartial, ExecError> {
        Ok(attention::forward_chunked(q, chunks, offsets, cfg, q_offset))
    }

    fn attn_backward(
        &mut self,
        q: &Tensor,
        chunks: &[(&Tensor, &Tensor)],
        offsets: &[usize],
        d_o: &Tensor,
        o: &Tensor,
        lse: &[f32],
        cfg: HeadCfg,
        q_offset: usize,
    ) -> Result<(Tensor, Vec<(Tensor, Tensor)>), ExecError> {
        Ok(attention::backward_chunked(q, chunks, offsets, d_o, o, lse, cfg, q_offset))
    }
}

/// Forward one slice through one layer. Consumes `x` (it becomes the
/// stash's residual input), appends to `kv`, and returns `(output, stash)`.
///
/// Fully fused: the RMSNorm scalings ride the QKV / gate / up GEMM packs
/// (only the per-row inverse RMS is computed separately, once), the SwiGLU
/// product rides the down-projection pack, and both residual adds are GEMM
/// epilogues — no normalised, activated, or summed tensor is ever
/// materialised.
pub fn layer_forward(
    p: &LayerParams,
    cfg: HeadCfg,
    x: Tensor,
    kv: &mut KvCache,
    slice: usize,
    q_offset: usize,
    attn: &mut dyn AttnExecutor,
) -> Result<(Tensor, SliceCache), ExecError> {
    let inv1 = rmsnorm::inv_rms(&x);
    let pro1 = Prologue::NormRows { inv: &inv1, gain: &p.norm1 };
    let q = matmul_fused(&x, p.wq.nn(), pro1, Epilogue::None);
    let k = matmul_fused(&x, p.wk.nn(), pro1, Epilogue::None);
    let v = matmul_fused(&x, p.wv.nn(), pro1, Epilogue::None);
    pool::recycle(inv1);
    kv.push(k, v, q_offset);
    let part = {
        let (chunks, offsets) = kv.visible(slice);
        attn.attn_forward(&q, &chunks, &offsets, cfg, q_offset)?
    };
    // resid_mid = x + attn_proj, the add fused into the projection's
    // writeback.
    let resid_mid = matmul_fused(&part.o, p.wo.nn(), Prologue::None, Epilogue::Add(&x));
    let inv2 = rmsnorm::inv_rms(&resid_mid);
    let pro2 = Prologue::NormRows { inv: &inv2, gain: &p.norm2 };
    let gate = matmul_fused(&resid_mid, p.w_gate.nn(), pro2, Epilogue::None);
    let up = matmul_fused(&resid_mid, p.w_up.nn(), pro2, Epilogue::None);
    pool::recycle(inv2);
    // y = silu(gate)∘up · W_down + resid_mid: the SwiGLU product is the
    // down-projection's pack prologue, the residual its epilogue.
    let y = matmul_fused(
        &gate,
        p.w_down.nn(),
        Prologue::SwigluRows { up: &up },
        Epilogue::Add(&resid_mid),
    );
    let cache = SliceCache {
        x_in: x,
        q,
        attn_out: part.o,
        lse: part.lse,
        resid_mid,
        gate,
        up,
    };
    Ok((y, cache))
}

/// Backward one slice through one layer (must run in LIFO slice order).
/// Consumes the upstream gradient and the slice stash; returns `d_x`.
#[allow(clippy::too_many_arguments)]
pub fn layer_backward(
    p: &LayerParams,
    g: &mut LayerGrads,
    cfg: HeadCfg,
    cache: SliceCache,
    d_y: Tensor,
    kv: &mut KvCache,
    dkv: &mut DkvAccum,
    slice: usize,
    q_offset: usize,
    attn: &mut dyn AttnExecutor,
) -> Result<Tensor, ExecError> {
    dkv.ensure(slice + 1);
    // ---- MLP path (normed2, the SwiGLU product, and both SwiGLU backward
    // maps are recomputed inside the GEMM packs — `d_gate`/`d_up` are never
    // materialised) ----
    let inv2 = rmsnorm::inv_rms(&cache.resid_mid);
    matmul_tn_acc(
        &mut g.w_down,
        &cache.gate,
        &d_y,
        Prologue::SwigluCols { up: &cache.up },
        Prologue::None,
    );
    let d_act = matmul_fused(&d_y, p.w_down.nt(), Prologue::None, Epilogue::None);
    let pro_n2 = Prologue::NormCols { inv: &inv2, gain: &p.norm2 };
    let pro_dg = Prologue::DSwigluGateRows { gate: &cache.gate, up: &cache.up };
    let pro_du = Prologue::DSwigluUpRows { gate: &cache.gate };
    matmul_tn_acc(&mut g.w_gate, &cache.resid_mid, &d_act, pro_n2, pro_dg);
    matmul_tn_acc(&mut g.w_up, &cache.resid_mid, &d_act, pro_n2, pro_du);
    pool::recycle(inv2);
    let mut d_normed2 = matmul_fused(&d_act, p.w_gate.nt(), pro_dg, Epilogue::None);
    matmul_fused_acc(&mut d_normed2, &d_act, p.w_up.nt(), pro_du);
    d_act.recycle();
    let (d_resid_from_norm, d_norm2) = rmsnorm::backward(&cache.resid_mid, &p.norm2, &d_normed2);
    d_normed2.recycle();
    for (a, b) in g.norm2.iter_mut().zip(&d_norm2) {
        *a += b;
    }
    pool::recycle(d_norm2);
    let mut d_resid_mid = d_y;
    d_resid_mid.add_assign_recycle(d_resid_from_norm);

    // ---- attention output projection ----
    matmul_tn_acc(&mut g.wo, &cache.attn_out, &d_resid_mid, Prologue::None, Prologue::None);
    let d_o = matmul_fused(&d_resid_mid, p.wo.nt(), Prologue::None, Epilogue::None);

    // ---- chunked attention backward ----
    let (d_q, per_chunk) = {
        let (chunks, offsets) = kv.visible(slice);
        attn.attn_backward(
            &cache.q,
            &chunks,
            &offsets,
            &d_o,
            &cache.attn_out,
            &cache.lse,
            cfg,
            q_offset,
        )?
    };
    d_o.recycle();
    // Park contributions for earlier chunks; combine our own (diagonal)
    // chunk with what later slices already deposited.
    let mut d_k_own = None;
    let mut d_v_own = None;
    for (c, (dk, dv)) in per_chunk.into_iter().enumerate() {
        if c == slice {
            d_k_own = Some(dk);
            d_v_own = Some(dv);
        } else {
            dkv.add(c, dk, dv);
        }
    }
    let (mut d_k, mut d_v) = (d_k_own.expect("diagonal chunk"), d_v_own.expect("diagonal"));
    if let Some((ak, av)) = dkv.take(slice) {
        d_k.add_assign_recycle(ak);
        d_v.add_assign_recycle(av);
    }
    kv.release(slice);

    // ---- QKV projections (normed1 recomputed from the stashed input,
    // inside the dW GEMM packs) ----
    let inv1 = rmsnorm::inv_rms(&cache.x_in);
    let pro_n1 = Prologue::NormCols { inv: &inv1, gain: &p.norm1 };
    matmul_tn_acc(&mut g.wq, &cache.x_in, &d_q, pro_n1, Prologue::None);
    matmul_tn_acc(&mut g.wk, &cache.x_in, &d_k, pro_n1, Prologue::None);
    matmul_tn_acc(&mut g.wv, &cache.x_in, &d_v, pro_n1, Prologue::None);
    pool::recycle(inv1);
    let mut d_normed1 = matmul_fused(&d_q, p.wq.nt(), Prologue::None, Epilogue::None);
    matmul_fused_acc(&mut d_normed1, &d_k, p.wk.nt(), Prologue::None);
    matmul_fused_acc(&mut d_normed1, &d_v, p.wv.nt(), Prologue::None);
    d_q.recycle();
    d_k.recycle();
    d_v.recycle();
    let (d_x_from_norm, d_norm1) = rmsnorm::backward(&cache.x_in, &p.norm1, &d_normed1);
    d_normed1.recycle();
    for (a, b) in g.norm1.iter_mut().zip(&d_norm1) {
        *a += b;
    }
    pool::recycle(d_norm1);
    let mut d_x = d_resid_mid;
    d_x.add_assign_recycle(d_x_from_norm);
    cache.recycle();
    Ok(d_x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimpipe_tensor::init::seeded_uniform;

    /// Sliced forward+backward must equal the unsliced (n=1) run.
    #[test]
    fn sliced_layer_matches_monolithic() {
        let cfg = ExecConfig {
            slices: 4,
            ..ExecConfig::small()
        };
        let hc = cfg.head_cfg();
        let p = LayerParams::build(&cfg, 0);
        let x = seeded_uniform(cfg.seq, cfg.hidden(), 100);
        let d_y = seeded_uniform(cfg.seq, cfg.hidden(), 101);

        // Monolithic.
        let mut kv1 = KvCache::default();
        let (y_ref, cache_ref) =
            layer_forward(&p, hc, x.clone(), &mut kv1, 0, 0, &mut LocalAttn).unwrap();
        let mut g_ref = LayerGrads::zeros(&cfg);
        let mut dkv1 = DkvAccum::default();
        let dx_ref = layer_backward(
            &p, &mut g_ref, hc, cache_ref, d_y.clone(), &mut kv1, &mut dkv1, 0, 0,
            &mut LocalAttn,
        )
        .unwrap();

        // Sliced: forward in order, backward LIFO.
        let l = cfg.slice_len();
        let mut kv = KvCache::default();
        let mut caches = Vec::new();
        let mut y_cat = Tensor::zeros(cfg.seq, cfg.hidden());
        for j in 0..cfg.slices {
            let xs = x.rows_slice(j * l, l);
            let (y, c) = layer_forward(&p, hc, xs, &mut kv, j, j * l, &mut LocalAttn).unwrap();
            y_cat.set_rows(j * l, &y);
            caches.push(c);
        }
        assert!(y_cat.max_abs_diff(&y_ref) < 1e-4, "forward mismatch");

        let mut g = LayerGrads::zeros(&cfg);
        let mut dkv = DkvAccum::default();
        dkv.ensure(cfg.slices);
        let mut dx_cat = Tensor::zeros(cfg.seq, cfg.hidden());
        for j in (0..cfg.slices).rev() {
            let dys = d_y.rows_slice(j * l, l);
            let cache = caches.pop().expect("LIFO stash");
            let dx = layer_backward(
                &p, &mut g, hc, cache, dys, &mut kv, &mut dkv, j, j * l,
                &mut LocalAttn,
            )
            .unwrap();
            dx_cat.set_rows(j * l, &dx);
        }
        assert!(dx_cat.max_abs_diff(&dx_ref) < 1e-3, "dx mismatch");
        for ((name, a), (_, b)) in g.tensors().iter().zip(g_ref.tensors().iter()) {
            assert!(a.max_abs_diff(b) < 1e-3, "grad {name} mismatch");
        }
    }

    /// The whole sliced layer forward + LIFO backward — including the
    /// DkvAccum folds — must be bit-identical across forced pool widths.
    /// Sized past the kernels' parallel thresholds so the widths really
    /// diverge in execution: per-chunk attention work is
    /// 4 heads × 128 × 128 × 8 = 2^19 ≥ PAR_ATTN_WORK, with two q-blocks
    /// per chunk, so the MQA backward fans out over the pool at width 4.
    #[test]
    fn sliced_layer_is_bit_deterministic_across_thread_counts() {
        let cfg = ExecConfig {
            heads: 4,
            kv_heads: 1, // MQA: the case the (group, q-block) split exists for
            seq: 256,
            slices: 2,
            ..ExecConfig::small()
        };
        let hc = cfg.head_cfg();
        let p = LayerParams::build(&cfg, 0);
        let x = seeded_uniform(cfg.seq, cfg.hidden(), 200);
        let d_y = seeded_uniform(cfg.seq, cfg.hidden(), 201);
        let l = cfg.slice_len();

        let run = || {
            let mut kv = KvCache::default();
            let mut caches = Vec::new();
            for j in 0..cfg.slices {
                let (_, c) =
                    layer_forward(&p, hc, x.rows_slice(j * l, l), &mut kv, j, j * l, &mut LocalAttn)
                        .unwrap();
                caches.push(c);
            }
            let mut g = LayerGrads::zeros(&cfg);
            let mut dkv = DkvAccum::default();
            dkv.ensure(cfg.slices);
            let mut dx_cat = Tensor::zeros(cfg.seq, cfg.hidden());
            for j in (0..cfg.slices).rev() {
                let dys = d_y.rows_slice(j * l, l);
                let cache = caches.pop().expect("LIFO stash");
                let dx = layer_backward(
                    &p, &mut g, hc, cache, dys, &mut kv, &mut dkv, j, j * l, &mut LocalAttn,
                )
                .unwrap();
                dx_cat.set_rows(j * l, &dx);
            }
            (dx_cat, g)
        };
        let (dx1, g1) = rayon::with_num_threads(1, run);
        let (dx4, g4) = rayon::with_num_threads(4, run);
        assert_eq!(dx1, dx4, "dX must not depend on the pool width");
        for ((name, a), (_, b)) in g1.tensors().iter().zip(g4.tensors().iter()) {
            assert_eq!(a.max_abs_diff(b), 0.0, "grad {name} differs across widths");
        }
    }

    #[test]
    fn kv_chunks_are_released_by_lifo_backward() {
        let cfg = ExecConfig::small();
        let hc = cfg.head_cfg();
        let p = LayerParams::build(&cfg, 0);
        let l = cfg.slice_len();
        let x = seeded_uniform(cfg.seq, cfg.hidden(), 102);
        let mut kv = KvCache::default();
        let mut caches = Vec::new();
        for j in 0..cfg.slices {
            let xs = x.rows_slice(j * l, l);
            let (_, c) = layer_forward(&p, hc, xs, &mut kv, j, j * l, &mut LocalAttn).unwrap();
            caches.push(c);
        }
        let full = kv.bytes();
        assert!(full > 0);
        let mut g = LayerGrads::zeros(&cfg);
        let mut dkv = DkvAccum::default();
        dkv.ensure(cfg.slices);
        for j in (0..cfg.slices).rev() {
            let d_y = seeded_uniform(l, cfg.hidden(), 103);
            let cache = caches.pop().expect("LIFO stash");
            layer_backward(
                &p, &mut g, hc, cache, d_y, &mut kv, &mut dkv, j, j * l,
                &mut LocalAttn,
            )
            .unwrap();
            // Chunk j gone; chunks 0..j still resident.
            assert_eq!(kv.bytes(), full * j as u64 / cfg.slices as u64);
        }
        assert_eq!(kv.bytes(), 0);
        assert_eq!(dkv.bytes(), 0, "accumulators fully drained");
    }

    #[test]
    #[should_panic(expected = "released before its last reader")]
    fn reading_a_released_chunk_panics() {
        let mut kv = KvCache::default();
        kv.push(Tensor::zeros(2, 4), Tensor::zeros(2, 4), 0);
        kv.push(Tensor::zeros(2, 4), Tensor::zeros(2, 4), 2);
        kv.release(0);
        let _ = kv.visible(1);
    }

    #[test]
    fn sgd_step_moves_parameters() {
        let cfg = ExecConfig::small();
        let mut p = LayerParams::build(&cfg, 0);
        let before = p.wq.tensor().clone();
        let mut g = LayerGrads::zeros(&cfg);
        *g.wq.at_mut(0, 0) = 1.0;
        p.sgd_step(&g, 0.1);
        assert!((p.wq.tensor().at(0, 0) - (before.at(0, 0) - 0.1)).abs() < 1e-6);
        assert_eq!(p.wq.tensor().at(1, 1), before.at(1, 1));
    }

    #[test]
    fn grads_reset_in_place() {
        let cfg = ExecConfig::small();
        let mut g = LayerGrads::zeros(&cfg);
        *g.wq.at_mut(0, 0) = 3.0;
        g.norm1[1] = 2.0;
        g.reset();
        assert_eq!(g.wq.sq_norm(), 0.0);
        assert!(g.norm1.iter().all(|&x| x == 0.0));
    }
}
