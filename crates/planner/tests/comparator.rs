//! Plan-vs-reality: a machine-local calibration, a traced executor run,
//! and the comparator lining the two up unit by unit. The acceptance bar
//! is the closed loop's existing envelope — measured makespan within 2×
//! of the calibrated simulation in either direction.

use slimpipe_exec::schedule::PipelineKind;
use slimpipe_exec::train::try_run_pipeline_traced;
use slimpipe_exec::{ExecConfig, TraceSession};
use slimpipe_planner::{calibrate, compare_run, CalibrationOpts};
use slimpipe_sched::PassKind;

fn workload() -> ExecConfig {
    ExecConfig { stages: 2, microbatches: 2, seq: 64, ..ExecConfig::small() }
}

/// The full loop: calibrate on this machine (a committed profile would
/// compare another host's constants against this one's wall clock), run
/// traced, compare. Per-unit rows must cover every scheduled op, and the
/// makespan prediction must hold the 2× closed-loop envelope.
///
/// The envelope is a wall-clock property, and the test shares a noisy
/// (often 1-core) host with the rest of the workspace suite, so the
/// calibrate→measure→compare attempt retries a few times — calibration
/// and measurement run back to back within one attempt, so a quiet
/// scheduling window satisfies the envelope. The *structural* contracts
/// (row coverage, finite errors, sane ranges) are asserted on every
/// attempt, retried or not.
#[test]
fn measured_run_matches_the_calibrated_prediction() {
    let cfg = workload();
    let scheduled: usize = {
        let counts: Vec<usize> = (0..cfg.microbatches).map(|mb| cfg.slices_of(mb)).collect();
        let sched = slimpipe_core::schedule::generate_var(cfg.stages, &counts).unwrap();
        sched.ops.iter().map(Vec::len).sum()
    };

    const ATTEMPTS: usize = 5;
    let mut last_ratio = f64::NAN;
    for attempt in 0..ATTEMPTS {
        let profile = calibrate(&cfg, &CalibrationOpts::default());
        let trace = TraceSession::new();
        // Several iterations: the comparator reads the last one, past the
        // first iteration's pack/pool warmup.
        try_run_pipeline_traced(&cfg, PipelineKind::SlimPipe, 4, 0.1, &trace).expect("clean run");
        let cmp = compare_run(&cfg, &profile, &trace.report()).expect("comparable trace");

        assert_eq!(cmp.units.len(), scheduled, "one comparison row per scheduled op");
        assert!(cmp.iterations_measured >= 4, "all iterations visible in the trace");
        for u in &cmp.units {
            assert!(u.measured_s >= 0.0 && u.predicted_s > 0.0, "degenerate unit row: {u:?}");
            assert!(matches!(u.op, PassKind::Forward | PassKind::Backward));
        }
        assert!(cmp.mean_abs_unit_error.is_finite());
        assert!((0.0..=1.0).contains(&cmp.ov_estimate));
        assert!((0.0..1.0).contains(&cmp.measured_bubble));
        // The Display form is the trace_view / triage surface — smoke it.
        let shown = format!("{cmp}");
        assert!(shown.contains("makespan") && shown.contains("ov"));

        last_ratio = cmp.makespan_ratio;
        if (0.5..=2.0).contains(&cmp.makespan_ratio) {
            return;
        }
        eprintln!(
            "attempt {attempt}: measured {:.6}s vs predicted {:.6}s (ratio {:.3}) left the \
             2x envelope — host noise, retrying",
            cmp.measured_makespan_s, cmp.predicted_makespan_s, cmp.makespan_ratio
        );
    }
    panic!("all {ATTEMPTS} attempts left the 2x envelope (last ratio {last_ratio:.3})");
}

/// A shape-mismatched profile is refused up front (the simulator would
/// assert), and an untraced report is a structured error, not a panic.
#[test]
fn comparator_rejects_mismatched_inputs() {
    let cfg = workload();
    let profile = calibrate(&cfg, &CalibrationOpts::default());
    let other = ExecConfig { ffn: cfg.ffn * 2, ..cfg.clone() };
    let empty = slimpipe_exec::obs::TraceReport::default();
    assert!(compare_run(&other, &profile, &empty).unwrap_err().contains("shape"));
    assert!(compare_run(&cfg, &profile, &empty).unwrap_err().contains("stage 0"));
}
