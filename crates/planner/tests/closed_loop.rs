//! The closed loop the planner exists for: `plan(workload, profile,
//! mem_cap) → ExecConfig → the real executor runs it` — verified against
//! the single-device reference, bit-reproducible across worker-pool
//! widths, bit-identical with context exchange on/off, and with the
//! plan's predictions checked against both the discrete-event simulation
//! and the executor's byte-exact memory accounting.
//!
//! Runs under the CI determinism matrix (`RAYON_NUM_THREADS ∈ {1, 4}`).

use slimpipe_cluster::Link;
use slimpipe_core::SlicePolicy;
use slimpipe_exec::schedule::PipelineKind;
use slimpipe_exec::train::{run_pipeline, run_reference, RunResult};
use slimpipe_exec::ExecConfig;
use slimpipe_planner::{
    plan, reference_profile, simulate_config, Plan, PlanOpts, ProfiledCostModel,
};
use std::sync::Mutex;

/// Serialises the tests that install a process-wide width override.
static WIDTH_LOCK: Mutex<()> = Mutex::new(());

fn assert_bits_equal(got: &RunResult, want: &RunResult, what: &str) {
    assert_eq!(got.losses, want.losses, "{what}: losses differ");
    for (li, (a, b)) in got.layer_grads.iter().zip(&want.layer_grads).enumerate() {
        for ((name, ga), (_, gb)) in a.tensors().iter().zip(b.tensors().iter()) {
            assert_eq!(ga.max_abs_diff(gb), 0.0, "{what}: layer{li}.{name} bits differ");
        }
    }
    assert_eq!(got.embed_grad.max_abs_diff(&want.embed_grad), 0.0, "{what}: embedding");
    assert_eq!(got.out_grad.max_abs_diff(&want.out_grad), 0.0, "{what}: output");
}

/// The uniform reference workload.
fn reference_workload() -> ExecConfig {
    ExecConfig {
        stages: 2,
        microbatches: 2,
        seq: 64,
        ..ExecConfig::small()
    }
}

/// A ragged workload with a 6× length spread — the regime per-microbatch
/// slice counts exist for (under the committed profile the planner gives
/// the short microbatch a fraction of the long one's slices).
fn ragged_workload() -> ExecConfig {
    ExecConfig {
        stages: 2,
        microbatches: 2,
        seq: 192,
        mb_seqs: Some(vec![32, 192]),
        ..ExecConfig::small()
    }
}

fn planned(cfg: &ExecConfig) -> (Plan, ExecConfig) {
    let profile = reference_profile();
    let p = plan(cfg, &profile, &PlanOpts::default()).expect("plannable workload");
    let lowered = p.to_exec_config(cfg);
    (p, lowered)
}

/// Planner-emitted plans for the uniform and ragged workloads execute on
/// the real pipeline and reproduce the single-device reference.
#[test]
fn planned_configs_match_the_reference() {
    for (name, base) in [("uniform", reference_workload()), ("ragged", ragged_workload())] {
        let (_, cfg) = planned(&base);
        let want = run_reference(&cfg, 2, 0.2);
        let got = run_pipeline(&cfg, PipelineKind::SlimPipe, 2, 0.2);
        let c = slimpipe_exec::verify::compare(&got, &want);
        assert!(
            c.max_loss_diff < 3e-3 && c.worst_grad_rel < 3e-3,
            "{name}: loss diff {} / worst grad {} at {}",
            c.max_loss_diff,
            c.worst_grad_rel,
            c.worst_grad_name
        );
    }
}

/// The ragged plan actually uses the new axis: non-global per-microbatch
/// slice counts (a 4× length spread earns shorter microbatches fewer
/// slices under the committed profile's per-slice constants).
#[test]
fn ragged_plan_has_non_global_slice_counts() {
    let (p, cfg) = planned(&ragged_workload());
    assert!(
        p.has_per_mb_counts(),
        "expected per-microbatch counts, got {:?}",
        p.mb_slices
    );
    assert!(cfg.mb_slices.is_some());
    // Longest microbatch gets the most slices.
    let longest = 1; // mb_seqs[1] == 192
    assert_eq!(
        p.mb_slices.iter().copied().max().unwrap(),
        p.mb_slices[longest]
    );
}

/// Planned runs are bit-reproducible across worker-pool widths and
/// bit-identical with context exchange on vs off.
#[test]
fn planned_runs_are_bit_deterministic_and_exchange_invariant() {
    let _g = WIDTH_LOCK.lock().unwrap();
    for base in [reference_workload(), ragged_workload()] {
        let (_, cfg) = planned(&base);
        rayon::set_num_threads(1);
        let narrow = run_pipeline(&cfg, PipelineKind::SlimPipe, 2, 0.2);
        rayon::set_num_threads(4);
        let wide = run_pipeline(&cfg, PipelineKind::SlimPipe, 2, 0.2);
        let exchanged =
            run_pipeline(&ExecConfig { exchange: true, ..cfg.clone() }, PipelineKind::SlimPipe, 2, 0.2);
        rayon::set_num_threads(0);
        assert_bits_equal(&wide, &narrow, "planned width 4 vs width 1");
        assert_bits_equal(&exchanged, &narrow, "planned exchange vs local");
    }
}

/// The acceptance comparison: on the reference workload the planned
/// bounds' simulated bubble fraction is ≤ `PairBalanced`'s (and
/// `Uniform`'s) at the same slice counts — the planner evaluates both as
/// candidates, so it can tie but never lose.
#[test]
fn planned_bubble_beats_or_ties_the_baselines() {
    let base = reference_workload();
    let profile = reference_profile();
    let (p, cfg) = planned(&base);
    let planned_report = simulate_config(&cfg, &profile);
    assert!(
        (planned_report.bubble_fraction - p.simulated_bubble).abs() < 1e-9,
        "plan self-report must match re-simulation"
    );
    for policy in [SlicePolicy::PairBalanced, SlicePolicy::Uniform] {
        let tag = policy.tag();
        let baseline_cfg = ExecConfig {
            slicing: policy,
            slices: cfg.slices,
            mb_slices: cfg.mb_slices.clone(),
            ..base.clone()
        };
        let baseline = simulate_config(&baseline_cfg, &profile);
        assert!(
            planned_report.bubble_fraction <= baseline.bubble_fraction + 1e-9,
            "planned bubble {} > {tag} {}",
            planned_report.bubble_fraction,
            baseline.bubble_fraction
        );
        assert!(
            planned_report.makespan <= baseline.makespan + 1e-12,
            "planned makespan {} > {tag} {}",
            planned_report.makespan,
            baseline.makespan
        );
    }
}

/// Predicted-vs-simulated bubble: the closed-form prediction the plan
/// reports must agree with the discrete-event engine to well within an
/// order of magnitude (it is a fill/drain estimate, not a simulation).
#[test]
fn predicted_bubble_tracks_simulated() {
    for base in [reference_workload(), ragged_workload()] {
        let (p, _) = planned(&base);
        assert!(p.predicted_makespan > 0.0 && p.simulated_makespan > 0.0);
        let ratio = p.predicted_makespan / p.simulated_makespan;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "predicted {} vs simulated {} (ratio {ratio})",
            p.predicted_makespan,
            p.simulated_makespan
        );
        assert!(p.predicted_bubble >= 0.0 && p.predicted_bubble < 1.0);
    }
}

/// Comm-priced closed loop: on the planned reference workload over a real
/// boundary link, the simulator prices the async (overlapped) exchange
/// regime no slower than the serialized one, and neither regime's
/// simulated makespan leaves the existing predicted-vs-simulated 2×
/// envelope — overlap pricing refines the model, it does not break the
/// planner's calibration contract.
#[test]
fn overlap_pricing_stays_within_the_prediction_envelope() {
    let base = reference_workload();
    let profile = reference_profile();
    let (p, cfg) = planned(&base);
    let counts: Vec<usize> = (0..cfg.microbatches).map(|mb| cfg.slices_of(mb)).collect();
    let sched = slimpipe_core::schedule::generate_var(cfg.stages, &counts).unwrap();
    // A 400 Gb/s NIC-class link; fp32 activations at hidden = 32.
    let link = Link { bandwidth: 50e9, latency: 10e-6 };
    let priced = |overlap: f64| {
        let cm = ProfiledCostModel::new(&sched, &profile, cfg.layers_per_stage(), cfg.slicings())
            .with_comm(link, 4.0 * 32.0, overlap);
        slimpipe_sim::simulate(&cm).makespan
    };
    let serialized = priced(0.0);
    let overlapped = priced(1.0);
    assert!(
        overlapped <= serialized + 1e-12,
        "overlapped {overlapped} priced above serialized {serialized}"
    );
    for (tag, makespan) in [("serialized", serialized), ("overlapped", overlapped)] {
        let ratio = p.predicted_makespan / makespan;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "{tag}: predicted {} vs comm-priced {makespan} (ratio {ratio})",
            p.predicted_makespan
        );
    }
}

/// The byte model the memory cap is enforced against tracks the executor's
/// measured byte-exact accounting: the predicted per-device peak is an
/// accurate estimate of the real one.
#[test]
fn predicted_peak_bytes_track_the_executor() {
    for (name, base) in [("uniform", reference_workload()), ("ragged", ragged_workload())] {
        let (p, cfg) = planned(&base);
        let run = run_pipeline(&cfg, PipelineKind::SlimPipe, 1, 0.1);
        for (d, (&measured, &predicted)) in
            run.peak_act_bytes.iter().zip(&p.predicted_peak_bytes).enumerate()
        {
            let rel = (measured as f64 - predicted).abs() / predicted;
            assert!(
                rel < 0.25,
                "{name} device {d}: measured {measured} vs predicted {predicted} (rel {rel:.3})"
            );
        }
    }
}

/// A plan produced under a real memory cap executes within that cap on
/// the real executor — the planner's constraint means what it says.
#[test]
fn capped_plan_executes_within_the_cap() {
    let base = reference_workload();
    let profile = reference_profile();
    let free = plan(&base, &profile, &PlanOpts::default()).unwrap();
    let free_peak = free.predicted_peak_bytes.iter().copied().fold(0.0, f64::max);
    let cap = (free_peak * 0.9) as u64;
    let opts = PlanOpts { mem_cap_bytes: Some(cap), ..PlanOpts::default() };
    match plan(&base, &profile, &opts) {
        Ok(p) => {
            let cfg = p.to_exec_config(&base);
            let run = run_pipeline(&cfg, PipelineKind::SlimPipe, 1, 0.1);
            let worst = *run.peak_act_bytes.iter().max().unwrap();
            assert!(
                (worst as f64) < cap as f64 * 1.25,
                "executed peak {worst} far above planned cap {cap}"
            );
        }
        Err(e) => panic!("a 10% trim should stay feasible: {e}"),
    }
}
