//! Property tests over the slicing planner: every emitted plan is a valid
//! partition the executor's config validation accepts, token totals are
//! conserved, the memory cap is respected, and on uniform workloads the
//! planned bounds never lose to the `PairBalanced` baseline on simulated
//! bubble fraction.

use proptest::prelude::*;
use slimpipe_core::{SlicePolicy, Slicing};
use slimpipe_exec::ExecConfig;
use slimpipe_planner::{plan, reference_profile, simulate_config, PlanError, PlanOpts};

/// A randomised but always-executable workload: `stages` divides layers,
/// microbatch lengths can ragged-vary, and every length fits at least one
/// pipeline-sized slice per device.
fn workload(stages: usize, mbs: usize, seqs: Vec<usize>) -> ExecConfig {
    let seq = *seqs.iter().max().unwrap();
    ExecConfig {
        stages,
        layers: 4,
        microbatches: mbs,
        seq,
        mb_seqs: Some(seqs),
        ..ExecConfig::small()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Planner output is always a valid partition: `Slicing::try_explicit`
    /// accepts every emitted bounds vector, per-microbatch token totals
    /// are conserved, counts are positive multiples of the pipeline size,
    /// and the lowered `ExecConfig` passes validation.
    #[test]
    fn plans_are_valid_partitions(
        stages in 1usize..3,
        mbs in 1usize..4,
        base_seq in 24usize..100,
        spread in 0usize..60,
    ) {
        let stages = stages * 2; // 2 or 4 — must divide layers=4
        let seqs: Vec<usize> = (0..mbs)
            .map(|i| base_seq + (i * 17) % spread.max(1) + i * spread / 2)
            .map(|s| s.max(stages))
            .collect();
        let cfg = workload(stages, mbs, seqs.clone());
        let profile = reference_profile();
        let p = plan(&cfg, &profile, &PlanOpts::default()).unwrap();
        prop_assert_eq!(p.mb_bounds.len(), mbs);
        for (mb, bounds) in p.mb_bounds.iter().enumerate() {
            let s = Slicing::try_explicit(seqs[mb] as u64, bounds.clone());
            prop_assert!(s.is_ok(), "mb {}: {:?}", mb, s.err());
            let s = s.unwrap();
            prop_assert_eq!(s.n(), p.mb_slices[mb]);
            prop_assert!(p.mb_slices[mb].is_multiple_of(stages));
            // Token totals conserved: slice lengths tile the sequence.
            let total: u64 = (0..s.n()).map(|i| s.len(i)).sum();
            prop_assert_eq!(total, seqs[mb] as u64);
        }
        let lowered = p.to_exec_config(&cfg);
        prop_assert!(lowered.validate().is_ok());
    }

    /// Any plan emitted under a memory cap predicts peaks within the cap;
    /// impossible caps are reported as infeasible, never silently violated.
    #[test]
    fn memory_cap_is_respected(
        mbs in 1usize..4,
        seq in 32usize..96,
        cap_frac_pct in 30u32..120,
    ) {
        let cfg = workload(2, mbs, vec![seq; mbs]);
        let profile = reference_profile();
        let free = plan(&cfg, &profile, &PlanOpts::default()).unwrap();
        let free_peak = free.predicted_peak_bytes.iter().copied().fold(0.0, f64::max);
        let cap = (free_peak * cap_frac_pct as f64 / 100.0) as u64;
        let opts = PlanOpts { mem_cap_bytes: Some(cap), ..PlanOpts::default() };
        match plan(&cfg, &profile, &opts) {
            Ok(p) => {
                let worst = p.predicted_peak_bytes.iter().copied().fold(0.0, f64::max);
                prop_assert!(worst <= cap as f64 + 1e-6, "{worst} > cap {cap}");
            }
            Err(PlanError::Infeasible(_)) => {}
            Err(e) => prop_assert!(false, "unexpected error {e}"),
        }
    }

    /// On a uniform workload the planned bounds' simulated bubble fraction
    /// is ≤ `PairBalanced`'s at the same slice counts (the planner
    /// evaluates the pair-balanced partition as a candidate, so it can tie
    /// but never lose).
    #[test]
    fn planned_bubble_never_loses_to_pair_balanced(
        mbs in 1usize..4,
        seq in 32usize..128,
    ) {
        let cfg = workload(2, mbs, vec![seq; mbs]);
        let profile = reference_profile();
        let p = plan(&cfg, &profile, &PlanOpts::default()).unwrap();
        let planned_cfg = p.to_exec_config(&cfg);
        let planned = simulate_config(&planned_cfg, &profile);
        let baseline_cfg = ExecConfig {
            slicing: SlicePolicy::PairBalanced,
            slices: planned_cfg.slices,
            mb_slices: planned_cfg.mb_slices.clone(),
            ..cfg.clone()
        };
        let baseline = simulate_config(&baseline_cfg, &profile);
        prop_assert!(
            planned.bubble_fraction <= baseline.bubble_fraction + 1e-9,
            "planned {} > pair-balanced {}",
            planned.bubble_fraction,
            baseline.bubble_fraction
        );
        prop_assert!(planned.makespan <= baseline.makespan + 1e-12);
    }
}
