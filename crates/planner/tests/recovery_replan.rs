//! The planner-backed elastic recovery loop: a job that loses a stage
//! mid-run re-plans onto the survivors with the calibrated search
//! (`recovery_replanner`), restores the newest snapshot, and finishes with
//! bits identical to a clean resume launched at the surviving geometry
//! from the same snapshot.
//!
//! Runs under the CI determinism matrix (`RAYON_NUM_THREADS ∈ {1, 4}`).

use slimpipe_exec::checkpoint::snapshot_path;
use slimpipe_exec::fault::InjectedPanic;
use slimpipe_exec::schedule::PipelineKind;
use slimpipe_exec::train::try_resume_pipeline_from;
use slimpipe_exec::verify::assert_bit_identical;
use slimpipe_exec::{
    run_elastic, CheckpointCfg, CheckpointState, DriverCfg, ExecConfig, ExecError, FaultKind,
    FaultPlan, FaultSite,
};
use slimpipe_planner::{recovery_replanner, reference_profile, replan_for_stages, PlanError};
use std::sync::Once;

/// Injected panics are expected; keep them out of the test output.
fn quiet_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedPanic>().is_none() {
                prev(info);
            }
        }));
    });
}

fn site(iteration: usize, stage: usize, mb: u32, slice: u32) -> FaultSite {
    FaultSite { iteration, stage, mb, slice }
}

fn unique_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("slimpipe_replan_{}_{tag}.ckpt", std::process::id()))
}

/// Remove the retention manifest and every snapshot a test may have left.
fn clean_ckpt_files(path: &std::path::Path) {
    let _ = std::fs::remove_file(path);
    for it in 0..16 {
        let _ = std::fs::remove_file(snapshot_path(path, it));
    }
}

/// The tentpole loop, planner edition: stage 1 of 2 panics at iteration 3,
/// the calibrated search re-plans the job onto the single survivor (with
/// the degraded link priced and the slicing re-derived), the driver
/// restores the iteration-2 snapshot, and the finished weights are
/// bit-identical to a clean resume of the re-planned config from that same
/// snapshot.
#[test]
fn planner_replanner_recovers_bit_identically() {
    quiet_injected_panics();
    let path = unique_path("tentpole");
    clean_ckpt_files(&path);
    let cfg = ExecConfig {
        checkpoint: Some(CheckpointCfg { every: 2, path: path.clone(), keep_last: 0 }),
        fault_plan: Some(FaultPlan::single(site(3, 1, 0, 1), FaultKind::StagePanic)),
        ..ExecConfig::small()
    };
    let mut replanner = recovery_replanner(reference_profile(), None);
    let outcome = run_elastic(&cfg, &DriverCfg::default(), 6, 0.2, &mut replanner)
        .expect("recoverable fault must heal");
    assert_eq!(outcome.log.events.len(), 1, "exactly one recovery:\n{}", outcome.log);
    let ev = &outcome.log.events[0];
    assert_eq!((ev.from_stages, ev.to_stages), (2, 1));
    assert_eq!(ev.resumed_from, 2, "snapshot from iteration 2 is the restore point");
    assert_eq!(outcome.final_config.stages, 1);
    assert_eq!(outcome.final_config.slicing.tag(), "planned", "search output, not a bare shrink");

    // Clean twin: resume the re-planned config (faults stripped) from the
    // same 2-stage snapshot the driver restored.
    let clean_cfg = ExecConfig { fault_plan: None, ..outcome.final_config.clone() };
    let snap = CheckpointState::load(&snapshot_path(&path, 2), &clean_cfg)
        .expect("the 2-stage snapshot must still be loadable");
    let want = try_resume_pipeline_from(&clean_cfg, PipelineKind::SlimPipe, 6, 0.2, snap)
        .expect("clean resume");
    assert_bit_identical(&outcome.result, &want);
    clean_ckpt_files(&path);
}

/// `replan_for_stages` emits a validated config at the surviving geometry
/// with the job unchanged, and refuses geometries the model cannot split.
#[test]
fn replan_for_stages_respects_geometry() {
    let base = ExecConfig::small();
    let profile = reference_profile();
    let cfg = replan_for_stages(&base, &profile, 1, None).expect("1 stage always splits");
    assert_eq!(cfg.stages, 1);
    assert_eq!((cfg.layers, cfg.seed, cfg.microbatches), (base.layers, base.seed, base.microbatches));
    cfg.validate().expect("replanned config validates");
    // 4 layers cannot spread over 3 survivors.
    assert!(matches!(
        replan_for_stages(&base, &profile, 3, None),
        Err(PlanError::Infeasible(_))
    ));
}

/// An impossible memory cap at the degraded geometry surfaces as a
/// structured driver error, not a hang or a panic: the byte-model cap is
/// re-enforced at re-plan time, when the survivors hold more layers.
#[test]
fn infeasible_cap_fails_recovery_with_a_structured_error() {
    quiet_injected_panics();
    let path = unique_path("cap");
    clean_ckpt_files(&path);
    let cfg = ExecConfig {
        checkpoint: Some(CheckpointCfg { every: 2, path: path.clone(), keep_last: 0 }),
        fault_plan: Some(FaultPlan::single(site(3, 1, 0, 1), FaultKind::StagePanic)),
        ..ExecConfig::small()
    };
    let mut replanner = recovery_replanner(reference_profile(), Some(16));
    let err = run_elastic(&cfg, &DriverCfg::default(), 6, 0.2, &mut replanner)
        .expect_err("a 16-byte cap cannot fit any plan");
    assert!(
        matches!(err, ExecError::InvalidConfig(ref s) if s.contains("recovery re-plan")),
        "unexpected error: {err}"
    );
    clean_ckpt_files(&path);
}
