//! The slicing search: pick per-microbatch slice counts and explicit token
//! bounds that minimise the profiled simulated makespan, under the byte
//! model's peak-memory cap.
//!
//! Three stages, cheap to expensive:
//!
//! 1. **Count candidates** — per-microbatch slice counts are multiples of
//!    the pipeline size (the SlimPipe staircase invariant). For ragged
//!    workloads a *proportional* family assigns shorter microbatches fewer
//!    slices (fewer per-slice constants, same pipelining depth where it
//!    matters); the flat family keeps one global count.
//! 2. **Bounds per candidate** — a min-max DP over a token-boundary grid
//!    balances the *calibrated* per-slice cost `w(t, pairs)` (GEMM-linear
//!    plus attention-pair terms — what `PairBalanced` approximates with
//!    pairs alone), with the `even` and `pair_balanced` partitions also
//!    evaluated so the planner never loses to either baseline at its own
//!    slice counts.
//! 3. **Refinement** — hill-climb individual bounds of the winner against
//!    the discrete-event simulated makespan.
//!
//! Every candidate is rejected outright if any device's predicted peak
//! activation bytes exceed the cap — memory is a constraint, not a term in
//! the objective (§4.1.1: bounded accumulation is what makes slicing
//! usable at all).

use crate::calibrate::shape_of;
use crate::cost::{ByteModel, ProfiledCostModel};
use crate::plan::Plan;
use crate::profile::CostProfile;
use slimpipe_cluster::Link;
use slimpipe_core::schedule::generate_var;
use slimpipe_core::Slicing;
use slimpipe_exec::ExecConfig;
use slimpipe_model::causal_pairs;
use slimpipe_sched::{PassKind, Schedule};
use slimpipe_sim::{simulate, UnitCostModel};
use std::collections::BTreeSet;

/// Boundary-link pricing for candidate evaluation: when present, every
/// candidate's simulated makespan includes per-boundary activation
/// transfers over this link, with the profile's calibrated overlap
/// fraction (`ov`) hiding part of each edge behind compute.
#[derive(Clone, Copy, Debug)]
pub struct CommOpts {
    /// Link between adjacent pipeline stages.
    pub link: Link,
    /// Boundary activation bytes per token of the crossing unit.
    pub bytes_per_token: f64,
}

/// Search knobs.
#[derive(Clone, Debug)]
pub struct PlanOpts {
    /// Hard per-device peak activation byte cap (predicted by the byte
    /// model). `None` = unconstrained.
    pub mem_cap_bytes: Option<u64>,
    /// Largest slice count considered for any microbatch.
    pub max_slices_per_mb: usize,
    /// Boundary-grid resolution for the DP (token positions per
    /// microbatch; small sequences use every position).
    pub boundary_grid: usize,
    /// Hill-climbing rounds over the winning plan's bounds.
    pub refine_rounds: usize,
    /// Optional stage-boundary link pricing. `None` (the default) keeps
    /// sends free — in-process stages pass pointers.
    pub comm: Option<CommOpts>,
}

impl Default for PlanOpts {
    fn default() -> Self {
        Self {
            mem_cap_bytes: None,
            max_slices_per_mb: 16,
            boundary_grid: 128,
            refine_rounds: 2,
            comm: None,
        }
    }
}

/// Why the planner could not produce a plan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanError {
    /// The profile was calibrated for a different model shape.
    ShapeMismatch(String),
    /// No candidate satisfies the workload geometry / memory cap.
    Infeasible(String),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::ShapeMismatch(s) => write!(f, "profile shape mismatch: {s}"),
            PlanError::Infeasible(s) => write!(f, "no feasible plan: {s}"),
        }
    }
}

impl std::error::Error for PlanError {}

/// Largest multiple of `p` that is ≤ `x` (0 when `x < p`).
fn floor_mult(x: usize, p: usize) -> usize {
    x / p * p
}

/// Combined forward+backward cost of one slice on one interior stage —
/// the balance target (head/embedding token-linear edges included: they
/// skew the bottleneck stages exactly like layer GEMMs do).
fn unit_weight(profile: &CostProfile, layers_per_stage: usize, t: f64, pairs: f64) -> f64 {
    let p = profile;
    let l = layers_per_stage as f64;
    l * ((p.f0 + p.b0) + (p.ft + p.bt) * t + (p.fp + p.bp) * pairs)
        + (p.hft + p.hbt + p.ef + p.eb) * t
}

/// Token-boundary candidates for one microbatch: every position for short
/// sequences, an evenly spaced grid (always containing 0 and `seq`) for
/// long ones.
fn grid_positions(seq: u64, n: usize, max_grid: usize) -> Vec<u64> {
    let want = max_grid.max(n + 1);
    if seq as usize <= want {
        return (0..=seq).collect();
    }
    let mut g: Vec<u64> = (0..=want)
        .map(|i| (i as u128 * seq as u128 / want as u128) as u64)
        .collect();
    g.dedup();
    g
}

/// Min-max DP: bounds of `n` slices over `seq` tokens minimising the
/// maximum per-slice `w(start, end)` weight.
fn dp_balanced_bounds(
    seq: u64,
    n: usize,
    grid: usize,
    w: &dyn Fn(u64, u64) -> f64,
) -> Vec<u64> {
    if n == 1 {
        return vec![0, seq];
    }
    let g = grid_positions(seq, n, grid);
    let m = g.len();
    let mut dp = vec![vec![f64::INFINITY; m]; n + 1];
    let mut par = vec![vec![0usize; m]; n + 1];
    dp[0][0] = 0.0;
    for j in 1..=n {
        for i in j..m {
            for k in (j - 1)..i {
                if dp[j - 1][k].is_finite() {
                    let v = dp[j - 1][k].max(w(g[k], g[i]));
                    if v < dp[j][i] {
                        dp[j][i] = v;
                        par[j][i] = k;
                    }
                }
            }
        }
    }
    let mut bounds = vec![0u64; n + 1];
    bounds[n] = seq;
    let mut i = m - 1;
    for j in (1..=n).rev() {
        i = par[j][i];
        bounds[j - 1] = g[i];
    }
    bounds
}

/// One fully specified candidate under evaluation.
struct Candidate {
    counts: Vec<usize>,
    slicings: Vec<Slicing>,
    sched: Schedule,
    makespan: f64,
    bubble: f64,
}

/// Evaluate a (counts, slicings) pair; `None` if it violates the cap.
fn evaluate(
    cfg: &ExecConfig,
    profile: &CostProfile,
    bm: &ByteModel,
    counts: &[usize],
    slicings: Vec<Slicing>,
    opts: &PlanOpts,
) -> Option<Candidate> {
    let sched = generate_var(cfg.stages, counts).ok()?;
    if let Some(cap) = opts.mem_cap_bytes {
        if bm.worst_predicted_peak(&sched, &slicings) > cap as f64 {
            return None;
        }
    }
    let lps = cfg.layers_per_stage();
    let report = {
        let mut cm = ProfiledCostModel::new(&sched, profile, lps, slicings.clone());
        if let Some(comm) = opts.comm {
            cm = cm.with_comm(comm.link, comm.bytes_per_token, profile.ov);
        }
        simulate(&cm)
    };
    Some(Candidate {
        counts: counts.to_vec(),
        slicings,
        sched,
        makespan: report.makespan,
        bubble: report.bubble_fraction,
    })
}

/// Search for an executable slice plan for `cfg`'s workload (its model
/// shape, pipeline geometry, and — possibly ragged — microbatch lengths;
/// the config's own slicing policy fields are the *output* axis and are
/// ignored on input).
pub fn plan(cfg: &ExecConfig, profile: &CostProfile, opts: &PlanOpts) -> Result<Plan, PlanError> {
    if profile.shape != shape_of(cfg) {
        return Err(PlanError::ShapeMismatch(format!(
            "profile {:?} vs workload {:?}",
            profile.shape,
            shape_of(cfg)
        )));
    }
    profile.validate().map_err(PlanError::Infeasible)?;
    let p = cfg.stages;
    let m = cfg.microbatches;
    if m == 0 || p == 0 {
        return Err(PlanError::Infeasible("empty workload".into()));
    }
    let seqs: Vec<u64> = (0..m).map(|mb| cfg.mb_seq(mb) as u64).collect();
    let seq_max = *seqs.iter().max().unwrap();
    for (mb, &s) in seqs.iter().enumerate() {
        if floor_mult(s as usize, p) == 0 {
            return Err(PlanError::Infeasible(format!(
                "microbatch {mb}: {s} tokens cannot fill {p} pipeline-sized slices"
            )));
        }
    }
    let bm = ByteModel::from_config(cfg);
    let lps = cfg.layers_per_stage();
    let weight = |a: u64, b: u64| -> f64 {
        let t = b - a;
        unit_weight(profile, lps, t as f64, causal_pairs(a, t) as f64)
    };

    // --- candidate slice-count vectors ---
    let kmax = (opts.max_slices_per_mb / p).max(1);
    let mut count_vecs: BTreeSet<Vec<usize>> = BTreeSet::new();
    for k in 1..=kmax {
        let cap_of = |seq: u64| floor_mult(seq as usize, p).max(p).min(seq as usize);
        // Proportional: shorter microbatches get proportionally fewer
        // slices (min one pipeline's worth).
        let prop: Vec<usize> = seqs
            .iter()
            .map(|&s| {
                let ideal = (k * p) as f64 * s as f64 / seq_max as f64;
                let rounded = ((ideal / p as f64).round() as usize).max(1) * p;
                rounded.clamp(p, cap_of(s).min(k * p))
            })
            .collect();
        count_vecs.insert(prop);
        // Flat: one global count (clamped where a short microbatch cannot
        // fill it).
        let flat: Vec<usize> = seqs.iter().map(|&s| (k * p).min(cap_of(s))).collect();
        count_vecs.insert(flat);
    }

    // --- evaluate candidates: DP-balanced, even, and pair-balanced
    //     bounds at each count vector ---
    let mut best: Option<Candidate> = None;
    let mut consider = |cand: Option<Candidate>| {
        if let Some(c) = cand {
            if best.as_ref().is_none_or(|b| c.makespan < b.makespan) {
                best = Some(c);
            }
        }
    };
    for counts in &count_vecs {
        let dp_slicings: Vec<Slicing> = counts
            .iter()
            .zip(&seqs)
            .map(|(&n, &s)| Slicing::explicit(s, dp_balanced_bounds(s, n, opts.boundary_grid, &weight)))
            .collect();
        consider(evaluate(cfg, profile, &bm, counts, dp_slicings, opts));
        let even: Vec<Slicing> = counts
            .iter()
            .zip(&seqs)
            .map(|(&n, &s)| Slicing::even(s, n))
            .collect();
        consider(evaluate(cfg, profile, &bm, counts, even, opts));
        let pb: Vec<Slicing> = counts
            .iter()
            .zip(&seqs)
            .map(|(&n, &s)| Slicing::pair_balanced(s, n))
            .collect();
        consider(evaluate(cfg, profile, &bm, counts, pb, opts));
    }
    let mut best = best.ok_or_else(|| {
        PlanError::Infeasible(format!(
            "no slice-count candidate fits the {:?}-byte cap",
            opts.mem_cap_bytes
        ))
    })?;

    // --- local refinement: move individual bounds while the simulated
    //     makespan improves ---
    for _ in 0..opts.refine_rounds {
        let mut improved = false;
        for mb in 0..m {
            let n = best.counts[mb];
            for i in 1..n {
                let cur = best.slicings[mb].bounds.clone();
                let step = ((cur[i + 1] - cur[i - 1]) / 8).max(1);
                for delta in [-(step as i64), -1, 1, step as i64] {
                    let moved = cur[i] as i64 + delta;
                    if moved <= cur[i - 1] as i64 || moved >= cur[i + 1] as i64 {
                        continue;
                    }
                    let mut bounds = cur.clone();
                    bounds[i] = moved as u64;
                    let mut slicings = best.slicings.clone();
                    slicings[mb] = Slicing::explicit(seqs[mb], bounds);
                    if let Some(c) = evaluate(
                        cfg,
                        profile,
                        &bm,
                        &best.counts.clone(),
                        slicings,
                        opts,
                    ) {
                        if c.makespan < best.makespan {
                            best = c;
                            improved = true;
                            break;
                        }
                    }
                }
            }
        }
        if !improved {
            break;
        }
    }

    // --- report ---
    let cm = ProfiledCostModel::new(&best.sched, profile, lps, best.slicings.clone());
    let mut busy = vec![0.0f64; p];
    let mut mean_f = (0.0, 0usize);
    let mut mean_b = (0.0, 0usize);
    for (d, ops) in best.sched.ops.iter().enumerate() {
        for op in ops {
            let c = cm.op_cost(d, op).duration;
            busy[d] += c;
            match op.kind {
                PassKind::Forward => {
                    mean_f.0 += c;
                    mean_f.1 += 1;
                }
                _ => {
                    mean_b.0 += c;
                    mean_b.1 += 1;
                }
            }
        }
    }
    let busy_max = busy.iter().copied().fold(0.0, f64::max);
    let total_busy: f64 = busy.iter().sum();
    let fill = (p as f64 - 1.0)
        * (mean_f.0 / mean_f.1.max(1) as f64 + mean_b.0 / mean_b.1.max(1) as f64);
    let predicted_makespan = busy_max + fill;
    let predicted_bubble = (1.0 - total_busy / (p as f64 * predicted_makespan)).max(0.0);
    let unit_costs: Vec<Vec<f64>> = best
        .slicings
        .iter()
        .map(|s| {
            (0..s.n())
                .map(|i| {
                    let (start, len) = s.slice(i);
                    weight(start, start + len) * 1e-9
                })
                .collect()
        })
        .collect();
    let predicted_peak_bytes: Vec<f64> = (0..p)
        .map(|d| bm.predicted_peak(&best.sched, &best.slicings, d))
        .collect();
    Ok(Plan {
        mb_slices: best.counts.clone(),
        mb_bounds: best.slicings.iter().map(|s| s.bounds.clone()).collect(),
        predicted_makespan,
        predicted_bubble,
        simulated_makespan: best.makespan,
        simulated_bubble: best.bubble,
        predicted_peak_bytes,
        unit_costs,
    })
}

/// Boundary link priced during degraded re-planning. Recovery re-plans
/// because devices were *lost*: the surviving geometry may route stage
/// boundaries over slower inter-node paths, so price them conservatively
/// (~12.5 GB/s, 2 µs — a 100 Gb Ethernet class hop) rather than free.
pub const DEGRADED_LINK: Link = Link { bandwidth: 12.5e9, latency: 2e-6 };

/// Re-plan an existing job onto `survivors` pipeline stages after device
/// loss: same model, same workload, same seed — only the pipeline geometry
/// shrinks. The search runs with [`DEGRADED_LINK`] pricing stage-boundary
/// activation traffic (one hidden-vector row per token, f32) so the
/// emitted bounds account for the degraded interconnect, and with
/// `mem_cap_bytes` re-enforced: the survivors each hold *more* layers, so
/// a plan that fit before may not fit now.
///
/// The returned config is the lowered plan over `base` with
/// `stages = survivors`; callers (the elastic driver) restore from the
/// latest checkpoint and continue. Infeasible geometry (layers or vocab
/// shards not divisible by `survivors`) is a [`PlanError::Infeasible`],
/// not a panic — the driver treats it as "shrink further or give up".
pub fn replan_for_stages(
    base: &ExecConfig,
    profile: &CostProfile,
    survivors: usize,
    mem_cap_bytes: Option<u64>,
) -> Result<ExecConfig, PlanError> {
    if survivors == 0 {
        return Err(PlanError::Infeasible("zero surviving stages".into()));
    }
    if !base.layers.is_multiple_of(survivors) {
        return Err(PlanError::Infeasible(format!(
            "{} layers cannot spread over {survivors} surviving stages",
            base.layers
        )));
    }
    if base.vocab_parallel && !base.vocab.is_multiple_of(survivors) {
        return Err(PlanError::Infeasible(format!(
            "vocab {} cannot re-shard over {survivors} surviving stages",
            base.vocab
        )));
    }
    let degraded = ExecConfig { stages: survivors, ..base.clone() };
    let opts = PlanOpts {
        mem_cap_bytes,
        comm: Some(CommOpts {
            link: DEGRADED_LINK,
            bytes_per_token: (degraded.hidden() * 4) as f64,
        }),
        ..PlanOpts::default()
    };
    let plan = plan(&degraded, profile, &opts)?;
    Ok(plan.to_exec_config(&degraded))
}

/// Simulated report for `cfg` exactly as configured (its own policy and
/// slice counts) under the profiled cost model — the baseline the planner
/// is compared against.
pub fn simulate_config(cfg: &ExecConfig, profile: &CostProfile) -> slimpipe_sim::SimReport {
    assert_eq!(profile.shape, shape_of(cfg), "profile shape mismatch");
    let counts: Vec<usize> = (0..cfg.microbatches).map(|mb| cfg.slices_of(mb)).collect();
    let sched = generate_var(cfg.stages, &counts).expect("workload geometry rejected");
    let cm = ProfiledCostModel::new(&sched, profile, cfg.layers_per_stage(), cfg.slicings());
    simulate(&cm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ProfileShape;

    fn toy_profile() -> CostProfile {
        CostProfile {
            shape: ProfileShape { heads: 4, kv_heads: 2, head_dim: 8, ffn: 64, vocab: 96 },
            regime: slimpipe_tensor::AttnKernel::Gemm,
            f0: 1000.0,
            ft: 50.0,
            fp: 2.0,
            b0: 2000.0,
            bt: 110.0,
            bp: 4.5,
            hf0: 500.0,
            hft: 80.0,
            hb0: 600.0,
            hbt: 95.0,
            ef: 3.0,
            eb: 5.0,
            ov: 0.0,
        }
    }

    fn workload() -> ExecConfig {
        ExecConfig {
            stages: 2,
            microbatches: 2,
            ..ExecConfig::small()
        }
    }

    #[test]
    fn dp_bounds_are_a_valid_partition() {
        let w = |a: u64, b: u64| (b - a) as f64 + causal_pairs(a, b - a) as f64 * 0.1;
        for (seq, n) in [(64u64, 4usize), (100, 3), (1000, 8), (64, 1)] {
            let b = dp_balanced_bounds(seq, n, 128, &w);
            Slicing::try_explicit(seq, b.clone()).unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(b.len(), n + 1);
        }
    }

    #[test]
    fn dp_beats_even_on_the_minmax_weight() {
        // Pair-heavy weight: even slicing leaves the last slice far
        // heavier; the DP must do strictly better on the max.
        let w = |a: u64, b: u64| causal_pairs(a, b - a) as f64;
        let seq = 1024u64;
        let n = 8;
        let b = dp_balanced_bounds(seq, n, 256, &w);
        let s = Slicing::explicit(seq, b);
        let even = Slicing::even(seq, n);
        let max_of = |s: &Slicing| (0..s.n()).map(|i| s.pairs(i)).max().unwrap();
        assert!(max_of(&s) < max_of(&even));
    }

    #[test]
    fn plan_rejects_shape_mismatch() {
        let mut prof = toy_profile();
        prof.shape.ffn = 1;
        assert!(matches!(
            plan(&workload(), &prof, &PlanOpts::default()),
            Err(PlanError::ShapeMismatch(_))
        ));
    }

    #[test]
    fn plan_emits_valid_partitions() {
        let p = plan(&workload(), &toy_profile(), &PlanOpts::default()).unwrap();
        assert_eq!(p.mb_bounds.len(), 2);
        for (mb, b) in p.mb_bounds.iter().enumerate() {
            Slicing::try_explicit(64, b.clone()).unwrap();
            assert_eq!(b.len(), p.mb_slices[mb] + 1);
            assert!(p.mb_slices[mb].is_multiple_of(2), "counts stay multiples of p");
        }
        assert!(p.simulated_makespan > 0.0);
        assert!(p.predicted_makespan > 0.0);
    }

    #[test]
    fn tight_memory_cap_is_respected_or_infeasible() {
        let cfg = workload();
        let prof = toy_profile();
        // Unconstrained peak.
        let free = plan(&cfg, &prof, &PlanOpts::default()).unwrap();
        let peak = free.predicted_peak_bytes.iter().copied().fold(0.0, f64::max);
        // A cap at 80% of the unconstrained peak forces a different plan
        // (or a proof of infeasibility) — and any emitted plan must fit.
        let opts = PlanOpts { mem_cap_bytes: Some((peak * 0.8) as u64), ..PlanOpts::default() };
        match plan(&cfg, &prof, &opts) {
            Ok(p) => {
                let worst = p.predicted_peak_bytes.iter().copied().fold(0.0, f64::max);
                assert!(worst <= peak * 0.8 + 1.0, "cap violated: {worst} > {}", peak * 0.8);
            }
            Err(PlanError::Infeasible(_)) => {}
            Err(e) => panic!("unexpected error: {e}"),
        }
        // An absurdly small cap must be infeasible, not silently violated.
        let opts = PlanOpts { mem_cap_bytes: Some(16), ..PlanOpts::default() };
        assert!(matches!(plan(&cfg, &prof, &opts), Err(PlanError::Infeasible(_))));
    }

    #[test]
    fn ragged_workload_gets_per_mb_counts() {
        let cfg = ExecConfig {
            stages: 2,
            microbatches: 2,
            mb_seqs: Some(vec![32, 128]),
            seq: 128,
            ..ExecConfig::small()
        };
        let p = plan(&cfg, &toy_profile(), &PlanOpts::default()).unwrap();
        assert!(
            p.has_per_mb_counts(),
            "a 4x length spread should earn different slice counts: {:?}",
            p.mb_slices
        );
        // Token totals conserved per microbatch.
        assert_eq!(*p.mb_bounds[0].last().unwrap(), 32);
        assert_eq!(*p.mb_bounds[1].last().unwrap(), 128);
    }
}
