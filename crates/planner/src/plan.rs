//! The planner's output: an executable explicit slice plan — per-microbatch
//! slice counts and token bounds — plus the predictions that justified it,
//! and its lowering into an [`ExecConfig`] the executor runs directly.

use slimpipe_core::{SlicePolicy, Slicing};
use slimpipe_exec::ExecConfig;
use std::fmt::Write as _;

/// An executable slice plan for one workload.
#[derive(Clone, Debug)]
pub struct Plan {
    /// Per-microbatch slice counts (`mb_bounds[mb].len() - 1`).
    pub mb_slices: Vec<usize>,
    /// Per-microbatch slice bounds (`bounds[0] == 0`, strictly increasing,
    /// last == that microbatch's sequence length).
    pub mb_bounds: Vec<Vec<u64>>,
    /// Closed-form makespan estimate (seconds): bottleneck busy time plus
    /// a `(p-1)`-deep fill/drain allowance.
    pub predicted_makespan: f64,
    /// Bubble fraction implied by [`Plan::predicted_makespan`].
    pub predicted_bubble: f64,
    /// Discrete-event simulated makespan (seconds) under the profile.
    pub simulated_makespan: f64,
    /// Discrete-event simulated bubble fraction under the profile.
    pub simulated_bubble: f64,
    /// Predicted peak activation bytes per device (the byte-model walk the
    /// memory cap was enforced against).
    pub predicted_peak_bytes: Vec<f64>,
    /// Predicted forward+backward cost (seconds) per `(mb, slice)` unit on
    /// an interior stage — the balance the bounds achieve.
    pub unit_costs: Vec<Vec<f64>>,
}

impl Plan {
    /// The plan's slice partitions, one per microbatch.
    pub fn slicings(&self) -> Vec<Slicing> {
        self.mb_bounds
            .iter()
            .map(|b| Slicing::explicit(*b.last().expect("non-empty bounds"), b.clone()))
            .collect()
    }

    /// True when some microbatches got a different slice count than others
    /// (the axis global-`n` configs cannot express).
    pub fn has_per_mb_counts(&self) -> bool {
        self.mb_slices.windows(2).any(|w| w[0] != w[1])
    }

    /// Lower the plan onto `base`: the returned config runs these exact
    /// bounds (and per-microbatch counts, when they differ). Panics only if
    /// the plan does not fit `base` — the planner emits plans for the
    /// workload it was given, so a mismatch is a caller bug.
    pub fn to_exec_config(&self, base: &ExecConfig) -> ExecConfig {
        let max_n = self.mb_slices.iter().copied().max().expect("non-empty plan");
        let uniform_counts = !self.has_per_mb_counts();
        let cfg = ExecConfig {
            slices: max_n,
            mb_slices: (!uniform_counts).then(|| self.mb_slices.clone()),
            slicing: SlicePolicy::ExplicitPerMb(self.mb_bounds.clone()),
            ..base.clone()
        };
        cfg.validate().expect("planner emitted a plan its own workload rejects");
        cfg
    }

    /// Human-readable plan table: per-microbatch bounds, slice token
    /// lengths, and predicted per-slice costs.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "predicted makespan {:.3} ms (bubble {:.4}) | simulated {:.3} ms (bubble {:.4})",
            self.predicted_makespan * 1e3,
            self.predicted_bubble,
            self.simulated_makespan * 1e3,
            self.simulated_bubble
        );
        let peaks: Vec<String> = self
            .predicted_peak_bytes
            .iter()
            .map(|b| format!("{:.1} KiB", b / 1024.0))
            .collect();
        let _ = writeln!(out, "predicted peak act bytes/device: [{}]", peaks.join(", "));
        for (mb, bounds) in self.mb_bounds.iter().enumerate() {
            let _ = writeln!(
                out,
                "mb {mb}: n={} bounds {:?}",
                self.mb_slices[mb], bounds
            );
            let lens: Vec<u64> = bounds.windows(2).map(|w| w[1] - w[0]).collect();
            let costs: Vec<String> = self.unit_costs[mb]
                .iter()
                .map(|c| format!("{:.1}", c * 1e6))
                .collect();
            let _ = writeln!(out, "      len {lens:?}");
            let _ = writeln!(out, "      f+b cost (us) [{}]", costs.join(", "));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_plan() -> Plan {
        Plan {
            mb_slices: vec![2, 4],
            mb_bounds: vec![vec![0, 40, 64], vec![0, 20, 34, 50, 64]],
            predicted_makespan: 1e-3,
            predicted_bubble: 0.1,
            simulated_makespan: 1.1e-3,
            simulated_bubble: 0.12,
            predicted_peak_bytes: vec![1024.0, 2048.0],
            unit_costs: vec![vec![1e-6, 2e-6], vec![1e-6; 4]],
        }
    }

    #[test]
    fn lowering_produces_a_valid_config() {
        let base = ExecConfig {
            stages: 2,
            microbatches: 2,
            ..ExecConfig::small()
        };
        let cfg = toy_plan().to_exec_config(&base);
        assert_eq!(cfg.slices, 4);
        assert_eq!(cfg.mb_slices, Some(vec![2, 4]));
        assert_eq!(cfg.slicing.tag(), "planned");
        cfg.validate().unwrap();
        assert_eq!(cfg.slicing_of(0).bounds, vec![0, 40, 64]);
        assert_eq!(cfg.slicing_of(1).n(), 4);
    }

    #[test]
    fn uniform_counts_lower_without_mb_slices() {
        let mut p = toy_plan();
        p.mb_slices = vec![2, 2];
        p.mb_bounds = vec![vec![0, 40, 64], vec![0, 30, 64]];
        p.unit_costs = vec![vec![1e-6; 2], vec![1e-6; 2]];
        let base = ExecConfig {
            stages: 2,
            microbatches: 2,
            ..ExecConfig::small()
        };
        let cfg = p.to_exec_config(&base);
        assert!(cfg.mb_slices.is_none());
        assert_eq!(cfg.slices, 2);
        assert!(!p.has_per_mb_counts());
    }

    #[test]
    fn table_renders_every_microbatch() {
        let t = toy_plan().render_table();
        assert!(t.contains("mb 0") && t.contains("mb 1"));
        assert!(t.contains("bubble"));
    }
}
