//! Calibrate cost profiles for the reference executor shape on this host —
//! one per attention kernel regime — and print (or write) the keyed JSON;
//! the tool that produced `crates/planner/profiles/reference.json`.
//!
//! ```text
//! cargo run --release -p slimpipe-planner --bin calibrate_profile [out.json]
//! ```

use slimpipe_exec::ExecConfig;
use slimpipe_planner::{calibrate, CalibrationOpts};
use slimpipe_tensor::{with_attn_kernel, AttnKernel};

fn main() {
    let cfg = ExecConfig::small();
    let opts = CalibrationOpts {
        token_sizes: vec![8, 16, 32, 48],
        chunk_counts: vec![0, 1, 3],
        repeats: 5,
    };
    let mut out = String::from("{\n  \"regimes\": {\n");
    let regimes = [AttnKernel::Scalar, AttnKernel::Gemm];
    for (i, &regime) in regimes.iter().enumerate() {
        eprintln!("calibrating {} regime...", regime.as_str());
        let profile = with_attn_kernel(regime, || calibrate(&cfg, &opts));
        assert_eq!(profile.regime, regime);
        // Indent the single-profile JSON two levels under its regime key.
        let block: String = profile
            .to_json()
            .trim_end()
            .lines()
            .map(|l| format!("    {l}\n"))
            .collect();
        out.push_str(&format!("    \"{}\": {}", regime.as_str(), block.trim()));
        out.push_str(if i + 1 < regimes.len() { ",\n" } else { "\n" });
    }
    out.push_str("  }\n}\n");
    match std::env::args().nth(1) {
        Some(path) => {
            std::fs::write(&path, &out).expect("write profile");
            eprintln!("profiles written to {path}");
        }
        None => print!("{out}"),
    }
}
