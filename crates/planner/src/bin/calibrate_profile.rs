//! Calibrate a cost profile for the reference executor shape on this host
//! and print (or write) the JSON — the tool that produced
//! `crates/planner/profiles/reference.json`.
//!
//! ```text
//! cargo run --release -p slimpipe-planner --bin calibrate_profile [out.json]
//! ```

use slimpipe_exec::ExecConfig;
use slimpipe_planner::{calibrate, CalibrationOpts};

fn main() {
    let cfg = ExecConfig::small();
    let opts = CalibrationOpts {
        token_sizes: vec![8, 16, 32, 48],
        chunk_counts: vec![0, 1, 3],
        repeats: 5,
    };
    let profile = calibrate(&cfg, &opts);
    let json = profile.to_json();
    match std::env::args().nth(1) {
        Some(path) => {
            std::fs::write(&path, &json).expect("write profile");
            eprintln!("profile written to {path}");
        }
        None => print!("{json}"),
    }
}
