//! Plan-vs-reality comparator: line a traced run's measured spans up
//! against the calibrated simulator's predicted timeline, unit by unit.
//!
//! The executor and the simulator execute the *same* per-device op lists
//! (both derive them from `generate_var` over the config's slice counts),
//! so a clean traced run yields exactly one `Compute` span per simulated
//! timeline entry per iteration, in the same order. That alignment makes
//! the comparison purely positional — no fuzzy matching: the k-th compute
//! span of `stage{d}`'s last full iteration corresponds to
//! `sim.timeline[d][k]`. The report answers the closed-loop question
//! directly: *how far off was the plan, and where?*

use crate::calibrate::shape_of;
use crate::profile::CostProfile;
use crate::search::simulate_config;
use slimpipe_core::schedule::generate_var;
use slimpipe_exec::ExecConfig;
use slimpipe_obs::{OpTag, Span, SpanKind, TraceReport};
use slimpipe_sched::PassKind;
use std::fmt;

/// One schedule op compared: the simulator's predicted duration against
/// the span the executor actually recorded for it.
#[derive(Clone, Debug)]
pub struct UnitComparison {
    pub device: usize,
    pub op: PassKind,
    pub mb: u32,
    pub slice: u32,
    /// Measured span duration, seconds.
    pub measured_s: f64,
    /// Simulated duration (`end − start` of the timeline entry), seconds.
    pub predicted_s: f64,
    /// `measured / predicted` (`inf` if the model predicted zero).
    pub ratio: f64,
}

/// The comparator's full report for one traced run.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// Every op of the last full measured iteration, device-major in
    /// schedule order.
    pub units: Vec<UnitComparison>,
    /// Wall-clock of the last full measured iteration (first compute start
    /// to last compute end across devices), seconds.
    pub measured_makespan_s: f64,
    /// The simulator's one-iteration makespan, seconds.
    pub predicted_makespan_s: f64,
    /// `measured / predicted` makespan.
    pub makespan_ratio: f64,
    /// Bubble fraction of the measured last iteration.
    pub measured_bubble: f64,
    /// The simulator's bubble fraction.
    pub predicted_bubble: f64,
    /// Mean of `|measured − predicted| / predicted` over `units`.
    pub mean_abs_unit_error: f64,
    /// An honest, wait-time-based estimate of the exchange overlap factor
    /// `ov`: `1 − Σ exchange-wait / Σ compute`, clamped to `[0, 1]`. The
    /// planner's `CommOpts` assumes a fixed `ov`; this is what the run
    /// actually achieved.
    pub ov_estimate: f64,
    /// Full iterations of spans the trace held (the comparison uses the
    /// last one — steady state, past warmup).
    pub iterations_measured: usize,
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "makespan: measured {:.3} ms vs predicted {:.3} ms (ratio {:.2})",
            self.measured_makespan_s * 1e3,
            self.predicted_makespan_s * 1e3,
            self.makespan_ratio
        )?;
        writeln!(
            f,
            "bubble:   measured {:.3} vs predicted {:.3}",
            self.measured_bubble, self.predicted_bubble
        )?;
        writeln!(
            f,
            "per-unit: mean |error| {:.1}% over {} units ({} iterations measured)",
            self.mean_abs_unit_error * 100.0,
            self.units.len(),
            self.iterations_measured
        )?;
        write!(f, "overlap:  ov ≈ {:.2} from measured exchange waits", self.ov_estimate)
    }
}

fn is_compute(s: &Span) -> bool {
    matches!(s.kind, SpanKind::Compute { op: OpTag::Fwd | OpTag::Bwd, .. })
}

/// Compare a traced executor run of `cfg` against the calibrated
/// simulation of the same config. `report` must come from a *clean* traced
/// run (skipped microbatches break the one-span-per-op alignment), with at
/// least one full iteration recorded per stage.
pub fn compare_run(
    cfg: &ExecConfig,
    profile: &CostProfile,
    report: &TraceReport,
) -> Result<Comparison, String> {
    if profile.shape != shape_of(cfg) {
        return Err(format!(
            "profile shape {:?} does not match workload shape {:?}",
            profile.shape,
            shape_of(cfg)
        ));
    }
    let sim = simulate_config(cfg, profile);
    let counts: Vec<usize> = (0..cfg.microbatches).map(|mb| cfg.slices_of(mb)).collect();
    let sched = generate_var(cfg.stages, &counts)
        .map_err(|e| format!("workload geometry rejected: {e}"))?;
    let p = cfg.stages;

    let mut units = Vec::new();
    let (mut t_min, mut t_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let mut busy = vec![0.0f64; p];
    let (mut total_busy, mut total_wait) = (0.0f64, 0.0f64);
    let mut iterations = usize::MAX;
    #[allow(clippy::needless_range_loop)] // d indexes tracks, timeline, ops, and busy alike
    for d in 0..p {
        let track = report
            .track(&format!("stage{d}"))
            .ok_or_else(|| format!("trace has no spans for stage {d} — was the run traced?"))?;
        let compute: Vec<&Span> = track.spans.iter().filter(|s| is_compute(s)).collect();
        let len = sim.timeline[d].len();
        debug_assert_eq!(len, sched.ops[d].len(), "simulator and schedule disagree on op count");
        let iters = compute.len() / len;
        if iters == 0 {
            return Err(format!(
                "stage {d} recorded {} compute spans, fewer than one iteration ({len} ops)",
                compute.len()
            ));
        }
        if !compute.len().is_multiple_of(len) {
            return Err(format!(
                "stage {d} recorded {} compute spans, not a multiple of {len} ops per \
                 iteration — the run was not clean",
                compute.len()
            ));
        }
        iterations = iterations.min(iters);
        // The last full iteration: steady state, clear of pool/pack warmup.
        let last = &compute[(iters - 1) * len..iters * len];
        for (k, span) in last.iter().enumerate() {
            let op = &sched.ops[d][k];
            let (start, end) = sim.timeline[d][k];
            let measured_s = span.dur_us * 1e-6;
            let predicted_s = end - start;
            units.push(UnitComparison {
                device: d,
                op: op.kind,
                mb: op.mb,
                slice: op.slice,
                measured_s,
                predicted_s,
                ratio: measured_s / predicted_s,
            });
            busy[d] += measured_s;
            t_min = t_min.min(span.start_us);
            t_max = t_max.max(span.start_us + span.dur_us);
        }
        total_busy += compute.iter().map(|s| s.dur_us * 1e-6).sum::<f64>();
        total_wait += track
            .spans
            .iter()
            .filter(|s| matches!(s.kind, SpanKind::ExchangeWait { .. }))
            .map(|s| s.dur_us * 1e-6)
            .sum::<f64>();
    }

    let measured_makespan_s = ((t_max - t_min) * 1e-6).max(0.0);
    let mean_abs_unit_error = if units.is_empty() {
        0.0
    } else {
        units
            .iter()
            .map(|u| ((u.measured_s - u.predicted_s) / u.predicted_s).abs())
            .sum::<f64>()
            / units.len() as f64
    };
    let ov_estimate = if total_busy > 0.0 {
        (1.0 - total_wait / total_busy).clamp(0.0, 1.0)
    } else {
        0.0
    };
    Ok(Comparison {
        measured_makespan_s,
        predicted_makespan_s: sim.makespan,
        makespan_ratio: measured_makespan_s / sim.makespan,
        measured_bubble: slimpipe_sim::metrics::bubble_fraction(&busy, measured_makespan_s),
        predicted_bubble: sim.bubble_fraction,
        mean_abs_unit_error,
        ov_estimate,
        iterations_measured: iterations,
        units,
    })
}
