//! Micro-profiling harness: fit a [`CostProfile`] by timing the *real*
//! executor kernels — the packed-GEMM + chunked-attention layer pass
//! (`slimpipe_exec::layer`), the classic loss head, and the embedding
//! edges — at a few token-range sizes.
//!
//! The harness runs each `(tokens, prior-chunks)` point a few times and
//! keeps the median, then least-squares-fits the `c0 + ct·t + cp·pairs`
//! form per op family. On a quiet host a handful of repeats is plenty (the
//! kernels are deterministic); on a noisy host the committed JSON profile
//! (`profiles/reference.json`) is the stable artifact tests pin against —
//! calibration here exists to *produce* that artifact and to re-derive it
//! on new hosts.

use crate::profile::{fit_linear3, CostProfile, ProfileShape, Sample};
use slimpipe_exec::layer::{
    layer_backward, layer_forward, DkvAccum, KvCache, LayerGrads, LayerParams, LocalAttn,
};
use slimpipe_exec::schedule::PipelineKind;
use slimpipe_exec::{run_pipeline, ExecConfig};
use slimpipe_model::causal_pairs;
use slimpipe_tensor::crossentropy;
use slimpipe_tensor::init::{seeded_tokens, seeded_uniform};
use slimpipe_tensor::matmul::{matmul_fused, matmul_tn_acc};
use slimpipe_tensor::{pool, rmsnorm, Epilogue, PackedWeight, Prologue, Tensor};
use std::time::Instant;

/// Calibration knobs. The defaults cover the executor's operating range
/// (slices of a few dozen tokens) with a 3×3 grid, 3 repeats per point.
#[derive(Clone, Debug)]
pub struct CalibrationOpts {
    /// Slice lengths (tokens) to sample.
    pub token_sizes: Vec<usize>,
    /// Numbers of *prior* KV chunks to sample (0 = first slice).
    pub chunk_counts: Vec<usize>,
    /// Timed repeats per point; the median is kept.
    pub repeats: usize,
}

impl Default for CalibrationOpts {
    fn default() -> Self {
        Self {
            token_sizes: vec![8, 16, 32],
            chunk_counts: vec![0, 1, 3],
            repeats: 3,
        }
    }
}

/// Profile shape of an executor configuration.
pub fn shape_of(cfg: &ExecConfig) -> ProfileShape {
    ProfileShape {
        heads: cfg.heads,
        kv_heads: cfg.kv_heads,
        head_dim: cfg.head_dim,
        ffn: cfg.ffn,
        vocab: cfg.vocab,
    }
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

/// Time one forward of slice `c` (with `c` prior chunks resident) and one
/// backward of the same slice, returning `(fwd_ns, bwd_ns)`.
fn time_layer_point(cfg: &ExecConfig, params: &LayerParams, t: usize, c: usize) -> (f64, f64) {
    let hc = cfg.head_cfg();
    let h = cfg.hidden();
    let mut kv = KvCache::default();
    let mut caches = Vec::new();
    // Prior slices fill the cache (untimed).
    for j in 0..c {
        let x = seeded_uniform(t, h, 40 + j as u64);
        let (y, cache) =
            layer_forward(params, hc, x, &mut kv, j, j * t, &mut LocalAttn).expect("local attn");
        y.recycle();
        caches.push(cache);
    }
    // Timed forward of slice c.
    let x = seeded_uniform(t, h, 40 + c as u64);
    let t0 = Instant::now();
    let (y, cache) =
        layer_forward(params, hc, x, &mut kv, c, c * t, &mut LocalAttn).expect("local attn");
    let fwd_ns = t0.elapsed().as_nanos() as f64;
    y.recycle();
    caches.push(cache);
    // Timed backward of slice c (the LIFO head — its stash is on top).
    let mut grads = LayerGrads::zeros(cfg);
    let mut dkv = DkvAccum::default();
    dkv.ensure(c + 1);
    let d_y = seeded_uniform(t, h, 90);
    let cache = caches.pop().expect("stash for slice c");
    let t0 = Instant::now();
    let dx = layer_backward(
        params, &mut grads, hc, cache, d_y, &mut kv, &mut dkv, c, c * t, &mut LocalAttn,
    )
    .expect("local attn");
    let bwd_ns = t0.elapsed().as_nanos() as f64;
    dx.recycle();
    // Unwind the prior slices so every pool buffer returns home.
    for j in (0..c).rev() {
        let d_y = seeded_uniform(t, h, 91);
        let cache = caches.pop().expect("prior stash");
        let dx = layer_backward(
            params, &mut grads, hc, cache, d_y, &mut kv, &mut dkv, j, j * t, &mut LocalAttn,
        )
        .expect("local attn");
        dx.recycle();
    }
    (fwd_ns, bwd_ns)
}

/// Time the classic loss head (final-norm-fused logits GEMM +
/// cross-entropy) forward and backward at `t` tokens.
fn time_head_point(cfg: &ExecConfig, out_w: &PackedWeight, t: usize) -> (f64, f64) {
    let h = cfg.hidden();
    let gain = vec![1.0f32; h];
    let hidden_in = seeded_uniform(t, h, 300);
    let targets = seeded_tokens(t, cfg.vocab, 301);

    let t0 = Instant::now();
    let inv = rmsnorm::inv_rms(&hidden_in);
    let logits = matmul_fused(
        &hidden_in,
        out_w.nn(),
        Prologue::NormRows { inv: &inv, gain: &gain },
        Epilogue::None,
    );
    pool::recycle(inv);
    let (_loss, d_logits) = crossentropy::forward_backward(&logits, &targets);
    let fwd_ns = t0.elapsed().as_nanos() as f64;
    logits.recycle();

    let mut wg = Tensor::zeros(h, cfg.vocab);
    let t0 = Instant::now();
    let inv = rmsnorm::inv_rms(&hidden_in);
    matmul_tn_acc(
        &mut wg,
        &hidden_in,
        &d_logits,
        Prologue::NormCols { inv: &inv, gain: &gain },
        Prologue::None,
    );
    pool::recycle(inv);
    let d_normed = matmul_fused(&d_logits, out_w.nt(), Prologue::None, Epilogue::None);
    let (d_hidden, d_gain) = rmsnorm::backward(&hidden_in, &gain, &d_normed);
    let bwd_ns = t0.elapsed().as_nanos() as f64;
    d_normed.recycle();
    d_hidden.recycle();
    pool::recycle(d_gain);
    d_logits.recycle();
    hidden_in.recycle();
    (fwd_ns, bwd_ns)
}

/// Time the embedding lookup and scatter-add at `t` tokens.
fn time_embed_point(cfg: &ExecConfig, table: &Tensor, t: usize) -> (f64, f64) {
    let toks = seeded_tokens(t, cfg.vocab, 400);
    let t0 = Instant::now();
    let x = slimpipe_tensor::embedding::forward(table, &toks);
    let fwd_ns = t0.elapsed().as_nanos() as f64;
    let d_y = seeded_uniform(t, cfg.hidden(), 401);
    let mut grad = Tensor::zeros(cfg.vocab, cfg.hidden());
    let t0 = Instant::now();
    slimpipe_tensor::embedding::backward(&toks, &d_y, &mut grad);
    let bwd_ns = t0.elapsed().as_nanos() as f64;
    x.recycle();
    d_y.recycle();
    (fwd_ns, bwd_ns)
}

/// Measure the comm-overlap fraction: wall-clock one exchange-enabled
/// pipeline step with the async runtime on, then with it off, and report
/// how much of the serialized time the overlapped regime hides. On a
/// single-core host the two regimes interleave on the same CPU and the
/// honest answer is ≈ 0 — the fraction only opens up when stage threads
/// (and the exchange servers they post to) actually run concurrently.
fn measure_overlap(cfg: &ExecConfig, repeats: usize) -> f64 {
    let step = |asynchronous: bool| -> f64 {
        let run_cfg = ExecConfig {
            stages: 2,
            microbatches: 2,
            exchange: true,
            vocab_parallel: false,
            async_exchange: asynchronous,
            fault_plan: None,
            checkpoint: None,
            ..cfg.clone()
        };
        let t0 = Instant::now();
        let _ = run_pipeline(&run_cfg, PipelineKind::SlimPipe, 1, 1e-3);
        t0.elapsed().as_nanos() as f64
    };
    // Warm both paths once (thread spawn + pool growth), then time.
    step(true);
    step(false);
    let overlapped = median((0..repeats).map(|_| step(true)).collect());
    let serialized = median((0..repeats).map(|_| step(false)).collect());
    if serialized <= 0.0 || !serialized.is_finite() {
        return 0.0;
    }
    (1.0 - overlapped / serialized).clamp(0.0, 1.0)
}

/// Run the calibration harness for `cfg`'s model shape and fit a profile.
pub fn calibrate(cfg: &ExecConfig, opts: &CalibrationOpts) -> CostProfile {
    assert!(opts.repeats >= 1);
    let params = LayerParams::build(cfg, 0);
    let out_w = PackedWeight::new(cfg.build_output());
    let table = cfg.build_embedding();

    let mut fwd = Vec::new();
    let mut bwd = Vec::new();
    for &t in &opts.token_sizes {
        for &c in &opts.chunk_counts {
            let pairs = causal_pairs((c * t) as u64, t as u64) as f64;
            let timed: Vec<(f64, f64)> = (0..opts.repeats)
                .map(|_| time_layer_point(cfg, &params, t, c))
                .collect();
            let f = median(timed.iter().map(|x| x.0).collect());
            let b = median(timed.iter().map(|x| x.1).collect());
            fwd.push(Sample { tokens: t as f64, pairs, ns: f });
            bwd.push(Sample { tokens: t as f64, pairs, ns: b });
        }
    }
    let (f0, ft, fp) = fit_linear3(&fwd);
    let (b0, bt, bp) = fit_linear3(&bwd);

    let mut head_f = Vec::new();
    let mut head_b = Vec::new();
    let mut emb_f = Vec::new();
    let mut emb_b = Vec::new();
    for &t in &opts.token_sizes {
        let timed: Vec<(f64, f64)> =
            (0..opts.repeats).map(|_| time_head_point(cfg, &out_w, t)).collect();
        head_f.push(Sample {
            tokens: t as f64,
            pairs: 0.0,
            ns: median(timed.iter().map(|x| x.0).collect()),
        });
        head_b.push(Sample {
            tokens: t as f64,
            pairs: 0.0,
            ns: median(timed.iter().map(|x| x.1).collect()),
        });
        let timed: Vec<(f64, f64)> =
            (0..opts.repeats).map(|_| time_embed_point(cfg, &table, t)).collect();
        emb_f.push(Sample {
            tokens: t as f64,
            pairs: 0.0,
            ns: median(timed.iter().map(|x| x.0).collect()),
        });
        emb_b.push(Sample {
            tokens: t as f64,
            pairs: 0.0,
            ns: median(timed.iter().map(|x| x.1).collect()),
        });
    }
    let (hf0, hft, _) = fit_linear3(&head_f);
    let (hb0, hbt, _) = fit_linear3(&head_b);
    // Embedding constants fold into the slope (the lookup has no fixed
    // setup worth modelling separately at slice granularity).
    let (_, ef, _) = fit_linear3(&emb_f);
    let (_, eb, _) = fit_linear3(&emb_b);

    let ov = measure_overlap(cfg, opts.repeats);

    CostProfile {
        shape: shape_of(cfg),
        // Timings above ran under the process's active attention regime;
        // stamp it so the profile can't be priced against the other kernel.
        regime: slimpipe_tensor::attn_kernel(),
        f0,
        ft,
        fp,
        b0,
        bt,
        bp,
        hf0,
        hft,
        hb0,
        hbt,
        ef,
        eb,
        ov,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_produces_a_valid_profile() {
        // Quick single-repeat calibration: on any host (arbitrarily noisy)
        // the fitted profile must still be structurally valid.
        let cfg = ExecConfig::small();
        let opts = CalibrationOpts {
            token_sizes: vec![8, 16, 32],
            chunk_counts: vec![0, 2],
            repeats: 1,
        };
        let p = calibrate(&cfg, &opts);
        p.validate().unwrap();
        assert_eq!(p.shape, shape_of(&cfg));
        // Backward is more work than forward in aggregate: compare priced
        // costs at a representative point rather than raw coefficients
        // (noise can land in different terms).
        let price = |c0: f64, ct: f64, cp: f64| c0 + ct * 32.0 + cp * 1000.0;
        assert!(
            price(p.b0, p.bt, p.bp) > 0.0 && price(p.f0, p.ft, p.fp) > 0.0,
            "priced costs must be positive"
        );
    }
}
