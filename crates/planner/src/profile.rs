//! Calibrated per-op cost profile: what one slice of `t` tokens attending
//! `pairs` causal pairs costs on this host, per transformer layer, plus the
//! loss-head and embedding edges.
//!
//! The profile is the planner's currency: [`crate::calibrate`] fits one
//! from timings of the real kernels, the JSON form pins it to a file so a
//! noisy host can commit a reference profile for deterministic tests, and
//! [`crate::cost::ProfiledCostModel`] prices whole schedules with it.
//!
//! All coefficients are nanoseconds (per call / per token / per pair).
//! The linear form `c0 + ct·t + cp·pairs` is exact for the kernels it
//! models: slice GEMM work is `O(t)` at fixed weight shapes, chunked
//! attention is `O(pairs)` with an `O(t)` softmax/merge edge, and the
//! constants absorb per-call dispatch overhead.

use slimpipe_tensor::AttnKernel;
use std::fmt::Write as _;

/// The model shape a profile was calibrated for — priced costs are only
/// meaningful against the same weight shapes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProfileShape {
    pub heads: usize,
    pub kv_heads: usize,
    pub head_dim: usize,
    pub ffn: usize,
    pub vocab: usize,
}

impl ProfileShape {
    pub fn hidden(&self) -> usize {
        self.heads * self.head_dim
    }
}

/// Fitted cost coefficients (nanoseconds).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostProfile {
    pub shape: ProfileShape,
    /// The attention kernel regime (`SLIMPIPE_ATTN_KERNEL`) the timings
    /// were taken under — attention dominates the pair slopes, so profiles
    /// are only comparable within a regime. Committed reference profiles
    /// are keyed by this tag; legacy single-profile JSON (no `"regime"`)
    /// parses as [`AttnKernel::Scalar`], the kernel that produced it.
    pub regime: AttnKernel,
    /// One transformer layer, forward: `f0 + ft·tokens + fp·pairs`.
    pub f0: f64,
    pub ft: f64,
    pub fp: f64,
    /// One transformer layer, backward.
    pub b0: f64,
    pub bt: f64,
    pub bp: f64,
    /// Classic loss head (final norm + logits GEMM + cross-entropy),
    /// forward: `hf0 + hft·tokens`.
    pub hf0: f64,
    pub hft: f64,
    /// Loss head, backward.
    pub hb0: f64,
    pub hbt: f64,
    /// Embedding lookup (stage 0), forward per token.
    pub ef: f64,
    /// Embedding scatter-add (stage 0), backward per token.
    pub eb: f64,
    /// Measured comm/compute overlap of the executor's async exchange
    /// runtime, in `[0, 1]`: the fraction of boundary-transfer time hidden
    /// behind compute (`1 − overlapped/serialized` step time). Unlike the
    /// other coefficients this is a dimensionless fraction, not
    /// nanoseconds; it lives in the same `coeffs_ns` block for the
    /// simplicity of the committed-profile format. 0 = the serialized
    /// regime (also the default when an older profile omits the key).
    pub ov: f64,
}

impl CostProfile {
    /// Every coefficient finite and non-negative — what a sane fit must
    /// produce (negative slopes are clamped by the fitter, so a violation
    /// means a hand-edited profile).
    pub fn validate(&self) -> Result<(), String> {
        let named = self.named_coeffs();
        for (name, v) in named {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("profile coefficient {name} = {v} is invalid"));
            }
        }
        if self.ft <= 0.0 && self.fp <= 0.0 {
            return Err("profile has no forward cost slope at all".into());
        }
        if self.ov > 1.0 {
            return Err(format!(
                "profile overlap fraction ov = {} exceeds 1.0",
                self.ov
            ));
        }
        Ok(())
    }

    fn named_coeffs(&self) -> [(&'static str, f64); 13] {
        [
            ("f0", self.f0),
            ("ft", self.ft),
            ("fp", self.fp),
            ("b0", self.b0),
            ("bt", self.bt),
            ("bp", self.bp),
            ("hf0", self.hf0),
            ("hft", self.hft),
            ("hb0", self.hb0),
            ("hbt", self.hbt),
            ("ef", self.ef),
            ("eb", self.eb),
            ("ov", self.ov),
        ]
    }

    /// Serialize to the committed-profile JSON format.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let s = &self.shape;
        let _ = writeln!(out, "  \"regime\": \"{}\",", self.regime.as_str());
        let _ = writeln!(
            out,
            "  \"shape\": {{\"heads\": {}, \"kv_heads\": {}, \"head_dim\": {}, \
             \"ffn\": {}, \"vocab\": {}}},",
            s.heads, s.kv_heads, s.head_dim, s.ffn, s.vocab
        );
        out.push_str("  \"coeffs_ns\": {\n");
        let named = self.named_coeffs();
        for (i, (name, v)) in named.iter().enumerate() {
            let _ = writeln!(
                out,
                "    \"{name}\": {v:.4}{}",
                if i + 1 < named.len() { "," } else { "" }
            );
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Parse the JSON format [`CostProfile::to_json`] writes. The scanner
    /// is deliberately minimal (the same style as the bench snapshot
    /// reader): it looks for `"key": number` pairs, so field order and
    /// whitespace are free.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let num = |key: &str| -> Result<f64, String> {
            let pat = format!("\"{key}\":");
            let idx = text
                .find(&pat)
                .ok_or_else(|| format!("profile JSON missing \"{key}\""))?;
            let rest = text[idx + pat.len()..].trim_start();
            let lit: String = rest
                .chars()
                .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e')
                .collect();
            lit.parse::<f64>()
                .map_err(|e| format!("profile JSON field {key}: {e}"))
        };
        let shape = ProfileShape {
            heads: num("heads")? as usize,
            kv_heads: num("kv_heads")? as usize,
            head_dim: num("head_dim")? as usize,
            ffn: num("ffn")? as usize,
            vocab: num("vocab")? as usize,
        };
        // `"regime": "<tag>"` — a string, so it gets its own tiny scan.
        // Absent (legacy single-profile JSON) means the scalar kernel that
        // produced those profiles; an unknown tag is a hand-editing error.
        let regime = match text.find("\"regime\":") {
            None => AttnKernel::Scalar,
            Some(idx) => {
                let rest = text[idx + "\"regime\":".len()..].trim_start();
                let tag: String = rest
                    .strip_prefix('"')
                    .map(|r| r.chars().take_while(|c| *c != '"').collect())
                    .ok_or_else(|| "profile JSON regime is not a string".to_string())?;
                AttnKernel::parse(&tag)
                    .ok_or_else(|| format!("profile JSON unknown regime \"{tag}\""))?
            }
        };
        let p = CostProfile {
            shape,
            regime,
            f0: num("f0")?,
            ft: num("ft")?,
            fp: num("fp")?,
            b0: num("b0")?,
            bt: num("bt")?,
            bp: num("bp")?,
            hf0: num("hf0")?,
            hft: num("hft")?,
            hb0: num("hb0")?,
            hbt: num("hbt")?,
            ef: num("ef")?,
            eb: num("eb")?,
            // Older committed profiles predate the overlap coefficient:
            // absent means the serialized regime.
            ov: num("ov").unwrap_or(0.0),
        };
        p.validate()?;
        Ok(p)
    }
}

/// One calibration observation: a timed kernel call.
#[derive(Clone, Copy, Debug)]
pub struct Sample {
    pub tokens: f64,
    pub pairs: f64,
    pub ns: f64,
}

/// Least-squares fit of `ns ≈ c0 + ct·tokens + cp·pairs` over samples, via
/// the 3×3 normal equations. Negative slopes (possible on a noisy host
/// when a regressor barely varies) are clamped to zero and the remaining
/// columns refitted, so priced costs stay monotone in workload.
pub fn fit_linear3(samples: &[Sample]) -> (f64, f64, f64) {
    assert!(samples.len() >= 3, "need at least 3 samples for a 3-term fit");
    let solve = |use_t: bool, use_p: bool| -> (f64, f64, f64) {
        // Build X^T X and X^T y for the active columns [1, t?, p?].
        let row_of = |s: &Sample| {
            let mut r = vec![1.0];
            if use_t {
                r.push(s.tokens);
            }
            if use_p {
                r.push(s.pairs);
            }
            r
        };
        let k = 1 + usize::from(use_t) + usize::from(use_p);
        let mut ata = vec![vec![0.0f64; k]; k];
        let mut aty = vec![0.0f64; k];
        for s in samples {
            let row = row_of(s);
            for i in 0..k {
                for j in 0..k {
                    ata[i][j] += row[i] * row[j];
                }
                aty[i] += row[i] * s.ns;
            }
        }
        let x = solve_gauss(&mut ata, &mut aty);
        let mut it = x.into_iter();
        let c0 = it.next().unwrap_or(0.0);
        let ct = if use_t { it.next().unwrap_or(0.0) } else { 0.0 };
        let cp = if use_p { it.next().unwrap_or(0.0) } else { 0.0 };
        (c0, ct, cp)
    };
    let (mut c0, mut ct, mut cp) = solve(true, true);
    if ct < 0.0 || cp < 0.0 {
        // Drop the offending column(s) and refit.
        let (r0, rt, rp) = solve(ct >= 0.0, cp >= 0.0);
        c0 = r0;
        ct = rt;
        cp = rp;
    }
    (c0.max(0.0), ct.max(0.0), cp.max(0.0))
}

/// Gaussian elimination with partial pivoting (k ≤ 3).
#[allow(clippy::needless_range_loop)] // the elimination indexes two rows of `a` at once
fn solve_gauss(a: &mut [Vec<f64>], y: &mut [f64]) -> Vec<f64> {
    let k = y.len();
    for col in 0..k {
        let pivot = (col..k)
            .max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
            .unwrap();
        a.swap(col, pivot);
        y.swap(col, pivot);
        let d = a[col][col];
        if d.abs() < 1e-30 {
            continue; // degenerate column: leaves coefficient 0
        }
        for row in 0..k {
            if row == col {
                continue;
            }
            let f = a[row][col] / d;
            for c in col..k {
                a[row][c] -= f * a[col][c];
            }
            y[row] -= f * y[col];
        }
    }
    (0..k)
        .map(|i| {
            if a[i][i].abs() < 1e-30 {
                0.0
            } else {
                y[i] / a[i][i]
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_profile() -> CostProfile {
        CostProfile {
            shape: ProfileShape { heads: 4, kv_heads: 2, head_dim: 8, ffn: 64, vocab: 96 },
            regime: AttnKernel::Gemm,
            f0: 1000.0,
            ft: 50.0,
            fp: 2.0,
            b0: 2000.0,
            bt: 110.0,
            bp: 4.5,
            hf0: 500.0,
            hft: 80.0,
            hb0: 600.0,
            hbt: 95.0,
            ef: 3.0,
            eb: 5.0,
            ov: 0.25,
        }
    }

    #[test]
    fn json_roundtrips() {
        let p = toy_profile();
        let q = CostProfile::from_json(&p.to_json()).unwrap();
        assert_eq!(p.shape, q.shape);
        assert_eq!(p.regime, q.regime);
        assert!((p.ft - q.ft).abs() < 1e-3);
        assert!((p.bp - q.bp).abs() < 1e-3);
        assert!((p.hbt - q.hbt).abs() < 1e-3);
    }

    #[test]
    fn regime_tag_roundtrips_and_legacy_defaults_to_scalar() {
        let mut p = toy_profile();
        p.regime = AttnKernel::Scalar;
        assert_eq!(CostProfile::from_json(&p.to_json()).unwrap().regime, AttnKernel::Scalar);
        // Pre-PR-8 committed profiles carry no regime key: they were
        // measured under the (then only) scalar kernel.
        let legacy: String = toy_profile()
            .to_json()
            .lines()
            .filter(|l| !l.contains("\"regime\""))
            .collect::<Vec<_>>()
            .join("\n");
        assert_eq!(CostProfile::from_json(&legacy).unwrap().regime, AttnKernel::Scalar);
        // An unknown tag is a hand-editing error, not a silent default.
        let bad = toy_profile().to_json().replace("\"gemm\"", "\"simd\"");
        assert!(CostProfile::from_json(&bad).is_err());
    }

    #[test]
    fn from_json_rejects_missing_and_negative() {
        assert!(CostProfile::from_json("{}").is_err());
        let mut p = toy_profile();
        p.bt = -1.0;
        assert!(CostProfile::from_json(&p.to_json()).is_err());
    }

    #[test]
    fn overlap_coefficient_roundtrips_and_defaults() {
        let p = toy_profile();
        let q = CostProfile::from_json(&p.to_json()).unwrap();
        assert!((q.ov - 0.25).abs() < 1e-3);
        // A committed profile that predates the coefficient parses as the
        // serialized regime (the scanner ignores the dangling comma).
        let legacy: String = p
            .to_json()
            .lines()
            .filter(|l| !l.contains("\"ov\""))
            .collect::<Vec<_>>()
            .join("\n");
        let q = CostProfile::from_json(&legacy).unwrap();
        assert_eq!(q.ov, 0.0);
        // Overlap is a fraction: above 1 is a hand-editing error.
        let mut bad = toy_profile();
        bad.ov = 1.5;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn fit_recovers_exact_linear_data() {
        let truth = (700.0, 12.0, 0.5);
        let samples: Vec<Sample> = [(8.0, 36.0), (16.0, 136.0), (32.0, 528.0), (16.0, 400.0), (32.0, 1552.0), (8.0, 100.0)]
            .iter()
            .map(|&(t, p)| Sample {
                tokens: t,
                pairs: p,
                ns: truth.0 + truth.1 * t + truth.2 * p,
            })
            .collect();
        let (c0, ct, cp) = fit_linear3(&samples);
        assert!((c0 - truth.0).abs() < 1e-6, "c0={c0}");
        assert!((ct - truth.1).abs() < 1e-8, "ct={ct}");
        assert!((cp - truth.2).abs() < 1e-8, "cp={cp}");
    }

    #[test]
    fn fit_clamps_negative_slopes() {
        // Data with a spurious negative pair slope: tokens dominate.
        let samples: Vec<Sample> = [(8.0, 100.0, 1000.0), (16.0, 90.0, 1960.0), (32.0, 80.0, 3900.0), (64.0, 70.0, 7810.0)]
            .iter()
            .map(|&(t, p, ns)| Sample { tokens: t, pairs: p, ns })
            .collect();
        let (_, ct, cp) = fit_linear3(&samples);
        assert!(ct > 0.0);
        assert!(cp >= 0.0);
    }
}
