//! Slicing planner: a calibrated cost-model search that turns a workload
//! description into an executable `Explicit` slice plan — per-microbatch
//! slice counts *and* token bounds.
//!
//! SlimPipe's uniform slicing plus context exchange drives bubbles near
//! zero when exchange is available; without it (or under ragged,
//! variable-length microbatches — the regime InfiniPipe studies) *choosing
//! the partition* becomes a genuine search problem: causal attention makes
//! late slices quadratically heavier, GEMM work is token-linear, and the
//! §4.1.1 memory argument caps how long an early slice may be. This crate
//! closes the repo's simulator↔executor loop around that decision:
//!
//! 1. **Calibrate** ([`calibrate`]) — time the real tensor kernels (the
//!    packed-GEMM fused layer pass, chunked attention forward/backward,
//!    loss head, embedding) at a few token-range sizes and fit a linear
//!    [`CostProfile`] (`c0 + ct·tokens + cp·pairs` per op family). The
//!    profile serialises to JSON so a noisy host can pin a committed
//!    reference profile for deterministic tests
//!    (`crates/planner/profiles/reference.json`).
//! 2. **Search** ([`search`]) — optimise explicit bounds and per-microbatch
//!    slice counts against the discrete-event engine's makespan
//!    (`slimpipe_sim::simulate` over a [`cost::ProfiledCostModel`]), with
//!    `slimpipe_core::memory`'s weighted byte walk as a hard peak-memory
//!    cap. Candidates: proportional/flat count vectors × {min-max DP,
//!    even, pair-balanced} bounds, then bound-level hill climbing.
//! 3. **Emit** ([`plan::Plan`]) — the plan lowers directly into an
//!    [`slimpipe_exec::ExecConfig`] (`SlicePolicy::ExplicitPerMb` +
//!    `mb_slices`), which the executor runs and verifies against the
//!    single-device reference.
//!
//! ```no_run
//! use slimpipe_planner::{calibrate, plan, CalibrationOpts, PlanOpts};
//! let workload = slimpipe_exec::ExecConfig::small();
//! let profile = calibrate(&workload, &CalibrationOpts::default());
//! let plan = plan(&workload, &profile, &PlanOpts::default()).unwrap();
//! let cfg = plan.to_exec_config(&workload);
//! ```

pub mod calibrate;
pub mod compare;
pub mod cost;
pub mod plan;
pub mod profile;
pub mod search;

pub use calibrate::{calibrate, shape_of, CalibrationOpts};
pub use compare::{compare_run, Comparison, UnitComparison};
pub use cost::{ByteModel, ProfiledCostModel};
pub use plan::Plan;
pub use profile::{CostProfile, ProfileShape};
pub use search::{
    plan, replan_for_stages, simulate_config, CommOpts, PlanError, PlanOpts, DEGRADED_LINK,
};

/// A planner-backed replanner for [`slimpipe_exec::run_elastic`]: on each
/// recovery it re-runs the calibrated search for the surviving stage count
/// ([`replan_for_stages`], with [`DEGRADED_LINK`] pricing the degraded
/// boundary traffic and `mem_cap_bytes` re-enforced against the byte
/// model) and lowers the winner into the config the driver resumes.
/// Planner failures surface as `ExecError::InvalidConfig`, which the
/// driver reports as an unrecoverable job error.
pub fn recovery_replanner(
    profile: CostProfile,
    mem_cap_bytes: Option<u64>,
) -> impl FnMut(
    &slimpipe_exec::ExecConfig,
    usize,
) -> Result<slimpipe_exec::ExecConfig, slimpipe_exec::ExecError> {
    move |base: &slimpipe_exec::ExecConfig, survivors: usize| {
        replan_for_stages(base, &profile, survivors, mem_cap_bytes)
            .map_err(|e| slimpipe_exec::ExecError::InvalidConfig(format!("recovery re-plan: {e}")))
    }
}

/// The committed reference profiles: calibrated once per attention kernel
/// regime on the dev host for [`slimpipe_exec::ExecConfig::small`]'s model
/// shape, pinned so planner tests are deterministic on any (arbitrarily
/// noisy) machine. The file keys one profile block per regime under
/// `"regimes"`; [`reference_profile`] picks the block matching the
/// process's active `SLIMPIPE_ATTN_KERNEL`.
pub fn reference_profile() -> CostProfile {
    reference_profile_for(slimpipe_tensor::attn_kernel())
}

/// The committed reference profile for a specific attention kernel regime.
pub fn reference_profile_for(regime: slimpipe_tensor::AttnKernel) -> CostProfile {
    let text = include_str!("../profiles/reference.json");
    // The minimal first-occurrence scanner in `CostProfile::from_json`
    // can't see nesting, so slice the regime's block out of the keyed file
    // first: from this regime's tag key to the next regime tag (or EOF).
    let keys: Vec<(usize, &str)> = ["scalar", "gemm"]
        .iter()
        .filter_map(|tag| text.find(&format!("\"{tag}\": {{")).map(|i| (i, *tag)))
        .collect();
    let start = keys
        .iter()
        .find(|(_, tag)| *tag == regime.as_str())
        .map(|(i, _)| *i)
        .expect("committed reference.json must key every kernel regime");
    let end = keys.iter().map(|(i, _)| *i).filter(|&i| i > start).min().unwrap_or(text.len());
    let p = CostProfile::from_json(&text[start..end])
        .expect("committed reference profile must parse");
    assert_eq!(p.regime, regime, "reference.json block tagged with the wrong regime");
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimpipe_tensor::AttnKernel;

    #[test]
    fn reference_profile_parses_and_matches_the_small_shape() {
        for regime in [AttnKernel::Scalar, AttnKernel::Gemm] {
            let p = reference_profile_for(regime);
            p.validate().unwrap();
            assert_eq!(p.regime, regime);
            assert_eq!(p.shape, shape_of(&slimpipe_exec::ExecConfig::small()));
        }
        // The default entry point follows the active kernel regime.
        assert_eq!(reference_profile().regime, slimpipe_tensor::attn_kernel());
    }
}
