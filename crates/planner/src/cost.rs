//! Pricing a schedule with a calibrated [`CostProfile`]: the planner-side
//! [`UnitCostModel`] the discrete-event engine simulates, plus the byte
//! model that predicts the executor's per-device peak activation bytes
//! (the hard memory cap the search enforces).

use crate::profile::CostProfile;
use slimpipe_cluster::Link;
use slimpipe_core::memory::peak_bytes_by;
use slimpipe_core::Slicing;
use slimpipe_exec::ExecConfig;
use slimpipe_sched::{PassKind, Schedule, WorkItem};
use slimpipe_sim::{OpCost, UnitCostModel};

/// Calibrated cost model for one (schedule, slicings) pair. Durations are
/// seconds (converted from the profile's nanoseconds). By default
/// inter-stage sends are free — executor stages are threads passing
/// pointers, so the schedule's structure, not the transport, is what the
/// planner shapes — but [`ProfiledCostModel::with_comm`] prices a real
/// boundary link, with the profile's calibrated overlap fraction deciding
/// how much of each edge transfer the async exchange runtime hides.
pub struct ProfiledCostModel<'a> {
    pub sched: &'a Schedule,
    pub profile: &'a CostProfile,
    pub layers_per_stage: usize,
    /// Per-microbatch slice partitions (must agree with the schedule's
    /// per-microbatch slice counts).
    pub slicings: Vec<Slicing>,
    /// Link between adjacent pipeline stages (free by default).
    pub link: Link,
    /// Boundary activation traffic per token of the sending unit (0 by
    /// default — same-process channels pass pointers).
    pub send_bytes_per_token: f64,
    /// Fraction of each edge transfer hidden behind compute, `[0, 1]`
    /// (initialized from the profile's calibrated `ov`).
    pub overlap: f64,
}

impl<'a> ProfiledCostModel<'a> {
    pub fn new(
        sched: &'a Schedule,
        profile: &'a CostProfile,
        layers_per_stage: usize,
        slicings: Vec<Slicing>,
    ) -> Self {
        assert_eq!(slicings.len(), sched.microbatches, "one slicing per microbatch");
        for (mb, s) in slicings.iter().enumerate() {
            assert_eq!(
                s.n(),
                sched.slices_of(mb),
                "microbatch {mb}: slicing and schedule disagree on the slice count"
            );
        }
        Self {
            sched,
            profile,
            layers_per_stage,
            slicings,
            link: Link { bandwidth: f64::MAX, latency: 0.0 },
            send_bytes_per_token: 0.0,
            overlap: profile.ov,
        }
    }

    /// Price boundary traffic over a real link: `bytes_per_token` of
    /// activation per boundary crossing, with `overlap` of the transfer
    /// hidden behind compute (the async regime) — `overlap = 0` prices the
    /// serialized handoff.
    pub fn with_comm(mut self, link: Link, bytes_per_token: f64, overlap: f64) -> Self {
        self.link = link;
        self.send_bytes_per_token = bytes_per_token;
        self.overlap = overlap.clamp(0.0, 1.0);
        self
    }

    fn unit(&self, op: &WorkItem) -> (f64, f64) {
        let s = &self.slicings[op.mb as usize];
        (s.len(op.slice as usize) as f64, s.pairs(op.slice as usize) as f64)
    }
}

impl UnitCostModel for ProfiledCostModel<'_> {
    fn schedule(&self) -> &Schedule {
        self.sched
    }

    fn op_cost(&self, device: usize, op: &WorkItem) -> OpCost {
        let p = self.profile;
        let (t, pairs) = self.unit(op);
        let l = self.layers_per_stage as f64;
        let first = device == 0;
        let last = device == self.sched.devices - 1;
        let ns = match op.kind {
            PassKind::Forward => {
                let mut ns = l * (p.f0 + p.ft * t + p.fp * pairs);
                if first {
                    ns += p.ef * t;
                }
                if last {
                    ns += p.hf0 + p.hft * t;
                }
                ns
            }
            PassKind::Backward => {
                let mut ns = l * (p.b0 + p.bt * t + p.bp * pairs);
                if first {
                    ns += p.eb * t;
                }
                if last {
                    ns += p.hb0 + p.hbt * t;
                }
                ns
            }
            PassKind::BackwardWeight => {
                unreachable!("the executor's schemes do not split backward")
            }
        };
        OpCost { duration: ns * 1e-9, send_bytes: self.send_bytes_per_token * t }
    }

    fn pipeline_link(&self) -> Link {
        self.link
    }

    fn edge_overlap(&self, _src: usize, _dst: usize) -> f64 {
        self.overlap
    }
}

/// Per-unit resident-byte model mirroring the executor's byte-exact
/// accounting (`SliceCache` + chunked KV per layer, plus the loss-head
/// stash on the last stage). `crates/planner/tests/closed_loop.rs` checks
/// the prediction against the executor's measured `peak_act_bytes`.
#[derive(Clone, Copy, Debug)]
pub struct ByteModel {
    pub hidden: usize,
    pub kv_hidden: usize,
    pub ffn: usize,
    pub heads: usize,
    pub vocab: usize,
    pub layers_per_stage: usize,
    pub stages: usize,
    pub vocab_parallel: bool,
}

impl ByteModel {
    pub fn from_config(cfg: &ExecConfig) -> Self {
        Self {
            hidden: cfg.hidden(),
            kv_hidden: cfg.kv_hidden(),
            ffn: cfg.ffn,
            heads: cfg.heads,
            vocab: cfg.vocab,
            layers_per_stage: cfg.layers_per_stage(),
            stages: cfg.stages,
            vocab_parallel: cfg.vocab_parallel,
        }
    }

    /// Resident bytes one in-flight unit of `t` tokens holds on `device`:
    /// per local layer the stash (`x_in`, `q`, `attn_out`, `resid_mid` at
    /// `t×h`, `gate`/`up` at `t×ffn`, `lse` at `heads·t` floats) and the KV
    /// chunk (`t×kv_hidden` twice); the last stage adds its head stash.
    pub fn unit_bytes(&self, device: usize, t: f64) -> f64 {
        let stash = 4.0 * t * (4.0 * self.hidden as f64 + 2.0 * self.ffn as f64)
            + 4.0 * self.heads as f64 * t;
        let kv = 8.0 * t * self.kv_hidden as f64;
        let mut bytes = self.layers_per_stage as f64 * (stash + kv);
        if device == self.stages - 1 {
            bytes += if self.vocab_parallel {
                // hidden_in + per-row lse.
                4.0 * t * self.hidden as f64 + 4.0 * t
            } else {
                // hidden_in + fp32 d_logits.
                4.0 * t * (self.hidden as f64 + self.vocab as f64)
            };
        }
        bytes
    }

    /// Predicted peak activation bytes on `device` — the weighted schedule
    /// walk over the plan's actual token ranges.
    pub fn predicted_peak(&self, sched: &Schedule, slicings: &[Slicing], device: usize) -> f64 {
        peak_bytes_by(sched, device, &|op: &WorkItem| {
            self.unit_bytes(device, slicings[op.mb as usize].len(op.slice as usize) as f64)
        })
    }

    /// Worst predicted peak across devices.
    pub fn worst_predicted_peak(&self, sched: &Schedule, slicings: &[Slicing]) -> f64 {
        (0..sched.devices)
            .map(|d| self.predicted_peak(sched, slicings, d))
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ProfileShape;

    fn toy_profile() -> CostProfile {
        CostProfile {
            shape: ProfileShape { heads: 4, kv_heads: 2, head_dim: 8, ffn: 64, vocab: 96 },
            regime: slimpipe_tensor::AttnKernel::Gemm,
            f0: 1000.0,
            ft: 50.0,
            fp: 2.0,
            b0: 2000.0,
            bt: 110.0,
            bp: 4.5,
            hf0: 500.0,
            hft: 80.0,
            hb0: 600.0,
            hbt: 95.0,
            ef: 3.0,
            eb: 5.0,
            ov: 0.0,
        }
    }

    #[test]
    fn op_costs_follow_the_linear_form() {
        let sched = slimpipe_core::schedule::generate(2, 1, 2).unwrap();
        let profile = toy_profile();
        let slicings = vec![Slicing::even(64, 2)];
        let cm = ProfiledCostModel::new(&sched, &profile, 2, slicings);
        let f = cm.op_cost(0, &WorkItem::f(0, 0, 0)).duration / 1e-9;
        // Stage 0: 2 layers + embedding, slice 0 = 32 tokens, 528 pairs.
        let want = 2.0 * (1000.0 + 50.0 * 32.0 + 2.0 * 528.0) + 3.0 * 32.0;
        assert!((f - want).abs() < 1e-6, "{f} vs {want}");
        // Last stage adds the head; slice 1 attends more pairs.
        let b = cm.op_cost(1, &WorkItem::b(0, 1, 0)).duration / 1e-9;
        let pairs1 = slimpipe_model::causal_pairs(32, 32) as f64;
        let want = 2.0 * (2000.0 + 110.0 * 32.0 + 4.5 * pairs1) + 600.0 + 95.0 * 32.0;
        assert!((b - want).abs() < 1e-6, "{b} vs {want}");
    }

    #[test]
    fn simulation_runs_on_a_profiled_model() {
        let sched = slimpipe_core::schedule::generate_var(2, &[4, 2]).unwrap();
        let profile = toy_profile();
        let slicings = vec![Slicing::even(64, 4), Slicing::even(48, 2)];
        let cm = ProfiledCostModel::new(&sched, &profile, 2, slicings);
        let r = slimpipe_sim::simulate(&cm);
        assert!(r.makespan > 0.0 && r.bubble_fraction >= 0.0 && r.bubble_fraction < 1.0);
        assert_eq!(r.total_ops, 2 * 2 * (4 + 2));
    }

    #[test]
    fn overlap_prices_below_serialized_on_a_real_link() {
        let sched = slimpipe_core::schedule::generate(2, 2, 4).unwrap();
        let profile = toy_profile();
        let slicings = vec![Slicing::even(64, 4), Slicing::even(64, 4)];
        // A deliberately slow link so edge transfers dominate.
        let link = Link { bandwidth: 1e6, latency: 1e-5 };
        let serialized = ProfiledCostModel::new(&sched, &profile, 2, slicings.clone())
            .with_comm(link, 256.0, 0.0);
        let overlapped = ProfiledCostModel::new(&sched, &profile, 2, slicings)
            .with_comm(link, 256.0, 1.0);
        let s = slimpipe_sim::simulate(&serialized).makespan;
        let o = slimpipe_sim::simulate(&overlapped).makespan;
        assert!(
            o < s,
            "fully hidden edges must shorten the makespan: overlapped={o} serialized={s}"
        );
    }

    #[test]
    fn free_link_defaults_price_like_before() {
        // The default constructor must keep the historical free-transport
        // pricing bit-for-bit (the search's scores depend on it).
        let sched = slimpipe_core::schedule::generate(2, 1, 2).unwrap();
        let profile = toy_profile();
        let cm = ProfiledCostModel::new(&sched, &profile, 2, vec![Slicing::even(64, 2)]);
        assert_eq!(cm.op_cost(0, &WorkItem::f(0, 0, 0)).send_bytes, 0.0);
        assert_eq!(cm.pipeline_link().latency, 0.0);
    }

    #[test]
    fn byte_model_weighs_long_slices_more() {
        let cfg = ExecConfig::small();
        let bm = ByteModel::from_config(&cfg);
        let sched = slimpipe_core::schedule::generate(2, 2, 4).unwrap();
        let uniform = vec![Slicing::even(64, 4), Slicing::even(64, 4)];
        let skewed = vec![
            Slicing::explicit(64, vec![0, 40, 50, 60, 64]),
            Slicing::even(64, 4),
        ];
        // Device 0 stashes the earliest (long) slices first — the skewed
        // partition must predict a higher warm-up peak.
        let u = bm.predicted_peak(&sched, &uniform, 0);
        let s = bm.predicted_peak(&sched, &skewed, 0);
        assert!(s > u, "skewed {s} should exceed uniform {u}");
    }
}
