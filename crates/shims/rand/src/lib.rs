//! Workspace-local shim for the subset of `rand` 0.9 this repository uses:
//! `StdRng::seed_from_u64`, `Rng::random::<f32>()`, and
//! `Rng::random_range(Range<uN>)`.
//!
//! The generator is SplitMix64 — not cryptographic, but statistically fine
//! for seeding test tensors, and deterministic across platforms, which is
//! the property the executor's equivalence harness actually depends on.

use std::ops::{Range, RangeInclusive};

/// Seedable constructor, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::random`].
pub trait StandardValue {
    fn from_u64(raw: u64) -> Self;
}

impl StandardValue for f32 {
    #[inline]
    fn from_u64(raw: u64) -> Self {
        // 24 high-quality mantissa bits -> uniform [0, 1).
        ((raw >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardValue for f64 {
    #[inline]
    fn from_u64(raw: u64) -> Self {
        ((raw >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardValue for u32 {
    #[inline]
    fn from_u64(raw: u64) -> Self {
        (raw >> 32) as u32
    }
}

impl StandardValue for u64 {
    #[inline]
    fn from_u64(raw: u64) -> Self {
        raw
    }
}

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange {
    type Output;
    fn sample(self, raw: u64) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, raw: u64) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u128;
                self.start + (((raw as u128 * span) >> 64) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, raw: u64) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty range");
                let span = (e - s) as u128 + 1;
                s + (((raw as u128 * span) >> 64) as $t)
            }
        }
    )*};
}

impl_sample_range!(u32, u64, usize, i64);

/// The user-facing generator trait, mirroring `rand::Rng`.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    #[inline]
    fn random<T: StandardValue>(&mut self) -> T {
        T::from_u64(self.next_u64())
    }

    #[inline]
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self.next_u64())
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// SplitMix64 — the stand-in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Pre-mix once so nearby seeds diverge immediately.
            let mut rng = StdRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 };
            let _ = rng.next_u64();
            rng
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f32_is_unit_interval_and_spread() {
        let mut r = StdRng::seed_from_u64(1);
        let vals: Vec<f32> = (0..1000).map(|_| r.random::<f32>()).collect();
        assert!(vals.iter().all(|v| (0.0..1.0).contains(v)));
        let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = r.random_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = r.random_range(5usize..=9);
            assert!((5..=9).contains(&y));
        }
        // All values of a small range get hit.
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.random_range(0u32..4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
