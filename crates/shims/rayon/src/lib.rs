//! Workspace-local shim for the subset of `rayon` this repository uses,
//! backed by a **persistent work-stealing worker pool**.
//!
//! The build environment has no access to a crate registry, so this crate
//! provides the surface the kernels program against: indexed parallel
//! iteration over ranges and mutable chunk iteration over slices.
//!
//! ## Execution model
//!
//! A parallel region is a *region descriptor* — an erased `Fn(usize)`
//! closure plus an atomic grab-next task index — submitted to a lazy global
//! pool of detached worker threads. Scheduling follows the classic
//! injector/deque shape (`crossbeam::deque`): the caller seeds one region
//! handle into the shared [`Injector`]; each worker that picks the handle
//! up re-publishes one more copy into its *own* deque (while the region
//! still wants participants and has unclaimed tasks), so recruitment
//! propagates peer-to-peer and siblings steal handles from each other
//! rather than contending on a single queue. Within a region, tasks are
//! claimed by `fetch_add` on the shared index — work-stealing at task
//! granularity, so an uneven task costs no static partitioning penalty.
//!
//! The caller always participates in its own region and blocks only after
//! the task index is exhausted, which also makes nested regions
//! deadlock-free: every region's caller can drain it alone.
//!
//! ## Pool lifecycle
//!
//! Workers are spawned lazily, only when a region wants more participants
//! than the pool holds, and never exit (they park on a condvar between
//! regions). [`pool_thread_spawns`] counts every OS thread the pool ever
//! created: after one warm-up region at the maximum requested width, a
//! steady-state workload spawns **zero** new threads — asserted in this
//! crate's tests and in `crates/exec/tests/conformance.rs`.
//!
//! ## Thread-count control
//!
//! Effective width per region, highest precedence first: the calling
//! thread's [`with_num_threads`] override, the process-wide
//! [`set_num_threads`] override, the `RAYON_NUM_THREADS` environment
//! variable, then `available_parallelism`. Width 1 degenerates to the
//! plain sequential loop with zero synchronisation and zero pool traffic.
//! Kernels built on this shim partition work into tasks with disjoint
//! output regions and reduce partials in fixed task order, so results are
//! bit-identical across *every* width — tests force widths on single-core
//! hosts with `with_num_threads` and compare bits.

use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

thread_local! {
    /// Per-thread override installed by [`with_num_threads`]; 0 = none.
    static THREAD_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// Process-wide override installed by [`set_num_threads`]; 0 = none.
static GLOBAL_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Hard sanity cap on pool size.
const MAX_WORKERS: usize = 256;

/// Effective worker count: `with_num_threads` override, else the
/// process-wide `set_num_threads` override, else the `RAYON_NUM_THREADS`
/// environment variable, else available parallelism.
pub fn current_num_threads() -> usize {
    let o = THREAD_OVERRIDE.with(|c| c.get());
    if o > 0 {
        return o;
    }
    let g = GLOBAL_OVERRIDE.load(Ordering::Relaxed);
    if g > 0 {
        return g;
    }
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Run `f` with the calling thread's pool width pinned to `n` — used by
/// benchmarks to measure thread scaling and by tests to force the parallel
/// code paths on single-core machines. Nested parallel calls made by `f`
/// on *this* thread observe the override.
pub fn with_num_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let prev = THREAD_OVERRIDE.with(|c| c.replace(n));
    let out = f();
    THREAD_OVERRIDE.with(|c| c.set(prev));
    out
}

/// Install (`n > 0`) or clear (`n == 0`) a process-wide width override.
/// Unlike [`with_num_threads`] it is seen by *every* thread without one of
/// its own — the way tests force parallel kernels inside executor stage
/// threads they did not spawn themselves.
pub fn set_num_threads(n: usize) {
    GLOBAL_OVERRIDE.store(n, Ordering::Relaxed);
}

/// Total OS threads the pool has ever spawned. Monotonic; stable counts
/// across workloads prove regions reuse the persistent workers instead of
/// spawning per region. Thin shim over the unified observability registry
/// (`slimpipe_obs::counters::POOL_THREAD_SPAWNS`).
pub fn pool_thread_spawns() -> u64 {
    slimpipe_obs::counters::POOL_THREAD_SPAWNS.get()
}

/// Workers currently alive in the pool (they never exit once spawned).
pub fn pool_size() -> usize {
    pool().registry.lock().unwrap().len()
}

// ---------------------------------------------------------------------------
// Region descriptors
// ---------------------------------------------------------------------------

/// One parallel region: an erased task closure plus claim/completion state.
///
/// The closure pointer's lifetime is erased to `'static` for storage; the
/// submitting caller guarantees it outlives every dereference by blocking
/// until `done == n`, and `work` only dereferences it for claimed indices
/// `i < n` — each claimed exactly once, each completion counted in `done`.
struct Region {
    f: *const (dyn Fn(usize) + Sync + 'static),
    n: usize,
    /// Task indices claimed per `fetch_add` — `ParRange::with_min_len`'s
    /// chunked claiming. One `fetch_add` hands a participant a whole batch,
    /// cutting contention on `next` for very fine tasks.
    batch: usize,
    /// Next unclaimed task index (may overshoot `n` by one batch per
    /// participant).
    next: AtomicUsize,
    /// Completed task count; the region is over when it reaches `n`.
    done: AtomicUsize,
    /// Additional region handles still to be published (participants still
    /// wanted beyond the caller and the handle-holders already recruited).
    recruit: AtomicUsize,
    /// Set when any task panicked; remaining tasks drain without running.
    poisoned: std::sync::atomic::AtomicBool,
    /// First panic payload, re-thrown on the submitting thread.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    fin_lock: Mutex<()>,
    fin_cvar: Condvar,
}

// Safety: the raw closure pointer is only dereferenced under the claiming
// protocol described on [`Region`]; the closure itself is `Sync`.
unsafe impl Send for Region {}
unsafe impl Sync for Region {}

impl Region {
    /// Claim and run tasks, a batch of indices per `fetch_add`, until the
    /// index space is exhausted.
    ///
    /// Panics in the closure are caught — never unwound past the region —
    /// so the erased closure stays alive until every participant is done
    /// (no use-after-free) and `done` still reaches `n` (no hung caller):
    /// the region is poisoned, the remaining tasks drain without running,
    /// and the submitting thread re-throws the first payload.
    fn work(&self) {
        loop {
            let start = self.next.fetch_add(self.batch, Ordering::Relaxed);
            if start >= self.n {
                return;
            }
            let end = (start + self.batch).min(self.n);
            if !self.poisoned.load(Ordering::Relaxed) {
                // Safety: each `i < n` is claimed exactly once (batches are
                // disjoint); the caller keeps the closure alive until
                // `done == n`, which cannot happen before this call returns.
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    for i in start..end {
                        if self.poisoned.load(Ordering::Relaxed) {
                            break;
                        }
                        unsafe { (*self.f)(i) }
                    }
                }));
                if let Err(payload) = r {
                    self.poisoned.store(true, Ordering::Relaxed);
                    let mut slot = self.panic.lock().unwrap();
                    slot.get_or_insert(payload);
                }
            }
            let claimed = end - start;
            if self.done.fetch_add(claimed, Ordering::Release) + claimed == self.n {
                // Serialise with the caller's check-then-wait so the final
                // wakeup is never lost.
                let _g = self.fin_lock.lock().unwrap();
                self.fin_cvar.notify_all();
            }
        }
    }

    /// Take one recruitment slot if the region still wants participants.
    fn try_recruit(&self) -> bool {
        self.recruit
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |r| r.checked_sub(1))
            .is_ok()
    }

    fn exhausted(&self) -> bool {
        self.next.load(Ordering::Relaxed) >= self.n
    }
}

// ---------------------------------------------------------------------------
// The pool
// ---------------------------------------------------------------------------

type Job = Arc<Region>;

struct Pool {
    injector: Injector<Job>,
    /// One stealer per live worker; grows under the registry lock.
    registry: Mutex<Vec<Stealer<Job>>>,
    /// Wake tokens: one per published job, consumed by one waking worker.
    /// Excess tokens (for jobs drained during a worker's pre-sleep scan)
    /// cause at most one spurious wake each; missing tokens never occur
    /// because every push is followed by a token.
    sleep: Mutex<usize>,
    wake: Condvar,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        injector: Injector::new(),
        registry: Mutex::new(Vec::new()),
        sleep: Mutex::new(0),
        wake: Condvar::new(),
    })
}

impl Pool {
    /// Grow to at least `want` workers (capped); returns instantly when
    /// already large enough — the steady-state path.
    fn ensure_workers(&'static self, want: usize) {
        let want = want.min(MAX_WORKERS);
        {
            let reg = self.registry.lock().unwrap();
            if reg.len() >= want {
                return;
            }
        }
        let mut reg = self.registry.lock().unwrap();
        while reg.len() < want {
            let me = reg.len();
            let deque: Worker<Job> = Worker::new_lifo();
            reg.push(deque.stealer());
            slimpipe_obs::counters::POOL_THREAD_SPAWNS.incr();
            std::thread::Builder::new()
                .name(format!("rayon-shim-{me}"))
                .spawn(move || self.worker_loop(me, deque))
                .expect("failed to spawn pool worker");
        }
    }

    /// Publish one region handle and a wake token.
    fn publish(&self, job: Job) {
        self.injector.push(job);
        let mut tokens = self.sleep.lock().unwrap();
        *tokens += 1;
        self.wake.notify_one();
    }

    /// A worker publishes a handle into its own deque (stealable by
    /// siblings) and issues a wake token.
    fn publish_local(&self, deque: &Worker<Job>, job: Job) {
        deque.push(job);
        let mut tokens = self.sleep.lock().unwrap();
        *tokens += 1;
        self.wake.notify_one();
    }

    /// Own deque first (newest region — cache-warm), then the injector,
    /// then steal from siblings.
    fn find_job(&self, me: usize, deque: &Worker<Job>) -> Option<Job> {
        if let Some(job) = deque.pop() {
            return Some(job);
        }
        loop {
            match self.injector.steal() {
                Steal::Success(job) => return Some(job),
                Steal::Empty => break,
                Steal::Retry => continue,
            }
        }
        let stealers = self.registry.lock().unwrap();
        for (i, st) in stealers.iter().enumerate() {
            if i == me {
                continue;
            }
            loop {
                match st.steal() {
                    Steal::Success(job) => return Some(job),
                    Steal::Empty => break,
                    Steal::Retry => continue,
                }
            }
        }
        None
    }

    fn worker_loop(&'static self, me: usize, deque: Worker<Job>) {
        loop {
            if let Some(job) = self.find_job(me, &deque) {
                if !job.exhausted() {
                    // Propagate recruitment before working so width builds
                    // up while this worker chews tasks.
                    if job.try_recruit() {
                        self.publish_local(&deque, job.clone());
                    }
                    job.work();
                }
                continue;
            }
            // Sleep until a token arrives. Tokens are a semaphore over
            // published jobs; waking with a stale token just re-scans and
            // sleeps again.
            let mut tokens = self.sleep.lock().unwrap();
            loop {
                if *tokens > 0 {
                    *tokens -= 1;
                    break;
                }
                tokens = self.wake.wait(tokens).unwrap();
            }
        }
    }
}

/// Core driver: invoke `f(i)` for every `i in 0..n`, fanned out over the
/// persistent pool with an atomic grab-next index. The calling thread
/// always participates; sequential widths bypass the pool entirely.
fn run_indexed<F: Fn(usize) + Sync>(n: usize, f: F) {
    run_indexed_batched(n, 1, f)
}

/// [`run_indexed`] with chunked claiming: participants grab `batch` indices
/// per `fetch_add`. Indices still run in ascending order within a batch and
/// tasks keep disjoint outputs, so results are bit-identical to `batch = 1`
/// at every width.
fn run_indexed_batched<F: Fn(usize) + Sync>(n: usize, batch: usize, f: F) {
    let batch = batch.max(1);
    let width = current_num_threads().min(n.div_ceil(batch));
    if width <= 1 {
        for i in 0..n {
            f(i);
        }
        return;
    }
    let p = pool();
    p.ensure_workers(width - 1);
    // Safety: the transmute erases `f`'s borrow lifetime. The region's
    // completion protocol (documented on [`Region`]) guarantees no
    // dereference happens after this function returns.
    let f_ref: &(dyn Fn(usize) + Sync) = &f;
    let f_erased: *const (dyn Fn(usize) + Sync + 'static) =
        unsafe { std::mem::transmute(f_ref) };
    let region = Arc::new(Region {
        f: f_erased,
        n,
        batch,
        next: AtomicUsize::new(0),
        done: AtomicUsize::new(0),
        recruit: AtomicUsize::new(width - 1),
        poisoned: std::sync::atomic::AtomicBool::new(false),
        panic: Mutex::new(None),
        fin_lock: Mutex::new(()),
        fin_cvar: Condvar::new(),
    });
    if region.try_recruit() {
        p.publish(region.clone());
    }
    region.work();
    {
        let mut g = region.fin_lock.lock().unwrap();
        while region.done.load(Ordering::Acquire) < n {
            g = region.fin_cvar.wait(g).unwrap();
        }
    }
    // Every task is accounted for — safe to re-throw a worker's panic now
    // that no participant can still dereference the closure.
    let payload = region.panic.lock().unwrap().take();
    if let Some(payload) = payload {
        std::panic::resume_unwind(payload);
    }
}

// ---------------------------------------------------------------------------
// Iterator facade (the rayon API subset the kernels use)
// ---------------------------------------------------------------------------

/// Parallel iterator over a `Range<usize>`.
pub struct ParRange {
    range: Range<usize>,
    min_len: usize,
}

impl ParRange {
    /// Chunked claiming: hand each participant at least `min` consecutive
    /// indices per claim (one `fetch_add` per batch instead of per index).
    /// Purely a contention knob — coverage, per-index order within a batch,
    /// and therefore every output bit are unchanged.
    pub fn with_min_len(self, min: usize) -> Self {
        Self { min_len: min.max(1), ..self }
    }

    pub fn for_each<F: Fn(usize) + Sync>(self, f: F) {
        let start = self.range.start;
        let n = self.range.end.saturating_sub(start);
        run_indexed_batched(n, self.min_len, |i| f(start + i));
    }
}

/// Parallel mutable chunk iterator over a slice.
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

/// [`ParChunksMut`] with indices attached.
pub struct EnumChunksMut<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

/// Raw base pointer shared across region tasks; each task derives its own
/// disjoint chunk from the index, so no two tasks alias.
struct SharedPtr<T>(*mut T);
unsafe impl<T: Send> Send for SharedPtr<T> {}
unsafe impl<T: Send> Sync for SharedPtr<T> {}

impl<T> SharedPtr<T> {
    /// Accessor (rather than a public field) so closures capture the
    /// `Sync` wrapper itself, not the raw pointer inside it.
    fn get(&self) -> *mut T {
        self.0
    }
}

fn run_chunks<T: Send, F: Fn(usize, &mut [T]) + Sync>(slice: &mut [T], size: usize, f: F) {
    assert!(size > 0, "chunk size must be positive");
    let len = slice.len();
    // Sequential path runs the identical chunk order with zero overhead.
    if current_num_threads() <= 1 || len <= size {
        for (i, c) in slice.chunks_mut(size).enumerate() {
            f(i, c);
        }
        return;
    }
    let n = len.div_ceil(size);
    let base = SharedPtr(slice.as_mut_ptr());
    run_indexed(n, |i| {
        let start = i * size;
        let clen = (len - start).min(size);
        // Safety: chunk `i` covers `[i*size, i*size+clen)` — pairwise
        // disjoint across task indices, each claimed exactly once.
        let chunk = unsafe { std::slice::from_raw_parts_mut(base.get().add(start), clen) };
        f(i, chunk);
    });
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    pub fn enumerate(self) -> EnumChunksMut<'a, T> {
        EnumChunksMut { slice: self.slice, size: self.size }
    }

    pub fn for_each<F: Fn(&mut [T]) + Sync>(self, f: F) {
        run_chunks(self.slice, self.size, |_, c| f(c));
    }
}

impl<T: Send> EnumChunksMut<'_, T> {
    pub fn for_each<F: Fn((usize, &mut [T])) + Sync>(self, f: F) {
        run_chunks(self.slice, self.size, |i, c| f((i, c)));
    }
}

pub mod iter {
    pub use super::{EnumChunksMut, ParChunksMut, ParRange};
}

pub mod slice {
    pub use super::prelude::ParallelSliceMut;
}

pub mod prelude {
    use super::*;

    /// `into_par_iter()` for ranges.
    pub trait IntoParallelIterator {
        type Iter;
        fn into_par_iter(self) -> Self::Iter;
    }

    impl IntoParallelIterator for Range<usize> {
        type Iter = ParRange;
        fn into_par_iter(self) -> ParRange {
            ParRange { range: self, min_len: 1 }
        }
    }

    /// `par_chunks_mut()` for slices.
    pub trait ParallelSliceMut<T: Send> {
        fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
            ParChunksMut { slice: self, size }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn range_for_each_visits_everything() {
        let sum = AtomicU64::new(0);
        with_num_threads(4, || {
            (0..100usize).into_par_iter().for_each(|i| {
                sum.fetch_add(i as u64, Ordering::Relaxed);
            });
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn chunks_cover_the_slice_disjointly() {
        let mut v = [0u32; 37];
        with_num_threads(4, || {
            v.par_chunks_mut(5).enumerate().for_each(|(i, c)| {
                for x in c.iter_mut() {
                    *x += 1 + i as u32;
                }
            });
        });
        // Every element written exactly once, by its own chunk's task.
        for (j, x) in v.iter().enumerate() {
            assert_eq!(*x, 1 + (j / 5) as u32, "index {j}");
        }
    }

    /// Chunked claiming must cover every index exactly once, for batch
    /// sizes below, at, and above the range length.
    #[test]
    fn with_min_len_visits_every_index_exactly_once() {
        for min_len in [1usize, 2, 3, 7, 64, 1000] {
            let counts: Vec<AtomicU64> = (0..100).map(|_| AtomicU64::new(0)).collect();
            with_num_threads(4, || {
                (0..100usize)
                    .into_par_iter()
                    .with_min_len(min_len)
                    .for_each(|i| {
                        counts[i].fetch_add(1, Ordering::Relaxed);
                    });
            });
            for (i, c) in counts.iter().enumerate() {
                assert_eq!(c.load(Ordering::Relaxed), 1, "min_len={min_len} index {i}");
            }
        }
    }

    /// A batch larger than the range degenerates to the sequential path
    /// (one claimant) and still covers everything.
    #[test]
    fn oversized_batch_runs_sequentially() {
        let sum = AtomicU64::new(0);
        with_num_threads(4, || {
            (0..10usize).into_par_iter().with_min_len(100).for_each(|i| {
                sum.fetch_add(i as u64, Ordering::Relaxed);
            });
        });
        assert_eq!(sum.load(Ordering::Relaxed), 45);
    }

    /// A panic inside a batched region still propagates and drains.
    #[test]
    fn batched_region_propagates_panics() {
        let result = std::panic::catch_unwind(|| {
            with_num_threads(4, || {
                (0..64usize).into_par_iter().with_min_len(4).for_each(|i| {
                    if i == 21 {
                        panic!("batched boom");
                    }
                });
            });
        });
        let payload = result.expect_err("the task panic must propagate");
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"batched boom"));
    }

    #[test]
    fn override_nests_and_restores() {
        with_num_threads(3, || {
            assert_eq!(current_num_threads(), 3);
            with_num_threads(1, || assert_eq!(current_num_threads(), 1));
            assert_eq!(current_num_threads(), 3);
        });
    }

    #[test]
    fn global_override_is_visible_from_other_threads() {
        set_num_threads(5);
        let seen = std::thread::spawn(current_num_threads).join().unwrap();
        set_num_threads(0);
        // Thread-local override still wins over the global one.
        with_num_threads(2, || {
            set_num_threads(7);
            assert_eq!(current_num_threads(), 2);
            set_num_threads(0);
        });
        assert_eq!(seen, 5);
    }

    /// The pool is warm after the first wide region: every later region —
    /// wider loops, chunk loops, repeated invocations — spawns nothing.
    #[test]
    fn steady_state_regions_spawn_zero_threads() {
        let sum = AtomicU64::new(0);
        let run = |width: usize| {
            with_num_threads(width, || {
                (0..64usize).into_par_iter().for_each(|i| {
                    sum.fetch_add(i as u64, Ordering::Relaxed);
                });
            })
        };
        run(4); // warm-up: may spawn up to 3 workers
        let warm = pool_thread_spawns();
        assert!(pool_size() >= 3, "pool must hold the warm-up workers");
        for _ in 0..50 {
            run(4);
            run(2);
        }
        let mut v = vec![0u8; 1000];
        with_num_threads(4, || {
            v.par_chunks_mut(10).for_each(|c| c.fill(1));
        });
        assert_eq!(
            pool_thread_spawns(),
            warm,
            "steady-state parallel regions must not spawn threads"
        );
        assert!(v.iter().all(|&x| x == 1));
    }

    /// Region results must not depend on which worker ran which task.
    #[test]
    fn many_concurrent_regions_from_many_threads() {
        std::thread::scope(|s| {
            for t in 0..4u64 {
                s.spawn(move || {
                    for round in 0..20u64 {
                        let sum = AtomicU64::new(0);
                        with_num_threads(3, || {
                            (0..33usize).into_par_iter().for_each(|i| {
                                sum.fetch_add(i as u64 + t + round, Ordering::Relaxed);
                            });
                        });
                        assert_eq!(sum.load(Ordering::Relaxed), 528 + 33 * (t + round));
                    }
                });
            }
        });
    }

    /// A panicking task must neither hang the caller (done still reaches n)
    /// nor unwind past the region while workers hold the erased closure:
    /// the payload is re-thrown on the calling thread, and the pool stays
    /// fully operational afterwards.
    #[test]
    fn task_panics_propagate_to_the_caller_without_hanging() {
        let result = std::panic::catch_unwind(|| {
            with_num_threads(4, || {
                (0..64usize).into_par_iter().for_each(|i| {
                    if i == 13 {
                        panic!("boom");
                    }
                });
            });
        });
        let payload = result.expect_err("the task panic must propagate");
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"boom"));
        let sum = AtomicU64::new(0);
        with_num_threads(4, || {
            (0..10usize).into_par_iter().for_each(|i| {
                sum.fetch_add(i as u64, Ordering::Relaxed);
            });
        });
        assert_eq!(sum.load(Ordering::Relaxed), 45, "pool must survive a panic");
    }

    /// Nested regions must complete (the caller can always drain its own
    /// region, so nesting cannot deadlock).
    #[test]
    fn nested_regions_complete() {
        let total = AtomicU64::new(0);
        with_num_threads(3, || {
            (0..4usize).into_par_iter().for_each(|_| {
                let inner = AtomicU64::new(0);
                with_num_threads(2, || {
                    (0..8usize).into_par_iter().for_each(|j| {
                        inner.fetch_add(j as u64, Ordering::Relaxed);
                    });
                });
                total.fetch_add(inner.load(Ordering::Relaxed), Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 4 * 28);
    }
}
