//! Workspace-local shim for the subset of `rayon` this repository uses.
//!
//! The build environment has no access to a crate registry, so this crate
//! provides the same surface the kernels program against: indexed parallel
//! iteration over ranges and mutable chunk iteration over slices. Work is
//! distributed over scoped OS threads with an atomic work-stealing index;
//! when the effective thread count is 1 (the default tracks
//! `available_parallelism`, overridable with `RAYON_NUM_THREADS` or
//! [`with_num_threads`]) everything degenerates to the sequential loop with
//! zero synchronisation overhead.

use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    /// Per-thread override installed by [`with_num_threads`]; 0 = none.
    static THREAD_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// Effective worker count: `with_num_threads` override, else the
/// `RAYON_NUM_THREADS` environment variable, else available parallelism.
pub fn current_num_threads() -> usize {
    let o = THREAD_OVERRIDE.with(|c| c.get());
    if o > 0 {
        return o;
    }
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Run `f` with the calling thread's pool size pinned to `n` — used by
/// benchmarks to measure thread scaling and by tests to force the parallel
/// code paths on single-core machines. Nested parallel calls made by `f`
/// on *this* thread observe the override.
pub fn with_num_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let prev = THREAD_OVERRIDE.with(|c| c.replace(n));
    let out = f();
    THREAD_OVERRIDE.with(|c| c.set(prev));
    out
}

/// Core driver: invoke `f(i)` for every `i in 0..n`, fanned out over scoped
/// threads with an atomic grab-next index.
fn run_indexed<F: Fn(usize) + Sync>(n: usize, f: F) {
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        for i in 0..n {
            f(i);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                f(i);
            });
        }
    });
}

/// Parallel iterator over a `Range<usize>`.
pub struct ParRange {
    range: Range<usize>,
}

impl ParRange {
    /// Accepted for API compatibility; the shim always hands out single
    /// indices, so the hint is a no-op.
    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }

    pub fn for_each<F: Fn(usize) + Sync>(self, f: F) {
        let start = self.range.start;
        let n = self.range.end.saturating_sub(start);
        run_indexed(n, |i| f(start + i));
    }
}

/// Parallel mutable chunk iterator over a slice.
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

/// [`ParChunksMut`] with indices attached.
pub struct EnumChunksMut<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

fn run_chunks<T: Send, F: Fn(usize, &mut [T]) + Sync>(slice: &mut [T], size: usize, f: F) {
    assert!(size > 0, "chunk size must be positive");
    // Sequential path allocates nothing — check before materialising the
    // work list.
    if current_num_threads() <= 1 || slice.len() <= size {
        for (i, c) in slice.chunks_mut(size).enumerate() {
            f(i, c);
        }
        return;
    }
    let chunks: Vec<(usize, &mut [T])> = slice.chunks_mut(size).enumerate().collect();
    let n = chunks.len();
    let threads = current_num_threads().min(n);
    let work = Mutex::new(chunks.into_iter());
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let item = work.lock().unwrap().next();
                match item {
                    Some((i, c)) => f(i, c),
                    None => break,
                }
            });
        }
    });
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    pub fn enumerate(self) -> EnumChunksMut<'a, T> {
        EnumChunksMut { slice: self.slice, size: self.size }
    }

    pub fn for_each<F: Fn(&mut [T]) + Sync>(self, f: F) {
        run_chunks(self.slice, self.size, |_, c| f(c));
    }
}

impl<T: Send> EnumChunksMut<'_, T> {
    pub fn for_each<F: Fn((usize, &mut [T])) + Sync>(self, f: F) {
        run_chunks(self.slice, self.size, |i, c| f((i, c)));
    }
}

pub mod iter {
    pub use super::{EnumChunksMut, ParChunksMut, ParRange};
}

pub mod slice {
    pub use super::prelude::ParallelSliceMut;
}

pub mod prelude {
    use super::*;

    /// `into_par_iter()` for ranges.
    pub trait IntoParallelIterator {
        type Iter;
        fn into_par_iter(self) -> Self::Iter;
    }

    impl IntoParallelIterator for Range<usize> {
        type Iter = ParRange;
        fn into_par_iter(self) -> ParRange {
            ParRange { range: self }
        }
    }

    /// `par_chunks_mut()` for slices.
    pub trait ParallelSliceMut<T: Send> {
        fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
            ParChunksMut { slice: self, size }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn range_for_each_visits_everything() {
        let sum = AtomicU64::new(0);
        with_num_threads(4, || {
            (0..100usize).into_par_iter().for_each(|i| {
                sum.fetch_add(i as u64, Ordering::Relaxed);
            });
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn chunks_cover_the_slice_disjointly() {
        let mut v = [0u32; 37];
        with_num_threads(4, || {
            v.par_chunks_mut(5).enumerate().for_each(|(i, c)| {
                for x in c.iter_mut() {
                    *x += 1 + i as u32;
                }
            });
        });
        // Every element written exactly once, by its own chunk's task.
        for (j, x) in v.iter().enumerate() {
            assert_eq!(*x, 1 + (j / 5) as u32, "index {j}");
        }
    }

    #[test]
    fn override_nests_and_restores() {
        with_num_threads(3, || {
            assert_eq!(current_num_threads(), 3);
            with_num_threads(1, || assert_eq!(current_num_threads(), 1));
            assert_eq!(current_num_threads(), 3);
        });
    }
}
