//! Workspace-local shim for the `crossbeam` subsets this repository uses:
//!
//! * [`channel`] — an unbounded MPMC channel on `Mutex<VecDeque>` +
//!   `Condvar` with crossbeam's disconnect semantics (recv errors once
//!   every sender is gone, send errors once every receiver is gone).
//!   Throughput is far below real crossbeam's, but the executor moves few,
//!   large messages — the channel is never the bottleneck.
//! * [`deque`] — the work-stealing deque trio (`Injector`, `Worker`,
//!   `Stealer`) the persistent rayon-shim worker pool schedules on. Backed
//!   by mutexes rather than crossbeam's lock-free Chase-Lev buffers; the
//!   pool moves one region handle per participant, not one item per task,
//!   so the deques are never on the per-element hot path.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`]: either the deadline
    /// passed with the channel still empty, or the channel disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    /// Error returned by [`Sender::try_send`]. The shim channel is
    /// unbounded, so `Full` is never produced here — it exists so callers
    /// stay source-compatible with real crossbeam's bounded channels.
    pub enum TrySendError<T> {
        Full(T),
        Disconnected(T),
    }

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("TrySendError::Full(..)"),
                TrySendError::Disconnected(_) => f.write_str("TrySendError::Disconnected(..)"),
            }
        }
    }

    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender { inner: inner.clone() }, Receiver { inner })
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.inner.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            self.inner.queue.lock().unwrap().push_back(value);
            self.inner.ready.notify_one();
            Ok(())
        }

        /// Non-blocking send. The shim channel is unbounded, so this only
        /// fails when every receiver is gone.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            if self.inner.receivers.load(Ordering::Acquire) == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            self.inner.queue.lock().unwrap().push_back(value);
            self.inner.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::Relaxed);
            Sender { inner: self.inner.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake any blocked receivers so they can error.
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.inner.queue.lock().unwrap();
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.inner.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self.inner.ready.wait(q).unwrap();
            }
        }

        /// Blocking receive with a deadline. Returns `Timeout` if the
        /// channel stays empty past `timeout`, `Disconnected` if it is
        /// empty and every sender is gone. A queued message is always
        /// delivered before a disconnect is reported, matching
        /// crossbeam's semantics.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.inner.queue.lock().unwrap();
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.inner.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                let Some(left) = deadline.checked_duration_since(now).filter(|d| !d.is_zero())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, res) = self.inner.ready.wait_timeout(q, left).unwrap();
                q = guard;
                if res.timed_out() && q.is_empty() {
                    // Re-check disconnect before reporting a timeout: a
                    // sender may have vanished while we slept.
                    if self.inner.senders.load(Ordering::Acquire) == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        pub fn try_recv(&self) -> Result<T, RecvError> {
            self.inner.queue.lock().unwrap().pop_front().ok_or(RecvError)
        }

        /// Blocking iterator that ends when the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }

        /// Non-blocking iterator over the messages queued right now.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { rx: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.receivers.fetch_add(1, Ordering::Relaxed);
            Receiver { inner: self.inner.clone() }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.inner.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    pub struct TryIter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.try_recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            IntoIter { rx: self }
        }
    }

    pub struct IntoIter<T> {
        rx: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }
}

pub mod deque {
    //! Work-stealing deques: each pool worker owns a [`Worker`] it pushes
    //! and pops LIFO; siblings take from the opposite end through
    //! [`Stealer`] handles; callers seed work through the shared FIFO
    //! [`Injector`]. Same ordering contract as crossbeam-deque's default
    //! (`Worker::new_lifo`), so swapping the real crate in later changes
    //! performance only.

    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Result of a steal attempt. The mutex-backed shim never observes a
    /// torn race, so `Retry` is never produced — but callers loop on it
    /// anyway, keeping them correct under the real lock-free
    /// implementation.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        Empty,
        Success(T),
        Retry,
    }

    impl<T> Steal<T> {
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(v) => Some(v),
                _ => None,
            }
        }

        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }
    }

    /// The owner's end of a work-stealing deque (LIFO for the owner).
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        pub fn new_lifo() -> Self {
            Worker { queue: Arc::new(Mutex::new(VecDeque::new())) }
        }

        /// A handle siblings use to take work from the other end.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer { queue: self.queue.clone() }
        }

        pub fn push(&self, value: T) {
            self.queue.lock().unwrap().push_back(value);
        }

        /// Owner pop: most recently pushed first (hot in cache).
        pub fn pop(&self) -> Option<T> {
            self.queue.lock().unwrap().pop_back()
        }

        pub fn is_empty(&self) -> bool {
            self.queue.lock().unwrap().is_empty()
        }
    }

    /// A sibling's view of a [`Worker`]'s deque (FIFO — steals the oldest
    /// item, the one least likely to be in the owner's cache).
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer { queue: self.queue.clone() }
        }
    }

    impl<T> Stealer<T> {
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().unwrap().pop_front() {
                Some(v) => Steal::Success(v),
                None => Steal::Empty,
            }
        }

        pub fn is_empty(&self) -> bool {
            self.queue.lock().unwrap().is_empty()
        }
    }

    /// Shared FIFO entry queue: callers outside the pool inject work here.
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> Injector<T> {
        pub fn new() -> Self {
            Injector { queue: Mutex::new(VecDeque::new()) }
        }

        pub fn push(&self, value: T) {
            self.queue.lock().unwrap().push_back(value);
        }

        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().unwrap().pop_front() {
                Some(v) => Steal::Success(v),
                None => Steal::Empty,
            }
        }

        pub fn is_empty(&self) -> bool {
            self.queue.lock().unwrap().is_empty()
        }
    }
}

#[cfg(test)]
mod deque_tests {
    use super::deque::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn owner_is_lifo_stealers_are_fifo() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(3), "owner takes the newest");
        assert_eq!(s.steal(), Steal::Success(1), "stealer takes the oldest");
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
        assert!(s.steal().is_empty());
    }

    #[test]
    fn injector_is_fifo() {
        let inj = Injector::new();
        inj.push("a");
        inj.push("b");
        assert_eq!(inj.steal().success(), Some("a"));
        assert_eq!(inj.steal().success(), Some("b"));
        assert!(inj.steal().is_empty());
    }

    #[test]
    fn concurrent_steals_take_every_item_once() {
        let w = Worker::new_lifo();
        for i in 0..1000usize {
            w.push(i);
        }
        let taken = AtomicUsize::new(0);
        let sum = AtomicUsize::new(0);
        std::thread::scope(|sc| {
            for _ in 0..4 {
                let st = w.stealer();
                let (taken, sum) = (&taken, &sum);
                sc.spawn(move || loop {
                    match st.steal() {
                        Steal::Success(v) => {
                            taken.fetch_add(1, Ordering::Relaxed);
                            sum.fetch_add(v, Ordering::Relaxed);
                        }
                        Steal::Empty => break,
                        Steal::Retry => continue,
                    }
                });
            }
        });
        assert_eq!(taken.load(Ordering::Relaxed), 1000);
        assert_eq!(sum.load(Ordering::Relaxed), 999 * 1000 / 2);
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::thread;

    #[test]
    fn fifo_within_one_sender() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        let got: Vec<i32> = (0..10).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_errors_after_all_receivers_drop() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn cross_thread_request_reply() {
        let (tx, rx) = unbounded::<(u64, Sender<u64>)>();
        let server = thread::spawn(move || {
            while let Ok((x, reply)) = rx.recv() {
                let _ = reply.send(x * 2);
            }
        });
        let (rtx, rrx) = unbounded();
        for i in 0..100u64 {
            tx.send((i, rtx.clone())).unwrap();
        }
        let sum: u64 = (0..100).map(|_| rrx.recv().unwrap()).sum();
        assert_eq!(sum, 9900);
        drop(tx);
        server.join().unwrap();
    }

    #[test]
    fn recv_timeout_returns_queued_value_immediately() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        let t0 = std::time::Instant::now();
        assert_eq!(rx.recv_timeout(std::time::Duration::from_secs(5)), Ok(7));
        assert!(t0.elapsed() < std::time::Duration::from_secs(1));
    }

    #[test]
    fn recv_timeout_times_out_on_empty_channel() {
        let (tx, rx) = unbounded::<u8>();
        let t0 = std::time::Instant::now();
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(30)),
            Err(RecvTimeoutError::Timeout)
        );
        assert!(t0.elapsed() >= std::time::Duration::from_millis(30));
        drop(tx);
    }

    #[test]
    fn recv_timeout_sees_late_send() {
        let (tx, rx) = unbounded();
        let sender = thread::spawn(move || {
            thread::sleep(std::time::Duration::from_millis(20));
            tx.send(42u32).unwrap();
        });
        assert_eq!(rx.recv_timeout(std::time::Duration::from_secs(5)), Ok(42));
        sender.join().unwrap();
    }

    #[test]
    fn recv_timeout_reports_disconnect_not_timeout() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        // Queued message first, then disconnect — never a timeout.
        assert_eq!(rx.recv_timeout(std::time::Duration::from_millis(10)), Ok(1));
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn try_send_succeeds_with_live_receiver_and_fails_after_drop() {
        let (tx, rx) = unbounded::<u8>();
        assert!(tx.try_send(1).is_ok());
        assert_eq!(rx.recv(), Ok(1));
        drop(rx);
        match tx.try_send(2) {
            Err(TrySendError::Disconnected(v)) => assert_eq!(v, 2),
            other => panic!("expected Disconnected, got {other:?}"),
        }
    }

    #[test]
    fn try_iter_drains_queued_then_stops() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let got: Vec<i32> = rx.try_iter().collect();
        assert_eq!(got, vec![1, 2]);
        // Channel still connected: try_iter just stops, no block, no error.
        assert_eq!(rx.try_iter().next(), None);
        tx.send(3).unwrap();
        assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn iter_drains_until_disconnect() {
        let (tx, rx) = unbounded();
        let producer = thread::spawn(move || {
            for i in 0..5 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = rx.iter().collect();
        producer.join().unwrap();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }
}
