//! Workspace-local shim for `crossbeam::channel`: an unbounded MPMC
//! channel on `Mutex<VecDeque>` + `Condvar` with crossbeam's disconnect
//! semantics (recv errors once every sender is gone, send errors once every
//! receiver is gone). Throughput is far below real crossbeam's, but the
//! executor moves few, large messages — the channel is never the
//! bottleneck.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender { inner: inner.clone() }, Receiver { inner })
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.inner.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            self.inner.queue.lock().unwrap().push_back(value);
            self.inner.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::Relaxed);
            Sender { inner: self.inner.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake any blocked receivers so they can error.
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.inner.queue.lock().unwrap();
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.inner.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self.inner.ready.wait(q).unwrap();
            }
        }

        pub fn try_recv(&self) -> Result<T, RecvError> {
            self.inner.queue.lock().unwrap().pop_front().ok_or(RecvError)
        }

        /// Blocking iterator that ends when the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.receivers.fetch_add(1, Ordering::Relaxed);
            Receiver { inner: self.inner.clone() }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.inner.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            IntoIter { rx: self }
        }
    }

    pub struct IntoIter<T> {
        rx: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::thread;

    #[test]
    fn fifo_within_one_sender() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        let got: Vec<i32> = (0..10).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_errors_after_all_receivers_drop() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn cross_thread_request_reply() {
        let (tx, rx) = unbounded::<(u64, Sender<u64>)>();
        let server = thread::spawn(move || {
            while let Ok((x, reply)) = rx.recv() {
                let _ = reply.send(x * 2);
            }
        });
        let (rtx, rrx) = unbounded();
        for i in 0..100u64 {
            tx.send((i, rtx.clone())).unwrap();
        }
        let sum: u64 = (0..100).map(|_| rrx.recv().unwrap()).sum();
        assert_eq!(sum, 9900);
        drop(tx);
        server.join().unwrap();
    }

    #[test]
    fn iter_drains_until_disconnect() {
        let (tx, rx) = unbounded();
        let producer = thread::spawn(move || {
            for i in 0..5 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = rx.iter().collect();
        producer.join().unwrap();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }
}
