//! Workspace-local shim for the `crossbeam` subsets this repository uses:
//!
//! * [`channel`] — an MPMC channel on `Mutex<VecDeque>` + `Condvar` with
//!   crossbeam's disconnect semantics (recv errors once every sender is
//!   gone, send errors once every receiver is gone). Both [`channel::unbounded`]
//!   and [`channel::bounded`] capacities are provided; bounded channels
//!   report `TrySendError::Full` from `try_send` and block `send` until a
//!   slot frees, exactly like the real crate. [`channel::PostQueue`] layers
//!   a non-blocking posted-send discipline (spill + completion tokens) on a
//!   bounded sender — the async exchange runtime's double buffer. Throughput
//!   is far below real crossbeam's, but the executor moves few, large
//!   messages — the channel is never the bottleneck.
//! * [`deque`] — the work-stealing deque trio (`Injector`, `Worker`,
//!   `Stealer`) the persistent rayon-shim worker pool schedules on. Backed
//!   by mutexes rather than crossbeam's lock-free Chase-Lev buffers; the
//!   pool moves one region handle per participant, not one item per task,
//!   so the deques are never on the per-element hot path.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        /// Signalled when a bounded queue frees a slot (or disconnects).
        space: Condvar,
        /// `None` = unbounded.
        cap: Option<usize>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`]: either the deadline
    /// passed with the channel still empty, or the channel disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    /// Error returned by [`Sender::try_send`]: `Full` when a bounded
    /// channel has no free slot right now, `Disconnected` when every
    /// receiver is gone. Unbounded channels never produce `Full`.
    pub enum TrySendError<T> {
        Full(T),
        Disconnected(T),
    }

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("TrySendError::Full(..)"),
                TrySendError::Disconnected(_) => f.write_str("TrySendError::Disconnected(..)"),
            }
        }
    }

    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    fn channel_with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            space: Condvar::new(),
            cap,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender { inner: inner.clone() }, Receiver { inner })
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel_with_cap(None)
    }

    /// Create a bounded channel holding at most `cap` queued messages.
    /// `send` blocks while full; `try_send` reports [`TrySendError::Full`].
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap > 0, "bounded channel capacity must be positive");
        channel_with_cap(Some(cap))
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.inner.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            let mut q = self.inner.queue.lock().unwrap();
            if let Some(cap) = self.inner.cap {
                while q.len() >= cap {
                    if self.inner.receivers.load(Ordering::Acquire) == 0 {
                        return Err(SendError(value));
                    }
                    q = self.inner.space.wait(q).unwrap();
                }
            }
            q.push_back(value);
            drop(q);
            self.inner.ready.notify_one();
            Ok(())
        }

        /// Non-blocking send: `Full` when a bounded channel has no slot,
        /// `Disconnected` when every receiver is gone.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            if self.inner.receivers.load(Ordering::Acquire) == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            let mut q = self.inner.queue.lock().unwrap();
            if let Some(cap) = self.inner.cap {
                if q.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            q.push_back(value);
            drop(q);
            self.inner.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::Relaxed);
            Sender { inner: self.inner.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake any blocked receivers so they can error.
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// After a pop from a bounded queue, wake one blocked sender.
        fn freed_slot(&self) {
            if self.inner.cap.is_some() {
                self.inner.space.notify_one();
            }
        }

        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.inner.queue.lock().unwrap();
            loop {
                if let Some(v) = q.pop_front() {
                    drop(q);
                    self.freed_slot();
                    return Ok(v);
                }
                if self.inner.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self.inner.ready.wait(q).unwrap();
            }
        }

        /// Blocking receive with a deadline. Returns `Timeout` if the
        /// channel stays empty past `timeout`, `Disconnected` if it is
        /// empty and every sender is gone. A queued message is always
        /// delivered before a disconnect is reported, matching
        /// crossbeam's semantics.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.inner.queue.lock().unwrap();
            loop {
                if let Some(v) = q.pop_front() {
                    drop(q);
                    self.freed_slot();
                    return Ok(v);
                }
                if self.inner.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                let Some(left) = deadline.checked_duration_since(now).filter(|d| !d.is_zero())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, res) = self.inner.ready.wait_timeout(q, left).unwrap();
                q = guard;
                if res.timed_out() && q.is_empty() {
                    // Re-check disconnect before reporting a timeout: a
                    // sender may have vanished while we slept.
                    if self.inner.senders.load(Ordering::Acquire) == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        pub fn try_recv(&self) -> Result<T, RecvError> {
            let v = self.inner.queue.lock().unwrap().pop_front().ok_or(RecvError)?;
            self.freed_slot();
            Ok(v)
        }

        /// Blocking iterator that ends when the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }

        /// Non-blocking iterator over the messages queued right now.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { rx: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.receivers.fetch_add(1, Ordering::Relaxed);
            Receiver { inner: self.inner.clone() }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.inner.receivers.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last receiver: wake senders blocked on a full bounded
                // queue so they can report the disconnect. Taking the lock
                // orders the wake after any in-progress full-queue check.
                let _guard = self.inner.queue.lock();
                self.inner.space.notify_all();
            }
        }
    }

    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    pub struct TryIter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.try_recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            IntoIter { rx: self }
        }
    }

    pub struct IntoIter<T> {
        rx: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    use std::sync::atomic::AtomicBool;

    /// Completion token for one message posted through a [`PostQueue`]:
    /// flips to delivered the moment the message is handed to the channel
    /// (immediately for a direct `try_send`, later when a spilled message
    /// is pumped into a freed slot).
    pub struct PostToken(Arc<AtomicBool>);

    impl PostToken {
        pub fn is_delivered(&self) -> bool {
            self.0.load(Ordering::Acquire)
        }
    }

    /// Non-blocking posted-send front end over a (typically bounded)
    /// sender: [`PostQueue::post`] never blocks — a message that does not
    /// fit the channel right now spills to an owner-local FIFO overflow,
    /// and [`PostQueue::pump`] moves spilled messages into freed slots
    /// later. FIFO order is preserved across the spill boundary (a post
    /// never overtakes an earlier spilled one), so receivers observe
    /// exactly the order of `post` calls.
    pub struct PostQueue<T> {
        tx: Sender<T>,
        spill: VecDeque<(T, Arc<AtomicBool>)>,
    }

    impl<T> PostQueue<T> {
        pub fn new(tx: Sender<T>) -> Self {
            PostQueue { tx, spill: VecDeque::new() }
        }

        /// Post a message without blocking. Errors only on disconnect
        /// (every receiver gone); a full channel spills instead.
        pub fn post(&mut self, value: T) -> Result<PostToken, SendError<T>> {
            let flag = Arc::new(AtomicBool::new(false));
            if self.spill.is_empty() {
                match self.tx.try_send(value) {
                    Ok(()) => {
                        flag.store(true, Ordering::Release);
                        return Ok(PostToken(flag));
                    }
                    Err(TrySendError::Full(v)) => self.spill.push_back((v, flag.clone())),
                    Err(TrySendError::Disconnected(v)) => return Err(SendError(v)),
                }
            } else {
                self.spill.push_back((value, flag.clone()));
            }
            Ok(PostToken(flag))
        }

        /// Move as many spilled messages into the channel as fit right
        /// now; returns how many were delivered. Errors on disconnect.
        pub fn pump(&mut self) -> Result<usize, SendError<T>> {
            let mut moved = 0;
            while let Some((v, flag)) = self.spill.pop_front() {
                match self.tx.try_send(v) {
                    Ok(()) => {
                        flag.store(true, Ordering::Release);
                        moved += 1;
                    }
                    Err(TrySendError::Full(v)) => {
                        self.spill.push_front((v, flag));
                        break;
                    }
                    Err(TrySendError::Disconnected(v)) => return Err(SendError(v)),
                }
            }
            Ok(moved)
        }

        /// Messages still waiting in the overflow (not yet in the channel).
        pub fn pending(&self) -> usize {
            self.spill.len()
        }
    }
}

pub mod deque {
    //! Work-stealing deques: each pool worker owns a [`Worker`] it pushes
    //! and pops LIFO; siblings take from the opposite end through
    //! [`Stealer`] handles; callers seed work through the shared FIFO
    //! [`Injector`]. Same ordering contract as crossbeam-deque's default
    //! (`Worker::new_lifo`), so swapping the real crate in later changes
    //! performance only.

    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Result of a steal attempt. The mutex-backed shim never observes a
    /// torn race, so `Retry` is never produced — but callers loop on it
    /// anyway, keeping them correct under the real lock-free
    /// implementation.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        Empty,
        Success(T),
        Retry,
    }

    impl<T> Steal<T> {
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(v) => Some(v),
                _ => None,
            }
        }

        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }
    }

    /// The owner's end of a work-stealing deque (LIFO for the owner).
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        pub fn new_lifo() -> Self {
            Worker { queue: Arc::new(Mutex::new(VecDeque::new())) }
        }

        /// A handle siblings use to take work from the other end.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer { queue: self.queue.clone() }
        }

        pub fn push(&self, value: T) {
            self.queue.lock().unwrap().push_back(value);
        }

        /// Owner pop: most recently pushed first (hot in cache).
        pub fn pop(&self) -> Option<T> {
            self.queue.lock().unwrap().pop_back()
        }

        pub fn is_empty(&self) -> bool {
            self.queue.lock().unwrap().is_empty()
        }
    }

    /// A sibling's view of a [`Worker`]'s deque (FIFO — steals the oldest
    /// item, the one least likely to be in the owner's cache).
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer { queue: self.queue.clone() }
        }
    }

    impl<T> Stealer<T> {
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().unwrap().pop_front() {
                Some(v) => Steal::Success(v),
                None => Steal::Empty,
            }
        }

        pub fn is_empty(&self) -> bool {
            self.queue.lock().unwrap().is_empty()
        }
    }

    /// Shared FIFO entry queue: callers outside the pool inject work here.
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> Injector<T> {
        pub fn new() -> Self {
            Injector { queue: Mutex::new(VecDeque::new()) }
        }

        pub fn push(&self, value: T) {
            self.queue.lock().unwrap().push_back(value);
        }

        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().unwrap().pop_front() {
                Some(v) => Steal::Success(v),
                None => Steal::Empty,
            }
        }

        pub fn is_empty(&self) -> bool {
            self.queue.lock().unwrap().is_empty()
        }
    }
}

#[cfg(test)]
mod deque_tests {
    use super::deque::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn owner_is_lifo_stealers_are_fifo() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(3), "owner takes the newest");
        assert_eq!(s.steal(), Steal::Success(1), "stealer takes the oldest");
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
        assert!(s.steal().is_empty());
    }

    #[test]
    fn injector_is_fifo() {
        let inj = Injector::new();
        inj.push("a");
        inj.push("b");
        assert_eq!(inj.steal().success(), Some("a"));
        assert_eq!(inj.steal().success(), Some("b"));
        assert!(inj.steal().is_empty());
    }

    #[test]
    fn concurrent_steals_take_every_item_once() {
        let w = Worker::new_lifo();
        for i in 0..1000usize {
            w.push(i);
        }
        let taken = AtomicUsize::new(0);
        let sum = AtomicUsize::new(0);
        std::thread::scope(|sc| {
            for _ in 0..4 {
                let st = w.stealer();
                let (taken, sum) = (&taken, &sum);
                sc.spawn(move || loop {
                    match st.steal() {
                        Steal::Success(v) => {
                            taken.fetch_add(1, Ordering::Relaxed);
                            sum.fetch_add(v, Ordering::Relaxed);
                        }
                        Steal::Empty => break,
                        Steal::Retry => continue,
                    }
                });
            }
        });
        assert_eq!(taken.load(Ordering::Relaxed), 1000);
        assert_eq!(sum.load(Ordering::Relaxed), 999 * 1000 / 2);
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::thread;

    #[test]
    fn fifo_within_one_sender() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        let got: Vec<i32> = (0..10).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_errors_after_all_receivers_drop() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn cross_thread_request_reply() {
        let (tx, rx) = unbounded::<(u64, Sender<u64>)>();
        let server = thread::spawn(move || {
            while let Ok((x, reply)) = rx.recv() {
                let _ = reply.send(x * 2);
            }
        });
        let (rtx, rrx) = unbounded();
        for i in 0..100u64 {
            tx.send((i, rtx.clone())).unwrap();
        }
        let sum: u64 = (0..100).map(|_| rrx.recv().unwrap()).sum();
        assert_eq!(sum, 9900);
        drop(tx);
        server.join().unwrap();
    }

    #[test]
    fn recv_timeout_returns_queued_value_immediately() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        let t0 = std::time::Instant::now();
        assert_eq!(rx.recv_timeout(std::time::Duration::from_secs(5)), Ok(7));
        assert!(t0.elapsed() < std::time::Duration::from_secs(1));
    }

    #[test]
    fn recv_timeout_times_out_on_empty_channel() {
        let (tx, rx) = unbounded::<u8>();
        let t0 = std::time::Instant::now();
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(30)),
            Err(RecvTimeoutError::Timeout)
        );
        assert!(t0.elapsed() >= std::time::Duration::from_millis(30));
        drop(tx);
    }

    #[test]
    fn recv_timeout_sees_late_send() {
        let (tx, rx) = unbounded();
        let sender = thread::spawn(move || {
            thread::sleep(std::time::Duration::from_millis(20));
            tx.send(42u32).unwrap();
        });
        assert_eq!(rx.recv_timeout(std::time::Duration::from_secs(5)), Ok(42));
        sender.join().unwrap();
    }

    #[test]
    fn recv_timeout_reports_disconnect_not_timeout() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        // Queued message first, then disconnect — never a timeout.
        assert_eq!(rx.recv_timeout(std::time::Duration::from_millis(10)), Ok(1));
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn try_send_succeeds_with_live_receiver_and_fails_after_drop() {
        let (tx, rx) = unbounded::<u8>();
        assert!(tx.try_send(1).is_ok());
        assert_eq!(rx.recv(), Ok(1));
        drop(rx);
        match tx.try_send(2) {
            Err(TrySendError::Disconnected(v)) => assert_eq!(v, 2),
            other => panic!("expected Disconnected, got {other:?}"),
        }
    }

    #[test]
    fn try_iter_drains_queued_then_stops() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let got: Vec<i32> = rx.try_iter().collect();
        assert_eq!(got, vec![1, 2]);
        // Channel still connected: try_iter just stops, no block, no error.
        assert_eq!(rx.try_iter().next(), None);
        tx.send(3).unwrap();
        assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn iter_drains_until_disconnect() {
        let (tx, rx) = unbounded();
        let producer = thread::spawn(move || {
            for i in 0..5 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = rx.iter().collect();
        producer.join().unwrap();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bounded_try_send_reports_full_then_recovers() {
        let (tx, rx) = bounded::<u8>(2);
        assert!(tx.try_send(1).is_ok());
        assert!(tx.try_send(2).is_ok());
        match tx.try_send(3) {
            Err(TrySendError::Full(v)) => assert_eq!(v, 3),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(rx.recv(), Ok(1));
        assert!(tx.try_send(3).is_ok());
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn bounded_send_blocks_until_a_slot_frees() {
        let (tx, rx) = bounded::<u32>(1);
        tx.send(1).unwrap();
        let sender = thread::spawn(move || tx.send(2).unwrap());
        thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1), "first message still queued");
        assert_eq!(rx.recv(), Ok(2), "blocked send completed after the pop");
        sender.join().unwrap();
    }

    #[test]
    fn bounded_send_errors_when_receiver_drops_while_full() {
        let (tx, rx) = bounded::<u8>(1);
        tx.send(1).unwrap();
        let blocked = thread::spawn(move || tx.send(2));
        thread::sleep(std::time::Duration::from_millis(20));
        drop(rx);
        assert!(blocked.join().unwrap().is_err(), "blocked send must observe the disconnect");
    }

    #[test]
    fn post_queue_preserves_fifo_through_the_spill() {
        let (tx, rx) = bounded::<u32>(2);
        let mut q = PostQueue::new(tx);
        let tokens: Vec<PostToken> = (0..5).map(|i| q.post(i).unwrap()).collect();
        // Capacity 2: messages 0,1 delivered immediately, 2..4 spilled.
        assert_eq!(q.pending(), 3);
        assert!(tokens[0].is_delivered() && tokens[1].is_delivered());
        assert!(!tokens[2].is_delivered());
        assert_eq!(rx.recv(), Ok(0));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(q.pump().unwrap(), 2);
        assert!(tokens[2].is_delivered() && tokens[3].is_delivered());
        assert!(!tokens[4].is_delivered());
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
        assert_eq!(q.pump().unwrap(), 1);
        assert_eq!(rx.recv(), Ok(4));
        assert_eq!(q.pending(), 0);
    }

    #[test]
    fn post_queue_never_lets_a_post_overtake_the_spill() {
        let (tx, rx) = bounded::<u32>(1);
        let mut q = PostQueue::new(tx);
        q.post(0).unwrap();
        q.post(1).unwrap(); // spills
        rx.recv().unwrap(); // slot free, but 1 still spilled
        let t2 = q.post(2).unwrap();
        assert!(!t2.is_delivered(), "post behind a non-empty spill must spill too");
        q.pump().unwrap();
        assert_eq!(rx.recv(), Ok(1));
        q.pump().unwrap();
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn post_queue_surfaces_disconnect() {
        let (tx, rx) = bounded::<u8>(1);
        let mut q = PostQueue::new(tx);
        q.post(1).unwrap();
        q.post(2).unwrap(); // spilled
        drop(rx);
        assert!(q.pump().is_err(), "pump into a dead channel must error");
        assert!(q.post(3).is_err() || q.pending() > 0);
    }
}
