//! Workspace-local shim for the subset of `proptest` this repository uses:
//! the `proptest! { ... }` macro over integer-range strategies, with
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!`.
//!
//! Differences from real proptest: inputs are sampled from a fixed
//! deterministic seed derived from the test's module path + name (so runs
//! are reproducible and CI-stable), and failing cases are reported with
//! their sampled inputs but not shrunk.

#[doc(hidden)]
pub use rand as __rand;

/// FNV-1a, used to derive a per-test deterministic seed.
#[doc(hidden)]
pub fn __fnv(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

pub mod prelude {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};

    /// Per-`proptest!` block configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Value generator — integer ranges are the only strategies the repo
    /// uses.
    pub trait Strategy {
        type Value: std::fmt::Debug + Clone;
        fn pick(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn pick(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn pick(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u32, u64, usize, i64);
}

/// The `proptest! { ... }` block macro.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::prelude::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::prelude::ProptestConfig = $cfg;
            let mut __rng = <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                $crate::__fnv(concat!(module_path!(), "::", stringify!($name))),
            );
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::prelude::Strategy::pick(&($strat), &mut __rng);)*
                let __inputs = format!(
                    concat!("case ", "{}", $(" ", stringify!($arg), "={:?}",)*),
                    __case $(, $arg)*
                );
                let __outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    #[allow(unreachable_code)]
                    let __flow: ::std::ops::ControlFlow<()> = {
                        $body
                        ::std::ops::ControlFlow::Continue(())
                    };
                    __flow
                }));
                match __outcome {
                    Ok(_) => {}
                    Err(payload) => {
                        eprintln!("proptest failure in {} at {}", stringify!($name), __inputs);
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        }
    )*};
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Skip the current case when its sampled inputs don't satisfy a
/// precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::ops::ControlFlow::Break(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        /// Sampled values stay inside their strategies' ranges.
        #[test]
        fn ranges_are_respected(a in 1usize..10, b in 0u64..=5, c in 3u32..4) {
            prop_assert!((1..10).contains(&a));
            prop_assert!(b <= 5);
            prop_assert_eq!(c, 3);
        }

        /// prop_assume skips cases without failing them.
        #[test]
        fn assume_filters(n in 0usize..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    proptest! {
        /// A block without an explicit config uses the default.
        #[test]
        fn default_config_works(x in 0u32..7) {
            prop_assert!(x < 7);
        }
    }

    #[test]
    fn determinism_across_processes() {
        // The seed depends only on the test path, so two fresh RNGs built
        // the same way sample identically.
        use rand::{Rng, SeedableRng};
        let seed = crate::__fnv("some::test::path");
        let mut a = rand::rngs::StdRng::seed_from_u64(seed);
        let mut b = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..16 {
            assert_eq!(a.random_range(0usize..1000), b.random_range(0usize..1000));
        }
    }
}
