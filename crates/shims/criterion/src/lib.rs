//! Workspace-local shim for the subset of `criterion` this repository uses.
//!
//! Semantics: each `Bencher::iter` target is warmed up, then timed over a
//! few samples of auto-calibrated batch size; the median per-iteration time
//! is printed and collected. When the whole binary finishes, the harness
//! writes a `BENCH_<bench-name>.json` perf snapshot (into
//! `$BENCH_SNAPSHOT_DIR`, default the working directory — the workspace
//! root under `cargo bench`) so successive PRs have a perf trajectory to
//! regress against.
//!
//! `--test` (as passed by `cargo bench -- --test`) runs every benchmark
//! body exactly once and skips both timing and the snapshot — the CI smoke
//! mode. `--quick` keeps timing but caps sample time for fast local runs.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier: `group/function/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// One measured benchmark.
struct Entry {
    id: String,
    ns_per_iter: f64,
    iters_per_sample: u64,
    samples: usize,
}

/// Harness configuration + collected results.
#[derive(Default)]
pub struct Criterion {
    entries: Vec<Entry>,
    test_mode: bool,
    quick: bool,
    filter: Option<String>,
}


impl Criterion {
    /// Parse the argv cargo forwards to bench binaries.
    pub fn from_args() -> Self {
        let mut c = Criterion::default();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => c.test_mode = true,
                "--quick" => c.quick = true,
                "--bench" => {}
                a if a.starts_with("--") => {}
                a => c.filter = Some(a.to_string()),
            }
        }
        c
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { harness: self, name: name.into() }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.run_one(id.to_string(), f);
        self
    }

    fn skipped(&self, id: &str) -> bool {
        matches!(&self.filter, Some(f) if !id.contains(f.as_str()))
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        if self.skipped(&id) {
            return;
        }
        let mut b = Bencher {
            test_mode: self.test_mode,
            sample_budget: if self.quick {
                Duration::from_millis(20)
            } else {
                Duration::from_millis(120)
            },
            samples: if self.quick { 3 } else { 5 },
            measured: None,
        };
        f(&mut b);
        if self.test_mode {
            println!("test {id} ... ok");
            return;
        }
        if let Some((ns, iters, samples)) = b.measured {
            println!("{id:<48} {:>12}/iter  ({iters} iters x {samples} samples)", fmt_ns(ns));
            self.entries.push(Entry { id, ns_per_iter: ns, iters_per_sample: iters, samples });
        }
    }

    /// Write the JSON snapshot. Called by `criterion_main!` at exit.
    pub fn final_summary(&self) {
        if self.test_mode || self.entries.is_empty() {
            return;
        }
        if self.filter.is_some() {
            // A filtered run measured a subset; overwriting the snapshot
            // would silently clobber the full baseline.
            println!("\n(filtered run: perf snapshot not written)");
            return;
        }
        let name = bench_name();
        let dir = std::env::var("BENCH_SNAPSHOT_DIR").unwrap_or_else(|_| workspace_root());
        let path = format!("{dir}/BENCH_{name}.json");
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"bench\": \"{name}\",\n"));
        // Threading metadata: snapshots from different hosts (or different
        // forced widths) are only comparable when both the detected
        // parallelism and any `RAYON_NUM_THREADS` cap are recorded.
        out.push_str(&format!("  \"threads\": {},\n", available_threads()));
        match std::env::var("RAYON_NUM_THREADS").ok().and_then(|v| v.parse::<usize>().ok()) {
            Some(n) if n > 0 => {
                out.push_str(&format!("  \"rayon_num_threads\": {n},\n"));
            }
            _ => out.push_str("  \"rayon_num_threads\": null,\n"),
        }
        // Slicing-policy metadata: a sweep forced to one policy (e.g. the
        // fig11 slice-sweep rerun under pair-balanced bounds) tags its
        // snapshot so `bench_check` only gates it against a baseline of the
        // same policy. Tags are restricted to [a-z0-9_] (and may not be the
        // literal "null"), so the interpolation can never produce invalid
        // JSON or collide with the absent-tag default regime.
        match std::env::var("BENCH_SLICING_POLICY") {
            Ok(p)
                if !p.is_empty()
                    && p != "null"
                    && p.chars().all(|c| {
                        c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'
                    }) =>
            {
                out.push_str(&format!("  \"slicing_policy\": \"{p}\",\n"));
            }
            Ok(p) if !p.is_empty() => {
                eprintln!(
                    "warning: BENCH_SLICING_POLICY {p:?} is not a [a-z0-9_] tag; \
                     snapshot left untagged"
                );
                out.push_str("  \"slicing_policy\": null,\n");
            }
            _ => out.push_str("  \"slicing_policy\": null,\n"),
        }
        out.push_str("  \"results\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"id\": \"{}\", \"ns_per_iter\": {:.1}, \"iters_per_sample\": {}, \"samples\": {}}}{}\n",
                e.id,
                e.ns_per_iter,
                e.iters_per_sample,
                e.samples,
                if i + 1 < self.entries.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        match std::fs::write(&path, out) {
            Ok(()) => println!("\nperf snapshot written to {path}"),
            Err(e) => eprintln!("warning: could not write {path}: {e}"),
        }
    }
}

fn available_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Nearest ancestor of the cwd whose `Cargo.toml` declares `[workspace]` —
/// cargo runs bench binaries from the *package* dir, but snapshots belong
/// at the workspace root. Falls back to the cwd.
fn workspace_root() -> String {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| ".".into());
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(s) = std::fs::read_to_string(&manifest) {
            if s.contains("[workspace]") {
                return dir.display().to_string();
            }
        }
        if !dir.pop() {
            return ".".into();
        }
    }
}

/// Bench-binary stem with cargo's trailing `-<hash>` removed.
fn bench_name() -> String {
    let arg0 = std::env::args().next().unwrap_or_default();
    let stem = std::path::Path::new(&arg0)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("bench")
        .to_string();
    match stem.rsplit_once('-') {
        Some((base, hash))
            if hash.len() == 16 && hash.bytes().all(|b| b.is_ascii_hexdigit()) =>
        {
            base.to_string()
        }
        _ => stem,
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Benchmark group — a named prefix plus per-group knobs.
pub struct BenchmarkGroup<'a> {
    harness: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim auto-calibrates instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        self.harness.run_one(full, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        self.harness.run_one(full, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Passed to the benchmark closure; `iter` runs and times the target.
pub struct Bencher {
    test_mode: bool,
    sample_budget: Duration,
    samples: usize,
    measured: Option<(f64, u64, usize)>,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            return;
        }
        // Warm-up + calibration: estimate one iteration's cost.
        let t0 = Instant::now();
        black_box(f());
        let mut est = t0.elapsed();
        if est < Duration::from_micros(5) {
            // Too fast to trust one call; refine over a small batch.
            let t0 = Instant::now();
            for _ in 0..64 {
                black_box(f());
            }
            est = t0.elapsed() / 64;
        }
        let est_ns = est.as_nanos().max(1);
        let iters = (self.sample_budget.as_nanos() / est_ns).clamp(1, 1_000_000) as u64;
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            per_iter.push(t0.elapsed().as_nanos() as f64 / iters as f64);
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter[per_iter.len() / 2];
        self.measured = Some((median, iters, self.samples));
    }
}

/// Define `fn $group(c: &mut Criterion)` running the listed benchmarks.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Define `main` running every group and writing the snapshot.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something_positive() {
        let mut c = Criterion { quick: true, ..Criterion::default() };
        c.bench_function("spin", |b| {
            b.iter(|| {
                let mut s = 0u64;
                for i in 0..100u64 {
                    s = s.wrapping_add(black_box(i));
                }
                s
            })
        });
        assert_eq!(c.entries.len(), 1);
        assert!(c.entries[0].ns_per_iter > 0.0);
    }

    #[test]
    fn test_mode_runs_once_without_recording() {
        let mut c = Criterion { test_mode: true, ..Criterion::default() };
        let mut runs = 0;
        c.bench_function("once", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        assert_eq!(runs, 1);
        assert!(c.entries.is_empty());
    }

    #[test]
    fn group_prefixes_ids() {
        let mut c = Criterion { quick: true, ..Criterion::default() };
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::new("f", 32), &32usize, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.finish();
        assert_eq!(c.entries[0].id, "g/f/32");
    }
}
