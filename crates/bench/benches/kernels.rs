//! Kernel micro-benchmarks: the tensor substrate's hot paths — GEMM
//! orientations (tiled vs. the seed's i-k-j loops), chunked attention
//! forward/backward and its thread scaling, online-softmax merging, the
//! sharded cross-entropy, and the buffer pool.
//!
//! Running `cargo bench --bench kernels` writes `BENCH_kernels.json` — the
//! perf snapshot later PRs regress against. The headline series:
//!
//! * `matmul/seed_ikj/{512,1024}` vs `matmul/tiled/{512,1024}` — the tiled
//!   micro-kernel must stay ≥ 2× ahead of the seed kernel;
//! * `attention_scaling/fwd_threads_{1,max}` — (head, q-block) parallel
//!   forward; on multi-core hosts the `max` series must beat `1`;
//! * `pool/take_recycle` vs `pool/fresh_alloc` — the steady-state
//!   allocation the pool removes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slimpipe_tensor::attention::{
    backward_chunked, forward_chunked, forward_full, merge_partials, partial, with_attn_kernel,
    AttnKernel, HeadCfg,
};
use slimpipe_tensor::crossentropy::{combine_stats, forward_backward, shard_stats};
use slimpipe_tensor::init::{seeded_tokens, seeded_uniform};
use slimpipe_tensor::matmul::{matmul, matmul_fused, matmul_fused_acc, matmul_nt, matmul_tn, PackedMat};
use slimpipe_tensor::{pool, rmsnorm, swiglu, Epilogue, PackedWeight, Prologue, Tensor};
use std::hint::black_box;

// ---- the seed kernels (pre-tiling), kept verbatim as the regression
// baseline: sequential i-k-j with the dense-data `== 0.0` branch ----

fn seed_ikj(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = a.shape();
    let n = b.cols();
    let mut c = Tensor::zeros(m, n);
    let bs = b.as_slice();
    for i in 0..m {
        let a_row = a.row(i);
        let out_row = &mut c.as_mut_slice()[i * n..(i + 1) * n];
        for kk in 0..k {
            let aik = a_row[kk];
            if aik == 0.0 {
                continue;
            }
            let b_row = &bs[kk * n..(kk + 1) * n];
            for (o, bb) in out_row.iter_mut().zip(b_row) {
                *o += aik * bb;
            }
        }
    }
    c
}

fn seed_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = a.shape();
    let n = b.rows();
    let mut c = Tensor::zeros(m, n);
    for i in 0..m {
        let a_row = a.row(i);
        let out_row = &mut c.as_mut_slice()[i * n..(i + 1) * n];
        for (j, o) in out_row.iter_mut().enumerate() {
            let b_row = b.row(j);
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += a_row[kk] * b_row[kk];
            }
            *o = acc;
        }
    }
    c
}

fn seed_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = a.shape();
    let n = b.cols();
    let mut c = Tensor::zeros(m, n);
    let bs = b.as_slice();
    for i in 0..m {
        for kk in 0..k {
            let aki = a.at(kk, i);
            if aki == 0.0 {
                continue;
            }
            let b_row = &bs[kk * n..(kk + 1) * n];
            let out_row = &mut c.as_mut_slice()[i * n..(i + 1) * n];
            for (o, bb) in out_row.iter_mut().zip(b_row) {
                *o += aki * bb;
            }
        }
    }
    c
}

/// The acceptance series: tiled vs. seed at the paper-relevant sizes.
fn bench_matmul_vs_seed(c: &mut Criterion) {
    let mut g = c.benchmark_group("matmul");
    for &n in &[256usize, 512, 1024] {
        let a = seeded_uniform(n, n, 1);
        let b = seeded_uniform(n, n, 2);
        g.bench_with_input(BenchmarkId::new("seed_ikj", n), &n, |bch, _| {
            bch.iter(|| black_box(seed_ikj(&a, &b)))
        });
        g.bench_with_input(BenchmarkId::new("tiled", n), &n, |bch, _| {
            bch.iter(|| black_box(matmul(&a, &b)))
        });
    }
    // The backward orientations at the mid size.
    let n = 512usize;
    let a = seeded_uniform(n, n, 1);
    let b = seeded_uniform(n, n, 2);
    g.bench_with_input(BenchmarkId::new("seed_nt", n), &n, |bch, _| {
        bch.iter(|| black_box(seed_nt(&a, &b)))
    });
    g.bench_with_input(BenchmarkId::new("tiled_nt", n), &n, |bch, _| {
        bch.iter(|| black_box(matmul_nt(&a, &b)))
    });
    g.bench_with_input(BenchmarkId::new("seed_tn", n), &n, |bch, _| {
        bch.iter(|| black_box(seed_tn(&a, &b)))
    });
    g.bench_with_input(BenchmarkId::new("tiled_tn", n), &n, |bch, _| {
        bch.iter(|| black_box(matmul_tn(&a, &b)))
    });
    g.finish();
}

/// The persistent packed-weight cache: the steady-state call (pack reused
/// across all `S × M` GEMMs of a step) vs the per-call-packing path, plus
/// the one-off pack and the in-place optimizer sync it amortises.
fn bench_gemm_packed_cache(c: &mut Criterion) {
    let n = 512usize;
    let a = seeded_uniform(n, n, 21);
    let w = seeded_uniform(n, n, 22);
    let grad = seeded_uniform(n, n, 23);
    let pw = PackedWeight::new(w.clone());
    let mut g = c.benchmark_group("gemm_packed_cache");
    g.bench_function("nn_packed/512", |b| {
        b.iter(|| black_box(matmul_fused(&a, pw.nn(), Prologue::None, Epilogue::None)).recycle())
    });
    g.bench_function("nn_unpacked/512", |b| b.iter(|| black_box(matmul(&a, &w)).recycle()));
    g.bench_function("nt_packed/512", |b| {
        b.iter(|| black_box(matmul_fused(&a, pw.nt(), Prologue::None, Epilogue::None)).recycle())
    });
    g.bench_function("nt_unpacked/512", |b| b.iter(|| black_box(matmul_nt(&a, &w)).recycle()));
    // What packing costs (once per weight per run) and what the in-place
    // optimizer sync costs per step.
    g.bench_function("pack_nn/512", |b| b.iter(|| black_box(PackedMat::pack_nn(&w))));
    let mut pw_mut = PackedWeight::new(w.clone());
    g.bench_function("sgd_axpy_sync/512", |b| b.iter(|| pw_mut.axpy(-1e-12, &grad)));
    g.finish();
}

/// Fused prologue/epilogue GEMMs vs the separate-pass composition at a
/// layer-shaped size (256 tokens × 512 hidden) — what the fusion buys per
/// projection.
fn bench_fused_layer(c: &mut Criterion) {
    let (t, h) = (256usize, 512usize);
    let x = seeded_uniform(t, h, 31);
    let w = seeded_uniform(h, h, 32);
    let gain: Vec<f32> = (0..h).map(|i| 1.0 + 0.001 * i as f32).collect();
    let gate = seeded_uniform(t, h, 33);
    let up = seeded_uniform(t, h, 34);
    let resid = seeded_uniform(t, h, 35);
    let pw = PackedWeight::new(w.clone());
    let mut g = c.benchmark_group("fused_layer");
    g.bench_function("norm_gemm_fused", |b| {
        b.iter(|| {
            let inv = rmsnorm::inv_rms(&x);
            let y = matmul_fused(
                &x,
                pw.nn(),
                Prologue::NormRows { inv: &inv, gain: &gain },
                Epilogue::None,
            );
            pool::recycle(inv);
            black_box(y).recycle();
        })
    });
    g.bench_function("norm_gemm_unfused", |b| {
        b.iter(|| {
            let normed = rmsnorm::forward(&x, &gain);
            let y = matmul(&normed, &w);
            normed.recycle();
            black_box(y).recycle();
        })
    });
    g.bench_function("swiglu_resid_gemm_fused", |b| {
        b.iter(|| {
            let y = matmul_fused(
                &gate,
                pw.nn(),
                Prologue::SwigluRows { up: &up },
                Epilogue::Add(&resid),
            );
            black_box(y).recycle();
        })
    });
    g.bench_function("swiglu_resid_gemm_unfused", |b| {
        b.iter(|| {
            let act = swiglu::forward(&gate, &up);
            let mut y = matmul(&act, &w);
            act.recycle();
            y.add_assign(&resid);
            black_box(y).recycle();
        })
    });
    g.finish();
}

fn bench_attention(c: &mut Criterion) {
    let cfg = HeadCfg::new(8, 2, 16);
    let mut g = c.benchmark_group("attention");
    for &s in &[128usize, 256] {
        let q = seeded_uniform(s, cfg.q_width(), 3);
        let k = seeded_uniform(s, cfg.kv_width(), 4);
        let v = seeded_uniform(s, cfg.kv_width(), 5);
        g.bench_with_input(BenchmarkId::new("monolithic_fwd", s), &s, |bch, _| {
            bch.iter(|| black_box(forward_full(&q, &k, &v, cfg)))
        });
        // Chunked (8 chunks) — the SlimPipe access pattern.
        let lc = s / 8;
        let ks: Vec<Tensor> = (0..8).map(|c| k.rows_slice(c * lc, lc)).collect();
        let vs: Vec<Tensor> = (0..8).map(|c| v.rows_slice(c * lc, lc)).collect();
        let chunks: Vec<(&Tensor, &Tensor)> = ks.iter().zip(vs.iter()).collect();
        let offsets: Vec<usize> = (0..8).map(|c| c * lc).collect();
        g.bench_with_input(BenchmarkId::new("chunked_fwd_8", s), &s, |bch, _| {
            bch.iter(|| black_box(forward_chunked(&q, &chunks, &offsets, cfg, 0)))
        });
        let fwd = forward_chunked(&q, &chunks, &offsets, cfg, 0);
        let d_o = seeded_uniform(s, cfg.q_width(), 6);
        g.bench_with_input(BenchmarkId::new("chunked_bwd_8", s), &s, |bch, _| {
            bch.iter(|| {
                black_box(backward_chunked(
                    &q, &chunks, &offsets, &d_o, &fwd.o, &fwd.lse, cfg, 0,
                ))
            })
        });
    }
    g.finish();
}

/// Scalar vs. GEMM attention kernel regimes at a realistic head shape
/// (8 heads × 64-dim, GQA `n_kv = 2`), chunked forward and backward at
/// seq 512 and 2048 — what routing the score/value matrix products
/// through the blocked micro-kernel buys over the scalar slice-wise path.
fn bench_attention_gemm(c: &mut Criterion) {
    let cfg = HeadCfg::new(8, 2, 64);
    let mut g = c.benchmark_group("attention_gemm");
    for &s in &[512usize, 2048] {
        let q = seeded_uniform(s, cfg.q_width(), 41);
        let k = seeded_uniform(s, cfg.kv_width(), 42);
        let v = seeded_uniform(s, cfg.kv_width(), 43);
        // Chunked (8 chunks) — the SlimPipe access pattern.
        let lc = s / 8;
        let ks: Vec<Tensor> = (0..8).map(|c| k.rows_slice(c * lc, lc)).collect();
        let vs: Vec<Tensor> = (0..8).map(|c| v.rows_slice(c * lc, lc)).collect();
        let chunks: Vec<(&Tensor, &Tensor)> = ks.iter().zip(vs.iter()).collect();
        let offsets: Vec<usize> = (0..8).map(|c| c * lc).collect();
        let fwd = forward_chunked(&q, &chunks, &offsets, cfg, 0);
        let d_o = seeded_uniform(s, cfg.q_width(), 44);
        for kernel in [AttnKernel::Scalar, AttnKernel::Gemm] {
            g.bench_with_input(
                BenchmarkId::new(format!("fwd_{}", kernel.as_str()), s),
                &s,
                |bch, _| {
                    bch.iter(|| {
                        with_attn_kernel(kernel, || {
                            black_box(forward_chunked(&q, &chunks, &offsets, cfg, 0))
                        })
                    })
                },
            );
            g.bench_with_input(
                BenchmarkId::new(format!("bwd_{}", kernel.as_str()), s),
                &s,
                |bch, _| {
                    bch.iter(|| {
                        with_attn_kernel(kernel, || {
                            black_box(backward_chunked(
                                &q, &chunks, &offsets, &d_o, &fwd.o, &fwd.lse, cfg, 0,
                            ))
                        })
                    })
                },
            );
        }
    }
    g.finish();
}

/// The fused SwiGLU backward (activation gradients folded into the gate/up
/// projection GEMMs as prologues) vs. materialising `d_gate`/`d_up` with
/// `swiglu::backward` and running plain GEMMs — the `d_normed` composition
/// the layer backward actually executes.
fn bench_fused_swiglu_bwd(c: &mut Criterion) {
    let (t, h) = (256usize, 512usize);
    let d_act = seeded_uniform(t, h, 51);
    let gate = seeded_uniform(t, h, 52);
    let up = seeded_uniform(t, h, 53);
    let wg = PackedWeight::new(seeded_uniform(h, h, 54));
    let wu = PackedWeight::new(seeded_uniform(h, h, 55));
    let mut g = c.benchmark_group("fused_swiglu_bwd");
    g.bench_function("fused", |b| {
        b.iter(|| {
            let pro_dg = Prologue::DSwigluGateRows { gate: &gate, up: &up };
            let pro_du = Prologue::DSwigluUpRows { gate: &gate };
            let mut dn = matmul_fused(&d_act, wg.nt(), pro_dg, Epilogue::None);
            matmul_fused_acc(&mut dn, &d_act, wu.nt(), pro_du);
            black_box(dn).recycle();
        })
    });
    g.bench_function("unfused", |b| {
        b.iter(|| {
            let (d_gate, d_up) = swiglu::backward(&gate, &up, &d_act);
            let mut dn = matmul_fused(&d_gate, wg.nt(), Prologue::None, Epilogue::None);
            matmul_fused_acc(&mut dn, &d_up, wu.nt(), Prologue::None);
            d_gate.recycle();
            d_up.recycle();
            black_box(dn).recycle();
        })
    });
    g.finish();
}

/// Thread scaling of the (head, q-block)-parallel forward at 8 heads and
/// of the (KV-head group, q-block)-parallel backward at `n_kv = 1` — the
/// MQA case that used to serialise on its single group. `*_threads_1` pins
/// the kernel to one thread; `*_threads_max` uses every available core (on
/// a single-core host the series coincide — the snapshot's `threads` /
/// `rayon_num_threads` metadata records which regime was measured).
fn bench_attention_scaling(c: &mut Criterion) {
    let cfg = HeadCfg::new(8, 8, 16);
    let s = 256;
    let q = seeded_uniform(s, cfg.q_width(), 7);
    let k = seeded_uniform(s, cfg.kv_width(), 8);
    let v = seeded_uniform(s, cfg.kv_width(), 9);
    let max = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut g = c.benchmark_group("attention_scaling");
    g.bench_function("fwd_threads_1", |b| {
        b.iter(|| rayon::with_num_threads(1, || black_box(forward_full(&q, &k, &v, cfg))))
    });
    g.bench_function("fwd_threads_max", |b| {
        b.iter(|| rayon::with_num_threads(max, || black_box(forward_full(&q, &k, &v, cfg))))
    });

    // MQA backward: one KV head, so all parallelism comes from q-blocks.
    let mqa = HeadCfg::new(8, 1, 16);
    let qm = seeded_uniform(s, mqa.q_width(), 17);
    let km = seeded_uniform(s, mqa.kv_width(), 18);
    let vm = seeded_uniform(s, mqa.kv_width(), 19);
    let d_o = seeded_uniform(s, mqa.q_width(), 20);
    let fwd = forward_full(&qm, &km, &vm, mqa);
    let bwd = |threads: usize| {
        rayon::with_num_threads(threads, || {
            black_box(backward_chunked(
                &qm,
                &[(&km, &vm)],
                &[0],
                &d_o,
                &fwd.o,
                &fwd.lse,
                mqa,
                0,
            ))
        })
    };
    g.bench_function("bwd_mqa_threads_1", |b| b.iter(|| bwd(1)));
    g.bench_function("bwd_mqa_threads_max", |b| b.iter(|| bwd(max)));
    g.finish();
}

fn bench_online_softmax_merge(c: &mut Criterion) {
    let cfg = HeadCfg::new(8, 8, 16);
    let s = 256;
    let q = seeded_uniform(s, cfg.q_width(), 7);
    let k = seeded_uniform(2 * s, cfg.q_width(), 8);
    let v = seeded_uniform(2 * s, cfg.q_width(), 9);
    let p0 = partial(&q, &k.rows_slice(0, s), &v.rows_slice(0, s), cfg, s, 0);
    let p1 = partial(&q, &k.rows_slice(s, s), &v.rows_slice(s, s), cfg, s, s);
    c.bench_function("merge_partials_256x128", |b| {
        b.iter(|| black_box(merge_partials(&p0, &p1, cfg)))
    });
}

fn bench_crossentropy(c: &mut Criterion) {
    let (rows, vocab) = (256usize, 4096usize);
    let logits = seeded_uniform(rows, vocab, 10);
    let targets = seeded_tokens(rows, vocab, 11);
    let mut g = c.benchmark_group("crossentropy");
    g.bench_function("monolithic", |b| {
        b.iter(|| black_box(forward_backward(&logits, &targets)))
    });
    g.bench_function("sharded_4way_stats", |b| {
        b.iter(|| {
            let w = vocab / 4;
            let stats: Vec<_> = (0..4)
                .map(|s| shard_stats(&logits.cols_slice(s * w, w), &targets, s * w))
                .collect();
            black_box(combine_stats(&stats))
        })
    });
    g.finish();
}

/// What the pool buys per buffer: a warm take+recycle against a fresh
/// `vec![0.0; n]` allocation of the same size.
fn bench_pool(c: &mut Criterion) {
    let len = 512 * 512;
    let mut g = c.benchmark_group("pool");
    // Prime the size class.
    pool::recycle(vec![0.0f32; len]);
    g.bench_function("take_recycle", |b| {
        b.iter(|| {
            let v = pool::take_raw(len);
            pool::recycle(black_box(v));
        })
    });
    g.bench_function("fresh_alloc", |b| {
        b.iter(|| {
            let v = vec![0.0f32; len];
            black_box(&v);
            drop(v);
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_matmul_vs_seed,
    bench_gemm_packed_cache,
    bench_fused_layer,
    bench_fused_swiglu_bwd,
    bench_attention,
    bench_attention_gemm,
    bench_attention_scaling,
    bench_online_softmax_merge,
    bench_crossentropy,
    bench_pool,
);
criterion_main!(benches);
