//! Kernel micro-benchmarks: the tensor substrate's hot paths — GEMM
//! orientations, chunked attention forward/backward, online-softmax
//! merging, and the sharded cross-entropy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slimpipe_tensor::attention::{
    backward_chunked, forward_chunked, forward_full, merge_partials, partial, HeadCfg,
};
use slimpipe_tensor::crossentropy::{combine_stats, forward_backward, shard_stats};
use slimpipe_tensor::init::{seeded_tokens, seeded_uniform};
use slimpipe_tensor::matmul::{matmul, matmul_nt, matmul_tn};
use slimpipe_tensor::Tensor;
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut g = c.benchmark_group("matmul");
    for &n in &[64usize, 128, 256] {
        let a = seeded_uniform(n, n, 1);
        let b = seeded_uniform(n, n, 2);
        g.bench_with_input(BenchmarkId::new("nn", n), &n, |bch, _| {
            bch.iter(|| black_box(matmul(&a, &b)))
        });
        g.bench_with_input(BenchmarkId::new("nt", n), &n, |bch, _| {
            bch.iter(|| black_box(matmul_nt(&a, &b)))
        });
        g.bench_with_input(BenchmarkId::new("tn", n), &n, |bch, _| {
            bch.iter(|| black_box(matmul_tn(&a, &b)))
        });
    }
    g.finish();
}

fn bench_attention(c: &mut Criterion) {
    let cfg = HeadCfg::new(8, 2, 16);
    let mut g = c.benchmark_group("attention");
    for &s in &[128usize, 256] {
        let q = seeded_uniform(s, cfg.q_width(), 3);
        let k = seeded_uniform(s, cfg.kv_width(), 4);
        let v = seeded_uniform(s, cfg.kv_width(), 5);
        g.bench_with_input(BenchmarkId::new("monolithic_fwd", s), &s, |bch, _| {
            bch.iter(|| black_box(forward_full(&q, &k, &v, cfg)))
        });
        // Chunked (8 chunks) — the SlimPipe access pattern.
        let lc = s / 8;
        let ks: Vec<Tensor> = (0..8).map(|c| k.rows_slice(c * lc, lc)).collect();
        let vs: Vec<Tensor> = (0..8).map(|c| v.rows_slice(c * lc, lc)).collect();
        let chunks: Vec<(&Tensor, &Tensor)> = ks.iter().zip(vs.iter()).collect();
        let offsets: Vec<usize> = (0..8).map(|c| c * lc).collect();
        g.bench_with_input(BenchmarkId::new("chunked_fwd_8", s), &s, |bch, _| {
            bch.iter(|| black_box(forward_chunked(&q, &chunks, &offsets, cfg, 0)))
        });
        let fwd = forward_chunked(&q, &chunks, &offsets, cfg, 0);
        let d_o = seeded_uniform(s, cfg.q_width(), 6);
        g.bench_with_input(BenchmarkId::new("chunked_bwd_8", s), &s, |bch, _| {
            bch.iter(|| {
                black_box(backward_chunked(
                    &q, &chunks, &offsets, &d_o, &fwd.o, &fwd.lse, cfg, 0,
                ))
            })
        });
    }
    g.finish();
}

fn bench_online_softmax_merge(c: &mut Criterion) {
    let cfg = HeadCfg::new(8, 8, 16);
    let s = 256;
    let q = seeded_uniform(s, cfg.q_width(), 7);
    let k = seeded_uniform(2 * s, cfg.q_width(), 8);
    let v = seeded_uniform(2 * s, cfg.q_width(), 9);
    let p0 = partial(&q, &k.rows_slice(0, s), &v.rows_slice(0, s), cfg, s, 0);
    let p1 = partial(&q, &k.rows_slice(s, s), &v.rows_slice(s, s), cfg, s, s);
    c.bench_function("merge_partials_256x128", |b| {
        b.iter(|| black_box(merge_partials(&p0, &p1, cfg)))
    });
}

fn bench_crossentropy(c: &mut Criterion) {
    let (rows, vocab) = (256usize, 4096usize);
    let logits = seeded_uniform(rows, vocab, 10);
    let targets = seeded_tokens(rows, vocab, 11);
    let mut g = c.benchmark_group("crossentropy");
    g.bench_function("monolithic", |b| {
        b.iter(|| black_box(forward_backward(&logits, &targets)))
    });
    g.bench_function("sharded_4way_stats", |b| {
        b.iter(|| {
            let w = vocab / 4;
            let stats: Vec<_> = (0..4)
                .map(|s| shard_stats(&logits.cols_slice(s * w, w), &targets, s * w))
                .collect();
            black_box(combine_stats(&stats))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_matmul,
    bench_attention,
    bench_online_softmax_merge,
    bench_crossentropy
);
criterion_main!(benches);
