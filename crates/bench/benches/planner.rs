//! Slicing-planner benchmarks: calibration and search wall time, plus the
//! planned-vs-baseline simulated makespan ratios the planner exists to
//! improve.
//!
//! `cargo bench --bench planner` writes `BENCH_planner.json`. CI runs it
//! with `BENCH_SLICING_POLICY=planned` so the snapshot carries the
//! `slicing_policy=planned` regime tag and only gates against baselines of
//! the same tag.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slimpipe_exec::model::ExecConfig;
use slimpipe_planner::{
    calibrate, plan, reference_profile, simulate_config, CalibrationOpts, PlanOpts,
};
use std::hint::black_box;

fn uniform_workload() -> ExecConfig {
    ExecConfig {
        stages: 2,
        microbatches: 2,
        ..ExecConfig::small()
    }
}

fn ragged_workload() -> ExecConfig {
    ExecConfig {
        stages: 2,
        microbatches: 2,
        seq: 192,
        mb_seqs: Some(vec![32, 192]),
        ..ExecConfig::small()
    }
}

/// Calibration wall time (the single-repeat quick form — the committed
/// profile uses more repeats, but the kernel-timing cost is what scales).
fn bench_calibration(c: &mut Criterion) {
    let mut g = c.benchmark_group("planner_calibrate");
    g.sample_size(10);
    let cfg = ExecConfig::small();
    let opts = CalibrationOpts {
        token_sizes: vec![8, 16, 32],
        chunk_counts: vec![0, 2],
        repeats: 1,
    };
    g.bench_function("quick_profile", |b| {
        b.iter(|| black_box(calibrate(&cfg, &opts)))
    });
    g.finish();
}

/// Search wall time over the uniform and ragged reference workloads.
fn bench_search(c: &mut Criterion) {
    let mut g = c.benchmark_group("planner_search");
    g.sample_size(10);
    let profile = reference_profile();
    for (name, cfg) in [("uniform", uniform_workload()), ("ragged", ragged_workload())] {
        g.bench_with_input(BenchmarkId::new("plan", name), &cfg, |b, cfg| {
            b.iter(|| black_box(plan(cfg, &profile, &PlanOpts::default()).unwrap()))
        });
    }
    g.finish();
}

/// Simulated one-iteration makespan of the planned config vs the uniform
/// baseline — series whose *ratio* `bench_check` gates on: the planned
/// partition must never simulate slower than uniform slicing at the same
/// workload.
fn bench_planned_vs_uniform(c: &mut Criterion) {
    let mut g = c.benchmark_group("planner_quality");
    g.sample_size(10);
    let profile = reference_profile();
    for (name, base) in [("uniform", uniform_workload()), ("ragged", ragged_workload())] {
        let planned_cfg =
            plan(&base, &profile, &PlanOpts::default()).unwrap().to_exec_config(&base);
        // The simulated makespans are deterministic; expose them as
        // nanosecond-scale series by busy-simulating (cheap, but the
        // *value* recorded is the sim wall time — the quality numbers
        // live in the id-tagged makespan series below).
        let planned_ms = simulate_config(&planned_cfg, &profile).makespan;
        let uniform_ms = simulate_config(&base, &profile).makespan;
        assert!(
            planned_ms <= uniform_ms + 1e-12,
            "{name}: planned {planned_ms} must not lose to uniform {uniform_ms}"
        );
        g.bench_with_input(BenchmarkId::new("simulate_planned", name), &planned_cfg, |b, cfg| {
            b.iter(|| black_box(simulate_config(cfg, &profile).makespan))
        });
    }
    g.finish();
}

criterion_group!(calibration, bench_calibration);
criterion_group!(search, bench_search);
criterion_group!(quality, bench_planned_vs_uniform);
criterion_main!(calibration, search, quality);
