//! Scheduler benchmarks: schedule generation for every scheme, validation,
//! the exchange planner, and the discrete-event engine itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slimpipe_bench::{scheme_env, scheme_schedule};
use slimpipe_core::exchange::{plan_round, steady_round_slices};
use slimpipe_core::theory::Scheme;
use slimpipe_model::{Checkpoint, ModelConfig};
use slimpipe_sim::cost::CostModel;
use slimpipe_sim::engine::simulate;
use std::hint::black_box;

fn bench_generators(c: &mut Criterion) {
    let mut g = c.benchmark_group("schedule_generation");
    let (p, m) = (8usize, 16usize);
    for s in Scheme::table2() {
        g.bench_with_input(BenchmarkId::new("generate", s.name()), &s, |b, &s| {
            b.iter(|| black_box(scheme_schedule(s, p, m, 4 * p, 2).unwrap()))
        });
    }
    g.finish();
}

fn bench_validation(c: &mut Criterion) {
    let sched = slimpipe_core::interleaved::generate(8, 2, 16, 32).unwrap();
    c.bench_function("validate_slimpipe_p8_m16_n32_v2", |b| {
        b.iter(|| {
            slimpipe_sched::validate(&sched).unwrap();
            black_box(())
        })
    });
}

fn bench_exchange_planner(c: &mut Criterion) {
    let mut g = c.benchmark_group("exchange_planner");
    for &(p, n) in &[(8usize, 32usize), (16, 64), (32, 128)] {
        g.bench_with_input(BenchmarkId::new("plan_round", format!("p{p}_n{n}")), &p, |b, _| {
            let slices = steady_round_slices(p, n, n - 1);
            b.iter(|| black_box(plan_round(&slices, 4096)))
        });
    }
    g.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let model = ModelConfig::llama_13b();
    let mut g = c.benchmark_group("discrete_event_engine");
    g.sample_size(20);
    for &(p, m, n) in &[(4usize, 4usize, 16usize), (8, 8, 32)] {
        let sched = slimpipe_core::schedule::generate(p, m, n).unwrap();
        let env = scheme_env(&model, Scheme::SlimPipe, 131_072, 8, Checkpoint::Full);
        g.bench_with_input(
            BenchmarkId::new("simulate_slimpipe", format!("p{p}_m{m}_n{n}")),
            &p,
            |b, _| b.iter(|| black_box(simulate(&CostModel::new(&sched, &env)))),
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_generators,
    bench_validation,
    bench_exchange_planner,
    bench_simulator
);
criterion_main!(benches);
