//! Ablation benchmarks for the design choices DESIGN.md §5 calls out:
//! uniform vs pair-balanced slicing, context exchange on/off, early-KV
//! exchange on/off, vocabulary parallelism on/off, and chunked vs
//! monolithic KV handling in the real executor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slimpipe_bench::{scheme_env, scheme_schedule};
use slimpipe_core::slicing::Slicing;
use slimpipe_core::theory::Scheme;
use slimpipe_exec::model::ExecConfig;
use slimpipe_exec::schedule::PipelineKind;
use slimpipe_exec::train::run_pipeline;
use slimpipe_model::{Checkpoint, ModelConfig};
use slimpipe_sim::cost::CostModel;
use slimpipe_sim::engine::simulate;
use std::hint::black_box;

/// Uniform vs pair-balanced slicing: workload imbalance each must absorb.
fn ablation_slicing(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_slicing");
    for &n in &[8usize, 32] {
        g.bench_with_input(BenchmarkId::new("uniform", n), &n, |b, &n| {
            b.iter(|| black_box(Slicing::uniform(n as u64 * 4096, n).imbalance()))
        });
        g.bench_with_input(BenchmarkId::new("pair_balanced", n), &n, |b, &n| {
            b.iter(|| black_box(Slicing::pair_balanced(n as u64 * 4096, n).imbalance()))
        });
    }
    g.finish();
}

/// Context exchange on/off in the simulator: the imbalance-bubble cost.
fn ablation_exchange(c: &mut Criterion) {
    let model = ModelConfig::llama_13b();
    let sched = scheme_schedule(Scheme::SlimPipe, 4, 4, 16, 1).unwrap();
    let mut g = c.benchmark_group("ablation_exchange");
    g.sample_size(20);
    for (name, on) in [("off", false), ("on", true)] {
        let mut env = scheme_env(&model, Scheme::SlimPipe, 262_144, 8, Checkpoint::Full);
        env.exchange = on;
        g.bench_function(name, |b| {
            b.iter(|| black_box(simulate(&CostModel::new(&sched, &env)).bubble_fraction))
        });
    }
    g.finish();
}

/// Early KV exchange on/off: exposed communication per simulated iteration.
fn ablation_early_kv(c: &mut Criterion) {
    let model = ModelConfig::llama_13b();
    let sched = scheme_schedule(Scheme::SlimPipe, 4, 4, 16, 1).unwrap();
    let mut g = c.benchmark_group("ablation_early_kv");
    g.sample_size(20);
    for (name, early) in [("overlapped", true), ("blocking", false)] {
        let mut env = scheme_env(&model, Scheme::SlimPipe, 262_144, 8, Checkpoint::Full);
        env.early_kv = early;
        g.bench_function(name, |b| {
            b.iter(|| black_box(simulate(&CostModel::new(&sched, &env)).makespan))
        });
    }
    g.finish();
}

/// Vocabulary parallelism on/off in the real executor.
fn ablation_vocab_parallel(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_vocab_parallel");
    g.sample_size(10);
    for (name, vp) in [("classic", false), ("vocab_parallel", true)] {
        let cfg = ExecConfig {
            stages: 2,
            slices: 4,
            microbatches: 2,
            vocab_parallel: vp,
            ..ExecConfig::small()
        };
        g.bench_function(name, |b| {
            b.iter(|| black_box(run_pipeline(&cfg, PipelineKind::SlimPipe, 1, 0.1)))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    ablation_slicing,
    ablation_exchange,
    ablation_early_kv,
    ablation_vocab_parallel
);
criterion_main!(benches);
