//! One criterion group per paper artifact: each benchmark runs a
//! reduced-scale version of the corresponding figure/table regeneration
//! path, so regressions in any experiment pipeline show up as timing or
//! panics here. (The full-scale rows are printed by the `fig*`/`tab*`
//! binaries.)

use criterion::{criterion_group, criterion_main, Criterion};
use slimpipe_bench::{pipeline_mfu, scheme_env, scheme_schedule};
use slimpipe_cluster::Cluster;
use slimpipe_core::exchange::measured_volume_per_device;
use slimpipe_core::theory::{act_memory_rel, fig6a_curve, fig6b_curve, Scheme};
use slimpipe_model::{Checkpoint, ModelConfig};
use slimpipe_parallel::search::{best_config, SearchOptions};
use slimpipe_parallel::SystemKind;
use std::hint::black_box;

fn fig01_fig06_theory(c: &mut Criterion) {
    c.bench_function("fig01_fig06_theory_curves", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for p in [4usize, 8, 16] {
                for mult in 0..=6 {
                    acc += fig6a_curve(p, mult * p) + fig6b_curve(p, 4, mult * p);
                }
            }
            black_box(acc)
        })
    });
}

fn tab02_walks(c: &mut Criterion) {
    c.bench_function("tab02_formula_vs_walk", |b| {
        b.iter(|| {
            let (p, m, n, v) = (4usize, 4usize, 8usize, 2usize);
            let mut acc = 0.0;
            for s in Scheme::table2() {
                let (sn, sv) = match s {
                    Scheme::SlimPipe => (n, v),
                    Scheme::TeraPipe => (n, 1),
                    Scheme::Interleaved => (1, v),
                    _ => (1, 1),
                };
                acc += act_memory_rel(s, p, m, sn, sv);
                if let Ok(sched) = scheme_schedule(s, p, m, sn, sv) {
                    acc += slimpipe_core::memory::measured_act_rel(&sched);
                }
            }
            black_box(acc)
        })
    });
}

fn eq2_volume(c: &mut Criterion) {
    c.bench_function("eq2_planner_microbatch_volume", |b| {
        b.iter(|| black_box(measured_volume_per_device(8, 32, 1024)))
    });
}

fn fig11_point(c: &mut Criterion) {
    let model = ModelConfig::llama_13b();
    c.bench_function("fig11_one_sweep_point", |b| {
        let env = scheme_env(&model, Scheme::SlimPipe, 131_072, 8, Checkpoint::Full);
        let sched = slimpipe_core::interleaved::generate(4, 5, 2, 16).unwrap();
        b.iter(|| black_box(pipeline_mfu(&model, &env, &sched, 2)))
    });
}

fn fig13_point(c: &mut Criterion) {
    let model = ModelConfig::llama_13b();
    let mut g = c.benchmark_group("fig13_one_cell");
    g.sample_size(10);
    for s in [Scheme::OneFOneB, Scheme::ZbV, Scheme::SlimPipe] {
        g.bench_function(s.name(), |b| {
            let (n, v) = if s == Scheme::SlimPipe { (4, 5) } else { (1, 2) };
            let env = scheme_env(&model, s, 65_536, 8, Checkpoint::Full);
            let sched = scheme_schedule(s, 4, 4, n, v).unwrap();
            b.iter(|| black_box(pipeline_mfu(&model, &env, &sched, 4)))
        });
    }
    g.finish();
}

fn fig12_cell(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12_one_cell_search");
    g.sample_size(10);
    let cluster = Cluster::hopper_nvlink();
    g.bench_function("slimpipe_32gpu_64k", |b| {
        let model = ModelConfig::llama_13b();
        let opts = SearchOptions {
            ckpt_modes: vec![Checkpoint::Selective],
            ..Default::default()
        };
        b.iter(|| {
            black_box(best_config(
                &model,
                SystemKind::SlimPipe,
                32,
                65_536,
                4 << 20,
                &cluster,
                &opts,
            ))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    fig01_fig06_theory,
    tab02_walks,
    eq2_volume,
    fig11_point,
    fig13_point,
    fig12_cell
);
criterion_main!(benches);
