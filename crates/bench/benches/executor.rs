//! Executor benchmarks: real threaded pipeline training steps under each
//! scheme, with the feature toggles on and off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slimpipe_exec::model::ExecConfig;
use slimpipe_exec::schedule::PipelineKind;
use slimpipe_exec::train::{run_pipeline, run_reference};
use std::hint::black_box;

fn cfg() -> ExecConfig {
    ExecConfig {
        stages: 2,
        slices: 4,
        microbatches: 2,
        ..ExecConfig::small()
    }
}

fn bench_reference(c: &mut Criterion) {
    let mut g = c.benchmark_group("executor");
    g.sample_size(10);
    g.bench_function("reference_step", |b| {
        b.iter(|| black_box(run_reference(&cfg(), 1, 0.1)))
    });
    g.finish();
}

fn bench_pipelines(c: &mut Criterion) {
    let mut g = c.benchmark_group("executor_pipeline_step");
    g.sample_size(10);
    let base = cfg();
    for (name, kind, slices) in [
        ("gpipe", PipelineKind::GPipe, 1usize),
        ("1f1b", PipelineKind::OneFOneB, 1),
        ("terapipe", PipelineKind::TeraPipe, 4),
        ("slimpipe", PipelineKind::SlimPipe, 4),
    ] {
        let c2 = ExecConfig { slices, ..base };
        g.bench_with_input(BenchmarkId::new("scheme", name), &kind, |b, &k| {
            b.iter(|| black_box(run_pipeline(&c2, k, 1, 0.1)))
        });
    }
    g.finish();
}

fn bench_feature_toggles(c: &mut Criterion) {
    let mut g = c.benchmark_group("executor_features");
    g.sample_size(10);
    let base = ExecConfig { slices: 8, ..cfg() };
    for (name, exchange, vp) in [
        ("plain", false, false),
        ("exchange", true, false),
        ("vocab_parallel", false, true),
        ("both", true, true),
    ] {
        let c2 = ExecConfig { exchange, vocab_parallel: vp, ..base };
        g.bench_with_input(BenchmarkId::new("features", name), &name, |b, _| {
            b.iter(|| black_box(run_pipeline(&c2, PipelineKind::SlimPipe, 1, 0.1)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_reference, bench_pipelines, bench_feature_toggles);
criterion_main!(benches);
