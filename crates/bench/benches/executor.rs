//! Executor benchmarks: real threaded pipeline training steps under each
//! scheme, with the feature toggles on and off, plus the end-to-end effect
//! of the tensor buffer pool (cold vs. warm training steps).
//!
//! `cargo bench --bench executor` writes `BENCH_executor.json`, the
//! executor-level perf snapshot later PRs regress against.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slimpipe_exec::checkpoint::snapshot_path;
use slimpipe_exec::fault::InjectedPanic;
use slimpipe_exec::model::{CheckpointCfg, ExecConfig};
use slimpipe_exec::schedule::PipelineKind;
use slimpipe_exec::train::{run_pipeline, run_reference, try_run_pipeline_traced};
use slimpipe_exec::{
    run_elastic, DegradePolicy, DriverCfg, FaultKind, FaultPlan, FaultSite, ShrinkReplanner,
    SlicePolicy, TraceSession,
};
use slimpipe_tensor::pool;
use std::hint::black_box;

fn cfg() -> ExecConfig {
    ExecConfig {
        stages: 2,
        slices: 4,
        microbatches: 2,
        ..ExecConfig::small()
    }
}

fn bench_reference(c: &mut Criterion) {
    let mut g = c.benchmark_group("executor");
    g.sample_size(10);
    g.bench_function("reference_step", |b| {
        b.iter(|| black_box(run_reference(&cfg(), 1, 0.1)))
    });
    g.finish();
}

fn bench_pipelines(c: &mut Criterion) {
    let mut g = c.benchmark_group("executor_pipeline_step");
    g.sample_size(10);
    let base = cfg();
    for (name, kind, slices) in [
        ("gpipe", PipelineKind::GPipe, 1usize),
        ("1f1b", PipelineKind::OneFOneB, 1),
        ("terapipe", PipelineKind::TeraPipe, 4),
        ("slimpipe", PipelineKind::SlimPipe, 4),
    ] {
        let c2 = ExecConfig { slices, ..base.clone() };
        g.bench_with_input(BenchmarkId::new("scheme", name), &kind, |b, &k| {
            b.iter(|| black_box(run_pipeline(&c2, k, 1, 0.1)))
        });
    }
    g.finish();
}

fn bench_feature_toggles(c: &mut Criterion) {
    let mut g = c.benchmark_group("executor_features");
    g.sample_size(10);
    let base = ExecConfig { slices: 8, ..cfg() };
    for (name, exchange, vp) in [
        ("plain", false, false),
        ("exchange", true, false),
        ("vocab_parallel", false, true),
        ("both", true, true),
    ] {
        let c2 = ExecConfig { exchange, vocab_parallel: vp, ..base.clone() };
        g.bench_with_input(BenchmarkId::new("features", name), &name, |b, _| {
            b.iter(|| black_box(run_pipeline(&c2, PipelineKind::SlimPipe, 1, 0.1)))
        });
    }
    g.finish();
}

/// The slicing-policy axis: one SlimPipe step per policy (exchange on —
/// the interesting case, since non-uniform partitions change the exchange
/// plan), plus a ragged-microbatch run. Series ids embed the policy tag,
/// so they never collide across policies; snapshot-level tagging for
/// forced sweeps comes from `BENCH_SLICING_POLICY` (see the criterion
/// shim + `bench_check`).
fn bench_slicing_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("executor_slicing");
    g.sample_size(10);
    let base = ExecConfig { slices: 8, exchange: true, ..cfg() };
    for (tag, policy) in [
        ("uniform", SlicePolicy::Uniform),
        ("pair_balanced", SlicePolicy::PairBalanced),
    ] {
        let c2 = ExecConfig { slicing: policy, ..base.clone() };
        g.bench_with_input(BenchmarkId::new("policy", tag), &tag, |b, _| {
            b.iter(|| black_box(run_pipeline(&c2, PipelineKind::SlimPipe, 1, 0.1)))
        });
    }
    let ragged = ExecConfig { mb_seqs: Some(vec![48, 80]), ..base };
    g.bench_with_input(BenchmarkId::new("policy", "uniform_ragged"), &0, |b, _| {
        b.iter(|| black_box(run_pipeline(&ragged, PipelineKind::SlimPipe, 1, 0.1)))
    });
    g.finish();
}

/// The fault-tolerance hot-path tax: identical training steps with the
/// runtime fully armed — a fault plan that is consulted at every op but
/// never fires, a non-abort degradation policy, and the guarded
/// rendezvous/watchdog machinery live on every channel wait. Each armed
/// series is measured back-to-back with a clean twin of the same workload
/// (temporal noise on a shared host dwarfs the effect when the comparison
/// spans the whole bench run); `bench_check` holds armed within the
/// regression gate of its twin: recovery must cost nothing when nothing
/// fails.
fn bench_fault_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("executor_fault_overhead");
    g.sample_size(10);
    let base = ExecConfig { slices: 8, ..cfg() };
    // Armed but idle: the site is valid geometry but the iteration is
    // never reached, so the plan is scanned on every forward op and never
    // matches.
    let idle_plan = FaultPlan::single(
        FaultSite { iteration: usize::MAX, stage: 1, mb: 0, slice: 0 },
        FaultKind::StagePanic,
    );
    for (name, exchange, vp) in [("plain", false, false), ("both", true, true)] {
        let clean = ExecConfig { exchange, vocab_parallel: vp, ..base.clone() };
        let armed = ExecConfig {
            policy: DegradePolicy::SkipMicrobatch,
            fault_plan: Some(idle_plan.clone()),
            ..clean.clone()
        };
        g.bench_with_input(BenchmarkId::new("clean", name), &name, |b, _| {
            b.iter(|| black_box(run_pipeline(&clean, PipelineKind::SlimPipe, 1, 0.1)))
        });
        g.bench_with_input(BenchmarkId::new("armed", name), &name, |b, _| {
            b.iter(|| black_box(run_pipeline(&armed, PipelineKind::SlimPipe, 1, 0.1)))
        });
    }
    g.finish();
}

/// The async exchange runtime vs. its serialized fallback, back-to-back
/// on the same exchange-heavy workload: double-buffered boundary channels
/// with posted sends and up-front remote dispatch vs. one blocking
/// rendezvous per chunk. On a multi-core host overlapping comm with
/// compute should win outright; on a 1-core host the regimes interleave
/// on the same CPU and may tie. `bench_check` holds overlapped within the
/// noise gate of serialized — overlap must never *cost*.
fn bench_async_overlap(c: &mut Criterion) {
    let mut g = c.benchmark_group("executor_async_overlap");
    g.sample_size(10);
    let base = ExecConfig { slices: 8, exchange: true, ..cfg() };
    let serialized = ExecConfig { async_exchange: false, ..base.clone() };
    let overlapped = ExecConfig { async_exchange: true, ..base };
    g.bench_function("serialized", |b| {
        b.iter(|| black_box(run_pipeline(&serialized, PipelineKind::SlimPipe, 1, 0.1)))
    });
    g.bench_function("overlapped", |b| {
        b.iter(|| black_box(run_pipeline(&overlapped, PipelineKind::SlimPipe, 1, 0.1)))
    });
    g.finish();
}

/// The elastic recovery tax, end to end: the same supervised 6-iteration
/// job run clean vs. with a stage panic at iteration 3. The failing run
/// pays detection of the contained panic, the shrink-to-survivors re-plan,
/// the snapshot restore (regrouped onto one stage), and the re-executed
/// iterations since the iteration-2 snapshot. `bench_check` holds recover
/// within 2.5× clean — fail-and-recover is a bounded tax, not a
/// restart-the-world cost. Both series recreate the checkpoint files every
/// iteration so the fs work cancels out of the comparison.
fn bench_recovery(c: &mut Criterion) {
    // Injected panics are expected here; keep them out of the bench log.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if info.payload().downcast_ref::<InjectedPanic>().is_none() {
            prev(info);
        }
    }));
    let path = std::env::temp_dir()
        .join(format!("slimpipe_bench_recovery_{}.ckpt", std::process::id()));
    let clean_files = || {
        let _ = std::fs::remove_file(&path);
        for it in 0..8 {
            let _ = std::fs::remove_file(snapshot_path(&path, it));
        }
    };
    let base = ExecConfig {
        checkpoint: Some(CheckpointCfg { every: 2, path: path.clone(), keep_last: 1 }),
        ..cfg()
    };
    let faulty = ExecConfig {
        fault_plan: Some(FaultPlan::single(
            FaultSite { iteration: 3, stage: 1, mb: 0, slice: 1 },
            FaultKind::StagePanic,
        )),
        ..base.clone()
    };
    let mut g = c.benchmark_group("executor_recovery");
    g.sample_size(10);
    g.bench_function("clean", |b| {
        b.iter(|| {
            clean_files();
            black_box(
                run_elastic(&base, &DriverCfg::default(), 6, 0.1, &mut ShrinkReplanner)
                    .expect("clean supervised run"),
            )
        })
    });
    g.bench_function("recover", |b| {
        b.iter(|| {
            clean_files();
            black_box(
                run_elastic(&faulty, &DriverCfg::default(), 6, 0.1, &mut ShrinkReplanner)
                    .expect("recoverable fault must heal"),
            )
        })
    });
    g.finish();
    clean_files();
}

/// The tracing tax: identical SlimPipe steps untraced (env hook unset —
/// the recorder's `clock()` is a `None` branch, no clock reads, no
/// locking) vs. recording into a live session every iteration.
/// `bench_check` holds traced within the 10% noise gate of untraced —
/// observability must be free when off and near-free when on.
fn bench_trace_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("executor_trace_overhead");
    g.sample_size(10);
    let base = ExecConfig { slices: 8, exchange: true, ..cfg() };
    g.bench_function("untraced", |b| {
        b.iter(|| black_box(run_pipeline(&base, PipelineKind::SlimPipe, 1, 0.1)))
    });
    g.bench_function("traced", |b| {
        b.iter(|| {
            let trace = TraceSession::new();
            black_box(
                try_run_pipeline_traced(&base, PipelineKind::SlimPipe, 1, 0.1, &trace)
                    .expect("clean traced run"),
            )
        })
    });
    g.finish();
}

/// The pool's end-to-end effect: identical training steps with the pool
/// emptied before every iteration (every kernel allocation is a fresh
/// malloc) vs. left warm (steady-state, allocation-free).
fn bench_pool_cold_vs_warm(c: &mut Criterion) {
    let cfg = ExecConfig {
        stages: 1,
        slices: 4,
        microbatches: 2,
        ..ExecConfig::small()
    };
    let mut g = c.benchmark_group("executor_pool");
    g.sample_size(10);
    g.bench_function("step_cold_pool", |b| {
        b.iter(|| {
            pool::clear();
            black_box(run_reference(&cfg, 1, 0.1))
        })
    });
    // Warm the pool once, then measure steady-state steps.
    let _ = run_reference(&cfg, 1, 0.1);
    g.bench_function("step_warm_pool", |b| {
        b.iter(|| black_box(run_reference(&cfg, 1, 0.1)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_reference,
    bench_pipelines,
    bench_feature_toggles,
    bench_fault_overhead,
    bench_recovery,
    bench_async_overlap,
    bench_slicing_policies,
    bench_trace_overhead,
    bench_pool_cold_vs_warm,
);
criterion_main!(benches);
