//! Perf-regression gate over the criterion shim's `BENCH_<name>.json`
//! snapshots: compare a freshly measured snapshot against a committed
//! baseline and fail when any shared series regressed by more than the
//! threshold.
//!
//! ```text
//! bench_check <baseline.json> <fresh.json> [--pct <percent>]
//! ```
//!
//! The threshold defaults to 20% and can also be set with
//! `BENCH_REGRESSION_PCT`. Series present in only one snapshot are
//! reported but never fail the gate (new benches appear, old ones retire);
//! a fresh snapshot measured under a different *regime* than the baseline
//! downgrades the id-by-id comparison to report-only, because absolute
//! times across regimes are not comparable. A regime is the thread
//! metadata (`threads` / `rayon_num_threads`) **and** the slicing-policy
//! tag (`slicing_policy`, set by `BENCH_SLICING_POLICY` during slice-sweep
//! runs) — a pair-balanced sweep never gates against a uniform baseline.
//!
//! Machine-independent **ratio invariants** inside the *fresh* snapshot
//! gate in every regime (CI runners never match the committed baseline's
//! host): the tiled GEMM must stay well ahead of the seed kernel, the pool
//! must stay well ahead of malloc, and the thread-scaling series must
//! never be slower than their single-thread twins beyond noise.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Metadata keys the scanner understands. Anything else in the snapshot
/// header is tolerated and flagged (a newer shim may stamp new regime
/// metadata; an old checker must keep working, loudly).
const KNOWN_METADATA: &[&str] = &["bench", "threads", "rayon_num_threads", "slicing_policy"];

/// Minimal field scanner for the snapshot format the criterion shim
/// writes — one `{"id": ..., "ns_per_iter": ...}` object per line.
/// Returns `(series, regime, unknown metadata keys)`.
fn parse_snapshot(text: &str) -> (BTreeMap<String, f64>, Option<String>, Vec<String>) {
    let mut results = BTreeMap::new();
    let mut regime = None;
    let mut unknown = Vec::new();
    let mut in_header = true;
    for line in text.lines() {
        let t = line.trim().trim_end_matches(',');
        if t.starts_with("\"results\":") {
            in_header = false;
        }
        if in_header {
            if let Some(key) = t
                .strip_prefix('"')
                .and_then(|r| r.split_once('"'))
                .filter(|(_, rest)| rest.starts_with(':'))
                .map(|(k, _)| k)
            {
                if !KNOWN_METADATA.contains(&key) {
                    unknown.push(key.to_string());
                }
            }
        }
        if let Some(v) = t.strip_prefix("\"threads\":") {
            regime = Some(format!("threads={}", v.trim()));
        }
        if let Some(v) = t.strip_prefix("\"rayon_num_threads\":") {
            if let Some(r) = &mut regime {
                r.push_str(&format!(" rayon_num_threads={}", v.trim()));
            }
        }
        if let Some(v) = t.strip_prefix("\"slicing_policy\":") {
            let tag = v.trim().trim_matches('"');
            // Absent metadata (old snapshots) and an explicit null both
            // mean the default (uniform) policy regime.
            if tag != "null" {
                regime
                    .get_or_insert_with(String::new)
                    .push_str(&format!(" slicing_policy={tag}"));
            }
        }
        let Some(idx) = t.find("\"id\":") else { continue };
        let rest = &t[idx + 5..];
        let Some(open) = rest.find('"') else { continue };
        let Some(close) = rest[open + 1..].find('"') else { continue };
        let id = rest[open + 1..open + 1 + close].to_string();
        let Some(nidx) = t.find("\"ns_per_iter\":") else { continue };
        let num: String = t[nidx + 14..]
            .chars()
            .skip_while(|c| c.is_whitespace())
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e')
            .collect();
        if let Ok(ns) = num.parse::<f64>() {
            results.insert(id, ns);
        }
    }
    (results, regime, unknown)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut pct: f64 = std::env::var("BENCH_REGRESSION_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20.0);
    let mut paths = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--pct" => {
                pct = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--pct needs a numeric argument");
            }
            p => paths.push(p.to_string()),
        }
    }
    if paths.len() != 2 {
        eprintln!("usage: bench_check <baseline.json> <fresh.json> [--pct <percent>]");
        return ExitCode::from(2);
    }
    let read = |p: &str| {
        std::fs::read_to_string(p).unwrap_or_else(|e| panic!("cannot read {p}: {e}"))
    };
    let (base, base_regime, base_unknown) = parse_snapshot(&read(&paths[0]));
    let (fresh, fresh_regime, fresh_unknown) = parse_snapshot(&read(&paths[1]));
    assert!(!base.is_empty(), "no results parsed from baseline {}", paths[0]);
    assert!(!fresh.is_empty(), "no results parsed from fresh {}", paths[1]);
    for (which, keys) in [("baseline", &base_unknown), ("fresh", &fresh_unknown)] {
        for key in keys {
            println!("note: {which} snapshot has unknown metadata key \"{key}\" — ignored");
        }
    }

    let comparable = base_regime == fresh_regime;
    if !comparable {
        println!(
            "note: thread regimes differ ({} vs {}) — reporting only, not gating",
            base_regime.as_deref().unwrap_or("?"),
            fresh_regime.as_deref().unwrap_or("?")
        );
    }

    let mut failures = 0usize;
    println!("{:<48} {:>12} {:>12} {:>8}", "series", "baseline", "fresh", "ratio");
    for (id, &b) in &base {
        match fresh.get(id) {
            Some(&f) => {
                let ratio = f / b;
                let flag = if ratio > 1.0 + pct / 100.0 { " REGRESSED" } else { "" };
                if !flag.is_empty() && comparable {
                    failures += 1;
                }
                println!("{id:<48} {b:>12.0} {f:>12.0} {ratio:>7.2}x{flag}");
            }
            None => println!("{id:<48} {b:>12.0} {:>12} {:>8}", "-", "gone"),
        }
    }
    for id in fresh.keys().filter(|id| !base.contains_key(*id)) {
        println!("{id:<48} {:>12} {:>12.0} {:>8}", "-", fresh[id], "new");
    }
    // Ratio invariants over the fresh snapshot: (fast, slow, min slow/fast).
    // Values below 1.0 mean "fast may be up to 1/min slower than slow" —
    // used for thread-scaling pairs that coincide on 1-core hosts.
    const INVARIANTS: &[(&str, &str, f64)] = &[
        ("matmul/tiled/512", "matmul/seed_ikj/512", 1.5),
        ("matmul/tiled/1024", "matmul/seed_ikj/1024", 1.5),
        ("pool/take_recycle", "pool/fresh_alloc", 10.0),
        ("attention_scaling/fwd_threads_max", "attention_scaling/fwd_threads_1", 0.77),
        ("attention_scaling/bwd_mqa_threads_max", "attention_scaling/bwd_mqa_threads_1", 0.77),
        // The persistent packed-weight cache must never lose to per-call
        // packing, and the fused prologue/epilogue must never lose to the
        // separate-pass composition (0.9 = 10% noise allowance).
        ("gemm_packed_cache/nn_packed/512", "gemm_packed_cache/nn_unpacked/512", 0.9),
        ("gemm_packed_cache/nt_packed/512", "gemm_packed_cache/nt_unpacked/512", 0.9),
        ("fused_layer/norm_gemm_fused", "fused_layer/norm_gemm_unfused", 0.9),
        ("fused_layer/swiglu_resid_gemm_fused", "fused_layer/swiglu_resid_gemm_unfused", 0.9),
        // The GEMM attention regime (score/value products through the
        // blocked micro-kernel) must never lose to the scalar slice-wise
        // path beyond noise, forward and backward, at both sequence
        // lengths (in practice it wins 3-5x). The fused SwiGLU backward
        // must stay within the same gate of the materialised d_gate/d_up
        // composition: fusion trades one shared activation pass for a
        // recompute per consumer GEMM, so on a compute-bound single-core
        // host it may tie — its win is the two eliminated intermediates
        // (0.83 ≈ 1/1.2).
        ("attention_gemm/fwd_gemm/512", "attention_gemm/fwd_scalar/512", 0.83),
        ("attention_gemm/bwd_gemm/512", "attention_gemm/bwd_scalar/512", 0.83),
        ("attention_gemm/fwd_gemm/2048", "attention_gemm/fwd_scalar/2048", 0.83),
        ("attention_gemm/bwd_gemm/2048", "attention_gemm/bwd_scalar/2048", 0.83),
        ("fused_swiglu_bwd/fused", "fused_swiglu_bwd/unfused", 0.83),
        // The fully-armed fault-tolerant runtime (idle fault plan, guarded
        // rendezvous, watchdog) must stay within the 20% gate of its clean
        // twin, measured back-to-back on the same workload: 0.83 ≈ 1/1.2.
        ("executor_fault_overhead/armed/plain", "executor_fault_overhead/clean/plain", 0.83),
        ("executor_fault_overhead/armed/both", "executor_fault_overhead/clean/both", 0.83),
        // The async (overlapped) exchange runtime must never lose to its
        // serialized fallback beyond noise, measured back-to-back: on a
        // multi-core host it should win, on 1 core it may tie.
        ("executor_async_overlap/overlapped", "executor_async_overlap/serialized", 0.83),
        // Fail-and-recover (panic detection + shrink re-plan + snapshot
        // restore + re-executed iterations) must stay within 2.5× the
        // clean twin of the same supervised job: recovery is a bounded
        // tax, never a restart-the-world cost (0.4 = 1/2.5).
        ("executor_recovery/recover", "executor_recovery/clean", 0.4),
        // Span recording (per-thread ring buffers, drained at iteration
        // boundaries) must stay within the 10% noise gate of the untraced
        // twin, back-to-back on the same exchange-heavy workload.
        ("executor_trace_overhead/traced", "executor_trace_overhead/untraced", 0.9),
    ];
    let mut checked = 0usize;
    for &(fast, slow, min) in INVARIANTS {
        let (Some(&f), Some(&s)) = (fresh.get(fast), fresh.get(slow)) else { continue };
        checked += 1;
        let ratio = s / f;
        let ok = ratio >= min;
        println!("invariant {slow} / {fast} = {ratio:.2} (min {min}){}", if ok { "" } else { " VIOLATED" });
        if !ok {
            failures += 1;
        }
    }

    if failures > 0 {
        eprintln!("\n{failures} regression(s)/invariant violation(s) beyond the gate");
        return ExitCode::FAILURE;
    }
    println!(
        "\nno regression beyond {pct}% across {} shared series; {checked} invariants hold",
        base.len()
    );
    ExitCode::SUCCESS
}
