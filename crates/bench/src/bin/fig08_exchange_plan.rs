//! Figure 8: the context-exchange rebalancing plan — which device computes
//! which (Q, KV-chunk) task before and after redistribution.

use slimpipe_bench::print_table;
use slimpipe_core::exchange::{plan_round, steady_round_slices};

fn main() {
    // Figure 8's situation: 6 devices mid-steady-state with slices 7..2
    // in flight (1-indexed in the paper; 6..1 here 0-indexed).
    let p = 6usize;
    let n = 12usize;
    let l = 1024u64;
    let slices = steady_round_slices(p, n, 6);
    println!("Figure 8 — attention workload rebalancing (p={p}, slice length {l})\n");
    println!(
        "in-flight slices per device: {:?}\n",
        slices.iter().map(|s| s.unwrap() + 1).collect::<Vec<_>>()
    );

    let plan = plan_round(&slices, l);
    let mut rows = Vec::new();
    for dev in 0..p {
        let own: Vec<String> = plan
            .tasks
            .iter()
            .filter(|t| t.executor == dev && t.q_owner == dev)
            .map(|t| format!("Q{},K{}V{}", slices[dev].unwrap() + 1, t.kv_chunk + 1, t.kv_chunk + 1))
            .collect();
        let remote: Vec<String> = plan
            .tasks
            .iter()
            .filter(|t| t.executor == dev && t.q_owner != dev)
            .map(|t| {
                format!(
                    "Q{},K{}V{} (from dev{})",
                    slices[t.q_owner].unwrap() + 1,
                    t.kv_chunk + 1,
                    t.kv_chunk + 1,
                    t.q_owner + 1
                )
            })
            .collect();
        rows.push(vec![
            format!("Device {}", dev + 1),
            own.join(" "),
            remote.join(" "),
            format!("{}", plan.load[dev]),
        ]);
    }
    print_table(&["", "local tasks", "received tasks", "pairs"], &rows);
    println!(
        "\nbalance: max/min load = {:.3} (spread {} pairs ≤ one KV slice = {} pairs)",
        plan.balance_ratio(),
        plan.spread(),
        (l as u128) * (l as u128)
    );
    println!("exchanged this round: {} slice-tensor units", plan.comm_slice_units());
}
