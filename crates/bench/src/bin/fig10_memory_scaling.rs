//! Figure 10: per-device memory vs pipeline size for Llama 13B at 32/64/96K
//! context, t = 8, maximum interleaving (v = L/p) — first and last device
//! measurements against the theoretical `M_t/p` curves.

use slimpipe_bench::{print_table, scheme_env};
use slimpipe_core::theory::Scheme;
use slimpipe_model::{Checkpoint, ModelConfig, GIB};
use slimpipe_parallel::config::{ParallelConfig, SchemeKind};
use slimpipe_parallel::memory::device_total_bytes;

fn main() {
    let model = ModelConfig::llama_13b();
    let tp = 8usize;
    println!(
        "Figure 10 — memory reduced by the PP size ({}, t={tp}, v = L/p)\n",
        model.name
    );
    let contexts = [32u64 * 1024, 64 * 1024, 96 * 1024];
    // Theoretical no-PP totals M_t (states + activations at t=8 only).
    let mt: Vec<f64> = contexts
        .iter()
        .map(|&seq| {
            let states = model.total_params() * ModelConfig::state_bytes_per_param(1)
                / tp as f64;
            let act = model.microbatch_act_bytes(seq, tp, Checkpoint::Selective);
            let logits = model.logits_bytes(seq, tp);
            (states + act + logits) / GIB
        })
        .collect();
    println!(
        "theoretical M_t: {:.1} GiB (32K), {:.1} GiB (64K), {:.1} GiB (96K)",
        mt[0], mt[1], mt[2]
    );
    println!("(paper reports 53, 78, 103 GiB)\n");

    let mut rows = Vec::new();
    for p in [2usize, 4, 5, 8, 10] {
        if !model.layers.is_multiple_of(p) {
            continue;
        }
        let v = model.layers / p; // maximum interleaving stages
        let n = 4 * p;
        let mut row = vec![p.to_string(), v.to_string()];
        for (ci, &seq) in contexts.iter().enumerate() {
            let m = 4usize;
            let cfg = ParallelConfig {
                tp,
                cp: 1,
                ep: 1,
                dp: 1,
                pp: p,
                scheme: SchemeKind::SlimPipe { n, v },
                ckpt: Checkpoint::Selective,
                offload: 0.0,
            };
            let Ok(sched) = cfg.scheme.build(p, m) else {
                row.push("-".into());
                row.push("-".into());
                continue;
            };
            let env = scheme_env(&model, Scheme::SlimPipe, seq, tp, cfg.ckpt);
            let first = device_total_bytes(&model, &cfg, &sched, &env, 0) / GIB;
            let last = device_total_bytes(&model, &cfg, &sched, &env, p - 1) / GIB;
            row.push(format!("{first:.1}/{last:.1}"));
            row.push(format!("{:.1}", mt[ci] / p as f64));
        }
        rows.push(row);
    }
    print_table(
        &[
            "p", "v", "32K first/last", "Mt/p", "64K first/last", "Mt/p",
            "96K first/last", "Mt/p",
        ],
        &rows,
    );
    println!(
        "\nMeasured first/last-device memory tracks M_t/p: nearly all memory is \
         distributed by PP (the paper's §6.2 claim). The first device is \
         slightly above the last by 2(p-1)·M_a/(nvp)."
    );
}
