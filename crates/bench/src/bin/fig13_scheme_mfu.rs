//! Figure 13: MFU of the five PP schemes vs context length (Llama 13B,
//! batch 4, t = 8, full checkpointing, v = 5 for interleaved/SlimPipe,
//! n = 4 for SlimPipe), with OOM detection per Figure 14's budget.

use slimpipe_bench::{
    ctx_label, print_table, scheme_env, scheme_schedule_with_costs, zb_costs,
};
use slimpipe_core::theory::Scheme;
use slimpipe_model::{Checkpoint, ModelConfig};
use slimpipe_parallel::config::{ParallelConfig, SchemeKind};
use slimpipe_parallel::memory::worst_device_bytes;
use slimpipe_sim::cost::CostModel;
use slimpipe_sim::engine::simulate;

/// Figure 13's per-scheme knobs: "The number of stages per device is set
/// to 5 for both interleaved 1F1B and SlimPipe. The number of slices is
/// fixed to 4 for SlimPipe."
fn scheme_params(s: Scheme) -> (usize, usize, SchemeKind) {
    match s {
        Scheme::SlimPipe => (4, 5, SchemeKind::SlimPipe { n: 4, v: 5 }),
        Scheme::Interleaved => (1, 5, SchemeKind::Interleaved { v: 5 }),
        Scheme::ZbV => (1, 2, SchemeKind::ZbV),
        Scheme::VHalf => (1, 2, SchemeKind::VHalf),
        _ => (1, 1, SchemeKind::OneFOneB),
    }
}

fn main() {
    let model = ModelConfig::llama_13b();
    let (p, tp, m) = (4usize, 8usize, 4usize);
    let budget = slimpipe_cluster::GpuSpec::hopper_80gb().usable_bytes();
    println!(
        "Figure 13 — MFU across PP schemes ({}, p={p}, t={tp}, batch {m}, full ckpt)\n",
        model.name
    );
    let schemes = [
        Scheme::ZbV,
        Scheme::VHalf,
        Scheme::OneFOneB,
        Scheme::Interleaved,
        Scheme::SlimPipe,
    ];
    let contexts: Vec<u64> = [32u64, 64, 128, 256, 512].iter().map(|k| k * 1024).collect();
    let mut rows = Vec::new();
    for s in schemes {
        let (n, v, kind) = scheme_params(s);
        let mut row = vec![s.name().to_string()];
        for &seq in &contexts {
            let env = scheme_env(&model, s, seq, tp, Checkpoint::Full);
            let sched = match scheme_schedule_with_costs(s, p, m, n, v, zb_costs(&model, &env))
            {
                Ok(sc) => sc,
                Err(_) => {
                    row.push("n/a".into());
                    continue;
                }
            };
            let cfg = ParallelConfig {
                tp,
                cp: 1,
                ep: 1,
                dp: 1,
                pp: p,
                scheme: kind,
                ckpt: Checkpoint::Full,
                offload: 0.0,
            };
            let (peak, _) = worst_device_bytes(&model, &cfg, &sched, &env);
            if peak > budget {
                row.push("OOM".into());
                continue;
            }
            let r = simulate(&CostModel::new(&sched, &env));
            let flops = model.model_flops_per_iter(seq, m as u64);
            let mfu = slimpipe_sim::metrics::mfu(
                flops,
                r.makespan,
                tp * p,
                env.cluster.gpu.peak_flops,
            );
            row.push(format!("{:.1}", mfu * 100.0));
        }
        rows.push(row);
    }
    let headers: Vec<String> = std::iter::once("scheme".to_string())
        .chain(contexts.iter().map(|&s| format!("{} MFU%", ctx_label(s))))
        .collect();
    let h: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    print_table(&h, &rows);
    println!(
        "\nSlimPipe should lead at every context length; ZB-V/V-Half go OOM \
         early (their built-in checkpointing flaw, §6.6)."
    );
}
