//! Figure 11: MFU vs number of slices (p..8p) for Llama 13B at 128/256/512K
//! context — fine slicing first helps (bubbles shrink) then hurts
//! (arithmetic intensity and per-pass overheads).

use slimpipe_bench::{pipeline_mfu, print_table, scheme_env};
use slimpipe_core::theory::Scheme;
use slimpipe_model::{Checkpoint, ModelConfig};

fn main() {
    let model = ModelConfig::llama_13b();
    let (p, v, tp, m) = (4usize, 5usize, 8usize, 2usize);
    println!(
        "Figure 11 — MFU vs slice count ({}, p={p}, v={v}, t={tp}, m={m}, full ckpt)\n",
        model.name
    );
    let contexts = [131_072u64, 262_144, 524_288];
    let mut rows = Vec::new();
    let mut argmax = vec![(0usize, 0.0f64); contexts.len()];
    for mult in 1..=8usize {
        let n = mult * p;
        let mut row = vec![format!("{mult}p")];
        for (ci, &seq) in contexts.iter().enumerate() {
            let env = scheme_env(&model, Scheme::SlimPipe, seq, tp, Checkpoint::Full);
            let sched = slimpipe_core::interleaved::generate(p, v, m, n).unwrap();
            let mfu = pipeline_mfu(&model, &env, &sched, m as u64);
            if mfu > argmax[ci].1 {
                argmax[ci] = (n, mfu);
            }
            row.push(format!("{:.1}", mfu * 100.0));
        }
        rows.push(row);
    }
    print_table(&["n", "128K MFU%", "256K MFU%", "512K MFU%"], &rows);
    println!();
    for (ci, &seq) in contexts.iter().enumerate() {
        println!(
            "{}K: best n = {} ({:.1}% MFU)",
            seq / 1024,
            argmax[ci].0,
            argmax[ci].1 * 100.0
        );
    }
    println!(
        "\nThe transition point moves to larger n for longer contexts — slices \
         stay long enough to keep arithmetic intensity (§6.3)."
    );
}
