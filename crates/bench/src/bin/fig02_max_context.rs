//! Figure 2: maximum context length supported by each PP scheme for a
//! Llama model with 8-way TP and 8-way PP on 80 GiB devices (the paper's
//! bars: ZB-V 72K, V-Half 112K, default 1F1B 124K, interleaved 92K,
//! SlimPipe 600K). The figure caption says 7B, the body text says 13B —
//! we print both.

use slimpipe_bench::{bar, ctx_label, print_table, scheme_env, scheme_schedule};
use slimpipe_core::theory::Scheme;
use slimpipe_model::{Checkpoint, ModelConfig};
use slimpipe_parallel::config::{ParallelConfig, SchemeKind};
use slimpipe_parallel::memory::worst_device_bytes;

fn max_context(model: &ModelConfig, scheme: Scheme) -> u64 {
    let (p, tp, m) = (8usize, 8usize, 8usize);
    let budget = slimpipe_cluster::GpuSpec::hopper_80gb().usable_bytes();
    let mut best = 0u64;
    let mut seq = 8 * 1024u64;
    // No recomputing: Figure 2 measures what fits *before* resorting to
    // activation checkpointing ("Further context length expansion requires
    // either memory-computation trade-offs through activation recomputing or
    // sequence partitioning across nodes" — §1).
    while seq <= 8 * 1024 * 1024 {
        let (n, v) = match scheme {
            Scheme::SlimPipe => (4 * p, 2),
            Scheme::Interleaved => (1, 2),
            _ => (1, 1),
        };
        let Ok(sched) = scheme_schedule(scheme, p, m, n, v) else {
            seq += 8 * 1024;
            continue;
        };
        let env = scheme_env(model, scheme, seq, tp, Checkpoint::None);
        let cfg = ParallelConfig {
            tp,
            cp: 1,
            ep: 1,
            dp: 1,
            pp: p,
            scheme: match scheme {
                Scheme::SlimPipe => SchemeKind::SlimPipe { n, v },
                Scheme::Interleaved => SchemeKind::Interleaved { v },
                Scheme::ZbV => SchemeKind::ZbV,
                Scheme::VHalf => SchemeKind::VHalf,
                _ => SchemeKind::OneFOneB,
            },
            ckpt: Checkpoint::None,
            offload: 0.0,
        };
        let (peak, _) = worst_device_bytes(model, &cfg, &sched, &env);
        if peak <= budget {
            best = seq;
        } else {
            break;
        }
        seq += 8 * 1024;
    }
    best
}

fn main() {
    println!("Figure 2 — maximum supported context length (8-way TP, 8-way PP, no recompute)\n");
    for model in [ModelConfig::llama_7b(), ModelConfig::llama_13b()] {
        println!("{}:", model.name);
        let schemes = [
            Scheme::ZbV,
            Scheme::VHalf,
            Scheme::OneFOneB,
            Scheme::Interleaved,
            Scheme::SlimPipe,
        ];
        let results: Vec<(Scheme, u64)> =
            schemes.iter().map(|&s| (s, max_context(&model, s))).collect();
        let max = results.iter().map(|r| r.1).max().unwrap_or(1) as f64;
        let rows: Vec<Vec<String>> = results
            .iter()
            .map(|(s, c)| {
                vec![s.name().to_string(), ctx_label(*c), bar(*c as f64, max, 40)]
            })
            .collect();
        print_table(&["scheme", "max context", ""], &rows);
        let slim = results.last().unwrap().1 as f64;
        let best_other =
            results[..4].iter().map(|r| r.1).max().unwrap_or(1) as f64;
        println!("SlimPipe / best baseline = {:.1}x\n", slim / best_other);
    }
}
