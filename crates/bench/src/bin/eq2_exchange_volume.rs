//! Equation 2: context-exchange communication volume per microbatch per
//! device — closed form, measured planner volume, and the 2·L·M_h bound.

use slimpipe_bench::print_table;
use slimpipe_core::exchange::{measured_volume_per_device, theta_bound, theta_formula};

fn main() {
    println!("Eq. 2 — exchanged context per microbatch per device (units of L·M_h)\n");
    let mut rows = Vec::new();
    for p in [2usize, 4, 8, 16] {
        for mult in [1usize, 2, 4] {
            let n = p * mult;
            let formula = theta_formula(p, n);
            let bound = theta_bound(p, n);
            let measured = measured_volume_per_device(p, n, 4096);
            rows.push(vec![
                p.to_string(),
                n.to_string(),
                format!("{measured:.3}"),
                format!("{formula:.3}"),
                format!("{bound:.3}"),
                (measured <= bound && formula <= bound).to_string(),
            ]);
        }
    }
    print_table(
        &["p", "n", "planner (wire)", "Eq.2 formula", "bound 2-(p-1)/n", "≤ bound"],
        &rows,
    );
    println!(
        "\nThe volume stays ≤ 2·L·M_h — 'virtually independent from the PP size \
         and number of slices' (§4.2.3)."
    );
}
