//! Ablations for the design choices DESIGN.md §5 calls out: each row turns
//! one SlimPipe mechanism off (or swaps the alternative in) and reports the
//! cost, using the simulator for scale effects and closed forms/walks for
//! memory.

use slimpipe_bench::{print_table, scheme_env};
use slimpipe_core::memory::measured_act_rel;
use slimpipe_core::slicing::Slicing;
use slimpipe_core::theory::Scheme;
use slimpipe_model::{Checkpoint, ModelConfig};
use slimpipe_sched::zbv::{generate_vhalf, generate_vmin, generate_zbv, ZbCosts};
use slimpipe_sim::cost::CostModel;
use slimpipe_sim::engine::simulate;

fn main() {
    let model = ModelConfig::llama_13b();
    let (p, m, n, seq, tp) = (4usize, 4usize, 16usize, 262_144u64, 8usize);
    let sched = slimpipe_core::schedule::generate(p, m, n).unwrap();

    println!("Ablation study — {} at {}K, p={p}, m={m}, n={n}, t={tp}\n", model.name, seq / 1024);

    // --- 1. Context exchange and early KV exchange -----------------------
    let mut rows = Vec::new();
    let mut run = |label: &str, exchange: bool, early: bool, vp: bool| {
        let mut env = scheme_env(&model, Scheme::SlimPipe, seq, tp, Checkpoint::Full);
        env.exchange = exchange;
        env.early_kv = early;
        env.vocab_parallel = vp;
        let r = simulate(&CostModel::new(&sched, &env));
        rows.push(vec![
            label.to_string(),
            format!("{:.4}", r.bubble_fraction),
            format!("{:.1}", r.makespan * 1e3),
        ]);
    };
    run("full SlimPipe", true, true, true);
    run("- context exchange", false, true, true);
    run("- early KV exchange", true, false, true);
    run("- vocabulary parallelism", true, true, false);
    println!("Mechanism ablations (simulated):");
    print_table(&["configuration", "bubble", "makespan ms"], &rows);

    // --- 2. Uniform vs pair-balanced slicing ------------------------------
    println!("\nSlicing policy (§4.1.1):");
    let uniform = Slicing::uniform(seq, n);
    let balanced = Slicing::pair_balanced(seq, n);
    let longest = |s: &Slicing| (0..s.n()).map(|i| s.len(i)).max().unwrap();
    let rows = vec![
        vec![
            "uniform".into(),
            format!("{:.1}", uniform.imbalance()),
            format!("{}", longest(&uniform)),
            "fixed (CP-composable, stable memory)".into(),
        ],
        vec![
            "pair-balanced".into(),
            format!("{:.2}", balanced.imbalance()),
            format!("{}", longest(&balanced)),
            "first slice dominates accumulation".into(),
        ],
    ];
    print_table(
        &["policy", "compute imbalance", "longest slice (tokens)", "memory behaviour"],
        &rows,
    );
    println!(
        "Uniform slicing leaves a {:.0}:1 compute imbalance — which context \
         exchange erases — in exchange for bounded accumulation; pair-balanced \
         slicing fixes compute but its first slice is {:.1}x the uniform length.",
        uniform.imbalance(),
        longest(&balanced) as f64 / (seq as f64 / n as f64)
    );

    // --- 3. The ZB V-family memory ladder ---------------------------------
    println!("\nZB V-family memory ladder (schedule-walk units of M_a, p={p}, m=8):");
    let rows: Vec<Vec<String>> = [
        ("ZB-V (1x of 1F1B)", generate_zbv(p, 8, ZbCosts::default())),
        ("V-Half (1/2)", generate_vhalf(p, 8, ZbCosts::default())),
        ("V-Min (1/3)", generate_vmin(p, 8, ZbCosts::default())),
    ]
    .into_iter()
    .map(|(name, s)| {
        let s = s.unwrap();
        vec![name.to_string(), format!("{:.3}", measured_act_rel(&s))]
    })
    .collect();
    print_table(&["scheme", "activation (M_a)"], &rows);
    println!(
        "\nSlimPipe at the same point: {:.3} M_a — below V-Min, with near-zero \
         bubbles instead of growing ones.",
        measured_act_rel(&sched)
    );
}
