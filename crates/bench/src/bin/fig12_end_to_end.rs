//! Figure 12: end-to-end MFU of DeepSpeed, Megatron-LM, and SlimPipe across
//! four models, four context lengths, and three GPU counts — each system's
//! configuration baked by grid search, with OOM (✗) and no-configuration
//! (△) markers and SlimPipe-over-Megatron speedup annotations.
//!
//! This is the paper's headline experiment; expect a few minutes in
//! release mode. Pass a model-name substring to run one panel, e.g.
//! `-- 8x7B`.

use slimpipe_bench::{ctx_label, print_table};
use slimpipe_cluster::Cluster;
use slimpipe_model::ModelConfig;
use slimpipe_parallel::search::{best_config, SearchOptions, SearchOutcome};
use slimpipe_parallel::SystemKind;

fn cell(outcome: &SearchOutcome) -> String {
    match outcome {
        SearchOutcome::Found(e) => format!("{:.1}", e.mfu * 100.0),
        SearchOutcome::Oom => "OOM✗".into(),
        SearchOutcome::NoConfig => "NoCfg△".into(),
    }
}

fn main() {
    let filter = std::env::args().nth(1).unwrap_or_default();
    let cluster = Cluster::hopper_nvlink();
    let tokens = 4u64 << 20; // fixed 4M tokens per iteration (§6.4)
    let opts = SearchOptions::default();
    let contexts: Vec<u64> = [64u64, 128, 256, 512].iter().map(|k| k * 1024).collect();

    println!("Figure 12 — end-to-end MFU%, 4M tokens/iter, grid-searched configs\n");
    for model in ModelConfig::evaluation_zoo() {
        if !model.name.contains(&filter) {
            continue;
        }
        for gpus in [128usize, 256, 512] {
            println!("── {} on {} GPUs ──", model.name, gpus);
            let mut rows = Vec::new();
            let mut slim_best: Vec<Option<f64>> = Vec::new();
            let mut mega_best: Vec<Option<f64>> = Vec::new();
            for sys in [SystemKind::DeepSpeed, SystemKind::MegatronLM, SystemKind::SlimPipe] {
                let mut row = vec![sys.name().to_string()];
                for &seq in &contexts {
                    let out = best_config(&model, sys, gpus, seq, tokens, &cluster, &opts);
                    if sys == SystemKind::SlimPipe {
                        slim_best.push(out.mfu());
                    }
                    if sys == SystemKind::MegatronLM {
                        mega_best.push(out.mfu());
                    }
                    let mut c = cell(&out);
                    if let SearchOutcome::Found(e) = &out {
                        c.push_str(&format!(" [{}]", e.cfg.describe()));
                    }
                    row.push(c);
                }
                rows.push(row);
            }
            let headers: Vec<String> = std::iter::once("system".to_string())
                .chain(contexts.iter().map(|&s| ctx_label(s)))
                .collect();
            let h: Vec<&str> = headers.iter().map(|x| x.as_str()).collect();
            print_table(&h, &rows);
            // Speedup annotations (the numbers above the paper's bars).
            let speedups: Vec<String> = contexts
                .iter()
                .enumerate()
                .map(|(i, &seq)| match (slim_best.get(i), mega_best.get(i)) {
                    (Some(Some(s)), Some(Some(m))) => {
                        format!("{}: {:.2}x", ctx_label(seq), s / m)
                    }
                    (Some(Some(_)), _) => format!("{}: vs OOM/NoCfg", ctx_label(seq)),
                    _ => format!("{}: -", ctx_label(seq)),
                })
                .collect();
            println!("SlimPipe / Megatron-LM: {}\n", speedups.join("  "));
        }
    }
}
