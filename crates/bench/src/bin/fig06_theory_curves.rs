//! Figure 6: (a) activation memory vs slice count for p ∈ {4, 8, 16};
//! (b) bubble fraction vs slice count for m ∈ {2, 4, 8} at p = 4.

use slimpipe_bench::print_table;
use slimpipe_core::theory::{fig6a_curve, fig6b_curve};

fn main() {
    println!("Figure 6a — activation memory (units of M_a) vs number of slices\n");
    let ps = [4usize, 8, 16];
    let mut rows = Vec::new();
    for mult in 0..=6 {
        let mut row = vec![if mult == 0 {
            "1F1B".to_string()
        } else {
            format!("{mult}p")
        }];
        for &p in &ps {
            let n = mult * p;
            row.push(format!("{:.4}", fig6a_curve(p, n)));
        }
        rows.push(row);
    }
    print_table(&["n", "p=4", "p=8", "p=16"], &rows);

    println!("\nFigure 6b — bubble fraction vs number of slices (p = 4)\n");
    let ms = [2usize, 4, 8];
    let p = 4;
    let mut rows = Vec::new();
    for mult in 0..=6 {
        let mut row = vec![if mult == 0 {
            "1F1B".to_string()
        } else {
            format!("{mult}p")
        }];
        for &m in &ms {
            row.push(format!("{:.4}", fig6b_curve(p, m, mult * p)));
        }
        rows.push(row);
    }
    print_table(&["n", "m=2", "m=4", "m=8"], &rows);
    println!("\nBoth decrease monotonically toward 1/p and 0 respectively.");
}
