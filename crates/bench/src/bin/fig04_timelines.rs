//! Figures 4/5/7/9: schedule timelines — the default 1F1B vs SlimPipe op
//! streams (Fig. 4), the interleaved form (Fig. 5), imbalance bubbles with
//! exchange disabled (Fig. 7), and the output-layer bubble with and
//! without vocabulary parallelism (Fig. 9).

use slimpipe_bench::{scheme_env, scheme_schedule};
use slimpipe_core::theory::Scheme;
use slimpipe_model::{Checkpoint, ModelConfig};
use slimpipe_sim::cost::CostModel;
use slimpipe_sim::engine::simulate;

fn main() {
    let model = ModelConfig::llama_13b();
    let (p, m, n) = (4usize, 3usize, 8usize);

    println!("=== Figure 4 (top): default 1F1B, p={p}, m={m} ===");
    let ofob = slimpipe_sched::onefoneb::generate(p, m).unwrap();
    for d in 0..p {
        println!("dev{}: {}", d + 1, ofob.render_device(d));
    }

    println!("\n=== Figure 4 (bottom): SlimPipe, p={p}, m={m}, n={n} ===");
    let slim = slimpipe_core::schedule::generate(p, m, n).unwrap();
    for d in 0..p {
        println!("dev{}: {}", d + 1, slim.render_device(d));
    }

    println!("\n=== Figure 5: SlimPipe interleaved, p=4, v=2, m=2, n=8 ===");
    let inter = slimpipe_core::interleaved::generate(4, 2, 2, 8).unwrap();
    for d in 0..4 {
        println!("dev{}: {}", d + 1, inter.render_device(d));
    }

    // Figure 7: imbalance bubbles without context exchange.
    println!("\n=== Figure 7: imbalance bubbles (context exchange off vs on) ===");
    let seq = 262_144;
    let mut env = scheme_env(&model, Scheme::SlimPipe, seq, 8, Checkpoint::Full);
    let sched = scheme_schedule(Scheme::SlimPipe, p, m, n, 1).unwrap();
    env.exchange = false;
    let off = simulate(&CostModel::new(&sched, &env));
    env.exchange = true;
    let on = simulate(&CostModel::new(&sched, &env));
    println!(
        "bubble fraction without exchange: {:.4}; with exchange: {:.4}",
        off.bubble_fraction, on.bubble_fraction
    );

    // Figure 9: output-layer GEMM on the last device vs distributed.
    println!("\n=== Figure 9: output-layer placement ===");
    let mut env = scheme_env(&model, Scheme::SlimPipe, 65_536, 8, Checkpoint::None);
    env.vocab_parallel = false;
    let classic = simulate(&CostModel::new(&sched, &env));
    env.vocab_parallel = true;
    let vp = simulate(&CostModel::new(&sched, &env));
    println!(
        "bubble fraction with GEMM on last device: {:.4}; distributed: {:.4}",
        classic.bubble_fraction, vp.bubble_fraction
    );
    println!(
        "makespan {:.1} ms -> {:.1} ms",
        classic.makespan * 1e3,
        vp.makespan * 1e3
    );
}
