//! Table 2: activation memory and bubble fraction of every pipeline
//! scheme — the closed forms, cross-checked against exact schedule walks.

use slimpipe_bench::{print_table, scheme_schedule};
use slimpipe_core::memory::measured_act_rel;
use slimpipe_core::theory::{
    act_memory_rel, bubble_fraction_ideal, bubble_fraction_worst, Scheme,
};

fn main() {
    let (p, m, n, v) = (8usize, 8usize, 32usize, 2usize);
    println!("Table 2 — scheme comparison at p={p}, m={m}, n={n}, v={v}");
    println!("(activation memory in units of M_a; walk = exact schedule measurement)\n");
    let mut rows = Vec::new();
    for s in Scheme::table2() {
        let (sn, sv) = match s {
            Scheme::SlimPipe => (n, v),
            Scheme::TeraPipe => (n, 1),
            Scheme::Interleaved => (1, v),
            _ => (1, 1),
        };
        let theory = act_memory_rel(s, p, m, sn, sv);
        let walk = scheme_schedule(s, p, m, sn, sv)
            .map(|sched| format!("{:.4}", measured_act_rel(&sched)))
            .unwrap_or_else(|_| "-".into());
        let b_lo = bubble_fraction_ideal(s, p, m, sn, sv);
        let b_hi = bubble_fraction_worst(s, p, m, sn, sv);
        let bubble = if (b_hi - b_lo).abs() < 1e-12 {
            format!("{b_lo:.4}")
        } else {
            format!("[{b_lo:.4}, {b_hi:.4}]")
        };
        rows.push(vec![
            s.name().into(),
            format!("{theory:.4}"),
            walk,
            bubble,
        ]);
    }
    print_table(&["scheme", "act (formula)", "act (walk)", "bubble fraction"], &rows);
    println!(
        "\nSlimPipe: activation 1/p + 2(p-1)/(nvp) = {:.4}, bubble < (p-1)/(nvm) = {:.4}",
        act_memory_rel(Scheme::SlimPipe, p, m, n, v),
        bubble_fraction_ideal(Scheme::SlimPipe, p, m, n, v),
    );
}
