//! Figure 1: GPU memory footprint of Classic PP vs SlimPipe across
//! pipeline sizes — model states shrink with `p` for both, but only
//! SlimPipe's activations do.

use slimpipe_bench::{bar, print_table};
use slimpipe_core::theory::{act_memory_rel, Scheme};
use slimpipe_model::{Checkpoint, ModelConfig, GIB};

fn main() {
    let model = ModelConfig::llama_13b();
    let (seq, tp, m) = (131_072u64, 8usize, 16usize);
    let ma = model.microbatch_act_bytes(seq, tp, Checkpoint::None) / GIB;
    let state_total =
        model.total_params() * ModelConfig::state_bytes_per_param(1) / tp as f64 / GIB;

    println!("Figure 1 — memory footprint vs pipeline size");
    println!("model: {}, context {}K, t={tp}, m={m}\n", model.name, seq / 1024);
    let mut rows = Vec::new();
    let mut max_total = 0.0f64;
    let mut cells = Vec::new();
    for p in [1usize, 2, 4, 8, 16] {
        let states = state_total / p as f64;
        let n = 4 * p;
        let classic_act = ma * act_memory_rel(Scheme::OneFOneB, p, m, 1, 1);
        let slim_act = ma * act_memory_rel(Scheme::SlimPipe, p, m, n, 1);
        max_total = max_total.max(states + classic_act);
        cells.push((p, states, classic_act, slim_act));
    }
    for (p, states, classic_act, slim_act) in cells {
        rows.push(vec![
            p.to_string(),
            format!("{states:.1}"),
            format!("{classic_act:.1}"),
            format!("{slim_act:.2}"),
            bar(states + classic_act, max_total, 30),
            bar(states + slim_act, max_total, 30),
        ]);
    }
    print_table(
        &["p", "states GiB", "act classic GiB", "act SlimPipe GiB", "classic", "slimpipe"],
        &rows,
    );
    println!(
        "\nClassic PP activation memory is constant in p; SlimPipe's decreases \
         proportionally (n = 4p per column)."
    );
}
