//! Figure 3: theoretical bubble fractions of the PP schemes (p = 8,
//! m = 4, 256K context, Llama 13B) — computed by simulating each
//! schedule with the shared cost model, which is exactly how the
//! "theoretical" bars arise (pass costs from the FLOPs model, no noise).
//!
//! Interleaved 1F1B cannot build a schedule with m < p (its hard
//! constraint), so its bar falls back to Table 2's closed form — the same
//! thing the paper's "theoretical" figure does.

use slimpipe_bench::{bar, print_table, scheme_env, scheme_schedule_with_costs, zb_costs};
use slimpipe_core::theory::{bubble_fraction_ideal, Scheme};
use slimpipe_model::{Checkpoint, ModelConfig};
use slimpipe_sim::cost::CostModel;
use slimpipe_sim::engine::simulate;

fn main() {
    let model = ModelConfig::llama_13b();
    let (p, m, seq, tp) = (8usize, 4usize, 262_144u64, 8usize);
    println!(
        "Figure 3 — theoretical bubble fractions ({}, p={p}, m={m}, {}K context)\n",
        model.name,
        seq / 1024
    );
    let schemes = [
        Scheme::ZbV,
        Scheme::VHalf,
        Scheme::OneFOneB,
        Scheme::Interleaved,
        Scheme::SlimPipe,
    ];
    let mut values: Vec<(Scheme, f64, &str)> = Vec::new();
    for s in schemes {
        let (n, v) = match s {
            Scheme::SlimPipe => (4 * p, 2),
            Scheme::Interleaved => (1, 5),
            _ => (1, 1),
        };
        let env = scheme_env(&model, s, seq, tp, Checkpoint::Full);
        match scheme_schedule_with_costs(s, p, m, n, v, zb_costs(&model, &env)) {
            Ok(sched) => {
                let r = simulate(&CostModel::new(&sched, &env));
                values.push((s, r.bubble_fraction, "simulated"));
            }
            Err(_) => {
                values.push((s, bubble_fraction_ideal(s, p, m, n, v), "closed form*"));
            }
        }
    }
    let max = values.iter().map(|v| v.1).fold(0.0, f64::max);
    let rows: Vec<Vec<String>> = values
        .iter()
        .map(|(s, b, how)| {
            vec![s.name().into(), format!("{b:.3}"), how.to_string(), bar(*b, max, 40)]
        })
        .collect();
    print_table(&["scheme", "bubble fraction", "source", ""], &rows);
    println!("\n* interleaved cannot schedule m=4 < p=8; Table 2 formula used.");
    let slim = values.iter().find(|v| v.0 == Scheme::SlimPipe).unwrap();
    let worst = values.iter().max_by(|a, b| a.1.total_cmp(&b.1)).unwrap();
    println!(
        "SlimPipe bubble {:.3} vs worst {} {:.3} ({:.0}x lower)",
        slim.1,
        worst.0.name(),
        worst.1,
        worst.1 / slim.1.max(1e-9)
    );
}
