//! Figure 14: GPU memory usage of the five PP schemes vs context length —
//! the companion bars to Figure 13 (paper values: at 128K, ZB-V OOM,
//! V-Half 48.4, 1F1B 23.5, interleaved 30.9, SlimPipe 17.1 GiB).

use slimpipe_bench::{ctx_label, print_table, scheme_env, scheme_schedule};
use slimpipe_core::theory::Scheme;
use slimpipe_model::{Checkpoint, ModelConfig, GIB};
use slimpipe_parallel::config::{ParallelConfig, SchemeKind};
use slimpipe_parallel::memory::worst_device_bytes;

fn main() {
    let model = ModelConfig::llama_13b();
    let (p, tp, m) = (4usize, 8usize, 4usize);
    let budget = slimpipe_cluster::GpuSpec::hopper_80gb().usable_bytes();
    println!(
        "Figure 14 — worst-device memory across PP schemes ({}, p={p}, t={tp}, \
         batch {m}, full ckpt), GiB\n",
        model.name
    );
    let schemes = [
        (Scheme::ZbV, 1usize, 2usize, SchemeKind::ZbV),
        (Scheme::VHalf, 1, 2, SchemeKind::VHalf),
        (Scheme::OneFOneB, 1, 1, SchemeKind::OneFOneB),
        (Scheme::Interleaved, 1, 5, SchemeKind::Interleaved { v: 5 }),
        (Scheme::SlimPipe, 4, 5, SchemeKind::SlimPipe { n: 4, v: 5 }),
    ];
    let contexts: Vec<u64> = [32u64, 64, 128, 256, 512].iter().map(|k| k * 1024).collect();
    let mut rows = Vec::new();
    for (s, n, v, kind) in schemes {
        let mut row = vec![s.name().to_string()];
        for &seq in &contexts {
            let env = scheme_env(&model, s, seq, tp, Checkpoint::Full);
            let Ok(sched) = scheme_schedule(s, p, m, n, v) else {
                row.push("n/a".into());
                continue;
            };
            let cfg = ParallelConfig {
                tp,
                cp: 1,
                ep: 1,
                dp: 1,
                pp: p,
                scheme: kind,
                ckpt: Checkpoint::Full,
                offload: 0.0,
            };
            let (peak, _) = worst_device_bytes(&model, &cfg, &sched, &env);
            if peak > budget {
                row.push(format!("OOM ({:.0})", peak / GIB));
            } else {
                row.push(format!("{:.1}", peak / GIB));
            }
        }
        rows.push(row);
    }
    let headers: Vec<String> = std::iter::once("scheme".to_string())
        .chain(contexts.iter().map(|&s| ctx_label(s)))
        .collect();
    let h: Vec<&str> = headers.iter().map(|x| x.as_str()).collect();
    print_table(&h, &rows);
    println!(
        "\nSlimPipe uses the least memory at every context; the V-shaped \
         schemes hit OOM earliest (§6.6)."
    );
}
