//! Table 4: ultra-long-context training with activation offload — the
//! paper's four flagship runs (Llama 70B @2048K, Llama 149B @1024K,
//! Mixtral 8x7B @4096K, Mixtral 8x22B @2048K) on ≤256 GPUs at 16M
//! tokens/iter, selective checkpointing, adaptive offload ratio.
//!
//! We evaluate the paper's exact configurations and also let the search
//! pick its own offload level.

use slimpipe_bench::print_table;
use slimpipe_cluster::Cluster;
use slimpipe_model::{Checkpoint, ModelConfig};
use slimpipe_parallel::config::{ParallelConfig, SchemeKind};
use slimpipe_parallel::estimate::estimate;
use slimpipe_parallel::search::{best_config, SearchOptions, SearchOutcome};
use slimpipe_parallel::SystemKind;

struct Row {
    model: ModelConfig,
    context_k: u64,
    cfg: ParallelConfig,
    paper_mfu: f64,
}

fn main() {
    let cluster = Cluster::hopper_nvlink();
    let tokens = 16u64 << 20; // 16M tokens per iteration
    // The paper's Table 4 configurations, verbatim.
    let rows_in = vec![
        Row {
            model: ModelConfig::llama_70b(),
            context_k: 2048,
            cfg: ParallelConfig {
                tp: 4,
                cp: 4,
                ep: 1,
                dp: 1,
                pp: 16,
                scheme: SchemeKind::SlimPipe { n: 64, v: 1 },
                ckpt: Checkpoint::Selective,
                offload: 0.75,
            },
            paper_mfu: 0.45,
        },
        Row {
            model: ModelConfig::llama_149b(),
            context_k: 1024,
            cfg: ParallelConfig {
                tp: 4,
                cp: 2,
                ep: 1,
                dp: 1,
                pp: 32,
                scheme: SchemeKind::SlimPipe { n: 64, v: 1 },
                ckpt: Checkpoint::Selective,
                offload: 0.80,
            },
            paper_mfu: 0.437,
        },
        Row {
            model: ModelConfig::mixtral_8x7b(),
            context_k: 4096,
            cfg: ParallelConfig {
                tp: 1,
                cp: 16,
                ep: 8,
                dp: 1,
                pp: 16,
                scheme: SchemeKind::SlimPipe { n: 64, v: 1 },
                ckpt: Checkpoint::Selective,
                offload: 0.95,
            },
            paper_mfu: 0.40,
        },
        Row {
            model: ModelConfig::mixtral_8x22b(),
            context_k: 2048,
            cfg: ParallelConfig {
                tp: 1,
                cp: 8,
                ep: 8,
                dp: 1,
                pp: 28,
                scheme: SchemeKind::SlimPipe { n: 112, v: 1 },
                ckpt: Checkpoint::Selective,
                offload: 1.0,
            },
            paper_mfu: 0.42,
        },
    ];

    println!("Table 4 — ultra-long-context training (16M tokens/iter, ≤256 GPUs)\n");
    let mut out = Vec::new();
    for r in &rows_in {
        let seq = r.context_k * 1024;
        let got = estimate(&r.model, &r.cfg, &cluster, seq, tokens);
        let (mfu, peak, note) = match &got {
            Ok(e) => (
                format!("{:.1}", e.mfu * 100.0),
                format!("{:.0} GiB", e.peak_gib),
                String::new(),
            ),
            Err(e) => ("-".into(), "-".into(), format!("{e}")),
        };
        out.push(vec![
            r.model.name.to_string(),
            format!("{}K", r.context_k),
            r.cfg.describe(),
            format!("{}", r.cfg.gpus()),
            mfu,
            format!("{:.1}", r.paper_mfu * 100.0),
            peak,
            note,
        ]);
    }
    print_table(
        &["model", "context", "config", "GPUs", "MFU% (ours)", "MFU% (paper)", "peak", "note"],
        &out,
    );

    // Adaptive offload: let the search pick the ratio, like §6.5's
    // "the offloading ratio is adaptive".
    println!("\nSearch-selected configs with adaptive offload (Llama 70B @2048K):");
    let opts = SearchOptions {
        offload_levels: vec![0.0, 0.25, 0.5, 0.75, 0.9, 1.0],
        ckpt_modes: vec![Checkpoint::Selective],
    };
    match best_config(
        &ModelConfig::llama_70b(),
        SystemKind::SlimPipe,
        256,
        2048 * 1024,
        tokens,
        &cluster,
        &opts,
    ) {
        SearchOutcome::Found(e) => println!(
            "  best: {} -> {:.1}% MFU ({:.0} GiB peak)",
            e.cfg.describe(),
            e.mfu * 100.0,
            e.peak_gib
        ),
        other => println!("  {:?}", other.mfu()),
    }
}
