//! Shared harness for the experiment binaries that regenerate every table
//! and figure of the paper (see DESIGN.md §3 for the index).
//!
//! Each binary prints the same rows/series the paper reports; EXPERIMENTS.md
//! records paper-reported vs. measured values. Run any of them with
//! `cargo run --release -p slimpipe-bench --bin <id>`.

use slimpipe_cluster::{Cluster, Efficiency};
use slimpipe_core::theory::Scheme;
use slimpipe_model::{Checkpoint, ModelConfig};
use slimpipe_sched::{Schedule, ScheduleError};
use slimpipe_sim::cost::PipelineEnv;

/// Fixed-width text table printer.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let mut out = String::new();
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!("{:>w$}  ", c, w = widths[i]));
        }
        println!("{}", out.trim_end());
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// ASCII bar for quick visual comparison in terminal output.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round().max(0.0) as usize;
    "█".repeat(n.min(width))
}

/// Human-readable context length ("64K", "2048K").
pub fn ctx_label(seq: u64) -> String {
    format!("{}K", seq / 1024)
}

/// Build the schedule for one of the Figure 13/14 schemes.
pub fn scheme_schedule(
    scheme: Scheme,
    p: usize,
    m: usize,
    n: usize,
    v: usize,
) -> Result<Schedule, ScheduleError> {
    scheme_schedule_with_costs(scheme, p, m, n, v, slimpipe_sched::zbv::ZbCosts::default())
}

/// Like [`scheme_schedule`], but lets the ZB greedy scheduler see realistic
/// `(T_f, T_b, T_w)` ratios (it synthesises its static order from them,
/// exactly as the original ZB artifact does).
pub fn scheme_schedule_with_costs(
    scheme: Scheme,
    p: usize,
    m: usize,
    n: usize,
    v: usize,
    zb: slimpipe_sched::zbv::ZbCosts,
) -> Result<Schedule, ScheduleError> {
    match scheme {
        Scheme::GPipe => slimpipe_sched::gpipe::generate(p, m),
        Scheme::TeraPipe => slimpipe_sched::terapipe::generate(p, m, n),
        Scheme::OneFOneB => slimpipe_sched::onefoneb::generate(p, m),
        Scheme::Interleaved => slimpipe_sched::interleaved::generate(p, v, m),
        Scheme::ZbV => slimpipe_sched::zbv::generate_zbv(p, m, zb),
        Scheme::VHalf => slimpipe_sched::zbv::generate_vhalf(p, m, zb),
        Scheme::SlimPipe => slimpipe_core::interleaved::generate(p, v, m, n),
    }
}

/// Estimated `(T_f, T_b, T_w)` ratios at an operating point — what a ZB
/// scheduler would measure before synthesising its order.
pub fn zb_costs(model: &ModelConfig, env: &PipelineEnv) -> slimpipe_sched::zbv::ZbCosts {
    use slimpipe_cluster::{OpClass, Phase};
    use slimpipe_model::causal_pairs;
    let lf = model.layer_fwd_flops(env.seq, causal_pairs(0, env.seq));
    let peak = env.cluster.gpu.peak_flops;
    let mean_kv = causal_pairs(0, env.seq) as f64 / env.seq as f64;
    let tokens = env.seq as f64;
    let e = &env.eff;
    let tf = e.op_time(OpClass::Gemm, Phase::Forward, lf.gemm, tokens, peak)
        + e.op_time(OpClass::Attention, Phase::Forward, lf.attn, mean_kv, peak);
    let tb = e.op_time(OpClass::Gemm, Phase::Backward, lf.gemm, tokens, peak)
        + e.op_time(OpClass::Attention, Phase::Backward, 2.0 * lf.attn, mean_kv, peak);
    let tw = e.op_time(OpClass::Gemm, Phase::Backward, lf.gemm, tokens, peak);
    slimpipe_sched::zbv::ZbCosts { tf, tb, tw }
}

/// Environment for a scheme at a Figure 13/14-style operating point.
pub fn scheme_env(
    model: &ModelConfig,
    scheme: Scheme,
    seq: u64,
    tp: usize,
    ckpt: Checkpoint,
) -> PipelineEnv {
    let slim = scheme == Scheme::SlimPipe;
    PipelineEnv {
        model: model.clone(),
        cluster: Cluster::hopper_nvlink(),
        eff: Efficiency::hopper(),
        tp,
        cp: 1,
        ep: 1,
        seq,
        mb_seqs: None,
        slicing: slimpipe_core::SlicePolicy::Uniform,
        ckpt,
        exchange: slim,
        early_kv: true,
        vocab_parallel: slim,
        comm_overlap: 0.5,
        pipeline_overlap: 0.0,
    }
}

/// MFU of one simulated pipeline iteration (TP×PP GPUs, DP = 1).
pub fn pipeline_mfu(
    model: &ModelConfig,
    env: &PipelineEnv,
    sched: &Schedule,
    seqs_per_iter: u64,
) -> f64 {
    let cm = slimpipe_sim::cost::CostModel::new(sched, env);
    let report = slimpipe_sim::engine::simulate(&cm);
    let flops = model.model_flops_per_iter(env.seq, seqs_per_iter);
    let gpus = env.tp * env.cp * env.ep * sched.devices;
    slimpipe_sim::metrics::mfu(flops, report.makespan, gpus, env.cluster.gpu.peak_flops)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_scales() {
        assert_eq!(bar(5.0, 10.0, 10).chars().count(), 5);
        assert_eq!(bar(0.0, 10.0, 10), "");
    }

    #[test]
    fn ctx_labels() {
        assert_eq!(ctx_label(65_536), "64K");
        assert_eq!(ctx_label(2 << 20), "2048K");
    }

    #[test]
    fn all_schemes_build() {
        for s in Scheme::table2() {
            let sched = scheme_schedule(s, 4, 4, 8, 2).unwrap();
            slimpipe_sched::validate(&sched).unwrap();
        }
    }
}
