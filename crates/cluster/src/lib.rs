//! Hardware model of the paper's evaluation cluster (§6.1):
//!
//! * nodes with 8 NVIDIA Hopper 80 GB GPUs, NVLink-interconnected at
//!   400 GB/s per GPU,
//! * one 400 Gbps NIC per GPU for inter-node communication,
//! * bf16 peak of 989 TFLOP/s per GPU.
//!
//! On top of the raw topology this crate provides the two ingredients the
//! discrete-event simulator needs to turn FLOPs and bytes into seconds:
//! kernel *efficiency curves* (arithmetic-intensity saturation, the
//! forward/backward MFU disparity the paper calls out for ZB-V, and
//! per-kernel launch overhead) and *collective cost models* (α–β ring
//! estimates for the NCCL collectives Megatron/DeepSpeed issue).

pub mod collectives;
pub mod efficiency;
pub mod gpu;
pub mod link;
pub mod topology;

pub use efficiency::{Efficiency, OpClass, Phase};
pub use gpu::GpuSpec;
pub use link::Link;
pub use topology::Cluster;
