//! Per-GPU hardware specification.

/// One accelerator. Defaults model the paper's "NVIDIA Hopper 80GB" parts.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GpuSpec {
    /// Dense bf16 peak, FLOP/s.
    pub peak_flops: f64,
    /// Device memory, bytes.
    pub mem_bytes: f64,
    /// Host link (PCIe) bandwidth for activation offload, bytes/s each way.
    pub pcie_bw: f64,
    /// Memory the framework itself occupies (CUDA context, NCCL buffers,
    /// fragmentation headroom) — unusable for states/activations.
    pub reserved_bytes: f64,
}

impl GpuSpec {
    /// NVIDIA Hopper 80 GB (H100 SXM class): 989 TFLOP/s dense bf16.
    pub fn hopper_80gb() -> Self {
        Self {
            peak_flops: 989e12,
            mem_bytes: 80.0 * 1024.0 * 1024.0 * 1024.0,
            pcie_bw: 50e9,
            reserved_bytes: 4.0 * 1024.0 * 1024.0 * 1024.0,
        }
    }

    /// Memory actually available to model states + activations.
    pub fn usable_bytes(&self) -> f64 {
        self.mem_bytes - self.reserved_bytes
    }
}

impl Default for GpuSpec {
    fn default() -> Self {
        Self::hopper_80gb()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hopper_defaults_match_paper() {
        let g = GpuSpec::hopper_80gb();
        assert_eq!(g.peak_flops, 989e12);
        assert_eq!(g.mem_bytes, 80.0 * (1u64 << 30) as f64);
        assert!(g.usable_bytes() < g.mem_bytes);
    }
}
