//! Kernel efficiency curves: FLOPs → seconds.
//!
//! Three effects the paper leans on are modelled here:
//!
//! 1. **Arithmetic-intensity saturation** — "Slices are prevented from being
//!    too short to maintain sufficient arithmetic intensity" (§4.1.1) and
//!    Figure 11's MFU collapse at large slice counts. Efficiency follows a
//!    saturating curve `η(x) = η_max · x / (x + x_half)` in the number of
//!    tokens (GEMM) or mean attended length (attention).
//! 2. **Forward/backward MFU disparity** — §2.2: "When accounting for modern
//!    optimizations like Flash Attention and the inherent MFU disparity
//!    between forward/backward passes, the situation further deteriorates."
//! 3. **Kernel launch overhead** — a fixed per-kernel cost that penalises
//!    very fine-grained passes.
//!
//! The constants are calibrated so end-to-end simulated MFUs land in the
//! paper's reported 15–50 % band; see EXPERIMENTS.md for the comparison.

/// Operator class, for efficiency selection and ZB-V's B/W decomposition.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Dense projections (QKV/out/MLP/vocab) — weight-bearing GEMMs.
    Gemm,
    /// Core attention `softmax(QKᵀ)V` — weight-free.
    Attention,
}

/// Forward or backward pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    Forward,
    Backward,
}

/// Efficiency model for one GPU generation.
#[derive(Clone, Copy, Debug)]
pub struct Efficiency {
    /// Peak fraction achieved by large forward GEMMs.
    pub gemm_fwd: f64,
    /// Peak fraction achieved by large backward GEMMs.
    pub gemm_bwd: f64,
    /// Peak fraction of flash-attention forward.
    pub attn_fwd: f64,
    /// Peak fraction of flash-attention backward (markedly lower — the ZB-V
    /// imbalance driver).
    pub attn_bwd: f64,
    /// Tokens at which a GEMM reaches half its peak fraction.
    pub gemm_half_tokens: f64,
    /// Mean attended KV length at which attention reaches half its peak.
    pub attn_half_len: f64,
    /// Seconds of fixed overhead per kernel launch.
    pub launch_overhead: f64,
    /// Kernel launches per transformer layer per pass (forward).
    pub kernels_per_layer: f64,
}

impl Efficiency {
    /// Calibrated Hopper-class defaults.
    pub fn hopper() -> Self {
        Self {
            gemm_fwd: 0.85,
            gemm_bwd: 0.78,
            attn_fwd: 0.60,
            attn_bwd: 0.42,
            gemm_half_tokens: 1024.0,
            attn_half_len: 2048.0,
            launch_overhead: 6e-6,
            kernels_per_layer: 8.0,
        }
    }

    /// Achieved fraction of peak for an op of `class`/`phase` whose
    /// saturation variable (tokens or mean KV length) is `x`.
    pub fn fraction(&self, class: OpClass, phase: Phase, x: f64) -> f64 {
        let (max, half) = match (class, phase) {
            (OpClass::Gemm, Phase::Forward) => (self.gemm_fwd, self.gemm_half_tokens),
            (OpClass::Gemm, Phase::Backward) => (self.gemm_bwd, self.gemm_half_tokens),
            (OpClass::Attention, Phase::Forward) => (self.attn_fwd, self.attn_half_len),
            (OpClass::Attention, Phase::Backward) => (self.attn_bwd, self.attn_half_len),
        };
        if x <= 0.0 {
            return max * 1e-3; // degenerate op: crawl, don't divide by zero
        }
        max * x / (x + half)
    }

    /// Seconds for `flops` of work at saturation variable `x` on a device
    /// with `peak_flops`.
    pub fn op_time(
        &self,
        class: OpClass,
        phase: Phase,
        flops: f64,
        x: f64,
        peak_flops: f64,
    ) -> f64 {
        if flops <= 0.0 {
            return 0.0;
        }
        flops / (peak_flops * self.fraction(class, phase, x))
    }

    /// Fixed overhead of one layer's worth of kernels in `phase`
    /// (backward launches roughly twice the kernels).
    pub fn layer_overhead(&self, phase: Phase) -> f64 {
        let mult = match phase {
            Phase::Forward => 1.0,
            Phase::Backward => 2.0,
        };
        self.kernels_per_layer * self.launch_overhead * mult
    }
}

impl Default for Efficiency {
    fn default() -> Self {
        Self::hopper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturation_is_monotone_and_bounded() {
        let e = Efficiency::hopper();
        let f1 = e.fraction(OpClass::Gemm, Phase::Forward, 128.0);
        let f2 = e.fraction(OpClass::Gemm, Phase::Forward, 4096.0);
        let f3 = e.fraction(OpClass::Gemm, Phase::Forward, 1e9);
        assert!(f1 < f2 && f2 < f3);
        assert!(f3 <= e.gemm_fwd);
    }

    #[test]
    fn attention_backward_is_least_efficient() {
        // The §2.2 argument against ZB-V: attention backward is both 2× the
        // FLOPs and lower MFU.
        let e = Efficiency::hopper();
        let big = 1e6;
        assert!(
            e.fraction(OpClass::Attention, Phase::Backward, big)
                < e.fraction(OpClass::Attention, Phase::Forward, big)
        );
        assert!(
            e.fraction(OpClass::Attention, Phase::Forward, big)
                < e.fraction(OpClass::Gemm, Phase::Forward, big)
        );
    }

    #[test]
    fn op_time_scales_inversely_with_efficiency() {
        let e = Efficiency::hopper();
        let t_small = e.op_time(OpClass::Gemm, Phase::Forward, 1e12, 64.0, 1e15);
        let t_big = e.op_time(OpClass::Gemm, Phase::Forward, 1e12, 65536.0, 1e15);
        assert!(t_small > t_big);
    }

    #[test]
    fn zero_flops_take_zero_time() {
        let e = Efficiency::hopper();
        assert_eq!(e.op_time(OpClass::Gemm, Phase::Forward, 0.0, 0.0, 1e15), 0.0);
    }
}
