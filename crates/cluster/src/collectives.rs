//! α–β cost models for the collectives the systems issue.
//!
//! Ring algorithms (NCCL's default at these sizes): an all-reduce moves
//! `2(k-1)/k` of the buffer through the slowest link, reduce-scatter and
//! all-gather move `(k-1)/k`, an all-to-all exchanges `(k-1)/k` pairwise.
//! `bytes` is always the *full* (unsharded) buffer size at one rank.

use crate::link::Link;

/// Ring all-reduce over `k` ranks.
pub fn all_reduce(bytes: f64, k: usize, link: Link) -> f64 {
    if k <= 1 || bytes <= 0.0 {
        return 0.0;
    }
    let kf = k as f64;
    2.0 * (kf - 1.0) / kf * bytes / link.bandwidth + 2.0 * (kf - 1.0) * link.latency
}

/// Ring reduce-scatter over `k` ranks.
pub fn reduce_scatter(bytes: f64, k: usize, link: Link) -> f64 {
    if k <= 1 || bytes <= 0.0 {
        return 0.0;
    }
    let kf = k as f64;
    (kf - 1.0) / kf * bytes / link.bandwidth + (kf - 1.0) * link.latency
}

/// Ring all-gather over `k` ranks (same cost shape as reduce-scatter).
pub fn all_gather(bytes: f64, k: usize, link: Link) -> f64 {
    reduce_scatter(bytes, k, link)
}

/// Pairwise all-to-all over `k` ranks.
pub fn all_to_all(bytes: f64, k: usize, link: Link) -> f64 {
    if k <= 1 || bytes <= 0.0 {
        return 0.0;
    }
    let kf = k as f64;
    (kf - 1.0) / kf * bytes / link.bandwidth + (kf - 1.0) * link.latency
}

/// Binary-tree broadcast of `bytes` to `k` ranks.
pub fn broadcast(bytes: f64, k: usize, link: Link) -> f64 {
    if k <= 1 || bytes <= 0.0 {
        return 0.0;
    }
    bytes / link.bandwidth + (k as f64).log2().ceil() * link.latency
}

/// Point-to-point send.
pub fn p2p(bytes: f64, link: Link) -> f64 {
    link.transfer(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degenerate_groups_cost_nothing() {
        let l = Link::nvlink();
        assert_eq!(all_reduce(1e9, 1, l), 0.0);
        assert_eq!(all_gather(0.0, 8, l), 0.0);
    }

    #[test]
    fn all_reduce_is_twice_reduce_scatter_bandwidth() {
        let l = Link::nvlink();
        let ar = all_reduce(1e9, 8, l);
        let rs = reduce_scatter(1e9, 8, l);
        assert!((ar / rs - 2.0).abs() < 0.01);
    }

    #[test]
    fn bigger_groups_approach_bandwidth_bound() {
        let l = Link::nic_400gbps();
        let t8 = all_reduce(1e9, 8, l);
        let t64 = all_reduce(1e9, 64, l);
        // (k-1)/k factor grows toward 1, so time grows, but stays within
        // ~20 % (latency terms included).
        assert!(t64 > t8);
        assert!(t64 / t8 < 1.20);
    }

    #[test]
    fn nvlink_collectives_are_much_cheaper() {
        let ar_nv = all_reduce(1e9, 8, Link::nvlink());
        let ar_nic = all_reduce(1e9, 8, Link::nic_400gbps());
        assert!(ar_nic / ar_nv > 7.0);
    }
}
