//! Cluster topology: nodes of NVLink-connected GPUs joined by NICs.
//!
//! §6.1: "Unless otherwise stated, TP, CP and EP should be deployed within a
//! node, while PP and DP could be deployed across nodes." The topology
//! answers one question for the cost models: for a group of `k` ranks, is
//! the group intra-node (NVLink) or does it cross nodes (NIC)?

use crate::gpu::GpuSpec;
use crate::link::Link;

/// A homogeneous GPU cluster.
#[derive(Clone, Copy, Debug)]
pub struct Cluster {
    pub gpu: GpuSpec,
    pub gpus_per_node: usize,
    pub nvlink: Link,
    pub nic: Link,
}

impl Cluster {
    /// The paper's evaluation cluster.
    pub fn hopper_nvlink() -> Self {
        Self {
            gpu: GpuSpec::hopper_80gb(),
            gpus_per_node: 8,
            nvlink: Link::nvlink(),
            nic: Link::nic_400gbps(),
        }
    }

    /// Link used by a collective over `group` ranks that occupy
    /// `gpus_spanned` consecutive GPUs (group × its inner strides).
    /// If the span fits in one node, NVLink; otherwise NIC.
    pub fn link_for_span(&self, gpus_spanned: usize) -> Link {
        if gpus_spanned <= self.gpus_per_node {
            self.nvlink
        } else {
            self.nic
        }
    }

    /// Link for adjacent pipeline stages. With `gpus_per_stage` GPUs per
    /// stage (t·c·… ranks), neighbouring stages share a node only when two
    /// stages fit in one node.
    pub fn pipeline_link(&self, gpus_per_stage: usize) -> Link {
        if 2 * gpus_per_stage <= self.gpus_per_node {
            self.nvlink
        } else {
            self.nic
        }
    }
}

impl Default for Cluster {
    fn default() -> Self {
        Self::hopper_nvlink()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tp8_stays_on_nvlink() {
        let c = Cluster::hopper_nvlink();
        assert_eq!(c.link_for_span(8), c.nvlink);
        assert_eq!(c.link_for_span(16), c.nic);
    }

    #[test]
    fn pipeline_crosses_nodes_at_tp8() {
        let c = Cluster::hopper_nvlink();
        // 8 GPUs per stage → neighbouring stages live on different nodes.
        assert_eq!(c.pipeline_link(8), c.nic);
        // 4 GPUs per stage → two stages share a node.
        assert_eq!(c.pipeline_link(4), c.nvlink);
    }
}
