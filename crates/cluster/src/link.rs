//! Point-to-point link model: latency + bandwidth (α–β).

/// A communication link between two endpoints.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Link {
    /// Sustained bandwidth, bytes/s.
    pub bandwidth: f64,
    /// Per-message latency, seconds.
    pub latency: f64,
}

impl Link {
    /// NVLink within a node: 400 GB/s per GPU (§6.1).
    pub fn nvlink() -> Self {
        Self { bandwidth: 400e9, latency: 3e-6 }
    }

    /// 400 Gbps NIC between nodes (§6.1) = 50 GB/s.
    pub fn nic_400gbps() -> Self {
        Self { bandwidth: 50e9, latency: 10e-6 }
    }

    /// Time to move `bytes` in one message.
    pub fn transfer(&self, bytes: f64) -> f64 {
        if bytes <= 0.0 {
            return 0.0;
        }
        self.latency + bytes / self.bandwidth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_is_alpha_beta() {
        let l = Link::nic_400gbps();
        assert_eq!(l.transfer(0.0), 0.0);
        let t = l.transfer(50e9);
        assert!((t - (1.0 + 10e-6)).abs() < 1e-9);
    }

    #[test]
    fn nvlink_is_8x_nic() {
        assert_eq!(Link::nvlink().bandwidth / Link::nic_400gbps().bandwidth, 8.0);
    }
}
