//! Unified registry of process-wide monotonic counters.
//!
//! Every ad-hoc counter that used to live as a private `static AtomicU64`
//! somewhere in the workspace (pool hit/miss, weight packs, worker
//! spawns, posted sends, fault retries, watchdog wakeups) is a named
//! [`Counter`] here. The owning modules keep their old accessors as thin
//! shims over these statics, and one [`snapshot`] call returns the whole
//! set; [`CounterSnapshot::delta`] between two snapshots describes a
//! single run.
//!
//! All operations are `Relaxed`: counters are statistics, not
//! synchronization, and must never order the computation they observe.

use std::sync::atomic::{AtomicU64, Ordering};

/// A process-wide monotonic event counter.
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh zeroed counter (usable in `static` initializers).
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Add `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        if n > 0 {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Record one event.
    #[inline]
    pub fn incr(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Reset to zero (tests and `pool::reset_stats` only).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

impl Default for Counter {
    fn default() -> Self {
        Counter::new()
    }
}

// Tensor arena (crates/tensor/src/pool.rs).
pub static POOL_HITS: Counter = Counter::new();
pub static POOL_MISSES: Counter = Counter::new();
pub static POOL_RECYCLES: Counter = Counter::new();
pub static POOL_DISCARDS: Counter = Counter::new();
// GEMM weight packing (crates/tensor/src/matmul.rs).
pub static WEIGHT_PACKS: Counter = Counter::new();
// Worker-pool thread spawns (crates/shims/rayon).
pub static POOL_THREAD_SPAWNS: Counter = Counter::new();
// Executor comm runtime (crates/exec): cumulative across runs; the
// per-run figures stay on `RunCtl`/`RunResult` and are mirrored here at
// the end of each run.
pub static POSTED_SENDS: Counter = Counter::new();
pub static EXCHANGE_RETRIES: Counter = Counter::new();
pub static LOCAL_FALLBACKS: Counter = Counter::new();
pub static SKIPPED_MICROBATCHES: Counter = Counter::new();
// Guarded-receive watchdog timeouts that woke only to re-check liveness.
pub static WATCHDOG_WAKEUPS: Counter = Counter::new();
// Checkpoint segments saved and elastic-driver recoveries completed.
pub static CKPT_SAVES: Counter = Counter::new();
pub static RECOVERIES: Counter = Counter::new();
// Spans overwritten in a full recorder ring before they could be drained.
pub static SPANS_DROPPED: Counter = Counter::new();

/// Point-in-time copy of every counter in the registry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    pub pool_hits: u64,
    pub pool_misses: u64,
    pub pool_recycles: u64,
    pub pool_discards: u64,
    pub weight_packs: u64,
    pub pool_thread_spawns: u64,
    pub posted_sends: u64,
    pub exchange_retries: u64,
    pub local_fallbacks: u64,
    pub skipped_microbatches: u64,
    pub watchdog_wakeups: u64,
    pub ckpt_saves: u64,
    pub recoveries: u64,
    pub spans_dropped: u64,
}

/// Read every counter at once.
pub fn snapshot() -> CounterSnapshot {
    CounterSnapshot {
        pool_hits: POOL_HITS.get(),
        pool_misses: POOL_MISSES.get(),
        pool_recycles: POOL_RECYCLES.get(),
        pool_discards: POOL_DISCARDS.get(),
        weight_packs: WEIGHT_PACKS.get(),
        pool_thread_spawns: POOL_THREAD_SPAWNS.get(),
        posted_sends: POSTED_SENDS.get(),
        exchange_retries: EXCHANGE_RETRIES.get(),
        local_fallbacks: LOCAL_FALLBACKS.get(),
        skipped_microbatches: SKIPPED_MICROBATCHES.get(),
        watchdog_wakeups: WATCHDOG_WAKEUPS.get(),
        ckpt_saves: CKPT_SAVES.get(),
        recoveries: RECOVERIES.get(),
        spans_dropped: SPANS_DROPPED.get(),
    }
}

impl CounterSnapshot {
    /// Events since `earlier` (saturating: a counter reset between the
    /// two snapshots reads as zero, not as a wrap).
    pub fn delta(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        CounterSnapshot {
            pool_hits: self.pool_hits.saturating_sub(earlier.pool_hits),
            pool_misses: self.pool_misses.saturating_sub(earlier.pool_misses),
            pool_recycles: self.pool_recycles.saturating_sub(earlier.pool_recycles),
            pool_discards: self.pool_discards.saturating_sub(earlier.pool_discards),
            weight_packs: self.weight_packs.saturating_sub(earlier.weight_packs),
            pool_thread_spawns: self
                .pool_thread_spawns
                .saturating_sub(earlier.pool_thread_spawns),
            posted_sends: self.posted_sends.saturating_sub(earlier.posted_sends),
            exchange_retries: self.exchange_retries.saturating_sub(earlier.exchange_retries),
            local_fallbacks: self.local_fallbacks.saturating_sub(earlier.local_fallbacks),
            skipped_microbatches: self
                .skipped_microbatches
                .saturating_sub(earlier.skipped_microbatches),
            watchdog_wakeups: self.watchdog_wakeups.saturating_sub(earlier.watchdog_wakeups),
            ckpt_saves: self.ckpt_saves.saturating_sub(earlier.ckpt_saves),
            recoveries: self.recoveries.saturating_sub(earlier.recoveries),
            spans_dropped: self.spans_dropped.saturating_sub(earlier.spans_dropped),
        }
    }

    /// `(name, value)` rows in registry order, for table printing.
    pub fn rows(&self) -> [(&'static str, u64); 14] {
        [
            ("pool_hits", self.pool_hits),
            ("pool_misses", self.pool_misses),
            ("pool_recycles", self.pool_recycles),
            ("pool_discards", self.pool_discards),
            ("weight_packs", self.weight_packs),
            ("pool_thread_spawns", self.pool_thread_spawns),
            ("posted_sends", self.posted_sends),
            ("exchange_retries", self.exchange_retries),
            ("local_fallbacks", self.local_fallbacks),
            ("skipped_microbatches", self.skipped_microbatches),
            ("watchdog_wakeups", self.watchdog_wakeups),
            ("ckpt_saves", self.ckpt_saves),
            ("recoveries", self.recoveries),
            ("spans_dropped", self.spans_dropped),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_add_incr_get() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.incr();
        c.add(4);
        c.add(0);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn snapshot_delta_is_fieldwise_and_saturating() {
        let a = CounterSnapshot {
            pool_hits: 10,
            posted_sends: 3,
            ..Default::default()
        };
        let b = CounterSnapshot {
            pool_hits: 25,
            posted_sends: 2, // reset in between
            watchdog_wakeups: 7,
            ..Default::default()
        };
        let d = b.delta(&a);
        assert_eq!(d.pool_hits, 15);
        assert_eq!(d.posted_sends, 0);
        assert_eq!(d.watchdog_wakeups, 7);
    }

    #[test]
    fn rows_cover_every_field_once() {
        let snap = CounterSnapshot {
            pool_hits: 1,
            pool_misses: 2,
            pool_recycles: 3,
            pool_discards: 4,
            weight_packs: 5,
            pool_thread_spawns: 6,
            posted_sends: 7,
            exchange_retries: 8,
            local_fallbacks: 9,
            skipped_microbatches: 10,
            watchdog_wakeups: 11,
            ckpt_saves: 12,
            recoveries: 13,
            spans_dropped: 14,
        };
        let rows = snap.rows();
        let sum: u64 = rows.iter().map(|(_, v)| v).sum();
        assert_eq!(sum, (1..=14).sum::<u64>());
        let mut names: Vec<_> = rows.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 14, "duplicate row name");
    }
}
