//! Crash flight recorder: the last few spans per track, parked globally
//! when a traced run dies, so an `ExecError` post-mortem comes with a
//! timeline instead of a single blocked-port tuple.
//!
//! The slot is process-global and last-writer-wins: in an elastic run
//! each failed attempt overwrites it, so after the driver gives up the
//! slot holds the timeline of the *final* failure. [`take`] consumes it.

use std::fmt;
use std::sync::Mutex;

use crate::span::Span;
use crate::trace::TraceReport;

/// Spans kept per track in a flight recording.
pub const FLIGHT_SPANS_PER_TRACK: usize = 32;

/// The tail of every track at the moment a traced run failed.
#[derive(Clone, Debug, Default)]
pub struct FlightRecording {
    /// `(track name, last spans oldest-first)`, tracks in session order.
    pub tracks: Vec<(String, Vec<Span>)>,
}

impl FlightRecording {
    /// Snapshot the last [`FLIGHT_SPANS_PER_TRACK`] spans of each
    /// non-empty track.
    pub fn capture(report: &TraceReport) -> Self {
        let tracks = report
            .tracks
            .iter()
            .filter(|t| !t.spans.is_empty())
            .map(|t| {
                let skip = t.spans.len().saturating_sub(FLIGHT_SPANS_PER_TRACK);
                (t.name.clone(), t.spans[skip..].to_vec())
            })
            .collect();
        FlightRecording { tracks }
    }

    /// Whether anything was captured.
    pub fn is_empty(&self) -> bool {
        self.tracks.is_empty()
    }
}

impl fmt::Display for FlightRecording {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "flight recorder ({} tracks):", self.tracks.len())?;
        for (name, spans) in &self.tracks {
            writeln!(f, "  [{name}] last {} spans:", spans.len())?;
            for span in spans {
                writeln!(f, "    {span}")?;
            }
        }
        Ok(())
    }
}

static SLOT: Mutex<Option<FlightRecording>> = Mutex::new(None);

/// Park a recording (last writer wins).
pub fn store(rec: FlightRecording) {
    *SLOT.lock().unwrap_or_else(|p| p.into_inner()) = Some(rec);
}

/// Consume the parked recording, if any.
pub fn take() -> Option<FlightRecording> {
    SLOT.lock().unwrap_or_else(|p| p.into_inner()).take()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{OpTag, SpanKind};
    use crate::trace::Track;

    fn report(n: usize) -> TraceReport {
        TraceReport {
            tracks: vec![
                Track {
                    name: "stage0".into(),
                    spans: (0..n)
                        .map(|i| Span {
                            kind: SpanKind::Compute { stage: 0, mb: i, slice: 0, op: OpTag::Fwd },
                            start_us: i as f64,
                            dur_us: 1.0,
                        })
                        .collect(),
                },
                Track { name: "empty".into(), spans: Vec::new() },
            ],
        }
    }

    #[test]
    fn capture_keeps_only_the_tail_and_skips_empty_tracks() {
        let rec = FlightRecording::capture(&report(100));
        assert_eq!(rec.tracks.len(), 1, "empty tracks are omitted");
        let (name, spans) = &rec.tracks[0];
        assert_eq!(name, "stage0");
        assert_eq!(spans.len(), FLIGHT_SPANS_PER_TRACK);
        assert_eq!(spans[0].start_us, (100 - FLIGHT_SPANS_PER_TRACK) as f64);
        assert_eq!(spans.last().unwrap().start_us, 99.0);
    }

    #[test]
    fn display_lists_every_kept_span() {
        let rec = FlightRecording::capture(&report(3));
        let text = rec.to_string();
        assert!(text.contains("[stage0] last 3 spans"));
        assert!(text.contains("fwd s0 mb2.0"));
    }

    #[test]
    fn short_tracks_are_kept_whole() {
        let rec = FlightRecording::capture(&report(2));
        assert_eq!(rec.tracks[0].1.len(), 2);
        assert!(!rec.is_empty());
        assert!(FlightRecording::capture(&TraceReport::default()).is_empty());
    }
}
