//! Per-run trace sessions and per-thread span recorders.
//!
//! A [`TraceSession`] is created once per run (or once per elastic-driver
//! invocation, spanning every attempt) and shared by `Arc`. Each thread
//! that produces spans holds its own [`SpanRecorder`]: a fixed-capacity
//! ring buffer with no locking on the hot path. Recorders drain into the
//! session's track table at iteration boundaries (and on drop, so a
//! panicking thread still surfaces its tail of spans).
//!
//! Disabled sessions cost one branch per would-be span: `clock()`
//! returns `None` without reading the clock, and the recorder never
//! touches its buffer. Tracing therefore cannot perturb determinism —
//! the only side effect of enabling it is reading `Instant::now`.

use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::counters::SPANS_DROPPED;
use crate::span::{Span, SpanKind};

/// Spans buffered per recorder before the oldest are overwritten.
pub const RING_CAPACITY: usize = 4096;

/// One named timeline (one per producing thread, merged by name).
#[derive(Clone, Debug, Default)]
pub struct Track {
    pub name: String,
    pub spans: Vec<Span>,
}

/// A point-in-time copy of every track in a session.
#[derive(Clone, Debug, Default)]
pub struct TraceReport {
    pub tracks: Vec<Track>,
}

impl TraceReport {
    /// The track named `name`, if any spans were recorded on it.
    pub fn track(&self, name: &str) -> Option<&Track> {
        self.tracks.iter().find(|t| t.name == name)
    }

    /// Total spans across all tracks.
    pub fn span_count(&self) -> usize {
        self.tracks.iter().map(|t| t.spans.len()).sum()
    }
}

/// A per-run tracing context. Cheap to share (`Arc`), cheap to ignore
/// (disabled sessions never read the clock).
pub struct TraceSession {
    enabled: bool,
    epoch: Instant,
    tracks: Mutex<Vec<Track>>,
}

impl TraceSession {
    /// An enabled session with its epoch at "now".
    pub fn new() -> Arc<Self> {
        Arc::new(TraceSession {
            enabled: true,
            epoch: Instant::now(),
            tracks: Mutex::new(Vec::new()),
        })
    }

    /// A disabled session: recorders created from it are no-ops.
    pub fn disabled() -> Arc<Self> {
        Arc::new(TraceSession {
            enabled: false,
            epoch: Instant::now(),
            tracks: Mutex::new(Vec::new()),
        })
    }

    /// Session driven by the `SLIMPIPE_TRACE` env hook: a non-empty
    /// value enables tracing and names the Chrome-trace JSON output
    /// path; unset or empty leaves tracing disabled.
    pub fn from_env() -> (Arc<Self>, Option<PathBuf>) {
        match std::env::var("SLIMPIPE_TRACE") {
            Ok(path) if !path.is_empty() => (Self::new(), Some(PathBuf::from(path))),
            _ => (Self::disabled(), None),
        }
    }

    /// Whether spans are being collected.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Microseconds since the session epoch. Reads the clock — callers
    /// on hot paths should gate on [`SpanRecorder::clock`] instead,
    /// which skips the read when disabled.
    pub fn now_us(&self) -> f64 {
        self.epoch.elapsed().as_nanos() as f64 / 1_000.0
    }

    /// A recorder feeding the track named `name`. Tracks merge by name:
    /// two recorders (e.g. across checkpoint segments or recovery
    /// attempts) with the same name append to the same timeline.
    pub fn recorder(self: &Arc<Self>, name: &str) -> SpanRecorder {
        let track = if self.enabled {
            let mut tracks = lock(&self.tracks);
            match tracks.iter().position(|t| t.name == name) {
                Some(i) => i,
                None => {
                    tracks.push(Track { name: name.to_string(), spans: Vec::new() });
                    tracks.len() - 1
                }
            }
        } else {
            usize::MAX
        };
        SpanRecorder { session: Arc::clone(self), track, buf: Vec::new(), head: 0 }
    }

    /// Non-destructive snapshot of every drained track. Spans still
    /// sitting in recorder rings are not included until their owner
    /// flushes — and a snapshot never removes anything, so draining the
    /// trace mid-run (e.g. from a recovery replanner) cannot duplicate
    /// or drop spans from the final report.
    pub fn report(&self) -> TraceReport {
        TraceReport { tracks: lock(&self.tracks).clone() }
    }
}

/// Lock that tolerates poisoning: a panicking recorder thread must not
/// take the whole trace down with it.
fn lock(tracks: &Mutex<Vec<Track>>) -> std::sync::MutexGuard<'_, Vec<Track>> {
    tracks.lock().unwrap_or_else(|p| p.into_inner())
}

/// A per-thread span buffer: fixed ring, overwrite-oldest, zero locking
/// until [`flush`](SpanRecorder::flush).
pub struct SpanRecorder {
    session: Arc<TraceSession>,
    track: usize,
    buf: Vec<Span>,
    head: usize,
}

impl SpanRecorder {
    /// Whether this recorder collects anything at all.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.session.enabled
    }

    /// Start-of-span timestamp, or `None` (without reading the clock)
    /// when tracing is disabled. The intended hot-path shape is
    /// `let t0 = rec.clock(); ...work...; if let Some(t0) = t0 { rec.push(kind, t0) }`.
    #[inline]
    pub fn clock(&self) -> Option<f64> {
        if self.session.enabled {
            Some(self.session.now_us())
        } else {
            None
        }
    }

    /// Record a span that started at `start_us` and ends now.
    pub fn push(&mut self, kind: SpanKind, start_us: f64) {
        if !self.session.enabled {
            return;
        }
        let span = Span { kind, start_us, dur_us: (self.session.now_us() - start_us).max(0.0) };
        if self.buf.len() < RING_CAPACITY {
            self.buf.push(span);
        } else {
            self.buf[self.head] = span;
            self.head = (self.head + 1) % RING_CAPACITY;
            SPANS_DROPPED.incr();
        }
    }

    /// Drain the ring into the session track, oldest first. Called at
    /// iteration boundaries (and from `Drop`).
    pub fn flush(&mut self) {
        if !self.session.enabled || self.buf.is_empty() {
            return;
        }
        let mut tracks = lock(&self.session.tracks);
        let spans = &mut tracks[self.track].spans;
        // When the ring wrapped, `head` points at the oldest surviving span.
        spans.extend_from_slice(&self.buf[self.head..]);
        spans.extend_from_slice(&self.buf[..self.head]);
        drop(tracks);
        self.buf.clear();
        self.head = 0;
    }
}

impl Drop for SpanRecorder {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::OpTag;

    fn compute(n: usize) -> SpanKind {
        SpanKind::Compute { stage: 0, mb: n, slice: 0, op: OpTag::Fwd }
    }

    #[test]
    fn disabled_session_records_nothing_and_never_reads_clock() {
        let s = TraceSession::disabled();
        let mut rec = s.recorder("stage0");
        assert!(!rec.enabled());
        assert_eq!(rec.clock(), None);
        rec.push(compute(0), 0.0);
        rec.flush();
        drop(rec);
        assert_eq!(s.report().span_count(), 0);
        assert!(s.report().tracks.is_empty());
    }

    #[test]
    fn recorders_merge_by_track_name() {
        let s = TraceSession::new();
        let mut a = s.recorder("stage0");
        let mut b = s.recorder("stage0");
        let mut c = s.recorder("stage1");
        a.push(compute(0), s.now_us());
        b.push(compute(1), s.now_us());
        c.push(compute(2), s.now_us());
        drop((a, b, c));
        let report = s.report();
        assert_eq!(report.tracks.len(), 2);
        assert_eq!(report.track("stage0").unwrap().spans.len(), 2);
        assert_eq!(report.track("stage1").unwrap().spans.len(), 1);
    }

    #[test]
    fn full_ring_overwrites_oldest_and_counts_drops() {
        let s = TraceSession::new();
        let mut rec = s.recorder("stage0");
        let dropped_before = crate::counters::SPANS_DROPPED.get();
        for i in 0..RING_CAPACITY + 3 {
            rec.push(compute(i), s.now_us());
        }
        rec.flush();
        let dropped = crate::counters::SPANS_DROPPED.get() - dropped_before;
        assert!(dropped >= 3, "expected >=3 overwrites, saw {dropped}");
        let track = s.report();
        let spans = &track.track("stage0").unwrap().spans;
        assert_eq!(spans.len(), RING_CAPACITY);
        // Oldest three were overwritten: the first surviving span is mb=3,
        // and order is preserved oldest-first.
        assert_eq!(spans[0].kind, compute(3));
        assert_eq!(spans[RING_CAPACITY - 1].kind, compute(RING_CAPACITY + 2));
        for w in spans.windows(2) {
            assert!(w[0].start_us <= w[1].start_us, "spans out of order after wrap");
        }
    }

    #[test]
    fn report_is_non_destructive() {
        let s = TraceSession::new();
        let mut rec = s.recorder("stage0");
        rec.push(compute(0), s.now_us());
        rec.flush();
        let first = s.report();
        rec.push(compute(1), s.now_us());
        rec.flush();
        let second = s.report();
        assert_eq!(first.span_count(), 1);
        assert_eq!(second.span_count(), 2, "mid-run report must not drain spans");
        assert_eq!(second.track("stage0").unwrap().spans[0].kind, compute(0));
    }

    #[test]
    fn unflushed_spans_surface_on_drop() {
        let s = TraceSession::new();
        let mut rec = s.recorder("stage0");
        rec.push(compute(0), s.now_us());
        assert_eq!(s.report().span_count(), 0, "ring not drained yet");
        drop(rec);
        assert_eq!(s.report().span_count(), 1, "drop must flush the ring");
    }
}
