//! Chrome-trace / Perfetto JSON export.
//!
//! Emits the JSON object format (`{"traceEvents": [...]}`) with one
//! complete-duration `"X"` event per span and `"M"` metadata events
//! naming each track. Load the file in `chrome://tracing` or
//! <https://ui.perfetto.dev>. Hand-rolled writer — the workspace has no
//! serde — timestamps are already microseconds, Chrome's native unit.

use std::fmt::Write as _;
use std::path::Path;

use crate::span::SpanKind;
use crate::trace::TraceReport;

fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn category(kind: &SpanKind) -> &'static str {
    match kind {
        SpanKind::Compute { .. } => "compute",
        SpanKind::ExchangeWait { .. } => "exchange",
        SpanKind::PostFlush { .. } => "flush",
        SpanKind::CkptSave { .. } => "checkpoint",
        SpanKind::Recovery { .. } => "recovery",
    }
}

/// Render a report as a Chrome-trace JSON string.
pub fn chrome_trace_json(report: &TraceReport) -> String {
    let mut out = String::with_capacity(64 + report.span_count() * 96);
    out.push_str("{\"traceEvents\":[");
    out.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
         \"args\":{\"name\":\"slimpipe\"}}",
    );
    for (tid, track) in report.tracks.iter().enumerate() {
        out.push_str(",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":");
        let _ = write!(out, "{tid}");
        out.push_str(",\"args\":{\"name\":\"");
        escape(&track.name, &mut out);
        out.push_str("\"}}");
    }
    for (tid, track) in report.tracks.iter().enumerate() {
        for span in &track.spans {
            out.push_str(",{\"name\":\"");
            escape(&span.kind.name(), &mut out);
            out.push_str("\",\"cat\":\"");
            out.push_str(category(&span.kind));
            let _ = write!(
                out,
                "\",\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\"ts\":{:.3},\"dur\":{:.3}}}",
                span.start_us, span.dur_us
            );
        }
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Render and write a report to `path`.
pub fn write_chrome_trace(report: &TraceReport, path: &Path) -> std::io::Result<()> {
    std::fs::write(path, chrome_trace_json(report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{OpTag, Span};
    use crate::trace::Track;

    fn sample() -> TraceReport {
        TraceReport {
            tracks: vec![
                Track {
                    name: "stage0".into(),
                    spans: vec![
                        Span {
                            kind: SpanKind::Compute { stage: 0, mb: 0, slice: 1, op: OpTag::Fwd },
                            start_us: 10.0,
                            dur_us: 5.5,
                        },
                        Span {
                            kind: SpanKind::PostFlush { stage: 0 },
                            start_us: 20.0,
                            dur_us: 0.25,
                        },
                    ],
                },
                Track {
                    name: "driver".into(),
                    spans: vec![Span {
                        kind: SpanKind::CkptSave { iteration: 2 },
                        start_us: 30.0,
                        dur_us: 1.0,
                    }],
                },
            ],
        }
    }

    /// Brace/bracket balance outside string literals — a cheap validity
    /// check that catches every unterminated-object bug the hand-rolled
    /// writer could produce.
    fn assert_balanced(json: &str) {
        let (mut depth, mut in_str, mut esc) = (0i64, false, false);
        for c in json.chars() {
            if in_str {
                match (esc, c) {
                    (true, _) => esc = false,
                    (false, '\\') => esc = true,
                    (false, '"') => in_str = false,
                    _ => {}
                }
            } else {
                match c {
                    '"' => in_str = true,
                    '{' | '[' => depth += 1,
                    '}' | ']' => depth -= 1,
                    _ => {}
                }
                assert!(depth >= 0, "unbalanced close in {json}");
            }
        }
        assert_eq!(depth, 0, "unbalanced open in {json}");
        assert!(!in_str, "unterminated string in {json}");
    }

    #[test]
    fn events_carry_names_timestamps_and_track_metadata() {
        let json = chrome_trace_json(&sample());
        assert_balanced(&json);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"args\":{\"name\":\"stage0\"}"));
        assert!(json.contains("\"name\":\"fwd s0 mb0.1\""));
        assert!(json.contains("\"ts\":10.000"));
        assert!(json.contains("\"dur\":5.500"));
        assert!(json.contains("\"cat\":\"checkpoint\""));
        assert!(json.contains("\"tid\":1"));
    }

    #[test]
    fn empty_report_is_still_valid_json() {
        let json = chrome_trace_json(&TraceReport::default());
        assert_balanced(&json);
        assert!(json.contains("process_name"));
    }

    #[test]
    fn escaping_handles_quotes_and_control_chars() {
        let mut s = String::new();
        escape("a\"b\\c\nd", &mut s);
        assert_eq!(s, "a\\\"b\\\\c\\u000ad");
    }
}
