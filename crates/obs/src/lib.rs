//! Observability runtime for the SlimPipe executor.
//!
//! Three pieces, all dependency-free and always compiled:
//!
//! - [`counters`] — a unified registry of process-wide monotonic counters
//!   (pool hits, weight packs, posted sends, watchdog wakeups, ...). One
//!   [`counters::snapshot`] call returns everything; deltas between two
//!   snapshots describe a single run.
//! - [`trace`] — per-thread span recorders feeding a per-run
//!   [`TraceSession`]. Recorders buffer typed [`Span`]s in a fixed ring
//!   with no locking on the hot path and drain into the session at
//!   iteration boundaries. When the session is disabled the whole layer
//!   collapses to one branch per would-be span: the clock is never read.
//! - [`chrome`] — exports a [`TraceReport`] as Chrome-trace / Perfetto
//!   JSON (`chrome://tracing`, <https://ui.perfetto.dev>).
//! - [`flight`] — a crash flight recorder: on an executor error the last
//!   few spans per track are parked in a global slot so the post-mortem
//!   comes with a timeline instead of a single blocked-port tuple.
//!
//! Tracing is determinism-neutral by construction: spans record
//! wall-clock only, never influence scheduling, and the clock is read
//! only when a session is enabled.

pub mod chrome;
pub mod counters;
pub mod flight;
pub mod span;
pub mod trace;

pub use counters::{snapshot, Counter, CounterSnapshot};
pub use flight::FlightRecording;
pub use span::{OpTag, RecoveryPhase, Span, SpanKind};
pub use trace::{SpanRecorder, TraceReport, TraceSession, Track};
