//! Typed spans: what a unit of pipeline work was, and when it ran.
//!
//! Timestamps are microseconds of wall-clock since the owning
//! [`TraceSession`](crate::TraceSession)'s epoch — Chrome-trace's native
//! unit, so export is a straight copy.

use std::fmt;

/// What kind of compute a [`SpanKind::Compute`] span covers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpTag {
    /// A forward unit (one `(stage, mb, slice)` forward pass).
    Fwd,
    /// A backward unit.
    Bwd,
    /// A job executed on a device's compute server thread.
    Server,
}

/// Phase of an elastic-driver recovery transition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryPhase {
    /// A recoverable fault was detected.
    Fail,
    /// Survivor geometry re-planned and validated.
    Replan,
    /// Latest checkpoint located and loaded for resume.
    Restore,
}

/// The typed payload of a span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanKind {
    /// One unit of model compute on a stage or server thread.
    Compute { stage: usize, mb: usize, slice: usize, op: OpTag },
    /// Time a stage spent blocked awaiting a context-exchange reply
    /// (inside the enclosing `Compute` span) or a vocab gather.
    ExchangeWait { stage: usize, mb: usize, slice: usize },
    /// Draining the posted-send queues at an iteration boundary.
    PostFlush { stage: usize },
    /// Saving a retained checkpoint after the segment ending at
    /// `iteration`.
    CkptSave { iteration: usize },
    /// One phase of elastic recovery attempt `attempt` (1-based).
    Recovery { attempt: usize, phase: RecoveryPhase },
}

impl SpanKind {
    /// Short display name (Chrome-trace event name).
    pub fn name(&self) -> String {
        match self {
            SpanKind::Compute { stage, mb, slice, op } => {
                let tag = match op {
                    OpTag::Fwd => "fwd",
                    OpTag::Bwd => "bwd",
                    OpTag::Server => "srv",
                };
                format!("{tag} s{stage} mb{mb}.{slice}")
            }
            SpanKind::ExchangeWait { stage, mb, slice } => {
                format!("xwait s{stage} mb{mb}.{slice}")
            }
            SpanKind::PostFlush { stage } => format!("flush s{stage}"),
            SpanKind::CkptSave { iteration } => format!("ckpt@{iteration}"),
            SpanKind::Recovery { attempt, phase } => {
                let p = match phase {
                    RecoveryPhase::Fail => "fail",
                    RecoveryPhase::Replan => "replan",
                    RecoveryPhase::Restore => "restore",
                };
                format!("recovery#{attempt} {p}")
            }
        }
    }
}

/// A closed interval of work: `[start_us, start_us + dur_us]` relative
/// to the session epoch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Span {
    pub kind: SpanKind,
    pub start_us: f64,
    pub dur_us: f64,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<24} @{:>12.1}us +{:>10.1}us",
            self.kind.name(),
            self.start_us,
            self.dur_us
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_distinct_per_unit() {
        let a = SpanKind::Compute { stage: 0, mb: 1, slice: 2, op: OpTag::Fwd };
        let b = SpanKind::Compute { stage: 0, mb: 1, slice: 3, op: OpTag::Fwd };
        let c = SpanKind::Compute { stage: 0, mb: 1, slice: 2, op: OpTag::Bwd };
        assert_ne!(a.name(), b.name());
        assert_ne!(a.name(), c.name());
        assert_eq!(a.name(), "fwd s0 mb1.2");
        assert_eq!(SpanKind::CkptSave { iteration: 4 }.name(), "ckpt@4");
        assert_eq!(
            SpanKind::Recovery { attempt: 2, phase: RecoveryPhase::Replan }.name(),
            "recovery#2 replan"
        );
    }
}
