//! Property-based tests on the analytical cost model.

use proptest::prelude::*;
use slimpipe_model::flops::slice_pairs;
use slimpipe_model::{causal_pairs, Checkpoint, ModelConfig};

fn zoo() -> Vec<ModelConfig> {
    vec![
        ModelConfig::llama_7b(),
        ModelConfig::llama_13b(),
        ModelConfig::llama_70b(),
        ModelConfig::llama_149b(),
        ModelConfig::mixtral_8x7b(),
        ModelConfig::mixtral_8x22b(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Pair counts are additive over any contiguous query split.
    #[test]
    fn pairs_are_additive(start in 0u64..10_000, a in 1u64..5_000, b in 1u64..5_000) {
        let whole = causal_pairs(start, a + b);
        let split = causal_pairs(start, a) + causal_pairs(start + a, b);
        prop_assert_eq!(whole, split);
    }

    /// Uniform slice pairs always sum to the sequence total and are
    /// strictly increasing in the slice index.
    #[test]
    fn slice_pairs_partition_and_increase(l in 1u64..4_096, n in 2u64..32) {
        let seq = l * n;
        let parts: Vec<u128> = (0..n).map(|i| slice_pairs(seq, n, i)).collect();
        prop_assert_eq!(parts.iter().sum::<u128>(), causal_pairs(0, seq));
        prop_assert!(parts.windows(2).all(|w| w[0] < w[1]));
    }

    /// Model FLOPs strictly increase with sequence length, superlinearly
    /// (causal attention is quadratic).
    #[test]
    fn flops_superlinear_in_context(model_idx in 0usize..6, s_pow in 10u32..18) {
        let m = &zoo()[model_idx];
        let s = 1u64 << s_pow;
        let f1 = m.model_fwd_flops(s);
        let f2 = m.model_fwd_flops(2 * s);
        prop_assert!(f2 > 2.0 * f1, "{}: {f1} -> {f2}", m.name);
        prop_assert!(f2 < 4.0 * f1 + 1.0, "at most quadratic");
    }

    /// Activation bytes are ordered None > Selective > Full for every
    /// model, and full-ckpt is exactly 2·h bytes/token/layer.
    #[test]
    fn ckpt_ordering_holds_for_all_models(model_idx in 0usize..6) {
        let m = &zoo()[model_idx];
        let none = m.act_bytes_per_token_layer(Checkpoint::None);
        let sel = m.act_bytes_per_token_layer(Checkpoint::Selective);
        let full = m.act_bytes_per_token_layer(Checkpoint::Full);
        prop_assert!(none > sel && sel > full);
        prop_assert_eq!(full, 2.0 * m.hidden as f64);
    }

    /// Microbatch activation bytes scale linearly in sequence length and
    /// inversely in TP.
    #[test]
    fn act_bytes_scaling(model_idx in 0usize..6, s_pow in 12u32..20, tp_pow in 0u32..4) {
        let m = &zoo()[model_idx];
        let s = 1u64 << s_pow;
        let tp = 1usize << tp_pow;
        let base = m.microbatch_act_bytes(s, 1, Checkpoint::None);
        prop_assert!((m.microbatch_act_bytes(2 * s, 1, Checkpoint::None) / base - 2.0).abs() < 1e-9);
        prop_assert!((base / m.microbatch_act_bytes(s, tp, Checkpoint::None) - tp as f64).abs() < 1e-9);
    }

    /// Logits memory divides exactly by the shard count.
    #[test]
    fn logits_shard_exactly(tokens in 1u64..100_000, shards in 1usize..64) {
        let m = ModelConfig::llama_13b();
        let full = m.logits_bytes(tokens, 1);
        let sharded = m.logits_bytes(tokens, shards);
        prop_assert!((full / sharded - shards as f64).abs() < 1e-9);
    }

    /// State bytes per parameter are monotone decreasing in DP and bounded
    /// by [6, 18].
    #[test]
    fn state_bytes_bounds(dp in 1usize..512) {
        let b = ModelConfig::state_bytes_per_param(dp);
        prop_assert!(b <= 18.0 && b > 6.0);
        prop_assert!(ModelConfig::state_bytes_per_param(dp + 1) <= b);
    }
}
