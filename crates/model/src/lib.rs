//! Analytical transformer cost model.
//!
//! Everything the simulator and the hybrid-parallelism planner need to know
//! about a model, derived from first principles and calibrated against the
//! anchors the paper states explicitly (DESIGN.md §7):
//!
//! * the model zoo of Table 3 (parameter counts verified against the paper),
//! * FLOP counts per operator, with exact *attended-pair* accounting for
//!   causal attention over arbitrary sequence slices (the quantity SlimPipe's
//!   workload redistribution balances),
//! * activation bytes per layer per token with a documented component
//!   breakdown under the paper's §5 kernel optimisations, for each
//!   checkpointing mode,
//! * model-state bytes (bf16 params, fp32 grad accumulation, Adam fp32
//!   states), and
//! * output-layer (vocabulary) compute and logits memory.

pub mod activation;
pub mod config;
pub mod flops;
pub mod states;
pub mod vocab;

pub use activation::{ActBreakdown, Checkpoint};
pub use config::{ModelConfig, MoeConfig};
pub use flops::causal_pairs;

/// Bytes per GiB, used throughout the memory model.
pub const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

/// Bytes per bf16 element.
pub const BF16: f64 = 2.0;

/// Bytes per fp32 element.
pub const FP32: f64 = 4.0;
