//! Output-layer (vocabulary GEMM + cross-entropy) cost and memory.
//!
//! §3 "Imbalanced Model Partition" and §4.3: the output layer projects into
//! a 128 000-wide vocabulary and the following cross-entropy keeps the
//! logits in float32 for gradient calculation — "with a context length of
//! 256K and a vocabulary size of 128,000, it consumes about 16 GiB of GPU
//! memory even in 8-way TP".

use crate::config::ModelConfig;
use crate::FP32;

impl ModelConfig {
    /// Float32 logits bytes for `tokens` when the vocabulary is sharded
    /// `shards` ways (TP shards × optional vocabulary-parallel PP shards).
    pub fn logits_bytes(&self, tokens: u64, shards: usize) -> f64 {
        tokens as f64 * self.vocab as f64 * FP32 / shards as f64
    }

    /// Output-layer weight parameters held per shard when the (tied)
    /// embedding is split `shards` ways.
    pub fn vocab_shard_params(&self, shards: usize) -> f64 {
        self.embedding_params() / shards as f64
    }

    /// Fraction of one full-model forward spent in the output layer — the
    /// imbalance the last pipeline device suffers without §4.3.
    pub fn output_layer_share(&self, seq: u64) -> f64 {
        self.output_fwd_flops(seq) / self.model_fwd_flops(seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GIB;

    #[test]
    fn paper_256k_logits_are_16_gib_at_tp8() {
        let m = ModelConfig::llama_13b(); // any model: logits depend on V only
        let bytes = m.logits_bytes(262_144, 8);
        assert!((bytes / GIB - 15.625).abs() < 1e-9, "got {}", bytes / GIB);
        // The paper rounds to "about 16 GiB".
        assert!((bytes / GIB - 16.0).abs() < 0.5);
    }

    #[test]
    fn vocab_parallelism_divides_logits_by_p() {
        let m = ModelConfig::llama_13b();
        let tp_only = m.logits_bytes(262_144, 8);
        let with_vp = m.logits_bytes(262_144, 8 * 4);
        assert!((tp_only / with_vp - 4.0).abs() < 1e-12);
    }

    #[test]
    fn output_share_shrinks_with_context() {
        // Attention grows quadratically, the vocab GEMM linearly, so the
        // output layer matters most at short context.
        let m = ModelConfig::llama_13b();
        assert!(m.output_layer_share(8_192) > m.output_layer_share(524_288));
    }
}
