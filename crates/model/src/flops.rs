//! FLOP accounting with exact causal-attention pair counts.
//!
//! The paper's load-balancing argument (§4.2) is entirely about the number
//! of attended `(query, key)` pairs: "the computation time is in proportion
//! to the length of attended key-value". We therefore account attention in
//! *pairs* and convert to FLOPs with `4·h` FLOPs per pair (QKᵀ and AV, two
//! FLOPs per multiply-add each), which makes slice workloads, context
//! exchange balancing, and the simulator all share one ground truth.

use crate::config::ModelConfig;

/// Number of `(query, key)` pairs attended by `q_len` causal queries whose
/// first query sits at global position `q_start` (keys at positions
/// `0..=query`). Exact, not the `s²/2` approximation.
pub fn causal_pairs(q_start: u64, q_len: u64) -> u128 {
    // Σ_{i=0}^{q_len-1} (q_start + i + 1)
    let n = q_len as u128;
    n * (q_start as u128 + 1) + n * (n.saturating_sub(1)) / 2
}

/// Pairs attended by slice `i` of `n` uniform slices of a `seq`-token
/// sequence.
pub fn slice_pairs(seq: u64, n: u64, i: u64) -> u128 {
    assert!(seq.is_multiple_of(n), "uniform slicing requires n | seq");
    assert!(i < n, "slice index out of range");
    let l = seq / n;
    causal_pairs(i * l, l)
}

/// Forward FLOPs of one transformer layer, split by operator class. The
/// split matters because the simulator applies different hardware
/// efficiencies to GEMM-like and attention-like work, and because ZB-V's
/// B/W decomposition needs to know which FLOPs have weight gradients.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LayerFlops {
    /// QKV projection, output projection, MLP / expert GEMMs (have weights).
    pub gemm: f64,
    /// Core attention `softmax(QKᵀ)V` (weight-free: `T_w = 0`).
    pub attn: f64,
}

impl LayerFlops {
    pub fn total(&self) -> f64 {
        self.gemm + self.attn
    }
}

impl ModelConfig {
    /// Forward FLOPs of one layer processing `tokens` query tokens that
    /// attend `pairs` causal pairs. For a full sequence `s`,
    /// `pairs = causal_pairs(0, s)`.
    pub fn layer_fwd_flops(&self, tokens: u64, pairs: u128) -> LayerFlops {
        let h = self.hidden as f64;
        let hkv = self.kv_hidden() as f64;
        let hf = self.ffn_hidden as f64;
        let t = tokens as f64;
        let qkv = 2.0 * t * h * (h + 2.0 * hkv);
        let out = 2.0 * t * h * h;
        // SwiGLU: gate + up + down projections.
        let mlp = 6.0 * t * h * hf * self.active_experts() as f64;
        let attn = 4.0 * h * pairs as f64;
        LayerFlops { gemm: qkv + out + mlp, attn }
    }

    /// Forward FLOPs of the output layer (vocabulary GEMM) for `tokens`.
    pub fn output_fwd_flops(&self, tokens: u64) -> f64 {
        2.0 * tokens as f64 * self.hidden as f64 * self.vocab as f64
    }

    /// Forward FLOPs of the whole model for one sequence of length `seq`.
    pub fn model_fwd_flops(&self, seq: u64) -> f64 {
        let per_layer = self.layer_fwd_flops(seq, causal_pairs(0, seq));
        per_layer.total() * self.layers as f64 + self.output_fwd_flops(seq)
    }

    /// *Model FLOPs* of one training iteration over `seqs` sequences of
    /// length `seq` — the MFU numerator. Backward ≈ 2× forward; activation
    /// recomputation deliberately does **not** count (it inflates time, not
    /// model FLOPs, which is exactly why full checkpointing lowers MFU).
    pub fn model_flops_per_iter(&self, seq: u64, seqs: u64) -> f64 {
        3.0 * self.model_fwd_flops(seq) * seqs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairs_full_sequence_is_triangular() {
        assert_eq!(causal_pairs(0, 1), 1);
        assert_eq!(causal_pairs(0, 4), 1 + 2 + 3 + 4);
        assert_eq!(causal_pairs(0, 1000), 1000 * 1001 / 2);
    }

    #[test]
    fn pairs_with_prefix_offset() {
        // Two queries at positions 5 and 6 attend 6 and 7 keys.
        assert_eq!(causal_pairs(5, 2), 13);
    }

    #[test]
    fn slice_pairs_partition_the_total() {
        let (seq, n) = (4096u64, 8u64);
        let sum: u128 = (0..n).map(|i| slice_pairs(seq, n, i)).sum();
        assert_eq!(sum, causal_pairs(0, seq));
    }

    #[test]
    fn later_slices_attend_more() {
        let (seq, n) = (1024u64, 4u64);
        let p: Vec<u128> = (0..n).map(|i| slice_pairs(seq, n, i)).collect();
        assert!(p.windows(2).all(|w| w[0] < w[1]));
        // Arithmetic progression with common difference l² (paper §4.2.1).
        let l = (seq / n) as u128;
        assert_eq!(p[1] - p[0], l * l);
        assert_eq!(p[2] - p[1], l * l);
    }

    #[test]
    fn attention_share_grows_with_context() {
        // §2.2: "the computational complexity of attention is quadratic with
        // respect to context length, the attention component tends to
        // dominate" — our FLOPs model must reproduce that.
        let m = ModelConfig::llama_13b();
        let share = |s: u64| {
            let f = m.layer_fwd_flops(s, causal_pairs(0, s));
            f.attn / f.total()
        };
        assert!(share(8_192) < share(262_144));
        assert!(share(262_144) < share(2_097_152));
        assert!(share(2_097_152) > 0.5, "attention should dominate at 2M");
    }

    #[test]
    fn moe_activates_topk_expert_flops() {
        let dense = ModelConfig {
            moe: None,
            ..ModelConfig::mixtral_8x7b()
        };
        let moe = ModelConfig::mixtral_8x7b();
        let fd = dense.layer_fwd_flops(1024, causal_pairs(0, 1024));
        let fm = moe.layer_fwd_flops(1024, causal_pairs(0, 1024));
        // MoE GEMM = dense GEMM + one extra expert's MLP.
        let mlp_one = 6.0 * 1024.0 * 4096.0 * 14336.0;
        assert!((fm.gemm - fd.gemm - mlp_one).abs() / fm.gemm < 1e-12);
        assert_eq!(fd.attn, fm.attn);
    }

    #[test]
    fn iter_flops_scale_linearly_in_batch() {
        let m = ModelConfig::llama_70b();
        let one = m.model_flops_per_iter(65_536, 1);
        let eight = m.model_flops_per_iter(65_536, 8);
        assert!((eight / one - 8.0).abs() < 1e-12);
    }
}
