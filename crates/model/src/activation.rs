//! Activation memory per layer per token, under the paper's §5 kernel stack.
//!
//! The paper's implementation avoids storing: flash-attention score
//! matrices (cuDNN SDPA), the SwiGLU product (swish recomputed), and
//! RMSNorm outputs (memory-efficient RMSNorm). What remains stashed per
//! layer per token, in bf16, is broken down component by component in
//! [`ActBreakdown`] so the model is auditable. The `Full` checkpointing mode
//! reduces this to the layer input only — which reproduces the paper's §3
//! worked example: Llama 70B at 1M context with full recomputing and `t = 8`
//! needs `1048576 · 8192 · 80 · 2 / 8 = 160 GiB`.

use crate::config::ModelConfig;
use crate::BF16;

/// Activation rematerialisation mode (§2.3, §5).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Checkpoint {
    /// Stash everything the backward pass needs (beyond §5's free savings).
    None,
    /// The paper's selective checkpointing: "recomputes the up projection
    /// plus SwiGLU in an MLP layer" — drops the `gate`/`up` stash.
    Selective,
    /// Full checkpointing: keep only each layer's input.
    Full,
}

/// Per-token per-layer stashed bytes, by component (all bf16).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ActBreakdown {
    /// Residual-stream input to the attention block (`h` elements).
    pub resid_in: f64,
    /// Query projection output (`h`).
    pub q: f64,
    /// Key projection output (`g·h/a`) — doubles as the KV cache.
    pub k: f64,
    /// Value projection output (`g·h/a`) — doubles as the KV cache.
    pub v: f64,
    /// Attention output entering the output projection (`h`).
    pub attn_out: f64,
    /// Residual-stream input to the MLP block (`h`).
    pub resid_mid: f64,
    /// SwiGLU gate projection output (`H·top_k` for MoE).
    pub gate: f64,
    /// SwiGLU up projection output (`H·top_k` for MoE).
    pub up: f64,
}

impl ActBreakdown {
    /// Total stashed bytes per token per layer.
    pub fn total(&self) -> f64 {
        self.resid_in
            + self.q
            + self.k
            + self.v
            + self.attn_out
            + self.resid_mid
            + self.gate
            + self.up
    }

    /// The KV-cache portion (k + v). The paper's §4.1.2 point: "the KV cache
    /// imposes no memory overhead on the accumulated activation. Because the
    /// keys and values are deliberately retained for gradient calculation."
    pub fn kv(&self) -> f64 {
        self.k + self.v
    }
}

impl ModelConfig {
    /// Component breakdown for the `Checkpoint::None` stash.
    pub fn act_breakdown(&self) -> ActBreakdown {
        let h = self.hidden as f64 * BF16;
        let hkv = self.kv_hidden() as f64 * BF16;
        let hf = self.ffn_hidden as f64 * BF16 * self.active_experts() as f64;
        ActBreakdown {
            resid_in: h,
            q: h,
            k: hkv,
            v: hkv,
            attn_out: h,
            resid_mid: h,
            gate: hf,
            up: hf,
        }
    }

    /// Stashed activation bytes per token per layer under `ckpt`.
    pub fn act_bytes_per_token_layer(&self, ckpt: Checkpoint) -> f64 {
        let b = self.act_breakdown();
        match ckpt {
            Checkpoint::None => b.total(),
            Checkpoint::Selective => b.total() - b.gate - b.up,
            Checkpoint::Full => b.resid_in,
        }
    }

    /// KV-cache bytes per token per layer (bf16 K + V).
    pub fn kv_bytes_per_token_layer(&self) -> f64 {
        self.act_breakdown().kv()
    }

    /// Total activation bytes of one microbatch (`seq` tokens) across all
    /// `L` layers with tensor parallelism `t` — the paper's `M_a` scaled to
    /// one TP rank. Sequence parallelism keeps activations sharded by `t`
    /// throughout, so division by `t` is uniform.
    pub fn microbatch_act_bytes(&self, seq: u64, tp: usize, ckpt: Checkpoint) -> f64 {
        self.act_bytes_per_token_layer(ckpt) * seq as f64 * self.layers as f64 / tp as f64
    }

    /// Extra forward FLOPs the backward pass must replay under `ckpt`
    /// (as a fraction of one forward pass of a layer): `Full` replays the
    /// whole layer, `Selective` replays only up-projection + SwiGLU.
    pub fn recompute_fraction(&self, ckpt: Checkpoint) -> f64 {
        match ckpt {
            Checkpoint::None => 0.0,
            Checkpoint::Full => 1.0,
            Checkpoint::Selective => {
                // up projection = 2·t·h·H of the layer's GEMM total; the
                // elementwise SwiGLU itself is negligible.
                let h = self.hidden as f64;
                let hf = self.ffn_hidden as f64 * self.active_experts() as f64;
                let up = 2.0 * h * hf;
                let gemm = 2.0 * h * (h + 2.0 * self.kv_hidden() as f64)
                    + 2.0 * h * h
                    + 6.0 * h * hf;
                up / gemm
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GIB;

    #[test]
    fn paper_70b_1m_full_ckpt_is_160_gib() {
        // §3 "Immense Memory Overhead" worked example, verbatim.
        let m = ModelConfig::llama_70b();
        let bytes = m.microbatch_act_bytes(1_048_576, 8, Checkpoint::Full);
        assert!((bytes / GIB - 160.0).abs() < 1e-9, "got {} GiB", bytes / GIB);
    }

    #[test]
    fn ckpt_modes_are_strictly_ordered() {
        let m = ModelConfig::llama_13b();
        let none = m.act_bytes_per_token_layer(Checkpoint::None);
        let sel = m.act_bytes_per_token_layer(Checkpoint::Selective);
        let full = m.act_bytes_per_token_layer(Checkpoint::Full);
        assert!(none > sel && sel > full);
        assert_eq!(full, 2.0 * 5120.0);
    }

    #[test]
    fn kv_cache_is_within_the_stash() {
        // §4.1.2: retaining KV for backward means the cache is a subset of
        // the activation stash, not an addition to it.
        let m = ModelConfig::llama_70b();
        let b = m.act_breakdown();
        assert!(b.kv() < b.total());
        assert_eq!(b.kv(), 2.0 * 2.0 * 1024.0); // g·h/a = 8·128 = 1024 per K and V
    }

    #[test]
    fn moe_stash_scales_with_topk() {
        let m = ModelConfig::mixtral_8x7b();
        let b = m.act_breakdown();
        assert_eq!(b.gate, 2.0 * 14336.0 * 2.0); // bf16 · H · top_k
    }

    #[test]
    fn recompute_fraction_bounds() {
        let m = ModelConfig::llama_13b();
        assert_eq!(m.recompute_fraction(Checkpoint::None), 0.0);
        assert_eq!(m.recompute_fraction(Checkpoint::Full), 1.0);
        let sel = m.recompute_fraction(Checkpoint::Selective);
        assert!(sel > 0.0 && sel < 0.5, "selective replays a minority: {sel}");
    }
}
