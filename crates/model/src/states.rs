//! Parameter counts (verified against Table 3) and model-state bytes.
//!
//! Training precision follows §6.1: bf16 parameters, float32 gradient
//! accumulation and loss, Adam with float32 internal states. With Megatron's
//! distributed optimizer the fp32 master weights and both Adam moments shard
//! across the data-parallel group.

use crate::config::ModelConfig;
use crate::{BF16, FP32};

impl ModelConfig {
    /// Parameters of one transformer layer (attention + MLP/experts + norms
    /// + router for MoE).
    pub fn layer_params(&self) -> f64 {
        let h = self.hidden as f64;
        let hkv = self.kv_hidden() as f64;
        let hf = self.ffn_hidden as f64;
        let qkv = h * (h + 2.0 * hkv);
        let out = h * h;
        let mlp = 3.0 * h * hf * self.expert_count() as f64;
        let router = if self.is_moe() { h * self.expert_count() as f64 } else { 0.0 };
        let norms = 2.0 * h;
        qkv + out + mlp + router + norms
    }

    /// Parameters of the FFN experts only (the part expert parallelism
    /// shards), per layer.
    pub fn layer_expert_params(&self) -> f64 {
        3.0 * self.hidden as f64 * self.ffn_hidden as f64 * self.expert_count() as f64
    }

    /// Word-embedding parameters. The output projection shares these weights
    /// (§4.3 cites Press & Wolf tying), so they are counted once.
    pub fn embedding_params(&self) -> f64 {
        self.vocab as f64 * self.hidden as f64
    }

    /// Total parameters (Table 3's `#Params`, "including parameters in the
    /// 128,000 sized vocabulary").
    pub fn total_params(&self) -> f64 {
        self.layer_params() * self.layers as f64
            + self.embedding_params()
            + self.hidden as f64 // final norm
    }

    /// Model-state bytes per parameter: bf16 weight + fp32 gradient
    /// accumulator resident per rank, plus fp32 master weight and two Adam
    /// moments sharded across `dp` ranks by the distributed optimizer.
    pub fn state_bytes_per_param(dp: usize) -> f64 {
        BF16 + FP32 + 3.0 * FP32 / dp as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(m: ModelConfig, expect_billions: f64) {
        let got = m.total_params() / 1e9;
        let rel = (got - expect_billions).abs() / expect_billions;
        assert!(rel < 0.01, "{}: got {got:.2}B, expected {expect_billions}B", m.name);
    }

    #[test]
    fn table3_param_counts() {
        check(ModelConfig::llama_13b(), 13.3);
        check(ModelConfig::llama_70b(), 69.5);
        check(ModelConfig::llama_149b(), 148.9);
        check(ModelConfig::mixtral_8x7b(), 47.0);
        check(ModelConfig::mixtral_8x22b(), 141.0);
    }

    #[test]
    fn state_bytes_shrink_with_dp() {
        // 18 B/param standalone, approaching 6 B/param at large DP.
        assert_eq!(ModelConfig::state_bytes_per_param(1), 18.0);
        assert!(ModelConfig::state_bytes_per_param(64) < 6.2);
    }

    #[test]
    fn expert_params_dominate_moe_layers() {
        let m = ModelConfig::mixtral_8x7b();
        assert!(m.layer_expert_params() / m.layer_params() > 0.9);
    }
}
