//! Model zoo (paper Table 3) and architecture hyper-parameters.

/// Mixture-of-Experts configuration. The paper routes 2 of 8 experts per
/// token with a perfectly balanced router for performance measurement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MoeConfig {
    /// Number of experts per MoE layer (`8` for the Mixtral series).
    pub experts: usize,
    /// Experts activated per token (`2` in the paper's evaluation).
    pub top_k: usize,
}

/// A transformer architecture, mirroring the notation of Table 3:
/// `L` layers, `a` attention heads, `g` query groups, `h` hidden size,
/// `H` FFN hidden size, and a 128 000-entry vocabulary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModelConfig {
    pub name: &'static str,
    /// `L`: number of transformer layers.
    pub layers: usize,
    /// `a`: number of attention (query) heads.
    pub heads: usize,
    /// `g`: number of query groups (equals `heads` without GQA).
    pub query_groups: usize,
    /// `h`: hidden dimension.
    pub hidden: usize,
    /// `H`: FFN hidden dimension (SwiGLU width).
    pub ffn_hidden: usize,
    /// `V`: vocabulary size.
    pub vocab: usize,
    /// MoE layers, if any (applies to every layer, as in Mixtral).
    pub moe: Option<MoeConfig>,
}

impl ModelConfig {
    /// Per-head dimension `h / a`.
    pub fn head_dim(&self) -> usize {
        self.hidden / self.heads
    }

    /// Combined key (or value) projection width `g · h/a`.
    pub fn kv_hidden(&self) -> usize {
        self.head_dim() * self.query_groups
    }

    /// `true` for Mixtral-style MoE models.
    pub fn is_moe(&self) -> bool {
        self.moe.is_some()
    }

    /// Experts whose FFN weights exist per layer (1 for dense models).
    pub fn expert_count(&self) -> usize {
        self.moe.map_or(1, |m| m.experts)
    }

    /// Experts each token's computation flows through (1 for dense models).
    pub fn active_experts(&self) -> usize {
        self.moe.map_or(1, |m| m.top_k)
    }

    // ---- Table 3 presets -------------------------------------------------

    /// Llama 7B (Figure 2's caption model). Standard Llama-1/2 7B geometry
    /// with the paper's 128 000-entry vocabulary.
    pub fn llama_7b() -> Self {
        Self {
            name: "Llama 7B",
            layers: 32,
            heads: 32,
            query_groups: 32,
            hidden: 4096,
            ffn_hidden: 11008,
            vocab: 128_000,
            moe: None,
        }
    }

    /// Llama 13B (Table 3 row 1): no GQA.
    pub fn llama_13b() -> Self {
        Self {
            name: "Llama 13B",
            layers: 40,
            heads: 40,
            query_groups: 40,
            hidden: 5120,
            ffn_hidden: 13824,
            vocab: 128_000,
            moe: None,
        }
    }

    /// Llama 70B (Table 3 row 2).
    pub fn llama_70b() -> Self {
        Self {
            name: "Llama 70B",
            layers: 80,
            heads: 64,
            query_groups: 8,
            hidden: 8192,
            ffn_hidden: 28672,
            vocab: 128_000,
            moe: None,
        }
    }

    /// Llama 149B (Table 3 row 3).
    pub fn llama_149b() -> Self {
        Self {
            name: "Llama 149B",
            layers: 96,
            heads: 96,
            query_groups: 8,
            hidden: 12288,
            ffn_hidden: 32768,
            vocab: 128_000,
            moe: None,
        }
    }

    /// Mixtral 8x7B (Table 3 row 4).
    pub fn mixtral_8x7b() -> Self {
        Self {
            name: "Mixtral 8x7B",
            layers: 32,
            heads: 32,
            query_groups: 8,
            hidden: 4096,
            ffn_hidden: 14336,
            vocab: 128_000,
            moe: Some(MoeConfig { experts: 8, top_k: 2 }),
        }
    }

    /// Mixtral 8x22B (Table 3 row 5).
    pub fn mixtral_8x22b() -> Self {
        Self {
            name: "Mixtral 8x22B",
            layers: 56,
            heads: 48,
            query_groups: 8,
            hidden: 6144,
            ffn_hidden: 16384,
            vocab: 128_000,
            moe: Some(MoeConfig { experts: 8, top_k: 2 }),
        }
    }

    /// The four models of the end-to-end evaluation (Figure 12, Table 4).
    pub fn evaluation_zoo() -> Vec<Self> {
        vec![
            Self::llama_70b(),
            Self::llama_149b(),
            Self::mixtral_8x7b(),
            Self::mixtral_8x22b(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_geometry_is_consistent() {
        for m in [
            ModelConfig::llama_7b(),
            ModelConfig::llama_13b(),
            ModelConfig::llama_70b(),
            ModelConfig::llama_149b(),
            ModelConfig::mixtral_8x7b(),
            ModelConfig::mixtral_8x22b(),
        ] {
            assert_eq!(m.hidden % m.heads, 0, "{}", m.name);
            assert_eq!(m.heads % m.query_groups, 0, "{}", m.name);
            assert_eq!(m.kv_hidden() * m.heads / m.query_groups, m.hidden, "{}", m.name);
        }
    }

    #[test]
    fn gqa_models_have_8_groups() {
        // Figure 12's DeepSpeed discussion hinges on "only 8 query groups".
        assert_eq!(ModelConfig::llama_70b().query_groups, 8);
        assert_eq!(ModelConfig::mixtral_8x7b().query_groups, 8);
        assert_eq!(ModelConfig::llama_13b().query_groups, 40);
    }
}
