//! Per-device peak memory under a schedule — the simulator-side counterpart
//! of `torch.cuda.max_memory_allocated` (paper §6.2).
//!
//! Activation peaks come from the exact schedule walk
//! (`slimpipe_core::memory`); this module converts units to bytes using the
//! environment (sequence length, TP/CP sharding, checkpointing mode) and
//! adds the fp32 logits stash of the output layer.

use crate::cost::PipelineEnv;
use slimpipe_core::memory::{peak_last_stage_units, peak_units};
use slimpipe_sched::Schedule;

/// Peak activation bytes (including KV cache — it is part of the stash) on
/// `device`.
pub fn device_peak_act_bytes(sched: &Schedule, env: &PipelineEnv, device: usize) -> f64 {
    // M_a for one microbatch on one rank: activations shard by TP (with SP)
    // and by CP (each CP rank holds its sequence shard).
    let m_a = env.model.microbatch_act_bytes(env.seq, env.tp, env.ckpt) / env.cp as f64;
    let unit = m_a / (sched.devices * sched.chunks * sched.slices) as f64;
    peak_units(sched, device) as f64 * unit
}

/// Peak fp32 logits bytes on `device`.
pub fn device_peak_logits_bytes(sched: &Schedule, env: &PipelineEnv, device: usize) -> f64 {
    let tokens_per_unit =
        env.seq as f64 / sched.slices as f64 / env.cp as f64;
    if env.vocab_parallel {
        // Every device holds a 1/(t·p) logits shard for the units in flight
        // at its final chunk (≈ overall in-flight peak / chunk count).
        let inflight = peak_units(sched, device).div_ceil(sched.chunks.max(1));
        let per_unit = env
            .model
            .logits_bytes(tokens_per_unit.round() as u64, env.tp * sched.devices);
        inflight as f64 * per_unit
    } else {
        let units = peak_last_stage_units(sched, device);
        let per_unit = env
            .model
            .logits_bytes(tokens_per_unit.round() as u64, env.tp);
        units as f64 * per_unit
    }
}

/// Peak activation + logits bytes on `device`.
pub fn device_peak_bytes(sched: &Schedule, env: &PipelineEnv, device: usize) -> f64 {
    device_peak_act_bytes(sched, env, device) + device_peak_logits_bytes(sched, env, device)
}

/// Worst peak across devices.
pub fn worst_peak_bytes(sched: &Schedule, env: &PipelineEnv) -> f64 {
    (0..sched.devices)
        .map(|d| device_peak_bytes(sched, env, d))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimpipe_model::{Checkpoint, ModelConfig, GIB};

    fn env(seq: u64) -> PipelineEnv {
        PipelineEnv::test_default(ModelConfig::llama_13b(), seq)
    }

    #[test]
    fn slimpipe_act_shrinks_with_p_but_1f1b_does_not() {
        // Figure 1's contrast, in bytes.
        let e = env(131_072);
        let act = |p: usize, slim: bool| {
            let sched = if slim {
                slimpipe_core::schedule::generate(p, 2 * p.max(2), 4 * p).unwrap()
            } else {
                slimpipe_sched::onefoneb::generate(p, 2 * p.max(2)).unwrap()
            };
            device_peak_act_bytes(&sched, &e, 0)
        };
        let slim2 = act(2, true);
        let slim8 = act(8, true);
        assert!(slim8 < slim2 * 0.4, "slim should scale down with p");
        let classic2 = act(2, false);
        let classic8 = act(8, false);
        assert!((classic8 / classic2 - 1.0).abs() < 0.05, "classic PP is flat");
    }

    #[test]
    fn classic_logits_land_on_last_device_only() {
        let mut e = env(262_144);
        e.vocab_parallel = false;
        let sched = slimpipe_sched::onefoneb::generate(8, 8).unwrap();
        assert_eq!(device_peak_logits_bytes(&sched, &e, 0), 0.0);
        let last = device_peak_logits_bytes(&sched, &e, 7);
        // §3: one microbatch of 256K tokens at t=8 is ~16 GiB fp32 logits.
        assert!(last / GIB > 15.0, "got {} GiB", last / GIB);
    }

    #[test]
    fn vocab_parallel_logits_are_balanced_and_small() {
        let e = env(262_144);
        let sched = slimpipe_core::schedule::generate(8, 4, 16).unwrap();
        let per: Vec<f64> = (0..8)
            .map(|d| device_peak_logits_bytes(&sched, &e, d))
            .collect();
        let max = per.iter().copied().fold(0.0, f64::max);
        assert!(max / GIB < 4.0, "sharded logits stay small: {} GiB", max / GIB);
    }

    #[test]
    fn full_ckpt_cuts_activation_bytes() {
        let mut e = env(131_072);
        let sched = slimpipe_sched::onefoneb::generate(4, 4).unwrap();
        e.ckpt = Checkpoint::None;
        let none = device_peak_act_bytes(&sched, &e, 0);
        e.ckpt = Checkpoint::Full;
        let full = device_peak_act_bytes(&sched, &e, 0);
        assert!(full < 0.2 * none);
    }

    #[test]
    fn cp_shards_activations() {
        let mut e = env(131_072);
        let sched = slimpipe_sched::onefoneb::generate(4, 4).unwrap();
        e.cp = 1;
        let c1 = device_peak_act_bytes(&sched, &e, 0);
        e.cp = 4;
        let c4 = device_peak_act_bytes(&sched, &e, 0);
        assert!((c1 / c4 - 4.0).abs() < 1e-9);
    }
}
