//! Per-device peak memory under a schedule — the simulator-side counterpart
//! of `torch.cuda.max_memory_allocated` (paper §6.2).
//!
//! Activation peaks come from the exact schedule walk
//! (`slimpipe_core::memory`); this module converts units to bytes using the
//! environment (sequence length, TP/CP sharding, checkpointing mode) and
//! adds the fp32 logits stash of the output layer.
//!
//! Non-uniform slicings, per-microbatch slice counts, and ragged
//! `mb_seqs` are priced by a *weighted* walk over the same per-microbatch
//! [`Slicing`] the cost model reads — a long early slice holds
//! proportionally more resident bytes than a short late one, instead of
//! every unit being assumed `seq/n` tokens. On uniform geometry the
//! weighted walk reduces exactly to the classic closed form.

use crate::cost::PipelineEnv;
use slimpipe_core::memory::{
    peak_bytes_by, peak_last_stage_bytes_by, peak_units, peak_last_stage_units,
};
use slimpipe_core::{SlicePolicy, Slicing};
use slimpipe_sched::{Schedule, WorkItem};

/// True when every unit of the run has the same token count, so the
/// classic `m_a/(p·v·n)` unit size is exact (and bit-stable with the
/// pre-weighted accounting).
fn uniform_geometry(sched: &Schedule, env: &PipelineEnv) -> bool {
    env.mb_seqs.is_none()
        && sched.mb_slices.is_none()
        && matches!(env.slicing, SlicePolicy::Uniform)
        && (sched.slices as u64 == 0 || env.seq.is_multiple_of(sched.slices as u64))
}

/// Per-microbatch slice partitions — the same construction the cost model
/// performs, so memory and makespan read one ground truth. `None` entries
/// mark degenerate `slices > seq` geometries (uniform-average fallback).
fn slicings(sched: &Schedule, env: &PipelineEnv) -> Vec<Option<Slicing>> {
    (0..sched.microbatches)
        .map(|mb| {
            let seq = env.seq_of(mb);
            let n = sched.slices_of(mb);
            (n as u64 <= seq && seq > 0)
                .then(|| Slicing::for_microbatch(&env.slicing, mb, seq, n))
        })
        .collect()
}

/// Fraction of microbatch `mb`'s tokens that unit `(mb, slice)` carries.
fn token_fraction(slicings: &[Option<Slicing>], sched: &Schedule, op: &WorkItem) -> f64 {
    match &slicings[op.mb as usize] {
        Some(s) => s.len(op.slice as usize) as f64 / s.seq as f64,
        None => 1.0 / sched.slices_of(op.mb as usize) as f64,
    }
}

/// Peak activation bytes (including KV cache — it is part of the stash) on
/// `device`.
pub fn device_peak_act_bytes(sched: &Schedule, env: &PipelineEnv, device: usize) -> f64 {
    if uniform_geometry(sched, env) {
        // M_a for one microbatch on one rank: activations shard by TP (with
        // SP) and by CP (each CP rank holds its sequence shard).
        let m_a = env.model.microbatch_act_bytes(env.seq, env.tp, env.ckpt) / env.cp as f64;
        let unit = m_a / (sched.devices * sched.chunks * sched.slices) as f64;
        return peak_units(sched, device) as f64 * unit;
    }
    let sl = slicings(sched, env);
    let unit_bytes = |op: &WorkItem| -> f64 {
        let m_a = env.model.microbatch_act_bytes(env.seq_of(op.mb as usize), env.tp, env.ckpt)
            / env.cp as f64;
        m_a / (sched.devices * sched.chunks) as f64 * token_fraction(&sl, sched, op)
    };
    peak_bytes_by(sched, device, &unit_bytes)
}

/// Peak fp32 logits bytes on `device`.
pub fn device_peak_logits_bytes(sched: &Schedule, env: &PipelineEnv, device: usize) -> f64 {
    if uniform_geometry(sched, env) {
        let tokens_per_unit = env.seq as f64 / sched.slices as f64 / env.cp as f64;
        if env.vocab_parallel {
            // Every device holds a 1/(t·p) logits shard for the units in
            // flight at its final chunk (≈ overall in-flight peak / chunk
            // count).
            let inflight = peak_units(sched, device).div_ceil(sched.chunks.max(1));
            let per_unit = env
                .model
                .logits_bytes(tokens_per_unit.round() as u64, env.tp * sched.devices);
            return inflight as f64 * per_unit;
        }
        let units = peak_last_stage_units(sched, device);
        let per_unit = env.model.logits_bytes(tokens_per_unit.round() as u64, env.tp);
        return units as f64 * per_unit;
    }
    let sl = slicings(sched, env);
    let unit_tokens = |op: &WorkItem| -> f64 {
        env.seq_of(op.mb as usize) as f64 * token_fraction(&sl, sched, op) / env.cp as f64
    };
    if env.vocab_parallel {
        let shards = env.tp * sched.devices;
        let bytes = |op: &WorkItem| -> f64 {
            env.model.logits_bytes(unit_tokens(op).round() as u64, shards)
        };
        peak_bytes_by(sched, device, &bytes) / sched.chunks.max(1) as f64
    } else {
        let bytes = |op: &WorkItem| -> f64 {
            env.model.logits_bytes(unit_tokens(op).round() as u64, env.tp)
        };
        peak_last_stage_bytes_by(sched, device, &bytes)
    }
}

/// Peak activation + logits bytes on `device`.
pub fn device_peak_bytes(sched: &Schedule, env: &PipelineEnv, device: usize) -> f64 {
    device_peak_act_bytes(sched, env, device) + device_peak_logits_bytes(sched, env, device)
}

/// Worst peak across devices.
pub fn worst_peak_bytes(sched: &Schedule, env: &PipelineEnv) -> f64 {
    (0..sched.devices)
        .map(|d| device_peak_bytes(sched, env, d))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimpipe_model::{Checkpoint, ModelConfig, GIB};

    fn env(seq: u64) -> PipelineEnv {
        PipelineEnv::test_default(ModelConfig::llama_13b(), seq)
    }

    #[test]
    fn slimpipe_act_shrinks_with_p_but_1f1b_does_not() {
        // Figure 1's contrast, in bytes.
        let e = env(131_072);
        let act = |p: usize, slim: bool| {
            let sched = if slim {
                slimpipe_core::schedule::generate(p, 2 * p.max(2), 4 * p).unwrap()
            } else {
                slimpipe_sched::onefoneb::generate(p, 2 * p.max(2)).unwrap()
            };
            device_peak_act_bytes(&sched, &e, 0)
        };
        let slim2 = act(2, true);
        let slim8 = act(8, true);
        assert!(slim8 < slim2 * 0.4, "slim should scale down with p");
        let classic2 = act(2, false);
        let classic8 = act(8, false);
        assert!((classic8 / classic2 - 1.0).abs() < 0.05, "classic PP is flat");
    }

    #[test]
    fn classic_logits_land_on_last_device_only() {
        let mut e = env(262_144);
        e.vocab_parallel = false;
        let sched = slimpipe_sched::onefoneb::generate(8, 8).unwrap();
        assert_eq!(device_peak_logits_bytes(&sched, &e, 0), 0.0);
        let last = device_peak_logits_bytes(&sched, &e, 7);
        // §3: one microbatch of 256K tokens at t=8 is ~16 GiB fp32 logits.
        assert!(last / GIB > 15.0, "got {} GiB", last / GIB);
    }

    #[test]
    fn vocab_parallel_logits_are_balanced_and_small() {
        let e = env(262_144);
        let sched = slimpipe_core::schedule::generate(8, 4, 16).unwrap();
        let per: Vec<f64> = (0..8)
            .map(|d| device_peak_logits_bytes(&sched, &e, d))
            .collect();
        let max = per.iter().copied().fold(0.0, f64::max);
        assert!(max / GIB < 4.0, "sharded logits stay small: {} GiB", max / GIB);
    }

    #[test]
    fn full_ckpt_cuts_activation_bytes() {
        let mut e = env(131_072);
        let sched = slimpipe_sched::onefoneb::generate(4, 4).unwrap();
        e.ckpt = Checkpoint::None;
        let none = device_peak_act_bytes(&sched, &e, 0);
        e.ckpt = Checkpoint::Full;
        let full = device_peak_act_bytes(&sched, &e, 0);
        assert!(full < 0.2 * none);
    }

    #[test]
    fn cp_shards_activations() {
        let mut e = env(131_072);
        let sched = slimpipe_sched::onefoneb::generate(4, 4).unwrap();
        e.cp = 1;
        let c1 = device_peak_act_bytes(&sched, &e, 0);
        e.cp = 4;
        let c4 = device_peak_act_bytes(&sched, &e, 0);
        assert!((c1 / c4 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn explicit_uniform_bounds_match_the_uniform_closed_form() {
        // The weighted walk must agree with the classic unit formula when
        // the explicit bounds spell the uniform partition.
        let e = env(131_072);
        let sched = slimpipe_core::schedule::generate(4, 4, 16).unwrap();
        let l = 131_072 / 16;
        let mut explicit = e.clone();
        explicit.slicing =
            slimpipe_core::SlicePolicy::Explicit((0..=16u64).map(|i| i * l).collect());
        for d in 0..4 {
            let a = device_peak_act_bytes(&sched, &e, d);
            let b = device_peak_act_bytes(&sched, &explicit, d);
            assert!((a - b).abs() / a < 1e-12, "device {d}: {a} vs {b}");
            let la = device_peak_logits_bytes(&sched, &e, d);
            let lb = device_peak_logits_bytes(&sched, &explicit, d);
            assert!((la - lb).abs() <= la * 0.1 + 1.0, "device {d}: {la} vs {lb}");
        }
    }

    #[test]
    fn pair_balanced_first_device_peaks_above_uniform() {
        // §4.1.1's memory argument, now visible to the simulator: pair-
        // balanced early slices are long, so the warm-up accumulation on
        // device 0 (which stashes the earliest slices of several
        // microbatches) weighs more than uniform slicing's.
        let mut e = env(131_072);
        e.exchange = false;
        let sched = slimpipe_core::schedule::generate(4, 4, 16).unwrap();
        let uniform = device_peak_act_bytes(&sched, &e, 0);
        e.slicing = slimpipe_core::SlicePolicy::PairBalanced;
        let balanced = device_peak_act_bytes(&sched, &e, 0);
        assert!(
            balanced > uniform * 1.05,
            "pair-balanced {balanced} should exceed uniform {uniform}"
        );
    }

    #[test]
    fn ragged_microbatches_price_their_own_lengths() {
        // Two microbatches, the second twice the first: the weighted walk
        // must land between the all-short and all-long uniform runs, and a
        // run whose ragged lengths all equal `seq` must match the uniform
        // formula exactly.
        let sched = slimpipe_core::schedule::generate(2, 2, 4).unwrap();
        let mut e = env(65_536);
        e.mb_seqs = Some(vec![65_536, 65_536]);
        let same = device_peak_act_bytes(&sched, &e, 0);
        e.mb_seqs = None;
        let uniform = device_peak_act_bytes(&sched, &e, 0);
        assert!((same - uniform).abs() / uniform < 1e-12);

        e.mb_seqs = Some(vec![65_536, 131_072]);
        let ragged = device_peak_act_bytes(&sched, &e, 0);
        e.mb_seqs = None;
        e.seq = 131_072;
        let long = device_peak_act_bytes(&sched, &e, 0);
        assert!(
            ragged > uniform && ragged < long,
            "ragged {ragged} should sit between {uniform} and {long}"
        );
    }
}
