//! Per-op cost model: WorkItem → (seconds, bytes to ship downstream).

use slimpipe_cluster::{collectives, Cluster, Efficiency, OpClass, Phase};
use slimpipe_core::vocab_parallel::output_layer_cost;
use slimpipe_core::{SlicePolicy, Slicing};
use slimpipe_model::{causal_pairs, Checkpoint, ModelConfig, BF16};
use slimpipe_sched::{PassKind, Schedule, WorkItem};

/// Everything the cost model needs to know about the run besides the
/// schedule itself.
#[derive(Clone, Debug)]
pub struct PipelineEnv {
    pub model: ModelConfig,
    pub cluster: Cluster,
    pub eff: Efficiency,
    /// Tensor-parallel size `t` (always paired with sequence parallelism).
    pub tp: usize,
    /// Context-parallel size `c` (load-balanced causal CP).
    pub cp: usize,
    /// Expert-parallel size `e` (1 for dense models).
    pub ep: usize,
    /// Full sequence length of one microbatch (tokens). Individual
    /// microbatches may override it through [`PipelineEnv::mb_seqs`].
    pub seq: u64,
    /// Ragged microbatches: per-microbatch sequence lengths (must have one
    /// entry per schedule microbatch when set). `None` = every microbatch
    /// is `seq` tokens.
    pub mb_seqs: Option<Vec<u64>>,
    /// How each sequence is cut into the schedule's slices — the same
    /// policy axis the executor runs, so per-slice workloads agree
    /// (per-microbatch bounds included).
    pub slicing: SlicePolicy,
    /// Activation rematerialisation mode.
    pub ckpt: Checkpoint,
    /// Attention context exchange (§4.2) — balances slice attention loads.
    pub exchange: bool,
    /// Early key-value exchange (§5) — overlaps the KV shipment; when off,
    /// the KV transfer lands on the critical path.
    pub early_kv: bool,
    /// Vocabulary parallelism (§4.3).
    pub vocab_parallel: bool,
    /// Fraction of intra-pass collective time (TP/CP/EP) hidden behind
    /// compute — Megatron-style async collectives overlap roughly half.
    pub comm_overlap: f64,
    /// Fraction of *pipeline-edge* (stage boundary) transfer time hidden
    /// behind compute. The executor's async exchange runtime posts
    /// boundary sends non-blocking and overlaps them with the next unit,
    /// so an overlapped edge charges only the exposed
    /// `(1 − pipeline_overlap)` share of the transfer. 0 = fully
    /// serialized handoff, 1 = fully hidden.
    pub pipeline_overlap: f64,
}

impl PipelineEnv {
    /// A reasonable default environment for unit tests.
    pub fn test_default(model: ModelConfig, seq: u64) -> Self {
        Self {
            model,
            cluster: Cluster::hopper_nvlink(),
            eff: Efficiency::hopper(),
            tp: 8,
            cp: 1,
            ep: 1,
            seq,
            mb_seqs: None,
            slicing: SlicePolicy::Uniform,
            ckpt: Checkpoint::None,
            exchange: true,
            early_kv: true,
            vocab_parallel: true,
            comm_overlap: 0.5,
            pipeline_overlap: 0.0,
        }
    }

    /// Sequence length of microbatch `mb` (ragged-aware).
    pub fn seq_of(&self, mb: usize) -> u64 {
        match &self.mb_seqs {
            Some(seqs) => seqs[mb],
            None => self.seq,
        }
    }
}

/// Duration + downstream traffic of one op.
#[derive(Clone, Copy, Debug, Default)]
pub struct OpCost {
    pub duration: f64,
    /// Bytes this op ships to the adjacent stage when it completes
    /// (activations for F, gradients for B).
    pub send_bytes: f64,
}

/// Cost provider contract the discrete-event engine simulates against:
/// anything that can price one work item on one device and describe the
/// inter-stage link. [`CostModel`] (the analytic cluster model) implements
/// it; `slimpipe-planner` plugs in a micro-profiled model of the real
/// executor kernels through the same interface.
pub trait UnitCostModel {
    /// The schedule being priced.
    fn schedule(&self) -> &Schedule;
    /// Duration + downstream traffic of one op on `device`.
    fn op_cost(&self, device: usize, op: &WorkItem) -> OpCost;
    /// Link used between adjacent pipeline stages.
    fn pipeline_link(&self) -> slimpipe_cluster::Link;
    /// Fraction of the `src → dst` pipeline-edge transfer hidden behind
    /// compute (the async exchange runtime's non-blocking posted sends).
    /// Models that don't price overlap keep the serialized default.
    fn edge_overlap(&self, _src: usize, _dst: usize) -> f64 {
        0.0
    }
}

/// Concrete cost model bound to one (schedule, environment) pair.
pub struct CostModel<'a> {
    pub sched: &'a Schedule,
    pub env: &'a PipelineEnv,
    /// Per-microbatch slice partitions under `env.slicing` — the same
    /// `Slicing::pairs` source of truth the executor indexes by, so
    /// simulator and executor agree on per-slice attention workloads by
    /// construction. An entry is `None` only for degenerate `slices > seq`
    /// geometries (which an analytical sweep may price but no executor can
    /// run); those fall back to uniform averages instead of panicking the
    /// estimator.
    slicings: Vec<Option<Slicing>>,
}

impl<'a> CostModel<'a> {
    pub fn new(sched: &'a Schedule, env: &'a PipelineEnv) -> Self {
        let slicings = (0..sched.microbatches)
            .map(|mb| {
                let seq = env.seq_of(mb);
                let n = sched.slices_of(mb);
                (n as u64 <= seq && seq > 0)
                    .then(|| Slicing::for_microbatch(&env.slicing, mb, seq, n))
            })
            .collect();
        Self { sched, env, slicings }
    }

    /// Tokens one pass of `(mb, slice)` processes on one rank (that slice's
    /// actual token length / CP) — from the same [`Slicing`] bounds as the
    /// attention pairs, so non-uniform policies and ragged microbatches
    /// price GEMMs and collectives per-slice too.
    fn unit_tokens(&self, mb: u32, slice: u32) -> f64 {
        let n = self.sched.slices_of(mb as usize);
        let seq = self.env.seq_of(mb as usize);
        let raw = if n > 1 {
            match &self.slicings[mb as usize] {
                Some(s) => s.len(slice as usize) as f64,
                None => seq as f64 / n as f64,
            }
        } else {
            seq as f64
        };
        raw / self.env.cp as f64
    }

    /// Attention pairs one pass attends on one rank, from the same
    /// [`Slicing`] bounds the executor runs.
    fn unit_pairs(&self, mb: u32, slice: u32) -> f64 {
        let n = self.sched.slices_of(mb as usize) as u64;
        let seq = self.env.seq_of(mb as usize);
        let raw = if n > 1 {
            match (&self.slicings[mb as usize], self.env.exchange) {
                // Context exchange equalises the per-round attention load:
                // every pass carries the average share (residual spread is
                // at most one KV slice — §4.2.2). The average is also the
                // degenerate-geometry fallback.
                (_, true) | (None, _) => causal_pairs(0, seq) as f64 / n as f64,
                (Some(s), false) => s.pairs(slice as usize) as f64,
            }
        } else {
            causal_pairs(0, seq) as f64
        };
        raw / self.env.cp as f64
    }

    /// Transformer layers per chunk.
    fn layers_per_chunk(&self) -> f64 {
        self.env.model.layers as f64 / (self.sched.devices * self.sched.chunks) as f64
    }

    /// TP collective time for one layer, one direction (SP: 2 all-gathers +
    /// 2 reduce-scatters per layer per pass).
    fn tp_comm_per_layer(&self, tokens: f64) -> f64 {
        if self.env.tp <= 1 {
            return 0.0;
        }
        let bytes = tokens * self.env.model.hidden as f64 * BF16;
        let link = self.env.cluster.link_for_span(self.env.tp);
        2.0 * (collectives::all_gather(bytes, self.env.tp, link)
            + collectives::reduce_scatter(bytes, self.env.tp, link))
    }

    /// CP communication per layer: the paper's commutated CP ships Q, O and
    /// the softmax normaliser instead of cached KV, recovering the no-cache
    /// volume (§5) — two ring passes of one activation-sized tensor.
    fn cp_comm_per_layer(&self, tokens: f64) -> f64 {
        if self.env.cp <= 1 {
            return 0.0;
        }
        let bytes = tokens * self.env.model.hidden as f64 * BF16;
        let link = self.env.cluster.link_for_span(self.env.tp * self.env.cp);
        2.0 * collectives::all_gather(bytes, self.env.cp, link)
    }

    /// EP all-to-all per MoE layer (dispatch + combine).
    fn ep_comm_per_layer(&self, tokens: f64) -> f64 {
        if self.env.ep <= 1 || !self.env.model.is_moe() {
            return 0.0;
        }
        let bytes = tokens
            * self.env.model.hidden as f64
            * BF16
            * self.env.model.active_experts() as f64;
        let link = self.env.cluster.link_for_span(self.env.tp * self.env.ep);
        2.0 * collectives::all_to_all(bytes, self.env.ep, link)
    }

    /// Exposed (non-overlapped) context-exchange communication per pass.
    fn exchange_comm(&self, mb: u32, tokens: f64) -> f64 {
        let n_mb = self.sched.slices_of(mb as usize);
        if !self.env.exchange || n_mb <= 1 {
            return 0.0;
        }
        let m = &self.env.model;
        let nic = self.env.cluster.nic;
        // One chunk pass exchanges context for its own layers only.
        let layers = self.layers_per_chunk();
        // Q out + O back, per the chunk's layer share, always on the
        // critical path (they exist only when the pass runs).
        let qo = 2.0 * tokens * m.hidden as f64 * BF16 * layers
            / self.env.tp as f64;
        let mut t = collectives::p2p(qo, nic);
        if !self.env.early_kv {
            // Without early exchange, the average shipped KV volume also
            // blocks: ⌊(p-1)/2⌋ slices off-juncture, ⌊(n-1)/2⌋ at junctures
            // (§4.2.3), K and V each. §4.2.3's count is an *average over
            // the round structure*, so the chunk size here is the mean
            // slice length — the moved chunks are other (for non-uniform
            // policies: differently-sized) slices' caches, not the current
            // slice's.
            let (p, n) = (self.sched.devices as f64, n_mb as f64);
            let avg_slices = (((self.sched.devices - 1) / 2) as f64 * (n - p + 1.0)
                + ((n_mb - 1) / 2) as f64 * (p - 1.0))
                / n;
            let mean_tokens = self.env.seq_of(mb as usize) as f64 / n / self.env.cp as f64;
            let kv = 2.0
                * avg_slices
                * mean_tokens
                * m.kv_hidden() as f64
                * BF16
                * layers
                / self.env.tp as f64;
            t += collectives::p2p(kv, nic);
        }
        t
    }

    /// Output-layer compute added to this op, if any. Returns
    /// `(flops, broadcast_seconds)`.
    fn output_layer_share(&self, device: usize, op: &WorkItem) -> (f64, f64) {
        let m = &self.env.model;
        let tokens = self.unit_tokens(op.mb, op.slice).round() as u64;
        if self.env.vocab_parallel {
            // Distributed over all p devices: each device contributes its
            // share when the unit passes through its last local chunk.
            if op.chunk as usize != self.sched.chunks - 1 {
                return (0.0, 0.0);
            }
            let cost = output_layer_cost(m, tokens, self.env.tp, self.sched.devices, true);
            let bcast = collectives::broadcast(
                cost.broadcast_bytes,
                self.sched.devices,
                self.env.cluster.nic,
            );
            (cost.flops_per_device, bcast)
        } else {
            // Classic: everything on the device hosting the last stage.
            let last = self.sched.num_stages() - 1;
            if self.sched.stage_of(device, op.chunk as usize) != last {
                return (0.0, 0.0);
            }
            let cost = output_layer_cost(m, tokens, self.env.tp, self.sched.devices, false);
            (cost.flops_per_device, 0.0)
        }
    }

    /// Cost of one work item on `device`.
    pub fn op_cost(&self, device: usize, op: &WorkItem) -> OpCost {
        let env = self.env;
        let m = &env.model;
        let layers = self.layers_per_chunk();
        let tokens = self.unit_tokens(op.mb, op.slice);
        let pairs = self.unit_pairs(op.mb, op.slice);
        let lf = m.layer_fwd_flops(tokens.round() as u64, pairs.round() as u128);
        let gemm_f = lf.gemm * layers / env.tp as f64;
        let attn_f = lf.attn * layers / env.tp as f64;
        let peak = env.cluster.gpu.peak_flops;
        let mean_kv = if tokens > 0.0 { pairs / tokens } else { 0.0 };
        let (out_flops, out_bcast) = self.output_layer_share(device, op);

        let fwd_compute = |effphase: Phase| -> f64 {
            env.eff.op_time(OpClass::Gemm, effphase, gemm_f, tokens, peak)
                + env.eff.op_time(OpClass::Attention, effphase, attn_f, mean_kv, peak)
        };

        let duration = match op.kind {
            PassKind::Forward => {
                fwd_compute(Phase::Forward)
                    + env.eff.op_time(OpClass::Gemm, Phase::Forward, out_flops, tokens, peak)
                    + out_bcast
                    + layers
                        * (self.tp_comm_per_layer(tokens) + self.cp_comm_per_layer(tokens)
                            + self.ep_comm_per_layer(tokens))
                        * (1.0 - env.comm_overlap)
                    + layers * env.eff.layer_overhead(Phase::Forward)
                    + self.exchange_comm(op.mb, tokens)
            }
            PassKind::Backward => {
                let (gemm_mult, attn_mult) = if self.sched.split_backward {
                    // Input-grad half: dX GEMMs (1×) + full attention bwd (2×).
                    (1.0, 2.0)
                } else {
                    (2.0, 2.0)
                };
                let recompute = m.recompute_fraction(env.ckpt) * fwd_compute(Phase::Forward);
                env.eff.op_time(OpClass::Gemm, Phase::Backward, gemm_f * gemm_mult, tokens, peak)
                    + env.eff.op_time(
                        OpClass::Attention,
                        Phase::Backward,
                        attn_f * attn_mult,
                        mean_kv,
                        peak,
                    )
                    + env.eff.op_time(
                        OpClass::Gemm,
                        Phase::Backward,
                        out_flops * 2.0,
                        tokens,
                        peak,
                    )
                    + recompute
                    + layers
                        * (self.tp_comm_per_layer(tokens) + self.cp_comm_per_layer(tokens)
                            + self.ep_comm_per_layer(tokens))
                        * (1.0 - env.comm_overlap)
                    + layers * env.eff.layer_overhead(Phase::Backward)
                    + self.exchange_comm(op.mb, tokens)
            }
            PassKind::BackwardWeight => {
                // Weight-grad half: dW GEMMs only (attention has no weights).
                env.eff.op_time(OpClass::Gemm, Phase::Backward, gemm_f, tokens, peak)
                    + layers * env.eff.layer_overhead(Phase::Forward)
            }
        };

        // Boundary tensor shipped to the adjacent stage (SP-sharded).
        let send_bytes = match op.kind {
            PassKind::BackwardWeight => 0.0,
            _ => tokens * m.hidden as f64 * BF16 / env.tp as f64,
        };
        OpCost { duration, send_bytes }
    }

    /// Link used between adjacent pipeline stages.
    pub fn pipeline_link(&self) -> slimpipe_cluster::Link {
        self.env
            .cluster
            .pipeline_link(self.env.tp * self.env.cp * self.env.ep.max(1))
    }
}

impl UnitCostModel for CostModel<'_> {
    fn schedule(&self) -> &Schedule {
        self.sched
    }

    fn op_cost(&self, device: usize, op: &WorkItem) -> OpCost {
        CostModel::op_cost(self, device, op)
    }

    fn pipeline_link(&self) -> slimpipe_cluster::Link {
        CostModel::pipeline_link(self)
    }

    fn edge_overlap(&self, _src: usize, _dst: usize) -> f64 {
        self.env.pipeline_overlap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimpipe_model::ModelConfig;

    fn env() -> PipelineEnv {
        PipelineEnv::test_default(ModelConfig::llama_13b(), 131_072)
    }

    #[test]
    fn backward_costs_more_than_forward() {
        let env = env();
        let sched = slimpipe_sched::onefoneb::generate(4, 4).unwrap();
        let cm = CostModel::new(&sched, &env);
        let f = cm.op_cost(1, &WorkItem::f(0, 0, 0)).duration;
        let b = cm.op_cost(1, &WorkItem::b(0, 0, 0)).duration;
        assert!(b > 1.5 * f, "f={f} b={b}");
    }

    #[test]
    fn without_exchange_later_slices_cost_more() {
        let mut e = env();
        e.exchange = false;
        let sched = slimpipe_core::schedule::generate(4, 2, 8).unwrap();
        let cm = CostModel::new(&sched, &e);
        let first = cm.op_cost(0, &WorkItem::f(0, 0, 0)).duration;
        let last = cm.op_cost(0, &WorkItem::f(0, 7, 0)).duration;
        assert!(last > 1.3 * first, "first={first} last={last}");
    }

    #[test]
    fn with_exchange_slice_costs_are_equal() {
        let e = env();
        let sched = slimpipe_core::schedule::generate(4, 2, 8).unwrap();
        let cm = CostModel::new(&sched, &e);
        let first = cm.op_cost(0, &WorkItem::f(0, 0, 0)).duration;
        let last = cm.op_cost(0, &WorkItem::f(0, 7, 0)).duration;
        assert!((last - first).abs() / first < 1e-9);
    }

    #[test]
    fn full_ckpt_backward_includes_a_forward_replay() {
        let mut e = env();
        let sched = slimpipe_sched::onefoneb::generate(4, 4).unwrap();
        e.ckpt = Checkpoint::None;
        let b_plain = CostModel::new(&sched, &e).op_cost(0, &WorkItem::b(0, 0, 0)).duration;
        e.ckpt = Checkpoint::Full;
        let b_ckpt = CostModel::new(&sched, &e).op_cost(0, &WorkItem::b(0, 0, 0)).duration;
        assert!(b_ckpt > b_plain * 1.2, "plain={b_plain} ckpt={b_ckpt}");
    }

    #[test]
    fn weight_half_is_cheapest_at_long_context() {
        // §2.2: T_w = 0 for attention, so at long context W ≪ B.
        let e = PipelineEnv::test_default(ModelConfig::llama_13b(), 262_144);
        let sched = slimpipe_sched::zbv::generate_zbv(
            4,
            4,
            slimpipe_sched::zbv::ZbCosts::default(),
        )
        .unwrap();
        let cm = CostModel::new(&sched, &e);
        let b = cm.op_cost(0, &WorkItem::b(0, 0, 0)).duration;
        let w = cm.op_cost(0, &WorkItem::w(0, 0, 0)).duration;
        assert!(w < 0.4 * b, "b={b} w={w}");
    }

    #[test]
    fn vocab_parallel_moves_output_off_last_device() {
        // Short context: the vocabulary GEMM is a large share of a pass
        // (§3 — the imbalance is worst when attention doesn't dominate).
        let mut e = PipelineEnv::test_default(ModelConfig::llama_13b(), 32_768);
        let sched = slimpipe_sched::onefoneb::generate(4, 4).unwrap();
        e.vocab_parallel = false;
        let cm = CostModel::new(&sched, &e);
        let f_first = cm.op_cost(0, &WorkItem::f(0, 0, 0)).duration;
        let f_last = cm.op_cost(3, &WorkItem::f(0, 0, 0)).duration;
        assert!(
            f_last > 1.05 * f_first,
            "last device should carry the GEMM: first={f_first} last={f_last}"
        );
        e.vocab_parallel = true;
        let cm = CostModel::new(&sched, &e);
        let f_first = cm.op_cost(0, &WorkItem::f(0, 0, 0)).duration;
        let f_last = cm.op_cost(3, &WorkItem::f(0, 0, 0)).duration;
        assert!((f_last - f_first).abs() / f_first < 0.05);
    }
}
