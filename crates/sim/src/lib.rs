//! Discrete-event simulator: executes any pipeline [`Schedule`] against the
//! model and cluster cost models and reports makespan, per-device busy
//! time, bubble fraction, and peak memory.
//!
//! This is the stand-in for the paper's 128–512-GPU testbed (DESIGN.md §1):
//! the *schedules* are exactly the ones the systems would run, the costs
//! come from one shared FLOPs/bytes model, and every scheme flows through
//! the same engine — so relative comparisons (scheme ordering, crossover
//! points, OOM boundaries) are preserved even though absolute seconds are
//! synthetic.
//!
//! [`Schedule`]: slimpipe_sched::Schedule

pub mod cost;
pub mod engine;
pub mod memory;
pub mod metrics;

pub use cost::{CostModel, OpCost, PipelineEnv, UnitCostModel};
pub use engine::{simulate, SimReport};
