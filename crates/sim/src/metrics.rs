//! Derived metrics: bubble fraction and MFU.

/// The paper's bubble fraction: idle share of the `p × makespan` area.
pub fn bubble_fraction(busy: &[f64], makespan: f64) -> f64 {
    if makespan <= 0.0 || busy.is_empty() {
        return 0.0;
    }
    let total_busy: f64 = busy.iter().sum();
    (1.0 - total_busy / (busy.len() as f64 * makespan)).max(0.0)
}

/// Model FLOPs Utilisation: `model_flops / (time · gpus · peak)`.
pub fn mfu(model_flops: f64, time: f64, gpus: usize, peak_flops: f64) -> f64 {
    if time <= 0.0 || gpus == 0 || peak_flops <= 0.0 {
        return 0.0;
    }
    model_flops / (time * gpus as f64 * peak_flops)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_busy_has_zero_bubble() {
        assert_eq!(bubble_fraction(&[2.0, 2.0], 2.0), 0.0);
    }

    #[test]
    fn half_idle_has_half_bubble() {
        assert!((bubble_fraction(&[1.0, 1.0], 2.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mfu_is_dimensionally_sane() {
        // 1 PFLOP of model math in 1 s on 1 GPU of 2 PFLOP/s peak = 50 %.
        assert!((mfu(1e15, 1.0, 1, 2e15) - 0.5).abs() < 1e-12);
        assert_eq!(mfu(1e15, 0.0, 1, 2e15), 0.0);
    }

    #[test]
    fn zero_makespan_and_empty_busy_report_zero_bubble() {
        // Degenerate timelines (a run that recorded nothing, a simulated
        // schedule with no ops) must read as "no bubble", never NaN/inf.
        assert_eq!(bubble_fraction(&[1.0, 2.0], 0.0), 0.0);
        assert_eq!(bubble_fraction(&[1.0], -3.0), 0.0);
        assert_eq!(bubble_fraction(&[], 5.0), 0.0);
        assert_eq!(bubble_fraction(&[], 0.0), 0.0);
    }

    #[test]
    fn busy_exceeding_the_area_clamps_at_zero_bubble() {
        // Measured busy can exceed p × makespan (overlapping spans);
        // the fraction clamps instead of going negative.
        assert_eq!(bubble_fraction(&[3.0, 3.0], 2.0), 0.0);
    }

    #[test]
    fn mfu_guards_every_degenerate_denominator() {
        assert_eq!(mfu(1e15, 1.0, 0, 2e15), 0.0, "zero gpus");
        assert_eq!(mfu(1e15, -1.0, 1, 2e15), 0.0, "negative time");
        assert_eq!(mfu(1e15, 1.0, 1, 0.0), 0.0, "zero peak");
    }
}
