//! The discrete-event engine: schedules every op at the earliest time its
//! device is free and its pipeline dependencies (plus transfer latency)
//! have arrived.
//!
//! Devices execute their op lists strictly in order (the static-schedule
//! contract); cross-device edges add a point-to-point transfer on the
//! pipeline link. The fixed point is computed by iterative relaxation —
//! the dependency graph is acyclic for any schedule accepted by
//! `slimpipe_sched::validate`, so the loop terminates in at most
//! `total_ops` rounds.

use crate::cost::UnitCostModel;
use crate::metrics;
use slimpipe_sched::PassKind;
use std::collections::HashMap;

/// Result of simulating one iteration's pipeline portion.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// End-to-end time of the pipeline portion of one iteration (seconds).
    pub makespan: f64,
    /// Busy seconds per device.
    pub busy: Vec<f64>,
    /// `1 − Σ busy / (p · makespan)` — the paper's bubble fraction.
    pub bubble_fraction: f64,
    /// Per-op start/finish times (device-major, schedule order).
    pub timeline: Vec<Vec<(f64, f64)>>,
    pub total_ops: usize,
}

impl SimReport {
    /// Per-device idle fraction.
    pub fn idle_fraction(&self, d: usize) -> f64 {
        1.0 - self.busy[d] / self.makespan
    }
}

/// Simulate a schedule under any [`UnitCostModel`] — the analytic cluster
/// model ([`crate::CostModel`]) or a calibrated profile of the real
/// executor kernels (the planner's).
pub fn simulate<C: UnitCostModel + ?Sized>(cm: &C) -> SimReport {
    let sched = cm.schedule();
    let p = sched.devices;
    let link = cm.pipeline_link();
    // finish[(kind, stage, mb, slice)] = (finish_time, device)
    let mut finish: HashMap<(PassKind, usize, u32, u32), (f64, usize)> = HashMap::new();
    let mut pc = vec![0usize; p];
    let mut dev_time = vec![0.0f64; p];
    let mut busy = vec![0.0f64; p];
    let mut timeline: Vec<Vec<(f64, f64)>> = sched
        .ops
        .iter()
        .map(|ops| Vec::with_capacity(ops.len()))
        .collect();
    let total: usize = sched.ops.iter().map(|o| o.len()).sum();
    let mut done = 0usize;
    let last_stage = sched.num_stages() - 1;

    // Earliest time all dependencies of op (on device d) are available,
    // or None if some dependency has not been scheduled yet.
    let dep_time = |d: usize,
                    op: &slimpipe_sched::WorkItem,
                    finish: &HashMap<(PassKind, usize, u32, u32), (f64, usize)>|
     -> Option<f64> {
        let stage = sched.stage_of(d, op.chunk as usize);
        let arrival = |key: (PassKind, usize, u32, u32), cross_comm: bool| -> Option<f64> {
            let &(t, src) = finish.get(&key)?;
            Some(if cross_comm && src != d {
                // Overlapped edges hide part of the transfer behind the
                // sender's next compute; only the exposed share blocks.
                let exposed = (1.0 - cm.edge_overlap(src, d)).clamp(0.0, 1.0);
                t + exposed * link.transfer(cm.op_cost(src, op).send_bytes)
            } else {
                t
            })
        };
        match op.kind {
            PassKind::Forward => {
                let mut t = 0.0f64;
                if stage > 0 {
                    t = t.max(arrival((PassKind::Forward, stage - 1, op.mb, op.slice), true)?);
                }
                if op.slice > 0 {
                    t = t.max(arrival(
                        (PassKind::Forward, stage, op.mb, op.slice - 1),
                        false,
                    )?);
                }
                Some(t)
            }
            PassKind::Backward => {
                let mut t =
                    arrival((PassKind::Forward, stage, op.mb, op.slice), false)?;
                if stage < last_stage {
                    t = t.max(arrival((PassKind::Backward, stage + 1, op.mb, op.slice), true)?);
                }
                if op.slice + 1 < sched.slices_of(op.mb as usize) as u32 {
                    t = t.max(arrival(
                        (PassKind::Backward, stage, op.mb, op.slice + 1),
                        false,
                    )?);
                }
                Some(t)
            }
            PassKind::BackwardWeight => {
                arrival((PassKind::Backward, stage, op.mb, op.slice), false)
            }
        }
    };

    while done < total {
        let mut progress = false;
        for d in 0..p {
            while pc[d] < sched.ops[d].len() {
                let op = sched.ops[d][pc[d]];
                let Some(ready) = dep_time(d, &op, &finish) else { break };
                let start = dev_time[d].max(ready);
                let cost = cm.op_cost(d, &op);
                let end = start + cost.duration;
                dev_time[d] = end;
                busy[d] += cost.duration;
                timeline[d].push((start, end));
                let stage = sched.stage_of(d, op.chunk as usize);
                finish.insert((op.kind, stage, op.mb, op.slice), (end, d));
                pc[d] += 1;
                done += 1;
                progress = true;
            }
        }
        assert!(
            progress,
            "simulation deadlock in '{}' — schedule not validated?",
            sched.name
        );
    }

    let makespan = dev_time.iter().copied().fold(0.0, f64::max);
    let bubble_fraction = metrics::bubble_fraction(&busy, makespan);
    SimReport { makespan, busy, bubble_fraction, timeline, total_ops: total }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{CostModel, PipelineEnv};
    use slimpipe_model::ModelConfig;

    fn env(seq: u64) -> PipelineEnv {
        PipelineEnv::test_default(ModelConfig::llama_13b(), seq)
    }

    #[test]
    fn single_device_has_no_bubble() {
        let e = env(65_536);
        let sched = slimpipe_sched::onefoneb::generate(1, 4).unwrap();
        let r = simulate(&CostModel::new(&sched, &e));
        assert!(r.bubble_fraction.abs() < 1e-9);
    }

    #[test]
    fn gpipe_bubble_shrinks_with_more_microbatches() {
        let e = env(65_536);
        let few = simulate(&CostModel::new(
            &slimpipe_sched::gpipe::generate(4, 4).unwrap(),
            &e,
        ));
        let many = simulate(&CostModel::new(
            &slimpipe_sched::gpipe::generate(4, 16).unwrap(),
            &e,
        ));
        assert!(many.bubble_fraction < few.bubble_fraction);
        // Roughly (p-1)/(m+p-1): 3/7 ≈ 0.43 and 3/19 ≈ 0.16.
        assert!((few.bubble_fraction - 0.43).abs() < 0.12, "{}", few.bubble_fraction);
    }

    #[test]
    fn slimpipe_bubble_is_far_below_1f1b() {
        let e = env(262_144);
        let m = 4;
        let p = 4;
        let ofob = simulate(&CostModel::new(
            &slimpipe_sched::onefoneb::generate(p, m).unwrap(),
            &e,
        ));
        let slim = simulate(&CostModel::new(
            &slimpipe_core::schedule::generate(p, m, 4 * p).unwrap(),
            &e,
        ));
        assert!(
            slim.bubble_fraction < 0.4 * ofob.bubble_fraction,
            "slim={} 1f1b={}",
            slim.bubble_fraction,
            ofob.bubble_fraction
        );
    }

    #[test]
    fn disabling_exchange_creates_imbalance_bubbles() {
        let mut e = env(262_144);
        let sched = slimpipe_core::schedule::generate(4, 4, 16).unwrap();
        e.exchange = true;
        let balanced = simulate(&CostModel::new(&sched, &e));
        e.exchange = false;
        let imbalanced = simulate(&CostModel::new(&sched, &e));
        assert!(
            imbalanced.bubble_fraction > balanced.bubble_fraction + 0.02,
            "balanced={} imbalanced={}",
            balanced.bubble_fraction,
            imbalanced.bubble_fraction
        );
    }

    #[test]
    fn makespan_dominates_critical_path() {
        let e = env(131_072);
        let sched = slimpipe_sched::onefoneb::generate(4, 8).unwrap();
        let r = simulate(&CostModel::new(&sched, &e));
        for d in 0..4 {
            assert!(r.busy[d] <= r.makespan + 1e-9);
        }
        assert_eq!(r.total_ops, 4 * 16);
        // Timelines are monotone per device.
        for tl in &r.timeline {
            for w in tl.windows(2) {
                assert!(w[1].0 >= w[0].1 - 1e-9);
            }
        }
    }

    #[test]
    fn overlapped_edges_never_lengthen_the_makespan() {
        let mut e = env(131_072);
        let sched = slimpipe_sched::onefoneb::generate(4, 8).unwrap();
        e.pipeline_overlap = 0.0;
        let serial = simulate(&CostModel::new(&sched, &e));
        e.pipeline_overlap = 1.0;
        let overlapped = simulate(&CostModel::new(&sched, &e));
        assert!(
            overlapped.makespan <= serial.makespan + 1e-9,
            "overlap must never cost time: overlapped={} serialized={}",
            overlapped.makespan,
            serial.makespan
        );
        // Edge transfers sit on 1F1B's warmup critical path, so full
        // overlap must actually buy something.
        assert!(
            overlapped.makespan < serial.makespan,
            "fully hidden edges should shorten the 1F1B critical path"
        );
    }

    #[test]
    fn zbv_suffers_at_long_context() {
        // Figure 3's story: ZB-V's W-filling cannot absorb attention-heavy
        // backwards; SlimPipe stays near zero.
        let e = env(262_144);
        let zbv = simulate(&CostModel::new(
            &slimpipe_sched::zbv::generate_zbv(4, 4, slimpipe_sched::zbv::ZbCosts::default())
                .unwrap(),
            &e,
        ));
        let slim = simulate(&CostModel::new(
            &slimpipe_core::schedule::generate(4, 4, 16).unwrap(),
            &e,
        ));
        assert!(
            slim.bubble_fraction < zbv.bubble_fraction,
            "slim={} zbv={}",
            slim.bubble_fraction,
            zbv.bubble_fraction
        );
    }
}
