//! Hybrid parallelism systems: composing TP(+SP), CP, EP, DP(ZeRO) with
//! pipeline parallelism, assembling per-device memory, estimating
//! end-to-end iteration time, and grid-searching configurations exactly the
//! way the paper bakes them (§6.4: "their hybrid parallelism configurations
//! are baked through grid search").
//!
//! Three *systems* are modelled, matching Figure 12's contenders:
//!
//! * **SlimPipe** — this paper: slice-wise 1F1B + context exchange +
//!   vocabulary parallelism, composed with TP/CP/EP/DP.
//! * **Megatron-LM** — interleaved (or plain) 1F1B with the same
//!   TP/CP/EP/DP substrate, no slicing, output layer on the last stage.
//! * **DeepSpeed** — ZeRO-3 + Ulysses sequence parallelism (no pipeline),
//!   with the paper's feasibility constraints (UP ≤ query groups, DP ≤
//!   batch).

pub mod config;
pub mod deepspeed;
pub mod dp;
pub mod estimate;
pub mod memory;
pub mod search;

pub use config::{ParallelConfig, SchemeKind, SystemKind};
pub use estimate::{estimate, Estimate, EstimateError};
pub use search::{best_config, SearchOutcome};
