//! Per-device memory assembly: model states + activations + logits.

use crate::config::ParallelConfig;
use slimpipe_model::{ModelConfig, BF16};
use slimpipe_sched::Schedule;
use slimpipe_sim::cost::PipelineEnv;

/// Model-state bytes on one device of pipeline rank `rank`.
///
/// * transformer layers shard by `pp` (layers), `tp` (within layer), and
///   for MoE the expert weights additionally by `ep`;
/// * the tied embedding/output weight lives on the first and last pipeline
///   devices (Megatron) or is spread over all `p` with vocabulary
///   parallelism;
/// * per-parameter state bytes follow `ModelConfig::state_bytes_per_param`
///   (bf16 weight + fp32 grad + Adam states sharded by `dp`).
pub fn device_state_bytes(
    model: &ModelConfig,
    cfg: &ParallelConfig,
    vocab_parallel: bool,
    rank: usize,
) -> f64 {
    let dense_layer = model.layer_params() - model.layer_expert_params();
    let expert_layer = model.layer_expert_params();
    let layers_here = model.layers as f64 / cfg.pp as f64;
    let mut params = layers_here
        * (dense_layer / cfg.tp as f64 + expert_layer / (cfg.tp * cfg.ep) as f64);
    let embed = model.embedding_params() / cfg.tp as f64;
    if vocab_parallel {
        params += embed / cfg.pp as f64;
    } else if rank == 0 || rank == cfg.pp - 1 {
        params += embed;
    }
    params * ModelConfig::state_bytes_per_param(cfg.dp)
}

/// KV-cache bytes shipped around by context exchange are transient; the
/// persistent per-device total is states + resident activations + logits.
pub fn device_total_bytes(
    model: &ModelConfig,
    cfg: &ParallelConfig,
    sched: &Schedule,
    env: &PipelineEnv,
    rank: usize,
) -> f64 {
    let states = device_state_bytes(model, cfg, env.vocab_parallel, rank);
    let act = slimpipe_sim::memory::device_peak_act_bytes(sched, env, rank)
        * (1.0 - cfg.offload);
    let logits = slimpipe_sim::memory::device_peak_logits_bytes(sched, env, rank);
    // Pipeline boundary send/recv staging buffers (double-buffered).
    let staging = 4.0 * env.seq as f64 / sched.slices as f64 * model.hidden as f64 * BF16
        / env.tp as f64;
    states + act + logits + staging
}

/// Worst device total and its rank.
pub fn worst_device_bytes(
    model: &ModelConfig,
    cfg: &ParallelConfig,
    sched: &Schedule,
    env: &PipelineEnv,
) -> (f64, usize) {
    (0..cfg.pp)
        .map(|r| (device_total_bytes(model, cfg, sched, env, r), r))
        .fold((0.0, 0), |acc, x| if x.0 > acc.0 { x } else { acc })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SchemeKind;
    use slimpipe_model::{Checkpoint, GIB};

    fn cfg(pp: usize, scheme: SchemeKind) -> ParallelConfig {
        ParallelConfig {
            tp: 8,
            cp: 1,
            ep: 1,
            dp: 1,
            pp,
            scheme,
            ckpt: Checkpoint::None,
            offload: 0.0,
        }
    }

    #[test]
    fn states_shrink_with_pipeline_size() {
        let m = ModelConfig::llama_70b();
        let c2 = cfg(2, SchemeKind::OneFOneB);
        let c8 = cfg(8, SchemeKind::OneFOneB);
        let s2 = device_state_bytes(&m, &c2, false, 1);
        let s8 = device_state_bytes(&m, &c8, false, 1);
        assert!(s2 / s8 > 3.5, "states should scale ~1/p: {} vs {}", s2, s8);
    }

    #[test]
    fn moe_experts_shard_by_ep() {
        let m = ModelConfig::mixtral_8x7b();
        let mut c = cfg(4, SchemeKind::OneFOneB);
        let dense = device_state_bytes(&m, &c, false, 1);
        c.ep = 8;
        let sharded = device_state_bytes(&m, &c, false, 1);
        assert!(dense / sharded > 5.0, "{dense} vs {sharded}");
    }

    #[test]
    fn embedding_lands_on_edge_devices_without_vp() {
        let m = ModelConfig::llama_13b();
        let c = cfg(4, SchemeKind::OneFOneB);
        let edge = device_state_bytes(&m, &c, false, 0);
        let mid = device_state_bytes(&m, &c, false, 1);
        assert!(edge > mid);
        // With vocabulary parallelism every device gets an equal share.
        let vp0 = device_state_bytes(&m, &c, true, 0);
        let vp1 = device_state_bytes(&m, &c, true, 1);
        assert_eq!(vp0, vp1);
    }

    #[test]
    fn offload_reduces_resident_activation() {
        let model = ModelConfig::llama_13b();
        let mut c = cfg(4, SchemeKind::SlimPipe { n: 8, v: 1 });
        let sched = c.scheme.build(4, 2).unwrap();
        let mut env = PipelineEnv::test_default(model.clone(), 131_072);
        env.tp = c.tp;
        let full = device_total_bytes(&model, &c, &sched, &env, 0);
        c.offload = 0.8;
        let off = device_total_bytes(&model, &c, &sched, &env, 0);
        assert!(off < full);
        assert!(full / GIB > 0.0);
    }
}
