//! Parallelism configuration: the `(t, c, e, d, p)` tuple of the paper's
//! Table 4 plus the scheme-specific knobs.

use slimpipe_model::{Checkpoint, ModelConfig};
use slimpipe_sched::{Schedule, ScheduleError};

/// Which pipeline scheme (and its knobs) a configuration runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchemeKind {
    GPipe,
    OneFOneB,
    /// Megatron interleaved 1F1B with `v` chunks per device.
    Interleaved { v: usize },
    /// TeraPipe-style token-level GPipe with `n` slices.
    TeraPipe { n: usize },
    ZbV,
    VHalf,
    /// SlimPipe with `n` slices and `v` chunks per device.
    SlimPipe { n: usize, v: usize },
}

impl SchemeKind {
    /// Generate the schedule for `p` devices and `m` microbatches.
    pub fn build(&self, p: usize, m: usize) -> Result<Schedule, ScheduleError> {
        match *self {
            SchemeKind::GPipe => slimpipe_sched::gpipe::generate(p, m),
            SchemeKind::OneFOneB => slimpipe_sched::onefoneb::generate(p, m),
            SchemeKind::Interleaved { v } => slimpipe_sched::interleaved::generate(p, v, m),
            SchemeKind::TeraPipe { n } => slimpipe_sched::terapipe::generate(p, m, n),
            SchemeKind::ZbV => slimpipe_sched::zbv::generate_zbv(
                p,
                m,
                slimpipe_sched::zbv::ZbCosts::default(),
            ),
            SchemeKind::VHalf => slimpipe_sched::zbv::generate_vhalf(
                p,
                m,
                slimpipe_sched::zbv::ZbCosts::default(),
            ),
            SchemeKind::SlimPipe { n, v } => slimpipe_core::interleaved::generate(p, v, m, n),
        }
    }

    /// Whether this is the paper's scheme (enables context exchange and
    /// vocabulary parallelism in the environment).
    pub fn is_slim(&self) -> bool {
        matches!(self, SchemeKind::SlimPipe { .. })
    }

    pub fn name(&self) -> &'static str {
        match self {
            SchemeKind::GPipe => "GPipe",
            SchemeKind::OneFOneB => "Default 1F1B",
            SchemeKind::Interleaved { .. } => "Interleaved 1F1B",
            SchemeKind::TeraPipe { .. } => "TeraPipe",
            SchemeKind::ZbV => "ZB-V",
            SchemeKind::VHalf => "V-Half",
            SchemeKind::SlimPipe { .. } => "SlimPipe",
        }
    }
}

/// The systems compared in Figure 12.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SystemKind {
    SlimPipe,
    MegatronLM,
    DeepSpeed,
}

impl SystemKind {
    pub fn name(&self) -> &'static str {
        match self {
            SystemKind::SlimPipe => "SlimPipe",
            SystemKind::MegatronLM => "Megatron-LM",
            SystemKind::DeepSpeed => "DeepSpeed",
        }
    }
}

/// One fully specified hybrid-parallel configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ParallelConfig {
    /// Tensor parallelism `t` (with sequence parallelism).
    pub tp: usize,
    /// Context parallelism `c`.
    pub cp: usize,
    /// Expert parallelism `e` (1 for dense models).
    pub ep: usize,
    /// Data parallelism `d`.
    pub dp: usize,
    /// Pipeline parallelism `p`.
    pub pp: usize,
    pub scheme: SchemeKind,
    pub ckpt: Checkpoint,
    /// Fraction of activations offloaded to host memory (§6.5).
    pub offload: f64,
}

impl ParallelConfig {
    /// Total GPUs: `t·c·d·p`. Expert parallelism does not multiply the
    /// count — experts shard across the CP×DP ranks (Megatron's design,
    /// and how the paper's Table 4 rows like `t=1, c=16, e=8, p=16` sum to
    /// 256 GPUs).
    pub fn gpus(&self) -> usize {
        self.tp * self.cp * self.dp * self.pp
    }

    /// Microbatches per DP rank per iteration for a fixed token budget:
    /// each microbatch is one sequence of `seq` tokens.
    pub fn microbatches(&self, tokens_per_iter: u64, seq: u64) -> Option<usize> {
        if !tokens_per_iter.is_multiple_of(seq) {
            return None;
        }
        let batch = tokens_per_iter / seq;
        if !batch.is_multiple_of(self.dp as u64) {
            return None;
        }
        let m = batch / self.dp as u64;
        (m >= 1).then_some(m as usize)
    }

    /// Architecture-level validity: head/group/layer divisibility and the
    /// paper's deployment rules (TP within a node).
    pub fn valid_for(&self, model: &ModelConfig, gpus_per_node: usize) -> bool {
        let v = match self.scheme {
            SchemeKind::Interleaved { v } | SchemeKind::SlimPipe { v, .. } => v,
            _ => 1,
        };
        self.tp <= gpus_per_node
            && model.heads.is_multiple_of(self.tp)
            && model.query_groups.is_multiple_of(self.tp)
            && model.layers.is_multiple_of(self.pp * v)
            && (self.ep == 1
                || (model.is_moe()
                    && model.expert_count().is_multiple_of(self.ep)
                    && (self.cp * self.dp).is_multiple_of(self.ep)))
            && match self.scheme {
                SchemeKind::SlimPipe { n, .. } => n % self.pp == 0,
                SchemeKind::TeraPipe { n } => n >= 1,
                _ => true,
            }
    }

    /// Compact `t·c·e·d·p` rendering for tables.
    pub fn describe(&self) -> String {
        format!(
            "t={} c={} e={} d={} p={} {} ckpt={:?} offload={:.0}%",
            self.tp,
            self.cp,
            self.ep,
            self.dp,
            self.pp,
            self.scheme.name(),
            self.ckpt,
            self.offload * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> ParallelConfig {
        ParallelConfig {
            tp: 8,
            cp: 1,
            ep: 1,
            dp: 2,
            pp: 4,
            scheme: SchemeKind::SlimPipe { n: 8, v: 2 },
            ckpt: Checkpoint::None,
            offload: 0.0,
        }
    }

    #[test]
    fn gpu_accounting_excludes_expert_parallelism() {
        assert_eq!(base().gpus(), 64);
        let mut c = base();
        c.ep = 8; // experts shard across cp·dp ranks, no extra GPUs
        assert_eq!(c.gpus(), 64);
    }

    #[test]
    fn microbatch_accounting() {
        let c = base();
        // 4M tokens at 512K → 8 sequences; dp=2 → 4 per rank.
        assert_eq!(c.microbatches(4 << 20, 512 << 10), Some(4));
        // dp does not divide batch → None.
        let mut c2 = base();
        c2.dp = 3;
        assert_eq!(c2.microbatches(4 << 20, 512 << 10), None);
    }

    #[test]
    fn validity_rules() {
        let m = ModelConfig::llama_70b(); // 80 layers, 64 heads, 8 groups
        let mut c = base();
        assert!(c.valid_for(&m, 8));
        c.tp = 16; // beyond the node
        assert!(!c.valid_for(&m, 8));
        c.tp = 8;
        c.pp = 3; // 80 % (3·2) != 0
        assert!(!c.valid_for(&m, 8));
        // GQA: 13B has 40 groups → tp=8 divides 40? No (40 % 8 = 0) — yes it does.
        let m13 = ModelConfig::llama_13b();
        c = base();
        assert!(c.valid_for(&m13, 8));
    }

    #[test]
    fn schemes_build_through_the_kind() {
        for k in [
            SchemeKind::GPipe,
            SchemeKind::OneFOneB,
            SchemeKind::Interleaved { v: 2 },
            SchemeKind::TeraPipe { n: 8 },
            SchemeKind::ZbV,
            SchemeKind::VHalf,
            SchemeKind::SlimPipe { n: 8, v: 2 },
        ] {
            let s = k.build(4, 4).unwrap();
            slimpipe_sched::validate(&s).unwrap_or_else(|e| panic!("{k:?}: {e}"));
        }
    }
}
