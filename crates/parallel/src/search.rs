//! Configuration grid search — the paper's §6.4: "To exhibit the best
//! performance of each system, their hybrid parallelism configurations are
//! baked through grid search."

use crate::config::{ParallelConfig, SchemeKind, SystemKind};
use crate::deepspeed::estimate_deepspeed;
use crate::estimate::{estimate, Estimate, EstimateError};
use slimpipe_cluster::Cluster;
use slimpipe_model::{Checkpoint, ModelConfig};

/// Search result for one (system, model, seq, gpus) cell of Figure 12.
#[derive(Clone, Debug)]
pub enum SearchOutcome {
    /// Best configuration found and its estimate.
    Found(Box<Estimate>),
    /// Valid partitions exist but all exceed device memory — the red ✗.
    Oom,
    /// No valid partition at all — the green triangle.
    NoConfig,
}

impl SearchOutcome {
    pub fn mfu(&self) -> Option<f64> {
        match self {
            SearchOutcome::Found(e) => Some(e.mfu),
            _ => None,
        }
    }
}

/// Knobs for the search.
#[derive(Clone, Debug)]
pub struct SearchOptions {
    /// Offload ratios to try (Table 4 uses up to 100 %).
    pub offload_levels: Vec<f64>,
    /// Checkpointing modes to try.
    pub ckpt_modes: Vec<Checkpoint>,
}

impl Default for SearchOptions {
    fn default() -> Self {
        Self {
            offload_levels: vec![0.0],
            ckpt_modes: vec![Checkpoint::None, Checkpoint::Selective, Checkpoint::Full],
        }
    }
}

fn divisors_of(x: usize, cap: usize) -> Vec<usize> {
    (1..=cap.min(x)).filter(|k| x.is_multiple_of(*k)).collect()
}

/// Enumerate candidate configurations for a pipeline-based system.
pub fn candidate_configs(
    model: &ModelConfig,
    system: SystemKind,
    gpus: usize,
    seq: u64,
    cluster: &Cluster,
    opts: &SearchOptions,
) -> Vec<ParallelConfig> {
    let mut out = Vec::new();
    let node = cluster.gpus_per_node;
    let tps: Vec<usize> = divisors_of(model.query_groups.min(model.heads), node)
        .into_iter()
        .filter(|&t| model.heads.is_multiple_of(t) && t <= node)
        .collect();
    let eps: Vec<usize> = if model.is_moe() {
        vec![1, model.expert_count()]
    } else {
        vec![1]
    };
    for &tp in &tps {
        for cp in [1usize, 2, 4, 8, 16] {
            if !seq.is_multiple_of(cp as u64) || tp * cp > gpus {
                continue;
            }
            let inner = tp * cp;
            if inner > gpus || !gpus.is_multiple_of(inner) {
                continue;
            }
            for pp in divisors_of(gpus / inner, 64) {
                if !model.layers.is_multiple_of(pp) {
                    continue;
                }
                let dp = gpus / (inner * pp);
                for &ep in &eps {
                    // Experts shard across the cp·dp ranks.
                    if ep > 1 && !(cp * dp).is_multiple_of(ep) {
                        continue;
                    }
                    let schemes: Vec<SchemeKind> = match system {
                        SystemKind::MegatronLM => {
                            let mut s = vec![SchemeKind::OneFOneB];
                            for v in [2usize, 4, 5, 8] {
                                if model.layers.is_multiple_of(pp * v) {
                                    s.push(SchemeKind::Interleaved { v });
                                }
                            }
                            s
                        }
                        SystemKind::SlimPipe => {
                            let mut s = Vec::new();
                            for mult in [1usize, 2, 4] {
                                let n = pp * mult;
                                if !seq.is_multiple_of(n as u64) {
                                    continue;
                                }
                                for v in [1usize, 2, 4, 5] {
                                    if model.layers.is_multiple_of(pp * v) {
                                        s.push(SchemeKind::SlimPipe { n, v });
                                    }
                                }
                            }
                            s
                        }
                        SystemKind::DeepSpeed => Vec::new(), // handled separately
                    };
                    for scheme in schemes {
                        for &ckpt in &opts.ckpt_modes {
                            for &offload in &opts.offload_levels {
                                out.push(ParallelConfig {
                                    tp,
                                    cp,
                                    ep,
                                    dp,
                                    pp,
                                    scheme,
                                    ckpt,
                                    offload,
                                });
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

/// Grid-search the best configuration of `system` for one Figure 12 cell.
pub fn best_config(
    model: &ModelConfig,
    system: SystemKind,
    gpus: usize,
    seq: u64,
    tokens_per_iter: u64,
    cluster: &Cluster,
    opts: &SearchOptions,
) -> SearchOutcome {
    let mut best: Option<Estimate> = None;
    let mut saw_oom = false;

    if system == SystemKind::DeepSpeed {
        for u in [1usize, 2, 4, 8, 16, 32] {
            if !gpus.is_multiple_of(u) {
                continue;
            }
            let d = gpus / u;
            for &ckpt in &opts.ckpt_modes {
                match estimate_deepspeed(model, u, d, ckpt, cluster, seq, tokens_per_iter) {
                    Ok(e) => {
                        if best.as_ref().is_none_or(|b| e.mfu > b.mfu) {
                            best = Some(e);
                        }
                    }
                    Err(EstimateError::Oom { .. }) => saw_oom = true,
                    Err(_) => {}
                }
            }
        }
    } else {
        for cfg in candidate_configs(model, system, gpus, seq, cluster, opts) {
            match estimate(model, &cfg, cluster, seq, tokens_per_iter) {
                Ok(e) => {
                    if best.as_ref().is_none_or(|b| e.mfu > b.mfu) {
                        best = Some(e);
                    }
                }
                Err(EstimateError::Oom { .. }) => saw_oom = true,
                Err(_) => {}
            }
        }
    }

    match best {
        Some(e) => SearchOutcome::Found(Box::new(e)),
        None if saw_oom => SearchOutcome::Oom,
        None => SearchOutcome::NoConfig,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidates_respect_divisibility() {
        let m = ModelConfig::llama_70b();
        let cl = Cluster::hopper_nvlink();
        let cands = candidate_configs(
            &m,
            SystemKind::SlimPipe,
            128,
            131_072,
            &cl,
            &SearchOptions::default(),
        );
        assert!(!cands.is_empty());
        for c in &cands {
            assert_eq!(c.gpus(), 128, "{}", c.describe());
            assert!(c.valid_for(&m, 8), "{}", c.describe());
        }
    }

    #[test]
    fn moe_candidates_include_expert_parallelism() {
        let m = ModelConfig::mixtral_8x7b();
        let cl = Cluster::hopper_nvlink();
        let cands = candidate_configs(
            &m,
            SystemKind::SlimPipe,
            128,
            131_072,
            &cl,
            &SearchOptions::default(),
        );
        assert!(cands.iter().any(|c| c.ep == 8));
    }

    #[test]
    fn search_finds_slimpipe_config_for_a_small_cell() {
        let m = ModelConfig::llama_13b();
        let cl = Cluster::hopper_nvlink();
        let opts = SearchOptions {
            ckpt_modes: vec![Checkpoint::Selective],
            ..Default::default()
        };
        let out = best_config(&m, SystemKind::SlimPipe, 32, 65_536, 4 << 20, &cl, &opts);
        let SearchOutcome::Found(e) = out else { panic!("expected a config") };
        assert!(e.mfu > 0.1, "mfu = {}", e.mfu);
    }
}
