//! Data-parallel gradient synchronisation and optimizer-step costs
//! (Megatron's distributed optimizer ≈ ZeRO-1).

use crate::config::ParallelConfig;
use crate::memory::device_state_bytes;
use slimpipe_cluster::{collectives, Cluster};
use slimpipe_model::{ModelConfig, BF16, FP32};

/// Fraction of DP communication hidden behind the pipeline cool-down /
/// next warm-up (Megatron overlaps grad reduce-scatter with backward).
const DP_OVERLAP: f64 = 0.6;

/// Non-overlapped seconds added per iteration by gradient reduce-scatter
/// and parameter all-gather across the DP group.
pub fn dp_sync_time(model: &ModelConfig, cfg: &ParallelConfig, cluster: &Cluster) -> f64 {
    if cfg.dp <= 1 {
        return 0.0;
    }
    // Local parameter bytes ≈ states at 1 byte/param resolution: recompute
    // from the states helper at bf16 weight granularity.
    let params_local = device_state_bytes(model, cfg, cfg.scheme.is_slim(), 0)
        / ModelConfig::state_bytes_per_param(cfg.dp);
    // DP spans nodes whenever the inner dims × dp exceed one node.
    let link = cluster.link_for_span(cfg.tp * cfg.cp * cfg.ep * cfg.dp);
    let grads = collectives::reduce_scatter(params_local * FP32, cfg.dp, link);
    let params = collectives::all_gather(params_local * BF16, cfg.dp, link);
    (grads + params) * (1.0 - DP_OVERLAP)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SchemeKind;
    use slimpipe_model::Checkpoint;

    fn cfg(dp: usize) -> ParallelConfig {
        ParallelConfig {
            tp: 8,
            cp: 1,
            ep: 1,
            dp,
            pp: 4,
            scheme: SchemeKind::OneFOneB,
            ckpt: Checkpoint::None,
            offload: 0.0,
        }
    }

    #[test]
    fn dp1_costs_nothing() {
        let m = ModelConfig::llama_13b();
        assert_eq!(dp_sync_time(&m, &cfg(1), &Cluster::hopper_nvlink()), 0.0);
    }

    #[test]
    fn dp_time_is_bounded_in_dp_size() {
        // Ring collectives scale as (d-1)/d: growing dp 4× raises the time
        // by at most (7/8)/(1/2) = 1.75×, never 4×.
        let m = ModelConfig::llama_70b();
        let t2 = dp_sync_time(&m, &cfg(2), &Cluster::hopper_nvlink());
        let t8 = dp_sync_time(&m, &cfg(8), &Cluster::hopper_nvlink());
        assert!(t8 < t2 * 1.8, "t2={t2} t8={t8}");
        assert!(t8 > t2, "more ranks still cost more");
    }
}
