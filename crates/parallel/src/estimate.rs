//! End-to-end iteration estimate: pipeline simulation + DP sync + offload
//! stalls → MFU.

use crate::config::ParallelConfig;
use crate::dp::dp_sync_time;
use crate::memory::worst_device_bytes;
use slimpipe_cluster::{Cluster, Efficiency};
use slimpipe_model::{ModelConfig, GIB};
use slimpipe_sim::cost::{CostModel, PipelineEnv};
use slimpipe_sim::engine::simulate;
use slimpipe_sim::metrics::mfu;

/// Why a configuration cannot run — these map onto Figure 12's markers.
#[derive(Clone, Debug, PartialEq)]
pub enum EstimateError {
    /// The `(t,c,e,d,p)` partition or microbatch count is invalid.
    Invalid(String),
    /// The scheme cannot produce a schedule (e.g. interleaved with m < p).
    NoSchedule(String),
    /// All partitions fit the cluster but the worst device exceeds memory.
    Oom { needed_gib: f64, budget_gib: f64 },
}

impl std::fmt::Display for EstimateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EstimateError::Invalid(w) => write!(f, "invalid configuration: {w}"),
            EstimateError::NoSchedule(w) => write!(f, "no schedule: {w}"),
            EstimateError::Oom { needed_gib, budget_gib } => {
                write!(f, "OOM: needs {needed_gib:.1} GiB of {budget_gib:.1} GiB")
            }
        }
    }
}

/// A costed configuration.
#[derive(Clone, Debug)]
pub struct Estimate {
    pub cfg: ParallelConfig,
    pub mfu: f64,
    pub iter_time: f64,
    pub pp_time: f64,
    pub dp_time: f64,
    pub offload_stall: f64,
    pub bubble_fraction: f64,
    pub peak_gib: f64,
    pub peak_rank: usize,
    pub microbatches: usize,
}

/// Estimate one configuration training `model` at sequence length `seq`
/// with a fixed `tokens_per_iter` budget.
pub fn estimate(
    model: &ModelConfig,
    cfg: &ParallelConfig,
    cluster: &Cluster,
    seq: u64,
    tokens_per_iter: u64,
) -> Result<Estimate, EstimateError> {
    if !cfg.valid_for(model, cluster.gpus_per_node) {
        return Err(EstimateError::Invalid(format!(
            "partition incompatible with {}",
            model.name
        )));
    }
    let m = cfg
        .microbatches(tokens_per_iter, seq)
        .ok_or_else(|| EstimateError::Invalid("batch not divisible by dp".into()))?;
    let sched = cfg
        .scheme
        .build(cfg.pp, m)
        .map_err(|e| EstimateError::NoSchedule(e.to_string()))?;
    // Slice divisibility is not enforced: a ±1-token near-uniform slicing
    // is indistinguishable at cost-model granularity, the paper's own
    // Table 4 uses n=112 on a 2^21-token sequence, and the real executor's
    // uniform policy spreads the remainder the same way (`Slicing::even`).
    let slim = cfg.scheme.is_slim();
    let env = PipelineEnv {
        model: model.clone(),
        cluster: *cluster,
        eff: Efficiency::hopper(),
        tp: cfg.tp,
        cp: cfg.cp,
        ep: cfg.ep,
        seq,
        mb_seqs: None,
        slicing: slimpipe_core::SlicePolicy::Uniform,
        ckpt: cfg.ckpt,
        exchange: slim,
        early_kv: true,
        vocab_parallel: slim,
        comm_overlap: 0.5,
        pipeline_overlap: 0.0,
    };

    // Memory feasibility before any simulation.
    let (peak, peak_rank) = worst_device_bytes(model, cfg, &sched, &env);
    let budget = cluster.gpu.usable_bytes();
    if peak > budget {
        return Err(EstimateError::Oom {
            needed_gib: peak / GIB,
            budget_gib: budget / GIB,
        });
    }

    let report = simulate(&CostModel::new(&sched, &env));
    let pp_time = report.makespan;
    let dp_time = dp_sync_time(model, cfg, cluster);

    // Offload traffic must fit the PCIe budget within the iteration; the
    // excess stalls the pipeline (§6.5's "adaptive offload ratio" exists
    // precisely to avoid this).
    let act_per_iter = model.microbatch_act_bytes(seq, cfg.tp, cfg.ckpt) / cfg.cp as f64
        / cfg.pp as f64
        * m as f64;
    let traffic = 2.0 * cfg.offload * act_per_iter;
    let offload_stall = (traffic / cluster.gpu.pcie_bw - 0.9 * pp_time).max(0.0);

    let iter_time = pp_time + dp_time + offload_stall;
    let batch = tokens_per_iter / seq;
    let flops = model.model_flops_per_iter(seq, batch);
    let mfu = mfu(flops, iter_time, cfg.gpus(), cluster.gpu.peak_flops);

    Ok(Estimate {
        cfg: *cfg,
        mfu,
        iter_time,
        pp_time,
        dp_time,
        offload_stall,
        bubble_fraction: report.bubble_fraction,
        peak_gib: peak / GIB,
        peak_rank,
        microbatches: m,
    })
}


#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SchemeKind;
    use slimpipe_model::Checkpoint;

    fn slim_cfg() -> ParallelConfig {
        ParallelConfig {
            tp: 8,
            cp: 1,
            ep: 1,
            dp: 2,
            pp: 4,
            scheme: SchemeKind::SlimPipe { n: 8, v: 2 },
            // SlimPipe's memory thrift lets it skip heavy checkpointing.
            ckpt: Checkpoint::Selective,
            offload: 0.0,
        }
    }

    fn megatron_cfg() -> ParallelConfig {
        ParallelConfig {
            scheme: SchemeKind::Interleaved { v: 2 },
            // Classic PP accumulates p microbatches of activations; at 128K
            // it must fall back to full recomputing to fit (the paper's
            // §6.4 observation).
            ckpt: Checkpoint::Full,
            ..slim_cfg()
        }
    }

    #[test]
    fn slimpipe_beats_megatron_at_long_context() {
        // The headline claim at a Figure 12-like cell (64 GPUs, 128K).
        let m = ModelConfig::llama_13b();
        let cl = Cluster::hopper_nvlink();
        let seq = 131_072;
        let tokens = 4u64 << 20;
        let slim = estimate(&m, &slim_cfg(), &cl, seq, tokens).unwrap();
        let mega = estimate(&m, &megatron_cfg(), &cl, seq, tokens).unwrap();
        assert!(
            slim.mfu > mega.mfu,
            "slim={:.3} megatron={:.3}",
            slim.mfu,
            mega.mfu
        );
        assert!(slim.mfu > 0.15 && slim.mfu < 0.65, "mfu plausible: {}", slim.mfu);
    }

    #[test]
    fn interleaved_fails_when_microbatches_below_p() {
        // 4M tokens at 512K = 8 seqs; dp=2 → m=4 < p·1? m=4, p=4 → ok;
        // dp=4 → m=2 < p → Megatron's fatal case.
        let m = ModelConfig::llama_13b();
        let cl = Cluster::hopper_nvlink();
        let mut cfg = megatron_cfg();
        cfg.dp = 4;
        cfg.tp = 8;
        cfg.pp = 4;
        let err = estimate(&m, &cfg, &cl, 524_288, 4 << 20).unwrap_err();
        assert!(matches!(err, EstimateError::NoSchedule(_)), "{err}");
        // SlimPipe handles the same cell ("as few as 2 microbatches").
        let mut slim = slim_cfg();
        slim.dp = 4;
        assert!(estimate(&m, &slim, &cl, 524_288, 4 << 20).is_ok());
    }

    #[test]
    fn oom_is_reported_not_panicked() {
        // 13B at 512K context with no checkpointing and plain 1F1B on p=2:
        // activation accumulation alone exceeds 80 GiB.
        let m = ModelConfig::llama_13b();
        let cl = Cluster::hopper_nvlink();
        let cfg = ParallelConfig {
            tp: 8,
            cp: 1,
            ep: 1,
            dp: 1,
            pp: 2,
            scheme: SchemeKind::OneFOneB,
            ckpt: Checkpoint::None,
            offload: 0.0,
        };
        let err = estimate(&m, &cfg, &cl, 524_288, 4 << 20).unwrap_err();
        assert!(matches!(err, EstimateError::Oom { .. }), "{err}");
    }

    #[test]
    fn full_ckpt_lowers_mfu_but_saves_memory() {
        let m = ModelConfig::llama_13b();
        let cl = Cluster::hopper_nvlink();
        let mut cfg = slim_cfg();
        let plain = estimate(&m, &cfg, &cl, 131_072, 4 << 20).unwrap();
        cfg.ckpt = Checkpoint::Full;
        let ckpt = estimate(&m, &cfg, &cl, 131_072, 4 << 20).unwrap();
        assert!(ckpt.mfu < plain.mfu);
        assert!(ckpt.peak_gib < plain.peak_gib);
    }

    #[test]
    fn offload_enables_otherwise_oom_configs() {
        let m = ModelConfig::llama_13b();
        let cl = Cluster::hopper_nvlink();
        let mut cfg = ParallelConfig {
            tp: 8,
            cp: 1,
            ep: 1,
            dp: 1,
            pp: 4,
            scheme: SchemeKind::SlimPipe { n: 16, v: 1 },
            ckpt: Checkpoint::None,
            offload: 0.0,
        };
        let seq = 1 << 20; // 1M tokens
        let base = estimate(&m, &cfg, &cl, seq, 4 << 20);
        if let Err(EstimateError::Oom { .. }) = base {
            cfg.offload = 0.9;
            let off = estimate(&m, &cfg, &cl, seq, 4 << 20);
            assert!(off.is_ok(), "offload should rescue the config: {off:?}");
        } else {
            panic!("expected baseline to OOM, got {base:?}");
        }
    }
}
