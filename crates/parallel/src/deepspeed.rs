//! DeepSpeed system model: ZeRO-3 + Ulysses sequence parallelism (§2.1,
//! §6.4).
//!
//! No pipeline: the cluster splits into `d` data-parallel replicas of `u`
//! Ulysses ranks. Feasibility encodes the paper's two failure modes
//! verbatim: *"the batch size 8 is not enough for a larger DP size. It
//! cannot enlarge the UP size because there are only 8 query groups."*
//!
//! Timing: GEMMs run on `seq/u` local tokens; attention runs full-sequence
//! on `heads/u` heads after all-to-alls; ZeRO-3 re-gathers parameters
//! layer by layer on every pass and reduce-scatters gradients.

use crate::config::{ParallelConfig, SchemeKind};
use crate::estimate::{Estimate, EstimateError};
use slimpipe_cluster::{collectives, Cluster, Efficiency, OpClass, Phase};
use slimpipe_model::flops::causal_pairs;
use slimpipe_model::{Checkpoint, ModelConfig, BF16, FP32, GIB};

/// Fraction of ZeRO/Ulysses communication overlapped with compute.
const ZERO_OVERLAP: f64 = 0.5;
/// DeepSpeed's chunked loss keeps the logits workspace bounded.
const LOGITS_WORKSPACE_TOKENS: u64 = 4096;

/// Estimate DeepSpeed with Ulysses degree `u` and DP degree `d`.
pub fn estimate_deepspeed(
    model: &ModelConfig,
    u: usize,
    d: usize,
    ckpt: Checkpoint,
    cluster: &Cluster,
    seq: u64,
    tokens_per_iter: u64,
) -> Result<Estimate, EstimateError> {
    let gpus = u * d;
    // --- feasibility (the paper's §6.4 constraints) ---
    if !model.heads.is_multiple_of(u) || u > model.query_groups {
        return Err(EstimateError::Invalid(format!(
            "Ulysses degree {u} exceeds query groups ({})",
            model.query_groups
        )));
    }
    if !tokens_per_iter.is_multiple_of(seq) {
        return Err(EstimateError::Invalid("seq does not divide token budget".into()));
    }
    let batch = tokens_per_iter / seq;
    if !batch.is_multiple_of(d as u64) || batch < d as u64 {
        return Err(EstimateError::Invalid(format!(
            "batch {batch} is not enough for DP size {d}"
        )));
    }
    let m = (batch / d as u64) as usize;

    // --- memory ---
    let p_total = model.total_params();
    let states = p_total * (BF16 + FP32 + 3.0 * FP32) / gpus as f64;
    // Working set: ZeRO-3 keeps ~2 gathered layers resident.
    let gathered = 2.0 * model.layer_params() * BF16;
    let act = model.microbatch_act_bytes(seq, 1, ckpt) / u as f64;
    let logits = model.logits_bytes(LOGITS_WORKSPACE_TOKENS.min(seq / u as u64), 1);
    let peak = states + gathered + act + logits;
    let budget = cluster.gpu.usable_bytes();
    if peak > budget {
        return Err(EstimateError::Oom {
            needed_gib: peak / GIB,
            budget_gib: budget / GIB,
        });
    }

    // --- per-microbatch time ---
    let eff = Efficiency::hopper();
    let peak_flops = cluster.gpu.peak_flops;
    let lf = model.layer_fwd_flops(seq, causal_pairs(0, seq));
    let tokens_local = seq as f64 / u as f64;
    let l = model.layers as f64;
    let gemm_f = lf.gemm * l / u as f64;
    let attn_f = lf.attn * l / u as f64;
    let out_f = model.output_fwd_flops(seq) / u as f64;
    let mean_kv = causal_pairs(0, seq) as f64 / seq as f64;
    let recompute = model.recompute_fraction(ckpt);

    let t_fwd = eff.op_time(OpClass::Gemm, Phase::Forward, gemm_f + out_f, tokens_local, peak_flops)
        + eff.op_time(OpClass::Attention, Phase::Forward, attn_f, mean_kv, peak_flops);
    let t_bwd = eff.op_time(
        OpClass::Gemm,
        Phase::Backward,
        2.0 * (gemm_f + out_f),
        tokens_local,
        peak_flops,
    ) + eff.op_time(OpClass::Attention, Phase::Backward, 2.0 * attn_f, mean_kv, peak_flops)
        + recompute * t_fwd;

    // Ulysses: 4 all-to-alls per layer per direction on the local shard.
    let ulysses_link = cluster.link_for_span(u);
    let a2a_bytes = tokens_local * model.hidden as f64 * BF16;
    let t_ulysses = 8.0 * l * collectives::all_to_all(a2a_bytes, u, ulysses_link);

    // ZeRO-3: gather params per layer on forward and backward, scatter
    // gradients on backward. Parameter collectives span all ranks (NIC).
    let zero_link = cluster.link_for_span(gpus.max(cluster.gpus_per_node + 1));
    let layer_bytes = model.layer_params() * BF16;
    let t_zero = l
        * (2.0 * collectives::all_gather(layer_bytes, gpus, zero_link)
            + collectives::reduce_scatter(model.layer_params() * FP32, gpus, zero_link));

    let t_mb = t_fwd + t_bwd + (t_ulysses + t_zero) * (1.0 - ZERO_OVERLAP);
    let iter_time = t_mb * m as f64;

    let flops = model.model_flops_per_iter(seq, batch);
    let mfu = slimpipe_sim::metrics::mfu(flops, iter_time, gpus, peak_flops);
    Ok(Estimate {
        cfg: ParallelConfig {
            tp: u,
            cp: 1,
            ep: 1,
            dp: d,
            pp: 1,
            scheme: SchemeKind::OneFOneB,
            ckpt,
            offload: 0.0,
        },
        mfu,
        iter_time,
        pp_time: iter_time,
        dp_time: 0.0,
        offload_stall: 0.0,
        bubble_fraction: 0.0,
        peak_gib: peak / GIB,
        peak_rank: 0,
        microbatches: m,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_feasibility_wall_at_512k_on_128_gpus() {
        // §6.4: "DeepSpeed fails to run with a 512K context length on a
        // total of 128 GPUs (no viable configuration), because the batch
        // size 8 is not enough for a larger DP size. It cannot enlarge the
        // UP size because there are only 8 query groups."
        let m = ModelConfig::llama_70b(); // 8 query groups
        let cl = Cluster::hopper_nvlink();
        let seq = 524_288;
        let tokens = 4u64 << 20; // batch = 8
        for u in [1usize, 2, 4, 8] {
            let d = 128 / u;
            let r = estimate_deepspeed(&m, u, d, Checkpoint::Full, &cl, seq, tokens);
            assert!(r.is_err(), "u={u} d={d} should be infeasible");
        }
        // u=16 would make d=8 work, but 16 > 8 query groups.
        let r = estimate_deepspeed(&m, 16, 8, Checkpoint::Full, &cl, seq, tokens);
        assert!(matches!(r, Err(EstimateError::Invalid(_))));
    }

    #[test]
    fn short_context_config_is_feasible() {
        let m = ModelConfig::llama_70b();
        let cl = Cluster::hopper_nvlink();
        let est =
            estimate_deepspeed(&m, 8, 16, Checkpoint::Full, &cl, 65_536, 4 << 20).unwrap();
        assert!(est.mfu > 0.05 && est.mfu < 0.7, "mfu={}", est.mfu);
    }

    #[test]
    fn deepspeed_trails_at_long_context() {
        // The ZeRO-3 regather + full-ckpt overhead should put DeepSpeed
        // below a plausible SlimPipe MFU at 256K (Figure 12's pattern).
        let m = ModelConfig::llama_70b();
        let cl = Cluster::hopper_nvlink();
        let ds =
            estimate_deepspeed(&m, 8, 16, Checkpoint::Full, &cl, 262_144, 4 << 20).unwrap();
        assert!(ds.mfu < 0.45, "ds mfu={}", ds.mfu);
    }
}
