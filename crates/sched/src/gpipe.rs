//! GPipe (Huang et al. 2019): the whole microbatch set is forwarded, then
//! backwarded in reverse (LIFO). Simple, but "requires accumulating the
//! activations for all microbatches until the backward pass is completed
//! for the first microbatch" (§2.2) — peak activation `m` microbatches.

use crate::op::WorkItem;
use crate::schedule::{Schedule, ScheduleError};

/// Build a GPipe schedule for `p` devices and `m` microbatches.
pub fn generate(p: usize, m: usize) -> Result<Schedule, ScheduleError> {
    if p == 0 || m == 0 {
        return Err(ScheduleError::Infeasible("p and m must be positive".into()));
    }
    let mut ops = Vec::with_capacity(p);
    for _ in 0..p {
        let mut dev = Vec::with_capacity(2 * m);
        for mb in 0..m as u32 {
            dev.push(WorkItem::f(mb, 0, 0));
        }
        for mb in (0..m as u32).rev() {
            dev.push(WorkItem::b(mb, 0, 0));
        }
        ops.push(dev);
    }
    Ok(Schedule {
        name: "GPipe".into(),
        devices: p,
        chunks: 1,
        microbatches: m,
        slices: 1,
        mb_slices: None,
        split_backward: false,
        stage_map: Schedule::contiguous_stage_map(p, 1),
        ops,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;

    #[test]
    fn validates_for_a_grid_of_sizes() {
        for p in [1, 2, 4, 8] {
            for m in [1, 2, 4, 7] {
                let s = generate(p, m).unwrap();
                validate(&s).unwrap_or_else(|e| panic!("p={p} m={m}: {e}"));
            }
        }
    }

    #[test]
    fn all_forwards_precede_all_backwards() {
        let s = generate(4, 3).unwrap();
        for dev in &s.ops {
            let first_b = dev
                .iter()
                .position(|o| o.kind == crate::op::PassKind::Backward)
                .unwrap();
            assert!(dev[..first_b]
                .iter()
                .all(|o| o.kind == crate::op::PassKind::Forward));
        }
    }

    #[test]
    fn zero_sizes_rejected() {
        assert!(generate(0, 4).is_err());
        assert!(generate(4, 0).is_err());
    }
}
