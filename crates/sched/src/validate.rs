//! Schedule validation: shape, completeness, and deadlock-freedom.
//!
//! The executability check runs the schedule through an abstract zero-time
//! machine: every device executes its op list strictly in order, and an op
//! becomes ready only when its pipeline dependencies have completed. If no
//! device can make progress before all ops complete, the schedule would
//! deadlock on real hardware and is rejected.

use crate::op::{PassKind, WorkItem};
use crate::schedule::Schedule;
use std::collections::HashSet;

/// Dependency key: `(kind, stage, mb, slice)`.
type Done = HashSet<(PassKind, usize, u32, u32)>;

/// Pipeline readiness rules shared with the discrete-event simulator.
///
/// * `F(stage s)` needs `F(s-1)` of the same `(mb, slice)`; when slicing,
///   it also needs `F(s)` of the previous slice of the same microbatch
///   (the KV cache is appended in slice order).
/// * `B(stage s)` needs `F(s)` and `B(s+1)` of the same unit; when slicing,
///   also `B(s)` of the *next* slice (LIFO backward releases KV chunks in
///   reverse — §4.1.2).
/// * `W(stage s)` needs `B(s)` of the same unit.
pub fn deps_satisfied(
    sched: &Schedule,
    device: usize,
    op: &WorkItem,
    done: &Done,
) -> bool {
    let stage = sched.stage_of(device, op.chunk as usize);
    let last_stage = sched.num_stages() - 1;
    let n = sched.slices_of(op.mb as usize) as u32;
    match op.kind {
        PassKind::Forward => {
            let prev_stage_ok = stage == 0
                || done.contains(&(PassKind::Forward, stage - 1, op.mb, op.slice));
            let prev_slice_ok = op.slice == 0
                || done.contains(&(PassKind::Forward, stage, op.mb, op.slice - 1));
            prev_stage_ok && prev_slice_ok
        }
        PassKind::Backward => {
            let fwd_ok = done.contains(&(PassKind::Forward, stage, op.mb, op.slice));
            let next_stage_ok = stage == last_stage
                || done.contains(&(PassKind::Backward, stage + 1, op.mb, op.slice));
            let next_slice_ok = op.slice == n - 1
                || done.contains(&(PassKind::Backward, stage, op.mb, op.slice + 1));
            fwd_ok && next_stage_ok && next_slice_ok
        }
        PassKind::BackwardWeight => {
            done.contains(&(PassKind::Backward, stage, op.mb, op.slice))
        }
    }
}

/// Validate `sched`; returns a human-readable description of the first
/// violation found.
#[allow(clippy::needless_range_loop)] // `d` indexes ops and program counters together
pub fn validate(sched: &Schedule) -> Result<(), String> {
    // --- shape ---
    if sched.ops.len() != sched.devices {
        return Err(format!(
            "ops lists for {} devices, expected {}",
            sched.ops.len(),
            sched.devices
        ));
    }
    if sched.stage_map.len() != sched.devices {
        return Err("stage_map row count != devices".into());
    }
    if let Some(ns) = &sched.mb_slices {
        if ns.len() != sched.microbatches {
            return Err(format!(
                "mb_slices has {} entries for {} microbatches",
                ns.len(),
                sched.microbatches
            ));
        }
        if let Some(&bad) = ns.iter().find(|&&n| n == 0 || n > sched.slices) {
            return Err(format!(
                "per-microbatch slice count {bad} outside 1..={}",
                sched.slices
            ));
        }
    }
    let mut seen_stage = vec![false; sched.num_stages()];
    for row in &sched.stage_map {
        if row.len() != sched.chunks {
            return Err("stage_map column count != chunks".into());
        }
        for &s in row {
            if s >= sched.num_stages() || seen_stage[s] {
                return Err(format!("stage {s} missing or duplicated in stage_map"));
            }
            seen_stage[s] = true;
        }
    }

    // --- completeness ---
    for (d, ops) in sched.ops.iter().enumerate() {
        let mut count: std::collections::HashMap<WorkItem, usize> =
            std::collections::HashMap::new();
        for op in ops {
            *count.entry(*op).or_default() += 1;
        }
        for c in 0..sched.chunks as u32 {
            for mb in 0..sched.microbatches as u32 {
                for sl in 0..sched.slices_of(mb as usize) as u32 {
                    let mut expected = vec![WorkItem::f(mb, sl, c), WorkItem::b(mb, sl, c)];
                    if sched.split_backward {
                        expected.push(WorkItem::w(mb, sl, c));
                    }
                    for e in expected {
                        match count.get(&e) {
                            Some(1) => {}
                            Some(k) => {
                                return Err(format!(
                                    "device {d}: {e:?} appears {k} times"
                                ))
                            }
                            None => return Err(format!("device {d}: missing {e:?}")),
                        }
                    }
                }
            }
        }
        let per_unit = if sched.split_backward { 3 } else { 2 };
        if ops.len() != per_unit * sched.units_per_device() {
            return Err(format!(
                "device {d}: {} ops, expected {}",
                ops.len(),
                per_unit * sched.units_per_device()
            ));
        }
    }

    // --- executability ---
    let mut pc = vec![0usize; sched.devices];
    let mut done: Done = HashSet::new();
    let total: usize = sched.ops.iter().map(|o| o.len()).sum();
    let mut completed = 0usize;
    while completed < total {
        let mut progress = false;
        for d in 0..sched.devices {
            while pc[d] < sched.ops[d].len() {
                let op = sched.ops[d][pc[d]];
                if !deps_satisfied(sched, d, &op, &done) {
                    break;
                }
                let stage = sched.stage_of(d, op.chunk as usize);
                done.insert((op.kind, stage, op.mb, op.slice));
                pc[d] += 1;
                completed += 1;
                progress = true;
            }
        }
        if !progress {
            let stuck: Vec<String> = (0..sched.devices)
                .filter(|&d| pc[d] < sched.ops[d].len())
                .map(|d| format!("dev{d}@{:?}", sched.ops[d][pc[d]]))
                .collect();
            return Err(format!("deadlock; blocked at {}", stuck.join(", ")));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_device_trivial() -> Schedule {
        Schedule {
            name: "trivial".into(),
            devices: 2,
            chunks: 1,
            microbatches: 1,
            slices: 1,
            mb_slices: None,
            split_backward: false,
            stage_map: Schedule::contiguous_stage_map(2, 1),
            ops: vec![
                vec![WorkItem::f(0, 0, 0), WorkItem::b(0, 0, 0)],
                vec![WorkItem::f(0, 0, 0), WorkItem::b(0, 0, 0)],
            ],
        }
    }

    #[test]
    fn trivial_schedule_validates() {
        assert!(validate(&two_device_trivial()).is_ok());
    }

    #[test]
    fn missing_backward_is_incomplete() {
        let mut s = two_device_trivial();
        s.ops[1].pop();
        let err = validate(&s).unwrap_err();
        assert!(err.contains("missing"), "{err}");
    }

    #[test]
    fn backward_before_forward_deadlocks() {
        let mut s = two_device_trivial();
        s.ops[0] = vec![WorkItem::b(0, 0, 0), WorkItem::f(0, 0, 0)];
        let err = validate(&s).unwrap_err();
        assert!(err.contains("deadlock"), "{err}");
    }

    #[test]
    fn duplicate_op_rejected() {
        let mut s = two_device_trivial();
        s.ops[0] = vec![WorkItem::f(0, 0, 0), WorkItem::f(0, 0, 0)];
        let err = validate(&s).unwrap_err();
        assert!(err.contains("2 times") || err.contains("missing"), "{err}");
    }

    #[test]
    fn slice_order_violation_deadlocks() {
        // Two slices forwarded in the wrong order violate KV-append order.
        let s = Schedule {
            name: "bad-slices".into(),
            devices: 1,
            chunks: 1,
            microbatches: 1,
            slices: 2,
            mb_slices: None,
            split_backward: false,
            stage_map: vec![vec![0]],
            ops: vec![vec![
                WorkItem::f(0, 1, 0),
                WorkItem::f(0, 0, 0),
                WorkItem::b(0, 1, 0),
                WorkItem::b(0, 0, 0),
            ]],
        };
        assert!(validate(&s).unwrap_err().contains("deadlock"));
    }
}
