//! Work-item vocabulary shared by every pipeline scheme.

/// Pipeline device (rank) index.
pub type DeviceId = usize;

/// Global pipeline stage index in `0..p·v` (model chunks in execution
/// order: stage `k` feeds stage `k+1`).
pub type StageId = usize;

/// The kind of compute pass a device performs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PassKind {
    /// Forward pass of one work unit.
    Forward,
    /// Backward pass. For schemes with `split_backward` this is the
    /// *input-gradient* half (ZB's `B`); otherwise the full backward.
    Backward,
    /// Weight-gradient half (ZB's `W`). Only emitted by split-backward
    /// schemes.
    BackwardWeight,
}

/// One unit of work on one device: a pass of `(microbatch, slice)` through
/// the device's local model `chunk`.
///
/// Microbatch-granular schemes use `slice == 0` with `n == 1`; SlimPipe and
/// TeraPipe address individual sequence slices.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct WorkItem {
    pub kind: PassKind,
    pub mb: u32,
    pub slice: u32,
    /// Local chunk index on the executing device (`0..v`).
    pub chunk: u32,
}

impl WorkItem {
    pub fn f(mb: u32, slice: u32, chunk: u32) -> Self {
        Self { kind: PassKind::Forward, mb, slice, chunk }
    }

    pub fn b(mb: u32, slice: u32, chunk: u32) -> Self {
        Self { kind: PassKind::Backward, mb, slice, chunk }
    }

    pub fn w(mb: u32, slice: u32, chunk: u32) -> Self {
        Self { kind: PassKind::BackwardWeight, mb, slice, chunk }
    }

    /// The same unit with a different pass kind — handy when deriving `B`/`W`
    /// items from an `F` enumeration.
    pub fn with_kind(self, kind: PassKind) -> Self {
        Self { kind, ..self }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind() {
        assert_eq!(WorkItem::f(1, 2, 3).kind, PassKind::Forward);
        assert_eq!(WorkItem::b(1, 2, 3).kind, PassKind::Backward);
        assert_eq!(WorkItem::w(1, 2, 3).kind, PassKind::BackwardWeight);
        assert_eq!(
            WorkItem::f(1, 2, 3).with_kind(PassKind::Backward),
            WorkItem::b(1, 2, 3)
        );
    }
}
