//! Pipeline-parallel schedule IR and the baseline generators the paper
//! compares against (§2.2, Figures 3/13/14):
//!
//! * [`gpipe`] — GPipe: all forwards, then all backwards (Huang et al.).
//! * [`onefoneb`] — default 1F1B / PipeDream-Flush (Narayanan et al., Fan
//!   et al.): warm-up, steady 1F1B, cool-down.
//! * [`interleaved`] — Megatron-LM's interleaved 1F1B with `v` model chunks
//!   per device.
//! * [`terapipe`] — TeraPipe-style token-level slicing on a GPipe skeleton
//!   (Li et al.): fine-grained units, but activations still accumulate for
//!   all microbatches.
//! * [`zbv`] — ZB-V and V-Half (Qi et al.): backward split into
//!   input-gradient (`B`) and weight-gradient (`W`) halves on a V-shaped
//!   stage placement, scheduled by a greedy zero-bubble list scheduler with
//!   a per-device memory cap.
//!
//! A schedule is a per-device *ordered list* of [`WorkItem`]s plus a
//! stage-placement map; dependencies are implied by pipeline semantics and
//! checked by [`validate`]. SlimPipe's own generators live in
//! `slimpipe-core` and produce the same IR, so the simulator executes every
//! scheme through one code path.

pub mod gpipe;
pub mod interleaved;
pub mod onefoneb;
pub mod op;
pub mod schedule;
pub mod terapipe;
pub mod validate;
pub mod zbv;

pub use op::{DeviceId, PassKind, StageId, WorkItem};
pub use schedule::{Schedule, ScheduleError};
pub use validate::validate;
