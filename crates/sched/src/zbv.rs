//! ZB-V and V-Half (Qi et al. 2024): zero-bubble schedules that split each
//! backward into an input-gradient half (`B`) and a weight-gradient half
//! (`W`) on a V-shaped two-chunk placement (device `d` hosts stages `d`
//! and `2p-1-d`).
//!
//! The original artifacts synthesise static schedules from estimated
//! `(T_f, T_b, T_w)`; we do the same with a deterministic greedy list
//! scheduler: every device executes the ready op of highest priority
//! (`B` to drain memory and feed upstream, then `F` while under the memory
//! cap, then `W` to fill what would otherwise be a bubble). ZB-V caps
//! in-flight activation at the 1F1B level (`2p` chunk-units); V-Half caps
//! at half of it plus one microbatch (`p + 2` chunk-units, Table 2's
//! `½ + 1/p`).
//!
//! When `T_f = T_b = T_w` the W-filling eliminates bubbles, but with
//! attention-heavy costs (`T_b ≈ 2·T_f`, `T_w ≈ 0` for core attention) the
//! fill is too small — the imbalance bubbles of the paper's §2.2 emerge in
//! the simulator.

use crate::op::{PassKind, WorkItem};
use crate::schedule::{Schedule, ScheduleError};
use std::collections::HashMap;

/// Assumed per-unit pass costs used to synthesise the static order.
#[derive(Clone, Copy, Debug)]
pub struct ZbCosts {
    pub tf: f64,
    pub tb: f64,
    pub tw: f64,
}

impl Default for ZbCosts {
    /// The ZB ideal: equal thirds.
    fn default() -> Self {
        Self { tf: 1.0, tb: 1.0, tw: 1.0 }
    }
}

/// ZB-V: 1F1B-level memory cap.
pub fn generate_zbv(p: usize, m: usize, costs: ZbCosts) -> Result<Schedule, ScheduleError> {
    greedy("ZB-V", p, m, costs, 2 * p)
}

/// V-Half: half of 1F1B's activation plus one in-flight microbatch.
pub fn generate_vhalf(p: usize, m: usize, costs: ZbCosts) -> Result<Schedule, ScheduleError> {
    greedy("V-Half", p, m, costs, p + 2)
}

/// V-Min: one third of 1F1B's activation (§2.2: "V-Half and V-Min reduce
/// the peak memory to 1/2 and 1/3 of that of 1F1B, respectively"). The
/// deeper the memory cut, the longer the pipeline stalls waiting for
/// weight-gradient passes to free stash slots.
pub fn generate_vmin(p: usize, m: usize, costs: ZbCosts) -> Result<Schedule, ScheduleError> {
    greedy("V-Min", p, m, costs, ((2 * p).div_ceil(3) + 1).max(3))
}

struct DevState {
    /// Next microbatch to forward, per chunk.
    f_next: [usize; 2],
    /// Next microbatch to input-backward, per chunk.
    b_next: [usize; 2],
    /// Completed `B` units awaiting their `W` (FIFO).
    w_pending: Vec<(u32, u32)>,
    /// F-completed, W-not-completed chunk-units (the activation stash).
    inflight: usize,
    /// Device clock.
    time: f64,
    ops: Vec<WorkItem>,
}

fn greedy(
    name: &str,
    p: usize,
    m: usize,
    costs: ZbCosts,
    mem_cap: usize,
) -> Result<Schedule, ScheduleError> {
    if p == 0 || m == 0 {
        return Err(ScheduleError::Infeasible("p and m must be positive".into()));
    }
    let v = 2;
    let stage_map = Schedule::v_stage_map(p);
    let last_stage = p * v - 1;
    // completion times of (kind, stage, mb)
    let mut done: HashMap<(PassKind, usize, u32), f64> = HashMap::new();
    let mut devs: Vec<DevState> = (0..p)
        .map(|_| DevState {
            f_next: [0, 0],
            b_next: [0, 0],
            w_pending: Vec::new(),
            inflight: 0,
            time: 0.0,
            ops: Vec::new(),
        })
        .collect();
    let total_ops = p * m * v * 3;
    let mut scheduled = 0usize;

    // Readiness time of a candidate, or None if a dependency is unscheduled.
    let ready_time = |op: &WorkItem,
                      d: usize,
                      stage_map: &[Vec<usize>],
                      done: &HashMap<(PassKind, usize, u32), f64>|
     -> Option<f64> {
        let stage = stage_map[d][op.chunk as usize];
        match op.kind {
            PassKind::Forward => {
                if stage == 0 {
                    Some(0.0)
                } else {
                    done.get(&(PassKind::Forward, stage - 1, op.mb)).copied()
                }
            }
            PassKind::Backward => {
                let f = done.get(&(PassKind::Forward, stage, op.mb)).copied()?;
                if stage == last_stage {
                    Some(f)
                } else {
                    let nb = done.get(&(PassKind::Backward, stage + 1, op.mb)).copied()?;
                    Some(f.max(nb))
                }
            }
            PassKind::BackwardWeight => {
                done.get(&(PassKind::Backward, stage, op.mb)).copied()
            }
        }
    };

    while scheduled < total_ops {
        // Global greedy: among all candidates, pick minimal start time;
        // tie-break by priority B > F > W, then by device id.
        let mut best: Option<(f64, u8, usize, WorkItem)> = None;
        for (d, st) in devs.iter().enumerate() {
            let consider = |op: WorkItem, prio: u8, best: &mut Option<(f64, u8, usize, WorkItem)>| {
                if let Some(rt) = ready_time(&op, d, &stage_map, &done) {
                    let start = st.time.max(rt);
                    let cand = (start, prio, d, op);
                    let better = match best {
                        None => true,
                        Some((bs, bp, bd, _)) => {
                            (start, prio, d) < (*bs, *bp, *bd)
                        }
                    };
                    if better {
                        *best = Some(cand);
                    }
                }
            };
            for c in 0..2usize {
                if st.b_next[c] < m {
                    consider(WorkItem::b(st.b_next[c] as u32, 0, c as u32), 0, &mut best);
                }
                // Keep one in-flight slot reserved for the second (deep
                // V) chunk: if first-chunk forwards were allowed to fill the
                // cap, the backward chain could never start (its head is the
                // last stage, hosted as chunk 1 on device 0) and the greedy
                // would deadlock.
                let cap = if c == 0 { mem_cap.saturating_sub(1) } else { mem_cap };
                if st.f_next[c] < m && st.inflight < cap {
                    consider(WorkItem::f(st.f_next[c] as u32, 0, c as u32), 1, &mut best);
                }
            }
            if let Some(&(mb, c)) = st.w_pending.first() {
                consider(WorkItem::w(mb, 0, c), 2, &mut best);
            }
        }
        let Some((start, _prio, d, op)) = best else {
            return Err(ScheduleError::Infeasible(format!(
                "{name} greedy deadlocked at p={p}, m={m}, cap={mem_cap} \
                 ({scheduled}/{total_ops} ops placed)"
            )));
        };
        let stage = stage_map[d][op.chunk as usize];
        let cost = match op.kind {
            PassKind::Forward => costs.tf,
            PassKind::Backward => costs.tb,
            PassKind::BackwardWeight => costs.tw,
        };
        let finish = start + cost;
        let st = &mut devs[d];
        st.time = finish;
        st.ops.push(op);
        done.insert((op.kind, stage, op.mb), finish);
        match op.kind {
            PassKind::Forward => {
                st.f_next[op.chunk as usize] += 1;
                st.inflight += 1;
            }
            PassKind::Backward => {
                st.b_next[op.chunk as usize] += 1;
                st.w_pending.push((op.mb, op.chunk));
            }
            PassKind::BackwardWeight => {
                st.w_pending.remove(0);
                st.inflight -= 1;
            }
        }
        scheduled += 1;
    }

    Ok(Schedule {
        name: name.into(),
        devices: p,
        chunks: v,
        microbatches: m,
        slices: 1,
        mb_slices: None,
        split_backward: true,
        stage_map,
        ops: devs.into_iter().map(|d| d.ops).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;

    #[test]
    fn zbv_validates_for_a_grid_of_sizes() {
        for p in [2usize, 4, 8] {
            for m in [1usize, 2, 4, 8] {
                let s = generate_zbv(p, m, ZbCosts::default()).unwrap();
                validate(&s).unwrap_or_else(|e| panic!("zbv p={p} m={m}: {e}"));
            }
        }
    }

    #[test]
    fn vhalf_validates_for_a_grid_of_sizes() {
        for p in [2usize, 4, 8] {
            for m in [2usize, 4, 8] {
                let s = generate_vhalf(p, m, ZbCosts::default()).unwrap();
                validate(&s).unwrap_or_else(|e| panic!("vhalf p={p} m={m}: {e}"));
            }
        }
    }

    fn peak_inflight_of(s: &Schedule) -> usize {
        let mut worst = 0i64;
        for dev in &s.ops {
            let mut inflight = 0i64;
            let mut peak = 0i64;
            for op in dev {
                match op.kind {
                    PassKind::Forward => inflight += 1,
                    PassKind::BackwardWeight => inflight -= 1,
                    _ => {}
                }
                peak = peak.max(inflight);
            }
            worst = worst.max(peak);
        }
        worst as usize
    }

    #[test]
    fn memory_caps_hold() {
        for p in [2usize, 4] {
            let zbv = generate_zbv(p, 8, ZbCosts::default()).unwrap();
            assert!(peak_inflight_of(&zbv) <= 2 * p, "zbv cap violated at p={p}");
            let vhalf = generate_vhalf(p, 8, ZbCosts::default()).unwrap();
            assert!(peak_inflight_of(&vhalf) <= p + 2, "vhalf cap violated at p={p}");
        }
    }

    #[test]
    fn vmin_validates_and_undercuts_vhalf() {
        for p in [3usize, 6, 9] {
            let vmin = generate_vmin(p, 8, ZbCosts::default()).unwrap();
            validate(&vmin).unwrap_or_else(|e| panic!("vmin p={p}: {e}"));
            let vhalf = generate_vhalf(p, 8, ZbCosts::default()).unwrap();
            assert!(
                peak_inflight_of(&vmin) <= peak_inflight_of(&vhalf),
                "p={p}: vmin {} > vhalf {}",
                peak_inflight_of(&vmin),
                peak_inflight_of(&vhalf)
            );
            // Roughly a third of ZB-V's 2p units.
            assert!(peak_inflight_of(&vmin) <= (2 * p).div_ceil(3) + 1);
        }
    }

    #[test]
    fn deeper_memory_cuts_cost_more_time() {
        // The ZB family's trade-off: tighter caps stall the greedy longer.
        let p = 6;
        let span = |s: &Schedule| {
            // Proxy: total ops is fixed, so compare warm-up depth — the cap
            // bounds in-flight F's, so tighter caps start backwards sooner
            // but idle more. Use the validator-executable property plus the
            // peak ordering as the invariant.
            peak_inflight_of(s)
        };
        let zbv = generate_zbv(p, 8, ZbCosts::default()).unwrap();
        let vhalf = generate_vhalf(p, 8, ZbCosts::default()).unwrap();
        let vmin = generate_vmin(p, 8, ZbCosts::default()).unwrap();
        assert!(span(&vmin) < span(&vhalf));
        assert!(span(&vhalf) < span(&zbv));
    }

    #[test]
    fn vhalf_uses_roughly_half_of_zbv_memory() {
        let p = 8;
        let zbv = generate_zbv(p, 16, ZbCosts::default()).unwrap();
        let vhalf = generate_vhalf(p, 16, ZbCosts::default()).unwrap();
        let (pz, pv) = (peak_inflight_of(&zbv), peak_inflight_of(&vhalf));
        assert!(pv as f64 <= 0.65 * pz as f64, "zbv={pz} vhalf={pv}");
    }

    #[test]
    fn every_backward_has_its_weight_half() {
        let s = generate_zbv(4, 4, ZbCosts::default()).unwrap();
        assert!(s.split_backward);
        for dev in &s.ops {
            let b = dev.iter().filter(|o| o.kind == PassKind::Backward).count();
            let w = dev.iter().filter(|o| o.kind == PassKind::BackwardWeight).count();
            assert_eq!(b, w);
        }
    }
}
