//! Default 1F1B (PipeDream-Flush / DAPPLE): warm-up phase of
//! `p-1-rank` forwards, steady one-forward-one-backward phase, cool-down
//! of remaining backwards. Peak activation: `min(m, p)` microbatches on the
//! first device — constant in `m` but *not* decreasing in `p` (the paper's
//! Figure 1 "Classic PP" line).

use crate::op::WorkItem;
use crate::schedule::{Schedule, ScheduleError};

/// Build the default 1F1B schedule for `p` devices and `m` microbatches.
pub fn generate(p: usize, m: usize) -> Result<Schedule, ScheduleError> {
    if p == 0 || m == 0 {
        return Err(ScheduleError::Infeasible("p and m must be positive".into()));
    }
    let mut ops = Vec::with_capacity(p);
    for d in 0..p {
        let warmup = (p - 1 - d).min(m);
        let mut dev = Vec::with_capacity(2 * m);
        for mb in 0..warmup as u32 {
            dev.push(WorkItem::f(mb, 0, 0));
        }
        let mut f = warmup as u32;
        let mut b = 0u32;
        while (f as usize) < m {
            dev.push(WorkItem::f(f, 0, 0));
            f += 1;
            dev.push(WorkItem::b(b, 0, 0));
            b += 1;
        }
        while (b as usize) < m {
            dev.push(WorkItem::b(b, 0, 0));
            b += 1;
        }
        ops.push(dev);
    }
    Ok(Schedule {
        name: "1F1B".into(),
        devices: p,
        chunks: 1,
        microbatches: m,
        slices: 1,
        mb_slices: None,
        split_backward: false,
        stage_map: Schedule::contiguous_stage_map(p, 1),
        ops,
    })
}

/// Peak in-flight microbatches on device `d` (activation accumulation).
pub fn peak_inflight(p: usize, m: usize, d: usize) -> usize {
    (p - d).min(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::PassKind;
    use crate::validate::validate;

    #[test]
    fn validates_for_a_grid_of_sizes() {
        for p in [1, 2, 3, 4, 8] {
            for m in [1, 2, 4, 9, 16] {
                let s = generate(p, m).unwrap();
                validate(&s).unwrap_or_else(|e| panic!("p={p} m={m}: {e}"));
            }
        }
    }

    #[test]
    fn last_device_strictly_alternates() {
        let s = generate(4, 6).unwrap();
        let last = &s.ops[3];
        for (i, op) in last.iter().enumerate() {
            let expect = if i % 2 == 0 { PassKind::Forward } else { PassKind::Backward };
            assert_eq!(op.kind, expect, "op {i}");
        }
    }

    #[test]
    fn measured_inflight_matches_closed_form() {
        for p in [2usize, 4, 8] {
            for m in [1usize, 3, 8, 12] {
                let s = generate(p, m).unwrap();
                for d in 0..p {
                    let mut inflight = 0i64;
                    let mut peak = 0i64;
                    for op in &s.ops[d] {
                        match op.kind {
                            PassKind::Forward => inflight += 1,
                            PassKind::Backward => inflight -= 1,
                            _ => {}
                        }
                        peak = peak.max(inflight);
                    }
                    assert_eq!(
                        peak as usize,
                        peak_inflight(p, m, d),
                        "p={p} m={m} d={d}"
                    );
                }
            }
        }
    }

    #[test]
    fn first_device_accumulates_p_microbatches() {
        // The crux of the paper's critique: device 0's stash does not shrink
        // as p grows (it holds p microbatches of L/p layers = one full
        // microbatch's activations).
        assert_eq!(peak_inflight(8, 16, 0), 8);
        assert_eq!(peak_inflight(16, 32, 0), 16);
    }
}
