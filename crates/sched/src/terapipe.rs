//! TeraPipe-style token-level pipelining (Li et al. 2021).
//!
//! TeraPipe slices each microbatch along the sequence dimension for
//! fine-grained scheduling, which shrinks the warm-up bubble to
//! `(p-1)/(nm)` — but it keeps GPipe's all-forward-then-all-backward
//! skeleton, so it "inherits GPipe's critical memory limitation:
//! accumulating all activations throughout the pipeline" (§2.2): peak
//! activation is still `m` microbatches.

use crate::op::WorkItem;
use crate::schedule::{Schedule, ScheduleError};

/// Build a TeraPipe schedule: `p` devices, `m` microbatches, `n` slices per
/// microbatch. Forwards run (mb asc, slice asc); backwards run fully
/// reversed (LIFO), respecting the KV-cache append/release order.
pub fn generate(p: usize, m: usize, n: usize) -> Result<Schedule, ScheduleError> {
    if p == 0 || m == 0 || n == 0 {
        return Err(ScheduleError::Infeasible("p, m, n must be positive".into()));
    }
    let mut ops = Vec::with_capacity(p);
    for _ in 0..p {
        let mut dev = Vec::with_capacity(2 * m * n);
        for mb in 0..m as u32 {
            for sl in 0..n as u32 {
                dev.push(WorkItem::f(mb, sl, 0));
            }
        }
        for mb in (0..m as u32).rev() {
            for sl in (0..n as u32).rev() {
                dev.push(WorkItem::b(mb, sl, 0));
            }
        }
        ops.push(dev);
    }
    Ok(Schedule {
        name: "TeraPipe".into(),
        devices: p,
        chunks: 1,
        microbatches: m,
        slices: n,
        mb_slices: None,
        split_backward: false,
        stage_map: Schedule::contiguous_stage_map(p, 1),
        ops,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::PassKind;
    use crate::validate::validate;

    #[test]
    fn validates_for_a_grid_of_sizes() {
        for p in [1usize, 2, 4] {
            for m in [1usize, 2, 3] {
                for n in [2usize, 4, 8] {
                    let s = generate(p, m, n).unwrap();
                    validate(&s).unwrap_or_else(|e| panic!("p={p} m={m} n={n}: {e}"));
                }
            }
        }
    }

    #[test]
    fn accumulates_all_activations() {
        // The memory critique: peak in-flight = every slice of every mb.
        let s = generate(2, 3, 4).unwrap();
        let mut inflight = 0i64;
        let mut peak = 0i64;
        for op in &s.ops[0] {
            match op.kind {
                PassKind::Forward => inflight += 1,
                PassKind::Backward => inflight -= 1,
                _ => {}
            }
            peak = peak.max(inflight);
        }
        assert_eq!(peak as usize, 3 * 4);
    }
}
