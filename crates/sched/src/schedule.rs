//! The schedule container: per-device ordered op lists + stage placement.

use crate::op::{DeviceId, StageId, WorkItem};

/// Errors a generator can report. These map directly onto the paper's
/// Figure 12 markers: `Infeasible` configurations show up as "No
/// Configuration" triangles.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScheduleError {
    /// The scheme cannot run with these parameters (with reason).
    Infeasible(String),
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::Infeasible(why) => write!(f, "infeasible schedule: {why}"),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// A complete static pipeline schedule.
#[derive(Clone, Debug)]
pub struct Schedule {
    /// Human-readable scheme name ("SlimPipe", "1F1B", …).
    pub name: String,
    /// Pipeline size `p`.
    pub devices: usize,
    /// Model chunks per device `v` (interleaving stages).
    pub chunks: usize,
    /// Microbatches per iteration `m`.
    pub microbatches: usize,
    /// Sequence slices per microbatch `n` (1 = microbatch granularity).
    /// When [`Schedule::mb_slices`] is set this is the *maximum* per-
    /// microbatch count (slice indices on any device stay below it);
    /// consumers that need microbatch `mb`'s actual count must call
    /// [`Schedule::slices_of`].
    pub slices: usize,
    /// Per-microbatch slice counts (`mb_slices[mb]` slices for microbatch
    /// `mb`). `None` = every microbatch has `slices` slices — the uniform
    /// case every scheme except SlimPipe's variable-count generator uses.
    pub mb_slices: Option<Vec<usize>>,
    /// Whether `Backward` is the input-grad half with separate
    /// `BackwardWeight` items (ZB schemes).
    pub split_backward: bool,
    /// `stage_map[d][c]` = global stage id of device `d`'s chunk `c`.
    pub stage_map: Vec<Vec<StageId>>,
    /// Per-device ordered op lists.
    pub ops: Vec<Vec<WorkItem>>,
}

impl Schedule {
    /// Total number of global stages `p·v`.
    pub fn num_stages(&self) -> usize {
        self.devices * self.chunks
    }

    /// Slice count of microbatch `mb` (per-microbatch when
    /// [`Schedule::mb_slices`] is set, `slices` otherwise).
    pub fn slices_of(&self, mb: usize) -> usize {
        match &self.mb_slices {
            Some(ns) => ns[mb],
            None => self.slices,
        }
    }

    /// Work units (microbatch-slices) per chunk: `Σ_mb slices_of(mb)`.
    pub fn units_per_chunk(&self) -> usize {
        (0..self.microbatches).map(|mb| self.slices_of(mb)).sum()
    }

    /// Inverse of `stage_map`: which `(device, chunk)` hosts `stage`.
    pub fn locate_stage(&self, stage: StageId) -> (DeviceId, usize) {
        for (d, row) in self.stage_map.iter().enumerate() {
            for (c, &s) in row.iter().enumerate() {
                if s == stage {
                    return (d, c);
                }
            }
        }
        panic!("stage {stage} not placed on any device");
    }

    /// Global stage id of `(device, chunk)`.
    pub fn stage_of(&self, device: DeviceId, chunk: usize) -> StageId {
        self.stage_map[device][chunk]
    }

    /// Number of work units of each kind one device must execute.
    pub fn units_per_device(&self) -> usize {
        self.chunks * self.units_per_chunk()
    }

    /// Standard interleaved placement: stage `c·p + d` on device `d`.
    pub fn contiguous_stage_map(devices: usize, chunks: usize) -> Vec<Vec<StageId>> {
        (0..devices)
            .map(|d| (0..chunks).map(|c| c * devices + d).collect())
            .collect()
    }

    /// V-shaped placement (ZB-V): device `d` hosts stages `d` and
    /// `2p-1-d`, so the pipeline folds back on itself.
    pub fn v_stage_map(devices: usize) -> Vec<Vec<StageId>> {
        (0..devices)
            .map(|d| vec![d, 2 * devices - 1 - d])
            .collect()
    }

    /// Compact single-line rendering of one device's op list — used by the
    /// timeline experiment binary and invaluable when debugging generators.
    pub fn render_device(&self, d: DeviceId) -> String {
        use crate::op::PassKind::*;
        let mut out = String::new();
        for op in &self.ops[d] {
            let tag = match op.kind {
                Forward => 'F',
                Backward => 'B',
                BackwardWeight => 'W',
            };
            if self.slices > 1 {
                out.push_str(&format!("{}{}.{}", tag, op.mb + 1, op.slice + 1));
            } else {
                out.push_str(&format!("{}{}", tag, op.mb + 1));
            }
            if self.chunks > 1 {
                out.push_str(&format!("c{}", op.chunk));
            }
            out.push(' ');
        }
        out.trim_end().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_map_is_round_robin() {
        let m = Schedule::contiguous_stage_map(4, 2);
        assert_eq!(m[0], vec![0, 4]);
        assert_eq!(m[3], vec![3, 7]);
    }

    #[test]
    fn v_map_folds_back() {
        let m = Schedule::v_stage_map(4);
        assert_eq!(m[0], vec![0, 7]);
        assert_eq!(m[3], vec![3, 4]);
    }

    #[test]
    fn locate_stage_inverts_map() {
        let sched = Schedule {
            name: "test".into(),
            devices: 4,
            chunks: 2,
            microbatches: 1,
            slices: 1,
            mb_slices: None,
            split_backward: false,
            stage_map: Schedule::v_stage_map(4),
            ops: vec![vec![]; 4],
        };
        assert_eq!(sched.locate_stage(7), (0, 1));
        assert_eq!(sched.locate_stage(3), (3, 0));
        assert_eq!(sched.stage_of(0, 1), 7);
    }
}
