//! Interleaved 1F1B (Megatron-LM, Narayanan et al. 2021): each device hosts
//! `v` non-contiguous model chunks, shrinking the warm-up bubble by `v` at
//! the cost of `(p-1)/(vp)` extra activation accumulation (Table 2).
//!
//! Faithful-shape reimplementation of Megatron's scheduler, including its
//! hard constraint that the microbatch count be a positive multiple of the
//! pipeline size — the constraint whose violation the paper calls a "fatal
//! limitation" for Megatron at 512 GPUs (§6.4), and which we surface as
//! [`ScheduleError::Infeasible`] so the end-to-end grid search reproduces
//! the "No Configuration" markers of Figure 12.

use crate::op::WorkItem;
use crate::schedule::{Schedule, ScheduleError};

/// Decode forward unit `k` into `(mb, chunk)`: microbatches advance in
/// groups of `p`, all chunks of a group before the next group.
fn decode_f(k: usize, p: usize, v: usize) -> (u32, u32) {
    let group = k / (p * v);
    let rem = k % (p * v);
    let chunk = rem / p;
    let mb = group * p + rem % p;
    (mb as u32, chunk as u32)
}

/// Decode backward unit `j`: same group walk with chunks reversed.
fn decode_b(j: usize, p: usize, v: usize) -> (u32, u32) {
    let group = j / (p * v);
    let rem = j % (p * v);
    let chunk = v - 1 - rem / p;
    let mb = group * p + rem % p;
    (mb as u32, chunk as u32)
}

/// Build the interleaved schedule for `p` devices, `v` chunks per device,
/// `m` microbatches.
pub fn generate(p: usize, v: usize, m: usize) -> Result<Schedule, ScheduleError> {
    if p == 0 || v == 0 || m == 0 {
        return Err(ScheduleError::Infeasible("p, v, m must be positive".into()));
    }
    if v > 1 && !m.is_multiple_of(p) {
        return Err(ScheduleError::Infeasible(format!(
            "interleaved 1F1B requires microbatches ({m}) to be a multiple of \
             the pipeline size ({p})"
        )));
    }
    if v == 1 {
        // Degenerates to plain 1F1B.
        let mut s = crate::onefoneb::generate(p, m)?;
        s.name = "Interleaved 1F1B (v=1)".into();
        return Ok(s);
    }
    let total = m * v;
    let mut ops = Vec::with_capacity(p);
    for d in 0..p {
        let warmup = ((p - 1 - d) * 2 + (v - 1) * p).min(total);
        let mut dev = Vec::with_capacity(2 * total);
        let mut f = 0usize;
        let mut b = 0usize;
        for _ in 0..warmup {
            let (mb, c) = decode_f(f, p, v);
            dev.push(WorkItem::f(mb, 0, c));
            f += 1;
        }
        while f < total {
            let (mb, c) = decode_f(f, p, v);
            dev.push(WorkItem::f(mb, 0, c));
            f += 1;
            let (mb, c) = decode_b(b, p, v);
            dev.push(WorkItem::b(mb, 0, c));
            b += 1;
        }
        while b < total {
            let (mb, c) = decode_b(b, p, v);
            dev.push(WorkItem::b(mb, 0, c));
            b += 1;
        }
        ops.push(dev);
    }
    Ok(Schedule {
        name: "Interleaved 1F1B".into(),
        devices: p,
        chunks: v,
        microbatches: m,
        slices: 1,
        mb_slices: None,
        split_backward: false,
        stage_map: Schedule::contiguous_stage_map(p, v),
        ops,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::PassKind;
    use crate::validate::validate;

    #[test]
    fn validates_for_a_grid_of_sizes() {
        for p in [2usize, 4] {
            for v in [2usize, 3, 5] {
                for mult in [1usize, 2, 3] {
                    let m = p * mult;
                    let s = generate(p, v, m).unwrap();
                    validate(&s).unwrap_or_else(|e| panic!("p={p} v={v} m={m}: {e}"));
                }
            }
        }
    }

    #[test]
    fn rejects_m_not_multiple_of_p() {
        let err = generate(4, 2, 6).unwrap_err();
        assert!(matches!(err, ScheduleError::Infeasible(_)));
        // The paper's fatal case: fewer microbatches than pipeline size.
        assert!(generate(8, 2, 4).is_err());
    }

    #[test]
    fn v1_degenerates_to_plain_1f1b() {
        let s = generate(4, 1, 5).unwrap();
        assert_eq!(s.chunks, 1);
        validate(&s).unwrap();
    }

    #[test]
    fn warmup_shrinks_with_rank() {
        let s = generate(4, 2, 8).unwrap();
        let first_b = |d: usize| {
            s.ops[d]
                .iter()
                .position(|o| o.kind == PassKind::Backward)
                .unwrap()
        };
        // warmup = 2(p-1-d) + (v-1)p forwards, plus the steady phase's
        // leading forward: first backward sits at index warmup + 1.
        assert_eq!(first_b(0), 11);
        assert_eq!(first_b(3), 5);
    }

    #[test]
    fn inflight_peak_matches_table2() {
        // Table 2 row "Interleaved 1F1B": 1 + (p-1)/(vp) of the 1F1B unit,
        // i.e. pv + (p-1) chunk-units on device 0.
        let (p, v, m) = (4usize, 2usize, 8usize);
        let s = generate(p, v, m).unwrap();
        let mut inflight = 0i64;
        let mut peak = 0i64;
        for op in &s.ops[0] {
            match op.kind {
                PassKind::Forward => inflight += 1,
                PassKind::Backward => inflight -= 1,
                _ => {}
            }
            peak = peak.max(inflight);
        }
        assert_eq!(peak as usize, p * v + (p - 1));
    }
}
